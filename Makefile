# Standard developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race bench bench-gate soak-1m profile vet fmt fmt-check lint lint-json ci experiments examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Fail (with the offending files listed) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Custom determinism/concurrency analyzers; see CONTRIBUTING.md. The gate
# covers _test.go files too and fails on //ndlint:ignore directives that no
# longer suppress anything.
lint:
	$(GO) run ./cmd/ndlint -tests -verify-suppressions ./...

# Same gate, NDJSON to stdout — for editors and tooling that ingest findings.
lint-json:
	$(GO) run ./cmd/ndlint -json -tests -verify-suppressions ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Everything the GitHub Actions pipeline runs, locally and in order. The
# test pass shuffles execution order, the bench smoke compiles and runs each
# fast-package benchmark once so harness breakage surfaces before merge, and
# the bench gate compares a fresh throughput snapshot against the committed
# BENCH_3.json via cmd/ndstat.
ci: build vet fmt-check lint
	$(GO) test -shuffle=on ./...
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./internal/sim/... ./internal/harness/... ./internal/telemetry/... ./internal/dynamics/... ./internal/channel/... ./internal/topology/...
	$(GO) test -race ./internal/harness/... ./internal/experiment/... ./internal/trace/... ./internal/sim/... ./internal/telemetry/... ./internal/dynamics/... ./internal/diag/...
	$(MAKE) bench-gate

# Bench-regression gate: take a fresh cmd/ndperf snapshot and diff it
# against the committed BENCH_3.json with cmd/ndstat. The 50% threshold is
# deliberately loose — wall-clock varies across machines, but allocs/op is
# deterministic and a halving of throughput is a real regression anywhere.
bench-gate:
	@tmp="$$(mktemp)"; trap 'rm -f "$$tmp"' EXIT; \
	$(GO) run ./cmd/ndperf -out "$$tmp" && \
	$(GO) run ./cmd/ndstat -gate -threshold 50 BENCH_3.json "$$tmp"

# One full pass of every reproduction benchmark (one iteration each), then
# the engine throughput snapshot: cmd/ndperf rewrites BENCH_3.json with
# ns/slot, allocation and delivery-throughput figures for all three engines.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./...
	$(GO) run ./cmd/ndperf -out BENCH_3.json

# Off-CI scale soak: one million nodes (CSR-streamed geometric graph, mean
# degree ~15) resolved on the tiled parallel path. Allocates tens of GB and
# runs for minutes; run by hand when touching the tiled engine, the CSR
# generators, or the halo kernels. Prints per-stage timings; writes nothing.
soak-1m:
	$(GO) run ./cmd/ndperf -soak1m

# CPU/heap profiles of the engine hot path, via cmd/ndperf's pprof flags.
# Inspect with `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) run ./cmd/ndperf -cpuprofile cpu.pprof -memprofile mem.pprof -out /dev/null

# Regenerate the EXPERIMENTS.md tables (markdown on stdout).
experiments:
	$(GO) run ./cmd/ndbench -all -markdown

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heterogeneity
	$(GO) run ./examples/asyncdrift
	$(GO) run ./examples/baseline
	$(GO) run ./examples/termination
	$(GO) run ./examples/scheduling
	$(GO) run ./examples/churn

clean:
	$(GO) clean ./...
