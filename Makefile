# Standard developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race bench vet fmt experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One full pass of every reproduction benchmark (one iteration each).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' ./...

# Regenerate the EXPERIMENTS.md tables (markdown on stdout).
experiments:
	$(GO) run ./cmd/ndbench -all -markdown

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heterogeneity
	$(GO) run ./examples/asyncdrift
	$(GO) run ./examples/baseline
	$(GO) run ./examples/termination
	$(GO) run ./examples/scheduling
	$(GO) run ./examples/churn

clean:
	$(GO) clean ./...
