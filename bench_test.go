package m2hew

// One benchmark per reproduction experiment (DESIGN.md §5, EXPERIMENTS.md).
// Each benchmark executes the full experiment — workload generation,
// parameter sweep, baselines, trials — and reports its headline quantities
// as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every "table" of the reproduction. Shape assertions live in
// internal/experiment's tests; the benchmarks surface the numbers.

import (
	"testing"

	"m2hew/internal/experiment"
)

// benchOpts returns the experiment options used by the benchmark run:
// full-size workloads, deterministic seed, enough trials for stable means
// without making `go test -bench=.` take minutes.
func benchOpts() experiment.Options {
	return experiment.Options{Trials: 10, Seed: 1}
}

// runExperiment executes the experiment b.N times and reports the selected
// (column, row) cells of the final table as benchmark metrics.
func runExperiment(b *testing.B, id string, report map[string]string) {
	b.Helper()
	entry, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var table *experiment.Table
	for i := 0; i < b.N; i++ {
		table, err = entry.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	for metric, cell := range report {
		row, col, ok := splitCell(cell)
		if !ok {
			b.Fatalf("bad cell spec %q", cell)
		}
		v, ok := table.Value(row, col)
		if !ok {
			b.Fatalf("missing cell %q/%q in %s", row, col, id)
		}
		b.ReportMetric(v, metric)
	}
}

// splitCell parses "row|column".
func splitCell(cell string) (row, col string, ok bool) {
	for i := 0; i < len(cell); i++ {
		if cell[i] == '|' {
			return cell[:i], cell[i+1:], true
		}
	}
	return "", "", false
}

// BenchmarkE1Theorem1SyncStaged reproduces E1: Algorithm 1 completion stages
// versus the Theorem 1 M-stage bound on CR networks.
func BenchmarkE1Theorem1SyncStaged(b *testing.B) {
	runExperiment(b, "E1", map[string]string{
		"stages-mean-N40":  "N=40|mean",
		"bound-stages-N40": "N=40|M bound",
		"within-bound-N40": "N=40|≤bound",
	})
}

// BenchmarkE2Theorem2SyncGrowing reproduces E2: Algorithm 2 (no degree
// knowledge) completion slots versus the Theorem 2 bound.
func BenchmarkE2Theorem2SyncGrowing(b *testing.B) {
	runExperiment(b, "E2", map[string]string{
		"slots-mean-N40":   "N=40|mean",
		"slot-bound-N40":   "N=40|slot bound",
		"within-bound-N40": "N=40|≤bound",
	})
}

// BenchmarkE3Theorem3SyncUniform reproduces E3: Algorithm 3 slots after T_s
// under staggered start times versus the Theorem 3 bound.
func BenchmarkE3Theorem3SyncUniform(b *testing.B) {
	runExperiment(b, "E3", map[string]string{
		"slots-mean-win500":   "N=20 win=500|mean",
		"slot-bound-win500":   "N=20 win=500|slot bound",
		"within-bound-win500": "N=20 win=500|≤bound",
	})
}

// BenchmarkE4Theorem9Async reproduces E4: Algorithm 4 under drifting clocks
// versus the Theorem 9 frame bound and Theorem 10 time bound.
func BenchmarkE4Theorem9Async(b *testing.B) {
	runExperiment(b, "E4", map[string]string{
		"time-mean-walk7":   "walk δ=1/7|mean time",
		"time-bound-walk7":  "walk δ=1/7|time bound",
		"frames-mean-walk7": "walk δ=1/7|mean frames",
	})
}

// BenchmarkE5CoverageBounds reproduces E5: empirical per-stage and
// per-aligned-pair coverage probability versus the Eq. (6) and Lemma 5
// lower bounds.
func BenchmarkE5CoverageBounds(b *testing.B) {
	runExperiment(b, "E5", map[string]string{
		"sync-over-bound-S4":  "S=4 Δ=4|sync/bound",
		"async-over-bound-S4": "S=4 Δ=4|async/bound",
	})
}

// BenchmarkE6FrameLemmas reproduces E6: the Lemma 4 / 7 / 8 audits at
// δ = 1/7 across drift processes.
func BenchmarkE6FrameLemmas(b *testing.B) {
	runExperiment(b, "E6", map[string]string{
		"max-overlap-alt": "alt δ|max overlap",
		"align-rate-alt":  "alt δ|align rate",
		"yield-alt":       "alt δ|yield ratio",
	})
}

// BenchmarkE7UniversalSetBaseline reproduces E7: universal-set baseline cost
// versus Algorithm 3 as the agreed universal set grows.
func BenchmarkE7UniversalSetBaseline(b *testing.B) {
	runExperiment(b, "E7", map[string]string{
		"baseline-mean-U64": "U=64|baseline mean",
		"alg3-mean-U64":     "U=64|alg3 mean",
		"ratio-U64":         "U=64|base/alg3",
	})
}

// BenchmarkE8SpanRatioScaling reproduces E8: completion time versus 1/ρ at
// fixed S, Δ, N.
func BenchmarkE8SpanRatioScaling(b *testing.B) {
	runExperiment(b, "E8", map[string]string{
		"slots-mean-rho1":     "m=12|mean slots",
		"slots-mean-rho1of12": "m=1|mean slots",
		"normalized-rho1of12": "m=1|slots·ρ",
	})
}

// BenchmarkE9DriftSensitivity reproduces E9: lemma validity and completion
// time as δ sweeps past 1/7.
func BenchmarkE9DriftSensitivity(b *testing.B) {
	runExperiment(b, "E9", map[string]string{
		"align-rate-045":  "δ=0.450|align rate",
		"max-overlap-045": "δ=0.450|max overlap",
		"align-rate-143":  "δ=0.143|align rate",
	})
}

// BenchmarkE10SlotAblation reproduces E10: the slots-per-frame ablation
// around the paper's k = 3.
func BenchmarkE10SlotAblation(b *testing.B) {
	runExperiment(b, "E10", map[string]string{
		"time-mean-k1": "k=1|mean time",
		"time-mean-k3": "k=3|mean time",
		"rate-k3":      "k=3|complete rate",
	})
}

// BenchmarkE11AsymmetricGraphs reproduces E11: discovery on partially
// asymmetric communication graphs (Section V extension (a)).
func BenchmarkE11AsymmetricGraphs(b *testing.B) {
	runExperiment(b, "E11", map[string]string{
		"stages-mean-asym50":  "asym=0.50|mean",
		"within-bound-asym50": "asym=0.50|≤bound",
		"links-asym50":        "asym=0.50|links",
	})
}

// BenchmarkE12UnreliableChannels reproduces E12: per-reception erasures
// (Section V extension (b)) and the ~1/(1−p) slowdown.
func BenchmarkE12UnreliableChannels(b *testing.B) {
	runExperiment(b, "E12", map[string]string{
		"slots-mean-p0":        "p=0.0|mean slots",
		"slots-mean-p08":       "p=0.8|mean slots",
		"normalized-slots-p08": "p=0.8|slots·(1-p)",
	})
}

// BenchmarkE13DiversePropagation reproduces E13: per-link span restriction
// (Section V extension (c)) absorbed by ρ.
func BenchmarkE13DiversePropagation(b *testing.B) {
	runExperiment(b, "E13", map[string]string{
		"stages-mean-cap1":  "cap=1|mean",
		"within-bound-cap1": "cap=1|≤bound",
		"rho-cap1":          "cap=1|ρ",
	})
}

// BenchmarkE14TerminationDetection reproduces E14: the recall/energy
// tradeoff of the quiescence termination rule.
func BenchmarkE14TerminationDetection(b *testing.B) {
	runExperiment(b, "E14", map[string]string{
		"recall-idle25":        "idle=25|recall",
		"recall-idle1600":      "idle=1600|recall",
		"active-mean-idle1600": "idle=1600|mean active",
	})
}

// BenchmarkE15TailBound reproduces E15: empirical completion CCDF versus
// the analytic N²·(1−q)^s failure tail.
func BenchmarkE15TailBound(b *testing.B) {
	runExperiment(b, "E15", map[string]string{
		"empirical-2xmedian": "2.0×median|empirical CCDF",
		"bound-2xmedian":     "2.0×median|analytic bound",
		"dominated-2xmedian": "2.0×median|dominated",
	})
}

// BenchmarkE16CouponCollector reproduces E16: measured single-channel
// clique completion versus the coupon-collector closed form of ref [2].
func BenchmarkE16CouponCollector(b *testing.B) {
	runExperiment(b, "E16", map[string]string{
		"predicted-n16": "n=16|predicted",
		"measured-n16":  "n=16|measured",
		"ratio-n16":     "n=16|ratio",
	})
}

// BenchmarkE17ProgressProfile reproduces E17: time-to-quantile coverage
// profile of all four algorithms on one CR network.
func BenchmarkE17ProgressProfile(b *testing.B) {
	runExperiment(b, "E17", map[string]string{
		"t50-alg3":  "alg3 uniform|t50",
		"t100-alg3": "alg3 uniform|t100",
		"tail-alg3": "alg3 uniform|tail t100/t50",
	})
}

// BenchmarkE18SpectrumChurn reproduces E18: primary-user arrival, channel
// vacation, and the cost of re-discovery.
func BenchmarkE18SpectrumChurn(b *testing.B) {
	runExperiment(b, "E18", map[string]string{
		"rho-after-r075":  "r=0.75|ρ after",
		"re-over-initial": "r=0.75|re/initial",
		"affected-r075":   "r=0.75|affected",
	})
}

// BenchmarkE19Acknowledgment reproduces E19: out-link confirmation via
// heard-list piggybacking on asymmetric graphs.
func BenchmarkE19Acknowledgment(b *testing.B) {
	runExperiment(b, "E19", map[string]string{
		"t-in-asym06":     "asym=0.6|T_in mean",
		"t-ack-asym06":    "asym=0.6|T_ack mean",
		"ack-over-in-sym": "asym=0.0|T_ack/T_in",
	})
}

// BenchmarkE20DynamicChurn reproduces E20: discovery latency from link
// birth under node churn (late joins, permanent leaves).
func BenchmarkE20DynamicChurn(b *testing.B) {
	runExperiment(b, "E20", map[string]string{
		"lat-mean-static": "static|mean lat",
		"lat-mean-churn":  "join 0.3, leave 0.15|mean lat",
		"covered-churn":   "join 0.3, leave 0.15|covered %",
	})
}

// BenchmarkE21MobilityPrimary reproduces E21: discovery on a live network
// under waypoint mobility and primary-user spectrum dynamics.
func BenchmarkE21MobilityPrimary(b *testing.B) {
	runExperiment(b, "E21", map[string]string{
		"lat-mean-fixed":  "fixed|mean lat",
		"lat-mean-mobile": "speed 0.02 + pu|mean lat",
		"covered-mobile":  "speed 0.02 + pu|covered %",
	})
}
