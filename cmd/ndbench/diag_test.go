package main

// Tests for the -diag live-diagnostics server: the smoke test probes the
// live endpoints mid-run via the diagStarted hook (so the server is
// guaranteed up and the suite not yet started), and the invariance test
// pins the matched-seed output byte-identical with and without -diag —
// attaching diagnostics must never change results.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"m2hew/internal/harness"
)

// httpBody fetches a URL and returns the body.
func httpBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestDiagSmoke runs a quick experiment with -diag on an ephemeral port and
// probes the server from the diagStarted hook: /runinfo must carry the
// scenario, /metrics must answer, and /progress must stream at least the
// snapshot record plus — read again after the run — the completions.
func TestDiagSmoke(t *testing.T) {
	defer func(prev func(string)) { diagStarted = prev }(diagStarted)

	var (
		mu      sync.Mutex
		baseURL string
		runinfo string
		metrics string
		first   harness.ProgressRecord
	)
	diagStarted = func(url string) {
		mu.Lock()
		defer mu.Unlock()
		baseURL = url
		runinfo = httpBody(t, url+"/runinfo")
		metrics = httpBody(t, url+"/metrics")

		// /progress during the live run: the snapshot record arrives
		// immediately even though trials are still queued.
		resp, err := http.Get(url + "/progress")
		if err != nil {
			t.Fatalf("GET /progress: %v", err)
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		if !sc.Scan() {
			t.Fatalf("no progress record streamed: %v", sc.Err())
		}
		if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
			t.Fatalf("bad progress record %q: %v", sc.Text(), err)
		}
	}

	var out strings.Builder
	if err := run([]string{"-exp", "E1", "-quick", "-trials", "2", "-seed", "11", "-diag", "127.0.0.1:0"}, &out); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if baseURL == "" {
		t.Fatal("diagStarted hook never ran")
	}
	if !strings.Contains(runinfo, `"command": "ndbench"`) || !strings.Contains(runinfo, "E1") {
		t.Errorf("/runinfo missing command or experiment id:\n%s", runinfo)
	}
	if !strings.Contains(metrics, "nd_trials_total") {
		t.Errorf("/metrics missing aggregate series:\n%s", metrics)
	}
	if first.Index != -1 {
		t.Errorf("first streamed record = %+v, want the snapshot (index -1)", first)
	}
	// The server is gone after run returns (deferred Close).
	if _, err := http.Get(baseURL + "/runinfo"); err == nil {
		t.Error("diag server still answering after the run")
	}
}

// TestDiagDoesNotPerturbResults is the matched-seed byte-identity guard:
// the experiment tables must be identical with -diag off, with -diag on,
// and with a /progress client attached mid-run — the diagnostics layer
// reads snapshots, it never touches the engines.
func TestDiagDoesNotPerturbResults(t *testing.T) {
	defer func(prev func(string)) { diagStarted = prev }(diagStarted)
	base := []string{"-exp", "E1", "-quick", "-trials", "2", "-seed", "11", "-markdown"}

	diagStarted = func(string) {}
	var bare strings.Builder
	if err := run(base, &bare); err != nil {
		t.Fatal(err)
	}

	// With -diag and a /progress subscriber held open across the whole run:
	// the subscription outliving the hook exercises the live-record path
	// while trials execute.
	var progressBody io.ReadCloser
	diagStarted = func(url string) {
		resp, err := http.Get(url + "/progress")
		if err != nil {
			t.Fatalf("GET /progress: %v", err)
		}
		progressBody = resp.Body
	}
	var diag strings.Builder
	if err := run(append(base, "-diag", "127.0.0.1:0"), &diag); err != nil {
		t.Fatal(err)
	}
	if progressBody != nil {
		progressBody.Close()
	}
	if bare.String() != diag.String() {
		t.Errorf("markdown tables changed when -diag was attached:\n--- without ---\n%s\n--- with ---\n%s",
			bare.String(), diag.String())
	}
}
