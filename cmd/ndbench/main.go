// Command ndbench runs the reproduction experiment suite (E1–E21, see
// DESIGN.md §5) and prints claim-versus-measurement tables.
//
// Usage:
//
//	ndbench -all                       # run the whole suite
//	ndbench -exp E4 -trials 50         # one experiment, more trials
//	ndbench -all -markdown             # emit EXPERIMENTS.md-style markdown
//	ndbench -all -json                 # one JSON object per experiment (NDJSON)
//	ndbench -all -metrics metrics.ndjson  # dump aggregated run telemetry
//	ndbench -all -cpuprofile cpu.out   # profile the suite
//	ndbench -list                      # list experiments
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"m2hew/internal/diag"
	"m2hew/internal/experiment"
	"m2hew/internal/harness"
	"m2hew/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ndbench:", err)
		os.Exit(1)
	}
}

// diagStarted is called with the diagnostics server's base URL once it is
// listening; the smoke tests override it to probe the live server
// mid-run. It must return before the suite starts.
var diagStarted = func(url string) {}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("ndbench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		all      = fs.Bool("all", false, "run every experiment")
		expID    = fs.String("exp", "", "experiment id(s) to run, comma separated (e.g. E4 or E1,E4)")
		list     = fs.Bool("list", false, "list experiments and exit")
		trials   = fs.Int("trials", 0, "trials per configuration (0 = default 20)")
		seed     = fs.Uint64("seed", 0, "root seed (0 = default 1)")
		eps      = fs.Float64("eps", 0, "target failure probability ε (0 = default 0.1)")
		quick    = fs.Bool("quick", false, "shrink workloads for a fast pass")
		markdown = fs.Bool("markdown", false, "emit markdown tables")
		asJSON   = fs.Bool("json", false, "emit one JSON object per experiment (NDJSON)")
		metrics  = fs.String("metrics", "", "aggregate run telemetry across all trials and write it as NDJSON to this file (\"-\" = stdout, after the tables)")
		diagAddr = fs.String("diag", "", "serve live diagnostics (/metrics, /runinfo, /progress, /debug/pprof) on this address (e.g. 127.0.0.1:6060) for the duration of the run")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := telemetry.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil && retErr == nil {
			retErr = err
		}
	}()

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(out, "%-4s %s\n", e.ID, e.Claim)
		}
		return nil
	}

	var entries []experiment.Entry
	switch {
	case *all && *expID != "":
		return fmt.Errorf("-all and -exp are mutually exclusive")
	case *all:
		entries = experiment.All()
	case *expID != "":
		for _, id := range strings.Split(*expID, ",") {
			e, err := experiment.ByID(strings.ToUpper(strings.TrimSpace(id)))
			if err != nil {
				return err
			}
			entries = append(entries, e)
		}
	default:
		return fmt.Errorf("nothing to do: pass -all, -exp <id>, or -list")
	}

	if *markdown && *asJSON {
		return fmt.Errorf("-markdown and -json are mutually exclusive")
	}
	opts := experiment.Options{
		Trials: *trials,
		Seed:   *seed,
		Eps:    *eps,
		Quick:  *quick,
	}
	var (
		reg  *telemetry.Registry
		agg  *telemetry.Aggregate
		prog *harness.Progress
	)
	if *metrics != "" || *diagAddr != "" {
		// The aggregate rides the harness instrument seam, so every trial of
		// every experiment feeds it without the experiments knowing.
		reg = telemetry.NewRegistry()
		agg = telemetry.NewAggregate(reg)
	}
	var instruments []harness.Instrument
	if agg != nil {
		instruments = append(instruments, agg)
	}
	if *diagAddr != "" {
		prog = harness.NewProgress()
		prog.SetPhase("experiments")
		instruments = append(instruments, prog)
	}
	if ins := harness.Instruments(instruments...); ins != nil {
		harness.SetInstrument(ins)
		defer harness.SetInstrument(nil)
	}
	if *diagAddr != "" {
		ids := make([]string, len(entries))
		for i, e := range entries {
			ids[i] = e.ID
		}
		srv, err := diag.Serve(*diagAddr, diag.Config{
			Registry: reg,
			Progress: prog,
			Info: diag.RunInfo{
				Command: "ndbench", Args: args, Seed: int64(*seed),
				Scenario: struct {
					Experiments []string           `json:"experiments"`
					Options     experiment.Options `json:"options"`
				}{ids, opts},
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintln(os.Stderr, "ndbench: diagnostics on", srv.URL())
		diagStarted(srv.URL())
	}
	// Experiments are independent deterministic functions of opts, so they
	// run on the harness pool; output is emitted afterwards in input order.
	tables := make([]*experiment.Table, len(entries))
	if err := harness.Run(len(entries), func(i int) error {
		table, err := entries[i].Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", entries[i].ID, err)
		}
		tables[i] = table
		return nil
	}); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	for i, table := range tables {
		switch {
		case *asJSON:
			// NDJSON: one object per line, ready for `jq -s` or line-oriented
			// perf-trajectory tooling.
			if err := enc.Encode(table); err != nil {
				return err
			}
		case *markdown:
			if _, err := fmt.Fprintln(out, table.Markdown()); err != nil {
				return err
			}
		default:
			if i > 0 {
				fmt.Fprintln(out)
			}
			if err := table.Format(out); err != nil {
				return err
			}
		}
	}
	if agg != nil {
		agg.UpdateDerived()
		if *metrics != "" {
			if err := writeMetrics(*metrics, out, reg); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeMetrics dumps the registry as NDJSON to path, or to out for "-".
func writeMetrics(path string, out io.Writer, reg *telemetry.Registry) error {
	if path == "-" {
		return telemetry.WriteNDJSON(out, reg)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteNDJSON(f, reg); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
