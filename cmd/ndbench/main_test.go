package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"E1", "E5", "E10"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "e8", "-quick", "-trials", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "E8") {
		t.Fatalf("output missing table header:\n%s", sb.String())
	}
}

func TestMarkdownOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E8", "-quick", "-trials", "3", "-markdown"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "### E8") {
		t.Fatalf("markdown output missing header:\n%s", sb.String())
	}
}

func TestFlagErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no action accepted")
	}
	if err := run([]string{"-all", "-exp", "E1"}, &sb); err == nil {
		t.Error("-all with -exp accepted")
	}
	if err := run([]string{"-exp", "E99"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

type jsonTable struct {
	ID      string   `json:"id"`
	Columns []string `json:"columns"`
	Rows    []struct {
		Label  string    `json:"label"`
		Values []float64 `json:"values"`
	} `json:"rows"`
}

// decodeNDJSON parses one table per non-empty line.
func decodeNDJSON(t *testing.T, s string) []jsonTable {
	t.Helper()
	var tables []jsonTable
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line == "" {
			continue
		}
		var tbl jsonTable
		if err := json.Unmarshal([]byte(line), &tbl); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", line, err)
		}
		tables = append(tables, tbl)
	}
	return tables
}

func TestJSONOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E8", "-quick", "-trials", "3", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	tables := decodeNDJSON(t, sb.String())
	if len(tables) != 1 || tables[0].ID != "E8" {
		t.Fatalf("tables = %+v", tables)
	}
	if len(tables[0].Rows) == 0 || len(tables[0].Rows[0].Values) != len(tables[0].Columns) {
		t.Fatal("row shape mismatch")
	}
}

func TestJSONOutputMultiple(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E8,E16", "-quick", "-trials", "3", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	tables := decodeNDJSON(t, sb.String())
	if len(tables) != 2 || tables[0].ID != "E8" || tables[1].ID != "E16" {
		t.Fatalf("expected E8 then E16, got %+v", tables)
	}
}

func TestJSONMarkdownExclusive(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E8", "-json", "-markdown"}, &sb); err == nil {
		t.Fatal("-json -markdown accepted together")
	}
}

func TestMultipleExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "e8, E16", "-quick", "-trials", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "E8") || !strings.Contains(out, "E16") {
		t.Fatalf("multi-experiment output missing a table:\n%s", out)
	}
}
