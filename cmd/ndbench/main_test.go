package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"E1", "E5", "E10"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "e8", "-quick", "-trials", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "E8") {
		t.Fatalf("output missing table header:\n%s", sb.String())
	}
}

func TestMarkdownOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E8", "-quick", "-trials", "3", "-markdown"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "### E8") {
		t.Fatalf("markdown output missing header:\n%s", sb.String())
	}
}

func TestFlagErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no action accepted")
	}
	if err := run([]string{"-all", "-exp", "E1"}, &sb); err == nil {
		t.Error("-all with -exp accepted")
	}
	if err := run([]string{"-exp", "E99"}, &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

type jsonTable struct {
	ID      string   `json:"id"`
	Columns []string `json:"columns"`
	Rows    []struct {
		Label  string    `json:"label"`
		Values []float64 `json:"values"`
	} `json:"rows"`
}

// decodeNDJSON parses one table per non-empty line.
func decodeNDJSON(t *testing.T, s string) []jsonTable {
	t.Helper()
	var tables []jsonTable
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line == "" {
			continue
		}
		var tbl jsonTable
		if err := json.Unmarshal([]byte(line), &tbl); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", line, err)
		}
		tables = append(tables, tbl)
	}
	return tables
}

func TestJSONOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E8", "-quick", "-trials", "3", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	tables := decodeNDJSON(t, sb.String())
	if len(tables) != 1 || tables[0].ID != "E8" {
		t.Fatalf("tables = %+v", tables)
	}
	if len(tables[0].Rows) == 0 || len(tables[0].Rows[0].Values) != len(tables[0].Columns) {
		t.Fatal("row shape mismatch")
	}
}

func TestJSONOutputMultiple(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E8,E16", "-quick", "-trials", "3", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	tables := decodeNDJSON(t, sb.String())
	if len(tables) != 2 || tables[0].ID != "E8" || tables[1].ID != "E16" {
		t.Fatalf("expected E8 then E16, got %+v", tables)
	}
}

func TestJSONMarkdownExclusive(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "E8", "-json", "-markdown"}, &sb); err == nil {
		t.Fatal("-json -markdown accepted together")
	}
}

func TestMultipleExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "e8, E16", "-quick", "-trials", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "E8") || !strings.Contains(out, "E16") {
		t.Fatalf("multi-experiment output missing a table:\n%s", out)
	}
}

// metricLine is one telemetry.MetricSnapshot NDJSON record.
type metricLine struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Labels []struct {
		Key   string `json:"key"`
		Value string `json:"value"`
	} `json:"labels,omitempty"`
	Value     float64 `json:"value"`
	Histogram *struct {
		Count uint64  `json:"count"`
		Sum   float64 `json:"sum"`
	} `json:"histogram,omitempty"`
}

// TestMetricsOutput runs one experiment twice with a matched seed — bare
// and with -metrics — and checks (a) the tables stay byte-identical with
// telemetry attached, and (b) the NDJSON dump carries the headline series:
// collisions, idle listens, per-channel utilization shares, and discovery
// latency.
func TestMetricsOutput(t *testing.T) {
	base := []string{"-exp", "E1", "-quick", "-trials", "2", "-seed", "11", "-markdown"}
	var bare strings.Builder
	if err := run(base, &bare); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "metrics.ndjson")
	var instrumented strings.Builder
	if err := run(append(base, "-metrics", path), &instrumented); err != nil {
		t.Fatal(err)
	}
	if bare.String() != instrumented.String() {
		t.Error("markdown tables changed when -metrics was attached; telemetry must not perturb runs")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]metricLine{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var m metricLine
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid metrics line %q: %v", line, err)
		}
		byName[m.Name] = append(byName[m.Name], m)
	}
	for _, name := range []string{
		"nd_trials_total", "nd_slots_total", "nd_transmissions_total",
		"nd_collisions_total", "nd_idle_listens_total", "nd_deliveries_total",
		"nd_trial_wall_seconds", "nd_trial_queue_seconds",
	} {
		ms, ok := byName[name]
		if !ok {
			t.Errorf("metrics dump missing %s", name)
			continue
		}
		if m := ms[0]; m.Histogram == nil && m.Value == 0 {
			t.Errorf("%s = 0; the E1 workload produces activity", name)
		}
	}
	if lat, ok := byName["nd_discovery_latency"]; !ok || lat[0].Histogram == nil || lat[0].Histogram.Count == 0 {
		t.Errorf("nd_discovery_latency missing or empty: %+v", lat)
	}
	shares := byName["nd_channel_tx_share"]
	if len(shares) == 0 {
		t.Fatal("metrics dump missing nd_channel_tx_share gauges")
	}
	var total float64
	for _, m := range shares {
		total += m.Value
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("channel tx shares sum to %v, want 1", total)
	}
}

// TestQuickSuiteGolden pins the whole quick-suite markdown output, byte for
// byte, to a golden file generated before the engines grew their indexed
// resolvers and reused buffers. The experiment tables are a pure function
// of the seed, so any engine change that shifts a delivery, an RNG draw, or
// a float accumulation — however plausible-looking — lands here as a diff.
// Regenerate only after deliberately changing simulation semantics:
//
//	go run ./cmd/ndbench -all -markdown -quick -trials 3 -seed 11 \
//	    > cmd/ndbench/testdata/all_quick_seed11.md
func TestQuickSuiteGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "all_quick_seed11.md"))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-all", "-markdown", "-quick", "-trials", "3", "-seed", "11"}, &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("quick-suite output diverged from golden at line %d:\n got: %q\nwant: %q", i+1, g, w)
		}
	}
	t.Fatal("quick-suite output diverged from golden (length mismatch only)")
}
