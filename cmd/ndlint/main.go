// Command ndlint runs the repository's custom determinism and concurrency
// analyzers (internal/lint/...) over the whole module.
//
// Usage:
//
//	go run ./cmd/ndlint ./...
//
// ndlint always analyzes every package of the enclosing module (package
// pattern arguments are accepted for familiarity and ignored); it exits 0
// when the tree is clean, 1 when it found violations, and 2 on an internal
// error. Findings print in deterministic (file, line, column, analyzer)
// order, one per line as file:line:col: message (analyzer); -json switches
// to NDJSON objects and -github to GitHub Actions ::error annotations.
// A verified false positive can be suppressed in source with a comment:
//
//	//ndlint:ignore <analyzer> <reason>
//
// on the offending line or the line above it. -verify-suppressions
// additionally reports directives that no longer suppress anything, so
// stale ignores die with the code they excused. -tests widens the load to
// _test.go files (in-package tests merge into their package; external test
// packages analyze as <path>_test), and -tags adds build tags so
// constraint-gated files are analyzed too. See CONTRIBUTING.md for what
// each analyzer enforces and why.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"m2hew/internal/lint"
	"m2hew/internal/lint/suite"
	"m2hew/internal/telemetry"
)

// options bundles everything run needs, so tests drive it without flags.
type options struct {
	// Tests widens loading to _test.go files.
	Tests bool
	// Tags are extra build tags honored during loading.
	Tags []string
	// VerifySuppressions reports stale //ndlint:ignore directives as
	// findings.
	VerifySuppressions bool
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit NDJSON diagnostics (one object per line)")
	githubOut := flag.Bool("github", false, "emit GitHub Actions ::error annotations")
	tests := flag.Bool("tests", false, "also analyze _test.go files (in-package and external test packages)")
	tags := flag.String("tags", "", "comma-separated extra build tags honored when loading")
	verifySup := flag.Bool("verify-suppressions", false, "fail on //ndlint:ignore directives that no longer suppress anything")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ndlint [-list] [-json|-github] [-tests] [-tags t1,t2] [-verify-suppressions] [packages]\n\nruns the m2hew determinism lint suite over the enclosing module\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *githubOut {
		fmt.Fprintln(os.Stderr, "ndlint: -json and -github are mutually exclusive")
		os.Exit(2)
	}

	stopProfiles, err := telemetry.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndlint: %v\n", err)
		os.Exit(2)
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndlint: %v\n", err)
		os.Exit(2)
	}
	opts := options{Tests: *tests, VerifySuppressions: *verifySup}
	if *tags != "" {
		opts.Tags = strings.Split(*tags, ",")
	}
	diags, err := run(wd, opts)
	// os.Exit skips defers, so the profiles are finished explicitly before
	// any exit path.
	if stopErr := stopProfiles(); stopErr != nil && err == nil {
		err = stopErr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndlint: %v\n", err)
		os.Exit(2)
	}
	format := formatDefault
	switch {
	case *jsonOut:
		format = formatJSON
	case *githubOut:
		format = formatGitHub
	}
	report(os.Stdout, diags, format)
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ndlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// output formats for report.
const (
	formatDefault = iota
	formatJSON
	formatGitHub
)

// report prints diags to w in the selected format.
func report(w io.Writer, diags []lint.Diagnostic, format int) {
	for _, d := range diags {
		switch format {
		case formatJSON:
			fmt.Fprintln(w, d.JSON())
		case formatGitHub:
			fmt.Fprintln(w, d.GitHub())
		default:
			fmt.Fprintln(w, d)
		}
	}
}

// run loads the module enclosing dir and applies the suite, returning the
// surviving diagnostics in deterministic (file, line, column, analyzer)
// order across all packages.
func run(dir string, opts options) ([]lint.Diagnostic, error) {
	root, err := lint.FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := lint.LoadRepoWith(root, lint.LoadOptions{
		IncludeTests: opts.Tests,
		Tags:         opts.Tags,
	})
	if err != nil {
		return nil, err
	}
	analyzers := suite.Analyzers()
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, directives, err := lint.RunAnalyzersDirectives(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
		if opts.VerifySuppressions {
			for _, dir := range directives {
				if dir.Used {
					continue
				}
				all = append(all, lint.Diagnostic{
					Analyzer: "suppressions",
					Pos:      dir.Pos,
					Message:  fmt.Sprintf("stale %s %s: it no longer suppresses anything; delete it", lint.IgnoreDirective, dir.Analyzer),
				})
			}
		}
	}
	lint.SortDiagnostics(all)
	return all, nil
}
