// Command ndlint runs the repository's custom determinism and concurrency
// analyzers (internal/lint/...) over the whole module.
//
// Usage:
//
//	go run ./cmd/ndlint ./...
//
// ndlint always analyzes every package of the enclosing module (package
// pattern arguments are accepted for familiarity and ignored); it exits 0
// when the tree is clean, 1 when it found violations, and 2 on an internal
// error. Findings print one per line as file:line:col: message (analyzer).
// A verified false positive can be suppressed in source with a comment:
//
//	//ndlint:ignore <analyzer> <reason>
//
// on the offending line or the line above it. See CONTRIBUTING.md for what
// each analyzer enforces and why.
package main

import (
	"flag"
	"fmt"
	"os"

	"m2hew/internal/lint"
	"m2hew/internal/lint/suite"
	"m2hew/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ndlint [-list] [packages]\n\nruns the m2hew determinism lint suite over the enclosing module\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	stopProfiles, err := telemetry.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := run()
	// os.Exit skips defers, so the profiles are finished explicitly before
	// any exit path.
	if stopErr := stopProfiles(); stopErr != nil && err == nil {
		err = stopErr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ndlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// run loads every module package and applies the suite.
func run() ([]lint.Diagnostic, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		return nil, err
	}
	pkgs, err := lint.LoadRepo(root)
	if err != nil {
		return nil, err
	}
	analyzers := suite.Analyzers()
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}
