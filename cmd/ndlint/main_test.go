package main

import (
	"strings"
	"testing"
)

// TestRun lints the enclosing repository through the command's own entry
// path; the tree must be clean (the suite self-test asserts the same
// invariant package by package).
func TestRun(t *testing.T) {
	diags, err := run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var lines []string
	for _, d := range diags {
		lines = append(lines, d.String())
	}
	if len(diags) != 0 {
		t.Fatalf("repository has lint violations:\n%s", strings.Join(lines, "\n"))
	}
}
