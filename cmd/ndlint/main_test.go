package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"m2hew/internal/lint"
)

// TestRun lints the enclosing repository through the command's own entry
// path; the tree must be clean (the suite self-test asserts the same
// invariant package by package), including under -verify-suppressions —
// every //ndlint:ignore in the tree must still be earning its keep.
func TestRun(t *testing.T) {
	diags, err := run(".", options{VerifySuppressions: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var lines []string
	for _, d := range diags {
		lines = append(lines, d.String())
	}
	if len(diags) != 0 {
		t.Fatalf("repository has lint violations:\n%s", strings.Join(lines, "\n"))
	}
}

// TestRunOrdering checks that a multi-package run reports findings in
// deterministic (file, line) order.
func TestRunOrdering(t *testing.T) {
	diags, err := run("testdata/badmod", options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (a/a.go and b/b.go):\n%s", len(diags), render(diags))
	}
	if !strings.HasSuffix(diags[0].Pos.Filename, filepath.Join("a", "a.go")) {
		t.Errorf("first diagnostic is %s, want a/a.go", diags[0].Pos.Filename)
	}
	if !strings.HasSuffix(diags[1].Pos.Filename, filepath.Join("b", "b.go")) {
		t.Errorf("second diagnostic is %s, want b/b.go", diags[1].Pos.Filename)
	}
	for _, d := range diags {
		if d.Analyzer != "norand" {
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
	}
	// The same run must be byte-for-byte repeatable.
	again, err := run("testdata/badmod", options{})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if render(diags) != render(again) {
		t.Errorf("two identical runs disagree:\n%s\nvs\n%s", render(diags), render(again))
	}
}

// TestRunTests checks that -tests pulls in in-package and external test
// files.
func TestRunTests(t *testing.T) {
	diags, err := run("testdata/badmod", options{Tests: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// a/a.go, a/a_test.go (merged into a), b/b.go, b/ext_test.go (badmod/b_test).
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics with -tests, want 4:\n%s", len(diags), render(diags))
	}
	wantFiles := []string{
		filepath.Join("a", "a.go"),
		filepath.Join("a", "a_test.go"),
		filepath.Join("b", "b.go"),
		filepath.Join("b", "ext_test.go"),
	}
	for i, w := range wantFiles {
		if !strings.HasSuffix(diags[i].Pos.Filename, w) {
			t.Errorf("diagnostic %d is %s, want %s", i, diags[i].Pos.Filename, w)
		}
	}
}

// TestRunTags checks that -tags analyzes constraint-gated files.
func TestRunTags(t *testing.T) {
	diags, err := run("testdata/badmod", options{Tags: []string{"extra"}})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	found := false
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "tagged.go") {
			found = true
		}
	}
	if !found {
		t.Errorf("no diagnostic from the build-tagged file with -tags extra:\n%s", render(diags))
	}
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics with -tags extra, want 3:\n%s", len(diags), render(diags))
	}
}

// TestRunVerifySuppressions checks that stale ignore directives surface as
// findings.
func TestRunVerifySuppressions(t *testing.T) {
	diags, err := run("testdata/badmod", options{VerifySuppressions: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var stale []lint.Diagnostic
	for _, d := range diags {
		if d.Analyzer == "suppressions" {
			stale = append(stale, d)
		}
	}
	if len(stale) != 1 || !strings.HasSuffix(stale[0].Pos.Filename, filepath.Join("c", "c.go")) {
		t.Fatalf("want exactly one stale-suppression finding in c/c.go, got:\n%s", render(diags))
	}
	if !strings.Contains(stale[0].Message, "no longer suppresses anything") {
		t.Errorf("stale finding message %q lacks the explanation", stale[0].Message)
	}
}

// TestReportFormats checks the three output formats over one diagnostic.
func TestReportFormats(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "norand", Message: "bad, very:bad\nline"}
	d.Pos.Filename = "x/y.go"
	d.Pos.Line = 7
	d.Pos.Column = 3

	var buf bytes.Buffer
	report(&buf, []lint.Diagnostic{d}, formatDefault)
	if got := buf.String(); !strings.HasPrefix(got, "x/y.go:7:3:") || !strings.Contains(got, "(norand)") {
		t.Errorf("default format: %q", got)
	}

	buf.Reset()
	report(&buf, []lint.Diagnostic{d}, formatJSON)
	var obj struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("json format is not valid JSON: %v (%q)", err, buf.String())
	}
	if obj.Analyzer != "norand" || obj.File != "x/y.go" || obj.Line != 7 || obj.Col != 3 || obj.Message != d.Message {
		t.Errorf("json round-trip mismatch: %+v", obj)
	}

	buf.Reset()
	report(&buf, []lint.Diagnostic{d}, formatGitHub)
	got := strings.TrimSuffix(buf.String(), "\n")
	want := "::error file=x/y.go,line=7,col=3,title=ndlint/norand::bad, very:bad%0Aline"
	if got != want {
		t.Errorf("github format:\n got %q\nwant %q", got, want)
	}
}

// TestExitCodes builds the command once and checks the documented exit
// contract: 0 on a clean module, 1 when unsuppressed findings exist.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary build in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "ndlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building ndlint: %v\n%s", err, out)
	}
	for _, tc := range []struct {
		dir  string
		want int
	}{
		{"testdata/goodmod", 0},
		{"testdata/badmod", 1},
	} {
		cmd := exec.Command(bin)
		cmd.Dir = tc.dir
		cmd.Env = os.Environ()
		out, err := cmd.CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running ndlint in %s: %v\n%s", tc.dir, err, out)
		}
		if code != tc.want {
			t.Errorf("ndlint in %s exited %d, want %d\n%s", tc.dir, code, tc.want, out)
		}
	}
}

// render joins diagnostics for failure messages.
func render(diags []lint.Diagnostic) string {
	var lines []string
	for _, d := range diags {
		lines = append(lines, d.String())
	}
	return strings.Join(lines, "\n")
}
