// Package a violates norand twice: once unconditionally, once behind a
// build tag (tagged.go), plus once in its in-package test file.
package a

import "math/rand"

// Roll draws from process-global state no seed controls.
func Roll() int { return rand.Int() }
