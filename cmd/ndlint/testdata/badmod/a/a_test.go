package a

import (
	"math/rand"
	"testing"
)

func TestRoll(t *testing.T) {
	if Roll() < 0 && rand.Int() < 0 {
		t.Fatal("negative")
	}
}
