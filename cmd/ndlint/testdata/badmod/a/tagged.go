//go:build extra

package a

import "math/rand"

// TaggedRoll only exists under the extra build tag.
func TaggedRoll() int { return rand.Int() }
