// Package b violates norand in its non-test source and in an external test
// package.
package b

import "math/rand"

// Draw draws from process-global state no seed controls.
func Draw() float64 { return rand.Float64() }
