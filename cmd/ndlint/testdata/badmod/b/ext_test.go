package b_test

import (
	"math/rand"
	"testing"

	"badmod/b"
)

func TestDraw(t *testing.T) {
	if b.Draw() < 0 || rand.Float64() < 0 {
		t.Fatal("negative")
	}
}
