// Package c is clean but carries a stale suppression: the directive below
// excuses a violation that no longer exists.
package c

//ndlint:ignore norand legacy excuse for a rand import deleted long ago
func Clean() int { return 4 }
