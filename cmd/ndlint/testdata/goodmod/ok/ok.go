// Package ok is clean: the exit-0 fixture.
package ok

// Four is deterministic.
func Four() int { return 4 }
