// Command ndperf measures engine throughput on the canonical benchmark
// scenarios (the geometric networks of internal/sim's benchmarks) and
// writes a machine-readable snapshot to BENCH_3.json: ns per operation, ns
// per resolved slot, allocations, and delivery throughput for the
// synchronous and both asynchronous engines, plus steady-state rows that
// reuse one sim scratch across runs (the trial-loop configuration),
// large-n rows (200-node sync, 100-node async), and dynamic rows that run
// the same large-n scenarios on a churn / mobility world so the epoch
// boundary-crossing cost stays measured, and kernel rows that isolate the
// channel package's word-level bitset primitives (the word-OR transmitter
// mask pass and the batched candidate-mask intersection) from the engines
// built on them. `make bench` refreshes the
// committed snapshot; CI runs it as a smoke and uploads the artifact, so a
// hot-path regression shows up as a diff instead of an anecdote.
//
// The workloads mirror BenchmarkRunSync / BenchmarkRunAsync /
// BenchmarkRunAsyncOnline and their Scratch / large-n variants exactly
// (same topology seeds, protocol seeds, and horizons) with one addition: a
// counting observer tallies deliveries so throughput can be reported per
// second of engine time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/diag"
	"m2hew/internal/dynamics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/telemetry"
	"m2hew/internal/topology"
)

// benchRow is one engine's measurement. slots_per_op counts the slots the
// engine resolved per run: global slots for the synchronous engine, local
// slots per node (frames × slots-per-frame) for the asynchronous ones.
type benchRow struct {
	Name             string  `json:"name"`
	NsPerOp          int64   `json:"ns_per_op"`
	BytesPerOp       int64   `json:"bytes_per_op"`
	AllocsPerOp      int64   `json:"allocs_per_op"`
	SlotsPerOp       float64 `json:"slots_per_op"`
	NsPerSlot        float64 `json:"ns_per_slot"`
	DeliveriesPerOp  float64 `json:"deliveries_per_op"`
	DeliveriesPerSec float64 `json:"deliveries_per_sec"`
}

// snapshot is the BENCH_3.json document.
type snapshot struct {
	Scenario   string     `json:"scenario"`
	Notes      string     `json:"notes"`
	Benchmarks []benchRow `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_3.json", "output path for the JSON snapshot")
	metrics := flag.String("metrics", "", "also derive run telemetry during the benchmarks and write it as NDJSON to this file (skews allocs_per_op; not for committed snapshots)")
	diagAddr := flag.String("diag", "", "serve live diagnostics (/metrics, /runinfo, /debug/pprof) on this address while the benchmarks run (/metrics is populated only with -metrics)")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file at exit")
	soak := flag.Bool("soak1m", false, "run the off-CI 1M-node tiled soak instead of the benchmark suite (no snapshot is written)")
	flag.Parse()
	if *soak {
		if err := soak1M(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "ndperf:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *metrics, *diagAddr, *cpuProf, *memProf); err != nil {
		fmt.Fprintln(os.Stderr, "ndperf:", err)
		os.Exit(1)
	}
}

// diagStarted is called with the diagnostics server's base URL once it is
// listening; tests override it to probe the live server.
var diagStarted = func(url string) {}

func run(out, metricsPath, diagAddr, cpuProf, memProf string) (retErr error) {
	stopProfiles, err := telemetry.StartProfiles(cpuProf, memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	nw, err := benchNetworkN(30, 0.35)
	if err != nil {
		return err
	}
	params := nw.ComputeParams()
	nw200, err := benchNetworkN(200, 0.12)
	if err != nil {
		return err
	}
	nw100, err := benchNetworkN(100, 0.16)
	if err != nil {
		return err
	}
	nw100k, tiling100k, err := benchNetwork100k()
	if err != nil {
		return err
	}

	var (
		reg *telemetry.Registry
		agg *telemetry.Aggregate
	)
	if metricsPath != "" {
		reg = telemetry.NewRegistry()
		// The fixed 30-node scenario makes per-node latency series meaningful.
		agg = telemetry.NewAggregate(reg, telemetry.PerNodeLatency(nw.N()))
	}
	if diagAddr != "" {
		// ndperf calls the engines directly (no harness pool), so the diag
		// server exposes /runinfo and the pprof endpoints for profiling a
		// live benchmark; /metrics carries data only when -metrics also
		// attaches the telemetry observer (which skews allocs_per_op).
		srv, err := diag.Serve(diagAddr, diag.Config{
			Registry: reg,
			Info: diag.RunInfo{Command: "ndperf", Seed: 1, Scenario: struct {
				Out     string `json:"out"`
				Metrics string `json:"metrics,omitempty"`
			}{out, metricsPath}},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintln(os.Stderr, "ndperf: diagnostics on", srv.URL())
		diagStarted(srv.URL())
	}
	recycling := func() *sim.AsyncScratch {
		sc := sim.NewAsyncScratch()
		// Safe here: no row reads result Timelines after the next run.
		sc.RecycleTimelines = true
		return sc
	}
	// Dynamic worlds for the large-n rows: churn (with a primary user) on
	// the 200-node sync scenario, mobility on the 100-node async one. Each
	// run gets a fresh world from a fixed seed so the per-epoch rebuild
	// cost is inside the measurement, like the protocol construction is.
	churnWorld := func() *dynamics.World {
		w, err := dynamics.NewWorld(nw200, dynamics.Spec{
			EpochLen: 100,
			Churn:    &dynamics.Churn{JoinFraction: 0.3, JoinWindow: 8, LeaveFraction: 0.2, LeaveWindow: 6},
			Primary:  &dynamics.Primary{Events: 3, Duration: 4, Radius: 0.2},
		}, 5, rng.New(7))
		if err != nil {
			panic(err)
		}
		return w
	}
	mobilityWorld := func() *dynamics.World {
		w, err := dynamics.NewWorld(nw100, dynamics.Spec{
			EpochLen: 50,
			Mobility: &dynamics.Mobility{Speed: 0.01, Radius: 0.16, Pause: 1},
		}, 14, rng.New(7))
		if err != nil {
			panic(err)
		}
		return w
	}
	rows := []benchRow{
		benchSync("RunSync", nw, params.Delta, 2000, nil, nil, nil, agg),
		benchAsync("RunAsync", sim.RunAsync, nw, params.Delta, 800, nil, nil, agg),
		benchAsync("RunAsyncOnline", sim.RunAsyncOnline, nw, params.Delta, 800, nil, nil, agg),
		// Steady state: one scratch reused across runs, the per-worker trial
		// loop configuration. The gap to the rows above is the reuse saving.
		benchSync("RunSyncScratch", nw, params.Delta, 2000, sim.NewSyncScratch(), nil, nil, agg),
		benchAsync("RunAsyncScratch", sim.RunAsync, nw, params.Delta, 800, recycling(), nil, agg),
		// Large-n regime (shorter horizons keep wall time comparable).
		benchSync("RunSyncN200", nw200, nw200.ComputeParams().Delta, 500, sim.NewSyncScratch(), nil, nil, nil),
		benchAsync("RunAsyncN100", sim.RunAsync, nw100, nw100.ComputeParams().Delta, 200, recycling(), nil, nil),
		// Very-large-n regime: the streamed-CSR 100k scenario on the tiled
		// parallel resolver. A short horizon keeps the row ~1s/op; deltaEst
		// is fixed (ComputeParams at 100k would dominate setup).
		benchSync("RunSyncN100k", nw100k, 16, 8, sim.NewSyncScratch(), tiling100k, nil, nil),
		// Dynamic regime: same large-n scenarios on a time-varying world.
		// The gap to the static rows above is the dynamics overhead (epoch
		// snapshots, activity gating, growable coverage).
		benchSync("RunSyncChurn", nw200, nw200.ComputeParams().Delta, 500, sim.NewSyncScratch(), nil, churnWorld, nil),
		benchAsync("RunAsyncMobility", sim.RunAsync, nw100, nw100.ComputeParams().Delta, 200, recycling(), mobilityWorld, nil),
	}
	rows = append(rows, benchKernels()...)
	doc := snapshot{
		Scenario:   "GeometricConnected(seed=1) + AssignUniformK(8,4); base n=30 r=0.35 (SyncUniform 2000 slots / Async 800 frames of 3 slots); large-n rows n=200 r=0.12 (500 slots) and n=100 r=0.16 (200 frames); N100k row streams GeometricConnectedCSR n=100k r=0.007 onto the tiled resolver (TilingByRadius 32x32, deltaEst 16, 8 slots); Scratch rows reuse one sim scratch across runs; Churn/Mobility rows run the large-n scenarios on a dynamics.World (seed 7); Kernel rows measure the channel word kernels on the 200-node dimensions (slots_per_op = kernel calls)",
		Notes:      "timings are machine-dependent; compare ratios across commits, not absolute values. slots_per_op is global slots (sync) or per-node local slots (async).",
		Benchmarks: rows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("%-16s %12d ns/op %10.1f ns/slot %8d allocs/op %12.0f deliveries/s\n",
			r.Name, r.NsPerOp, r.NsPerSlot, r.AllocsPerOp, r.DeliveriesPerSec)
	}
	fmt.Println("wrote", out)
	if agg != nil {
		agg.UpdateDerived()
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := telemetry.WriteNDJSON(f, reg); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", metricsPath)
	}
	return nil
}

// teleObserver hands out a fresh per-run telemetry observer, or nil when
// -metrics is off so sim.MultiObserver collapses to the bare delivery
// counter and the committed snapshot path is untouched.
func teleObserver(agg *telemetry.Aggregate, nw *topology.Network) sim.Observer {
	if agg == nil {
		return nil
	}
	channels := 0
	if maxC, ok := nw.Universe().Max(); ok {
		channels = int(maxC) + 1
	}
	return agg.TrialObserver(nw.N(), channels)
}

// benchNetworkN rebuilds the benchmark topologies of
// internal/sim/bench_test.go.
func benchNetworkN(n int, radius float64) (*topology.Network, error) {
	r := rng.New(1)
	nw, err := topology.GeometricConnected(n, radius, r, 100)
	if err != nil {
		return nil, err
	}
	if err := topology.AssignUniformK(nw, 8, 4, r); err != nil {
		return nil, err
	}
	return nw, nil
}

// benchNetwork100k builds the streamed-CSR 100k scenario (mean degree
// ~15, connected at seed 1) and its radius-safe tiling for the tiled
// parallel resolver row.
func benchNetwork100k() (*topology.Network, *topology.Tiling, error) {
	const radius = 0.007
	r := rng.New(1)
	nw, err := topology.GeometricConnectedCSR(100_000, radius, r, 100)
	if err != nil {
		return nil, nil, err
	}
	if err := topology.AssignUniformK(nw, 8, 4, r); err != nil {
		return nil, nil, err
	}
	tl, err := topology.TilingByRadius(nw, radius, 1024)
	if err != nil {
		return nil, nil, err
	}
	return nw, tl, nil
}

func benchSync(name string, nw *topology.Network, deltaEst, maxSlots int, scratch *sim.SyncScratch, tiling *topology.Tiling, world func() *dynamics.World, agg *telemetry.Aggregate) benchRow {
	var deliveries, slots int64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		deliveries, slots = 0, 0
		for i := 0; i < b.N; i++ {
			root := rng.New(uint64(i) + 1)
			protos := make([]sim.SyncProtocol, nw.N())
			for u := 0; u < nw.N(); u++ {
				p, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
				if err != nil {
					b.Fatal(err)
				}
				protos[u] = p
			}
			tele := teleObserver(agg, nw)
			cfg := sim.SyncConfig{
				Network:       nw,
				Protocols:     protos,
				MaxSlots:      maxSlots,
				RunToMaxSlots: true,
				Scratch:       scratch,
				Tiling:        tiling,
				Observer: sim.MultiObserver(sim.OnlyEvents(sim.MaskOf(sim.EventDeliver), sim.ObserverFunc(func(e sim.Event) {
					deliveries++
				})), tele),
			}
			if world != nil {
				cfg.Dynamics = world()
			}
			r, err := sim.RunSync(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if agg != nil {
				agg.TrialDone(tele)
			}
			slots += int64(r.SlotsSimulated)
		}
	})
	return row(name, res, deliveries, float64(slots)/float64(res.N))
}

func benchAsync(name string, engine func(sim.AsyncConfig) (*sim.AsyncResult, error), nw *topology.Network, deltaEst, maxFrames int, scratch *sim.AsyncScratch, world func() *dynamics.World, agg *telemetry.Aggregate) benchRow {
	const (
		frameLen      = 3.0
		slotsPerFrame = 3
	)
	var deliveries int64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		deliveries = 0
		for i := 0; i < b.N; i++ {
			root := rng.New(uint64(i) + 1)
			nodes := make([]sim.AsyncNode, nw.N())
			for u := 0; u < nw.N(); u++ {
				p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
				if err != nil {
					b.Fatal(err)
				}
				drift, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.02, root.Split())
				if err != nil {
					b.Fatal(err)
				}
				nodes[u] = sim.AsyncNode{Protocol: p, Start: root.Float64() * 10, Drift: drift}
			}
			tele := teleObserver(agg, nw)
			cfg := sim.AsyncConfig{
				Network:   nw,
				Nodes:     nodes,
				FrameLen:  frameLen,
				MaxFrames: maxFrames,
				Scratch:   scratch,
				Observer: sim.MultiObserver(sim.OnlyEvents(sim.MaskOf(sim.EventDeliver), sim.ObserverFunc(func(e sim.Event) {
					deliveries++
				})), tele),
			}
			if world != nil {
				cfg.Dynamics = world()
			}
			if _, err := engine(cfg); err != nil {
				b.Fatal(err)
			}
			if agg != nil {
				agg.TrialDone(tele)
			}
		}
	})
	return row(name, res, deliveries, float64(maxFrames*slotsPerFrame))
}

// benchKernels measures the channel package's word-level bitset kernels on
// a slot-resolution-shaped workload (the 200-node scenario's dimensions:
// 200 nodes, 16 channels, 4 words per mask). KernelWordOr is the word-OR
// pass that accumulates per-channel transmitter masks from node channel
// sets; KernelOverlapResolve is the batched candidate-mask intersection
// that resolves every listener against its channel's mask. slots_per_op is
// the number of kernel calls per op; the delivery columns do not apply.
func benchKernels() []benchRow {
	const (
		nodes    = 200
		channels = 16
		wordsPer = (nodes + 63) / 64
	)
	r := rng.New(9)
	masks := make([][]uint64, nodes) // per-listener candidate masks
	srcs := make([][]uint64, nodes)  // per-transmitter id-bit words
	chs := make([]int, nodes)
	for u := 0; u < nodes; u++ {
		m := make([]uint64, wordsPer)
		for i := 0; i < 8; i++ { // ~8 candidate neighbors
			m[r.IntN(wordsPer)] |= 1 << uint(r.IntN(64))
		}
		masks[u] = m
		src := make([]uint64, wordsPer)
		src[u>>6] |= 1 << uint(u&63)
		srcs[u] = src
		chs[u] = r.IntN(channels)
	}
	txWords := make([]uint64, channels*wordsPer)
	orRes := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			for i := range txWords {
				txWords[i] = 0
			}
			for u, src := range srcs {
				w := txWords[chs[u]*wordsPer : (chs[u]+1)*wordsPer]
				channel.OrInto(w, src)
			}
		}
	})
	var sink int
	resolveRes := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			for u, m := range masks {
				w := txWords[chs[u]*wordsPer : (chs[u]+1)*wordsPer]
				count, first := channel.OverlapResolve(m, w)
				sink += count + first
			}
		}
	})
	_ = sink
	return []benchRow{
		row("KernelWordOr", orRes, 0, nodes),
		row("KernelOverlapResolve", resolveRes, 0, nodes),
	}
}

// row folds a benchmark result and its delivery tally into one record. The
// delivery counter covers the final measured run of res.N iterations.
func row(name string, res testing.BenchmarkResult, deliveries int64, slotsPerOp float64) benchRow {
	perOp := float64(deliveries) / float64(res.N)
	var perSec float64
	if s := res.T.Seconds(); s > 0 {
		perSec = float64(deliveries) / s
	}
	return benchRow{
		Name:             name,
		NsPerOp:          res.NsPerOp(),
		BytesPerOp:       res.AllocedBytesPerOp(),
		AllocsPerOp:      res.AllocsPerOp(),
		SlotsPerOp:       slotsPerOp,
		NsPerSlot:        float64(res.NsPerOp()) / slotsPerOp,
		DeliveriesPerOp:  perOp,
		DeliveriesPerSec: perSec,
	}
}
