package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"m2hew/internal/core"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// soak1M is the off-CI scale soak behind `make soak-1m`: one million nodes
// at the same mean degree (~15) as the RunSyncN100k row, streamed into a
// CSR adjacency and resolved on the tiled parallel path. It is a memory
// and wall-clock ceiling check, not a benchmark — it runs once, reports
// each stage's cost plus the engine-internals tallies, and writes no
// snapshot (timings at this scale are too machine-bound to gate on).
func soak1M(w io.Writer) error {
	const (
		n        = 1_000_000
		radius   = 0.0022 // n·π·r² ≈ 15.2 expected neighbors, matching the 100k row
		slots    = 4
		deltaEst = 16
	)
	start := time.Now()
	r := rng.New(1)
	nw, err := topology.GeometricConnectedCSR(n, radius, r, 100)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "graph    %12v  n=%d edges=%d\n", time.Since(start).Round(time.Millisecond), nw.N(), nw.EdgeCount())

	t0 := time.Now()
	if err := topology.AssignUniformK(nw, 8, 4, r); err != nil {
		return err
	}
	fmt.Fprintf(w, "assign   %12v\n", time.Since(t0).Round(time.Millisecond))

	t0 = time.Now()
	tl, err := topology.TilingByRadius(nw, radius, 4096)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "tiling   %12v  %d tiles (%dx%d)\n", time.Since(t0).Round(time.Millisecond), tl.Tiles(), tl.Cols(), tl.Rows())

	t0 = time.Now()
	root := rng.New(2)
	protos := make([]sim.SyncProtocol, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
		if err != nil {
			return err
		}
		protos[u] = p
	}
	fmt.Fprintf(w, "protos   %12v\n", time.Since(t0).Round(time.Millisecond))

	rec := &sim.InternalsRecorder{}
	t0 = time.Now()
	res, err := sim.RunSync(sim.SyncConfig{
		Network:       nw,
		Protocols:     protos,
		MaxSlots:      slots,
		RunToMaxSlots: true,
		Tiling:        tl,
		Observer:      rec,
	})
	if err != nil {
		return err
	}
	runDur := time.Since(t0)
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	fmt.Fprintf(w, "run      %12v  %.1fms/slot\n", runDur.Round(time.Millisecond),
		float64(runDur.Milliseconds())/float64(res.SlotsSimulated))
	fmt.Fprintf(w, "slots=%d progress=%.3f tiled_slots=%d halo_exchanges=%d halo_words=%d heap=%.1fGB total=%v\n",
		res.SlotsSimulated, res.Coverage.Progress(),
		rec.Last.TiledSlots, rec.Last.HaloExchanges, rec.Last.HaloWordsCopied,
		float64(m.HeapAlloc)/1e9, time.Since(start).Round(time.Millisecond))
	if rec.Last.TiledSlots != int64(res.SlotsSimulated) {
		return fmt.Errorf("soak ran %d slots but only %d on the tiled path", res.SlotsSimulated, rec.Last.TiledSlots)
	}
	return nil
}
