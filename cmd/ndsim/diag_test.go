package main

// Tests for ndsim's -diag flag: single runs bypass the harness instrument
// seam, so ndsim attaches the telemetry observer through RunConfig.Observer
// — the smoke test checks the live endpoints answer, the invariance test
// pins the report byte-identical with and without -diag.

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestDiagSmoke probes /runinfo and /metrics from the diagStarted hook,
// then checks the post-run report and the counters the observer fed.
func TestDiagSmoke(t *testing.T) {
	defer func(prev func(string)) { diagStarted = prev }(diagStarted)
	var runinfo string
	diagStarted = func(url string) {
		resp, err := http.Get(url + "/runinfo")
		if err != nil {
			t.Fatalf("GET /runinfo: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		runinfo = string(body)
		if resp, err := http.Get(url + "/metrics"); err != nil {
			t.Fatalf("GET /metrics: %v", err)
		} else {
			resp.Body.Close()
		}
	}
	var sb strings.Builder
	err := run([]string{
		"-topology", "clique", "-nodes", "5", "-universe", "3",
		"-alg", "sync-staged", "-seed", "3", "-diag", "127.0.0.1:0",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if runinfo == "" {
		t.Fatal("diagStarted hook never ran")
	}
	for _, want := range []string{`"command": "ndsim"`, `"seed": 3`, "sync-staged"} {
		if !strings.Contains(runinfo, want) {
			t.Errorf("/runinfo missing %q:\n%s", want, runinfo)
		}
	}
	if !strings.Contains(sb.String(), "complete:") {
		t.Errorf("run report missing:\n%s", sb.String())
	}
}

// TestDiagDoesNotPerturbResults: the matched-seed report must be
// byte-identical with and without -diag — the telemetry observer ndsim
// attaches for /metrics consumes events without affecting results.
func TestDiagDoesNotPerturbResults(t *testing.T) {
	defer func(prev func(string)) { diagStarted = prev }(diagStarted)
	diagStarted = func(string) {}
	base := []string{
		"-topology", "geometric", "-nodes", "12", "-universe", "4",
		"-alg", "sync-staged", "-seed", "7",
	}
	var bare strings.Builder
	if err := run(base, &bare); err != nil {
		t.Fatal(err)
	}
	var diag strings.Builder
	if err := run(append(base, "-diag", "127.0.0.1:0"), &diag); err != nil {
		t.Fatal(err)
	}
	if bare.String() != diag.String() {
		t.Errorf("report changed when -diag was attached:\n--- without ---\n%s\n--- with ---\n%s",
			bare.String(), diag.String())
	}
}
