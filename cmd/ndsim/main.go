// Command ndsim runs one neighbor-discovery scenario and reports the
// outcome: network parameters, completion time versus the paper's analytic
// bound, and optionally the per-node neighbor tables or a reception trace.
//
// Usage:
//
//	ndsim -nodes 20 -topology geometric -channels primary-users -alg sync-staged
//	ndsim -alg async -drift 0.14 -spread 30 -tables
//	ndsim -alg sync-uniform -start-window 200 -v
//	ndsim -alg sync-uniform -loss 0.5 -terminate-idle 400
//	ndsim -epoch-len 200 -churn-join 0.4 -churn-leave 0.2    # dynamic network
//	ndsim -alg async -epoch-len 50 -mobility-speed 0.02 -pu-events 3
//	ndsim -net saved.json -alg async -json
//	ndsim -asym 0.3 -span-cap 2 -curve progress.csv
//	ndsim -events run.ndjson                   # full event log for ndtrace
//	ndsim -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"m2hew"
	"m2hew/internal/diag"
	"m2hew/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ndsim:", err)
		os.Exit(1)
	}
}

// diagStarted is called with the diagnostics server's base URL once it is
// listening; the tests override it to probe the live server. It must
// return before the run starts.
var diagStarted = func(url string) {}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("ndsim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		nodes       = fs.Int("nodes", 16, "number of nodes")
		topo        = fs.String("topology", "geometric", "topology: geometric|erdos-renyi|grid|line|ring|clique|star|bridge")
		radius      = fs.Float64("radius", 0.4, "geometric connection radius")
		edgeProb    = fs.Float64("edge-prob", 0.3, "erdos-renyi edge probability")
		rows        = fs.Int("rows", 4, "grid rows")
		cols        = fs.Int("cols", 4, "grid cols")
		connected   = fs.Bool("connected", true, "retry geometric generation until connected")
		universe    = fs.Int("universe", 8, "universal channel set size")
		channels    = fs.String("channels", "homogeneous", "channel model: homogeneous|uniform|bernoulli|primary-users|block-overlap")
		subset      = fs.Int("subset", 0, "subset size for -channels uniform (0 = universe/2)")
		inclusion   = fs.Float64("inclusion", 0.5, "inclusion probability for -channels bernoulli")
		primaries   = fs.Int("primaries", 10, "primary users for -channels primary-users")
		exclusion   = fs.Float64("exclusion", 0.3, "primary-user exclusion radius")
		shared      = fs.Int("shared", 2, "shared block for -channels block-overlap")
		private     = fs.Int("private", 2, "private block for -channels block-overlap")
		asym        = fs.Float64("asym", 0, "per-edge probability of dropping one direction (asymmetric graphs)")
		spanCap     = fs.Int("span-cap", 0, "cap each link's span at this many channels (diverse propagation; 0 = off)")
		netSeed     = fs.Uint64("net-seed", 1, "network generation seed")
		netFile     = fs.String("net", "", "load the network from a file saved by ndtopo -save instead of generating one")
		alg         = fs.String("alg", "sync-staged", "algorithm: sync-staged|sync-growing|sync-uniform|async")
		deltaEst    = fs.Int("delta-est", 0, "degree upper bound given to nodes (0 = derive)")
		epsilon     = fs.Float64("eps", 0.1, "failure probability ε for sizing the horizon")
		maxSlots    = fs.Int("max-slots", 0, "synchronous horizon override")
		maxFrames   = fs.Int("max-frames", 0, "asynchronous horizon override")
		frameLen    = fs.Float64("frame-len", 3, "asynchronous local frame length L")
		startWindow = fs.Int("start-window", 0, "stagger sync start slots uniformly in [0,w)")
		spread      = fs.Float64("spread", 0, "stagger async start times uniformly in [0,s)")
		drift       = fs.Float64("drift", 0, "async clock drift bound δ (paper needs ≤ 1/7)")
		loss        = fs.Float64("loss", 0, "per-reception erasure probability (unreliable channels)")
		termIdle    = fs.Int("terminate-idle", 0, "quiescence rule: stop after this many idle slots/frames (0 = run forever)")
		epochLen    = fs.Float64("epoch-len", 0, "dynamics epoch length in slots (sync) or time units (async); 0 = static network")
		churnJoin   = fs.Float64("churn-join", 0, "fraction of nodes joining late, uniformly within -churn-window epochs")
		churnLeave  = fs.Float64("churn-leave", 0, "fraction of nodes leaving permanently within -churn-window epochs of joining")
		churnWindow = fs.Int("churn-window", 20, "churn join/leave window in epochs")
		mobSpeed    = fs.Float64("mobility-speed", 0, "random-waypoint speed in unit lengths per epoch (0 = immobile)")
		mobRadius   = fs.Float64("mobility-radius", 0.4, "communication radius for per-epoch edge re-derivation under mobility")
		mobPause    = fs.Int("mobility-pause", 0, "epochs paused at each waypoint")
		puEvents    = fs.Int("pu-events", 0, "primary-user appearances scheduled over the run (0 = none)")
		puDuration  = fs.Int("pu-duration", 10, "epochs each primary user stays active")
		puRadius    = fs.Float64("pu-radius", 0.3, "primary-user exclusion radius")
		runSeed     = fs.Uint64("seed", 1, "run seed")
		tables      = fs.Bool("tables", false, "print per-node neighbor tables")
		asJSON      = fs.Bool("json", false, "emit the full report as JSON instead of text")
		curveFile   = fs.String("curve", "", "write the discovery progress curve as CSV to this file")
		verbose     = fs.Bool("v", false, "trace every clear reception")
		eventsFile  = fs.String("events", "", "write the full engine event stream as NDJSON to this file (inspect with ndtrace)")
		diagAddr    = fs.String("diag", "", "serve live diagnostics (/metrics, /runinfo, /debug/pprof) on this address for the duration of the run")
		cpuProfile  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, profErr := telemetry.StartProfiles(*cpuProfile, *memProfile)
	if profErr != nil {
		return profErr
	}
	defer func() {
		if err := stopProfiles(); err != nil && retErr == nil {
			retErr = err
		}
	}()

	var (
		nw  *m2hew.Network
		err error
	)
	if *netFile != "" {
		f, err2 := os.Open(*netFile)
		if err2 != nil {
			return err2
		}
		nw, err = m2hew.LoadNetwork(f)
		f.Close()
	} else {
		nw, err = m2hew.BuildNetwork(m2hew.NetworkConfig{
			Nodes:              *nodes,
			Topology:           m2hew.Topology(*topo),
			Radius:             *radius,
			EdgeProb:           *edgeProb,
			Rows:               *rows,
			Cols:               *cols,
			RequireConnected:   *connected,
			Universe:           *universe,
			Channels:           m2hew.ChannelModel(*channels),
			SubsetSize:         *subset,
			InclusionProb:      *inclusion,
			Primaries:          *primaries,
			ExclusionRadius:    *exclusion,
			SharedBlock:        *shared,
			PrivateBlock:       *private,
			AsymmetricFraction: *asym,
			SpanCap:            *spanCap,
			Seed:               *netSeed,
		})
	}
	if err != nil {
		return err
	}
	if !*asJSON {
		s := nw.Stats()
		fmt.Fprintf(out, "network: N=%d U=%d S=%d Δ=%d deg=%d ρ=%.3f edges=%d links=%d\n",
			s.Nodes, s.Universe, s.S, s.Delta, s.MaxDegree, s.Rho, s.Edges, s.DiscoverableLinks)
	}

	cfg := m2hew.RunConfig{
		Algorithm:          m2hew.Algorithm(*alg),
		DeltaEst:           *deltaEst,
		Epsilon:            *epsilon,
		MaxSlots:           *maxSlots,
		MaxFrames:          *maxFrames,
		FrameLen:           *frameLen,
		StartWindow:        *startWindow,
		StartSpread:        *spread,
		DriftBound:         *drift,
		LossProb:           *loss,
		TerminateAfterIdle: *termIdle,
		Seed:               *runSeed,
	}
	if *epochLen > 0 {
		cfg.Dynamics = &m2hew.DynamicsConfig{
			EpochLen:           *epochLen,
			ChurnJoinFraction:  *churnJoin,
			ChurnJoinWindow:    *churnWindow,
			ChurnLeaveFraction: *churnLeave,
			ChurnLeaveWindow:   *churnWindow,
			MobilitySpeed:      *mobSpeed,
			MobilityRadius:     *mobRadius,
			MobilityPause:      *mobPause,
			PrimaryEvents:      *puEvents,
			PrimaryDuration:    *puDuration,
			PrimaryRadius:      *puRadius,
		}
	} else if *churnJoin > 0 || *churnLeave > 0 || *mobSpeed > 0 || *puEvents > 0 {
		return fmt.Errorf("dynamics flags need -epoch-len > 0")
	}
	if *verbose {
		cfg.TraceWriter = out
	}
	if *eventsFile != "" {
		f, err := os.Create(*eventsFile)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && retErr == nil {
				retErr = cerr
			}
		}()
		cfg.EventWriter = f
	}
	if *diagAddr != "" {
		// Single runs bypass the harness instrument seam, so the telemetry
		// observer attaches through RunConfig.Observer instead; the run's
		// tallies merge into the registry when the run finishes, just
		// before the server shuts down.
		reg := telemetry.NewRegistry()
		agg := telemetry.NewAggregate(reg)
		obs := agg.TrialObserver(nw.N(), nw.Stats().Universe)
		cfg.Observer = obs
		srv, err := diag.Serve(*diagAddr, diag.Config{
			Registry: reg,
			Info:     diag.RunInfo{Command: "ndsim", Args: args, Seed: int64(*runSeed), Scenario: cfg},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintln(os.Stderr, "ndsim: diagnostics on", srv.URL())
		diagStarted(srv.URL())
		defer func() { agg.TrialDone(obs); agg.UpdateDerived() }()
	}
	report, err := m2hew.Run(nw, cfg)
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}

	fmt.Fprintf(out, "algorithm: %s\n", report.Algorithm)
	if report.Complete {
		switch report.Algorithm {
		case m2hew.AlgorithmAsync:
			fmt.Fprintf(out, "complete: all %d links in %.2f time units after T_s (bound %.0f, %.1f%% of bound)\n",
				report.LinksTotal, report.Duration, report.Bound, 100*report.Duration/report.Bound)
		default:
			fmt.Fprintf(out, "complete: all %d links in %d slots (bound %.0f, %.1f%% of bound)\n",
				report.LinksTotal, report.Slots, report.Bound, 100*float64(report.Slots)/report.Bound)
		}
	} else {
		fmt.Fprintf(out, "INCOMPLETE: %d/%d links covered within horizon\n",
			report.LinksCovered, report.LinksTotal)
	}
	if *termIdle > 0 {
		fmt.Fprintf(out, "termination: %d/%d nodes stopped; mean active units %.0f\n",
			report.TerminatedNodes, nw.N(), report.MeanActiveUnits)
	}
	if report.Epochs > 0 {
		fmt.Fprintf(out, "dynamics: %d epochs; mean discovery latency %.2f\n",
			report.Epochs, report.MeanDiscoveryLatency)
	}

	if *tables {
		for u, entries := range report.Tables {
			parts := make([]string, len(entries))
			for i, d := range entries {
				parts[i] = fmt.Sprintf("%d%v", d.Neighbor, d.CommonChannels)
			}
			fmt.Fprintf(out, "node %3d: %s\n", u, strings.Join(parts, " "))
		}
	}

	if *curveFile != "" {
		if err := writeCurveCSV(*curveFile, report.Curve); err != nil {
			return err
		}
		fmt.Fprintf(out, "progress curve (%d points) written to %s\n", len(report.Curve), *curveFile)
	}
	return nil
}

// writeCurveCSV writes a discovery progress curve as "time,covered" rows.
func writeCurveCSV(path string, curve []m2hew.ProgressPoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"time", "covered"}); err != nil {
		f.Close()
		return err
	}
	for _, p := range curve {
		row := []string{
			strconv.FormatFloat(p.Time, 'g', -1, 64),
			strconv.Itoa(p.Covered),
		}
		if err := w.Write(row); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
