package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"m2hew"
	"m2hew/internal/trace"
)

func TestSyncRunOutput(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-topology", "clique", "-nodes", "5", "-universe", "3",
		"-alg", "sync-staged", "-seed", "3",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"network:", "algorithm: sync-staged", "complete:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAsyncRunWithTables(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-topology", "ring", "-nodes", "5", "-universe", "2",
		"-alg", "async", "-drift", "0.1", "-spread", "10", "-tables",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "node   0:") {
		t.Errorf("tables missing:\n%s", out)
	}
}

func TestVerboseTrace(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-topology", "clique", "-nodes", "3", "-universe", "2",
		"-alg", "sync-uniform", "-v",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "deliver") {
		t.Errorf("verbose output has no reception trace:\n%s", sb.String())
	}
}

// TestEventLog checks -events writes a parsable NDJSON log covering the
// full event vocabulary of a synchronous run, and that writing it does not
// change the report text.
func TestEventLog(t *testing.T) {
	args := []string{
		"-topology", "clique", "-nodes", "4", "-universe", "2",
		"-alg", "sync-uniform", "-seed", "3",
	}
	var bare strings.Builder
	if err := run(args, &bare); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "events.ndjson")
	var logged strings.Builder
	if err := run(append(args, "-events", path), &logged); err != nil {
		t.Fatal(err)
	}
	if bare.String() != logged.String() {
		t.Error("-events changed the report output")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadEvents(f)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[trace.Kind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	for _, kind := range []trace.Kind{trace.KindTx, trace.KindDeliver, trace.KindIdle} {
		if counts[kind] == 0 {
			t.Errorf("event log has no %v events", kind)
		}
	}
	// 4-node clique: 12 directed links, each delivered at least once in a
	// complete run.
	if counts[trace.KindDeliver] < 12 {
		t.Errorf("deliver events = %d, want >= 12", counts[trace.KindDeliver])
	}

	if err := run([]string{"-events", filepath.Join(t.TempDir(), "no", "dir", "x")}, &logged); err == nil {
		t.Error("uncreatable events path accepted")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var sb strings.Builder
	err := run([]string{
		"-topology", "clique", "-nodes", "4", "-universe", "2",
		"-alg", "sync-uniform", "-cpuprofile", cpu, "-memprofile", mem,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestIncompleteReported(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-topology", "clique", "-nodes", "6", "-universe", "4",
		"-alg", "sync-uniform", "-max-slots", "1",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "INCOMPLETE") {
		t.Errorf("missing INCOMPLETE marker:\n%s", sb.String())
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-alg", "nope"}, &sb); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-topology", "nope"}, &sb); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-wat"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-alg", "sync-staged", "-start-window", "5"}, &sb); err == nil {
		t.Error("staggered staged accepted")
	}
}

func TestCurveCSV(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/curve.csv"
	var sb strings.Builder
	err := run([]string{
		"-topology", "clique", "-nodes", "4", "-universe", "2",
		"-alg", "sync-uniform", "-curve", path,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "time,covered" {
		t.Fatalf("csv header %q", lines[0])
	}
	// 4-clique has 12 directed links → 12 data rows.
	if len(lines) != 13 {
		t.Fatalf("csv has %d lines, want 13", len(lines))
	}
	if !strings.Contains(sb.String(), "progress curve") {
		t.Fatal("missing curve confirmation in output")
	}
}

func TestJSONReport(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-topology", "clique", "-nodes", "3", "-universe", "2",
		"-alg", "sync-uniform", "-json",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Algorithm string `json:"algorithm"`
		Complete  bool   `json:"complete"`
		Slots     int    `json:"slots"`
		Tables    [][]struct {
			Neighbor int `json:"neighbor"`
		} `json:"tables"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if report.Algorithm != "sync-uniform" || !report.Complete || report.Slots <= 0 {
		t.Fatalf("report = %+v", report)
	}
	if len(report.Tables) != 3 {
		t.Fatalf("tables for %d nodes", len(report.Tables))
	}
}

func TestLoadNetworkFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/net.json"
	// Save a network with ndtopo-equivalent API, then run ndsim -net on it.
	nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
		Topology: m2hew.TopologyClique, Nodes: 4, Universe: 2, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2hew.SaveNetwork(nw, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-net", path, "-alg", "sync-uniform"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "N=4") || !strings.Contains(sb.String(), "complete:") {
		t.Fatalf("loaded-network run output:\n%s", sb.String())
	}
	if err := run([]string{"-net", dir + "/missing.json"}, &sb); err == nil {
		t.Fatal("missing network file accepted")
	}
}
