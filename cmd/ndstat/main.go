// Command ndstat compares two benchmark snapshots and prints a
// benchstat-style delta table for ns/op, B/op and allocs/op. Inputs can be
// ndperf JSON snapshots (BENCH_3.json and friends) or raw `go test -bench`
// output; the format is auto-detected per file, so a committed snapshot can
// be compared directly against a fresh bench run.
//
// Usage:
//
//	ndstat old.json new.json                 # delta table only
//	ndstat -gate -threshold 10 old new      # also exit 1 on >10% regression
//
// With -gate, a regression is a matched benchmark whose ns/op or allocs/op
// grew by more than -threshold percent; `make bench-gate` and CI run this
// against the committed BENCH_3.json so hot-path slowdowns fail the build
// instead of landing silently.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ndstat:", err)
		os.Exit(1)
	}
}

// row is one benchmark's measurements in a snapshot.
type row struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
}

// jsonSnapshot mirrors the ndperf BENCH_*.json schema (extra fields are
// ignored, so richer snapshots still parse).
type jsonSnapshot struct {
	Benchmarks []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"benchmarks"`
}

// snapshot is an ordered set of benchmark rows keyed by normalized name.
type snapshot struct {
	order []string
	rows  map[string]row
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ndstat", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		gate      = fs.Bool("gate", false, "exit nonzero if any benchmark regressed more than -threshold percent")
		threshold = fs.Float64("threshold", 10, "regression threshold in percent (ns/op and allocs/op), used with -gate")
	)
	fs.Usage = func() {
		fmt.Fprintln(out, "usage: ndstat [-gate] [-threshold pct] old new")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("need exactly two snapshot files, got %d", fs.NArg())
	}
	old, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		return err
	}

	matched, onlyOld, onlyNew := match(old, cur)
	if len(matched) == 0 {
		return fmt.Errorf("no benchmarks in common between %s and %s", fs.Arg(0), fs.Arg(1))
	}
	printTables(out, old, cur, matched)
	if len(onlyOld) > 0 {
		fmt.Fprintf(out, "only in %s: %s\n", fs.Arg(0), strings.Join(onlyOld, ", "))
	}
	if len(onlyNew) > 0 {
		fmt.Fprintf(out, "only in %s: %s\n", fs.Arg(1), strings.Join(onlyNew, ", "))
	}

	if *gate {
		var regressed []string
		for _, name := range matched {
			o, n := old.rows[name], cur.rows[name]
			if d := pctDelta(o.NsPerOp, n.NsPerOp); d > *threshold {
				regressed = append(regressed, fmt.Sprintf("%s ns/op %s", name, fmtDelta(d)))
			}
			if d := pctDelta(o.AllocsPerOp, n.AllocsPerOp); d > *threshold {
				regressed = append(regressed, fmt.Sprintf("%s allocs/op %s", name, fmtDelta(d)))
			}
		}
		if len(regressed) > 0 {
			fmt.Fprintf(out, "\nGATE FAILED (threshold %+.1f%%):\n", *threshold)
			for _, r := range regressed {
				fmt.Fprintln(out, " ", r)
			}
			return fmt.Errorf("gate: %d regression(s) beyond %.1f%%", len(regressed), *threshold)
		}
		fmt.Fprintf(out, "\ngate ok: no regression beyond %+.1f%%\n", *threshold)
	}
	return nil
}

// load reads a snapshot file, auto-detecting the format: a leading '{'
// means an ndperf JSON snapshot, anything else is parsed as raw
// `go test -bench` output.
func load(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if trimmed := strings.TrimSpace(string(data)); strings.HasPrefix(trimmed, "{") {
		return parseJSON(path, data)
	}
	return parseBench(path, data)
}

func parseJSON(path string, data []byte) (*snapshot, error) {
	var doc jsonSnapshot
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	s := &snapshot{rows: make(map[string]row)}
	for _, b := range doc.Benchmarks {
		s.add(normalize(b.Name), row{b.NsPerOp, b.BytesPerOp, b.AllocsPerOp})
	}
	return s, nil
}

// benchLine matches a `go test -bench` result line: name, iteration count,
// then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix is the -N procs suffix go test appends to benchmark
// names; stripped so raw output matches snapshot names across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func parseBench(path string, data []byte) (*snapshot, error) {
	s := &snapshot{rows: make(map[string]row)}
	counts := make(map[string]int)
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := normalize(m[1])
		var r row
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q for %s", path, fields[i], name)
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		// Average repeated runs of the same benchmark (-count>1).
		if prev, ok := s.rows[name]; ok {
			c := float64(counts[name])
			r = row{
				NsPerOp:     (prev.NsPerOp*c + r.NsPerOp) / (c + 1),
				BytesPerOp:  (prev.BytesPerOp*c + r.BytesPerOp) / (c + 1),
				AllocsPerOp: (prev.AllocsPerOp*c + r.AllocsPerOp) / (c + 1),
			}
		}
		s.add(name, r)
		counts[name]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.order) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return s, nil
}

// normalize strips the Benchmark prefix and -GOMAXPROCS suffix so raw
// `go test -bench` names line up with ndperf snapshot names.
func normalize(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

func (s *snapshot) add(name string, r row) {
	if _, ok := s.rows[name]; !ok {
		s.order = append(s.order, name)
	}
	s.rows[name] = r
}

// match returns names present in both snapshots (in old's order) and the
// leftovers on each side (sorted).
func match(old, cur *snapshot) (matched, onlyOld, onlyNew []string) {
	for _, name := range old.order {
		if _, ok := cur.rows[name]; ok {
			matched = append(matched, name)
		} else {
			onlyOld = append(onlyOld, name)
		}
	}
	for _, name := range cur.order {
		if _, ok := old.rows[name]; !ok {
			onlyNew = append(onlyNew, name)
		}
	}
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return matched, onlyOld, onlyNew
}

// pctDelta returns the percent change from old to new; an appearance from
// zero counts as +100% so gating still trips on it.
func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return (new - old) / old * 100
}

func fmtDelta(d float64) string {
	if d == 0 {
		return "~"
	}
	return fmt.Sprintf("%+.2f%%", d)
}

// printTables writes one benchstat-style table per metric.
func printTables(out io.Writer, old, cur *snapshot, matched []string) {
	metrics := []struct {
		title string
		get   func(row) float64
	}{
		{"ns/op", func(r row) float64 { return r.NsPerOp }},
		{"B/op", func(r row) float64 { return r.BytesPerOp }},
		{"allocs/op", func(r row) float64 { return r.AllocsPerOp }},
	}
	nameW := len("name")
	for _, n := range matched {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	for i, m := range metrics {
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "%s\n%-*s  %14s  %14s  %9s\n", m.title, nameW, "name", "old", "new", "delta")
		for _, n := range matched {
			o, c := m.get(old.rows[n]), m.get(cur.rows[n])
			fmt.Fprintf(out, "%-*s  %14s  %14s  %9s\n", nameW, n, fmtVal(o), fmtVal(c), fmtDelta(pctDelta(o, c)))
		}
	}
}

// fmtVal prints integral values without a fraction, everything else with
// two digits.
func fmtVal(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}
