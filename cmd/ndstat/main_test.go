package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile drops content into a temp file and returns its path.
func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseJSON = `{
  "scenario": "test",
  "benchmarks": [
    {"name": "RunSync", "ns_per_op": 1000000, "bytes_per_op": 96000, "allocs_per_op": 1200},
    {"name": "RunAsync", "ns_per_op": 5000000, "bytes_per_op": 2700000, "allocs_per_op": 1500}
  ]
}`

// TestGatePassesOnIdenticalPair is the no-regression baseline: comparing a
// snapshot against itself must print a table of zero deltas and exit clean
// even with the gate armed at a tight threshold.
func TestGatePassesOnIdenticalPair(t *testing.T) {
	old := writeFile(t, "old.json", baseJSON)
	cur := writeFile(t, "new.json", baseJSON)
	var buf strings.Builder
	if err := run([]string{"-gate", "-threshold", "0.1", old, cur}, &buf); err != nil {
		t.Fatalf("identical pair failed the gate: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"RunSync", "RunAsync", "ns/op", "allocs/op", "gate ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Every delta on an identical pair is the "no change" marker.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "RunSync") || strings.HasPrefix(line, "RunAsync") {
			if !strings.HasSuffix(strings.TrimRight(line, " "), "~") {
				t.Errorf("identical pair printed a nonzero delta: %q", line)
			}
		}
	}
}

// TestGateFailsOnRegression feeds a synthetic 20% ns/op regression through
// a 10% gate and requires a nonzero (error) exit naming the offender.
func TestGateFailsOnRegression(t *testing.T) {
	old := writeFile(t, "old.json", baseJSON)
	cur := writeFile(t, "new.json", `{
  "benchmarks": [
    {"name": "RunSync", "ns_per_op": 1200000, "bytes_per_op": 96000, "allocs_per_op": 1200},
    {"name": "RunAsync", "ns_per_op": 5000000, "bytes_per_op": 2700000, "allocs_per_op": 1500}
  ]
}`)
	var buf strings.Builder
	err := run([]string{"-gate", "-threshold", "10", old, cur}, &buf)
	if err == nil {
		t.Fatalf("20%% regression passed a 10%% gate\noutput:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "gate") {
		t.Errorf("error %q does not mention the gate", err)
	}
	out := buf.String()
	if !strings.Contains(out, "GATE FAILED") || !strings.Contains(out, "RunSync ns/op +20.00%") {
		t.Errorf("gate output missing the offending row:\n%s", out)
	}
	// The within-threshold row must not be flagged.
	if strings.Contains(out, "RunAsync ns/op") {
		t.Errorf("unregressed RunAsync flagged:\n%s", out)
	}
}

// TestGateFailsOnAllocRegression: allocs/op regressions gate too — they
// are deterministic, so even small jumps are real.
func TestGateFailsOnAllocRegression(t *testing.T) {
	old := writeFile(t, "old.json", baseJSON)
	cur := writeFile(t, "new.json", `{
  "benchmarks": [
    {"name": "RunSync", "ns_per_op": 1000000, "bytes_per_op": 96000, "allocs_per_op": 1560},
    {"name": "RunAsync", "ns_per_op": 5000000, "bytes_per_op": 2700000, "allocs_per_op": 1500}
  ]
}`)
	var buf strings.Builder
	if err := run([]string{"-gate", "-threshold", "10", old, cur}, &buf); err == nil {
		t.Fatalf("30%% alloc regression passed a 10%% gate\noutput:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "RunSync allocs/op +30.00%") {
		t.Errorf("gate output missing alloc regression:\n%s", buf.String())
	}
}

// TestGateThresholdIsTolerance: a 5% drift passes a 10% gate, so noisy CI
// timings don't flap the build.
func TestGateThresholdIsTolerance(t *testing.T) {
	old := writeFile(t, "old.json", baseJSON)
	cur := writeFile(t, "new.json", `{
  "benchmarks": [
    {"name": "RunSync", "ns_per_op": 1050000, "bytes_per_op": 96000, "allocs_per_op": 1200},
    {"name": "RunAsync", "ns_per_op": 5000000, "bytes_per_op": 2700000, "allocs_per_op": 1500}
  ]
}`)
	var buf strings.Builder
	if err := run([]string{"-gate", "-threshold", "10", old, cur}, &buf); err != nil {
		t.Fatalf("5%% drift failed a 10%% gate: %v\noutput:\n%s", err, buf.String())
	}
}

// TestParseRawBenchOutput compares a JSON snapshot against raw
// `go test -bench` text: Benchmark prefixes and -GOMAXPROCS suffixes are
// stripped so the names line up, and non-benchmark lines are skipped.
func TestParseRawBenchOutput(t *testing.T) {
	old := writeFile(t, "old.json", baseJSON)
	cur := writeFile(t, "bench.txt", `goos: linux
goarch: amd64
pkg: m2hew/internal/sim
cpu: Test CPU
BenchmarkRunSync-8   	     500	   1000000 ns/op	   96000 B/op	    1200 allocs/op
BenchmarkRunAsync-8  	     100	   5500000 ns/op	 2700000 B/op	    1500 allocs/op
BenchmarkUnrelated-8 	    1000	      1234 ns/op
PASS
ok  	m2hew/internal/sim	2.345s
`)
	var buf strings.Builder
	if err := run([]string{old, cur}, &buf); err != nil {
		t.Fatalf("raw bench comparison failed: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "RunSync") || !strings.Contains(out, "RunAsync") {
		t.Errorf("matched rows missing:\n%s", out)
	}
	if !strings.Contains(out, "+10.00%") {
		t.Errorf("expected +10.00%% ns/op delta for RunAsync:\n%s", out)
	}
	if !strings.Contains(out, "only in") || !strings.Contains(out, "Unrelated") {
		t.Errorf("unmatched benchmark not reported:\n%s", out)
	}
}

// TestParseRawBenchAveragesRepeats: -count>1 runs of one benchmark are
// averaged into a single row.
func TestParseRawBenchAveragesRepeats(t *testing.T) {
	old := writeFile(t, "old.txt", `BenchmarkX-4 100 1000 ns/op 10 B/op 1 allocs/op
BenchmarkX-4 100 3000 ns/op 30 B/op 3 allocs/op
`)
	cur := writeFile(t, "new.txt", `BenchmarkX-4 100 2000 ns/op 20 B/op 2 allocs/op
`)
	var buf strings.Builder
	if err := run([]string{"-gate", "-threshold", "0.1", old, cur}, &buf); err != nil {
		t.Fatalf("averaged repeats should match the single run exactly: %v\noutput:\n%s", err, buf.String())
	}
}

// TestErrors covers the argument and parse failure modes.
func TestErrors(t *testing.T) {
	good := writeFile(t, "good.json", baseJSON)
	empty := writeFile(t, "empty.txt", "no benchmarks here\n")
	disjoint := writeFile(t, "disjoint.json", `{"benchmarks": [{"name": "Other", "ns_per_op": 1}]}`)
	cases := []struct {
		name string
		args []string
	}{
		{"one file", []string{good}},
		{"missing file", []string{good, filepath.Join(t.TempDir(), "nope.json")}},
		{"no bench lines", []string{good, empty}},
		{"no common benchmarks", []string{good, disjoint}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			if err := run(tc.args, &buf); err == nil {
				t.Errorf("expected an error\noutput:\n%s", buf.String())
			}
		})
	}
}
