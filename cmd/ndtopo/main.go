// Command ndtopo generates M²HeW network topologies and describes them:
// derived parameters (N, S, Δ, ρ), JSON dumps for external tooling, and
// Graphviz DOT output for visualization.
//
// Usage:
//
//	ndtopo -nodes 20 -channels primary-users            # parameter summary
//	ndtopo -nodes 12 -json                              # machine-readable dump
//	ndtopo -topology ring -nodes 8 -dot | dot -Tsvg ... # draw it
//	ndtopo -stream -nodes 100000 -radius 0.007          # O(n)-memory stats
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"m2hew"
	"m2hew/internal/rng"
	"m2hew/internal/telemetry"
	"m2hew/internal/topology"
)

// dump is the JSON shape emitted by -json.
type dump struct {
	Stats m2hew.Stats `json:"stats"`
	Nodes []nodeDump  `json:"nodes"`
	Edges []edgeDump  `json:"edges"`
}

type nodeDump struct {
	ID       int     `json:"id"`
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Channels []int   `json:"channels"`
}

type edgeDump struct {
	From int   `json:"from"`
	To   int   `json:"to"`
	Span []int `json:"span"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ndtopo:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("ndtopo", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		nodes     = fs.Int("nodes", 16, "number of nodes")
		topo      = fs.String("topology", "geometric", "topology kind")
		radius    = fs.Float64("radius", 0.4, "geometric connection radius")
		edgeProb  = fs.Float64("edge-prob", 0.3, "erdos-renyi edge probability")
		rows      = fs.Int("rows", 4, "grid rows")
		cols      = fs.Int("cols", 4, "grid cols")
		connected = fs.Bool("connected", true, "retry geometric generation until connected")
		universe  = fs.Int("universe", 8, "universal channel set size")
		channels  = fs.String("channels", "homogeneous", "channel model")
		subset    = fs.Int("subset", 0, "subset size for uniform model")
		inclusion = fs.Float64("inclusion", 0.5, "bernoulli inclusion probability")
		primaries = fs.Int("primaries", 10, "primary users")
		exclusion = fs.Float64("exclusion", 0.3, "primary exclusion radius")
		shared    = fs.Int("shared", 2, "block-overlap shared block")
		private   = fs.Int("private", 2, "block-overlap private block")
		seed      = fs.Uint64("seed", 1, "generation seed")
		asJSON    = fs.Bool("json", false, "emit the network as JSON")
		asDOT     = fs.Bool("dot", false, "emit the graph as Graphviz DOT")
		sample    = fs.Int("sample", 0, "generate this many networks (seeds seed..seed+n-1) and print parameter statistics")
		stream    = fs.Bool("stream", false, "geometric only: stream degree and connectivity stats in O(n) memory without building the graph (sizes 100k+ nodes; ignores -channels)")
		saveFile  = fs.String("save", "", "also save the network (full fidelity, reloadable by ndsim -net) to this file")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := telemetry.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil && retErr == nil {
			retErr = err
		}
	}()
	if *asJSON && *asDOT {
		return fmt.Errorf("-json and -dot are mutually exclusive")
	}
	if *stream {
		if *asDOT || *sample > 0 || *saveFile != "" {
			return fmt.Errorf("-stream is incompatible with -dot/-sample/-save")
		}
		if *topo != "geometric" {
			return fmt.Errorf("-stream supports only the geometric topology, not %q", *topo)
		}
		st, err := topology.GeometricStreamStats(*nodes, *radius, rng.New(*seed))
		if err != nil {
			return err
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(st)
		}
		_, err = fmt.Fprintf(out,
			"N=%d edges=%d deg=[%d..%d] mean=%.2f isolated=%d components=%d largest=%d connected=%v\n",
			st.Nodes, st.Edges, st.MinDegree, st.MaxDegree, st.MeanDegree,
			st.Isolated, st.Components, st.LargestComponent, st.Connected())
		return err
	}

	build := func(seed uint64) (*m2hew.Network, error) {
		return m2hew.BuildNetwork(m2hew.NetworkConfig{
			Nodes:            *nodes,
			Topology:         m2hew.Topology(*topo),
			Radius:           *radius,
			EdgeProb:         *edgeProb,
			Rows:             *rows,
			Cols:             *cols,
			RequireConnected: *connected,
			Universe:         *universe,
			Channels:         m2hew.ChannelModel(*channels),
			SubsetSize:       *subset,
			InclusionProb:    *inclusion,
			Primaries:        *primaries,
			ExclusionRadius:  *exclusion,
			SharedBlock:      *shared,
			PrivateBlock:     *private,
			Seed:             seed,
		})
	}
	if *sample > 0 {
		if *asJSON || *asDOT {
			return fmt.Errorf("-sample is incompatible with -json/-dot")
		}
		return writeSample(build, *seed, *sample, out)
	}

	nw, err := build(*seed)
	if err != nil {
		return err
	}
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			return err
		}
		if err := m2hew.SaveNetwork(nw, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "network saved to %s\n", *saveFile)
	}

	switch {
	case *asJSON:
		return writeJSON(nw, out)
	case *asDOT:
		return writeDOT(nw, out)
	default:
		s := nw.Stats()
		_, err := fmt.Fprintf(out,
			"N=%d U=%d S=%d Δ=%d deg=%d ρ=%.3f edges=%d links=%d connected=%v\n",
			s.Nodes, s.Universe, s.S, s.Delta, s.MaxDegree, s.Rho,
			s.Edges, s.DiscoverableLinks, nw.Connected())
		return err
	}
}

func writeJSON(nw *m2hew.Network, out io.Writer) error {
	d := dump{Stats: nw.Stats()}
	for u := 0; u < nw.N(); u++ {
		x, y := nw.Position(u)
		d.Nodes = append(d.Nodes, nodeDump{
			ID: u, X: x, Y: y, Channels: nw.AvailableChannels(u),
		})
		for _, v := range nw.NeighborIDs(u) {
			if v < u {
				continue // one record per undirected edge
			}
			d.Edges = append(d.Edges, edgeDump{
				From: u, To: v, Span: nw.CommonChannels(u, v),
			})
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

func writeDOT(nw *m2hew.Network, out io.Writer) error {
	if _, err := fmt.Fprintln(out, "graph m2hew {"); err != nil {
		return err
	}
	for u := 0; u < nw.N(); u++ {
		x, y := nw.Position(u)
		if _, err := fmt.Fprintf(out, "  n%d [label=\"%d %v\" pos=\"%.3f,%.3f!\"];\n",
			u, u, nw.AvailableChannels(u), x*10, y*10); err != nil {
			return err
		}
	}
	for u := 0; u < nw.N(); u++ {
		for _, v := range nw.NeighborIDs(u) {
			if v < u {
				continue
			}
			if _, err := fmt.Fprintf(out, "  n%d -- n%d [label=\"%v\"];\n",
				u, v, nw.CommonChannels(u, v)); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(out, "}")
	return err
}

// writeSample generates n networks with consecutive seeds and prints the
// spread of the derived parameters — the workload characterization a paper
// would put in its setup section.
func writeSample(build func(seed uint64) (*m2hew.Network, error), seed uint64, n int, out io.Writer) error {
	var s, delta, rho, links []float64
	for i := 0; i < n; i++ {
		nw, err := build(seed + uint64(i))
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed+uint64(i), err)
		}
		st := nw.Stats()
		s = append(s, float64(st.S))
		delta = append(delta, float64(st.Delta))
		rho = append(rho, st.Rho)
		links = append(links, float64(st.DiscoverableLinks))
	}
	stat := func(name string, vals []float64) error {
		minV, maxV, sum := vals[0], vals[0], 0.0
		for _, v := range vals {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			sum += v
		}
		_, err := fmt.Fprintf(out, "%-6s mean=%-8.3g min=%-8.3g max=%-8.3g\n",
			name, sum/float64(len(vals)), minV, maxV)
		return err
	}
	if _, err := fmt.Fprintf(out, "sampled %d networks (seeds %d..%d):\n", n, seed, seed+uint64(n)-1); err != nil {
		return err
	}
	for _, row := range []struct {
		name string
		vals []float64
	}{{"S", s}, {"Δ", delta}, {"ρ", rho}, {"links", links}} {
		if err := stat(row.name, row.vals); err != nil {
			return err
		}
	}
	return nil
}
