package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestSummary(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-topology", "ring", "-nodes", "6", "-universe", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"N=6", "U=4", "connected=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary %q missing %q", out, want)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-topology", "line", "-nodes", "4", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var d dump
	if err := json.Unmarshal([]byte(sb.String()), &d); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(d.Nodes) != 4 {
		t.Fatalf("dumped %d nodes, want 4", len(d.Nodes))
	}
	if len(d.Edges) != 3 {
		t.Fatalf("dumped %d edges, want 3", len(d.Edges))
	}
	if d.Stats.Nodes != 4 {
		t.Fatalf("stats %+v", d.Stats)
	}
	for _, e := range d.Edges {
		if len(e.Span) == 0 {
			t.Fatalf("edge %+v has empty span", e)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-topology", "ring", "-nodes", "3", "-dot"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph m2hew {", "n0 -- n1", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
}

func TestFlagErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-json", "-dot"}, &sb); err == nil {
		t.Error("-json -dot accepted together")
	}
	if err := run([]string{"-topology", "nope"}, &sb); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestSample(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-topology", "geometric", "-nodes", "12", "-channels", "primary-users",
		"-sample", "5",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"sampled 5 networks", "S", "ρ", "links"} {
		if !strings.Contains(out, want) {
			t.Errorf("sample output missing %q:\n%s", want, out)
		}
	}
}

func TestSampleFlagConflicts(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-sample", "3", "-json"}, &sb); err == nil {
		t.Error("-sample -json accepted together")
	}
}

func TestSaveFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/net.json"
	var sb strings.Builder
	if err := run([]string{"-topology", "ring", "-nodes", "5", "-save", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "network saved") {
		t.Fatalf("missing save confirmation: %s", sb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version"`) {
		t.Fatal("saved file missing version field")
	}
}
