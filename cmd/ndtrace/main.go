// Command ndtrace inspects an NDJSON engine event log (as written by
// `ndsim -events FILE` or any trace.JSONWriter) and prints summaries: event
// totals, a per-slot activity table for synchronous runs, a per-node frame
// table for asynchronous runs, the top colliding links, and per-channel
// utilization.
//
// Usage:
//
//	ndsim -alg sync-uniform -events run.ndjson
//	ndtrace run.ndjson
//	ndtrace -top 10 -slots 0 run.ndjson    # all slots, 10 collision links
//	ndtrace -json run.ndjson | jq .channels
//	ndsim -events /dev/stdout | ndtrace    # reads stdin without an argument
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"m2hew/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ndtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("ndtrace", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		top      = fs.Int("top", 5, "number of top collision links to print")
		slotRows = fs.Int("slots", 20, "number of per-slot rows to print (0 = all)")
		asJSON   = fs.Bool("json", false, "emit the full summary as JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader
	switch fs.NArg() {
	case 0:
		r = stdin
	case 1:
		if fs.Arg(0) == "-" {
			r = stdin
			break
		}
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	default:
		return fmt.Errorf("at most one event log, got %d arguments", fs.NArg())
	}
	events, err := trace.ReadEvents(r)
	if err != nil {
		return err
	}
	s := summarize(events, *top)
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	return s.print(out, *slotRows)
}

// kindCounts tallies the log by event kind.
type kindCounts struct {
	Tx           int `json:"tx"`
	Deliver      int `json:"deliver"`
	Collision    int `json:"collision"`
	Idle         int `json:"idle"`
	FrameStart   int `json:"frameStart"`
	FrameResolve int `json:"frameResolve"`
	Note         int `json:"note"`
	Epoch        int `json:"epoch,omitempty"`
	Join         int `json:"join,omitempty"`
	Leave        int `json:"leave,omitempty"`
	ChannelLoss  int `json:"channelLoss,omitempty"`
}

// slotRow is one synchronous slot's activity.
type slotRow struct {
	Slot      int `json:"slot"`
	Tx        int `json:"tx"`
	Deliver   int `json:"deliver"`
	Collision int `json:"collision"`
	Idle      int `json:"idle"`
}

// nodeRow is one node's asynchronous frame accounting: frames started by
// mode, plus what its resolved listening frames heard and delivered.
type nodeRow struct {
	Node      int `json:"node"`
	Frames    int `json:"frames"`
	TxFrames  int `json:"txFrames"`
	RxFrames  int `json:"rxFrames"`
	Heard     int `json:"heard"`
	Delivered int `json:"delivered"`
}

// syncNodeRow is one node's synchronous activity: slots it transmitted,
// clear receptions it heard, receptions destroyed by interference at it,
// and listening slots that heard nothing.
type syncNodeRow struct {
	Node      int `json:"node"`
	Tx        int `json:"tx"`
	Deliver   int `json:"deliver"`
	Collision int `json:"collision"`
	Idle      int `json:"idle"`
}

// linkRow is one directed link's collision count.
type linkRow struct {
	From  int `json:"from"`
	To    int `json:"to"`
	Count int `json:"count"`
}

// chanRow is one channel's activity; TxShare is its share of all
// transmissions (the utilization split).
type chanRow struct {
	Channel   int     `json:"channel"`
	Tx        int     `json:"tx"`
	Deliver   int     `json:"deliver"`
	Collision int     `json:"collision"`
	Idle      int     `json:"idle"`
	TxShare   float64 `json:"txShare"`
}

// lossRow is one primary-user channel loss: which node lost which channel.
type lossRow struct {
	Node    int `json:"node"`
	Channel int `json:"channel"`
}

// epochRow is one dynamic-run epoch boundary's membership and spectrum
// flips, with the affected node IDs spelled out.
type epochRow struct {
	Epoch         int       `json:"epoch"`
	Time          float64   `json:"time"`
	Joins         int       `json:"joins"`
	Leaves        int       `json:"leaves"`
	ChannelLosses int       `json:"channelLosses"`
	Joined        []int     `json:"joined,omitempty"`
	Left          []int     `json:"left,omitempty"`
	Lost          []lossRow `json:"lost,omitempty"`
}

// summary is the full digest of one event log.
type summary struct {
	Events         int           `json:"events"`
	Kinds          kindCounts    `json:"kinds"`
	Slots          []slotRow     `json:"slots,omitempty"`
	SyncNodes      []syncNodeRow `json:"syncNodes,omitempty"`
	Nodes          []nodeRow     `json:"nodes,omitempty"`
	TopCollisions  []linkRow     `json:"topCollisionLinks,omitempty"`
	CollisionLinks int           `json:"collisionLinks"`
	Channels       []chanRow     `json:"channels,omitempty"`
	Epochs         []epochRow    `json:"epochs,omitempty"`
}

// epochAt finds (or, for logs whose boundary event was filtered out,
// creates) the epoch row a join/leave/channel-loss event belongs to. The
// engines emit the EventEpoch boundary immediately before its flips, so the
// common case is the last row.
func epochAt(rows *[]epochRow, epoch int, t float64) *epochRow {
	for i := len(*rows) - 1; i >= 0; i-- {
		if (*rows)[i].Epoch == epoch {
			return &(*rows)[i]
		}
	}
	*rows = append(*rows, epochRow{Epoch: epoch, Time: t})
	return &(*rows)[len(*rows)-1]
}

// summarize digests the event stream. top bounds the collision-link list;
// every other table is complete.
func summarize(events []trace.Event, top int) *summary {
	s := &summary{Events: len(events)}
	var (
		slots     []slotRow
		syncNodes = map[int]*syncNodeRow{}
		nodes     = map[int]*nodeRow{}
		links     = map[[2]int]int{}
		channels  = map[int]*chanRow{}
	)
	slotAt := func(t float64) *slotRow {
		idx := int(t)
		if idx < 0 {
			idx = 0
		}
		for len(slots) <= idx {
			slots = append(slots, slotRow{Slot: len(slots)})
		}
		return &slots[idx]
	}
	syncNodeAt := func(id int) *syncNodeRow {
		n, ok := syncNodes[id]
		if !ok {
			n = &syncNodeRow{Node: id}
			syncNodes[id] = n
		}
		return n
	}
	nodeAt := func(id int) *nodeRow {
		n, ok := nodes[id]
		if !ok {
			n = &nodeRow{Node: id}
			nodes[id] = n
		}
		return n
	}
	chanAt := func(id int) *chanRow {
		c, ok := channels[id]
		if !ok {
			c = &chanRow{Channel: id}
			channels[id] = c
		}
		return c
	}
	frames := false
	for _, e := range events {
		switch e.Kind {
		case trace.KindTx:
			s.Kinds.Tx++
			slotAt(e.Time).Tx++
			syncNodeAt(int(e.From)).Tx++
			chanAt(int(e.Channel)).Tx++
		case trace.KindDeliver:
			s.Kinds.Deliver++
			if !frames {
				// Synchronous deliveries land on slot boundaries; asynchronous
				// ones are mid-frame instants and stay out of the slot table.
				slotAt(e.Time).Deliver++
				syncNodeAt(int(e.To)).Deliver++
			}
			chanAt(int(e.Channel)).Deliver++
		case trace.KindCollision:
			s.Kinds.Collision++
			slotAt(e.Time).Collision++
			syncNodeAt(int(e.To)).Collision++
			chanAt(int(e.Channel)).Collision++
			links[[2]int{int(e.From), int(e.To)}]++
		case trace.KindIdle:
			s.Kinds.Idle++
			slotAt(e.Time).Idle++
			syncNodeAt(int(e.To)).Idle++
			chanAt(int(e.Channel)).Idle++
		case trace.KindFrameStart:
			s.Kinds.FrameStart++
			frames = true
			n := nodeAt(int(e.From))
			n.Frames++
			switch e.Note {
			case "tx":
				n.TxFrames++
				chanAt(int(e.Channel)).Tx++
			case "rx":
				n.RxFrames++
			}
		case trace.KindFrameResolve:
			s.Kinds.FrameResolve++
			frames = true
			n := nodeAt(int(e.From))
			n.Heard += e.Collected
			n.Delivered += e.Delivered
		case trace.KindNote:
			s.Kinds.Note++
		case trace.KindEpoch:
			s.Kinds.Epoch++
			s.Epochs = append(s.Epochs, epochRow{Epoch: e.Epoch, Time: e.Time})
		case trace.KindJoin:
			s.Kinds.Join++
			if r := epochAt(&s.Epochs, e.Epoch, e.Time); r != nil {
				r.Joins++
				r.Joined = append(r.Joined, int(e.From))
			}
		case trace.KindLeave:
			s.Kinds.Leave++
			if r := epochAt(&s.Epochs, e.Epoch, e.Time); r != nil {
				r.Leaves++
				r.Left = append(r.Left, int(e.From))
			}
		case trace.KindChannelLoss:
			s.Kinds.ChannelLoss++
			if r := epochAt(&s.Epochs, e.Epoch, e.Time); r != nil {
				r.ChannelLosses++
				r.Lost = append(r.Lost, lossRow{Node: int(e.From), Channel: int(e.Channel)})
			}
		}
	}
	// Asynchronous logs have no slot structure: a lone delivery table keyed
	// by truncated frame time would read as slots, so drop it — and the
	// per-node slot accounting with it (the frame table covers nodes there).
	if frames {
		slots = nil
		syncNodes = map[int]*syncNodeRow{}
	}
	s.Slots = slots
	syncRows := make([]syncNodeRow, 0, len(syncNodes))
	for _, n := range syncNodes {
		syncRows = append(syncRows, *n)
	}
	sort.Slice(syncRows, func(i, j int) bool { return syncRows[i].Node < syncRows[j].Node })
	s.SyncNodes = syncRows

	// Per-epoch detail lists arrive in event order; sort them so the report
	// is stable regardless of how the writer interleaved same-epoch flips.
	for i := range s.Epochs {
		r := &s.Epochs[i]
		sort.Ints(r.Joined)
		sort.Ints(r.Left)
		sort.Slice(r.Lost, func(a, b int) bool {
			if r.Lost[a].Node != r.Lost[b].Node {
				return r.Lost[a].Node < r.Lost[b].Node
			}
			return r.Lost[a].Channel < r.Lost[b].Channel
		})
	}

	nodeRows := make([]nodeRow, 0, len(nodes))
	for _, n := range nodes {
		nodeRows = append(nodeRows, *n)
	}
	sort.Slice(nodeRows, func(i, j int) bool { return nodeRows[i].Node < nodeRows[j].Node })
	s.Nodes = nodeRows

	all := make([]linkRow, 0, len(links))
	for k, n := range links {
		all = append(all, linkRow{From: k[0], To: k[1], Count: n})
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	s.CollisionLinks = len(all)
	if top >= 0 && len(all) > top {
		all = all[:top]
	}
	s.TopCollisions = all

	totalTx := 0
	chanRows := make([]chanRow, 0, len(channels))
	for _, c := range channels {
		chanRows = append(chanRows, *c)
		totalTx += c.Tx
	}
	sort.Slice(chanRows, func(i, j int) bool { return chanRows[i].Channel < chanRows[j].Channel })
	if totalTx > 0 {
		for i := range chanRows {
			chanRows[i].TxShare = float64(chanRows[i].Tx) / float64(totalTx)
		}
	}
	s.Channels = chanRows
	return s
}

// print renders the text report. slotRows bounds the per-slot table
// (0 = all rows).
func (s *summary) print(out io.Writer, slotRows int) error {
	k := s.Kinds
	if _, err := fmt.Fprintf(out,
		"events: %d (tx %d, deliver %d, collision %d, idle %d, frame-start %d, frame-resolve %d, note %d)\n",
		s.Events, k.Tx, k.Deliver, k.Collision, k.Idle, k.FrameStart, k.FrameResolve, k.Note); err != nil {
		return err
	}
	if k.Epoch+k.Join+k.Leave+k.ChannelLoss > 0 {
		fmt.Fprintf(out, "dynamics: %d epochs (join %d, leave %d, channel-loss %d)\n",
			k.Epoch, k.Join, k.Leave, k.ChannelLoss)
	}
	if len(s.Slots) > 0 {
		shown := s.Slots
		if slotRows > 0 && len(shown) > slotRows {
			shown = shown[:slotRows]
		}
		fmt.Fprintf(out, "\nper-slot summary (%d of %d slots):\n", len(shown), len(s.Slots))
		fmt.Fprintf(out, "  %6s %6s %8s %10s %6s\n", "slot", "tx", "deliver", "collision", "idle")
		for _, r := range shown {
			fmt.Fprintf(out, "  %6d %6d %8d %10d %6d\n", r.Slot, r.Tx, r.Deliver, r.Collision, r.Idle)
		}
	}
	if len(s.SyncNodes) > 0 {
		fmt.Fprintf(out, "\nper-node slot summary:\n")
		fmt.Fprintf(out, "  %6s %6s %8s %10s %6s\n", "node", "tx", "deliver", "collision", "idle")
		for _, n := range s.SyncNodes {
			fmt.Fprintf(out, "  %6d %6d %8d %10d %6d\n", n.Node, n.Tx, n.Deliver, n.Collision, n.Idle)
		}
	}
	if len(s.Nodes) > 0 {
		fmt.Fprintf(out, "\nper-node frame summary:\n")
		fmt.Fprintf(out, "  %6s %7s %5s %5s %6s %10s\n", "node", "frames", "tx", "rx", "heard", "delivered")
		for _, n := range s.Nodes {
			fmt.Fprintf(out, "  %6d %7d %5d %5d %6d %10d\n", n.Node, n.Frames, n.TxFrames, n.RxFrames, n.Heard, n.Delivered)
		}
	}
	if len(s.TopCollisions) > 0 {
		fmt.Fprintf(out, "\ntop collision links (%d of %d):\n", len(s.TopCollisions), s.CollisionLinks)
		for _, l := range s.TopCollisions {
			fmt.Fprintf(out, "  %3d -> %-3d %6d\n", l.From, l.To, l.Count)
		}
	}
	if len(s.Channels) > 0 {
		fmt.Fprintf(out, "\nchannel utilization:\n")
		fmt.Fprintf(out, "  %7s %6s %8s %10s %6s %7s\n", "channel", "tx", "deliver", "collision", "idle", "share")
		for _, c := range s.Channels {
			fmt.Fprintf(out, "  %7d %6d %8d %10d %6d %7.3f\n", c.Channel, c.Tx, c.Deliver, c.Collision, c.Idle, c.TxShare)
		}
	}
	if len(s.Epochs) > 0 {
		fmt.Fprintf(out, "\nepoch boundaries:\n")
		fmt.Fprintf(out, "  %6s %10s %6s %7s %13s\n", "epoch", "t", "joins", "leaves", "channel-loss")
		for _, r := range s.Epochs {
			fmt.Fprintf(out, "  %6d %10.1f %6d %7d %13d\n", r.Epoch, r.Time, r.Joins, r.Leaves, r.ChannelLosses)
			if detail := epochDetail(r); detail != "" {
				fmt.Fprintf(out, "         %s\n", detail)
			}
		}
	}
	return nil
}

// epochDetail renders one epoch's member/spectrum flip lists, or "" for a
// quiet boundary.
func epochDetail(r epochRow) string {
	var parts []string
	if len(r.Joined) > 0 {
		parts = append(parts, "joined "+intList(r.Joined))
	}
	if len(r.Left) > 0 {
		parts = append(parts, "left "+intList(r.Left))
	}
	if len(r.Lost) > 0 {
		losses := make([]string, len(r.Lost))
		for i, l := range r.Lost {
			losses[i] = fmt.Sprintf("%d:ch%d", l.Node, l.Channel)
		}
		parts = append(parts, "lost "+strings.Join(losses, ","))
	}
	return strings.Join(parts, "  ")
}

// intList renders node IDs as a comma-separated list.
func intList(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	return strings.Join(parts, ",")
}
