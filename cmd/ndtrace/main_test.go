package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"m2hew"
	"m2hew/internal/topology"
	"m2hew/internal/trace"
)

// handLog is the hand-checked synchronous scenario of the engine event
// tests: a 3-node line (0–1–2, one channel) where
//
//	slot 0: 0 and 2 transmit, 1 listens  → collision at 1 (first sender 0)
//	slot 1: 0 transmits, 1 and 2 listen  → deliver 0→1, idle at 2
//	slot 2: everyone listens             → idle at 0, 1, 2
func handLog(t *testing.T) string {
	t.Helper()
	events := []trace.Event{
		{Time: 0, Kind: trace.KindTx, From: 0, Channel: 0},
		{Time: 0, Kind: trace.KindTx, From: 2, Channel: 0},
		{Time: 0, Kind: trace.KindCollision, From: 0, To: 1, Channel: 0},
		{Time: 1, Kind: trace.KindTx, From: 0, Channel: 0},
		{Time: 1, Kind: trace.KindDeliver, From: 0, To: 1, Channel: 0},
		{Time: 1, Kind: trace.KindIdle, To: 2, Channel: 0},
		{Time: 2, Kind: trace.KindIdle, To: 0, Channel: 0},
		{Time: 2, Kind: trace.KindIdle, To: 1, Channel: 0},
		{Time: 2, Kind: trace.KindIdle, To: 2, Channel: 0},
	}
	var sb strings.Builder
	w := trace.NewJSONWriter(&sb)
	for _, e := range events {
		w.Record(e)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestPerSlotCountsHandChecked(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-json"}, strings.NewReader(handLog(t)), &out); err != nil {
		t.Fatal(err)
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Events != 9 {
		t.Errorf("events = %d, want 9", s.Events)
	}
	want := []slotRow{
		{Slot: 0, Tx: 2, Deliver: 0, Collision: 1, Idle: 0},
		{Slot: 1, Tx: 1, Deliver: 1, Collision: 0, Idle: 1},
		{Slot: 2, Tx: 0, Deliver: 0, Collision: 0, Idle: 3},
	}
	if len(s.Slots) != len(want) {
		t.Fatalf("slots = %+v, want %d rows", s.Slots, len(want))
	}
	for i, w := range want {
		if s.Slots[i] != w {
			t.Errorf("slot %d = %+v, want %+v", i, s.Slots[i], w)
		}
	}
	if len(s.TopCollisions) != 1 || s.TopCollisions[0] != (linkRow{From: 0, To: 1, Count: 1}) {
		t.Errorf("collision links = %+v, want one 0->1 count 1", s.TopCollisions)
	}
	if len(s.Channels) != 1 {
		t.Fatalf("channels = %+v, want one row", s.Channels)
	}
	ch := s.Channels[0]
	if ch != (chanRow{Channel: 0, Tx: 3, Deliver: 1, Collision: 1, Idle: 4, TxShare: 1}) {
		t.Errorf("channel row = %+v", ch)
	}
}

// TestPerNodeSyncCountsHandChecked checks the per-node slot table against
// the same hand log: node 0 transmits twice then idles once; node 1 suffers
// the collision, hears the delivery and idles once; node 2 transmits once
// and idles twice.
func TestPerNodeSyncCountsHandChecked(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-json"}, strings.NewReader(handLog(t)), &out); err != nil {
		t.Fatal(err)
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	want := []syncNodeRow{
		{Node: 0, Tx: 2, Deliver: 0, Collision: 0, Idle: 1},
		{Node: 1, Tx: 0, Deliver: 1, Collision: 1, Idle: 1},
		{Node: 2, Tx: 1, Deliver: 0, Collision: 0, Idle: 2},
	}
	if len(s.SyncNodes) != len(want) {
		t.Fatalf("syncNodes = %+v, want %d rows", s.SyncNodes, len(want))
	}
	for i, w := range want {
		if s.SyncNodes[i] != w {
			t.Errorf("node %d = %+v, want %+v", w.Node, s.SyncNodes[i], w)
		}
	}
}

// dynamicsLog is a hand-checked dynamic-run log: epoch 1 admits nodes 5 and
// 3 and drops node 2's channel 7; epoch 2 removes node 0.
func dynamicsLog(t *testing.T) string {
	t.Helper()
	events := []trace.Event{
		{Time: 100, Kind: trace.KindEpoch, Epoch: 1},
		{Time: 100, Kind: trace.KindJoin, From: 5, Epoch: 1},
		{Time: 100, Kind: trace.KindJoin, From: 3, Epoch: 1},
		{Time: 100, Kind: trace.KindChannelLoss, From: 2, Channel: 7, Epoch: 1},
		{Time: 200, Kind: trace.KindEpoch, Epoch: 2},
		{Time: 200, Kind: trace.KindLeave, From: 0, Epoch: 2},
	}
	var sb strings.Builder
	w := trace.NewJSONWriter(&sb)
	for _, e := range events {
		w.Record(e)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestEpochMemberDetailHandChecked checks that epoch rows carry the affected
// node IDs (sorted) and the lost channels, not just the counts, and that
// the text report prints them.
func TestEpochMemberDetailHandChecked(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-json"}, strings.NewReader(dynamicsLog(t)), &out); err != nil {
		t.Fatal(err)
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Epochs) != 2 {
		t.Fatalf("epochs = %+v, want 2 rows", s.Epochs)
	}
	e1, e2 := s.Epochs[0], s.Epochs[1]
	if e1.Joins != 2 || len(e1.Joined) != 2 || e1.Joined[0] != 3 || e1.Joined[1] != 5 {
		t.Errorf("epoch 1 joined = %+v (joins %d), want sorted [3 5]", e1.Joined, e1.Joins)
	}
	if len(e1.Lost) != 1 || e1.Lost[0] != (lossRow{Node: 2, Channel: 7}) {
		t.Errorf("epoch 1 lost = %+v, want [{2 7}]", e1.Lost)
	}
	if e2.Leaves != 1 || len(e2.Left) != 1 || e2.Left[0] != 0 {
		t.Errorf("epoch 2 left = %+v (leaves %d), want [0]", e2.Left, e2.Leaves)
	}

	var text bytes.Buffer
	if err := run(nil, strings.NewReader(dynamicsLog(t)), &text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"joined 3,5", "lost 2:ch7", "left 0"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}
}

func TestTextReport(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(handLog(t)), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"events: 9 (tx 3, deliver 1, collision 1, idle 4, frame-start 0, frame-resolve 0, note 0)",
		"per-slot summary (3 of 3 slots)",
		"per-node slot summary",
		"top collision links (1 of 1)",
		"channel utilization",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestSlotRowBoundAndTopBound(t *testing.T) {
	var sb strings.Builder
	w := trace.NewJSONWriter(&sb)
	for slot := 0; slot < 30; slot++ {
		w.Record(trace.Event{Time: float64(slot), Kind: trace.KindCollision, From: topology.NodeID(slot % 4), To: topology.NodeID(slot%4 + 1)})
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-slots", "5", "-top", "2"}, strings.NewReader(sb.String()), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "per-slot summary (5 of 30 slots)") {
		t.Errorf("slot bound not applied:\n%s", text)
	}
	if !strings.Contains(text, "top collision links (2 of 4)") {
		t.Errorf("top bound not applied:\n%s", text)
	}
}

func TestReadsFileArgument(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ndjson")
	if err := os.WriteFile(path, []byte(handLog(t)), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "events: 9") {
		t.Errorf("file input not read:\n%s", out.String())
	}
	if err := run([]string{"a", "b"}, nil, &out); err == nil {
		t.Error("two arguments accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing")}, nil, &out); err == nil {
		t.Error("missing file accepted")
	}
}

// TestAsyncEndToEnd drives a real asynchronous run through the public API's
// EventWriter and checks the digest switches to frame accounting: slot
// table suppressed, per-node frames matching the run horizon, and every
// delivery counted.
func TestAsyncEndToEnd(t *testing.T) {
	nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
		Nodes:    4,
		Topology: "clique",
		Universe: 2,
		Channels: "homogeneous",
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	report, err := m2hew.Run(nw, m2hew.RunConfig{
		Algorithm:   m2hew.AlgorithmAsync,
		EventWriter: &log,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-json"}, bytes.NewReader(log.Bytes()), &out); err != nil {
		t.Fatal(err)
	}
	var s summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if len(s.Slots) != 0 {
		t.Errorf("asynchronous log produced a slot table: %+v", s.Slots[:min(3, len(s.Slots))])
	}
	if len(s.Nodes) != 4 {
		t.Fatalf("node rows = %+v, want 4", s.Nodes)
	}
	if s.Kinds.FrameStart == 0 || s.Kinds.Deliver == 0 {
		t.Errorf("kinds = %+v, want frame starts and deliveries", s.Kinds)
	}
	// Every discoverable link delivers at least once in a complete run.
	if report.Complete && s.Kinds.Deliver < report.LinksTotal {
		t.Errorf("deliver count %d below covered links %d", s.Kinds.Deliver, report.LinksTotal)
	}
	delivered := 0
	for _, n := range s.Nodes {
		delivered += n.Delivered
	}
	if delivered != s.Kinds.Deliver {
		t.Errorf("frame-resolve delivered sum %d != deliver events %d", delivered, s.Kinds.Deliver)
	}
}
