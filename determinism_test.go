package m2hew

// Determinism regression: the invariant the internal/lint analyzers guard
// statically — one seed determines an entire run — made executable. An
// experiment is run twice in-process with the same options and the two
// serialized results must be byte-identical; any wall-clock read, global
// randomness, map-order output or rng sharing upstream breaks this test
// before it breaks the EXPERIMENTS.md tables.

import (
	"bytes"
	"encoding/json"
	"testing"

	"m2hew/internal/experiment"
)

// marshalTable serializes one experiment run for byte comparison.
func marshalTable(t *testing.T, id string, opts experiment.Options) []byte {
	t.Helper()
	entry, err := experiment.ByID(id)
	if err != nil {
		t.Fatalf("looking up %s: %v", id, err)
	}
	table, err := entry.Run(opts)
	if err != nil {
		t.Fatalf("running %s: %v", id, err)
	}
	data, err := json.Marshal(table)
	if err != nil {
		t.Fatalf("marshaling %s: %v", id, err)
	}
	return data
}

func TestExperimentsAreSeedDeterministic(t *testing.T) {
	// E1 exercises the synchronous engine and the parallel trial pool; E3
	// adds staggered start times. Both are small under Quick.
	for _, id := range []string{"E1", "E3"} {
		opts := experiment.Options{Quick: true, Trials: 4, Seed: 42}
		first := marshalTable(t, id, opts)
		second := marshalTable(t, id, opts)
		if !bytes.Equal(first, second) {
			t.Errorf("%s: two runs with seed %d differ:\n run 1: %s\n run 2: %s",
				id, opts.Seed, first, second)
		}
		// A different seed must change the measurements — otherwise the
		// seed is not actually reaching the randomness.
		other := marshalTable(t, id, experiment.Options{Quick: true, Trials: 4, Seed: 43})
		if bytes.Equal(first, other) {
			t.Errorf("%s: runs with seeds 42 and 43 are identical; the seed is not wired through", id)
		}
	}
}
