package m2hew_test

import (
	"fmt"
	"log"

	"m2hew"
)

// Build a small deterministic network and run the paper's Algorithm 1.
func ExampleRun() {
	nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
		Topology: m2hew.TopologyClique,
		Nodes:    4,
		Universe: 2,
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := m2hew.Run(nw, m2hew.RunConfig{
		Algorithm: m2hew.AlgorithmSyncStaged,
		Seed:      21,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("complete:", report.Complete)
	fmt.Println("links:", report.LinksTotal)
	fmt.Println("node 0 discovered:", len(report.Tables[0]), "neighbors")
	// Output:
	// complete: true
	// links: 12
	// node 0 discovered: 3 neighbors
}

// Inspect the derived parameters of a heterogeneous network.
func ExampleBuildNetwork() {
	nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
		Topology:     m2hew.TopologyRing,
		Nodes:        6,
		Channels:     m2hew.ChannelsBlockOverlap,
		SharedBlock:  2,
		PrivateBlock: 6,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := nw.Stats()
	fmt.Printf("N=%d S=%d rho=%.2f\n", s.Nodes, s.S, s.Rho)
	fmt.Println("node 0 and 1 share channels:", nw.CommonChannels(0, 1))
	// Output:
	// N=6 S=8 rho=0.25
	// node 0 and 1 share channels: [0 1]
}

// The asynchronous algorithm tolerates drifting, unsynchronized clocks.
func ExampleRun_async() {
	nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
		Topology: m2hew.TopologyRing,
		Nodes:    5,
		Universe: 2,
		Seed:     6,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := m2hew.Run(nw, m2hew.RunConfig{
		Algorithm:   m2hew.AlgorithmAsync,
		DriftBound:  1.0 / 7, // the paper's Assumption 1 limit
		StartSpread: 30,      // nodes power on at scattered times
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("complete:", report.Complete)
	fmt.Println("within Theorem 10 bound:", report.Duration <= report.Bound)
	// Output:
	// complete: true
	// within Theorem 10 bound: true
}
