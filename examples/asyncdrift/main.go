// Asyncdrift: run Algorithm 4 on unsynchronized, drifting clocks.
//
// The paper's main contribution is an asynchronous discovery algorithm that
// needs no slot synchronization: each node free-runs its own clock, divides
// local time into 3-slot frames, and transmits or listens per frame. The
// guarantee (Theorems 9 and 10) holds for any clock drift bounded by
// δ ≤ 1/7, with arbitrary start offsets between nodes.
//
// This example starts nodes at scattered times with random-walk drifting
// clocks and reports completion time against the Theorem 10 real-time bound,
// at several drift magnitudes up to the paper's 1/7 limit.
//
//	go run ./examples/asyncdrift
package main

import (
	"fmt"
	"log"

	"m2hew"
)

func main() {
	nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
		Nodes:            12,
		Topology:         m2hew.TopologyGeometric,
		Radius:           0.5,
		RequireConnected: true,
		Universe:         6,
		Channels:         m2hew.ChannelsPrimaryUsers,
		Primaries:        8,
		Seed:             9,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := nw.Stats()
	fmt.Printf("network: N=%d S=%d Δ=%d ρ=%.2f, %d links to discover\n\n",
		s.Nodes, s.S, s.Delta, s.Rho, s.DiscoverableLinks)
	fmt.Printf("%10s %14s %16s %10s\n", "drift δ", "completion", "Thm 10 bound", "% of bound")

	for _, delta := range []float64{0, 1e-6, 0.05, 1.0 / 7} {
		report, err := m2hew.Run(nw, m2hew.RunConfig{
			Algorithm:   m2hew.AlgorithmAsync,
			DriftBound:  delta,
			StartSpread: 40, // nodes power on over a 40-time-unit window
			Seed:        17,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !report.Complete {
			log.Fatalf("δ=%v incomplete: %d/%d links", delta, report.LinksCovered, report.LinksTotal)
		}
		fmt.Printf("%10.6f %14.1f %16.0f %9.2f%%\n",
			delta, report.Duration, report.Bound, 100*report.Duration/report.Bound)
	}
	fmt.Println("\nDiscovery completes orders of magnitude inside the (union-bound) guarantee,")
	fmt.Println("and drift up to the paper's 1/7 limit barely moves the completion time.")
}
