// Baseline: reproduce the paper's critique of the universal-channel-set
// approach.
//
// Before this paper, the standard way to get multi-channel neighbor
// discovery was to run a single-channel protocol once per channel of an
// agreed universal set (the paper's refs [2], [18–22] variants). The paper's
// Section I argues this is wasteful: its cost is linear in the universal set
// size U even when every node's available set is small.
//
// This example runs the same small network with |A(u)| = 4 channels per node
// under (a) the universal-set baseline with growing U, (b) the deterministic
// round-robin baseline (Θ(N·U)), and (c) the paper's Algorithm 3, whose cost
// never depends on U.
//
//	go run ./examples/baseline
package main

import (
	"fmt"
	"log"

	"m2hew"
)

func main() {
	const trials = 10
	nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
		Nodes:    8,
		Topology: m2hew.TopologyClique,
		Universe: 4, // every node holds channels 0..3 regardless of the agreed U
		Channels: m2hew.ChannelsHomogeneous,
		Seed:     2,
	})
	if err != nil {
		log.Fatal(err)
	}

	meanSlots := func(alg m2hew.Algorithm, universe int) float64 {
		var total float64
		for trial := 0; trial < trials; trial++ {
			report, err := m2hew.Run(nw, m2hew.RunConfig{
				Algorithm:    alg,
				UniverseSize: universe,
				Seed:         uint64(trial + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			if !report.Complete {
				log.Fatalf("%s U=%d trial %d incomplete", alg, universe, trial)
			}
			total += float64(report.Slots)
		}
		return total / trials
	}

	alg3 := meanSlots(m2hew.AlgorithmSyncUniform, 0)
	fmt.Printf("Algorithm 3 (no universal-set dependence): %.0f slots\n\n", alg3)
	fmt.Printf("%6s %18s %16s %14s\n", "U", "universal baseline", "round robin N·U", "vs alg 3")
	for _, u := range []int{4, 8, 16, 32, 64} {
		base := meanSlots(m2hew.AlgorithmBaselineUniversal, u)
		det := meanSlots(m2hew.AlgorithmBaselineRoundRobin, u)
		fmt.Printf("%6d %18.0f %16.0f %13.1fx\n", u, base, det, base/alg3)
	}
	fmt.Println("\nThe baselines pay for every channel anyone might have; Algorithm 3 pays")
	fmt.Println("only for the channels the nodes actually hold.")
}
