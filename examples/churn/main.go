// Churn: live with a primary user that shows up mid-operation.
//
// Cognitive radios borrow licensed spectrum, so the paper's opening pages
// make one promise on their behalf: "when a primary user arrives and starts
// using its channel, the secondary users have to vacate the channel." This
// example plays that event out: a network discovers itself, a primary
// claims a channel over part of the area, the affected nodes vacate it, and
// discovery re-runs on what is left of the spectrum.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"m2hew"
)

func main() {
	nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
		Nodes:            18,
		Topology:         m2hew.TopologyGeometric,
		Radius:           0.42,
		RequireConnected: true,
		Universe:         5,
		Channels:         m2hew.ChannelsPrimaryUsers,
		Primaries:        6,
		Seed:             8,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := nw.Stats()
	fmt.Printf("before churn: S=%d Δ=%d ρ=%.2f, %d links\n",
		s.S, s.Delta, s.Rho, s.DiscoverableLinks)

	initial, err := m2hew.Run(nw, m2hew.RunConfig{Algorithm: m2hew.AlgorithmSyncStaged, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	if !initial.Complete {
		log.Fatal("initial discovery incomplete")
	}
	fmt.Printf("initial discovery: %d slots\n\n", initial.Slots)

	// A primary user powers up mid-area and claims channel 0 within a 0.5
	// radius: everyone in range must vacate it immediately.
	affected := nw.RevokeChannel(0, 0.5, 0.5, 0.5)
	s = nw.Stats()
	fmt.Printf("primary user arrives on channel 0: %d nodes vacate it\n", len(affected))
	fmt.Printf("after churn: S=%d Δ=%d ρ=%.2f, %d links\n",
		s.S, s.Delta, s.Rho, s.DiscoverableLinks)

	rerun, err := m2hew.Run(nw, m2hew.RunConfig{Algorithm: m2hew.AlgorithmSyncStaged, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	if !rerun.Complete {
		log.Fatalf("re-discovery incomplete: %d/%d links", rerun.LinksCovered, rerun.LinksTotal)
	}
	fmt.Printf("re-discovery: %d slots (%.1f%% of the initial run)\n",
		rerun.Slots, 100*float64(rerun.Slots)/float64(initial.Slots))
	fmt.Println("\nEvery link survived on other channels — losing a channel in a region")
	fmt.Println("shrinks spans (lower ρ, slower discovery) but multi-channel redundancy")
	fmt.Println("keeps the network whole.")
}
