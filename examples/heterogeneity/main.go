// Heterogeneity: measure how channel heterogeneity slows neighbor
// discovery.
//
// The paper's Section II states that the running time of its algorithms is
// inversely proportional to ρ, the minimum span-ratio — the fraction of a
// node's channels usable on its worst link. This example holds everything
// else fixed (graph, N, |A(u)| = 12, Δ) and dials only ρ using the
// block-overlap channel model: each node shares an m-channel block with
// everyone and owns 12−m private channels, so ρ = m/12 exactly.
//
//	go run ./examples/heterogeneity
package main

import (
	"fmt"
	"log"

	"m2hew"
)

func main() {
	const (
		setSize = 12
		trials  = 10
	)
	fmt.Println("Algorithm 3 on an 8-ring, |A(u)| = 12, varying only ρ:")
	fmt.Printf("%8s %8s %12s %12s\n", "ρ", "1/ρ", "mean slots", "slots·ρ")
	for _, shared := range []int{12, 6, 3, 2, 1} {
		nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
			Nodes:        8,
			Topology:     m2hew.TopologyRing,
			Channels:     m2hew.ChannelsBlockOverlap,
			SharedBlock:  shared,
			PrivateBlock: setSize - shared,
			Seed:         1,
		})
		if err != nil {
			log.Fatal(err)
		}
		rho := nw.Stats().Rho
		var total float64
		for trial := 0; trial < trials; trial++ {
			report, err := m2hew.Run(nw, m2hew.RunConfig{
				Algorithm: m2hew.AlgorithmSyncUniform,
				Seed:      uint64(trial + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			if !report.Complete {
				log.Fatalf("ρ=%.3f trial %d incomplete", rho, trial)
			}
			total += float64(report.Slots)
		}
		mean := total / trials
		fmt.Printf("%8.3f %8.1f %12.0f %12.0f\n", rho, 1/rho, mean, mean*rho)
	}
	fmt.Println("\nslots·ρ staying roughly constant is the paper's 1/ρ scaling claim.")
}
