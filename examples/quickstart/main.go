// Quickstart: build a cognitive-radio network and run the paper's
// Algorithm 1 (synchronous staged neighbor discovery) on it.
//
// The scenario is the one the paper motivates: radios scattered over an
// area, each sensing a different subset of the spectrum free (because
// licensed primary users occupy different channels in different places),
// needing to learn who their neighbors are and which channels they share.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"m2hew"
)

func main() {
	// A 20-node network in the unit square. Primary users knock different
	// channels out of different regions, so available channel sets are
	// heterogeneous — the M²HeW setting.
	nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
		Nodes:            20,
		Topology:         m2hew.TopologyGeometric,
		Radius:           0.42,
		RequireConnected: true,
		Universe:         10,
		Channels:         m2hew.ChannelsPrimaryUsers,
		Primaries:        14,
		ExclusionRadius:  0.3,
		Seed:             42,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := nw.Stats()
	fmt.Printf("network: %d nodes, %d channels in the universe\n", s.Nodes, s.Universe)
	fmt.Printf("heterogeneity: largest available set S=%d, max channel degree Δ=%d, span-ratio ρ=%.2f\n",
		s.S, s.Delta, s.Rho)
	fmt.Printf("to discover: %d directed links\n\n", s.DiscoverableLinks)

	// Run Algorithm 1. Nodes know only a loose upper bound on the maximum
	// degree (derived automatically); they do not know N, S or ρ.
	report, err := m2hew.Run(nw, m2hew.RunConfig{
		Algorithm: m2hew.AlgorithmSyncStaged,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !report.Complete {
		log.Fatalf("discovery incomplete: %d/%d links", report.LinksCovered, report.LinksTotal)
	}
	fmt.Printf("discovery complete in %d slots\n", report.Slots)
	fmt.Printf("Theorem 1 bound: %.0f slots (measured = %.1f%% of bound)\n\n",
		report.Bound, 100*float64(report.Slots)/report.Bound)

	// Every node now knows its neighbors and the channels it shares with
	// each — the input to MAC, clustering and scheduling layers.
	fmt.Println("node 0's neighbor table:")
	for _, d := range report.Tables[0] {
		fmt.Printf("  neighbor %2d, common channels %v\n", d.Neighbor, d.CommonChannels)
	}
}
