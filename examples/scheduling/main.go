// Scheduling: use the discovery output to build a collision-free TDMA link
// schedule — the kind of downstream task the paper's introduction motivates
// ("the results of neighbor discovery can then be used to solve ... medium
// access control, clustering, collision-free scheduling").
//
// The pipeline:
//
//  1. Run Algorithm 1 on a heterogeneous CR network.
//  2. Collect every node's neighbor table (who it heard + shared channels).
//  3. Greedily color the discovered directed links with (slot, channel)
//     pairs so that simultaneous transmissions never conflict: no node does
//     two things in one slot, and no receiver is in range of a second
//     transmitter on its channel.
//  4. Audit the schedule against the ground-truth network.
//
// The schedule is built *only* from what discovery reported; the audit shows
// that a complete discovery run is sufficient knowledge for conflict-free
// scheduling.
//
//	go run ./examples/scheduling
package main

import (
	"fmt"
	"log"

	"m2hew"
)

// link is one directed transmission to schedule.
type link struct {
	from, to int
	channels []int // channels the link can use (from the discovery table)
}

// assignment is a scheduled transmission; parallel to the links slice.
type assignment struct {
	slot    int
	channel int
}

func main() {
	nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
		Nodes:            14,
		Topology:         m2hew.TopologyGeometric,
		Radius:           0.45,
		RequireConnected: true,
		Universe:         6,
		Channels:         m2hew.ChannelsPrimaryUsers,
		Primaries:        8,
		Seed:             33,
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := m2hew.Run(nw, m2hew.RunConfig{Algorithm: m2hew.AlgorithmSyncStaged, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	if !report.Complete {
		log.Fatalf("discovery incomplete (%d/%d); cannot schedule", report.LinksCovered, report.LinksTotal)
	}
	fmt.Printf("discovery: %d links found in %d slots\n", report.LinksTotal, report.Slots)

	// Step 2: links to schedule, straight from the discovered tables, plus
	// the discovered adjacency used for the interference constraint.
	var links []link
	adjacent := make(map[[2]int]bool)
	for u, entries := range report.Tables {
		for _, d := range entries {
			links = append(links, link{from: u, to: d.Neighbor, channels: d.CommonChannels})
			adjacent[[2]int{u, d.Neighbor}] = true
			adjacent[[2]int{d.Neighbor, u}] = true
		}
	}

	// Step 3: greedy first-fit coloring over (slot, channel) pairs.
	assignments := make([]assignment, len(links))
	numSlots := 0
	fits := func(i, slot, c int) bool {
		l := links[i]
		for j := 0; j < i; j++ {
			a := assignments[j]
			if a.slot != slot {
				continue
			}
			o := links[j]
			// Single transceiver: a node cannot take part in two
			// transmissions in the same slot.
			if l.from == o.from || l.from == o.to || l.to == o.from || l.to == o.to {
				return false
			}
			if a.channel != c {
				continue
			}
			// Collision: the other transmitter is in range of our
			// receiver, or ours is in range of theirs, on the same channel.
			if adjacent[[2]int{o.from, l.to}] || adjacent[[2]int{l.from, o.to}] {
				return false
			}
		}
		return true
	}
	for i, l := range links {
		placed := false
		for slot := 0; slot < numSlots && !placed; slot++ {
			for _, c := range l.channels {
				if fits(i, slot, c) {
					assignments[i] = assignment{slot: slot, channel: c}
					placed = true
					break
				}
			}
		}
		if !placed {
			assignments[i] = assignment{slot: numSlots, channel: l.channels[0]}
			numSlots++
		}
	}
	fmt.Printf("schedule: %d links in %d TDMA slots (naive one-per-slot would need %d)\n",
		len(links), numSlots, len(links))

	// Step 4: audit against ground truth.
	violations := 0
	for i := range links {
		for j := range links {
			if i == j || assignments[i].slot != assignments[j].slot {
				continue
			}
			a, b := links[i], links[j]
			if a.from == b.from || a.from == b.to || a.to == b.from || a.to == b.to {
				violations++
				continue
			}
			if assignments[i].channel != assignments[j].channel {
				continue
			}
			// b's transmitter must not reach a's receiver (ground truth).
			for _, v := range nw.NeighborIDs(a.to) {
				if v == b.from {
					violations++
				}
			}
		}
	}
	if violations > 0 {
		log.Fatalf("schedule audit FAILED: %d conflicts", violations)
	}
	fmt.Println("audit: schedule is collision-free against the ground-truth network")
	fmt.Printf("speedup over naive TDMA: %.1fx (channel diversity + spatial reuse)\n",
		float64(len(links))/float64(numSlots))
}
