// Termination: run discovery with the quiescence stopping rule and explore
// the recall/energy tradeoff.
//
// The paper's algorithms never stop — Theorem 1 tells an outside observer
// when discovery has succeeded with probability 1−ε, but a node cannot see
// that locally (it knows neither its true neighbor count nor the network
// parameters). Following the direction of the paper's companion work on
// lightweight termination detection, the library offers a quiescence rule:
// a node powers its radio down after a configurable number of consecutive
// slots without discovering anyone new.
//
// This example sweeps the idle limit and prints recall (fraction of links
// discovered) against the mean number of slots each radio stayed on.
//
//	go run ./examples/termination
package main

import (
	"fmt"
	"log"

	"m2hew"
)

func main() {
	nw, err := m2hew.BuildNetwork(m2hew.NetworkConfig{
		Nodes:            16,
		Topology:         m2hew.TopologyGeometric,
		Radius:           0.45,
		RequireConnected: true,
		Universe:         8,
		Channels:         m2hew.ChannelsPrimaryUsers,
		Primaries:        10,
		Seed:             21,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := nw.Stats()
	fmt.Printf("network: N=%d S=%d Δ=%d ρ=%.2f, %d links\n\n",
		s.Nodes, s.S, s.Delta, s.Rho, s.DiscoverableLinks)

	// Reference: how long a single always-on run needs.
	ref, err := m2hew.Run(nw, m2hew.RunConfig{Algorithm: m2hew.AlgorithmSyncUniform, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("always-on completion: %d slots (every radio on the whole time)\n\n", ref.Slots)

	fmt.Printf("%10s %10s %14s %10s\n", "idle limit", "recall", "active slots", "stopped")
	for _, idle := range []int{25, 100, 400, 1600} {
		report, err := m2hew.Run(nw, m2hew.RunConfig{
			Algorithm:          m2hew.AlgorithmSyncUniform,
			TerminateAfterIdle: idle,
			Seed:               3,
		})
		if err != nil {
			log.Fatal(err)
		}
		recall := float64(report.LinksCovered) / float64(report.LinksTotal)
		fmt.Printf("%10d %10.3f %14.0f %7d/%d\n",
			idle, recall, report.MeanActiveUnits, report.TerminatedNodes, nw.N())
	}
	fmt.Println("\nA small idle limit quits too early and misses links; a generous one reaches")
	fmt.Println("full recall while still letting every radio shut down shortly after the real")
	fmt.Println("work is done.")
}
