module m2hew

go 1.22
