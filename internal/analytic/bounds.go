// Package analytic computes the paper's closed-form bounds, used by the
// experiment harness to compare measured behaviour against every quantity
// the paper proves.
//
// All bounds are parameterized by the scenario quantities of Section II:
// N (nodes), S (largest available channel set), Δ (maximum per-channel
// degree), Δ_est (the degree upper bound known to nodes), ρ (minimum
// span-ratio) and the failure probability ε. The simulator knows the true
// values from topology.Params; the algorithms themselves never read them.
package analytic

import (
	"fmt"
	"math"

	"m2hew/internal/core"
)

// Scenario carries the parameters the paper's bounds are stated in.
type Scenario struct {
	// N is the number of nodes in the network.
	N int
	// S is the size of the largest available channel set.
	S int
	// Delta is the true maximum degree of any node on any channel.
	Delta int
	// DeltaEst is the degree upper bound the nodes were configured with
	// (Δ ≤ DeltaEst for the bounds to apply).
	DeltaEst int
	// Rho is the minimum span-ratio over all links.
	Rho float64
	// Eps is the target failure probability ε.
	Eps float64
}

// Validate checks the scenario is in the domain of the paper's theorems.
func (sc Scenario) Validate() error {
	if sc.N < 2 {
		return fmt.Errorf("analytic: N=%d needs at least two nodes", sc.N)
	}
	if sc.S < 1 {
		return fmt.Errorf("analytic: S=%d must be positive", sc.S)
	}
	if sc.Delta < 1 {
		return fmt.Errorf("analytic: Delta=%d must be positive", sc.Delta)
	}
	if sc.DeltaEst < sc.Delta {
		return fmt.Errorf("analytic: DeltaEst=%d below true Delta=%d", sc.DeltaEst, sc.Delta)
	}
	if sc.Rho <= 0 || sc.Rho > 1 {
		return fmt.Errorf("analytic: Rho=%v outside (0,1]", sc.Rho)
	}
	if sc.Eps <= 0 || sc.Eps >= 1 {
		return fmt.Errorf("analytic: Eps=%v outside (0,1)", sc.Eps)
	}
	return nil
}

// lnN2OverEps returns ln(N²/ε), the union-bound factor shared by all the
// running-time bounds.
func (sc Scenario) lnN2OverEps() float64 {
	return math.Log(float64(sc.N) * float64(sc.N) / sc.Eps)
}

// Eq6CoverageBound returns the per-stage link coverage probability lower
// bound of Eq. (6): ρ / (16·max(S,Δ)).
func (sc Scenario) Eq6CoverageBound() float64 {
	return sc.Rho / (16 * float64(max(sc.S, sc.Delta)))
}

// M1Stages returns M = (16·max(S,Δ)/ρ)·ln(N²/ε), the stage count of
// Theorem 1 (and the M of Theorem 2).
func (sc Scenario) M1Stages() float64 {
	return 16 * float64(max(sc.S, sc.Delta)) / sc.Rho * sc.lnN2OverEps()
}

// Theorem1Slots returns the slot bound of Theorem 1: M1Stages stages of
// ⌈log₂ Δ_est⌉ slots each.
func (sc Scenario) Theorem1Slots() float64 {
	return sc.M1Stages() * float64(core.StageLen(sc.DeltaEst))
}

// Theorem2Stages returns the stage bound of Theorem 2: Δ + M stages (the
// first Δ−1 stages may have estimates below the true degree; once the
// estimate reaches Δ every stage contains a near-optimal slot).
func (sc Scenario) Theorem2Stages() float64 {
	return float64(sc.Delta) + sc.M1Stages()
}

// Theorem2Slots returns the slot bound of Theorem 2 by summing the actual
// growing stage lengths of Algorithm 2 over Theorem2Stages stages: stage j
// uses estimate d = j+1, so the bound is SlotsForEstimate(⌈Δ+M⌉+1). This is
// the O(M log M) of the theorem with its constants made concrete.
func (sc Scenario) Theorem2Slots() float64 {
	stages := int(math.Ceil(sc.Theorem2Stages()))
	return float64(core.SlotsForEstimate(stages + 1))
}

// Alg3CoverageBound returns Algorithm 3's per-slot link coverage
// probability lower bound, from Eq. (9) with Eqs. (4) and (5):
// ρ / (8·max(2S, Δ_est)).
func (sc Scenario) Alg3CoverageBound() float64 {
	return sc.Rho / (8 * float64(max(2*sc.S, sc.DeltaEst)))
}

// Theorem3Slots returns the slot bound of Theorem 3 (slots after T_s):
// (8·max(2S, Δ_est)/ρ)·ln(N²/ε).
func (sc Scenario) Theorem3Slots() float64 {
	return 8 * float64(max(2*sc.S, sc.DeltaEst)) / sc.Rho * sc.lnN2OverEps()
}

// Lemma5CoverageBound returns the aligned-frame-pair coverage probability
// lower bound of Lemma 5: ρ / (8·max(2S, 3·Δ_est)).
func (sc Scenario) Lemma5CoverageBound() float64 {
	return sc.Rho / (8 * float64(max(2*sc.S, 3*sc.DeltaEst)))
}

// Theorem9Frames returns the per-node full-frame count of Theorem 9:
// (48·max(2S, 3·Δ_est)/ρ)·ln(N²/ε). Once every node has executed this many
// full frames after T_s, discovery has completed with probability ≥ 1−ε.
func (sc Scenario) Theorem9Frames() float64 {
	return 48 * float64(max(2*sc.S, 3*sc.DeltaEst)) / sc.Rho * sc.lnN2OverEps()
}

// Theorem10Span returns the real-time bound of Theorem 10 on T_f − T_s:
// (Theorem9Frames + 1) · L/(1−δ), for local frame length L and drift bound
// delta.
func (sc Scenario) Theorem10Span(frameLen, delta float64) float64 {
	return (sc.Theorem9Frames() + 1) * frameLen / (1 - delta)
}

// failureProb is the shared tail shape of the paper's completion arguments:
// the probability that some directed link remains uncovered after `units`
// independent coverage opportunities each succeeding with probability at
// least q is at most N²·(1−q)^units (links ≤ N², Eq. (8)). The result is
// capped at 1.
func (sc Scenario) failureProb(q, units float64) float64 {
	if units < 0 {
		units = 0
	}
	p := float64(sc.N) * float64(sc.N) * math.Pow(1-q, units)
	if p > 1 {
		return 1
	}
	return p
}

// FailureProbAfterStages bounds the probability that Algorithm 1 has not
// finished after the given number of stages (the inverse view of
// Theorem 1): N²·(1−Eq6CoverageBound)^stages.
func (sc Scenario) FailureProbAfterStages(stages float64) float64 {
	return sc.failureProb(sc.Eq6CoverageBound(), stages)
}

// FailureProbAfterSlots3 bounds the probability that Algorithm 3 has not
// finished within the given number of slots after T_s (inverse of
// Theorem 3).
func (sc Scenario) FailureProbAfterSlots3(slots float64) float64 {
	return sc.failureProb(sc.Alg3CoverageBound(), slots)
}

// FailureProbAfterFrames bounds the probability that Algorithm 4 has not
// finished once every node has executed the given number of full frames
// after T_s (inverse of Theorem 9; the admissible pairs available are
// frames/6 by Lemma 8).
func (sc Scenario) FailureProbAfterFrames(frames float64) float64 {
	return sc.failureProb(sc.Lemma5CoverageBound(), frames/6)
}

// eulerGamma is the Euler–Mascheroni constant.
const eulerGamma = 0.5772156649015329

// CouponCollectorApprox estimates the expected completion time, in slots,
// of constant-transmit-probability discovery (Algorithm 3) on a
// single-channel clique of n nodes with per-slot transmit probability p.
//
// Each of the m = n(n−1) directed links is covered in a slot with
// probability q = p(1−p)^(n−1) (transmitter on, receiver listening, the
// other n−2 nodes silent). Modeling the links as independent coupons —
// the approximation underlying the coupon-collector analysis of
// single-channel neighbor discovery in the paper's ref [2] (Vasudevan et
// al., MobiCom 2009) — the expected completion is the expected maximum of
// m geometric(q) variables:
//
//	E ≈ (ln m + γ) / (−ln(1−q)) ≈ (ln m + γ)/q.
//
// Experiment E16 checks the implementation against this prediction.
func CouponCollectorApprox(n int, p float64) float64 {
	if n < 2 || p <= 0 || p >= 1 {
		return math.NaN()
	}
	m := float64(n) * float64(n-1)
	q := p * math.Pow(1-p, float64(n-1))
	return (math.Log(m) + eulerGamma) / -math.Log1p(-q)
}
