package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"m2hew/internal/core"
)

func valid() Scenario {
	return Scenario{N: 20, S: 5, Delta: 4, DeltaEst: 8, Rho: 0.5, Eps: 0.1}
}

func TestValidate(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	cases := map[string]func(*Scenario){
		"one node":       func(s *Scenario) { s.N = 1 },
		"zero S":         func(s *Scenario) { s.S = 0 },
		"zero delta":     func(s *Scenario) { s.Delta = 0 },
		"estimate below": func(s *Scenario) { s.DeltaEst = 3 },
		"zero rho":       func(s *Scenario) { s.Rho = 0 },
		"rho above one":  func(s *Scenario) { s.Rho = 1.5 },
		"zero eps":       func(s *Scenario) { s.Eps = 0 },
		"eps one":        func(s *Scenario) { s.Eps = 1 },
	}
	for name, mutate := range cases {
		sc := valid()
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestEq6CoverageBound(t *testing.T) {
	sc := valid() // max(S,Δ)=5, ρ=0.5 → 0.5/80
	want := 0.5 / 80
	if got := sc.Eq6CoverageBound(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("Eq6 = %v, want %v", got, want)
	}
}

func TestM1Stages(t *testing.T) {
	sc := valid()
	want := 16 * 5 / 0.5 * math.Log(400/0.1)
	if got := sc.M1Stages(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("M1 = %v, want %v", got, want)
	}
}

func TestTheorem1Slots(t *testing.T) {
	sc := valid() // stage len for Δest=8 is 3
	want := sc.M1Stages() * 3
	if got := sc.Theorem1Slots(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Theorem1Slots = %v, want %v", got, want)
	}
}

func TestTheorem2(t *testing.T) {
	sc := valid()
	wantStages := float64(sc.Delta) + sc.M1Stages()
	if got := sc.Theorem2Stages(); math.Abs(got-wantStages) > 1e-9 {
		t.Fatalf("Theorem2Stages = %v, want %v", got, wantStages)
	}
	stages := int(math.Ceil(wantStages))
	wantSlots := float64(core.SlotsForEstimate(stages + 1))
	if got := sc.Theorem2Slots(); got != wantSlots {
		t.Fatalf("Theorem2Slots = %v, want %v", got, wantSlots)
	}
}

func TestTheorem3Slots(t *testing.T) {
	sc := valid() // max(2S, Δest) = max(10,8) = 10
	want := 8 * 10 / 0.5 * math.Log(400/0.1)
	if got := sc.Theorem3Slots(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Theorem3Slots = %v, want %v", got, want)
	}
	if got := sc.Alg3CoverageBound(); math.Abs(got-0.5/80) > 1e-15 {
		t.Fatalf("Alg3CoverageBound = %v", got)
	}
}

func TestLemma5AndTheorem9(t *testing.T) {
	sc := valid() // max(2S, 3Δest) = max(10,24) = 24
	wantCov := 0.5 / (8 * 24)
	if got := sc.Lemma5CoverageBound(); math.Abs(got-wantCov) > 1e-15 {
		t.Fatalf("Lemma5 = %v, want %v", got, wantCov)
	}
	wantFrames := 48 * 24 / 0.5 * math.Log(400/0.1)
	if got := sc.Theorem9Frames(); math.Abs(got-wantFrames) > 1e-9 {
		t.Fatalf("Theorem9Frames = %v, want %v", got, wantFrames)
	}
}

func TestTheorem10Span(t *testing.T) {
	sc := valid()
	l, delta := 3.0, 1.0/7
	want := (sc.Theorem9Frames() + 1) * l / (1 - delta)
	if got := sc.Theorem10Span(l, delta); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Theorem10Span = %v, want %v", got, want)
	}
}

// Property: bounds behave monotonically the way the paper's formulas say —
// more heterogeneity (smaller ρ) or smaller ε can only increase the bounds.
func TestBoundMonotonicityProperty(t *testing.T) {
	err := quick.Check(func(sRaw, dRaw uint8, rhoRaw, epsRaw uint16) bool {
		s := int(sRaw%20) + 1
		d := int(dRaw%20) + 1
		rho := float64(rhoRaw%1000+1) / 1000
		eps := float64(epsRaw%998+1) / 1000
		sc := Scenario{N: 10, S: s, Delta: d, DeltaEst: d, Rho: rho, Eps: eps}
		if err := sc.Validate(); err != nil {
			return false
		}
		tighter := sc
		tighter.Rho = rho / 2
		smallerEps := sc
		smallerEps.Eps = eps / 2
		return tighter.M1Stages() >= sc.M1Stages() &&
			smallerEps.M1Stages() >= sc.M1Stages() &&
			tighter.Theorem3Slots() >= sc.Theorem3Slots() &&
			tighter.Theorem9Frames() >= sc.Theorem9Frames() &&
			sc.Eq6CoverageBound() > 0 && sc.Eq6CoverageBound() <= 1 &&
			sc.Lemma5CoverageBound() > 0 && sc.Lemma5CoverageBound() <= 1
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// The asynchronous per-pair coverage bound is never larger than the
// synchronous per-stage bound for the same parameters (asynchrony costs a
// constant factor), and Theorem 9's frame count is 6× the pairs needed by
// Lemma 6 (the M/6 yield of Lemma 8).
func TestCrossBoundRelations(t *testing.T) {
	sc := valid()
	if sc.Lemma5CoverageBound() > sc.Eq6CoverageBound()*2 {
		t.Fatalf("Lemma5 bound %v unexpectedly large vs Eq6 %v",
			sc.Lemma5CoverageBound(), sc.Eq6CoverageBound())
	}
	pairsNeeded := 8 * float64(max(2*sc.S, 3*sc.DeltaEst)) / sc.Rho * sc.lnN2OverEps()
	if math.Abs(sc.Theorem9Frames()-6*pairsNeeded) > 1e-9 {
		t.Fatalf("Theorem9Frames %v != 6 × Lemma6 pairs %v", sc.Theorem9Frames(), pairsNeeded)
	}
}

func TestFailureProbInverts(t *testing.T) {
	sc := valid()
	// Running for exactly the theorem's unit count drives the failure
	// bound to (at most) ε. The M formulas use ln(N²/ε)/q while the tail
	// uses (1−q)^M ≤ e^{−qM}, so the inverse is ≤ ε, never above.
	if got := sc.FailureProbAfterStages(sc.M1Stages()); got > sc.Eps+1e-12 {
		t.Fatalf("failure after M1 stages = %v > ε", got)
	}
	if got := sc.FailureProbAfterSlots3(sc.Theorem3Slots()); got > sc.Eps+1e-12 {
		t.Fatalf("failure after Theorem 3 slots = %v > ε", got)
	}
	if got := sc.FailureProbAfterFrames(sc.Theorem9Frames()); got > sc.Eps+1e-12 {
		t.Fatalf("failure after Theorem 9 frames = %v > ε", got)
	}
}

func TestFailureProbShape(t *testing.T) {
	sc := valid()
	if got := sc.FailureProbAfterStages(0); got != 1 {
		t.Fatalf("failure after 0 stages = %v, want 1 (capped)", got)
	}
	if got := sc.FailureProbAfterStages(-5); got != 1 {
		t.Fatalf("negative stages = %v, want 1", got)
	}
	// Monotone decreasing.
	prev := 1.0
	for _, stages := range []float64{100, 1000, 5000, 20000} {
		cur := sc.FailureProbAfterStages(stages)
		if cur > prev {
			t.Fatalf("failure bound not monotone at %v stages", stages)
		}
		prev = cur
	}
	if prev >= 1e-3 {
		t.Fatalf("failure bound after 20000 stages still %v", prev)
	}
}

func TestCouponCollectorApprox(t *testing.T) {
	// n=2, p=1/2: q = 1/4, m = 2 → (ln 2 + γ)/(−ln(3/4)).
	got := CouponCollectorApprox(2, 0.5)
	want := (math.Log(2) + 0.5772156649015329) / -math.Log(0.75)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CouponCollectorApprox(2, .5) = %v, want %v", got, want)
	}
	// Grows superlinearly in n (q shrinks like e^{-1}/n, m like n²).
	prev := 0.0
	for _, n := range []int{4, 8, 16, 32} {
		cur := CouponCollectorApprox(n, 1/float64(n-1))
		if cur <= prev {
			t.Fatalf("approximation not increasing at n=%d: %v <= %v", n, cur, prev)
		}
		prev = cur
	}
	// Domain errors yield NaN.
	for _, bad := range []float64{0, 1, -0.5} {
		if !math.IsNaN(CouponCollectorApprox(5, bad)) {
			t.Fatalf("p=%v did not yield NaN", bad)
		}
	}
	if !math.IsNaN(CouponCollectorApprox(1, 0.5)) {
		t.Fatal("n=1 did not yield NaN")
	}
}
