// Package baseline implements the comparator algorithms from the paper's
// Related Work section, used by the experiments that reproduce its critique
// of prior approaches.
//
// Two baselines are provided:
//
//   - UniversalBirthday: the natural multi-channel extension of
//     single-channel randomized ("birthday protocol") neighbor discovery
//     [McGlynn & Borbash 2001; Vasudevan et al. 2009]: run one instance of a
//     single-channel discovery protocol per channel of the agreed universal
//     channel set, concurrently, by dedicating slot t to channel t mod U. A
//     node participates only in instances of channels in its available set.
//     The paper's critique (Section I): the running time is Θ(U) even when
//     available sets are tiny, all nodes must agree on the universal set,
//     and all nodes must start simultaneously.
//
//   - DeterministicRoundRobin: a deterministic schedule in the spirit of
//     [Krishnamurthy et al. 2008; Mittal et al. 2009]: slot t is dedicated
//     to transmitter t/U mod N_max on channel t mod U. Collision-free and
//     deterministic, but the running time is the product N_max·U and nodes
//     must know a bound on the ID space — exactly the dependence the paper
//     calls out as expensive.
//
// Both implement sim.SyncProtocol and assume identical start times, which is
// part of what the paper improves upon.
package baseline

import (
	"fmt"

	"m2hew/internal/channel"
	"m2hew/internal/core"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// UniversalBirthday runs one staged single-channel birthday-protocol
// instance per universal channel, interleaved round-robin across slots.
type UniversalBirthday struct {
	avail        channel.Set
	universeSize int
	stageLen     int
	rng          *rng.Source
	table        *core.NeighborTable
}

// NewUniversalBirthday returns a baseline instance. universeSize is the
// agreed universal channel set size |U| (channels 0..U−1); deltaEst plays
// the same scheduling role as in Algorithm 1.
func NewUniversalBirthday(avail channel.Set, universeSize, deltaEst int, r *rng.Source) (*UniversalBirthday, error) {
	if avail.IsEmpty() {
		return nil, fmt.Errorf("baseline: empty available channel set")
	}
	if universeSize < 1 {
		return nil, fmt.Errorf("baseline: universe size %d must be positive", universeSize)
	}
	if maxID, _ := avail.Max(); int(maxID) >= universeSize {
		return nil, fmt.Errorf("baseline: available set %v exceeds universal set of size %d", avail, universeSize)
	}
	if deltaEst < 1 {
		return nil, fmt.Errorf("baseline: degree estimate %d must be positive", deltaEst)
	}
	if r == nil {
		return nil, fmt.Errorf("baseline: nil random source")
	}
	return &UniversalBirthday{
		avail:        avail.Clone(),
		universeSize: universeSize,
		stageLen:     core.StageLen(deltaEst),
		rng:          r,
		table:        core.NewNeighborTable(),
	}, nil
}

// Step implements sim.SyncProtocol. Slot t belongs to the instance for
// channel t mod U; a node without that channel stays quiet (this idle time
// is the linear-in-U cost the paper criticizes). Within an instance, slot
// indexes advance by one every U global slots, and the single-channel
// staged schedule min(1/2, 1/2^i) is applied.
func (p *UniversalBirthday) Step(localSlot int) radio.Action {
	c := channel.ID(localSlot % p.universeSize)
	if !p.avail.Contains(c) {
		return radio.Action{Mode: radio.Quiet}
	}
	instanceSlot := localSlot / p.universeSize
	i := instanceSlot%p.stageLen + 1
	// Single-channel instance: the "available set" within the instance has
	// size 1, giving the birthday-protocol schedule min(1/2, 1/2^i) — but
	// capped stage slots keep it 1/2 in early slots exactly as Algorithm 1
	// does with |A| = 1.
	mode := radio.Receive
	if p.rng.Bernoulli(core.TransmitProbStaged(1, i)) {
		mode = radio.Transmit
	}
	return radio.Action{Mode: mode, Channel: c}
}

// Deliver records a clear message.
func (p *UniversalBirthday) Deliver(msg radio.Message) {
	p.table.RecordIntersect(msg.From, msg.Avail, p.avail)
}

// Neighbors returns the discovery output.
func (p *UniversalBirthday) Neighbors() *core.NeighborTable { return p.table }

// DeterministicRoundRobin cycles through (transmitter, channel) pairs:
// slot t has transmitter (t/U) mod N_max on channel t mod U.
type DeterministicRoundRobin struct {
	id           topology.NodeID
	avail        channel.Set
	universeSize int
	maxIDs       int
	table        *core.NeighborTable
}

// NewDeterministicRoundRobin returns a deterministic baseline instance for
// the node with the given ID. maxIDs bounds the ID space (IDs 0..maxIDs−1);
// the schedule length is maxIDs·universeSize slots.
func NewDeterministicRoundRobin(id topology.NodeID, avail channel.Set, universeSize, maxIDs int) (*DeterministicRoundRobin, error) {
	if avail.IsEmpty() {
		return nil, fmt.Errorf("baseline: empty available channel set")
	}
	if universeSize < 1 {
		return nil, fmt.Errorf("baseline: universe size %d must be positive", universeSize)
	}
	if maxID, _ := avail.Max(); int(maxID) >= universeSize {
		return nil, fmt.Errorf("baseline: available set %v exceeds universal set of size %d", avail, universeSize)
	}
	if maxIDs < 1 {
		return nil, fmt.Errorf("baseline: ID bound %d must be positive", maxIDs)
	}
	if int(id) < 0 || int(id) >= maxIDs {
		return nil, fmt.Errorf("baseline: node ID %d outside [0,%d)", id, maxIDs)
	}
	return &DeterministicRoundRobin{
		id:           id,
		avail:        avail.Clone(),
		universeSize: universeSize,
		maxIDs:       maxIDs,
		table:        core.NewNeighborTable(),
	}, nil
}

// ScheduleLength returns the number of slots after which every
// (transmitter, channel) pair has had its dedicated slot.
func (p *DeterministicRoundRobin) ScheduleLength() int {
	return p.maxIDs * p.universeSize
}

// Step implements sim.SyncProtocol.
func (p *DeterministicRoundRobin) Step(localSlot int) radio.Action {
	c := channel.ID(localSlot % p.universeSize)
	if !p.avail.Contains(c) {
		return radio.Action{Mode: radio.Quiet}
	}
	speaker := topology.NodeID(localSlot / p.universeSize % p.maxIDs)
	if speaker == p.id {
		return radio.Action{Mode: radio.Transmit, Channel: c}
	}
	return radio.Action{Mode: radio.Receive, Channel: c}
}

// Deliver records a clear message.
func (p *DeterministicRoundRobin) Deliver(msg radio.Message) {
	p.table.RecordIntersect(msg.From, msg.Avail, p.avail)
}

// Neighbors returns the discovery output.
func (p *DeterministicRoundRobin) Neighbors() *core.NeighborTable { return p.table }
