package baseline

import (
	"math"
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

func TestUniversalBirthdayValidation(t *testing.T) {
	r := rng.New(1)
	avail := channel.NewSet(0, 2)
	if _, err := NewUniversalBirthday(channel.Set{}, 4, 4, r); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewUniversalBirthday(avail, 0, 4, r); err == nil {
		t.Error("zero universe accepted")
	}
	if _, err := NewUniversalBirthday(avail, 2, 4, r); err == nil {
		t.Error("set outside universe accepted")
	}
	if _, err := NewUniversalBirthday(avail, 4, 0, r); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := NewUniversalBirthday(avail, 4, 4, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestUniversalBirthdaySlotChannelMapping(t *testing.T) {
	r := rng.New(2)
	avail := channel.NewSet(1, 3)
	p, err := NewUniversalBirthday(avail, 4, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 400; slot++ {
		a := p.Step(slot)
		c := channel.ID(slot % 4)
		if avail.Contains(c) {
			if a.Mode == radio.Quiet {
				t.Fatalf("slot %d: quiet on available channel %d", slot, c)
			}
			if a.Channel != c {
				t.Fatalf("slot %d: tuned to %d, want %d", slot, a.Channel, c)
			}
		} else if a.Mode != radio.Quiet {
			t.Fatalf("slot %d: active on unavailable channel %d", slot, c)
		}
	}
}

func TestUniversalBirthdayTransmitSchedule(t *testing.T) {
	// Δest=4 → stage length 2, probs 1/2, 1/4 on instance slots.
	r := rng.New(3)
	avail := channel.NewSet(0)
	p, err := NewUniversalBirthday(avail, 2, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 40000
	tx := make([]int, 2)
	for inst := 0; inst < rounds; inst++ {
		// Channel 0's slots are the even global slots; instance slot number
		// is inst, stage position inst%2.
		a := p.Step(inst * 2)
		if a.Mode == radio.Transmit {
			tx[inst%2]++
		}
	}
	for i, want := range []float64{0.5, 0.25} {
		got := float64(tx[i]) / (rounds / 2)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("instance stage slot %d transmit freq %v, want %v", i+1, got, want)
		}
	}
}

func TestUniversalBirthdayDiscoversPair(t *testing.T) {
	nw, err := topology.Pair()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetAvail(0, channel.NewSet(2))
	nw.SetAvail(1, channel.NewSet(2, 3))
	root := rng.New(4)
	protos := make([]sim.SyncProtocol, 2)
	for u := 0; u < 2; u++ {
		p, err := NewUniversalBirthday(nw.Avail(topology.NodeID(u)), 8, 2, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		protos[u] = p
	}
	res, err := sim.RunSync(sim.SyncConfig{Network: nw, Protocols: protos, MaxSlots: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("baseline did not complete: %s", res.Coverage)
	}
	tbl := protos[0].(*UniversalBirthday).Neighbors()
	common, ok := tbl.Common(1)
	if !ok || !common.Equal(channel.NewSet(2)) {
		t.Fatalf("node 0 table: %v, %v", common, ok)
	}
}

func TestDeterministicRoundRobinValidation(t *testing.T) {
	avail := channel.NewSet(0)
	if _, err := NewDeterministicRoundRobin(0, channel.Set{}, 2, 4); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewDeterministicRoundRobin(0, avail, 0, 4); err == nil {
		t.Error("zero universe accepted")
	}
	if _, err := NewDeterministicRoundRobin(0, channel.NewSet(5), 2, 4); err == nil {
		t.Error("set outside universe accepted")
	}
	if _, err := NewDeterministicRoundRobin(0, avail, 2, 0); err == nil {
		t.Error("zero ID bound accepted")
	}
	if _, err := NewDeterministicRoundRobin(9, avail, 2, 4); err == nil {
		t.Error("ID beyond bound accepted")
	}
}

func TestDeterministicRoundRobinSchedule(t *testing.T) {
	avail := channel.NewSet(0, 1)
	p, err := NewDeterministicRoundRobin(1, avail, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.ScheduleLength() != 6 {
		t.Fatalf("schedule length %d, want 6", p.ScheduleLength())
	}
	// Slot layout: t mod 2 = channel, t/2 mod 3 = speaker.
	wantTx := map[int]bool{2: true, 3: true} // speaker 1 slots
	for slot := 0; slot < 6; slot++ {
		a := p.Step(slot)
		if wantTx[slot] && a.Mode != radio.Transmit {
			t.Errorf("slot %d: mode %v, want tx", slot, a.Mode)
		}
		if !wantTx[slot] && a.Mode != radio.Receive {
			t.Errorf("slot %d: mode %v, want rx", slot, a.Mode)
		}
		if a.Channel != channel.ID(slot%2) {
			t.Errorf("slot %d: channel %d", slot, a.Channel)
		}
	}
}

func TestDeterministicRoundRobinCompletesExactly(t *testing.T) {
	// On a clique with full universe, the deterministic schedule must
	// complete within exactly one schedule length and with zero randomness.
	nw, err := topology.Clique(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 3); err != nil {
		t.Fatal(err)
	}
	protos := make([]sim.SyncProtocol, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := NewDeterministicRoundRobin(topology.NodeID(u), nw.Avail(topology.NodeID(u)), 3, nw.N())
		if err != nil {
			t.Fatal(err)
		}
		protos[u] = p
	}
	res, err := sim.RunSync(sim.SyncConfig{Network: nw, Protocols: protos, MaxSlots: 15})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("deterministic schedule incomplete after full cycle: %s", res.Coverage)
	}
	if res.SlotsSimulated > 15 {
		t.Fatalf("took %d slots, want <= N·U = 15", res.SlotsSimulated)
	}
}

func TestDeterministicRoundRobinHeterogeneous(t *testing.T) {
	// Node 1 lacks channel 0; links still complete via channel 1.
	nw, err := topology.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	nw.SetAvail(0, channel.NewSet(0, 1))
	nw.SetAvail(1, channel.NewSet(1))
	nw.SetAvail(2, channel.NewSet(0, 1))
	protos := make([]sim.SyncProtocol, 3)
	for u := 0; u < 3; u++ {
		p, err := NewDeterministicRoundRobin(topology.NodeID(u), nw.Avail(topology.NodeID(u)), 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		protos[u] = p
	}
	res, err := sim.RunSync(sim.SyncConfig{Network: nw, Protocols: protos, MaxSlots: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("heterogeneous deterministic run incomplete: %s", res.Coverage)
	}
}
