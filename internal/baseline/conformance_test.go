package baseline_test

// Conformance checks for the baseline protocols via the shared testkit.

import (
	"testing"

	"m2hew/internal/baseline"
	"m2hew/internal/channel"
	"m2hew/internal/core"
	"m2hew/internal/rng"
	"m2hew/internal/simtest"
)

func TestConformanceUniversalBirthday(t *testing.T) {
	avail := channel.NewSet(0, 2, 5)
	simtest.CheckSync(t, "UniversalBirthday", avail, func(r *rng.Source) (core.SyncDiscoverer, error) {
		return baseline.NewUniversalBirthday(avail, 8, 4, r)
	}, simtest.Options{AllowQuiet: true}) // quiet on channels outside A(u)
}

func TestConformanceDeterministicRoundRobin(t *testing.T) {
	avail := channel.NewSet(0, 2, 5)
	simtest.CheckSync(t, "DeterministicRoundRobin", avail, func(r *rng.Source) (core.SyncDiscoverer, error) {
		return baseline.NewDeterministicRoundRobin(3, avail, 8, 10)
	}, simtest.Options{AllowQuiet: true})
}
