package channel

import (
	"testing"
)

// FuzzParseSet checks that ParseSet never panics and that accepted inputs
// round-trip through String.
func FuzzParseSet(f *testing.F) {
	for _, seed := range []string{"{}", "{1,2,3}", "1,2", "{ 5 , 64 }", "{-1}", "{a}", "", "{999999}"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSet(text)
		if err != nil {
			return // rejected inputs just must not panic
		}
		round, err := ParseSet(s.String())
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", s.String(), err)
		}
		if !round.Equal(s) {
			t.Fatalf("round trip changed set: %v -> %v", s, round)
		}
	})
}

// FuzzSetOps checks algebra invariants on arbitrary bit patterns.
func FuzzSetOps(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(0xff), uint64(0xf0))
	f.Add(^uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, am, bm uint64) {
		var a, b Set
		for c := 0; c < 64; c++ {
			if am&(1<<c) != 0 {
				a.Add(ID(c))
			}
			if bm&(1<<c) != 0 {
				b.Add(ID(c))
			}
		}
		inter := a.Intersect(b)
		union := a.Union(b)
		if a.Size()+b.Size() != union.Size()+inter.Size() {
			t.Fatal("inclusion-exclusion violated")
		}
		if !a.Minus(b).Union(inter).Equal(a) {
			t.Fatal("partition identity violated")
		}
		if a.Intersects(b) != !inter.IsEmpty() {
			t.Fatal("Intersects inconsistent with Intersect")
		}
	})
}
