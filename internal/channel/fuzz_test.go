package channel

import (
	"testing"

	"m2hew/internal/rng"
)

// FuzzParseSet checks that ParseSet never panics and that accepted inputs
// round-trip through String.
func FuzzParseSet(f *testing.F) {
	for _, seed := range []string{"{}", "{1,2,3}", "1,2", "{ 5 , 64 }", "{-1}", "{a}", "", "{999999}"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSet(text)
		if err != nil {
			return // rejected inputs just must not panic
		}
		round, err := ParseSet(s.String())
		if err != nil {
			t.Fatalf("canonical form %q rejected: %v", s.String(), err)
		}
		if !round.Equal(s) {
			t.Fatalf("round trip changed set: %v -> %v", s, round)
		}
	})
}

// FuzzSetOps checks algebra invariants on arbitrary bit patterns.
func FuzzSetOps(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(0xff), uint64(0xf0))
	f.Add(^uint64(0), uint64(1))
	f.Fuzz(func(t *testing.T, am, bm uint64) {
		var a, b Set
		for c := 0; c < 64; c++ {
			if am&(1<<c) != 0 {
				a.Add(ID(c))
			}
			if bm&(1<<c) != 0 {
				b.Add(ID(c))
			}
		}
		inter := a.Intersect(b)
		union := a.Union(b)
		if a.Size()+b.Size() != union.Size()+inter.Size() {
			t.Fatal("inclusion-exclusion violated")
		}
		if !a.Minus(b).Union(inter).Equal(a) {
			t.Fatal("partition identity violated")
		}
		if a.Intersects(b) != !inter.IsEmpty() {
			t.Fatal("Intersects inconsistent with Intersect")
		}
	})
}

// padded returns a set equal to s whose backing words carry extra trailing
// zero words — the representations Remove, growWords capacity reuse and the
// min-length *Into operations produce naturally (see the Set trailing-word
// invariant). pad selects how many zero words to append.
func padded(s Set, pad int) Set {
	words := make([]uint64, len(s.words)+pad)
	copy(words, s.words)
	return Set{words: words}
}

// mustEqualSets fails when two sets that must be equal are not, under every
// equality the API offers.
func mustEqualSets(t *testing.T, label string, a, b Set) {
	t.Helper()
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatalf("%s: results differ: %v vs %v", label, a, b)
	}
}

// FuzzSetPaddedEquivalence pins the trailing-word invariant across the
// whole Set API and the raw-word kernels: a padded twin (same set, longer
// backing array ending in zero words) must be indistinguishable from the
// canonical representation under every predicate, every operation, every
// derived value, and every rng draw.
func FuzzSetPaddedEquivalence(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint8(1), uint8(0))
	f.Add(uint64(0xff), uint64(0xf0), uint64(1), uint8(2), uint8(1))
	f.Add(^uint64(0), uint64(1), ^uint64(0), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, am, bm, wm uint64, padA, padB uint8) {
		var a, b, w Set
		for c := 0; c < 64; c++ {
			if am&(1<<c) != 0 {
				a.Add(ID(c))
			}
			if bm&(1<<c) != 0 {
				b.Add(ID(c))
			}
			if wm&(1<<c) != 0 {
				w.Add(ID(c))
			}
		}
		pa := padded(a, int(padA%4)+1)
		pb := padded(b, int(padB%4))

		// Predicates.
		for c := ID(0); c < 130; c++ {
			if a.Contains(c) != pa.Contains(c) {
				t.Fatalf("Contains(%d) diverges under padding", c)
			}
		}
		if a.Size() != pa.Size() || a.IsEmpty() != pa.IsEmpty() {
			t.Fatal("Size/IsEmpty diverge under padding")
		}
		if !a.Equal(pa) || !pa.Equal(a) {
			t.Fatal("Equal rejects a padded twin")
		}
		if a.Equal(b) != pa.Equal(pb) {
			t.Fatal("Equal diverges under padding")
		}
		if a.SubsetOf(b) != pa.SubsetOf(pb) || a.SubsetOf(b) != pa.SubsetOf(b) || a.SubsetOf(b) != a.SubsetOf(pb) {
			t.Fatal("SubsetOf diverges under padding")
		}
		if a.Intersects(b) != pa.Intersects(pb) {
			t.Fatal("Intersects diverges under padding")
		}
		if a.IntersectionSubsetOf(b, w) != pa.IntersectionSubsetOf(pb, w) ||
			a.IntersectionSubsetOf(b, w) != pa.IntersectionSubsetOf(pb, padded(w, 2)) {
			t.Fatal("IntersectionSubsetOf diverges under padding")
		}

		// Operations: results must be the same set (their representations may
		// legitimately differ in length).
		mustEqualSets(t, "Intersect", a.Intersect(b), pa.Intersect(pb))
		mustEqualSets(t, "Union", a.Union(b), pa.Union(pb))
		mustEqualSets(t, "Minus", a.Minus(b), pa.Minus(pb))
		mustEqualSets(t, "Clone", a.Clone(), pa.Clone())
		mustEqualSets(t, "IntersectInto", a.IntersectInto(b, Set{}), pa.IntersectInto(pb, Set{}))
		mustEqualSets(t, "UnionInto", a.UnionInto(b, Set{}), pa.UnionInto(pb, Set{}))
		mustEqualSets(t, "CopyInto", a.CopyInto(Set{}), pa.CopyInto(Set{}))

		// Derived values.
		if a.String() != pa.String() {
			t.Fatalf("String diverges under padding: %q vs %q", a, pa)
		}
		ids, pids := a.IDs(), pa.IDs()
		if len(ids) != len(pids) {
			t.Fatal("IDs diverges under padding")
		}
		for i := range ids {
			if ids[i] != pids[i] {
				t.Fatal("IDs diverges under padding")
			}
		}
		m1, ok1 := a.Max()
		m2, ok2 := pa.Max()
		if m1 != m2 || ok1 != ok2 {
			t.Fatal("Max diverges under padding")
		}

		// Rng draws: Pick must consume identically and return the same
		// channel for the same seed.
		if !a.IsEmpty() {
			c1, err1 := a.Pick(rng.New(am ^ bm ^ 0x9e3779b9))
			c2, err2 := pa.Pick(rng.New(am ^ bm ^ 0x9e3779b9))
			if c1 != c2 || (err1 == nil) != (err2 == nil) {
				t.Fatal("Pick diverges under padding")
			}
		}

		// Raw-word kernels (words.go) see the padding directly.
		if OverlapCount(a.Words(), b.Words()) != OverlapCount(pa.Words(), pb.Words()) {
			t.Fatal("OverlapCount diverges under padding")
		}
		c1, f1 := OverlapResolve(a.Words(), b.Words())
		c2, f2 := OverlapResolve(pa.Words(), pb.Words())
		if c1 != c2 || f1 != f2 {
			t.Fatal("OverlapResolve diverges under padding")
		}
		mustEqualSets(t, "OverlapInto",
			Set{words: OverlapInto(nil, a.Words(), b.Words())},
			Set{words: OverlapInto(nil, pa.Words(), pb.Words())})
		mustEqualSets(t, "OrInto",
			Set{words: OrInto(append([]uint64{}, a.Words()...), b.Words())},
			Set{words: OrInto(append([]uint64{}, pa.Words()...), pb.Words())})
	})
}
