// Package channel models wireless channels and channel sets for M²HeW
// networks.
//
// A channel is a small non-negative integer index into the universal channel
// set of a scenario (the collective set of all channels any radio in the
// network can operate over). The central type is Set, a dense bitset: the
// available channel sets A(u) of the paper, link spans span(u,v), and message
// payloads are all Sets. The representation is compact (one word per 64
// channels), supports the algebra the discovery algorithms need (membership,
// intersection, uniform random pick), and is cheap to copy into simulated
// messages.
package channel

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"m2hew/internal/rng"
)

// ID identifies a channel as an index into the universal channel set.
type ID int

// Set is a set of channel IDs backed by a bitset. The zero value is the
// empty set, ready to use.
//
// Trailing-word invariant: a Set's backing words may end in any number of
// zero words, so two representations of the same set can have different
// lengths — Remove leaves the cleared word in place, growWords reuses
// spare capacity, and the *Into operations size results by operand length,
// not content. Every operation, and every raw-word kernel in words.go,
// must treat a missing word and a zero word identically; the fuzz suite
// pins padded and canonical twins to equal behaviour across the whole API.
type Set struct {
	words []uint64
}

// NewSet returns a set containing the given channels.
func NewSet(channels ...ID) Set {
	var s Set
	for _, c := range channels {
		s.Add(c)
	}
	return s
}

// Range returns the set {0, 1, ..., n-1}, the canonical universal set of
// size n. It returns an empty set for n <= 0.
func Range(n int) Set {
	var s Set
	for c := 0; c < n; c++ {
		s.Add(ID(c))
	}
	return s
}

// Add inserts channel c. Negative IDs are rejected with a panic because they
// indicate a construction bug, never a data condition.
//
//nd:hotpath
func (s *Set) Add(c ID) {
	if c < 0 {
		panic(fmt.Sprintf("channel: Add(%d): negative channel id", c))
	}
	w := int(c) / 64
	if w >= len(s.words) {
		s.words = growWords(s.words, w+1)
	}
	s.words[w] |= 1 << (uint(c) % 64)
}

// growWords extends words to length n (n > len(words)), reusing capacity when
// available and growing once — never one element per append — otherwise. The
// extension is always zeroed: reused capacity may hold stale words from a
// previous, larger use of the same backing array.
func growWords(words []uint64, n int) []uint64 {
	if cap(words) >= n {
		ext := words[:n]
		for i := len(words); i < n; i++ {
			ext[i] = 0
		}
		return ext
	}
	grown := make([]uint64, n)
	copy(grown, words)
	return grown
}

// Remove deletes channel c if present.
func (s *Set) Remove(c ID) {
	if c < 0 {
		return
	}
	w := int(c) / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(c) % 64)
	}
}

// Contains reports whether channel c is in the set.
//
//nd:hotpath
func (s Set) Contains(c ID) bool {
	if c < 0 {
		return false
	}
	w := int(c) / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(c)%64)) != 0
}

// Size returns |s|.
func (s Set) Size() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no channels.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s. Sets share no storage afterwards,
// which matters because simulated messages carry channel sets across node
// boundaries.
func (s Set) Clone() Set {
	if len(s.words) == 0 {
		return Set{}
	}
	words := make([]uint64, len(s.words))
	copy(words, s.words)
	return Set{words: words}
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	if n == 0 {
		return Set{}
	}
	words := make([]uint64, n)
	for i := 0; i < n; i++ {
		words[i] = s.words[i] & t.words[i]
	}
	return Set{words: words}
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	if len(long) == 0 {
		return Set{}
	}
	words := make([]uint64, len(long))
	copy(words, long)
	for i := range short {
		words[i] |= short[i]
	}
	return Set{words: words}
}

// Minus returns s \ t as a new set.
func (s Set) Minus(t Set) Set {
	if len(s.words) == 0 {
		return Set{}
	}
	words := make([]uint64, len(s.words))
	copy(words, s.words)
	for i := range words {
		if i < len(t.words) {
			words[i] &^= t.words[i]
		}
	}
	return Set{words: words}
}

// Equal reports whether s and t contain exactly the same channels.
func (s Set) Equal(t Set) bool {
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for i := len(short); i < len(long); i++ {
		if long[i] != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every channel of s is in t.
//
//nd:hotpath
func (s Set) SubsetOf(t Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// IntersectionSubsetOf reports whether s ∩ t ⊆ w without materializing the
// intersection. It lets receive paths detect that an arriving payload adds
// nothing to already-recorded state without allocating per message.
//
//nd:hotpath
func (s Set) IntersectionSubsetOf(t, w Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var ww uint64
		if i < len(w.words) {
			ww = w.words[i]
		}
		if s.words[i]&t.words[i]&^ww != 0 {
			return false
		}
	}
	return true
}

// IntersectInto returns s ∩ t, storing the result in dst's backing array —
// an in-place Intersect for receive paths that must not allocate at steady
// state. The backing array is grown once if too small; dst may alias s or t
// (every word is written exactly once, element-wise). Use as with append:
//
//	buf = a.IntersectInto(b, buf)
//
//nd:hotpath
func (s Set) IntersectInto(t, dst Set) Set {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	words := dst.words
	if cap(words) < n {
		words = make([]uint64, n)
	}
	words = words[:n]
	for i := 0; i < n; i++ {
		words[i] = s.words[i] & t.words[i]
	}
	return Set{words: words}
}

// UnionInto returns s ∪ t, storing the result in dst's backing array (grown
// once if too small). dst may alias s or t. Use as with append:
//
//	buf = a.UnionInto(b, buf)
//
//nd:hotpath
func (s Set) UnionInto(t, dst Set) Set {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	words := dst.words
	if cap(words) < n {
		words = make([]uint64, n)
	}
	words = words[:n]
	for i := range words {
		var sw, tw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if i < len(t.words) {
			tw = t.words[i]
		}
		words[i] = sw | tw
	}
	return Set{words: words}
}

// CopyInto returns a copy of s stored in dst's backing array (grown once if
// too small) — Clone without the per-call allocation. Use as with append:
//
//	buf = s.CopyInto(buf)
//
//nd:hotpath
func (s Set) CopyInto(dst Set) Set {
	words := dst.words
	if cap(words) < len(s.words) {
		words = make([]uint64, len(s.words))
	}
	words = words[:len(s.words)]
	copy(words, s.words)
	return Set{words: words}
}

// Intersects reports whether s ∩ t is non-empty without allocating.
//
//nd:hotpath
func (s Set) Intersects(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// IDs returns the channels in ascending order.
func (s Set) IDs() []ID {
	ids := make([]ID, 0, s.Size())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			ids = append(ids, ID(wi*64+b))
			w &= w - 1
		}
	}
	return ids
}

// Max returns the largest channel ID in the set and true, or 0 and false if
// the set is empty.
func (s Set) Max() (ID, bool) {
	for wi := len(s.words) - 1; wi >= 0; wi-- {
		if w := s.words[wi]; w != 0 {
			return ID(wi*64 + 63 - bits.LeadingZeros64(w)), true
		}
	}
	return 0, false
}

// Pick returns a channel selected uniformly at random from the set, exactly
// the "channel selected uniformly at random from A(u)" step of every
// algorithm in the paper. It returns an error if the set is empty.
//
//nd:hotpath
func (s Set) Pick(r *rng.Source) (ID, error) {
	n := s.Size()
	if n == 0 {
		return 0, fmt.Errorf("channel: pick from empty set: %w", rng.ErrEmptyRange)
	}
	target := r.IntN(n)
	for wi, w := range s.words {
		c := bits.OnesCount64(w)
		if target >= c {
			target -= c
			continue
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if target == 0 {
				return ID(wi*64 + b), nil
			}
			target--
			w &= w - 1
		}
	}
	// Unreachable: Size() counted the bits we just walked.
	panic("channel: Pick walked past set end")
}

// String renders the set as "{0,3,7}".
func (s Set) String() string {
	ids := s.IDs()
	parts := make([]string, len(ids))
	for i, c := range ids {
		parts[i] = strconv.Itoa(int(c))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// MaxParsedID caps channel IDs accepted by ParseSet. Real spectra have at
// most a few hundred channels; the cap keeps a hostile input ("{1e18}")
// from forcing a gigantic bitset allocation.
const MaxParsedID = 1 << 20

// ParseSet parses the String format, accepting "{1,2,3}", "1,2,3" and "{}".
// Channel IDs must lie in [0, MaxParsedID].
func ParseSet(text string) (Set, error) {
	text = strings.TrimSpace(text)
	text = strings.TrimPrefix(text, "{")
	text = strings.TrimSuffix(text, "}")
	var s Set
	if text == "" {
		return s, nil
	}
	for _, part := range strings.Split(text, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return Set{}, fmt.Errorf("channel: parse set element %q: %w", part, err)
		}
		if v < 0 {
			return Set{}, fmt.Errorf("channel: parse set: negative channel %d", v)
		}
		if v > MaxParsedID {
			return Set{}, fmt.Errorf("channel: parse set: channel %d exceeds limit %d", v, MaxParsedID)
		}
		s.Add(ID(v))
	}
	return s, nil
}

// RandomSubset returns a uniformly random subset of universe with exactly k
// elements. It returns an error if k is negative or exceeds the universe
// size.
func RandomSubset(universe Set, k int, r *rng.Source) (Set, error) {
	ids := universe.IDs()
	if k < 0 || k > len(ids) {
		return Set{}, fmt.Errorf("channel: subset of size %d from universe of %d", k, len(ids))
	}
	r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	// No sort: NewSet is order-insensitive, so ordering the chosen IDs first
	// was dead work (and drew no randomness, so dropping it leaves the rng
	// stream — and therefore every seeded network — unchanged).
	return NewSet(ids[:k]...), nil
}
