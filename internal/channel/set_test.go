package channel

import (
	"testing"
	"testing/quick"

	"m2hew/internal/rng"
)

// setFromMask builds a Set from the low 16 bits of a mask; used by
// property tests to cover arbitrary small sets.
func setFromMask(mask uint16) Set {
	var s Set
	for c := 0; c < 16; c++ {
		if mask&(1<<c) != 0 {
			s.Add(ID(c))
		}
	}
	return s
}

func TestZeroValueIsEmpty(t *testing.T) {
	var s Set
	if !s.IsEmpty() {
		t.Fatal("zero Set is not empty")
	}
	if s.Size() != 0 {
		t.Fatalf("zero Set size %d", s.Size())
	}
	if s.Contains(0) {
		t.Fatal("zero Set contains 0")
	}
}

func TestAddContainsRemove(t *testing.T) {
	var s Set
	s.Add(3)
	s.Add(64) // second word
	s.Add(130)
	for _, c := range []ID{3, 64, 130} {
		if !s.Contains(c) {
			t.Errorf("missing channel %d", c)
		}
	}
	for _, c := range []ID{0, 2, 63, 65, 129} {
		if s.Contains(c) {
			t.Errorf("spurious channel %d", c)
		}
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Fatal("Remove(64) did not remove")
	}
	if s.Size() != 2 {
		t.Fatalf("size %d after removal, want 2", s.Size())
	}
	// Removing absent / out-of-range channels is a no-op.
	s.Remove(9999)
	s.Remove(-1)
	if s.Size() != 2 {
		t.Fatal("no-op removals changed the set")
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var s Set
	s.Add(-1)
}

func TestAddIdempotent(t *testing.T) {
	var s Set
	s.Add(5)
	s.Add(5)
	if s.Size() != 1 {
		t.Fatalf("size %d after double add, want 1", s.Size())
	}
}

func TestRange(t *testing.T) {
	s := Range(70)
	if s.Size() != 70 {
		t.Fatalf("Range(70) size %d", s.Size())
	}
	for c := 0; c < 70; c++ {
		if !s.Contains(ID(c)) {
			t.Fatalf("Range(70) missing %d", c)
		}
	}
	if s.Contains(70) {
		t.Fatal("Range(70) contains 70")
	}
	if !Range(0).IsEmpty() || !Range(-3).IsEmpty() {
		t.Fatal("Range of non-positive size not empty")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewSet(1, 2, 3)
	c := s.Clone()
	c.Add(9)
	if s.Contains(9) {
		t.Fatal("mutating clone affected original")
	}
	s.Remove(1)
	if !c.Contains(1) {
		t.Fatal("mutating original affected clone")
	}
}

func TestIntersect(t *testing.T) {
	a := NewSet(1, 2, 3, 64)
	b := NewSet(2, 3, 4, 64, 128)
	got := a.Intersect(b)
	want := NewSet(2, 3, 64)
	if !got.Equal(want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	if !a.Intersect(Set{}).IsEmpty() {
		t.Fatal("intersect with empty not empty")
	}
}

func TestUnion(t *testing.T) {
	a := NewSet(1, 2)
	b := NewSet(2, 200)
	got := a.Union(b)
	want := NewSet(1, 2, 200)
	if !got.Equal(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
}

func TestMinus(t *testing.T) {
	a := NewSet(1, 2, 3, 100)
	b := NewSet(2, 100, 300)
	got := a.Minus(b)
	want := NewSet(1, 3)
	if !got.Equal(want) {
		t.Fatalf("minus = %v, want %v", got, want)
	}
}

func TestEqualDifferentWordLengths(t *testing.T) {
	a := NewSet(1)
	b := NewSet(1, 200)
	b.Remove(200) // b now has trailing zero words
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("sets with different word lengths but same content not Equal")
	}
}

func TestSubsetOf(t *testing.T) {
	a := NewSet(1, 2)
	b := NewSet(1, 2, 3)
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b not detected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊆ a wrongly detected")
	}
	var empty Set
	if !empty.SubsetOf(a) || !empty.SubsetOf(empty) {
		t.Fatal("empty set subset relation wrong")
	}
	big := NewSet(500)
	if big.SubsetOf(a) {
		t.Fatal("out-of-range channel claimed subset")
	}
}

func TestIntersectionSubsetOf(t *testing.T) {
	s := NewSet(1, 2, 65)
	// s∩t = {2,65} ⊆ w.
	if !s.IntersectionSubsetOf(NewSet(2, 3, 65), NewSet(2, 65, 100)) {
		t.Fatal("s∩t ⊆ w not detected")
	}
	// s∩t = {2,65}, w misses the second-word element 65.
	if s.IntersectionSubsetOf(NewSet(2, 3, 65), NewSet(2)) {
		t.Fatal("missing second-word element not detected")
	}
	// Empty intersection is a subset of anything, including the empty set.
	if !s.IntersectionSubsetOf(NewSet(7), Set{}) {
		t.Fatal("empty intersection not subset of empty set")
	}
	// w with trailing words beyond s and t changes nothing.
	wide := NewSet(2, 65, 500)
	if !s.IntersectionSubsetOf(NewSet(2, 65), wide) {
		t.Fatal("wider w rejected")
	}
	// t wider than s: only the common prefix can intersect.
	if !NewSet(1).IntersectionSubsetOf(NewSet(1, 500), NewSet(1)) {
		t.Fatal("t wider than s mishandled")
	}
}

// Property: IntersectionSubsetOf agrees with the materialized
// Intersect + SubsetOf it replaces on the delivery hot path.
func TestIntersectionSubsetOfMatchesMaterialized(t *testing.T) {
	err := quick.Check(func(sm, tm, wm uint16) bool {
		s, u, w := setFromMask(sm), setFromMask(tm), setFromMask(wm)
		return s.IntersectionSubsetOf(u, w) == s.Intersect(u).SubsetOf(w)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntersects(t *testing.T) {
	a := NewSet(1, 65)
	b := NewSet(65)
	if !a.Intersects(b) {
		t.Fatal("overlap not detected")
	}
	if a.Intersects(NewSet(2, 64)) {
		t.Fatal("false overlap")
	}
	if a.Intersects(Set{}) {
		t.Fatal("overlap with empty set")
	}
}

func TestIDsSorted(t *testing.T) {
	s := NewSet(130, 3, 64, 7)
	ids := s.IDs()
	want := []ID{3, 7, 64, 130}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestMax(t *testing.T) {
	if _, ok := (Set{}).Max(); ok {
		t.Fatal("Max of empty set reported ok")
	}
	s := NewSet(3, 130, 7)
	m, ok := s.Max()
	if !ok || m != 130 {
		t.Fatalf("Max = %d,%v want 130,true", m, ok)
	}
}

func TestPickEmptyErrors(t *testing.T) {
	var s Set
	if _, err := s.Pick(rng.New(1)); err == nil {
		t.Fatal("Pick from empty set returned nil error")
	}
}

func TestPickMembership(t *testing.T) {
	s := NewSet(5, 66, 190)
	r := rng.New(2)
	for i := 0; i < 1000; i++ {
		c, err := s.Pick(r)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Contains(c) {
			t.Fatalf("picked %d not in set", c)
		}
	}
}

func TestPickUniform(t *testing.T) {
	s := NewSet(0, 63, 64, 127, 128)
	r := rng.New(3)
	counts := make(map[ID]int)
	const draws = 100000
	for i := 0; i < draws; i++ {
		c, err := s.Pick(r)
		if err != nil {
			t.Fatal(err)
		}
		counts[c]++
	}
	want := draws / s.Size()
	for c, n := range counts {
		if n < want*9/10 || n > want*11/10 {
			t.Errorf("channel %d drawn %d times, want ~%d", c, n, want)
		}
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	cases := []Set{
		{},
		NewSet(0),
		NewSet(1, 2, 3),
		NewSet(5, 64, 190),
	}
	for _, s := range cases {
		parsed, err := ParseSet(s.String())
		if err != nil {
			t.Fatalf("parse %q: %v", s.String(), err)
		}
		if !parsed.Equal(s) {
			t.Fatalf("round trip %v -> %v", s, parsed)
		}
	}
}

func TestParseSetErrors(t *testing.T) {
	for _, bad := range []string{"{a}", "{1,-2}", "1,b"} {
		if _, err := ParseSet(bad); err == nil {
			t.Errorf("ParseSet(%q) returned nil error", bad)
		}
	}
}

func TestParseSetForms(t *testing.T) {
	for _, good := range []string{"{}", "", "1,2", "{ 1 , 2 }"} {
		if _, err := ParseSet(good); err != nil {
			t.Errorf("ParseSet(%q): %v", good, err)
		}
	}
}

func TestRandomSubset(t *testing.T) {
	r := rng.New(7)
	u := Range(10)
	sub, err := RandomSubset(u, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 4 {
		t.Fatalf("subset size %d, want 4", sub.Size())
	}
	if !sub.SubsetOf(u) {
		t.Fatal("subset not within universe")
	}
	if _, err := RandomSubset(u, 11, r); err == nil {
		t.Fatal("oversized subset request returned nil error")
	}
	if _, err := RandomSubset(u, -1, r); err == nil {
		t.Fatal("negative subset request returned nil error")
	}
	empty, err := RandomSubset(u, 0, r)
	if err != nil || !empty.IsEmpty() {
		t.Fatalf("RandomSubset(_,0) = %v, %v", empty, err)
	}
}

func TestRandomSubsetCoversUniverse(t *testing.T) {
	// Over many draws of a size-1 subset from a 5-element universe, every
	// element must appear.
	r := rng.New(11)
	u := NewSet(2, 4, 6, 8, 10)
	seen := make(map[ID]bool)
	for i := 0; i < 500; i++ {
		sub, err := RandomSubset(u, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		seen[sub.IDs()[0]] = true
	}
	if len(seen) != 5 {
		t.Fatalf("only %d/5 elements ever sampled", len(seen))
	}
}

// Property: De Morgan-ish identities on arbitrary 16-bit masks.
func TestAlgebraProperties(t *testing.T) {
	err := quick.Check(func(am, bm uint16) bool {
		a, b := setFromMask(am), setFromMask(bm)
		inter := a.Intersect(b)
		union := a.Union(b)
		// |A| + |B| = |A∪B| + |A∩B|
		if a.Size()+b.Size() != union.Size()+inter.Size() {
			return false
		}
		// A∩B ⊆ A ⊆ A∪B
		if !inter.SubsetOf(a) || !a.SubsetOf(union) {
			return false
		}
		// (A\B) ∩ B = ∅
		if a.Minus(b).Intersects(b) {
			return false
		}
		// (A\B) ∪ (A∩B) = A
		if !a.Minus(b).Union(inter).Equal(a) {
			return false
		}
		// Intersects consistent with Intersect
		if a.Intersects(b) != !inter.IsEmpty() {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommutativity(t *testing.T) {
	err := quick.Check(func(am, bm uint16) bool {
		a, b := setFromMask(am), setFromMask(bm)
		return a.Intersect(b).Equal(b.Intersect(a)) &&
			a.Union(b).Equal(b.Union(a))
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPick(b *testing.B) {
	s := Range(40)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Pick(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntersect(b *testing.B) {
	x := Range(128)
	y := NewSet(1, 60, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Intersect(y)
	}
}

func TestParseSetRejectsHugeIDs(t *testing.T) {
	if _, err := ParseSet("{9223372036854775807}"); err == nil {
		t.Fatal("absurd channel id accepted")
	}
	if _, err := ParseSet("{1048576}"); err != nil {
		t.Fatalf("boundary id rejected: %v", err)
	}
	if _, err := ParseSet("{1048577}"); err == nil {
		t.Fatal("id beyond cap accepted")
	}
}
