package channel

import "math/bits"

// Raw word-level bitset kernels.
//
// The simulation engines' channel-major slot resolver works directly on
// []uint64 bitset words — candidate masks packed by the topology layer and
// per-slot transmitter masks built by the engine — instead of Set values,
// so the inner loop is a handful of word operations per listener. Bit i of
// word w represents element 64*w + i (the same layout Set uses).
//
// Every kernel tolerates operands of different lengths by treating missing
// words as zero: this is the Set trailing-word invariant (see Set), so a
// padded and a canonical representation of the same bitset are always
// interchangeable as kernel operands.

// OverlapCount returns the population count of a ∧ b. Words past the
// shorter operand intersect to zero and contribute nothing.
//
//nd:hotpath
func OverlapCount(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	count := 0
	for i := 0; i < n; i++ {
		count += bits.OnesCount64(a[i] & b[i])
	}
	return count
}

// OverlapResolve scans a ∧ b and returns (count, first): count is the
// number of common bits saturated at 2, and first is the bit index of the
// lowest common bit, or −1 when the intersection is empty. The saturation
// is exactly what slot resolution needs — 0 is silence, 1 is a clear
// reception from bit first, 2 means collision — so the scan stops at the
// second common bit instead of counting the rest.
//
//nd:hotpath
func OverlapResolve(a, b []uint64) (count, first int) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	first = -1
	for i := 0; i < n; i++ {
		w := a[i] & b[i]
		if w == 0 {
			continue
		}
		if first < 0 {
			first = i*64 + bits.TrailingZeros64(w)
			if w&(w-1) == 0 {
				count = 1
				continue // single bit in this word; a later word may collide
			}
		}
		return 2, first
	}
	if first < 0 {
		return 0, -1
	}
	return count, first
}

// OverlapInto writes a ∧ b into dst's backing array (grown once if too
// small) and returns it with length min(len(a), len(b)) — the batched
// candidate-mask intersection used by the lossy slot resolver to prune
// silent listeners before any ordered erasure draws. Use as with append:
//
//	buf = OverlapInto(buf, a, b)
//
//nd:hotpath
func OverlapInto(dst, a, b []uint64) []uint64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = a[i] & b[i]
	}
	return dst
}

// OrInto ORs src into dst, growing dst (zero-extended) once when src is
// longer, and returns dst — the word-OR accumulation pass that merges
// partial transmitter masks (per-tile masks in the sharded engine inherit
// this). Use as with append:
//
//	mask = OrInto(mask, part)
//
//nd:hotpath
func OrInto(dst, src []uint64) []uint64 {
	if len(src) > len(dst) {
		dst = growWords(dst, len(src))
	}
	for i, w := range src {
		dst[i] |= w
	}
	return dst
}

// SetBit sets bit i (element i) in words. The caller guarantees the slice
// covers the element: i < 64*len(words). The engines size transmitter
// masks to the node-ID range once per run, so the hot path has no bounds
// to re-check beyond the slice's own.
//
//nd:hotpath
func SetBit(words []uint64, i int) {
	words[i>>6] |= 1 << (uint(i) & 63)
}

// Words exposes s's backing words for kernel use. Shared storage — the
// caller must not modify it — and it may carry trailing zero words (see
// the Set trailing-word invariant), which every kernel tolerates.
//
//nd:hotpath
func (s Set) Words() []uint64 { return s.words }
