package channel

import (
	"math/bits"
	"testing"

	"m2hew/internal/rng"
)

// randWords builds a random word slice with occasional trailing zero words,
// exercising the padded-representation tolerance of every kernel.
func randWords(r *rng.Source, maxLen int) []uint64 {
	n := r.IntN(maxLen + 1)
	w := make([]uint64, n)
	for i := range w {
		if r.Bernoulli(0.3) {
			continue // keep some words zero so overlaps are sparse
		}
		w[i] = r.Uint64()
	}
	if n > 0 && r.Bernoulli(0.4) {
		w[n-1] = 0 // explicit trailing zero word
	}
	return w
}

// naiveOverlap is the scalar reference: the sorted bit indexes of a ∧ b.
func naiveOverlap(a, b []uint64) []int {
	var out []int
	for i := 0; i < len(a) && i < len(b); i++ {
		w := a[i] & b[i]
		for w != 0 {
			out = append(out, i*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

func TestOverlapKernelsMatchNaive(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 2000; trial++ {
		a, b := randWords(r, 6), randWords(r, 6)
		want := naiveOverlap(a, b)

		if got := OverlapCount(a, b); got != len(want) {
			t.Fatalf("OverlapCount(%x,%x) = %d, want %d", a, b, got, len(want))
		}

		count, first := OverlapResolve(a, b)
		wantCount := len(want)
		if wantCount > 2 {
			wantCount = 2
		}
		wantFirst := -1
		if len(want) > 0 {
			wantFirst = want[0]
		}
		if count != wantCount || first != wantFirst {
			t.Fatalf("OverlapResolve(%x,%x) = (%d,%d), want (%d,%d)", a, b, count, first, wantCount, wantFirst)
		}

		ovl := OverlapInto(nil, a, b)
		if got := naiveOverlap(ovl, ovl); len(got) != len(want) {
			t.Fatalf("OverlapInto(%x,%x) has %d bits, want %d", a, b, len(got), len(want))
		} else {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("OverlapInto bit %d = %d, want %d", i, got[i], want[i])
				}
			}
		}
	}
}

func TestOverlapKernelsTolerateTrailingZeroWords(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 1000; trial++ {
		a, b := randWords(r, 4), randWords(r, 4)
		// Padded twins: same sets, extra zero words.
		pa := append(append([]uint64{}, a...), 0, 0)
		pb := append(append([]uint64{}, b...), 0)

		if OverlapCount(a, b) != OverlapCount(pa, pb) {
			t.Fatalf("OverlapCount diverges under padding: %x vs %x", a, b)
		}
		c1, f1 := OverlapResolve(a, b)
		c2, f2 := OverlapResolve(pa, pb)
		if c1 != c2 || f1 != f2 {
			t.Fatalf("OverlapResolve diverges under padding: (%d,%d) vs (%d,%d)", c1, f1, c2, f2)
		}
		o1 := naiveOverlap(OverlapInto(nil, a, b), []uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)})
		o2 := naiveOverlap(OverlapInto(nil, pa, pb), []uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)})
		if len(o1) != len(o2) {
			t.Fatalf("OverlapInto diverges under padding")
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("OverlapInto diverges under padding at bit %d", i)
			}
		}
	}
}

func TestOrIntoAndSetBit(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 1000; trial++ {
		a, b := randWords(r, 5), randWords(r, 5)
		got := OrInto(append([]uint64{}, a...), b)
		n := len(a)
		if len(b) > n {
			n = len(b)
		}
		if len(got) != n {
			t.Fatalf("OrInto length %d, want %d", len(got), n)
		}
		for i := 0; i < n; i++ {
			var aw, bw uint64
			if i < len(a) {
				aw = a[i]
			}
			if i < len(b) {
				bw = b[i]
			}
			if got[i] != aw|bw {
				t.Fatalf("OrInto word %d = %x, want %x", i, got[i], aw|bw)
			}
		}
	}

	w := make([]uint64, 3)
	for _, i := range []int{0, 63, 64, 130, 191} {
		SetBit(w, i)
		if w[i>>6]&(1<<(uint(i)&63)) == 0 {
			t.Fatalf("SetBit(%d) did not set the bit", i)
		}
	}
}

// TestOrIntoReusesCapacity pins the grow-once contract: a dst with spare
// capacity is extended in place and the extension is zeroed before OR-ing.
func TestOrIntoReusesCapacity(t *testing.T) {
	backing := []uint64{1, 0xdead, 0xbeef}
	dst := backing[:1]
	src := []uint64{2, 4, 8}
	got := OrInto(dst, src)
	if &got[0] != &backing[0] {
		t.Fatal("OrInto reallocated despite spare capacity")
	}
	want := []uint64{3, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("word %d = %x, want %x (stale capacity leaked)", i, got[i], want[i])
		}
	}
}

// TestKernelsZeroAlloc guards the hot-path contract: no kernel allocates
// once destination buffers have grown to the working set.
func TestKernelsZeroAlloc(t *testing.T) {
	a := []uint64{0xf0f0, 0x1, 0, 0x8}
	b := []uint64{0x0ff0, 0x3}
	buf := make([]uint64, 4)
	dst := make([]uint64, 4)
	var sinkInt int
	allocs := testing.AllocsPerRun(100, func() {
		sinkInt += OverlapCount(a, b)
		c, f := OverlapResolve(a, b)
		sinkInt += c + f
		buf = OverlapInto(buf, a, b)
		dst = OrInto(dst, b)
		SetBit(dst, 100)
	})
	if allocs != 0 {
		t.Errorf("kernels allocated %.0f objects per run", allocs)
	}
	_ = sinkInt
}

func TestSetWordsSharedStorage(t *testing.T) {
	s := NewSet(1, 64, 130)
	w := s.Words()
	if len(w) != 3 {
		t.Fatalf("Words length %d, want 3", len(w))
	}
	if w[0] != 1<<1 || w[1] != 1 || w[2] != 1<<2 {
		t.Fatalf("Words content %x unexpected", w)
	}
	s.Add(2)
	if w[0] != 1<<1|1<<2 {
		t.Fatal("Words is not shared storage")
	}
	s.Remove(130)
	if got := s.Words(); len(got) != 3 || got[2] != 0 {
		t.Fatal("Remove should leave a trailing zero word in place")
	}
}

// BenchmarkOverlapResolve measures the slot resolver's innermost kernel at
// the 200-node scenario's mask width (4 words).
func BenchmarkOverlapResolve(b *testing.B) {
	r := rng.New(5)
	const words = 4
	mask := make([]uint64, words)
	tx := make([]uint64, words)
	for i := range mask {
		mask[i] = r.Uint64() & r.Uint64() & r.Uint64() // sparse candidates
		tx[i] = r.Uint64() & r.Uint64()
	}
	sink := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count, first := OverlapResolve(mask, tx)
		sink += count + first
	}
	_ = sink
}

// BenchmarkOrInto measures the word-OR accumulation pass that builds
// per-channel transmitter masks.
func BenchmarkOrInto(b *testing.B) {
	r := rng.New(6)
	const words = 4
	dst := make([]uint64, words)
	src := make([]uint64, words)
	for i := range src {
		src[i] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OrInto(dst, src)
	}
}
