package clock

import (
	"math"
	"testing"
	"testing/quick"

	"m2hew/internal/rng"
)

func TestConstantRate(t *testing.T) {
	c := Constant(0.05)
	for k := 0; k < 10; k++ {
		if c.Rate(k) != 0.05 {
			t.Fatalf("Constant rate at %d = %v", k, c.Rate(k))
		}
	}
	if c.Bound() != 0.05 {
		t.Fatalf("bound %v", c.Bound())
	}
	if Constant(-0.1).Bound() != 0.1 {
		t.Fatal("negative constant bound not absolute")
	}
}

func TestIdeal(t *testing.T) {
	if Ideal.Rate(3) != 0 || Ideal.Bound() != 0 {
		t.Fatal("Ideal clock drifts")
	}
}

func TestRandomWalkBounded(t *testing.T) {
	w, err := NewRandomWalk(0.1, 0.03, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10000; k++ {
		r := w.Rate(k)
		if math.Abs(r) > 0.1+1e-12 {
			t.Fatalf("walk rate %v at slot %d exceeds bound", r, k)
		}
	}
}

func TestRandomWalkDeterministicPerInstance(t *testing.T) {
	w, err := NewRandomWalk(0.1, 0.03, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Query out of order; memoization must make repeated queries stable.
	r9 := w.Rate(9)
	r3 := w.Rate(3)
	if w.Rate(9) != r9 || w.Rate(3) != r3 {
		t.Fatal("RandomWalk.Rate not stable across calls")
	}
}

func TestRandomWalkValidation(t *testing.T) {
	if _, err := NewRandomWalk(-0.1, 0.01, rng.New(1)); err == nil {
		t.Fatal("negative delta accepted")
	}
	if _, err := NewRandomWalk(1.0, 0.01, rng.New(1)); err == nil {
		t.Fatal("delta = 1 accepted")
	}
	if _, err := NewRandomWalk(0.1, -0.01, rng.New(1)); err == nil {
		t.Fatal("negative step accepted")
	}
}

func TestSinusoidal(t *testing.T) {
	s, err := NewSinusoidal(0.1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Rate(0); math.Abs(got) > 1e-15 {
		t.Fatalf("sin phase 0 rate %v", got)
	}
	if got := s.Rate(2); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("quarter-period rate %v, want 0.1", got)
	}
	for k := 0; k < 100; k++ {
		if math.Abs(s.Rate(k)) > 0.1+1e-12 {
			t.Fatalf("rate %v exceeds amplitude", s.Rate(k))
		}
	}
	if _, err := NewSinusoidal(0.1, 0, 0); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := NewSinusoidal(2, 8, 0); err == nil {
		t.Fatal("amplitude 2 accepted")
	}
}

func TestAlternating(t *testing.T) {
	a, err := NewAlternating(0.1, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	wantPos := []bool{true, true, true, false, false, false, true}
	for k, pos := range wantPos {
		got := a.Rate(k)
		if pos && got != 0.1 || !pos && got != -0.1 {
			t.Fatalf("alternating rate at %d = %v", k, got)
		}
	}
	inv, err := NewAlternating(0.1, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Rate(0) != -0.1 {
		t.Fatal("inverted alternation does not start negative")
	}
	if _, err := NewAlternating(0.1, 0, false); err == nil {
		t.Fatal("zero hold accepted")
	}
}

func TestTimelineValidation(t *testing.T) {
	if _, err := NewTimeline(0, 0, 3, Ideal); err == nil {
		t.Fatal("zero frame length accepted")
	}
	if _, err := NewTimeline(0, -1, 3, Ideal); err == nil {
		t.Fatal("negative frame length accepted")
	}
	if _, err := NewTimeline(0, 1, 0, Ideal); err == nil {
		t.Fatal("zero slots accepted")
	}
	tl, err := NewTimeline(5, 1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Start() != 5 || tl.FrameLen() != 1 || tl.SlotsPerFrame() != 3 {
		t.Fatal("accessors wrong")
	}
}

func TestTimelineIdealClock(t *testing.T) {
	tl, err := NewTimeline(10, 3, 3, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal clock: slot i starts at 10 + i.
	for i := 0; i < 20; i++ {
		if got := tl.SlotStart(i); math.Abs(got-float64(10+i)) > 1e-12 {
			t.Fatalf("slot %d starts at %v, want %d", i, got, 10+i)
		}
	}
	s, e := tl.FrameInterval(2)
	if math.Abs(s-16) > 1e-12 || math.Abs(e-19) > 1e-12 {
		t.Fatalf("frame 2 = [%v,%v), want [16,19)", s, e)
	}
	s, e = tl.FrameSlotInterval(1, 2)
	if math.Abs(s-15) > 1e-12 || math.Abs(e-16) > 1e-12 {
		t.Fatalf("frame 1 slot 2 = [%v,%v), want [15,16)", s, e)
	}
}

func TestTimelinePositiveDriftShortensFrames(t *testing.T) {
	tl, err := NewTimeline(0, 7, 3, Constant(0.1))
	if err != nil {
		t.Fatal(err)
	}
	s, e := tl.FrameInterval(0)
	want := 7 / 1.1
	if math.Abs((e-s)-want) > 1e-12 {
		t.Fatalf("frame length %v, want %v", e-s, want)
	}
}

func TestTimelineEq10Envelope(t *testing.T) {
	// Paper Eq. (10): frame real length in [L/(1+δ), L/(1−δ)] for any drift
	// process bounded by δ.
	const (
		delta = MaxAsyncDrift
		l     = 2.5
	)
	procs := map[string]DriftProcess{
		"ideal": Ideal,
		"pos":   Constant(delta),
		"neg":   Constant(-delta),
	}
	if w, err := NewRandomWalk(delta, 0.05, rng.New(3)); err == nil {
		procs["walk"] = w
	} else {
		t.Fatal(err)
	}
	if s, err := NewSinusoidal(delta, 13, 0.4); err == nil {
		procs["sine"] = s
	} else {
		t.Fatal(err)
	}
	if a, err := NewAlternating(delta, 2, false); err == nil {
		procs["alt"] = a
	} else {
		t.Fatal(err)
	}
	lo, hi := l/(1+delta), l/(1-delta)
	for name, p := range procs {
		tl, err := NewTimeline(0, l, 3, p)
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 200; f++ {
			s, e := tl.FrameInterval(f)
			if e-s < lo-1e-9 || e-s > hi+1e-9 {
				t.Fatalf("%s: frame %d real length %v outside [%v, %v]", name, f, e-s, lo, hi)
			}
		}
	}
}

func TestTimelineMonotone(t *testing.T) {
	w, err := NewRandomWalk(MaxAsyncDrift, 0.1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTimeline(-4, 1.5, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	prev := tl.SlotStart(0)
	for i := 1; i < 3000; i++ {
		cur := tl.SlotStart(i)
		if cur <= prev {
			t.Fatalf("slot starts not strictly increasing at %d: %v <= %v", i, cur, prev)
		}
		prev = cur
	}
}

func TestSlotIntervalContiguous(t *testing.T) {
	w, err := NewRandomWalk(0.1, 0.02, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTimeline(0, 1, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_, e := tl.SlotInterval(i)
		s, _ := tl.SlotInterval(i + 1)
		if e != s {
			t.Fatalf("gap between slot %d end %v and slot %d start %v", i, e, i+1, s)
		}
	}
}

func TestFullFramesBy(t *testing.T) {
	tl, err := NewTimeline(0, 2, 3, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rt   float64
		want int
	}{
		{-1, 0},
		{0, 0},
		{1.9, 0},
		{2, 1},
		{3.5, 1},
		{4, 2},
		{20, 10},
	}
	for _, tt := range cases {
		if got := tl.FullFramesBy(tt.rt); got != tt.want {
			t.Errorf("FullFramesBy(%v) = %d, want %d", tt.rt, got, tt.want)
		}
	}
}

func TestFirstFullFrameAfter(t *testing.T) {
	tl, err := NewTimeline(10, 2, 3, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rt   float64
		want int
	}{
		{0, 0},
		{10, 0},
		{10.1, 1},
		{12, 1},
		{12.5, 2},
	}
	for _, tt := range cases {
		if got := tl.FirstFullFrameAfter(tt.rt); got != tt.want {
			t.Errorf("FirstFullFrameAfter(%v) = %d, want %d", tt.rt, got, tt.want)
		}
	}
}

func TestNegativeIndicesPanic(t *testing.T) {
	tl, err := NewTimeline(0, 1, 3, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"SlotStart":     func() { tl.SlotStart(-1) },
		"FrameInterval": func() { tl.FrameInterval(-1) },
		"FrameSlot":     func() { tl.FrameSlotInterval(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with bad index did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: for arbitrary bounded drift processes, the cumulative local time
// after n slots maps to a real duration within the paper's Eq. (1) envelope.
func TestDriftEnvelopeProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, deltaRaw uint8, nRaw uint8) bool {
		delta := float64(deltaRaw%40) / 100 // δ ∈ [0, 0.39]
		n := int(nRaw%60) + 1
		w, err := NewRandomWalk(delta, delta/2+0.001, rng.New(seed))
		if err != nil {
			return false
		}
		tl, err := NewTimeline(0, 3, 3, w)
		if err != nil {
			return false
		}
		local := float64(n) // n slots of local length 1 each (L=3, 3 slots)
		real := tl.SlotStart(n) - tl.Start()
		lo := local / (1 + delta)
		hi := local / (1 - delta)
		return real >= lo-1e-9 && real <= hi+1e-9
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTimelineSlotStart(b *testing.B) {
	w, err := NewRandomWalk(0.1, 0.01, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	tl, err := NewTimeline(0, 1, 3, w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tl.SlotStart(i % 100000)
	}
}

func TestLocalRealConversions(t *testing.T) {
	w, err := NewRandomWalk(MaxAsyncDrift, 0.04, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := NewTimeline(5, 3, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	// Local zero maps to the start.
	if got := tl.LocalToReal(0); math.Abs(got-5) > 1e-12 {
		t.Fatalf("LocalToReal(0) = %v, want 5", got)
	}
	// Round trips across a range of instants.
	for i := 0; i < 500; i++ {
		local := float64(i) * 0.37
		rt := tl.LocalToReal(local)
		back := tl.RealToLocal(rt)
		if math.Abs(back-local) > 1e-6 {
			t.Fatalf("round trip %v -> %v -> %v", local, rt, back)
		}
	}
	// Slot boundaries agree with SlotStart.
	for i := 0; i < 50; i++ {
		local := float64(i) * 1.0 // slot length = 1 local unit
		if got, want := tl.LocalToReal(local), tl.SlotStart(i); math.Abs(got-want) > 1e-9 {
			t.Fatalf("LocalToReal(slot %d) = %v, want %v", i, got, want)
		}
	}
	// Eq. (1): the local/real envelope holds through the conversion.
	for _, local := range []float64{1, 10, 100} {
		real := tl.LocalToReal(local) - tl.Start()
		if real < local/(1+MaxAsyncDrift)-1e-9 || real > local/(1-MaxAsyncDrift)+1e-9 {
			t.Fatalf("local %v mapped to real %v outside drift envelope", local, real)
		}
	}
}

func TestConversionPanics(t *testing.T) {
	tl, err := NewTimeline(2, 3, 3, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"negative local": func() { tl.LocalToReal(-1) },
		"before start":   func() { tl.RealToLocal(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
