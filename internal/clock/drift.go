// Package clock models the local clocks of asynchronous nodes.
//
// The paper's asynchronous system model (Section II) assumes every node has
// a clock whose drift rate may change over time in magnitude and sign but is
// always bounded by δ: for all t and Δt ≥ 0,
//
//	(1−δ)·Δt ≤ C(t+Δt) − C(t) ≤ (1+δ)·Δt.
//
// Algorithm 4 additionally assumes δ ≤ 1/7 (Assumption 1). Clocks of
// different nodes may have arbitrary offsets.
//
// This package provides drift-rate processes (constant, random walk,
// sinusoidal, adversarial alternation) and a Timeline that converts a node's
// local frame/slot schedule into real-time intervals under a drift process.
// The Timeline is the only bridge between the "local clock" world a protocol
// lives in and the "real time" world the asynchronous engine simulates; the
// protocol itself never sees real time.
package clock

import (
	"fmt"
	"math"

	"m2hew/internal/rng"
)

// MaxAsyncDrift is the drift-rate bound of the paper's Assumption 1, the
// largest δ for which Algorithm 4's guarantees hold.
const MaxAsyncDrift = 1.0 / 7

// DriftProcess yields the drift rate of a clock during successive local
// slots. Rates are interpreted as seconds of local-clock progress gained per
// real second: a clock with rate d advances by (1+d)·Δt local seconds over
// Δt real seconds. Implementations must keep |Rate(k)| strictly below 1 and
// should keep it within the δ they were constructed with.
type DriftProcess interface {
	// Rate returns the drift rate in effect during local slot k (k >= 0).
	// Successive calls with the same k must return the same value.
	Rate(k int) float64
	// Bound returns the δ the process promises never to exceed.
	Bound() float64
}

// Constant is a drift process with a fixed rate.
type Constant float64

// Rate implements DriftProcess.
func (c Constant) Rate(int) float64 { return float64(c) }

// Bound implements DriftProcess.
func (c Constant) Bound() float64 { return math.Abs(float64(c)) }

// Ideal is the zero-drift process of a perfect clock.
var Ideal DriftProcess = Constant(0)

// RandomWalk is a drift process whose rate performs a bounded random walk:
// each slot the rate moves by a uniform step in [-Step, Step] and is
// reflected into [-Delta, Delta]. The walk is materialized lazily and
// memoized so Rate is deterministic per instance.
type RandomWalk struct {
	Delta float64 // drift bound δ
	Step  float64 // maximum per-slot rate change

	rng   *rng.Source
	rates []float64
}

// NewRandomWalk returns a random-walk drift process bounded by delta, with
// per-slot steps up to step, driven by r. It returns an error if the bound
// or step is invalid.
func NewRandomWalk(delta, step float64, r *rng.Source) (*RandomWalk, error) {
	if err := validateBound(delta); err != nil {
		return nil, err
	}
	if step < 0 {
		return nil, fmt.Errorf("clock: random walk step %v is negative", step)
	}
	return &RandomWalk{Delta: delta, Step: step, rng: r}, nil
}

// Rate implements DriftProcess.
func (w *RandomWalk) Rate(k int) float64 {
	for len(w.rates) <= k {
		prev := 0.0
		if len(w.rates) > 0 {
			prev = w.rates[len(w.rates)-1]
		}
		next := prev + w.rng.UniformFloat64(-w.Step, w.Step)
		// Reflect into [-Delta, Delta].
		if next > w.Delta {
			next = 2*w.Delta - next
		}
		if next < -w.Delta {
			next = -2*w.Delta - next
		}
		// A pathological step larger than 4·Delta could still escape after
		// one reflection; clamp as a backstop.
		next = math.Max(-w.Delta, math.Min(w.Delta, next))
		w.rates = append(w.rates, next)
	}
	return w.rates[k]
}

// Bound implements DriftProcess.
func (w *RandomWalk) Bound() float64 { return w.Delta }

// ReserveSlots pre-sizes the rate memo for at least n slots so the lazy walk
// in Rate appends into existing capacity instead of growing by doubling.
// Already-materialized rates are preserved, so the process still returns the
// same value for every previously-queried slot. Engines that know their frame
// budget discover this method via a type assertion.
func (w *RandomWalk) ReserveSlots(n int) {
	if cap(w.rates) >= n {
		return
	}
	rates := make([]float64, len(w.rates), n)
	copy(rates, w.rates)
	w.rates = rates
}

// AdoptRateBuf hands the walk a recycled backing array for its rate memo.
// Materialized rates (if any) are copied over, so the process keeps
// returning the same value for every previously-queried slot; a buffer no
// larger than the current capacity is ignored. Engine scratch that pools
// rate buffers across trials discovers this method via a type assertion.
func (w *RandomWalk) AdoptRateBuf(buf []float64) {
	if cap(buf) <= cap(w.rates) {
		return
	}
	w.rates = append(buf[:0], w.rates...)
}

// ReleaseRateBuf detaches and returns the rate memo's backing array so a
// pool can hand it to the next trial's walk. The walk must not be queried
// afterwards: the memo is gone but the rng stream has advanced, so a later
// Rate call would materialize different values. Engines call this at the
// end of a run under the same caller contract that permits timeline
// recycling (no reads of a prior run's drifts after the next run starts).
func (w *RandomWalk) ReleaseRateBuf() []float64 {
	buf := w.rates
	w.rates = nil
	return buf
}

// Sinusoidal is a drift process oscillating as δ·sin(2πk/Period + Phase),
// modeling slow periodic drift such as thermal cycling.
type Sinusoidal struct {
	Delta  float64 // amplitude (= drift bound)
	Period float64 // period in slots
	Phase  float64 // phase offset in radians
}

// NewSinusoidal returns a sinusoidal drift process. It returns an error if
// the amplitude is out of range or the period is not positive.
func NewSinusoidal(delta, period, phase float64) (*Sinusoidal, error) {
	if err := validateBound(delta); err != nil {
		return nil, err
	}
	if period <= 0 {
		return nil, fmt.Errorf("clock: sinusoidal period %v must be positive", period)
	}
	return &Sinusoidal{Delta: delta, Period: period, Phase: phase}, nil
}

// Rate implements DriftProcess.
func (s *Sinusoidal) Rate(k int) float64 {
	return s.Delta * math.Sin(2*math.Pi*float64(k)/s.Period+s.Phase)
}

// Bound implements DriftProcess.
func (s *Sinusoidal) Bound() float64 { return s.Delta }

// Alternating is an adversarial drift process that holds +δ for Hold slots,
// then -δ for Hold slots, and so on. It maximizes relative slippage between
// two clocks given opposite phases and is the stress case for the frame
// alignment lemmas.
type Alternating struct {
	Delta  float64 // drift bound δ
	Hold   int     // slots per half-cycle
	Invert bool    // start with -δ instead of +δ
}

// NewAlternating returns an alternating drift process. It returns an error
// if the bound is invalid or hold is not positive.
func NewAlternating(delta float64, hold int, invert bool) (*Alternating, error) {
	if err := validateBound(delta); err != nil {
		return nil, err
	}
	if hold <= 0 {
		return nil, fmt.Errorf("clock: alternating hold %d must be positive", hold)
	}
	return &Alternating{Delta: delta, Hold: hold, Invert: invert}, nil
}

// Rate implements DriftProcess.
func (a *Alternating) Rate(k int) float64 {
	phase := (k / a.Hold) % 2
	positive := phase == 0
	if a.Invert {
		positive = !positive
	}
	if positive {
		return a.Delta
	}
	return -a.Delta
}

// Bound implements DriftProcess.
func (a *Alternating) Bound() float64 { return a.Delta }

func validateBound(delta float64) error {
	if math.IsNaN(delta) || delta < 0 || delta >= 1 {
		return fmt.Errorf("clock: drift bound %v outside [0, 1)", delta)
	}
	return nil
}
