package clock

import (
	"testing"

	"m2hew/internal/rng"
)

// TestTimelineResetMatchesNew checks the pooling seam: a timeline reset
// over old backing storage must be indistinguishable from a freshly
// constructed one — same boundaries, same frame intervals — even when the
// previous life used different parameters and had grown far out.
func TestTimelineResetMatchesNew(t *testing.T) {
	w1, err := NewRandomWalk(0.1, 0.03, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewTimeline(0.5, 3, 3, w1)
	if err != nil {
		t.Fatal(err)
	}
	// Previous life: different params, deeply extended.
	old, err := NewTimeline(7, 2, 2, Constant(0.05))
	if err != nil {
		t.Fatal(err)
	}
	old.SlotStart(500)
	w2, err := NewRandomWalk(0.1, 0.03, rng.New(5)) // same stream as w1
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Reset(0.5, 3, 3, w2); err != nil {
		t.Fatal(err)
	}
	if old.Start() != fresh.Start() || old.FrameLen() != fresh.FrameLen() || old.SlotsPerFrame() != fresh.SlotsPerFrame() {
		t.Fatal("Reset did not adopt the new parameters")
	}
	for i := 0; i <= 300; i++ {
		if got, want := old.SlotStart(i), fresh.SlotStart(i); got != want {
			t.Fatalf("SlotStart(%d) = %v after Reset, fresh %v", i, got, want)
		}
	}
	for f := 0; f <= 90; f++ {
		gs, ge := old.FrameInterval(f)
		ws, we := fresh.FrameInterval(f)
		if gs != ws || ge != we {
			t.Fatalf("FrameInterval(%d) = (%v,%v) after Reset, fresh (%v,%v)", f, gs, ge, ws, we)
		}
	}
}

func TestTimelineResetValidates(t *testing.T) {
	tl, err := NewTimeline(0, 3, 3, Ideal)
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Reset(0, -1, 3, Ideal); err == nil {
		t.Fatal("negative frame length accepted by Reset")
	}
	if err := tl.Reset(0, 3, 0, Ideal); err == nil {
		t.Fatal("zero slots per frame accepted by Reset")
	}
	if err := tl.Reset(0, 3, 3, Constant(1.5)); err == nil {
		t.Fatal("out-of-range drift bound accepted by Reset")
	}
	if err := tl.Reset(0, 3, 3, nil); err != nil {
		t.Fatalf("nil drift must default to Ideal as in NewTimeline: %v", err)
	}
}

// TestTimelineReserve checks that capacity pre-sizing changes no values and
// makes in-budget queries allocation-free.
func TestTimelineReserve(t *testing.T) {
	w, err := NewRandomWalk(0.1, 0.03, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewTimeline(1, 3, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewRandomWalk(0.1, 0.03, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	reserved, err := NewTimeline(1, 3, 3, w2)
	if err != nil {
		t.Fatal(err)
	}
	reserved.Reserve(200)
	reserved.SlotStart(50) // partially extend before comparing
	for i := 0; i <= 250; i++ {
		if got, want := reserved.SlotStart(i), plain.SlotStart(i); got != want {
			t.Fatalf("SlotStart(%d) = %v with Reserve, plain %v", i, got, want)
		}
	}
	w2.ReserveSlots(400)
	if allocs := testing.AllocsPerRun(50, func() {
		reserved.Reserve(200)      // no-op: capacity already there
		reserved.SlotInterval(190) // in budget
	}); allocs != 0 {
		t.Fatalf("in-budget timeline queries allocate %.0f/op, want 0", allocs)
	}
}

// TestRandomWalkReserveSlots checks that pre-sizing the rate cache
// preserves already-materialized values and the rest of the stream.
func TestRandomWalkReserveSlots(t *testing.T) {
	plain, err := NewRandomWalk(0.1, 0.03, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	reserved, err := NewRandomWalk(0.1, 0.03, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	r10 := reserved.Rate(10) // materialize a prefix first
	reserved.ReserveSlots(300)
	if reserved.Rate(10) != r10 {
		t.Fatal("ReserveSlots changed a materialized rate")
	}
	for k := 0; k <= 350; k++ {
		if got, want := reserved.Rate(k), plain.Rate(k); got != want {
			t.Fatalf("Rate(%d) = %v with ReserveSlots, plain %v", k, got, want)
		}
	}
	reserved.ReserveSlots(100) // shrinking request is a no-op
	if reserved.Rate(350) != plain.Rate(350) {
		t.Fatal("second ReserveSlots perturbed the stream")
	}
}

// TestRandomWalkRateBufPool checks the adopt/release seam the async scratch
// uses to recycle rate-memo backing arrays across trials: adoption moves
// capacity but never values, a too-small buffer is ignored, and release
// detaches the array for the next walk.
func TestRandomWalkRateBufPool(t *testing.T) {
	plain, err := NewRandomWalk(0.1, 0.03, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := NewRandomWalk(0.1, 0.03, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	r5 := pooled.Rate(5) // materialize a prefix before adopting
	pooled.AdoptRateBuf(make([]float64, 0, 400))
	if pooled.Rate(5) != r5 {
		t.Fatal("AdoptRateBuf changed a materialized rate")
	}
	if cap(pooled.rates) < 400 {
		t.Fatalf("adopted capacity %d, want >= 400", cap(pooled.rates))
	}
	for k := 0; k <= 350; k++ {
		if got, want := pooled.Rate(k), plain.Rate(k); got != want {
			t.Fatalf("Rate(%d) = %v after AdoptRateBuf, plain %v", k, got, want)
		}
	}
	pooled.AdoptRateBuf(make([]float64, 0, 10)) // smaller than current: ignored
	if cap(pooled.rates) < 400 {
		t.Fatal("smaller AdoptRateBuf shrank the memo")
	}
	buf := pooled.ReleaseRateBuf()
	if cap(buf) < 400 {
		t.Fatalf("released capacity %d, want >= 400", cap(buf))
	}
	if again := pooled.ReleaseRateBuf(); cap(again) != 0 {
		t.Fatal("second ReleaseRateBuf returned a live buffer")
	}
	// A fresh walk adopting the released buffer produces its own stream
	// allocation-free for in-capacity queries.
	next, err := NewRandomWalk(0.1, 0.03, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	next.AdoptRateBuf(buf)
	if allocs := testing.AllocsPerRun(20, func() { next.Rate(399) }); allocs != 0 {
		t.Fatalf("in-capacity Rate after adoption allocates %.0f/op, want 0", allocs)
	}
	want, err := NewRandomWalk(0.1, 0.03, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 399; k++ {
		if next.Rate(k) != want.Rate(k) {
			t.Fatalf("Rate(%d) differs for walk seeded from recycled buffer", k)
		}
	}
}
