package clock

import (
	"fmt"
	"math"
	"sort"
)

// Timeline converts the local frame/slot schedule of one node into real-time
// instants under a drift process.
//
// A node divides its local time into frames of local length L, each split
// into SlotsPerFrame equal local slots (the paper uses 3, Fig. 1). The drift
// rate is held constant within each local slot — the paper allows the rate
// to change arbitrarily over time subject to |rate| ≤ δ, and per-slot
// piecewise-constant rates realize every envelope the analysis permits: the
// real duration of a slot with rate d is (L/k)/(1+d), so frame lengths cover
// exactly the interval [L/(1+δ), L/(1−δ)] of the paper's Eq. (10).
type Timeline struct {
	start         float64 // real time at which local time 0 occurs
	frameLen      float64 // L: local frame length
	slotsPerFrame int
	drift         DriftProcess

	// bounds[i] is the real time of the start of local slot i; grown lazily.
	bounds []float64
}

// NewTimeline returns a Timeline for a node whose clock starts running at
// real time start (local time zero), with local frame length frameLen split
// into slotsPerFrame slots, under the given drift process.
func NewTimeline(start, frameLen float64, slotsPerFrame int, drift DriftProcess) (*Timeline, error) {
	if frameLen <= 0 {
		return nil, fmt.Errorf("clock: frame length %v must be positive", frameLen)
	}
	if slotsPerFrame <= 0 {
		return nil, fmt.Errorf("clock: %d slots per frame must be positive", slotsPerFrame)
	}
	if drift == nil {
		drift = Ideal
	}
	if err := validateBound(drift.Bound()); err != nil {
		return nil, err
	}
	return &Timeline{
		start:         start,
		frameLen:      frameLen,
		slotsPerFrame: slotsPerFrame,
		drift:         drift,
		bounds:        []float64{start},
	}, nil
}

// Reset re-initializes the timeline in place with new parameters, keeping the
// boundary cache's backing array — NewTimeline without the per-trial
// allocations, for engine scratch that recycles timelines across trials. The
// same validation as NewTimeline applies.
func (t *Timeline) Reset(start, frameLen float64, slotsPerFrame int, drift DriftProcess) error {
	if frameLen <= 0 {
		return fmt.Errorf("clock: frame length %v must be positive", frameLen)
	}
	if slotsPerFrame <= 0 {
		return fmt.Errorf("clock: %d slots per frame must be positive", slotsPerFrame)
	}
	if drift == nil {
		drift = Ideal
	}
	if err := validateBound(drift.Bound()); err != nil {
		return err
	}
	t.start = start
	t.frameLen = frameLen
	t.slotsPerFrame = slotsPerFrame
	t.drift = drift
	if cap(t.bounds) == 0 {
		t.bounds = []float64{start}
	} else {
		t.bounds = t.bounds[:1]
		t.bounds[0] = start
	}
	return nil
}

// Reserve pre-sizes the boundary cache for at least slots slot boundaries, so
// subsequent lazy extension appends into existing capacity instead of growing
// the array by doubling. Engines that know their frame budget call this once
// per run.
func (t *Timeline) Reserve(slots int) {
	need := slots + 1 // bounds holds slot starts plus the final end boundary
	if cap(t.bounds) >= need {
		return
	}
	bounds := make([]float64, len(t.bounds), need)
	copy(bounds, t.bounds)
	t.bounds = bounds
}

// Start returns the real time at which the timeline begins.
func (t *Timeline) Start() float64 { return t.start }

// FrameLen returns the local frame length L.
func (t *Timeline) FrameLen() float64 { return t.frameLen }

// SlotsPerFrame returns the number of slots per frame.
func (t *Timeline) SlotsPerFrame() int { return t.slotsPerFrame }

// extendTo grows the cached boundaries so bounds[i] exists.
func (t *Timeline) extendTo(i int) {
	localSlot := t.frameLen / float64(t.slotsPerFrame)
	for len(t.bounds) <= i {
		k := len(t.bounds) - 1 // slot index whose real duration we add
		rate := t.drift.Rate(k)
		if rate <= -1 {
			// A clock running backwards or stopped violates the model; the
			// drift process constructor bounds prevent this, so reaching it
			// is a programming error.
			panic(fmt.Sprintf("clock: drift rate %v <= -1 at slot %d", rate, k))
		}
		realDur := localSlot / (1 + rate)
		t.bounds = append(t.bounds, t.bounds[k]+realDur)
	}
}

// SlotStart returns the real time at which local slot i begins (slot 0 is
// the first slot).
func (t *Timeline) SlotStart(i int) float64 {
	if i < 0 {
		panic(fmt.Sprintf("clock: SlotStart(%d): negative slot", i))
	}
	t.extendTo(i)
	return t.bounds[i]
}

// SlotInterval returns the real-time half-open interval [start, end) of
// local slot i.
func (t *Timeline) SlotInterval(i int) (start, end float64) {
	return t.SlotStart(i), t.SlotStart(i + 1)
}

// FrameInterval returns the real-time interval [start, end) of local frame f.
func (t *Timeline) FrameInterval(f int) (start, end float64) {
	if f < 0 {
		panic(fmt.Sprintf("clock: FrameInterval(%d): negative frame", f))
	}
	return t.SlotStart(f * t.slotsPerFrame), t.SlotStart((f + 1) * t.slotsPerFrame)
}

// FrameSlotInterval returns the real-time interval of slot s (0-based)
// within frame f.
func (t *Timeline) FrameSlotInterval(f, s int) (start, end float64) {
	if s < 0 || s >= t.slotsPerFrame {
		panic(fmt.Sprintf("clock: slot %d outside frame of %d slots", s, t.slotsPerFrame))
	}
	i := f*t.slotsPerFrame + s
	return t.SlotStart(i), t.SlotStart(i + 1)
}

// FullFramesBy returns the number of complete frames that have ended at or
// before real time rt. It returns 0 for times before the first frame ends.
func (t *Timeline) FullFramesBy(rt float64) int {
	if rt < t.start {
		return 0
	}
	// Ensure the cache extends past rt. Each frame takes at least
	// frameLen/(1+δ) real time, so the frame count is finite; grow
	// geometrically until the last cached boundary passes rt.
	for t.bounds[len(t.bounds)-1] <= rt {
		t.extendTo(len(t.bounds)*2 - 1)
	}
	// Find the largest slot boundary <= rt.
	idx := sort.SearchFloat64s(t.bounds, rt)
	if idx == len(t.bounds) || t.bounds[idx] > rt {
		idx--
	}
	return idx / t.slotsPerFrame
}

// FirstFullFrameAfter returns the index of the first frame whose start time
// is at or after real time rt — the "first full frame after T" of Lemma 7.
func (t *Timeline) FirstFullFrameAfter(rt float64) int {
	if rt <= t.start {
		return 0
	}
	// Slot boundaries accumulate floating-point error; treat starts within a
	// relative epsilon of rt as "at or after" so exact-boundary queries are
	// stable.
	eps := 1e-9 * math.Max(1, math.Abs(rt))
	f := 0
	for {
		start, _ := t.FrameInterval(f)
		if start >= rt-eps {
			return f
		}
		f++
	}
}

// LocalToReal converts a local-clock instant (seconds since the node's
// local zero) to real time, interpolating linearly within the slot the
// instant falls in (drift is constant per slot by construction). Negative
// local times are rejected with a panic — the model has no pre-start time.
func (t *Timeline) LocalToReal(local float64) float64 {
	if local < 0 {
		panic(fmt.Sprintf("clock: LocalToReal(%v): negative local time", local))
	}
	localSlot := t.frameLen / float64(t.slotsPerFrame)
	idx := int(local / localSlot)
	start := t.SlotStart(idx)
	end := t.SlotStart(idx + 1)
	frac := (local - float64(idx)*localSlot) / localSlot
	return start + frac*(end-start)
}

// RealToLocal converts a real-time instant at or after the node's start to
// its local clock reading. It is the inverse of LocalToReal up to floating
// point.
func (t *Timeline) RealToLocal(rt float64) float64 {
	if rt < t.start {
		panic(fmt.Sprintf("clock: RealToLocal(%v): before node start %v", rt, t.start))
	}
	// Find the slot containing rt (grow the cache past rt first).
	for t.bounds[len(t.bounds)-1] <= rt {
		t.extendTo(len(t.bounds)*2 - 1)
	}
	idx := sort.SearchFloat64s(t.bounds, rt)
	if idx == len(t.bounds) || t.bounds[idx] > rt {
		idx--
	}
	start, end := t.bounds[idx], t.bounds[idx+1]
	localSlot := t.frameLen / float64(t.slotsPerFrame)
	frac := 0.0
	if end > start {
		frac = (rt - start) / (end - start)
	}
	return (float64(idx) + frac) * localSlot
}
