package core

import (
	"fmt"
	"sort"

	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// The acknowledgment extension for asymmetric communication graphs.
//
// On a symmetric graph, u hearing v tells u everything about the {u,v}
// link. On an asymmetric graph it does not: u may hear v while v never
// hears u, and — worse — even when both directions work, u has no way to
// know that its own transmissions arrive anywhere, because the paper's
// messages carry only A(v). The dissertation the paper defers to ([23])
// handles asymmetry by enriching the message; this wrapper implements the
// natural version of that idea: every outgoing message piggybacks the
// sender's currently discovered in-neighbor list (engines attach it via
// sim.HeardReporter). A receiver that finds its own ID in the list has
// proof its transmissions reach the sender — an acknowledged, usable
// out-link.
//
// The wrapper leaves the transmission schedule untouched, so all running
// time guarantees of the wrapped algorithm carry over to in-neighbor
// discovery; out-link confirmation needs one extra successful reception in
// the reverse... same direction again *after* the first, so confirmation
// time is roughly one more coverage epoch (experiment E19 measures it).

// Acknowledging wraps a synchronous protocol with in-neighbor-list
// piggybacking and out-link confirmation tracking.
type Acknowledging struct {
	self      topology.NodeID
	inner     SyncDiscoverer
	confirmed map[topology.NodeID]bool
}

// NewAcknowledging wraps inner for the node with ID self. The ID is needed
// to recognize acknowledgments; the paper's protocols themselves never use
// it for scheduling.
func NewAcknowledging(self topology.NodeID, inner SyncDiscoverer) (*Acknowledging, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: acknowledging wrapper needs a protocol")
	}
	if self < 0 {
		return nil, fmt.Errorf("core: invalid node id %d", self)
	}
	return &Acknowledging{
		self:      self,
		inner:     inner,
		confirmed: make(map[topology.NodeID]bool),
	}, nil
}

// Step delegates to the wrapped protocol unchanged.
func (p *Acknowledging) Step(localSlot int) radio.Action {
	return p.inner.Step(localSlot)
}

// Deliver records the message and scans its piggybacked heard-list for an
// acknowledgment of this node's own transmissions.
func (p *Acknowledging) Deliver(msg radio.Message) {
	p.inner.Deliver(msg)
	for _, id := range msg.Heard {
		if id == p.self {
			p.confirmed[msg.From] = true
			break
		}
	}
}

// Neighbors returns the wrapped protocol's discovery output (in-neighbors).
func (p *Acknowledging) Neighbors() *NeighborTable { return p.inner.Neighbors() }

// Heard implements sim.HeardReporter: the in-neighbors discovered so far,
// piggybacked on every outgoing message.
func (p *Acknowledging) Heard() []topology.NodeID {
	return p.inner.Neighbors().Neighbors()
}

// Confirmed returns the nodes known to hear this node (acknowledged
// out-links), in ascending order.
func (p *Acknowledging) Confirmed() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(p.confirmed))
	for id := range p.confirmed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasConfirmed reports whether v is known to hear this node.
func (p *Acknowledging) HasConfirmed(v topology.NodeID) bool { return p.confirmed[v] }
