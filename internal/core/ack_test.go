package core

import (
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

func TestAcknowledgingValidation(t *testing.T) {
	inner, err := NewSyncUniform(channel.NewSet(0), 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAcknowledging(0, nil); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewAcknowledging(-1, inner); err == nil {
		t.Error("negative id accepted")
	}
}

func TestAcknowledgingTracksConfirmations(t *testing.T) {
	inner, err := NewSyncUniform(channel.NewSet(0, 1), 2, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewAcknowledging(7, inner)
	if err != nil {
		t.Fatal(err)
	}
	// A message without a heard-list discovers the sender but confirms
	// nothing.
	p.Deliver(radio.Message{From: 3, Avail: channel.NewSet(0)})
	if !p.Neighbors().Has(3) {
		t.Fatal("inner delivery lost")
	}
	if p.HasConfirmed(3) {
		t.Fatal("confirmation without acknowledgment")
	}
	// A heard-list not containing us confirms nothing.
	p.Deliver(radio.Message{
		From: 3, Avail: channel.NewSet(0),
		Heard: []topology.NodeID{5, 9},
	})
	if p.HasConfirmed(3) {
		t.Fatal("confirmation from a foreign heard-list")
	}
	// A heard-list containing our ID confirms the out-link to the sender.
	p.Deliver(radio.Message{
		From: 3, Avail: channel.NewSet(0),
		Heard: []topology.NodeID{5, 7},
	})
	if !p.HasConfirmed(3) {
		t.Fatal("acknowledgment missed")
	}
	got := p.Confirmed()
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("Confirmed = %v, want [3]", got)
	}
	if p.HasConfirmed(5) {
		t.Fatal("unrelated node confirmed")
	}
}

func TestAcknowledgingHeardMirrorsTable(t *testing.T) {
	inner, err := NewSyncStaged(channel.NewSet(0), 2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewAcknowledging(1, inner)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Heard()) != 0 {
		t.Fatal("fresh wrapper reports heard nodes")
	}
	p.Deliver(radio.Message{From: 4, Avail: channel.NewSet(0)})
	p.Deliver(radio.Message{From: 2, Avail: channel.NewSet(0)})
	heard := p.Heard()
	if len(heard) != 2 || heard[0] != 2 || heard[1] != 4 {
		t.Fatalf("Heard = %v, want [2 4]", heard)
	}
	// Step passes through to the inner schedule.
	a := p.Step(0)
	if err := a.Validate(channel.NewSet(0)); err != nil {
		t.Fatal(err)
	}
}
