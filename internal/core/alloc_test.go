package core

import (
	"testing"

	"m2hew/internal/channel"
)

// TestNeighborTableSteadyStateAllocs pins the dense table's hot path: once
// a neighbor is known and its span is settled, re-recording it — the case
// every redundant delivery hits — must not allocate at all.
func TestNeighborTableSteadyStateAllocs(t *testing.T) {
	var tbl NeighborTable
	a := channel.NewSet(1, 2, 5, 70)
	b := channel.NewSet(2, 5, 70, 80)
	tbl.RecordIntersect(3, a, b) // discovery: allocates the slot
	if allocs := testing.AllocsPerRun(100, func() {
		tbl.RecordIntersect(3, a, b)
	}); allocs != 0 {
		t.Fatalf("re-recording a settled neighbor allocates %.0f/op, want 0", allocs)
	}
	sub := channel.NewSet(2, 5)
	if allocs := testing.AllocsPerRun(100, func() {
		tbl.Record(3, sub)
	}); allocs != 0 {
		t.Fatalf("subset re-record allocates %.0f/op, want 0", allocs)
	}
	// Growth still works after the steady-state loop.
	tbl.RecordIntersect(900, a, b)
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tbl.Len())
	}
}
