package core

import (
	"fmt"
	"m2hew/internal/channel"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
)

// AsyncSlotsPerFrame is the number of slots a node divides each frame into
// (Algorithm 4, Fig. 1). The value 3 is load-bearing: Lemma 4 (a frame
// overlaps at most 3 frames of another node) and Lemma 7 (an aligned pair
// exists among any two consecutive frames) both rest on the 3-way division
// combined with the drift bound δ ≤ 1/7. The slot-ablation experiment (E10)
// simulates other divisions via sim.AsyncConfig.SlotsPerFrame.
const AsyncSlotsPerFrame = 3

// Async is Algorithm 4: neighbor discovery for an asynchronous system with
// bounded clock drift and a known upper bound Δ_est on the maximum node
// degree.
//
// Each node divides its local time into frames of equal local length L,
// each split into three slots. At every frame boundary the node picks a
// uniformly random channel c from A(u); with probability
// min(1/2, |A(u)|/(3·Δ_est)) it transmits its message during each of the
// three slots of the frame, otherwise it listens on c for the entire frame.
// Repeating the message in each slot is what lets a misaligned listener
// catch at least one complete copy: by Lemma 7, among any two consecutive
// frames of transmitter and listener some slot of one lies wholly inside a
// frame of the other.
//
// The protocol is clock-agnostic: the engine owns the node's (drifting)
// clock and asks for one decision per local frame. Nothing here depends on
// real time, which is exactly the paper's requirement that nodes have no
// access to synchronized time.
type Async struct {
	node
	deltaEst      int
	slotsPerFrame int
	p             float64
}

// NewAsync returns an Algorithm 4 instance.
func NewAsync(avail channel.Set, deltaEst int, r *rng.Source) (*Async, error) {
	return NewAsyncSlots(avail, deltaEst, AsyncSlotsPerFrame, r)
}

// NewAsyncSlots returns an Algorithm 4 variant whose frames are divided into
// slotsPerFrame slots, transmitting per frame with probability
// min(1/2, |A(u)|/(slotsPerFrame·Δ_est)). The paper's algorithm is the
// slotsPerFrame = 3 case; other values exist solely for the slot-count
// ablation experiment (E10), which probes why the paper picked 3. The engine
// must be configured with the same sim.AsyncConfig.SlotsPerFrame.
func NewAsyncSlots(avail channel.Set, deltaEst, slotsPerFrame int, r *rng.Source) (*Async, error) {
	if err := validateDeltaEst(deltaEst); err != nil {
		return nil, err
	}
	if slotsPerFrame < 1 {
		return nil, fmt.Errorf("core: %d slots per frame must be positive", slotsPerFrame)
	}
	n, err := newNode(avail, r)
	if err != nil {
		return nil, err
	}
	return &Async{
		node:          n,
		deltaEst:      deltaEst,
		slotsPerFrame: slotsPerFrame,
		p:             TransmitProbAsyncSlots(avail.Size(), deltaEst, slotsPerFrame),
	}, nil
}

// NextFrame returns the node's decision for a frame: the channel to tune to
// and whether to transmit (during each slot) or listen (for the whole
// frame). The frame index is unused — the schedule is memoryless — and
// accepted for interface uniformity.
func (p *Async) NextFrame(int) radio.Action {
	return p.chooseAction(p.p)
}

// Deliver records a clear message received during a listening frame.
func (p *Async) Deliver(msg radio.Message) { p.deliver(msg) }

// Neighbors returns the node's discovery output.
func (p *Async) Neighbors() *NeighborTable { return p.table }

// TransmitProb returns the constant per-frame transmit probability.
func (p *Async) TransmitProb() float64 { return p.p }

// SlotsPerFrame returns the frame division this instance was built for.
func (p *Async) SlotsPerFrame() int { return p.slotsPerFrame }
