package core_test

// Conformance checks for every protocol in the package, via the shared
// testkit. These live in an external test package (core_test) so the
// testkit can import core without a cycle.

import (
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/core"
	"m2hew/internal/rng"
	"m2hew/internal/simtest"
)

func conformanceAvail() channel.Set { return channel.NewSet(0, 2, 5) }

func TestConformanceSyncStaged(t *testing.T) {
	avail := conformanceAvail()
	simtest.CheckSync(t, "SyncStaged", avail, func(r *rng.Source) (core.SyncDiscoverer, error) {
		return core.NewSyncStaged(avail, 8, r)
	}, simtest.Options{})
}

func TestConformanceSyncGrowing(t *testing.T) {
	avail := conformanceAvail()
	simtest.CheckSync(t, "SyncGrowing", avail, func(r *rng.Source) (core.SyncDiscoverer, error) {
		return core.NewSyncGrowing(avail, r)
	}, simtest.Options{})
}

func TestConformanceSyncUniform(t *testing.T) {
	avail := conformanceAvail()
	simtest.CheckSync(t, "SyncUniform", avail, func(r *rng.Source) (core.SyncDiscoverer, error) {
		return core.NewSyncUniform(avail, 8, r)
	}, simtest.Options{})
}

func TestConformanceAsync(t *testing.T) {
	avail := conformanceAvail()
	simtest.CheckAsync(t, "Async", avail, func(r *rng.Source) (core.AsyncDiscoverer, error) {
		return core.NewAsync(avail, 8, r)
	}, simtest.Options{})
}

func TestConformanceAsyncSlots(t *testing.T) {
	avail := conformanceAvail()
	for _, k := range []int{1, 2, 4, 6} {
		simtest.CheckAsync(t, "AsyncSlots", avail, func(r *rng.Source) (core.AsyncDiscoverer, error) {
			return core.NewAsyncSlots(avail, 8, k, r)
		}, simtest.Options{Steps: 800})
	}
}

func TestConformanceSyncTerminating(t *testing.T) {
	avail := conformanceAvail()
	simtest.CheckSync(t, "SyncTerminating", avail, func(r *rng.Source) (core.SyncDiscoverer, error) {
		inner, err := core.NewSyncUniform(avail, 8, r)
		if err != nil {
			return nil, err
		}
		return core.NewSyncTerminating(inner, 1000000)
	}, simtest.Options{AllowQuiet: true})
}

func TestConformanceAsyncTerminating(t *testing.T) {
	avail := conformanceAvail()
	simtest.CheckAsync(t, "AsyncTerminating", avail, func(r *rng.Source) (core.AsyncDiscoverer, error) {
		inner, err := core.NewAsync(avail, 8, r)
		if err != nil {
			return nil, err
		}
		return core.NewAsyncTerminating(inner, 1000000)
	}, simtest.Options{AllowQuiet: true})
}
