// Package core implements the paper's randomized neighbor-discovery
// algorithms for M²HeW networks.
//
// Four protocols are provided, one per algorithm in the paper:
//
//   - SyncStaged (Algorithm 1): synchronous, identical start times,
//     knowledge of an upper bound Δ_est on the maximum node degree. Time is
//     divided into stages of ⌈log₂ Δ_est⌉ slots; in slot i of a stage a node
//     transmits with probability min(1/2, |A(u)|/2^i) on a channel drawn
//     uniformly from A(u).
//   - SyncGrowing (Algorithm 2): synchronous, identical start times, no
//     degree knowledge. Stages of Algorithm 1 are executed with estimates
//     d = 2, 3, 4, … in turn.
//   - SyncUniform (Algorithm 3): synchronous, variable start times,
//     knowledge of Δ_est. Every slot uses the same transmit probability
//     min(1/2, |A(u)|/Δ_est), which makes per-slot coverage probabilities
//     time-invariant and therefore start-time independent.
//   - Async (Algorithm 4): asynchronous with bounded clock drift (δ ≤ 1/7),
//     knowledge of Δ_est. Local time is divided into frames of three slots;
//     per frame a node transmits with probability min(1/2, |A(u)|/(3·Δ_est)),
//     repeating its message in each slot, or listens for the whole frame.
//
// All protocols produce the paper's output: the set of discovered neighbors
// v together with A(v) ∩ A(u), the channels shared with each.
//
// A protocol instance belongs to one node and is driven by a simulation
// engine (package sim): the engine asks for the node's next action and
// delivers clear messages back. Protocols are deterministic functions of
// their RNG stream, so a run is reproducible from its seed.
package core

import (
	"fmt"
	"math/bits"
	"sort"

	"m2hew/internal/channel"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// NeighborTable is the output of neighbor discovery at one node: for every
// discovered neighbor, the channels shared with it (A(v) ∩ A(u)).
//
// Node IDs are dense indexes (topology guarantees 0..N-1), so up to
// denseNeighborBudget the table is a slice indexed by NodeID plus a
// discovered-ID list: Record and the engines' delivery hot path touch one
// slot by index, re-recording a known neighbor allocates nothing, and no
// map iteration order can leak into results. Past the budget — large-n
// runs, where n tables × n-slot backing would be O(n²) memory across the
// network while each node discovers only its ~degree neighbors — the table
// switches to a compact sparse backing: entries in discovery order plus a
// NodeID→entry index map used for point lookups only (never iterated, so
// no map order can leak into results either). The mode is an internal
// representation choice, decided at the first write from the larger of the
// Reserve hint and the first recorded ID; every observable behaves
// identically in both.
type NeighborTable struct {
	common []channel.Set // dense: indexed by NodeID; meaningful iff has[v]
	has    []bool
	ids    []topology.NodeID // discovered IDs in discovery order
	// Sparse backing: sets[i] is the common set of ids[i]; idx maps a
	// NodeID to its position in ids/sets. idx non-nil means sparse mode.
	sets []channel.Set
	idx  map[topology.NodeID]int32
	// hint is the capacity Reserve promised: the first dense growth jumps
	// straight to it instead of doubling, so a table that discovers
	// anything pays one sized allocation — and a table that discovers
	// nothing pays none. A hint past denseNeighborBudget selects the
	// sparse backing instead.
	hint int
}

// denseNeighborBudget caps the dense backing: a table whose Reserve hint
// (or first recorded ID) exceeds it stores entries sparsely. At the budget
// the dense arrays cost ~1 MB per table; past it, per-table memory must
// track discoveries (~degree), not the network size.
const denseNeighborBudget = 1 << 15

// NewNeighborTable returns an empty table.
func NewNeighborTable() *NeighborTable {
	return &NeighborTable{}
}

// grow extends the dense storage to cover v. Negative IDs are rejected with
// a panic because node IDs are dense non-negative by construction; a
// negative ID is a bug, never a data condition.
// sparseFor reports whether a first write for node v selects the sparse
// backing: nothing is stored densely yet and the larger of the Reserve
// hint and v's slot exceeds the dense budget. Once a mode has storage the
// table stays in it — re-deciding per write would strand entries.
func (t *NeighborTable) sparseFor(v topology.NodeID) bool {
	if t.idx != nil {
		return true
	}
	if len(t.has) > 0 {
		return false
	}
	need := int(v) + 1
	if t.hint > need {
		need = t.hint
	}
	return need > denseNeighborBudget
}

func (t *NeighborTable) grow(v topology.NodeID) {
	need := int(v) + 1
	if need <= len(t.has) {
		return
	}
	// Grow both slices once to the target length (amortized via append-style
	// doubling so sequential discoveries don't reallocate per neighbor). The
	// extension is zeroed: the slices never shrink, so spare capacity has
	// never held live entries.
	if cap(t.has) < need {
		newCap := growCap(need, cap(t.has))
		if t.hint > newCap {
			newCap = t.hint
		}
		has := make([]bool, need, newCap)
		copy(has, t.has)
		t.has = has
		common := make([]channel.Set, need, cap(t.has))
		copy(common, t.common)
		t.common = common
		return
	}
	t.has = t.has[:need]
	t.common = t.common[:need]
}

// growCap doubles the current capacity until it covers need, floored at a
// small minimum so the first discovery doesn't trigger a resize cascade.
func growCap(need, cur int) int {
	c := cur
	if c < 8 {
		c = 8
	}
	for c < need {
		c *= 2
	}
	return c
}

// Reserve hints the dense storage size for node IDs in [0, n), so a caller
// that knows the network size up front (the engines do) replaces the
// doubling cascade of sequential discoveries with one sized allocation.
// The allocation is lazy — it happens at the first discovery, not here —
// so reserving a table that never records anything costs nothing, and a
// run over many nodes pays for each table only when (and if) it is first
// written. Reserving records nothing: Has, Len and Neighbors are
// unchanged.
func (t *NeighborTable) Reserve(n int) {
	if n > t.hint {
		t.hint = n
	}
}

// Record stores neighbor v with the given common channel set. Re-recording a
// neighbor unions the channel sets; in the paper's model repeat receptions
// carry identical sets, so the union is a no-op there, but it keeps the table
// monotone under the unreliable-channel extension.
//
//nd:hotpath
func (t *NeighborTable) Record(v topology.NodeID, common channel.Set) {
	if v < 0 {
		panic(fmt.Sprintf("core: NeighborTable: negative node id %d", v))
	}
	if t.sparseFor(v) {
		if i, ok := t.idx[v]; ok {
			if common.SubsetOf(t.sets[i]) {
				return // nothing new: the union would rebuild an equal set
			}
			t.sets[i] = t.sets[i].UnionInto(common, t.sets[i])
			return
		}
		t.recordSparse(v, common.CopyInto(channel.Set{}))
		return
	}
	t.grow(v)
	if t.has[v] {
		if common.SubsetOf(t.common[v]) {
			return // nothing new: the union would rebuild an equal set
		}
		t.common[v] = t.common[v].UnionInto(common, t.common[v])
		return
	}
	t.has[v] = true
	t.ids = append(t.ids, v)
	t.common[v] = common.CopyInto(t.common[v])
}

// recordSparse appends a first-time discovery to the sparse backing.
func (t *NeighborTable) recordSparse(v topology.NodeID, set channel.Set) {
	if t.idx == nil {
		t.idx = make(map[topology.NodeID]int32, 16)
	}
	t.idx[v] = int32(len(t.ids))
	t.ids = append(t.ids, v)
	t.sets = append(t.sets, set)
}

// RecordIntersect records neighbor v with a ∩ b, computing the intersection
// directly into the table's entry storage — the zero-allocation (at steady
// state) form of Record(v, a.Intersect(b)) used by the delivery hot path.
//
//nd:hotpath
func (t *NeighborTable) RecordIntersect(v topology.NodeID, a, b channel.Set) {
	if v < 0 {
		panic(fmt.Sprintf("core: NeighborTable: negative node id %d", v))
	}
	if t.sparseFor(v) {
		if i, ok := t.idx[v]; ok {
			if a.IntersectionSubsetOf(b, t.sets[i]) {
				return // nothing new
			}
			// Rare monotone-extension path; see the dense branch below.
			t.sets[i] = t.sets[i].Union(a.Intersect(b))
			return
		}
		t.recordSparse(v, a.IntersectInto(b, channel.Set{}))
		return
	}
	t.grow(v)
	if t.has[v] {
		if a.IntersectionSubsetOf(b, t.common[v]) {
			return // nothing new
		}
		// Rare monotone-extension path (a payload adding channels); keep the
		// simple allocating union rather than a third in-place primitive.
		t.common[v] = t.common[v].Union(a.Intersect(b))
		return
	}
	t.has[v] = true
	t.ids = append(t.ids, v)
	t.common[v] = a.IntersectInto(b, t.common[v])
}

// Common returns the recorded common channel set with v and whether v has
// been discovered.
func (t *NeighborTable) Common(v topology.NodeID) (channel.Set, bool) {
	if t.idx != nil {
		if i, ok := t.idx[v]; ok {
			return t.sets[i], true
		}
		return channel.Set{}, false
	}
	if v < 0 || int(v) >= len(t.has) || !t.has[v] {
		return channel.Set{}, false
	}
	return t.common[v], true
}

// Has reports whether v has been discovered.
func (t *NeighborTable) Has(v topology.NodeID) bool {
	if t.idx != nil {
		_, ok := t.idx[v]
		return ok
	}
	return v >= 0 && int(v) < len(t.has) && t.has[v]
}

// Len returns the number of discovered neighbors.
func (t *NeighborTable) Len() int { return len(t.ids) }

// Neighbors returns the discovered neighbor IDs in ascending order.
func (t *NeighborTable) Neighbors() []topology.NodeID {
	ids := make([]topology.NodeID, len(t.ids))
	copy(ids, t.ids)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// node is the state shared by all protocol implementations.
type node struct {
	avail channel.Set
	// ids caches avail's channels in ascending order so the per-slot channel
	// draw indexes a flat slice instead of re-walking the bitset. The draw is
	// identical to avail.Pick: Pick consumes one IntN(|A(u)|) and returns the
	// target-th smallest channel, which is exactly ids[target].
	ids   []channel.ID
	rng   *rng.Source
	table *NeighborTable
}

func newNode(avail channel.Set, r *rng.Source) (node, error) {
	if avail.IsEmpty() {
		return node{}, fmt.Errorf("core: node has empty available channel set")
	}
	if r == nil {
		return node{}, fmt.Errorf("core: node requires a random source")
	}
	a := avail.Clone()
	return node{avail: a, ids: a.IDs(), rng: r, table: NewNeighborTable()}, nil
}

// ReserveNeighbors pre-sizes the discovery table for node IDs in [0, n).
// The engines call it (through sim.NeighborReserver) once per run with the
// network size; results are unchanged — only allocation timing moves.
func (n *node) ReserveNeighbors(count int) { n.table.Reserve(count) }

// deliver implements the receive path common to all four algorithms:
// "add ⟨v, A ∩ A(u)⟩ to the set of neighbors". Repeat receptions whose
// payload adds no channels — every repeat, in the paper's model — leave the
// table untouched without materializing the intersection; engines deliver
// the same link many times per run, so this path must not allocate.
//
//nd:hotpath
func (n *node) deliver(msg radio.Message) {
	n.table.RecordIntersect(msg.From, msg.Avail, n.avail)
}

// chooseAction draws the slot/frame action used by every algorithm: a
// channel uniform over A(u), transmit with probability p, else receive.
//
//nd:hotpath
func (n *node) chooseAction(p float64) radio.Action {
	// ids[IntN(len)] is avail.Pick with the bitset walk pre-resolved: the
	// same single IntN draw, the same uniform channel (newNode rejected
	// empty sets, so ids is never empty).
	c := n.ids[n.rng.IntN(len(n.ids))]
	mode := radio.Receive
	if n.rng.Bernoulli(p) {
		mode = radio.Transmit
	}
	return radio.Action{Mode: mode, Channel: c}
}

// ceilLog2 returns ⌈log₂ x⌉ for x ≥ 1.
func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// StageLen returns the number of slots in one Algorithm-1 stage for a given
// degree estimate: ⌈log₂ Δ_est⌉, floored at 1 so the degenerate estimate
// Δ_est = 1 still yields a non-empty stage (the analysis uses
// k = max(1, ⌈log Δ⌉) for the same reason).
func StageLen(deltaEst int) int {
	if l := ceilLog2(deltaEst); l > 1 {
		return l
	}
	return 1
}

// TransmitProbStaged is the transmit probability of slot i (1-based) of an
// Algorithm-1 stage for a node with availSize channels:
// min(1/2, availSize/2^i).
func TransmitProbStaged(availSize, i int) float64 {
	p := float64(availSize) / float64(uint64(1)<<uint(i))
	if p > 0.5 {
		return 0.5
	}
	return p
}

// TransmitProbUniform is Algorithm 3's constant transmit probability:
// min(1/2, availSize/Δ_est).
func TransmitProbUniform(availSize, deltaEst int) float64 {
	p := float64(availSize) / float64(deltaEst)
	if p > 0.5 {
		return 0.5
	}
	return p
}

// TransmitProbAsync is Algorithm 4's per-frame transmit probability:
// min(1/2, availSize/(3·Δ_est)).
func TransmitProbAsync(availSize, deltaEst int) float64 {
	p := float64(availSize) / float64(3*deltaEst)
	if p > 0.5 {
		return 0.5
	}
	return p
}

func validateDeltaEst(deltaEst int) error {
	if deltaEst < 1 {
		return fmt.Errorf("core: degree estimate %d must be at least 1", deltaEst)
	}
	return nil
}

// TransmitProbAsyncSlots generalizes TransmitProbAsync to an arbitrary frame
// division: min(1/2, availSize/(slotsPerFrame·Δ_est)). Used by the E10
// ablation; the paper's value is slotsPerFrame = 3.
func TransmitProbAsyncSlots(availSize, deltaEst, slotsPerFrame int) float64 {
	p := float64(availSize) / float64(slotsPerFrame*deltaEst)
	if p > 0.5 {
		return 0.5
	}
	return p
}
