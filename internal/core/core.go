// Package core implements the paper's randomized neighbor-discovery
// algorithms for M²HeW networks.
//
// Four protocols are provided, one per algorithm in the paper:
//
//   - SyncStaged (Algorithm 1): synchronous, identical start times,
//     knowledge of an upper bound Δ_est on the maximum node degree. Time is
//     divided into stages of ⌈log₂ Δ_est⌉ slots; in slot i of a stage a node
//     transmits with probability min(1/2, |A(u)|/2^i) on a channel drawn
//     uniformly from A(u).
//   - SyncGrowing (Algorithm 2): synchronous, identical start times, no
//     degree knowledge. Stages of Algorithm 1 are executed with estimates
//     d = 2, 3, 4, … in turn.
//   - SyncUniform (Algorithm 3): synchronous, variable start times,
//     knowledge of Δ_est. Every slot uses the same transmit probability
//     min(1/2, |A(u)|/Δ_est), which makes per-slot coverage probabilities
//     time-invariant and therefore start-time independent.
//   - Async (Algorithm 4): asynchronous with bounded clock drift (δ ≤ 1/7),
//     knowledge of Δ_est. Local time is divided into frames of three slots;
//     per frame a node transmits with probability min(1/2, |A(u)|/(3·Δ_est)),
//     repeating its message in each slot, or listens for the whole frame.
//
// All protocols produce the paper's output: the set of discovered neighbors
// v together with A(v) ∩ A(u), the channels shared with each.
//
// A protocol instance belongs to one node and is driven by a simulation
// engine (package sim): the engine asks for the node's next action and
// delivers clear messages back. Protocols are deterministic functions of
// their RNG stream, so a run is reproducible from its seed.
package core

import (
	"fmt"
	"math/bits"
	"sort"

	"m2hew/internal/channel"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// NeighborTable is the output of neighbor discovery at one node: for every
// discovered neighbor, the channels shared with it (A(v) ∩ A(u)).
type NeighborTable struct {
	entries map[topology.NodeID]channel.Set
}

// NewNeighborTable returns an empty table.
func NewNeighborTable() *NeighborTable {
	return &NeighborTable{entries: make(map[topology.NodeID]channel.Set)}
}

// Record stores neighbor v with the given common channel set. Re-recording a
// neighbor unions the channel sets; in the paper's model repeat receptions
// carry identical sets, so the union is a no-op there, but it keeps the table
// monotone under the unreliable-channel extension.
func (t *NeighborTable) Record(v topology.NodeID, common channel.Set) {
	if existing, ok := t.entries[v]; ok {
		if common.SubsetOf(existing) {
			return // nothing new: the union would rebuild an equal set
		}
		t.entries[v] = existing.Union(common)
		return
	}
	t.entries[v] = common.Clone()
}

// Common returns the recorded common channel set with v and whether v has
// been discovered.
func (t *NeighborTable) Common(v topology.NodeID) (channel.Set, bool) {
	s, ok := t.entries[v]
	return s, ok
}

// Has reports whether v has been discovered.
func (t *NeighborTable) Has(v topology.NodeID) bool {
	_, ok := t.entries[v]
	return ok
}

// Len returns the number of discovered neighbors.
func (t *NeighborTable) Len() int { return len(t.entries) }

// Neighbors returns the discovered neighbor IDs in ascending order.
func (t *NeighborTable) Neighbors() []topology.NodeID {
	ids := make([]topology.NodeID, 0, len(t.entries))
	for v := range t.entries {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// node is the state shared by all protocol implementations.
type node struct {
	avail channel.Set
	rng   *rng.Source
	table *NeighborTable
}

func newNode(avail channel.Set, r *rng.Source) (node, error) {
	if avail.IsEmpty() {
		return node{}, fmt.Errorf("core: node has empty available channel set")
	}
	if r == nil {
		return node{}, fmt.Errorf("core: node requires a random source")
	}
	return node{avail: avail.Clone(), rng: r, table: NewNeighborTable()}, nil
}

// deliver implements the receive path common to all four algorithms:
// "add ⟨v, A ∩ A(u)⟩ to the set of neighbors". Repeat receptions whose
// payload adds no channels — every repeat, in the paper's model — leave the
// table untouched without materializing the intersection; engines deliver
// the same link many times per run, so this path must not allocate.
func (n *node) deliver(msg radio.Message) {
	if existing, ok := n.table.Common(msg.From); ok &&
		msg.Avail.IntersectionSubsetOf(n.avail, existing) {
		return
	}
	n.table.Record(msg.From, msg.Avail.Intersect(n.avail))
}

// chooseAction draws the slot/frame action used by every algorithm: a
// channel uniform over A(u), transmit with probability p, else receive.
func (n *node) chooseAction(p float64) radio.Action {
	c, err := n.avail.Pick(n.rng)
	if err != nil {
		// newNode rejected empty sets; reaching this is a bug.
		panic(fmt.Sprintf("core: pick channel: %v", err))
	}
	mode := radio.Receive
	if n.rng.Bernoulli(p) {
		mode = radio.Transmit
	}
	return radio.Action{Mode: mode, Channel: c}
}

// ceilLog2 returns ⌈log₂ x⌉ for x ≥ 1.
func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// StageLen returns the number of slots in one Algorithm-1 stage for a given
// degree estimate: ⌈log₂ Δ_est⌉, floored at 1 so the degenerate estimate
// Δ_est = 1 still yields a non-empty stage (the analysis uses
// k = max(1, ⌈log Δ⌉) for the same reason).
func StageLen(deltaEst int) int {
	if l := ceilLog2(deltaEst); l > 1 {
		return l
	}
	return 1
}

// TransmitProbStaged is the transmit probability of slot i (1-based) of an
// Algorithm-1 stage for a node with availSize channels:
// min(1/2, availSize/2^i).
func TransmitProbStaged(availSize, i int) float64 {
	p := float64(availSize) / float64(uint64(1)<<uint(i))
	if p > 0.5 {
		return 0.5
	}
	return p
}

// TransmitProbUniform is Algorithm 3's constant transmit probability:
// min(1/2, availSize/Δ_est).
func TransmitProbUniform(availSize, deltaEst int) float64 {
	p := float64(availSize) / float64(deltaEst)
	if p > 0.5 {
		return 0.5
	}
	return p
}

// TransmitProbAsync is Algorithm 4's per-frame transmit probability:
// min(1/2, availSize/(3·Δ_est)).
func TransmitProbAsync(availSize, deltaEst int) float64 {
	p := float64(availSize) / float64(3*deltaEst)
	if p > 0.5 {
		return 0.5
	}
	return p
}

func validateDeltaEst(deltaEst int) error {
	if deltaEst < 1 {
		return fmt.Errorf("core: degree estimate %d must be at least 1", deltaEst)
	}
	return nil
}

// TransmitProbAsyncSlots generalizes TransmitProbAsync to an arbitrary frame
// division: min(1/2, availSize/(slotsPerFrame·Δ_est)). Used by the E10
// ablation; the paper's value is slotsPerFrame = 3.
func TransmitProbAsyncSlots(availSize, deltaEst, slotsPerFrame int) float64 {
	p := float64(availSize) / float64(slotsPerFrame*deltaEst)
	if p > 0.5 {
		return 0.5
	}
	return p
}
