package core

import (
	"math"
	"testing"
	"testing/quick"

	"m2hew/internal/channel"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
)

func TestNeighborTable(t *testing.T) {
	tbl := NewNeighborTable()
	if tbl.Len() != 0 || tbl.Has(3) {
		t.Fatal("fresh table not empty")
	}
	tbl.Record(3, channel.NewSet(1, 2))
	tbl.Record(1, channel.NewSet(5))
	if !tbl.Has(3) || !tbl.Has(1) || tbl.Len() != 2 {
		t.Fatal("records missing")
	}
	common, ok := tbl.Common(3)
	if !ok || !common.Equal(channel.NewSet(1, 2)) {
		t.Fatalf("Common(3) = %v, %v", common, ok)
	}
	if _, ok := tbl.Common(9); ok {
		t.Fatal("Common(9) reported present")
	}
	ids := tbl.Neighbors()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("Neighbors = %v, want [1 3]", ids)
	}
}

func TestNeighborTableRerecordUnions(t *testing.T) {
	tbl := NewNeighborTable()
	tbl.Record(5, channel.NewSet(1))
	tbl.Record(5, channel.NewSet(2))
	common, _ := tbl.Common(5)
	if !common.Equal(channel.NewSet(1, 2)) {
		t.Fatalf("re-record union = %v, want {1,2}", common)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after re-record", tbl.Len())
	}
}

func TestNeighborTableRerecordSubsetNoOp(t *testing.T) {
	tbl := NewNeighborTable()
	tbl.Record(5, channel.NewSet(1, 2, 65))
	// A subset re-record (the common case on repeat deliveries) must leave
	// the entry unchanged — the fast path skips the union and clone.
	tbl.Record(5, channel.NewSet(2))
	tbl.Record(5, channel.NewSet(1, 65))
	common, _ := tbl.Common(5)
	if !common.Equal(channel.NewSet(1, 2, 65)) {
		t.Fatalf("subset re-record changed entry: %v", common)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after subset re-record", tbl.Len())
	}
	// A strict superset must still union in the new channels.
	tbl.Record(5, channel.NewSet(2, 130))
	common, _ = tbl.Common(5)
	if !common.Equal(channel.NewSet(1, 2, 65, 130)) {
		t.Fatalf("superset re-record = %v, want {1,2,65,130}", common)
	}
}

func TestNeighborTableClonesInput(t *testing.T) {
	tbl := NewNeighborTable()
	s := channel.NewSet(1)
	tbl.Record(2, s)
	s.Add(7)
	common, _ := tbl.Common(2)
	if common.Contains(7) {
		t.Fatal("table aliased caller's set")
	}
}

func TestCeilLog2(t *testing.T) {
	cases := []struct{ x, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {17, 5}, {1024, 10},
	}
	for _, tt := range cases {
		if got := ceilLog2(tt.x); got != tt.want {
			t.Errorf("ceilLog2(%d) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestStageLen(t *testing.T) {
	cases := []struct{ d, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {100, 7},
	}
	for _, tt := range cases {
		if got := StageLen(tt.d); got != tt.want {
			t.Errorf("StageLen(%d) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestTransmitProbSchedules(t *testing.T) {
	// Staged: min(1/2, |A|/2^i).
	if got := TransmitProbStaged(4, 1); got != 0.5 {
		t.Errorf("staged(4,1) = %v, want 0.5 (capped)", got)
	}
	if got := TransmitProbStaged(4, 3); got != 0.5 {
		t.Errorf("staged(4,3) = %v, want 0.5", got)
	}
	if got := TransmitProbStaged(4, 4); got != 0.25 {
		t.Errorf("staged(4,4) = %v, want 0.25", got)
	}
	if got := TransmitProbStaged(1, 5); got != 1.0/32 {
		t.Errorf("staged(1,5) = %v, want 1/32", got)
	}
	// Uniform: min(1/2, |A|/Δest).
	if got := TransmitProbUniform(3, 10); got != 0.3 {
		t.Errorf("uniform(3,10) = %v, want 0.3", got)
	}
	if got := TransmitProbUniform(10, 10); got != 0.5 {
		t.Errorf("uniform(10,10) = %v, want 0.5", got)
	}
	// Async: min(1/2, |A|/(3Δest)).
	if got := TransmitProbAsync(3, 2); got != 0.5 {
		t.Errorf("async(3,2) = %v, want 0.5", got)
	}
	if got := TransmitProbAsync(2, 4); got != 2.0/12 {
		t.Errorf("async(2,4) = %v, want 1/6", got)
	}
}

func TestConstructorsValidate(t *testing.T) {
	r := rng.New(1)
	empty := channel.Set{}
	avail := channel.NewSet(0, 1)
	if _, err := NewSyncStaged(empty, 4, r); err == nil {
		t.Error("SyncStaged accepted empty set")
	}
	if _, err := NewSyncStaged(avail, 0, r); err == nil {
		t.Error("SyncStaged accepted Δest=0")
	}
	if _, err := NewSyncStaged(avail, 4, nil); err == nil {
		t.Error("SyncStaged accepted nil rng")
	}
	if _, err := NewSyncGrowing(empty, r); err == nil {
		t.Error("SyncGrowing accepted empty set")
	}
	if _, err := NewSyncUniform(avail, -1, r); err == nil {
		t.Error("SyncUniform accepted negative Δest")
	}
	if _, err := NewAsync(empty, 4, r); err == nil {
		t.Error("Async accepted empty set")
	}
	if _, err := NewAsync(avail, 0, r); err == nil {
		t.Error("Async accepted Δest=0")
	}
}

func TestProtocolsCloneAvail(t *testing.T) {
	r := rng.New(2)
	avail := channel.NewSet(0)
	p, err := NewSyncUniform(avail, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	avail.Add(9)
	for i := 0; i < 50; i++ {
		if a := p.Step(i); a.Channel == 9 {
			t.Fatal("protocol observed caller's mutation of avail")
		}
	}
}

func TestStagedChannelAlwaysAvailable(t *testing.T) {
	r := rng.New(3)
	avail := channel.NewSet(2, 5, 9)
	p, err := NewSyncStaged(avail, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 2000; slot++ {
		a := p.Step(slot)
		if err := a.Validate(avail); err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if a.Mode == radio.Quiet {
			t.Fatalf("slot %d: algorithm chose quiet", slot)
		}
	}
}

func TestStagedTransmitFrequencyMatchesSchedule(t *testing.T) {
	// |A| = 2, Δest = 16 → stage length 4, probs: i=1: 1/2 (cap), i=2: 1/2,
	// i=3: 1/4, i=4: 1/8.
	r := rng.New(4)
	avail := channel.NewSet(0, 1)
	p, err := NewSyncStaged(avail, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.StageLen() != 4 {
		t.Fatalf("stage length %d, want 4", p.StageLen())
	}
	const stages = 40000
	tx := make([]int, 4)
	for s := 0; s < stages; s++ {
		for i := 0; i < 4; i++ {
			if p.Step(s*4+i).Mode == radio.Transmit {
				tx[i]++
			}
		}
	}
	want := []float64{0.5, 0.5, 0.25, 0.125}
	for i, w := range want {
		got := float64(tx[i]) / stages
		if math.Abs(got-w) > 0.01 {
			t.Errorf("slot %d transmit frequency %v, want %v", i+1, got, w)
		}
	}
}

func TestStagedDeltaEstOneDegenerate(t *testing.T) {
	// Δest = 1 → stage of 1 slot with p = min(1/2, |A|/2).
	r := rng.New(5)
	p, err := NewSyncStaged(channel.NewSet(0), 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.StageLen() != 1 {
		t.Fatalf("StageLen = %d, want 1", p.StageLen())
	}
	tx := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.Step(i).Mode == radio.Transmit {
			tx++
		}
	}
	if f := float64(tx) / n; math.Abs(f-0.5) > 0.02 {
		t.Fatalf("transmit frequency %v, want 0.5", f)
	}
}

func TestGrowingEstimateAdvances(t *testing.T) {
	r := rng.New(6)
	p, err := NewSyncGrowing(channel.NewSet(0, 1), r)
	if err != nil {
		t.Fatal(err)
	}
	if p.Estimate() != 2 {
		t.Fatalf("initial estimate %d, want 2", p.Estimate())
	}
	slot := 0
	// Stage for d=2 has 1 slot; d=3 has 2; d=4 has 2; d=5 has 3...
	wantAfter := []struct {
		slots int
		d     int
	}{
		{1, 3}, {3, 4}, {5, 5}, {8, 6},
	}
	for _, tt := range wantAfter {
		for slot < tt.slots {
			p.Step(slot)
			slot++
		}
		if p.Estimate() != tt.d {
			t.Fatalf("after %d slots estimate %d, want %d", tt.slots, p.Estimate(), tt.d)
		}
	}
}

func TestSlotsForEstimate(t *testing.T) {
	cases := []struct{ d, want int }{
		{1, 0},
		{2, 1},         // stage for 2
		{3, 3},         // +2
		{4, 5},         // +2
		{5, 8},         // +3
		{8, 8 + 3 + 3}, // 6:3, 7:3, 8:3 → 8+9=17? see below
	}
	// Recompute case d=8 honestly: StageLen: 2→1, 3→2, 4→2, 5→3, 6→3, 7→3, 8→3.
	cases[5].want = 1 + 2 + 2 + 3 + 3 + 3 + 3
	for _, tt := range cases {
		if got := SlotsForEstimate(tt.d); got != tt.want {
			t.Errorf("SlotsForEstimate(%d) = %d, want %d", tt.d, got, tt.want)
		}
	}
}

func TestGrowingScheduleMatchesSlotsForEstimate(t *testing.T) {
	r := rng.New(7)
	p, err := NewSyncGrowing(channel.NewSet(0), r)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 200; slot++ {
		// Before stepping slot, the estimate d satisfies
		// SlotsForEstimate(d-1) <= slot < SlotsForEstimate(d).
		d := p.Estimate()
		if !(SlotsForEstimate(d-1) <= slot && slot < SlotsForEstimate(d)) {
			t.Fatalf("slot %d: estimate %d inconsistent with schedule", slot, d)
		}
		p.Step(slot)
	}
}

func TestUniformConstantProbability(t *testing.T) {
	r := rng.New(8)
	avail := channel.NewSet(0, 1, 2)
	p, err := NewSyncUniform(avail, 12, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.TransmitProb() != 0.25 {
		t.Fatalf("TransmitProb = %v, want 0.25", p.TransmitProb())
	}
	tx := 0
	const n = 40000
	for i := 0; i < n; i++ {
		a := p.Step(i)
		if err := a.Validate(avail); err != nil {
			t.Fatal(err)
		}
		if a.Mode == radio.Transmit {
			tx++
		}
	}
	if f := float64(tx) / n; math.Abs(f-0.25) > 0.01 {
		t.Fatalf("transmit frequency %v, want 0.25", f)
	}
}

func TestAsyncConstantProbability(t *testing.T) {
	r := rng.New(9)
	avail := channel.NewSet(0, 1)
	p, err := NewAsync(avail, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 12
	if math.Abs(p.TransmitProb()-want) > 1e-15 {
		t.Fatalf("TransmitProb = %v, want %v", p.TransmitProb(), want)
	}
	tx := 0
	const n = 60000
	for i := 0; i < n; i++ {
		a := p.NextFrame(i)
		if err := a.Validate(avail); err != nil {
			t.Fatal(err)
		}
		if a.Mode == radio.Transmit {
			tx++
		}
	}
	if f := float64(tx) / n; math.Abs(f-want) > 0.01 {
		t.Fatalf("transmit frequency %v, want %v", f, want)
	}
}

func TestChannelSelectionUniform(t *testing.T) {
	r := rng.New(10)
	avail := channel.NewSet(3, 7, 11, 19)
	p, err := NewSyncUniform(avail, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[channel.ID]int)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[p.Step(i).Channel]++
	}
	for _, c := range avail.IDs() {
		f := float64(counts[c]) / n
		if math.Abs(f-0.25) > 0.01 {
			t.Errorf("channel %d selected with frequency %v, want 0.25", c, f)
		}
	}
}

func TestDeliverIntersectsWithOwnSet(t *testing.T) {
	r := rng.New(11)
	avail := channel.NewSet(1, 2, 3)
	p, err := NewAsync(avail, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	p.Deliver(radio.Message{From: 7, Avail: channel.NewSet(2, 3, 4, 5)})
	common, ok := p.Neighbors().Common(7)
	if !ok {
		t.Fatal("neighbor 7 not recorded")
	}
	if !common.Equal(channel.NewSet(2, 3)) {
		t.Fatalf("common = %v, want {2,3}", common)
	}
}

func TestProtocolDeterminism(t *testing.T) {
	avail := channel.NewSet(0, 1, 2)
	mk := func(seed uint64) []radio.Action {
		p, err := NewSyncStaged(avail, 8, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		actions := make([]radio.Action, 500)
		for i := range actions {
			actions[i] = p.Step(i)
		}
		return actions
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: all schedule probabilities stay within (0, 1/2] for valid
// parameters — the paper's algorithms never transmit with probability
// greater than 1/2 or exactly 0.
func TestScheduleProbabilityRangeProperty(t *testing.T) {
	err := quick.Check(func(availRaw, dRaw, iRaw uint8) bool {
		avail := int(availRaw%64) + 1
		d := int(dRaw%64) + 1
		i := int(iRaw%20) + 1
		for _, p := range []float64{
			TransmitProbStaged(avail, i),
			TransmitProbUniform(avail, d),
			TransmitProbAsync(avail, d),
		} {
			if p <= 0 || p > 0.5 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}
