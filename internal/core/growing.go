package core

import (
	"m2hew/internal/channel"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
)

// SyncGrowing is Algorithm 2: neighbor discovery for a synchronous system
// with identical start times and no knowledge of the maximum node degree.
//
// It repeatedly executes one Algorithm-1 stage with sequentially increasing
// degree estimates d = 2, 3, 4, …. Once d reaches the true maximum channel
// degree Δ, every subsequent stage contains a slot whose transmit
// probability is near-optimal, so discovery completes within Δ + M stages
// with probability 1 − ε (Theorem 2; the geometric-doubling alternative of
// [2] is unusable here because computing per-estimate run lengths would
// require a-priori knowledge of N, S and ρ).
type SyncGrowing struct {
	node
	d         int // current degree estimate
	slotInD   int // 0-based slot within the current stage
	stageLenD int // slots in the current stage = StageLen(d)
}

// NewSyncGrowing returns an Algorithm 2 instance.
func NewSyncGrowing(avail channel.Set, r *rng.Source) (*SyncGrowing, error) {
	n, err := newNode(avail, r)
	if err != nil {
		return nil, err
	}
	return &SyncGrowing{node: n, d: 2, stageLenD: StageLen(2)}, nil
}

// Step returns the node's action for its next slot. Unlike the other
// synchronous protocols, Algorithm 2's schedule is stateful (stage lengths
// grow), so Step must be called with consecutive localSlot values starting
// at 0; the argument is accepted for interface uniformity and cross-checked
// in debug builds by the engine's sequential drive.
func (p *SyncGrowing) Step(localSlot int) radio.Action {
	_ = localSlot
	i := p.slotInD + 1 // 1-based slot within the stage
	action := p.chooseAction(TransmitProbStaged(p.avail.Size(), i))
	p.slotInD++
	if p.slotInD >= p.stageLenD {
		p.d++
		p.slotInD = 0
		p.stageLenD = StageLen(p.d)
	}
	return action
}

// Deliver records a clear message.
func (p *SyncGrowing) Deliver(msg radio.Message) { p.deliver(msg) }

// Neighbors returns the node's discovery output.
func (p *SyncGrowing) Neighbors() *NeighborTable { return p.table }

// Estimate returns the current degree estimate d.
func (p *SyncGrowing) Estimate() int { return p.d }

// SlotsForEstimate returns the total number of slots Algorithm 2 consumes to
// finish all stages with estimates 2..d inclusive. It is the schedule's
// clock: after SlotsForEstimate(d) slots the protocol starts the stage with
// estimate d+1.
func SlotsForEstimate(d int) int {
	total := 0
	for e := 2; e <= d; e++ {
		total += StageLen(e)
	}
	return total
}
