package core

// Differential tests for the NeighborTable's sparse backing (selected past
// denseNeighborBudget): every observable — Has, Common, Len, Neighbors —
// must behave identically to the dense backing under the same operation
// sequence, and per-table memory must track discoveries, not the reserved
// network size.

import (
	"fmt"
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// TestNeighborTableSparseMatchesDense drives a dense table (small Reserve)
// and a sparse table (Reserve past the budget) through the identical
// randomized Record/RecordIntersect sequence on a shared ID set and pins
// every observable between them.
func TestNeighborTableSparseMatchesDense(t *testing.T) {
	root := rng.New(20260813)
	for trial := 0; trial < 30; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			dense := NewNeighborTable()
			dense.Reserve(64)
			sparse := NewNeighborTable()
			sparse.Reserve(denseNeighborBudget * 4)

			own := randomSet(r, 8)
			ids := make([]topology.NodeID, 12)
			for i := range ids {
				ids[i] = topology.NodeID(r.IntN(64))
			}
			for op := 0; op < 200; op++ {
				v := ids[r.IntN(len(ids))]
				set := randomSet(r, 8)
				if r.Bernoulli(0.5) {
					dense.Record(v, set)
					sparse.Record(v, set)
				} else {
					dense.RecordIntersect(v, set, own)
					sparse.RecordIntersect(v, set, own)
				}
			}

			if dense.Len() != sparse.Len() {
				t.Fatalf("Len: dense %d, sparse %d", dense.Len(), sparse.Len())
			}
			dn, sn := dense.Neighbors(), sparse.Neighbors()
			for i := range dn {
				if dn[i] != sn[i] {
					t.Fatalf("Neighbors[%d]: dense %d, sparse %d", i, dn[i], sn[i])
				}
			}
			for v := topology.NodeID(0); v < 64; v++ {
				if dense.Has(v) != sparse.Has(v) {
					t.Fatalf("Has(%d): dense %v, sparse %v", v, dense.Has(v), sparse.Has(v))
				}
				dc, dok := dense.Common(v)
				sc, sok := sparse.Common(v)
				if dok != sok || (dok && !dc.Equal(sc)) {
					t.Fatalf("Common(%d): dense (%v, %v), sparse (%v, %v)", v, dc, dok, sc, sok)
				}
			}
		})
	}
}

// randomSet draws a non-empty channel set over [0, universe).
func randomSet(r *rng.Source, universe int) channel.Set {
	var s channel.Set
	for s.IsEmpty() {
		for c := 0; c < universe; c++ {
			if r.Bernoulli(0.4) {
				s.Add(channel.ID(c))
			}
		}
	}
	return s
}

// TestNeighborTableSparseSelection pins the mode decision: a large Reserve
// hint, or a first recorded ID past the budget, selects the sparse backing
// (no dense arrays); a small table stays dense even when later re-reserved.
func TestNeighborTableSparseSelection(t *testing.T) {
	set := channel.NewSet(0, 1)

	big := NewNeighborTable()
	big.Reserve(1_000_000)
	for i := 0; i < 10; i++ {
		big.RecordIntersect(topology.NodeID(i*977), set, set)
	}
	if len(big.has) != 0 || len(big.common) != 0 {
		t.Fatalf("reserved-large table allocated dense arrays (%d slots)", len(big.has))
	}
	if big.idx == nil || big.Len() != 10 {
		t.Fatalf("reserved-large table: idx nil=%v, len=%d", big.idx == nil, big.Len())
	}

	far := NewNeighborTable()
	far.Record(denseNeighborBudget+5, set)
	if len(far.has) != 0 || !far.Has(denseNeighborBudget+5) {
		t.Fatalf("far-first-ID table went dense (%d slots)", len(far.has))
	}

	small := NewNeighborTable()
	small.Reserve(16)
	small.Record(3, set)
	if small.idx != nil {
		t.Fatal("small table went sparse")
	}
}

// TestNeighborTableSparseSteadyStateAllocs is the sparse twin of the dense
// steady-state guard: re-recording known neighbors with subset payloads —
// every repeat delivery in the paper's model — must not allocate.
func TestNeighborTableSparseSteadyStateAllocs(t *testing.T) {
	tab := NewNeighborTable()
	tab.Reserve(denseNeighborBudget * 8)
	own := channel.NewSet(0, 2, 4, 6)
	for i := 0; i < 64; i++ {
		tab.RecordIntersect(topology.NodeID(i*1013), own, own)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			tab.RecordIntersect(topology.NodeID(i*1013), own, own)
		}
	})
	if allocs != 0 {
		t.Errorf("sparse re-record allocated %.1f objects per sweep", allocs)
	}
}
