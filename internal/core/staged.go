package core

import (
	"m2hew/internal/channel"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
)

// SyncStaged is Algorithm 1: neighbor discovery for a synchronous system
// with identical start times and a known upper bound Δ_est on the maximum
// node degree.
//
// Execution is an endless sequence of stages, each of StageLen(Δ_est) slots.
// In slot i (1-based) of a stage, the node tunes to a uniformly random
// channel of A(u) and transmits with probability min(1/2, |A(u)|/2^i),
// listening otherwise. The exponentially decreasing schedule guarantees each
// stage contains a slot whose transmit probability is within a factor two of
// the contention-optimal 1/Δ(u,c) for every channel degree Δ(u,c) ≤ Δ_est.
type SyncStaged struct {
	node
	deltaEst int
	stageLen int
}

// NewSyncStaged returns an Algorithm 1 instance for a node with the given
// available channel set, degree estimate, and random stream.
func NewSyncStaged(avail channel.Set, deltaEst int, r *rng.Source) (*SyncStaged, error) {
	if err := validateDeltaEst(deltaEst); err != nil {
		return nil, err
	}
	n, err := newNode(avail, r)
	if err != nil {
		return nil, err
	}
	return &SyncStaged{node: n, deltaEst: deltaEst, stageLen: StageLen(deltaEst)}, nil
}

// Step returns the node's action for its localSlot-th slot (0-based since
// the node started).
func (p *SyncStaged) Step(localSlot int) radio.Action {
	i := localSlot%p.stageLen + 1 // 1-based slot within the stage
	return p.chooseAction(TransmitProbStaged(p.avail.Size(), i))
}

// Deliver records a clear message per Algorithm 1 lines 9–11.
func (p *SyncStaged) Deliver(msg radio.Message) { p.deliver(msg) }

// Neighbors returns the node's discovery output.
func (p *SyncStaged) Neighbors() *NeighborTable { return p.table }

// StageLen returns the number of slots per stage, ⌈log₂ Δ_est⌉ (min 1).
func (p *SyncStaged) StageLen() int { return p.stageLen }

// DeltaEst returns the degree estimate the instance was built with.
func (p *SyncStaged) DeltaEst() int { return p.deltaEst }
