package core

import (
	"fmt"

	"m2hew/internal/radio"
)

// The paper's algorithms run forever — Theorems 1–3 and 9 bound when
// discovery has *succeeded* with probability 1−ε, but a node cannot locally
// observe success (it doesn't know N, its true neighbor count, or ρ). The
// companion line of work the paper cites ([22], "lightweight termination
// detection") addresses stopping; this file provides the library's practical
// variant: a quiescence rule. A wrapped node shuts its radio off after
// idleLimit consecutive slots (or frames) during which its neighbor table
// did not grow.
//
// The rule trades recall for energy: too small a limit can stop a node
// before slow links are covered (and, worse, before *other* nodes have heard
// it). Experiment E14 quantifies the tradeoff; the analytic anchor is that
// a link's per-slot coverage probability is at least the Eq. (6) bound, so
// idleLimit ≫ 1/bound makes premature termination unlikely.

// SyncDiscoverer is the interface shared by this package's synchronous
// protocols (SyncStaged, SyncGrowing, SyncUniform and the baselines).
type SyncDiscoverer interface {
	Step(localSlot int) radio.Action
	Deliver(msg radio.Message)
	Neighbors() *NeighborTable
}

// AsyncDiscoverer is the frame-oriented counterpart (Async).
type AsyncDiscoverer interface {
	NextFrame(frame int) radio.Action
	Deliver(msg radio.Message)
	Neighbors() *NeighborTable
}

// SyncTerminating wraps a synchronous protocol with the quiescence rule.
type SyncTerminating struct {
	inner     SyncDiscoverer
	idleLimit int
	idleFor   int
	active    int
	done      bool
}

// NewSyncTerminating wraps inner so it goes permanently quiet after
// idleLimit consecutive slots without a new neighbor.
func NewSyncTerminating(inner SyncDiscoverer, idleLimit int) (*SyncTerminating, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: terminating wrapper needs a protocol")
	}
	if idleLimit < 1 {
		return nil, fmt.Errorf("core: idle limit %d must be positive", idleLimit)
	}
	return &SyncTerminating{inner: inner, idleLimit: idleLimit}, nil
}

// Step implements the engine protocol; after termination it is quiet.
func (p *SyncTerminating) Step(localSlot int) radio.Action {
	if p.done {
		return radio.Action{Mode: radio.Quiet}
	}
	if p.idleFor >= p.idleLimit {
		p.done = true
		return radio.Action{Mode: radio.Quiet}
	}
	p.idleFor++
	p.active++
	return p.inner.Step(localSlot)
}

// Deliver forwards the message; a table-growing delivery resets the idle
// counter.
func (p *SyncTerminating) Deliver(msg radio.Message) {
	before := p.inner.Neighbors().Len()
	p.inner.Deliver(msg)
	if p.inner.Neighbors().Len() > before {
		p.idleFor = 0
	}
}

// Neighbors returns the inner protocol's discovery output.
func (p *SyncTerminating) Neighbors() *NeighborTable { return p.inner.Neighbors() }

// Terminated reports whether the node has gone permanently quiet.
func (p *SyncTerminating) Terminated() bool { return p.done }

// ActiveSlots returns how many slots the node's radio was on.
func (p *SyncTerminating) ActiveSlots() int { return p.active }

// AsyncTerminating wraps an asynchronous protocol with the quiescence rule,
// counted in frames.
type AsyncTerminating struct {
	inner     AsyncDiscoverer
	idleLimit int
	idleFor   int
	active    int
	done      bool
}

// NewAsyncTerminating wraps inner so it goes permanently quiet after
// idleLimit consecutive frames without a new neighbor.
func NewAsyncTerminating(inner AsyncDiscoverer, idleLimit int) (*AsyncTerminating, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: terminating wrapper needs a protocol")
	}
	if idleLimit < 1 {
		return nil, fmt.Errorf("core: idle limit %d must be positive", idleLimit)
	}
	return &AsyncTerminating{inner: inner, idleLimit: idleLimit}, nil
}

// NextFrame implements the engine protocol; after termination it is quiet.
func (p *AsyncTerminating) NextFrame(frame int) radio.Action {
	if p.done {
		return radio.Action{Mode: radio.Quiet}
	}
	if p.idleFor >= p.idleLimit {
		p.done = true
		return radio.Action{Mode: radio.Quiet}
	}
	p.idleFor++
	p.active++
	return p.inner.NextFrame(frame)
}

// Deliver forwards the message; a table-growing delivery resets the idle
// counter.
func (p *AsyncTerminating) Deliver(msg radio.Message) {
	before := p.inner.Neighbors().Len()
	p.inner.Deliver(msg)
	if p.inner.Neighbors().Len() > before {
		p.idleFor = 0
	}
}

// Neighbors returns the inner protocol's discovery output.
func (p *AsyncTerminating) Neighbors() *NeighborTable { return p.inner.Neighbors() }

// Terminated reports whether the node has gone permanently quiet.
func (p *AsyncTerminating) Terminated() bool { return p.done }

// ActiveFrames returns how many frames the node's radio was on.
func (p *AsyncTerminating) ActiveFrames() int { return p.active }
