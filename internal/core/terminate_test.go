package core

import (
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
)

func TestSyncTerminatingValidation(t *testing.T) {
	inner, err := NewSyncUniform(channel.NewSet(0), 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSyncTerminating(nil, 5); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewSyncTerminating(inner, 0); err == nil {
		t.Error("zero idle limit accepted")
	}
}

func TestSyncTerminatingGoesQuiet(t *testing.T) {
	inner, err := NewSyncUniform(channel.NewSet(0), 2, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSyncTerminating(inner, 10)
	if err != nil {
		t.Fatal(err)
	}
	slot := 0
	for ; slot < 10; slot++ {
		if p.Step(slot).Mode == radio.Quiet {
			t.Fatalf("terminated at slot %d, before the idle limit", slot)
		}
	}
	if !(p.Step(slot).Mode == radio.Quiet) {
		t.Fatal("did not terminate after idle limit")
	}
	if !p.Terminated() {
		t.Fatal("Terminated() false after quiescence")
	}
	if p.ActiveSlots() != 10 {
		t.Fatalf("ActiveSlots = %d, want 10", p.ActiveSlots())
	}
	// Stays quiet forever.
	for i := 0; i < 5; i++ {
		if p.Step(slot+i).Mode != radio.Quiet {
			t.Fatal("woke up after termination")
		}
	}
}

func TestSyncTerminatingDeliveryResetsIdle(t *testing.T) {
	inner, err := NewSyncUniform(channel.NewSet(0, 1), 2, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSyncTerminating(inner, 5)
	if err != nil {
		t.Fatal(err)
	}
	slot := 0
	for ; slot < 4; slot++ {
		p.Step(slot)
	}
	// New neighbor at the brink: idle counter resets.
	p.Deliver(radio.Message{From: 9, Avail: channel.NewSet(0)})
	for i := 0; i < 5; i++ {
		if p.Step(slot).Mode == radio.Quiet {
			t.Fatalf("terminated %d slots after a fresh discovery", i)
		}
		slot++
	}
	if p.Step(slot).Mode != radio.Quiet {
		t.Fatal("did not terminate after post-discovery idle limit")
	}
	// A repeat delivery from the same neighbor does not reset the counter.
	if p.Terminated() {
		p2inner, err := NewSyncUniform(channel.NewSet(0), 2, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		p2, err := NewSyncTerminating(p2inner, 3)
		if err != nil {
			t.Fatal(err)
		}
		p2.Deliver(radio.Message{From: 1, Avail: channel.NewSet(0)})
		p2.Step(0)
		p2.Deliver(radio.Message{From: 1, Avail: channel.NewSet(0)}) // repeat
		p2.Step(1)
		p2.Step(2)
		if p2.Step(3).Mode != radio.Quiet {
			t.Fatal("repeat delivery reset the idle counter")
		}
	}
}

func TestSyncTerminatingForwardsTable(t *testing.T) {
	inner, err := NewSyncStaged(channel.NewSet(0), 2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewSyncTerminating(inner, 3)
	if err != nil {
		t.Fatal(err)
	}
	p.Deliver(radio.Message{From: 4, Avail: channel.NewSet(0, 7)})
	common, ok := p.Neighbors().Common(4)
	if !ok || !common.Equal(channel.NewSet(0)) {
		t.Fatalf("table %v,%v", common, ok)
	}
}

func TestAsyncTerminatingLifecycle(t *testing.T) {
	inner, err := NewAsync(channel.NewSet(0), 2, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAsyncTerminating(nil, 5); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewAsyncTerminating(inner, 0); err == nil {
		t.Error("zero idle limit accepted")
	}
	p, err := NewAsyncTerminating(inner, 4)
	if err != nil {
		t.Fatal(err)
	}
	frame := 0
	for ; frame < 4; frame++ {
		if p.NextFrame(frame).Mode == radio.Quiet {
			t.Fatalf("terminated at frame %d", frame)
		}
	}
	if p.NextFrame(frame).Mode != radio.Quiet {
		t.Fatal("did not terminate")
	}
	if !p.Terminated() || p.ActiveFrames() != 4 {
		t.Fatalf("Terminated=%v ActiveFrames=%d", p.Terminated(), p.ActiveFrames())
	}
	p.Deliver(radio.Message{From: 2, Avail: channel.NewSet(0)})
	if !p.Neighbors().Has(2) {
		t.Fatal("delivery after termination not recorded")
	}
}
