package core

import (
	"m2hew/internal/channel"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
)

// SyncUniform is Algorithm 3: neighbor discovery for a synchronous system
// with variable start times and a known upper bound Δ_est on the maximum
// node degree.
//
// Every slot is identical: the node tunes to a uniformly random channel of
// A(u) and transmits with probability min(1/2, |A(u)|/Δ_est). Because the
// transmit probability never changes, the probability that a given link is
// covered in a slot is the same in every slot, which is what makes the
// algorithm insensitive to nodes joining at different times (the staged
// schedule of Algorithm 1 would lose its alignment). The price is a linear —
// rather than logarithmic — dependence on Δ_est, so the paper assumes the
// bound is "good" here.
type SyncUniform struct {
	node
	deltaEst int
	p        float64
}

// NewSyncUniform returns an Algorithm 3 instance.
func NewSyncUniform(avail channel.Set, deltaEst int, r *rng.Source) (*SyncUniform, error) {
	if err := validateDeltaEst(deltaEst); err != nil {
		return nil, err
	}
	n, err := newNode(avail, r)
	if err != nil {
		return nil, err
	}
	return &SyncUniform{
		node:     n,
		deltaEst: deltaEst,
		p:        TransmitProbUniform(avail.Size(), deltaEst),
	}, nil
}

// Step returns the node's action for any slot; the schedule is memoryless.
func (p *SyncUniform) Step(int) radio.Action {
	return p.chooseAction(p.p)
}

// Deliver records a clear message.
func (p *SyncUniform) Deliver(msg radio.Message) { p.deliver(msg) }

// Neighbors returns the node's discovery output.
func (p *SyncUniform) Neighbors() *NeighborTable { return p.table }

// TransmitProb returns the constant per-slot transmit probability.
func (p *SyncUniform) TransmitProb() float64 { return p.p }
