// Package diag is the opt-in live-diagnostics HTTP server: commands that
// run simulations (ndbench, ndperf, ndsim) expose their telemetry
// registry, run configuration, live trial progress and the standard Go
// profiling endpoints on a local address for the duration of the run.
//
// The package is a thin serving skeleton over seams that already exist —
// telemetry.Registry for /metrics, harness.Progress for /progress, expvar
// and net/http/pprof for the debug endpoints — and is the surface the
// planned nddserve daemon will mount its job API onto (ROADMAP open item
// 2). Attaching it never changes results: the server only reads snapshots,
// and the progress stream is fed with non-blocking sends, so a slow (or
// hostile) client can stall nothing.
//
// Endpoints:
//
//	/         index of the endpoints below (text)
//	/metrics  Prometheus text exposition of the telemetry registry
//	/runinfo  run configuration, seed and build info (JSON)
//	/progress NDJSON stream: one snapshot record, then live per-trial
//	          completion records until the client disconnects
//	/debug/vars   expvar JSON (includes registry metrics when published)
//	/debug/pprof  CPU, heap, goroutine, … profiles
package diag

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"time"

	"m2hew/internal/harness"
	"m2hew/internal/telemetry"
)

// RunInfo describes the run the server is attached to; served as JSON at
// /runinfo with build information appended.
type RunInfo struct {
	// Command is the serving command's name (ndbench, ndperf, ndsim).
	Command string `json:"command"`
	// Args are the command's arguments as invoked.
	Args []string `json:"args,omitempty"`
	// Seed is the run's root seed.
	Seed int64 `json:"seed"`
	// Scenario is the command-specific run configuration (experiment
	// selection, run config struct, …); any JSON-marshalable value.
	Scenario any `json:"scenario,omitempty"`
}

// runInfoPayload is the /runinfo response body.
type runInfoPayload struct {
	RunInfo
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Module    string `json:"module,omitempty"`
	BuildVCS  string `json:"vcs_revision,omitempty"`
}

// Config wires a server to a run's observability state. Every field is
// optional: a nil Registry serves an empty /metrics, a nil Progress
// serves a /progress stream that only ever reports an empty snapshot.
type Config struct {
	// Registry backs /metrics.
	Registry *telemetry.Registry
	// Progress backs /progress.
	Progress *harness.Progress
	// Info backs /runinfo.
	Info RunInfo
}

// Server is a running diagnostics server. Create one with Serve; shut it
// down with Close.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Handler builds the diagnostics mux for cfg — exported separately from
// Serve so nddserve (and tests) can mount it under their own server.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "m2hew diagnostics\n\n/metrics\n/runinfo\n/progress\n/debug/vars\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if cfg.Registry != nil {
			telemetry.WritePrometheus(w, cfg.Registry)
		}
	})
	mux.HandleFunc("/runinfo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(buildRunInfo(cfg.Info))
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		serveProgress(w, r, cfg.Progress)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// buildRunInfo appends build identification to the caller-supplied info.
func buildRunInfo(info RunInfo) runInfoPayload {
	p := runInfoPayload{
		RunInfo:   info,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		p.Module = bi.Main.Path
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				p.BuildVCS = s.Value
			}
		}
	}
	return p
}

// serveProgress streams NDJSON progress records: first the current
// snapshot (so a client connecting after the run finished still gets one
// record), then live per-trial completions, flushed per line, until the
// client disconnects.
func serveProgress(w http.ResponseWriter, r *http.Request, prog *harness.Progress) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if prog == nil {
		enc.Encode(harness.ProgressSnapshot{}.Record(0))
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	ch, cancel := prog.Subscribe(64)
	defer cancel()
	// Snapshot after subscribing: every completion is then visible either
	// in the snapshot or as a live record (records already counted when we
	// snapshot may also arrive live; Seq lets clients deduplicate).
	if err := enc.Encode(prog.Snapshot().Record(prog.Seq())); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case rec, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(rec); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// Serve starts a diagnostics server on addr (host:port; use port 0 for an
// ephemeral port and read the result from Addr). The server runs until
// Close.
func Serve(addr string, cfg Config) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("diag: listen %s: %w", addr, err)
	}
	s := &Server{
		lis: lis,
		srv: &http.Server{Handler: Handler(cfg), ReadHeaderTimeout: 10 * time.Second},
	}
	go s.srv.Serve(lis) //nolint:errcheck // Serve always returns ErrServerClosed after Close
	return s, nil
}

// Addr returns the server's listen address (useful with port 0).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the server down immediately, dropping open streams.
func (s *Server) Close() error { return s.srv.Close() }
