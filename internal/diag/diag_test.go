package diag

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"m2hew/internal/harness"
	"m2hew/internal/telemetry"
)

// get issues a request against the handler and returns status and body.
func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestIndexListsEndpoints(t *testing.T) {
	h := Handler(Config{})
	code, body := get(t, h, "/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, ep := range []string{"/metrics", "/runinfo", "/progress", "/debug/vars", "/debug/pprof/"} {
		if !strings.Contains(body, ep) {
			t.Errorf("index missing %s:\n%s", ep, body)
		}
	}
	if code, _ := get(t, h, "/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", code)
	}
}

func TestMetricsServesRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("nd_test_total", "a test counter").Add(7)
	code, body := get(t, Handler(Config{Registry: reg}), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "nd_test_total 7") {
		t.Errorf("exposition missing counter:\n%s", body)
	}
	// Nil registry: empty but well-formed response, not a panic.
	if code, body := get(t, Handler(Config{}), "/metrics"); code != http.StatusOK || strings.TrimSpace(body) != "" {
		t.Errorf("nil-registry /metrics = %d %q", code, body)
	}
}

func TestRunInfoCarriesScenarioAndBuild(t *testing.T) {
	h := Handler(Config{Info: RunInfo{
		Command:  "ndtest",
		Args:     []string{"-all"},
		Seed:     42,
		Scenario: map[string]any{"experiments": []string{"E1", "E4"}},
	}})
	code, body := get(t, h, "/runinfo")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var p struct {
		Command   string          `json:"command"`
		Args      []string        `json:"args"`
		Seed      int64           `json:"seed"`
		Scenario  json.RawMessage `json:"scenario"`
		GoVersion string          `json:"go_version"`
		GOOS      string          `json:"goos"`
	}
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("bad /runinfo JSON: %v\n%s", err, body)
	}
	if p.Command != "ndtest" || p.Seed != 42 || len(p.Args) != 1 {
		t.Errorf("payload = %+v", p)
	}
	if p.GoVersion == "" || p.GOOS == "" {
		t.Errorf("build info missing: %+v", p)
	}
	if !strings.Contains(string(p.Scenario), "E4") {
		t.Errorf("scenario not preserved: %s", p.Scenario)
	}
}

// TestProgressStreamNilProgress: a nil Progress still yields exactly one
// (empty) snapshot record so clients always see valid NDJSON.
func TestProgressStreamNilProgress(t *testing.T) {
	code, body := get(t, Handler(Config{}), "/progress")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var rec harness.ProgressRecord
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &rec); err != nil {
		t.Fatalf("bad record: %v\n%s", err, body)
	}
	if rec.Index != -1 {
		t.Errorf("snapshot record index = %d, want -1", rec.Index)
	}
}

// TestProgressStreamSnapshotThenLive runs the stream against a real server
// (the httptest.Recorder cannot exercise flushing/streaming): the first
// record is the snapshot of completions so far, then live records follow.
func TestProgressStreamSnapshotThenLive(t *testing.T) {
	prog := harness.NewProgress()
	prog.SetPhase("warmup")
	prog.ObserveBatch(3)
	prog.ObserveStart(0)
	prog.ObserveRun(0, 0, 0) // one trial already done before the client connects

	ts := httptest.NewServer(Handler(Config{Progress: prog}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no snapshot record: %v", sc.Err())
	}
	var snap harness.ProgressRecord
	if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Index != -1 || snap.Done != 1 || snap.Queued != 2 || snap.Phase != "warmup" {
		t.Errorf("snapshot = %+v, want index -1, done 1, queued 2, phase warmup", snap)
	}

	// A completion after the subscribe arrives as a live record.
	prog.ObserveStart(1)
	prog.ObserveRun(1, 0, 0)
	if !sc.Scan() {
		t.Fatalf("no live record: %v", sc.Err())
	}
	var live harness.ProgressRecord
	if err := json.Unmarshal(sc.Bytes(), &live); err != nil {
		t.Fatal(err)
	}
	if live.Index != 1 || live.Done != 2 {
		t.Errorf("live record = %+v, want index 1, done 2", live)
	}
}

func TestDebugEndpoints(t *testing.T) {
	h := Handler(Config{})
	if code, body := get(t, h, "/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars = %d", code)
	}
	if code, body := get(t, h, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

// TestServeLifecycle starts a real server on an ephemeral port and checks
// Addr/URL plus a live request, then Close.
func TestServeLifecycle(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Config{Info: RunInfo{Command: "t"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(srv.URL(), "http://127.0.0.1:") {
		t.Errorf("URL = %q", srv.URL())
	}
	resp, err := http.Get(srv.URL() + "/runinfo")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(srv.URL() + "/runinfo"); err == nil {
		t.Error("server still answering after Close")
	}
}
