// Package dynamics is the time-varying network substrate: it turns a static
// topology.Network into a schedule of per-epoch snapshots covering node
// churn (join/leave), random-waypoint mobility with geometric edge
// re-derivation, and primary-user spectrum dynamics that shrink and grow
// per-node usable channel sets mid-run.
//
// Time is divided into fixed-length epochs; every dynamic quantity is
// piecewise-constant per epoch. The engines map their own time axis onto
// epochs (slot index / EpochSlots for the synchronous engine, real time /
// EpochLen for the asynchronous ones) and swap reception structure at epoch
// boundaries, keeping the per-slot hot loops exactly as allocation-free as
// in static runs.
//
// Determinism: a World draws its entire schedule — join/leave epochs,
// waypoint itineraries, primary-user events — at construction, from the one
// rng.Source handed to NewWorld, in a fixed documented order. After
// construction a snapshot is a pure function of its epoch index: no rng is
// consumed when epochs are built, so runs remain a pure function of their
// seed and stay cacheable regardless of how an engine interleaves epoch
// queries with protocol draws.
package dynamics

import (
	"fmt"
	"math"

	"m2hew/internal/channel"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// Spec selects the dynamic behaviours of a run. Any subset of the three
// profiles may be active; a Spec with none is a legal (static) world, which
// the differential tests use to pin dynamic plumbing to static results.
type Spec struct {
	// EpochLen is the epoch length in the driving engine's native time
	// unit: slots for the synchronous engine (where it must be a positive
	// integer), real-time units for the asynchronous engines. Required > 0.
	EpochLen float64
	// Churn, if non-nil, activates node join/leave schedules.
	Churn *Churn
	// Mobility, if non-nil, activates random-waypoint motion with per-epoch
	// geometric edge re-derivation.
	Mobility *Mobility
	// Primary, if non-nil, activates primary-user spectrum dynamics.
	Primary *Primary
}

// Churn configures node join/leave schedules. Each node independently joins
// late with probability JoinFraction (uniformly within the first JoinWindow
// epochs; otherwise it is present from epoch 0) and leaves permanently with
// probability LeaveFraction (uniformly within LeaveWindow epochs after its
// join; otherwise it never leaves). A node is active in [join, leave).
type Churn struct {
	JoinFraction  float64
	JoinWindow    int
	LeaveFraction float64
	LeaveWindow   int
}

// Mobility configures random-waypoint motion over the unit square: each
// node starts at its base-network position, repeatedly draws a uniform
// waypoint, travels toward it at Speed (unit-square side lengths per
// epoch), and pauses Pause epochs on arrival. Positions are sampled at
// epoch starts; edges are re-derived per epoch from the sampled positions
// with communication radius Radius via the same grid-bucket scan
// topology.Geometric uses.
type Mobility struct {
	Speed  float64
	Radius float64
	Pause  int
}

// Primary configures primary-user dynamics: Events license holders appear
// at uniform positions and epochs over the horizon, each occupying one
// uniformly drawn channel of the base network's universe for Duration
// epochs. While a primary is active, every node within Radius of it must
// vacate the channel: the channel leaves the node's usable set, shrinking
// incident link spans (and returns when the primary vanishes).
type Primary struct {
	Events   int
	Duration int
	Radius   float64
}

func (s *Spec) validate() error {
	if s.EpochLen <= 0 {
		return fmt.Errorf("dynamics: epoch length %v must be positive", s.EpochLen)
	}
	if c := s.Churn; c != nil {
		if c.JoinFraction < 0 || c.JoinFraction > 1 || c.LeaveFraction < 0 || c.LeaveFraction > 1 {
			return fmt.Errorf("dynamics: churn fractions (%v join, %v leave) outside [0,1]", c.JoinFraction, c.LeaveFraction)
		}
		if c.JoinFraction > 0 && c.JoinWindow <= 0 {
			return fmt.Errorf("dynamics: join window %d must be positive when joins are active", c.JoinWindow)
		}
		if c.LeaveFraction > 0 && c.LeaveWindow <= 0 {
			return fmt.Errorf("dynamics: leave window %d must be positive when leaves are active", c.LeaveWindow)
		}
	}
	if m := s.Mobility; m != nil {
		if m.Speed <= 0 {
			return fmt.Errorf("dynamics: mobility speed %v must be positive", m.Speed)
		}
		if m.Radius <= 0 {
			return fmt.Errorf("dynamics: mobility radius %v must be positive", m.Radius)
		}
		if m.Pause < 0 {
			return fmt.Errorf("dynamics: mobility pause %d is negative", m.Pause)
		}
	}
	if p := s.Primary; p != nil {
		if p.Events <= 0 {
			return fmt.Errorf("dynamics: primary events %d must be positive", p.Events)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("dynamics: primary duration %d must be positive", p.Duration)
		}
		if p.Radius < 0 {
			return fmt.Errorf("dynamics: primary radius %v is negative", p.Radius)
		}
	}
	return nil
}

// ChannelLoss records one node losing one channel to a primary user at an
// epoch boundary.
type ChannelLoss struct {
	Node    topology.NodeID
	Channel channel.ID
}

// Epoch is one immutable snapshot of the world: who is active, what each
// node's reception structure looks like, and what changed at this boundary.
// Snapshots for unchanged epochs share their tables with the previous
// epoch, so long quiet stretches cost no memory or rebuild work.
type Epoch struct {
	// Index is the epoch number, starting at 0.
	Index int
	// Active reports per node whether it participates this epoch. Inactive
	// nodes make no protocol decisions and appear on no link.
	Active []bool
	// Blocked holds per node the channels currently occupied by a primary
	// user at the node's position; nil when no primary is active. Blocked
	// channels are already subtracted from every span in Cands.
	Blocked []channel.Set
	// Joined and Left list the nodes whose activity flipped at this epoch
	// boundary, ascending. Both are empty at epoch 0 (initial presence is
	// state, not an event).
	Joined, Left []topology.NodeID
	// Losses lists the (node, channel) pairs newly blocked at this epoch,
	// ascending by node then channel. Channels returning to service are
	// reflected in Cands/Blocked but carry no event.
	Losses []ChannelLoss
	// Cands is the inbound-candidate table of this epoch's graph, in the
	// ascending-From order topology.InboundCandidates guarantees; spans
	// already exclude blocked channels and inactive endpoints.
	Cands [][]topology.Candidate
	// Links is this epoch's discoverable directed link set, ascending by
	// (From, To) — what a coverage target grows by when the epoch begins.
	Links []topology.Link
	// Quiescent reports that no structural change happens at any later
	// epoch: an engine that has reached full coverage may stop early.
	// Always false while mobility is active.
	Quiescent bool
}

// leg is one straight-line segment (or pause) of a node's waypoint
// itinerary, covering epoch-time [t0, t1].
type leg struct {
	t0, t1         float64
	x0, y0, x1, y1 float64
}

// primaryEvent is one scheduled primary-user appearance.
type primaryEvent struct {
	ch         channel.ID
	x, y       float64
	start, end int // active during epochs [start, end)
}

// World is the precomputed dynamic schedule over a base network plus a memo
// of built epoch snapshots. A World belongs to one run at a time: At
// memoizes lazily, so concurrent use from several goroutines would race.
// Trial harnesses build one World per trial.
type World struct {
	spec    Spec
	base    *topology.Network
	n       int
	horizon int

	join, leave []int // per node; leave == horizon+1 when the node never leaves
	paths       [][]leg
	primaries   []primaryEvent

	lastChange int // latest epoch with a structural change (0 when none)

	baseCands [][]topology.Candidate // base network's candidate table (filter path)
	allActive []bool                 // shared all-true Active for churn-free worlds
	nodesBuf  []topology.Node        // mobility rebuild buffer: positions updated per epoch

	epochs []*Epoch // memo, built sequentially from epoch 0
}

// NewWorld draws the full dynamic schedule for horizon epochs over base
// from r and returns the world. The draw order is fixed and documented —
// churn (per node ascending: join Bernoulli, join epoch, leave Bernoulli,
// leave epoch), then mobility itineraries (per node ascending, waypoints in
// travel order), then primary events (channel, x, y, start epoch each) — so
// a seeded world is reproducible byte-for-byte. r is consumed only during
// this call; epoch snapshots never draw.
func NewWorld(base *topology.Network, spec Spec, horizon int, r *rng.Source) (*World, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if base == nil {
		return nil, fmt.Errorf("dynamics: world needs a base network")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("dynamics: horizon %d epochs must be positive", horizon)
	}
	if r == nil {
		return nil, fmt.Errorf("dynamics: world needs a random source")
	}
	w := &World{spec: spec, base: base, n: base.N(), horizon: horizon}
	w.drawChurn(r)
	w.drawMobility(r)
	w.drawPrimaries(r)
	w.computeLastChange()
	if spec.Churn == nil {
		w.allActive = make([]bool, w.n)
		for u := range w.allActive {
			w.allActive[u] = true
		}
	}
	if spec.Mobility != nil {
		w.nodesBuf = base.Nodes()
	} else {
		w.baseCands = base.InboundCandidates()
	}
	return w, nil
}

func (w *World) drawChurn(r *rng.Source) {
	c := w.spec.Churn
	if c == nil {
		return
	}
	w.join = make([]int, w.n)
	w.leave = make([]int, w.n)
	for u := 0; u < w.n; u++ {
		join := 0
		if c.JoinFraction > 0 && r.Bernoulli(c.JoinFraction) {
			join = 1 + r.IntN(c.JoinWindow)
		}
		leave := w.horizon + 1
		if c.LeaveFraction > 0 && r.Bernoulli(c.LeaveFraction) {
			leave = join + 1 + r.IntN(c.LeaveWindow)
		}
		w.join[u] = join
		w.leave[u] = leave
	}
}

func (w *World) drawMobility(r *rng.Source) {
	m := w.spec.Mobility
	if m == nil {
		return
	}
	w.paths = make([][]leg, w.n)
	end := float64(w.horizon)
	for u := 0; u < w.n; u++ {
		node := w.base.Node(topology.NodeID(u))
		x, y := node.X, node.Y
		t := 0.0
		var legs []leg
		for t < end {
			wx, wy := r.Float64(), r.Float64()
			dur := math.Hypot(wx-x, wy-y) / m.Speed
			if dur < 1e-9 {
				dur = 1e-9 // a coincident waypoint must still advance time
			}
			legs = append(legs, leg{t0: t, t1: t + dur, x0: x, y0: y, x1: wx, y1: wy})
			t += dur
			x, y = wx, wy
			if m.Pause > 0 && t < end {
				pt := t + float64(m.Pause)
				legs = append(legs, leg{t0: t, t1: pt, x0: x, y0: y, x1: x, y1: y})
				t = pt
			}
		}
		w.paths[u] = legs
	}
}

func (w *World) drawPrimaries(r *rng.Source) {
	p := w.spec.Primary
	if p == nil {
		return
	}
	ids := w.base.Universe().IDs()
	if len(ids) == 0 {
		return
	}
	w.primaries = make([]primaryEvent, p.Events)
	for k := range w.primaries {
		w.primaries[k] = primaryEvent{
			ch:    ids[r.IntN(len(ids))],
			x:     r.Float64(),
			y:     r.Float64(),
			start: r.IntN(w.horizon),
		}
		w.primaries[k].end = w.primaries[k].start + p.Duration
	}
}

func (w *World) computeLastChange() {
	last := 0
	for u := range w.join {
		if w.join[u] > last {
			last = w.join[u]
		}
		if w.leave[u] <= w.horizon && w.leave[u] > last {
			last = w.leave[u]
		}
	}
	for _, p := range w.primaries {
		if p.start > last {
			last = p.start
		}
		if end := min(p.end, w.horizon); end > last {
			last = end
		}
	}
	w.lastChange = last
}

// Horizon returns the number of scheduled epochs. Queries beyond it clamp
// to the final epoch, whose state persists.
func (w *World) Horizon() int { return w.horizon }

// N returns the node count of the base network.
func (w *World) N() int { return w.n }

// EpochLen returns the epoch length in the driving engine's time unit.
func (w *World) EpochLen() float64 { return w.spec.EpochLen }

// EpochSlots returns the epoch length as a whole number of synchronous
// slots, or an error when the spec's EpochLen is not a positive integer
// (the synchronous engine advances epochs on slot boundaries).
func (w *World) EpochSlots() (int, error) {
	slots := int(w.spec.EpochLen)
	if float64(slots) != w.spec.EpochLen || slots <= 0 {
		return 0, fmt.Errorf("dynamics: epoch length %v is not a positive whole number of slots", w.spec.EpochLen)
	}
	return slots, nil
}

// EpochOf maps a real time to its epoch index, clamped to the scheduled
// horizon. The asynchronous engines sample topology with it at each
// listening frame's start.
func (w *World) EpochOf(t float64) int {
	if t <= 0 {
		return 0
	}
	e := int(t / w.spec.EpochLen)
	if e >= w.horizon {
		e = w.horizon - 1
	}
	return e
}

// At returns the epoch-e snapshot, building (and memoizing) snapshots in
// epoch order up to e. e is clamped to [0, Horizon−1]. The returned
// snapshot is immutable; its tables may be shared with neighboring epochs.
func (w *World) At(e int) *Epoch {
	if e < 0 {
		e = 0
	}
	if e >= w.horizon {
		e = w.horizon - 1
	}
	for len(w.epochs) <= e {
		w.epochs = append(w.epochs, w.build(len(w.epochs)))
	}
	return w.epochs[e]
}

// build constructs the epoch-e snapshot. Epochs are built strictly in
// order, so the previous snapshot is available for structural sharing and
// for the loss delta. No rng is consumed here — the whole schedule was
// drawn at construction — so building is a pure function of e.
func (w *World) build(e int) *Epoch {
	var prev *Epoch
	if e > 0 {
		prev = w.epochs[e-1]
	}
	ep := &Epoch{Index: e}

	// Activity. Flip lists stay empty at epoch 0: initial presence is
	// state, not an event.
	if w.join == nil {
		ep.Active = w.allActive
	} else {
		if prev != nil {
			for u := 0; u < w.n; u++ {
				if w.join[u] == e {
					ep.Joined = append(ep.Joined, topology.NodeID(u))
				}
				if w.leave[u] == e {
					ep.Left = append(ep.Left, topology.NodeID(u))
				}
			}
		}
		if prev != nil && len(ep.Joined) == 0 && len(ep.Left) == 0 {
			ep.Active = prev.Active
		} else {
			active := make([]bool, w.n)
			for u := 0; u < w.n; u++ {
				active[u] = w.join[u] <= e && e < w.leave[u]
			}
			ep.Active = active
		}
	}

	// Spectrum occupancy. Blocked sets depend on node positions, so with
	// mobility they are recomputed every epoch; otherwise only when a
	// primary event starts or ends.
	puChanged := false
	for _, p := range w.primaries {
		if p.start == e || p.end == e {
			puChanged = true
			break
		}
	}
	if len(w.primaries) > 0 {
		if prev != nil && !puChanged && w.spec.Mobility == nil {
			ep.Blocked = prev.Blocked
		} else {
			ep.Blocked = w.blockedAt(e)
			var prevBlocked []channel.Set
			if prev != nil {
				prevBlocked = prev.Blocked
			}
			ep.Losses = lossDelta(ep.Blocked, prevBlocked)
		}
	}

	// Reception structure: rebuilt when anything above moved, shared with
	// the previous epoch otherwise.
	structChanged := prev == nil || w.spec.Mobility != nil ||
		len(ep.Joined) > 0 || len(ep.Left) > 0 || puChanged
	switch {
	case !structChanged:
		ep.Cands, ep.Links = prev.Cands, prev.Links
	case w.spec.Mobility != nil:
		for u := range w.nodesBuf {
			w.nodesBuf[u].X, w.nodesBuf[u].Y = w.positionAt(u, float64(e))
		}
		ep.Cands, ep.Links = topology.DeriveGeometricCandidates(w.nodesBuf, w.spec.Mobility.Radius, ep.Active, ep.Blocked)
	default:
		ep.Cands, ep.Links = w.filterBase(ep.Active, ep.Blocked)
	}

	ep.Quiescent = w.spec.Mobility == nil && e >= w.lastChange
	return ep
}

// positionAt evaluates node u's itinerary at epoch-time t by linear
// interpolation along the containing leg.
func (w *World) positionAt(u int, t float64) (float64, float64) {
	legs := w.paths[u]
	if len(legs) == 0 {
		node := w.base.Node(topology.NodeID(u))
		return node.X, node.Y
	}
	// Binary search: last leg with t0 <= t.
	lo, hi := 0, len(legs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if legs[mid].t0 <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	idx := lo - 1
	if idx < 0 {
		idx = 0
	}
	l := legs[idx]
	if t >= l.t1 {
		return l.x1, l.y1
	}
	if t <= l.t0 {
		return l.x0, l.y0
	}
	frac := (t - l.t0) / (l.t1 - l.t0)
	return l.x0 + frac*(l.x1-l.x0), l.y0 + frac*(l.y1-l.y0)
}

// blockedAt computes the per-node blocked channel sets at epoch e from the
// primaries active then and the node positions sampled at the epoch start.
func (w *World) blockedAt(e int) []channel.Set {
	var blocked []channel.Set
	radius := w.spec.Primary.Radius
	for _, p := range w.primaries {
		if e < p.start || e >= p.end {
			continue
		}
		for u := 0; u < w.n; u++ {
			var x, y float64
			if w.spec.Mobility != nil {
				x, y = w.positionAt(u, float64(e))
			} else {
				node := w.base.Node(topology.NodeID(u))
				x, y = node.X, node.Y
			}
			if math.Hypot(x-p.x, y-p.y) > radius {
				continue
			}
			if blocked == nil {
				blocked = make([]channel.Set, w.n)
			}
			blocked[u].Add(p.ch)
		}
	}
	return blocked
}

// lossDelta lists the (node, channel) pairs blocked now but not before,
// ascending by node then channel.
func lossDelta(now, before []channel.Set) []ChannelLoss {
	if now == nil {
		return nil
	}
	var losses []ChannelLoss
	for u := range now {
		fresh := now[u]
		if before != nil && !before[u].IsEmpty() {
			fresh = fresh.Minus(before[u])
		}
		for _, c := range fresh.IDs() {
			losses = append(losses, ChannelLoss{Node: topology.NodeID(u), Channel: c})
		}
	}
	return losses
}

// filterBase derives the epoch's reception structure from the base
// network's candidate table (churn and primary-user dynamics on a fixed
// graph): inactive endpoints drop out, blocked channels are subtracted
// from spans, and links whose span empties vanish. Asymmetric drops and
// span overrides of the base network are preserved — the base table
// already reflects them. Spans untouched by blocking share storage with
// the base table (read-only by the Candidate contract).
func (w *World) filterBase(active []bool, blocked []channel.Set) ([][]topology.Candidate, []topology.Link) {
	cands := make([][]topology.Candidate, w.n)
	var links []topology.Link
	for u := 0; u < w.n; u++ {
		if !active[u] {
			continue
		}
		for _, cand := range w.baseCands[u] {
			if !active[cand.From] {
				continue
			}
			span := cand.Span
			if blocked != nil {
				if !blocked[u].IsEmpty() {
					span = span.Minus(blocked[u])
				}
				if !blocked[cand.From].IsEmpty() {
					span = span.Minus(blocked[cand.From])
				}
			}
			if span.IsEmpty() {
				continue
			}
			cands[u] = append(cands[u], topology.Candidate{From: cand.From, Span: span})
			links = append(links, topology.Link{From: cand.From, To: topology.NodeID(u)})
		}
	}
	topology.SortLinks(links)
	return cands, links
}
