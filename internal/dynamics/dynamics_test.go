package dynamics

import (
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

func testNet(t testing.TB, seed uint64, n int) *topology.Network {
	t.Helper()
	r := rng.New(seed)
	nw, err := topology.GeometricConnected(n, 0.5, r, 100)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	if err := topology.AssignBernoulli(nw, 6, 0.7, r); err != nil {
		t.Fatalf("channels: %v", err)
	}
	return nw
}

func TestSpecValidation(t *testing.T) {
	nw := testNet(t, 1, 8)
	bad := map[string]Spec{
		"zero epoch":       {},
		"negative epoch":   {EpochLen: -1},
		"join frac":        {EpochLen: 1, Churn: &Churn{JoinFraction: 1.5}},
		"leave frac":       {EpochLen: 1, Churn: &Churn{LeaveFraction: -0.1}},
		"join window":      {EpochLen: 1, Churn: &Churn{JoinFraction: 0.5}},
		"leave window":     {EpochLen: 1, Churn: &Churn{LeaveFraction: 0.5}},
		"mobility speed":   {EpochLen: 1, Mobility: &Mobility{Radius: 0.3}},
		"mobility radius":  {EpochLen: 1, Mobility: &Mobility{Speed: 0.1}},
		"mobility pause":   {EpochLen: 1, Mobility: &Mobility{Speed: 0.1, Radius: 0.3, Pause: -1}},
		"primary events":   {EpochLen: 1, Primary: &Primary{Duration: 1}},
		"primary duration": {EpochLen: 1, Primary: &Primary{Events: 1}},
		"primary radius":   {EpochLen: 1, Primary: &Primary{Events: 1, Duration: 1, Radius: -0.1}},
	}
	for name, spec := range bad {
		if _, err := NewWorld(nw, spec, 10, rng.New(2)); err == nil {
			t.Errorf("%s: invalid spec accepted", name)
		}
	}
	if _, err := NewWorld(nil, Spec{EpochLen: 1}, 10, rng.New(2)); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewWorld(nw, Spec{EpochLen: 1}, 0, rng.New(2)); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewWorld(nw, Spec{EpochLen: 1}, 10, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestEpochMapping(t *testing.T) {
	nw := testNet(t, 1, 8)
	w, err := NewWorld(nw, Spec{EpochLen: 50}, 10, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.EpochSlots(); err == nil {
		// 50 is whole, so EpochSlots must succeed.
		if s, _ := w.EpochSlots(); s != 50 {
			t.Fatalf("EpochSlots = %d, want 50", s)
		}
	} else {
		t.Fatalf("EpochSlots: %v", err)
	}
	for _, tc := range []struct {
		t    float64
		want int
	}{{-1, 0}, {0, 0}, {49.9, 0}, {50, 1}, {260, 5}, {1e9, 9}} {
		if got := w.EpochOf(tc.t); got != tc.want {
			t.Errorf("EpochOf(%v) = %d, want %d", tc.t, got, tc.want)
		}
	}
	frac, err := NewWorld(nw, Spec{EpochLen: 2.5}, 10, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := frac.EpochSlots(); err == nil {
		t.Error("fractional EpochSlots accepted")
	}
	// At clamps out-of-range queries.
	if w.At(-5).Index != 0 || w.At(99).Index != 9 {
		t.Error("At does not clamp to [0, horizon)")
	}
}

func TestStaticWorldMatchesBase(t *testing.T) {
	nw := testNet(t, 2, 10)
	w, err := NewWorld(nw, Spec{EpochLen: 100}, 8, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	base := nw.InboundCandidates()
	links := nw.DiscoverableLinks()
	for e := 0; e < 8; e++ {
		ep := w.At(e)
		if !ep.Quiescent {
			t.Fatalf("epoch %d of a static world not quiescent", e)
		}
		if len(ep.Joined)+len(ep.Left)+len(ep.Losses) != 0 {
			t.Fatalf("epoch %d of a static world has change events", e)
		}
		if len(ep.Links) != len(links) {
			t.Fatalf("epoch %d: %d links, want %d", e, len(ep.Links), len(links))
		}
		for i, l := range links {
			if ep.Links[i] != l {
				t.Fatalf("epoch %d link %d: %v != %v", e, i, ep.Links[i], l)
			}
		}
		for u := range base {
			if len(ep.Cands[u]) != len(base[u]) {
				t.Fatalf("epoch %d node %d: %d candidates, want %d", e, u, len(ep.Cands[u]), len(base[u]))
			}
		}
	}
	// Unchanged epochs share tables with their predecessor.
	if &w.At(1).Cands[0] != &w.At(5).Cands[0] {
		t.Error("quiet epochs do not share candidate tables")
	}
}

func TestChurnActivity(t *testing.T) {
	nw := testNet(t, 3, 20)
	const horizon = 30
	w, err := NewWorld(nw, Spec{
		EpochLen: 10,
		Churn:    &Churn{JoinFraction: 0.6, JoinWindow: 10, LeaveFraction: 0.5, LeaveWindow: 12},
	}, horizon, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	ep0 := w.At(0)
	if len(ep0.Joined)+len(ep0.Left) != 0 {
		t.Fatal("epoch 0 carries flip events; initial presence is state, not an event")
	}
	// Replaying the flip lists from epoch 0's activity must reproduce each
	// epoch's Active set, and flips must be consistent: a node joins at
	// most once, leaves at most once, and leaves only after joining.
	active := make([]bool, nw.N())
	copy(active, ep0.Active)
	joined := make(map[topology.NodeID]bool)
	left := make(map[topology.NodeID]bool)
	anyChurn := false
	for e := 1; e < horizon; e++ {
		ep := w.At(e)
		for _, u := range ep.Joined {
			if active[u] || joined[u] {
				t.Fatalf("epoch %d: node %d joins twice", e, u)
			}
			active[u], joined[u], anyChurn = true, true, true
		}
		for _, u := range ep.Left {
			if !active[u] || left[u] {
				t.Fatalf("epoch %d: node %d leaves while inactive", e, u)
			}
			active[u], left[u], anyChurn = false, true, true
		}
		for u := range active {
			if active[u] != ep.Active[u] {
				t.Fatalf("epoch %d node %d: flip replay says active=%v, snapshot says %v", e, u, active[u], ep.Active[u])
			}
		}
		// Inactive nodes appear in no candidate row and on no link.
		for u := range ep.Cands {
			for _, cand := range ep.Cands[u] {
				if !ep.Active[u] || !ep.Active[cand.From] {
					t.Fatalf("epoch %d: candidate %d->%d has inactive endpoint", e, cand.From, u)
				}
			}
		}
		for _, l := range ep.Links {
			if !ep.Active[l.From] || !ep.Active[l.To] {
				t.Fatalf("epoch %d: link %v has inactive endpoint", e, l)
			}
		}
	}
	if !anyChurn {
		t.Fatal("churn schedule produced no flips; test fixture too weak")
	}
	if !w.At(horizon - 1).Quiescent {
		t.Fatal("final epoch of a churn-only world not quiescent")
	}
}

func TestPrimaryBlocking(t *testing.T) {
	nw := testNet(t, 6, 12)
	const horizon = 20
	// Radius 2 covers the whole unit square: every active primary blocks
	// its channel at every node.
	w, err := NewWorld(nw, Spec{
		EpochLen: 10,
		Primary:  &Primary{Events: 1, Duration: 4, Radius: 2},
	}, horizon, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var (
		lossEpoch = -1
		lostCh    channel.ID
	)
	for e := 0; e < horizon; e++ {
		ep := w.At(e)
		if len(ep.Losses) > 0 {
			lossEpoch, lostCh = e, ep.Losses[0].Channel
			// Losses are ascending by node then channel.
			for i := 1; i < len(ep.Losses); i++ {
				a, b := ep.Losses[i-1], ep.Losses[i]
				if a.Node > b.Node || (a.Node == b.Node && a.Channel >= b.Channel) {
					t.Fatalf("epoch %d: losses out of order at %d", e, i)
				}
			}
			break
		}
	}
	if lossEpoch < 0 {
		t.Fatal("primary event produced no channel losses")
	}
	// While blocked, no span anywhere contains the lost channel; after the
	// primary leaves, the base spans return.
	for e := lossEpoch; e < lossEpoch+4 && e < horizon; e++ {
		ep := w.At(e)
		for u := range ep.Cands {
			for _, cand := range ep.Cands[u] {
				if cand.Span.Contains(lostCh) {
					t.Fatalf("epoch %d: span %d->%d still contains blocked channel %d", e, cand.From, u, lostCh)
				}
			}
		}
	}
	if after := lossEpoch + 4; after < horizon {
		ep := w.At(after)
		found := false
		for u := range ep.Cands {
			for _, cand := range ep.Cands[u] {
				if cand.Span.Contains(lostCh) {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("channel %d did not return after the primary left", lostCh)
		}
		if len(ep.Losses) != 0 {
			t.Fatal("channel return reported as a loss event")
		}
	}
}

func TestMobilityRederivation(t *testing.T) {
	nw := testNet(t, 8, 16)
	const horizon = 12
	w, err := NewWorld(nw, Spec{
		EpochLen: 25,
		Mobility: &Mobility{Speed: 0.08, Radius: 0.5, Pause: 1},
	}, horizon, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	var prev *Epoch
	for e := 0; e < horizon; e++ {
		ep := w.At(e)
		if ep.Quiescent {
			t.Fatalf("epoch %d quiescent while mobility is active", e)
		}
		// Links ascending by (From, To); candidate rows ascending by From.
		for i := 1; i < len(ep.Links); i++ {
			a, b := ep.Links[i-1], ep.Links[i]
			if a.From > b.From || (a.From == b.From && a.To >= b.To) {
				t.Fatalf("epoch %d: links out of order at %d: %v, %v", e, i, a, b)
			}
		}
		for u := range ep.Cands {
			for i := 1; i < len(ep.Cands[u]); i++ {
				if ep.Cands[u][i-1].From >= ep.Cands[u][i].From {
					t.Fatalf("epoch %d node %d: candidates out of order", e, u)
				}
			}
			// Spans stay inside the endpoints' static availability.
			for _, cand := range ep.Cands[u] {
				inter := nw.Avail(topology.NodeID(u)).Intersect(nw.Avail(cand.From))
				if !cand.Span.Minus(inter).IsEmpty() {
					t.Fatalf("epoch %d: span %d->%d exceeds availability intersection", e, cand.From, u)
				}
			}
		}
		if prev != nil && len(ep.Links) != len(prev.Links) {
			changed = true
		}
		prev = ep
	}
	if !changed {
		t.Fatal("mobility never changed the link set; fixture too slow or radius too large")
	}
}

func TestWorldDeterminism(t *testing.T) {
	nw := testNet(t, 10, 14)
	spec := Spec{
		EpochLen: 20,
		Churn:    &Churn{JoinFraction: 0.4, JoinWindow: 8, LeaveFraction: 0.3, LeaveWindow: 10},
		Mobility: &Mobility{Speed: 0.05, Radius: 0.5, Pause: 1},
		Primary:  &Primary{Events: 3, Duration: 4, Radius: 0.4},
	}
	const horizon = 16
	a, err := NewWorld(nw, spec, horizon, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorld(nw, spec, horizon, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < horizon; e++ {
		ea, eb := a.At(e), b.At(e)
		if len(ea.Links) != len(eb.Links) {
			t.Fatalf("epoch %d: %d vs %d links", e, len(ea.Links), len(eb.Links))
		}
		for i := range ea.Links {
			if ea.Links[i] != eb.Links[i] {
				t.Fatalf("epoch %d link %d: %v vs %v", e, i, ea.Links[i], eb.Links[i])
			}
		}
		for u := range ea.Cands {
			if len(ea.Cands[u]) != len(eb.Cands[u]) {
				t.Fatalf("epoch %d node %d: candidate counts differ", e, u)
			}
			for i := range ea.Cands[u] {
				ca, cb := ea.Cands[u][i], eb.Cands[u][i]
				if ca.From != cb.From || !ca.Span.Minus(cb.Span).IsEmpty() || !cb.Span.Minus(ca.Span).IsEmpty() {
					t.Fatalf("epoch %d node %d candidate %d differs", e, u, i)
				}
			}
		}
	}
}

// BenchmarkEpochRebuild measures the per-epoch cost of the mobility path —
// position sampling plus the grid-bucket edge re-derivation — the price a
// dynamic run pays at every epoch boundary.
func BenchmarkEpochRebuild(b *testing.B) {
	nw := testNet(b, 11, 100)
	spec := Spec{
		EpochLen: 25,
		Mobility: &Mobility{Speed: 0.05, Radius: 0.25, Pause: 1},
	}
	const horizon = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		w, err := NewWorld(nw, spec, horizon, rng.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		w.At(horizon - 1) // builds all epochs sequentially
	}
}
