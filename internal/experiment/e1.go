package experiment

import (
	"fmt"

	"m2hew/internal/analytic"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E1 reproduces Theorem 1: Algorithm 1 (synchronous, identical start times,
// known degree bound) discovers all neighbors within
// M = (16·max(S,Δ)/ρ)·ln(N²/ε) stages with probability ≥ 1−ε.
//
// For each network size, cognitive-radio networks are generated (geometric
// graph + primary-user channel exclusion), Algorithm 1 is run to completion,
// and the distribution of completion stages is compared to M. The paper's
// claim holds if the fraction of trials within M is ≥ 1−ε; because M is a
// union-bound artifact it is very conservative, so measured completions sit
// far below it — that gap is the expected shape, not an anomaly.
func E1(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	sizes := []int{10, 20, 40, 60}
	if opts.Quick {
		sizes = []int{10, 16}
	}
	table := &Table{
		ID:    "E1",
		Title: "Theorem 1: Algorithm 1 completion vs M-stage bound",
		Note: fmt.Sprintf("stages; bound M = 16·max(S,Δ)/ρ·ln(N²/ε), ε=%.2g; CR networks (geometric + primary users)",
			opts.Eps),
		Columns: []string{"S", "Δ", "ρ", "M bound", "mean", "p95", "max", "≤bound"},
	}
	root := rng.New(opts.Seed)
	for _, n := range sizes {
		nw, params, err := crNetwork(n, 10, 12, root.Split())
		if err != nil {
			return nil, fmt.Errorf("E1 N=%d: %w", n, err)
		}
		deltaEst := nextPow2(params.Delta)
		sc := analytic.Scenario{
			N: params.N, S: params.S, Delta: params.Delta,
			DeltaEst: deltaEst, Rho: params.Rho, Eps: opts.Eps,
		}
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("E1 N=%d: %w", n, err)
		}
		stageLen := core.StageLen(deltaEst)
		boundStages := sc.M1Stages()
		maxSlots := int(boundStages)*stageLen + stageLen
		factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
			return core.NewSyncStaged(nw.Avail(u), deltaEst, r)
		}
		results, err := harness.SyncTrials(nw, factory, nil, maxSlots, opts.Trials, root)
		if err != nil {
			return nil, fmt.Errorf("E1 N=%d: %w", n, err)
		}
		slots, _ := harness.CompletionSlots(results)
		stages := make([]float64, len(slots))
		for i, s := range slots {
			stages[i] = s / float64(stageLen)
		}
		sum := metrics.Summarize(stages)
		within := metrics.FractionWithin(stages, boundStages) *
			float64(len(stages)) / float64(opts.Trials) // incompletes count as failures
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("N=%d", n),
			Values: []float64{
				float64(params.S), float64(params.Delta), params.Rho,
				boundStages, sum.Mean, sum.P95, sum.Max, within,
			},
		})
	}
	return table, nil
}
