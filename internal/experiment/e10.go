package experiment

import (
	"fmt"

	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E10 ablates Algorithm 4's frame division. The paper splits each frame into
// exactly 3 slots and transmits with probability min(1/2, |A|/(3·Δ_est));
// the 3 is what makes Lemma 4 (overlap ≤ 3) and Lemma 7 (aligned pair among
// two consecutive frames) go through at δ ≤ 1/7. This experiment runs the
// generalized protocol with k ∈ {1, 2, 3, 4, 6} slots per frame on drifting,
// offset clocks.
//
// Expected shape: k = 1 collapses — a transmission spans the whole frame, so
// a misaligned listener never hears a complete copy and most trials fail;
// k = 2 works only marginally under drift (the Lemma 7 geometry needs 3);
// k ≥ 3 completes reliably, with diminishing or negative returns beyond 3
// because the per-frame transmit probability (and so the duty cycle) falls
// as 1/k while alignment is already guaranteed.
func E10(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	ks := []int{1, 2, 3, 4, 6}
	if opts.Quick {
		ks = []int{1, 3}
	}
	n := 6
	maxFrames := 3000
	table := &Table{
		ID:    "E10",
		Title: "Ablation: slots per frame (paper uses 3)",
		Note: fmt.Sprintf("ring N=%d, homogeneous S=2, random-walk drift δ=1/7, random offsets; %d trials, horizon %d frames",
			n, opts.Trials, maxFrames),
		Columns: []string{"mean time", "p95 time", "complete rate"},
	}
	root := rng.New(opts.Seed)
	nw, err := topology.Ring(n)
	if err != nil {
		return nil, fmt.Errorf("E10: %w", err)
	}
	if err := topology.AssignHomogeneous(nw, 2); err != nil {
		return nil, fmt.Errorf("E10: %w", err)
	}
	params := nw.ComputeParams()
	deltaEst := nextPow2(params.Delta)
	for _, k := range ks {
		cfgs := make([]sim.AsyncConfig, 0, opts.Trials)
		for trial := 0; trial < opts.Trials; trial++ {
			nodes := make([]sim.AsyncNode, nw.N())
			for u := 0; u < nw.N(); u++ {
				proto, err := core.NewAsyncSlots(nw.Avail(topology.NodeID(u)), deltaEst, k, root.Split())
				if err != nil {
					return nil, fmt.Errorf("E10 k=%d: %w", k, err)
				}
				drift, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.03, root.Split())
				if err != nil {
					return nil, fmt.Errorf("E10: %w", err)
				}
				nodes[u] = sim.AsyncNode{
					Protocol: proto,
					Start:    root.Float64() * 5 * e4FrameLen,
					Drift:    drift,
				}
			}
			cfgs = append(cfgs, sim.AsyncConfig{
				Network:       nw,
				Nodes:         nodes,
				FrameLen:      e4FrameLen,
				SlotsPerFrame: k,
				MaxFrames:     maxFrames,
			})
		}
		results, err := harness.AsyncConfigs(cfgs)
		if err != nil {
			return nil, fmt.Errorf("E10 k=%d: %w", k, err)
		}
		var times []float64
		complete := 0
		for _, res := range results {
			if res.Complete {
				complete++
				times = append(times, res.CompletionTime-res.Ts)
			}
		}
		sum := metrics.Summarize(times)
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("k=%d", k),
			Values: []float64{
				sum.Mean, sum.P95, float64(complete) / float64(opts.Trials),
			},
		})
	}
	return table, nil
}
