package experiment

import (
	"fmt"

	"m2hew/internal/analytic"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E11 exercises extension (a) of the paper's Section V: asymmetric
// communication graphs. A fraction of the CR network's edges loses one
// direction (u hears v but not vice versa); the discovery target becomes
// the reachable directed links and Δ becomes the in-degree.
//
// The paper claims the algorithms extend "easily": nothing in Algorithm 1's
// code references symmetry, so the same protocol should cover every
// reachable link within the Theorem-1-shaped bound computed from the
// asymmetric parameters. The experiment verifies completion and the bound
// across asymmetry fractions.
func E11(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	fractions := []float64{0, 0.25, 0.5, 1}
	if opts.Quick {
		fractions = []float64{0, 0.5}
	}
	n := 20
	if opts.Quick {
		n = 12
	}
	table := &Table{
		ID:    "E11",
		Title: "Extension (a): asymmetric communication graphs",
		Note: fmt.Sprintf("CR network N=%d; per-edge probability of dropping one direction; Algorithm 1; stages over %d trials",
			n, opts.Trials),
		Columns: []string{"links", "Δ", "ρ", "M bound", "mean", "p95", "≤bound"},
	}
	root := rng.New(opts.Seed)
	for _, f := range fractions {
		nw, _, err := crNetwork(n, 10, 12, root.Split())
		if err != nil {
			return nil, fmt.Errorf("E11 f=%.2f: %w", f, err)
		}
		if err := topology.DropRandomDirections(nw, f, root.Split()); err != nil {
			return nil, fmt.Errorf("E11 f=%.2f: %w", f, err)
		}
		params := nw.ComputeParams()
		if params.Delta < 1 {
			return nil, fmt.Errorf("E11 f=%.2f: degenerate network (Δ=0)", f)
		}
		deltaEst := nextPow2(params.Delta)
		sc := analytic.Scenario{
			N: params.N, S: params.S, Delta: params.Delta,
			DeltaEst: deltaEst, Rho: params.Rho, Eps: opts.Eps,
		}
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("E11 f=%.2f: %w", f, err)
		}
		stageLen := core.StageLen(deltaEst)
		boundStages := sc.M1Stages()
		factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
			return core.NewSyncStaged(nw.Avail(u), deltaEst, r)
		}
		maxSlots := int(boundStages)*stageLen + stageLen
		results, err := harness.SyncTrials(nw, factory, nil, maxSlots, opts.Trials, root)
		if err != nil {
			return nil, fmt.Errorf("E11 f=%.2f: %w", f, err)
		}
		slots, _ := harness.CompletionSlots(results)
		stages := make([]float64, len(slots))
		for i, s := range slots {
			stages[i] = s / float64(stageLen)
		}
		sum := metrics.Summarize(stages)
		within := metrics.FractionWithin(stages, boundStages) *
			float64(len(stages)) / float64(opts.Trials)
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("asym=%.2f", f),
			Values: []float64{
				float64(params.DiscoverableLinks), float64(params.Delta), params.Rho,
				boundStages, sum.Mean, sum.P95, within,
			},
		})
	}
	return table, nil
}
