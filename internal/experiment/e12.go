package experiment

import (
	"fmt"

	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E12 exercises extension (b) of the paper's Section V: unreliable
// channels. Every arriving transmission is independently erased at each
// receiver with probability p (deep fades).
//
// The expected shape: a slot covers a link only if the delivering
// transmission survives its fade, multiplying the per-slot coverage
// probability by roughly (1−p), so completion time scales as ~1/(1−p).
// (Erasures also thin interference, which helps slightly, so measured
// scaling is a bit better than 1/(1−p) under contention.) The table
// normalizes measured slots by (1−p); the column staying within a small
// factor across rows is the claim.
func E12(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	probs := []float64{0, 0.2, 0.5, 0.8}
	if opts.Quick {
		probs = []float64{0, 0.5}
	}
	n := 8
	table := &Table{
		ID:    "E12",
		Title: "Extension (b): unreliable channels (per-reception erasures)",
		Note: fmt.Sprintf("ring N=%d homogeneous S=2; Algorithm 3; mean completion slots over %d trials",
			n, opts.Trials),
		Columns: []string{"loss p", "mean slots", "p95 slots", "slots·(1-p)"},
	}
	root := rng.New(opts.Seed)
	nw, err := topology.Ring(n)
	if err != nil {
		return nil, fmt.Errorf("E12: %w", err)
	}
	if err := topology.AssignHomogeneous(nw, 2); err != nil {
		return nil, fmt.Errorf("E12: %w", err)
	}
	params := nw.ComputeParams()
	deltaEst := nextPow2(params.Delta)
	for _, p := range probs {
		p := p
		// Each trial's protocols and loss model draw from root in the
		// sequential setup phase, in trial order; the lossy engine runs —
		// which consume only the per-trial loss source — parallelize.
		slots, err := harness.TrialsScratch(opts.Trials,
			func(int) (sim.SyncConfig, error) {
				protos := make([]sim.SyncProtocol, nw.N())
				for u := 0; u < nw.N(); u++ {
					proto, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
					if err != nil {
						return sim.SyncConfig{}, err
					}
					protos[u] = proto
				}
				var loss *sim.LossModel
				if p > 0 {
					var err error
					loss, err = sim.NewLossModel(p, root.Split())
					if err != nil {
						return sim.SyncConfig{}, err
					}
				}
				return sim.SyncConfig{
					Network:   nw,
					Protocols: protos,
					MaxSlots:  400000,
					Loss:      loss,
				}, nil
			},
			func(_ int, cfg sim.SyncConfig, sc *harness.Scratch) (float64, error) {
				cfg.Scratch = sc.Sync()
				res, err := sim.RunSync(cfg)
				if err != nil {
					return 0, err
				}
				if !res.Complete {
					return 0, fmt.Errorf("p=%.1f: trial incomplete", p)
				}
				return float64(res.CompletionSlot + 1), nil
			})
		if err != nil {
			return nil, fmt.Errorf("E12: %w", err)
		}
		sum := metrics.Summarize(slots)
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("p=%.1f", p),
			Values: []float64{
				p, sum.Mean, sum.P95, sum.Mean * (1 - p),
			},
		})
	}
	return table, nil
}
