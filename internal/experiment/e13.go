package experiment

import (
	"fmt"
	"math"

	"m2hew/internal/analytic"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E13 exercises extension (c) of the paper's Sections II/V: channels with
// diverse propagation characteristics, so a link physically operates only
// on a subset span(u,v) ⊊ A(u)∩A(v). The similar-propagation assumption in
// the body of the paper makes span equal the intersection; the extension
// replaces that with arbitrary per-link spans, and ρ (computed from the true
// spans) absorbs the change in the analysis.
//
// The experiment caps every edge's span at 1, 2 or 4 channels of a
// homogeneous 8-channel network, recomputes ρ, and verifies Algorithm 1
// still covers every link within the bound computed from the *restricted*
// parameters — the paper's claim that the extension only shows up through ρ.
func E13(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	caps := []int{8, 4, 2, 1}
	if opts.Quick {
		caps = []int{8, 2}
	}
	n := 12
	table := &Table{
		ID:    "E13",
		Title: "Extension (c): diverse propagation (per-link span restriction)",
		Note: fmt.Sprintf("geometric N=%d homogeneous universe 8, span capped per edge; Algorithm 1 stages over %d trials",
			n, opts.Trials),
		Columns: []string{"ρ", "M bound", "mean", "p95", "≤bound", "mean·ρ"},
	}
	root := rng.New(opts.Seed)
	for _, spanCap := range caps {
		nw, err := topology.GeometricConnected(n, 0.5, root.Split(), 200)
		if err != nil {
			return nil, fmt.Errorf("E13 cap=%d: %w", spanCap, err)
		}
		if err := topology.AssignHomogeneous(nw, 8); err != nil {
			return nil, fmt.Errorf("E13 cap=%d: %w", spanCap, err)
		}
		if err := topology.RestrictSpansRandomly(nw, spanCap, root.Split()); err != nil {
			return nil, fmt.Errorf("E13 cap=%d: %w", spanCap, err)
		}
		if err := nw.Validate(); err != nil {
			return nil, fmt.Errorf("E13 cap=%d: %w", spanCap, err)
		}
		params := nw.ComputeParams()
		deltaEst := nextPow2(params.Delta)
		sc := analytic.Scenario{
			N: params.N, S: params.S, Delta: params.Delta,
			DeltaEst: deltaEst, Rho: params.Rho, Eps: opts.Eps,
		}
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("E13 cap=%d: %w", spanCap, err)
		}
		stageLen := core.StageLen(deltaEst)
		boundStages := sc.M1Stages()
		factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
			return core.NewSyncStaged(nw.Avail(u), deltaEst, r)
		}
		maxSlots := int(boundStages)*stageLen + stageLen
		results, err := harness.SyncTrials(nw, factory, nil, maxSlots, opts.Trials, root)
		if err != nil {
			return nil, fmt.Errorf("E13 cap=%d: %w", spanCap, err)
		}
		slots, _ := harness.CompletionSlots(results)
		stages := make([]float64, len(slots))
		for i, s := range slots {
			stages[i] = s / float64(stageLen)
		}
		sum := metrics.Summarize(stages)
		within := metrics.FractionWithin(stages, boundStages) *
			float64(len(stages)) / float64(opts.Trials)
		meanRho := sum.Mean * params.Rho
		if math.IsNaN(meanRho) {
			meanRho = 0
		}
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("cap=%d", spanCap),
			Values: []float64{
				params.Rho, boundStages, sum.Mean, sum.P95, within, meanRho,
			},
		})
	}
	return table, nil
}
