package experiment

import (
	"fmt"

	"m2hew/internal/core"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E14 evaluates the library's termination-detection extension (inspired by
// the lightweight termination detection of the paper's ref [22]): a node
// shuts its radio off after idleLimit consecutive slots without a new
// neighbor.
//
// The paper's algorithms run forever because a node cannot locally certify
// completion; the quiescence rule trades a small recall risk for bounded
// energy. Expected shape: recall rises to 1 as idleLimit grows past the
// inverse of the per-slot coverage probability (Eq. (6) scale), while
// energy (mean active slots per node) grows only linearly in idleLimit —
// i.e. there is a regime with full recall at a fraction of the always-on
// cost.
func E14(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	limits := []int{25, 100, 400, 1600}
	if opts.Quick {
		limits = []int{25, 400}
	}
	n := 14
	table := &Table{
		ID:    "E14",
		Title: "Termination detection: recall vs energy across idle limits",
		Note: fmt.Sprintf("CR network N=%d; Algorithm 3 + quiescence rule; %d trials; recall = covered/target links",
			n, opts.Trials),
		Columns: []string{"recall", "mean active", "all stopped", "horizon"},
	}
	root := rng.New(opts.Seed)
	nw, params, err := crNetwork(n, 8, 10, root.Split())
	if err != nil {
		return nil, fmt.Errorf("E14: %w", err)
	}
	deltaEst := nextPow2(params.Delta)
	for _, limit := range limits {
		// Horizon: enough slots for everyone to go quiet even at the
		// largest limit (termination cascades: the last node stops at most
		// limit slots after the last discovery).
		horizon := limit*6 + 2000
		var recalls, actives, stoppedRates []float64
		for trial := 0; trial < opts.Trials; trial++ {
			protos := make([]sim.SyncProtocol, nw.N())
			wrappers := make([]*core.SyncTerminating, nw.N())
			for u := 0; u < nw.N(); u++ {
				inner, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
				if err != nil {
					return nil, fmt.Errorf("E14: %w", err)
				}
				wrapped, err := core.NewSyncTerminating(inner, limit)
				if err != nil {
					return nil, fmt.Errorf("E14: %w", err)
				}
				wrappers[u] = wrapped
				protos[u] = wrapped
			}
			res, err := sim.RunSync(sim.SyncConfig{
				Network:       nw,
				Protocols:     protos,
				MaxSlots:      horizon,
				RunToMaxSlots: true, // completion isn't the stop signal here
			})
			if err != nil {
				return nil, fmt.Errorf("E14: %w", err)
			}
			recalls = append(recalls, res.Coverage.Progress())
			var active float64
			stopped := 0
			for _, w := range wrappers {
				active += float64(w.ActiveSlots())
				if w.Terminated() {
					stopped++
				}
			}
			actives = append(actives, active/float64(nw.N()))
			stoppedRates = append(stoppedRates, float64(stopped)/float64(nw.N()))
		}
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("idle=%d", limit),
			Values: []float64{
				metrics.Summarize(recalls).Mean,
				metrics.Summarize(actives).Mean,
				metrics.Summarize(stoppedRates).Mean,
				float64(horizon),
			},
		})
	}
	return table, nil
}
