package experiment

import (
	"fmt"

	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E14 evaluates the library's termination-detection extension (inspired by
// the lightweight termination detection of the paper's ref [22]): a node
// shuts its radio off after idleLimit consecutive slots without a new
// neighbor.
//
// The paper's algorithms run forever because a node cannot locally certify
// completion; the quiescence rule trades a small recall risk for bounded
// energy. Expected shape: recall rises to 1 as idleLimit grows past the
// inverse of the per-slot coverage probability (Eq. (6) scale), while
// energy (mean active slots per node) grows only linearly in idleLimit —
// i.e. there is a regime with full recall at a fraction of the always-on
// cost.
func E14(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	limits := []int{25, 100, 400, 1600}
	if opts.Quick {
		limits = []int{25, 400}
	}
	n := 14
	table := &Table{
		ID:    "E14",
		Title: "Termination detection: recall vs energy across idle limits",
		Note: fmt.Sprintf("CR network N=%d; Algorithm 3 + quiescence rule; %d trials; recall = covered/target links",
			n, opts.Trials),
		Columns: []string{"recall", "mean active", "all stopped", "horizon"},
	}
	root := rng.New(opts.Seed)
	nw, params, err := crNetwork(n, 8, 10, root.Split())
	if err != nil {
		return nil, fmt.Errorf("E14: %w", err)
	}
	deltaEst := nextPow2(params.Delta)
	for _, limit := range limits {
		// Horizon: enough slots for everyone to go quiet even at the
		// largest limit (termination cascades: the last node stops at most
		// limit slots after the last discovery).
		horizon := limit*6 + 2000
		// The terminating wrappers are per-trial state inspected after the
		// run, so each trial carries its own wrapper set through the
		// harness: built sequentially (root splits in trial order), run and
		// inspected on the pool.
		type trialStats struct {
			recall, active, stopped float64
		}
		stats, err := harness.TrialsScratch(opts.Trials,
			func(int) ([]*core.SyncTerminating, error) {
				wrappers := make([]*core.SyncTerminating, nw.N())
				for u := 0; u < nw.N(); u++ {
					inner, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
					if err != nil {
						return nil, err
					}
					wrapped, err := core.NewSyncTerminating(inner, limit)
					if err != nil {
						return nil, err
					}
					wrappers[u] = wrapped
				}
				return wrappers, nil
			},
			func(_ int, wrappers []*core.SyncTerminating, sc *harness.Scratch) (trialStats, error) {
				protos := make([]sim.SyncProtocol, len(wrappers))
				for u, w := range wrappers {
					protos[u] = w
				}
				res, err := sim.RunSync(sim.SyncConfig{
					Network:       nw,
					Protocols:     protos,
					MaxSlots:      horizon,
					RunToMaxSlots: true, // completion isn't the stop signal here
					Scratch:       sc.Sync(),
				})
				if err != nil {
					return trialStats{}, err
				}
				var active float64
				stopped := 0
				for _, w := range wrappers {
					active += float64(w.ActiveSlots())
					if w.Terminated() {
						stopped++
					}
				}
				return trialStats{
					recall:  res.Coverage.Progress(),
					active:  active / float64(nw.N()),
					stopped: float64(stopped) / float64(nw.N()),
				}, nil
			})
		if err != nil {
			return nil, fmt.Errorf("E14: %w", err)
		}
		var recalls, actives, stoppedRates []float64
		for _, st := range stats {
			recalls = append(recalls, st.recall)
			actives = append(actives, st.active)
			stoppedRates = append(stoppedRates, st.stopped)
		}
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("idle=%d", limit),
			Values: []float64{
				metrics.Summarize(recalls).Mean,
				metrics.Summarize(actives).Mean,
				metrics.Summarize(stoppedRates).Mean,
				float64(horizon),
			},
		})
	}
	return table, nil
}
