package experiment

import (
	"fmt"
	"sort"

	"m2hew/internal/analytic"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E15 validates the tail shape of the paper's completion argument. The
// Theorem 1 proof is really a statement about the whole distribution, not
// just its (1−ε)-quantile: after s stages, the probability that discovery
// is unfinished is at most N²·(1−q)^s with q the Eq. (6) per-stage coverage
// bound (Eqs. (7)–(8)). This experiment measures the empirical CCDF of
// Algorithm 1's completion stage over many trials and checks it sits below
// the analytic tail at every multiple of the empirical median.
//
// Because q is a worst-case bound, the analytic tail decays much slower
// than the empirical one; the claim verified is domination, and the
// "margin" column (analytic/empirical, with empirical floored at one trial)
// shows by how much.
func E15(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	// The tail needs more trials than the mean experiments.
	trials := opts.Trials * 10
	n := 14
	if opts.Quick {
		trials = opts.Trials * 5
		n = 10
	}
	root := rng.New(opts.Seed)
	nw, params, err := crNetwork(n, 8, 10, root.Split())
	if err != nil {
		return nil, fmt.Errorf("E15: %w", err)
	}
	deltaEst := nextPow2(params.Delta)
	sc := analytic.Scenario{
		N: params.N, S: params.S, Delta: params.Delta,
		DeltaEst: deltaEst, Rho: params.Rho, Eps: opts.Eps,
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("E15: %w", err)
	}
	stageLen := core.StageLen(deltaEst)
	maxSlots := (int(sc.M1Stages()) + 1) * stageLen
	factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
		return core.NewSyncStaged(nw.Avail(u), deltaEst, r)
	}
	results, err := harness.SyncTrials(nw, factory, nil, maxSlots, trials, root)
	if err != nil {
		return nil, fmt.Errorf("E15: %w", err)
	}
	slots, incomplete := harness.CompletionSlots(results)
	if incomplete > 0 {
		return nil, fmt.Errorf("E15: %d trials incomplete within the Theorem 1 bound", incomplete)
	}
	stages := make([]float64, len(slots))
	for i, s := range slots {
		stages[i] = s / float64(stageLen)
	}
	sort.Float64s(stages)
	median := stages[len(stages)/2]

	table := &Table{
		ID:    "E15",
		Title: "Tail bound: empirical CCDF of completion stages vs N²·(1−q)^s",
		Note: fmt.Sprintf("Algorithm 1, CR network N=%d, %d trials; s in multiples of the empirical median (%.0f stages)",
			n, trials, median),
		Columns: []string{"stages s", "empirical CCDF", "analytic bound", "dominated"},
	}
	addRow := func(label string, s float64) {
		exceed := 0
		for _, v := range stages {
			if v > s {
				exceed++
			}
		}
		empirical := float64(exceed) / float64(len(stages))
		bound := sc.FailureProbAfterStages(s)
		dominated := 1.0
		if empirical > bound {
			dominated = 0
		}
		table.Rows = append(table.Rows, Row{
			Label:  label,
			Values: []float64{s, empirical, bound, dominated},
		})
	}
	// Near the empirical distribution (where the data lives) ...
	for _, mult := range []float64{0.5, 1, 2, 3} {
		addRow(fmt.Sprintf("%.1f×median", mult), median*mult)
	}
	// ... and near the theorem bound (where the analytic tail bites: at
	// s = M the bound equals ε by construction).
	for _, mult := range []float64{0.25, 0.5, 1} {
		addRow(fmt.Sprintf("%.2f×M", mult), sc.M1Stages()*mult)
	}
	return table, nil
}
