package experiment

import (
	"fmt"

	"m2hew/internal/analytic"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E16 cross-validates the simulator against the coupon-collector analysis
// of single-channel neighbor discovery (the paper's ref [2], Vasudevan et
// al.): on a single-channel clique with constant transmit probability p,
// the expected completion time is ≈ (ln(n(n−1)) + γ)/q with
// q = p(1−p)^(n−1).
//
// Algorithm 3 on S = 1 with Δ_est = n−1 is exactly that protocol
// (p = min(1/2, 1/(n−1))). The closed form treats links as independent
// coupons, but on a clique they are positively correlated — a slot with a
// sole transmitter covers all n−1 of its outgoing links at once — so the
// measured mean sits a stable constant factor below the prediction
// (≈ 0.55–0.8 across sizes). The check is that the ratio is flat in n
// (same Θ((ln n²)/q) growth, no hidden engine constant), not that it is 1.
func E16(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	sizes := []int{4, 8, 12, 16}
	if opts.Quick {
		sizes = []int{4, 8}
	}
	trials := opts.Trials * 3 // means need more samples than quantiles
	table := &Table{
		ID:    "E16",
		Title: "Coupon-collector cross-check: single-channel clique vs closed form",
		Note: fmt.Sprintf("Algorithm 3, S=1, Δest=n−1 (p=1/(n−1)); mean completion slots over %d trials vs (ln n(n−1)+γ)/q",
			trials),
		Columns: []string{"p", "predicted", "measured", "ratio"},
	}
	root := rng.New(opts.Seed)
	for _, n := range sizes {
		nw, err := topology.Clique(n)
		if err != nil {
			return nil, fmt.Errorf("E16 n=%d: %w", n, err)
		}
		if err := topology.AssignHomogeneous(nw, 1); err != nil {
			return nil, fmt.Errorf("E16 n=%d: %w", n, err)
		}
		deltaEst := n - 1
		p := core.TransmitProbUniform(1, deltaEst)
		predicted := analytic.CouponCollectorApprox(n, p)
		factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
			return core.NewSyncUniform(nw.Avail(u), deltaEst, r)
		}
		results, err := harness.SyncTrials(nw, factory, nil, int(predicted*30)+1000, trials, root)
		if err != nil {
			return nil, fmt.Errorf("E16 n=%d: %w", n, err)
		}
		slots, incomplete := harness.CompletionSlots(results)
		if incomplete > 0 {
			return nil, fmt.Errorf("E16 n=%d: %d incomplete trials", n, incomplete)
		}
		measured := metrics.Summarize(slots).Mean
		table.Rows = append(table.Rows, Row{
			Label:  fmt.Sprintf("n=%d", n),
			Values: []float64{p, predicted, measured, measured / predicted},
		})
	}
	return table, nil
}
