package experiment

import (
	"fmt"
	"sort"

	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E17 profiles the discovery progress curve — the "figure" a systems paper
// would plot: fraction of links covered versus time, for all four
// algorithms on the same CR network. Reported as time-to-quantile columns
// (t50/t90/t99/t100, medians over trials, in slots; the asynchronous
// algorithm's real time is divided by the slot length L/3 to share the
// axis).
//
// Expected shape: a steep start and a long tail — the last links are
// weakest (smallest span, most contention) and dominate completion, the
// coupon-collector phenomenon the related work [2] analyzes. t100/t50
// ratios of 4–10× are normal; algorithms differ in absolute level
// (Algorithm 3's constant probability beats Algorithm 1's staged schedule
// once Δ_est is loose; Algorithm 2 pays for its estimate ramp; Algorithm 4
// pays the asynchrony constant).
func E17(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	n := 16
	if opts.Quick {
		n = 10
	}
	table := &Table{
		ID:    "E17",
		Title: "Discovery progress profile: time to cover 50/90/99/100% of links",
		Note: fmt.Sprintf("CR network N=%d; slots (async real time ÷ slot length); medians over %d trials",
			n, opts.Trials),
		Columns: []string{"t50", "t90", "t99", "t100", "tail t100/t50"},
	}
	root := rng.New(opts.Seed)
	nw, params, err := crNetwork(n, 8, 10, root.Split())
	if err != nil {
		return nil, fmt.Errorf("E17: %w", err)
	}
	deltaEst := nextPow2(params.Delta)
	target := params.DiscoverableLinks

	quantTimes := func(curve []metrics.CurvePoint) ([4]float64, bool) {
		var out [4]float64
		fracs := []float64{0.5, 0.9, 0.99, 1.0}
		if len(curve) < target {
			return out, false
		}
		for i, f := range fracs {
			need := int(f * float64(target))
			if need < 1 {
				need = 1
			}
			out[i] = curve[need-1].Time
		}
		return out, true
	}

	// Each variant is split into a build phase (all root-stream splits,
	// executed sequentially per trial by the harness) and the returned run
	// closure (engine execution, parallel on the pool, on the worker's
	// scratch).
	type preparedRun = func(sc *harness.Scratch) ([]metrics.CurvePoint, bool, error)
	type variant struct {
		label string
		build func(seed *rng.Source) (preparedRun, error)
	}
	syncBuild := func(factory harness.SyncFactory, seed *rng.Source) (preparedRun, error) {
		protos := make([]sim.SyncProtocol, nw.N())
		for u := 0; u < nw.N(); u++ {
			p, err := factory(topology.NodeID(u), seed.Split())
			if err != nil {
				return nil, err
			}
			protos[u] = p
		}
		return func(sc *harness.Scratch) ([]metrics.CurvePoint, bool, error) {
			res, err := sim.RunSync(sim.SyncConfig{Network: nw, Protocols: protos, MaxSlots: 100000, Scratch: sc.Sync()})
			if err != nil {
				return nil, false, err
			}
			return res.Coverage.Curve(), res.Complete, nil
		}, nil
	}
	variants := []variant{
		{"alg1 staged", func(seed *rng.Source) (preparedRun, error) {
			return syncBuild(func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
				return core.NewSyncStaged(nw.Avail(u), deltaEst, r)
			}, seed)
		}},
		{"alg2 growing", func(seed *rng.Source) (preparedRun, error) {
			return syncBuild(func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
				return core.NewSyncGrowing(nw.Avail(u), r)
			}, seed)
		}},
		{"alg3 uniform", func(seed *rng.Source) (preparedRun, error) {
			return syncBuild(func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
				return core.NewSyncUniform(nw.Avail(u), deltaEst, r)
			}, seed)
		}},
		{"alg4 async", func(seed *rng.Source) (preparedRun, error) {
			nodes := make([]sim.AsyncNode, nw.N())
			for u := 0; u < nw.N(); u++ {
				p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), deltaEst, seed.Split())
				if err != nil {
					return nil, err
				}
				drift, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.03, seed.Split())
				if err != nil {
					return nil, err
				}
				nodes[u] = sim.AsyncNode{Protocol: p, Drift: drift}
			}
			return func(sc *harness.Scratch) ([]metrics.CurvePoint, bool, error) {
				res, err := sim.RunAsync(sim.AsyncConfig{
					Network: nw, Nodes: nodes, FrameLen: e4FrameLen, MaxFrames: 30000,
					Scratch: sc.Async(),
				})
				if err != nil {
					return nil, false, err
				}
				// Convert real time to slot units (slot = L/3).
				curve := res.Coverage.Curve()
				scaled := make([]metrics.CurvePoint, len(curve))
				for i, p := range curve {
					scaled[i] = metrics.CurvePoint{Time: p.Time / (e4FrameLen / 3), Covered: p.Covered}
				}
				return scaled, res.Complete, nil
			}, nil
		}},
	}

	for _, v := range variants {
		trialQuants, err := harness.TrialsScratch(opts.Trials,
			func(int) (preparedRun, error) {
				return v.build(root)
			},
			func(trial int, job preparedRun, sc *harness.Scratch) ([4]float64, error) {
				curve, complete, err := job(sc)
				if err != nil {
					return [4]float64{}, err
				}
				if !complete {
					return [4]float64{}, fmt.Errorf("trial %d incomplete", trial)
				}
				qs, ok := quantTimes(curve)
				if !ok {
					return [4]float64{}, fmt.Errorf("curve shorter than target")
				}
				return qs, nil
			})
		if err != nil {
			return nil, fmt.Errorf("E17 %s: %w", v.label, err)
		}
		quantiles := make([][]float64, 4)
		for _, qs := range trialQuants {
			for i := range qs {
				quantiles[i] = append(quantiles[i], qs[i])
			}
		}
		medians := make([]float64, 4)
		for i, q := range quantiles {
			sort.Float64s(q)
			medians[i] = metrics.Quantile(q, 0.5)
		}
		table.Rows = append(table.Rows, Row{
			Label: v.label,
			Values: []float64{
				medians[0], medians[1], medians[2], medians[3],
				medians[3] / medians[0],
			},
		})
	}
	return table, nil
}
