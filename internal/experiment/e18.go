package experiment

import (
	"fmt"

	"m2hew/internal/channel"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E18 measures spectrum churn — the event the paper's introduction
// motivates cognitive radio with: "when a primary user arrives and starts
// using its channel, the secondary users have to vacate the channel."
//
// A CR network completes discovery; then a new primary user arrives at the
// center of the area and claims one channel within its exclusion radius.
// Nodes inside the region lose the channel: some links lose their only
// common channel (undiscoverable now), the rest keep a reduced span. The
// experiment re-runs discovery on the post-churn network and reports the
// damage (nodes affected, links lost, ρ before/after) and the re-discovery
// cost relative to the initial discovery — which the theory predicts grows
// as the revocation shrinks spans (ρ falls) even though the network itself
// is smaller.
//
// Expected shape: the re/initial ratio climbs with the churn radius (wider
// revocation → smaller spans → smaller ρ → slower discovery, the E8
// relationship reappearing through churn), while "links lost" stays at or
// near zero — multi-channel redundancy protects connectivity even when a
// whole channel vanishes from a region, which is the resilience story of
// the M²HeW model.
func E18(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	radii := []float64{0.15, 0.3, 0.5, 0.75}
	if opts.Quick {
		radii = []float64{0.3, 0.75}
	}
	n := 20
	if opts.Quick {
		n = 12
	}
	table := &Table{
		ID:    "E18",
		Title: "Spectrum churn: primary-user arrival, vacated channel, re-discovery",
		Note: fmt.Sprintf("CR network N=%d; a primary claims channel 0 at the area center within the given radius; Algorithm 1, %d trials",
			n, opts.Trials),
		Columns: []string{"affected", "links lost", "ρ before", "ρ after", "initial", "re-run", "re/initial"},
	}
	for _, radius := range radii {
		root := rng.New(opts.Seed) // same pre-churn network per row
		nw, before, err := crNetwork(n, 4, 6, root.Split())
		if err != nil {
			return nil, fmt.Errorf("E18: %w", err)
		}
		deltaEst := nextPow2(before.Delta)
		factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
			return core.NewSyncStaged(nw.Avail(u), deltaEst, r)
		}
		initialResults, err := harness.SyncTrials(nw, factory, nil, 200000, opts.Trials, root)
		if err != nil {
			return nil, fmt.Errorf("E18: %w", err)
		}
		initial, incomplete := harness.CompletionSlots(initialResults)
		if incomplete > 0 {
			return nil, fmt.Errorf("E18: %d initial trials incomplete", incomplete)
		}

		// The primary arrives. Channel 0 always exists in the universe; if
		// no node holds it anywhere (fully excluded at build time), churn is
		// a no-op and the row still reports honestly.
		affected := topology.RevokeChannel(nw, channel.ID(0), 0.5, 0.5, radius)
		after := nw.ComputeParams()
		linksLost := before.DiscoverableLinks - after.DiscoverableLinks

		var rerun []float64
		if after.DiscoverableLinks > 0 {
			deltaEst = nextPow2(maxInt(after.Delta, 1))
			factory = func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
				// A node that lost its whole spectrum cannot participate;
				// it sits silent (its links left the discovery target with
				// it).
				if nw.Avail(u).IsEmpty() {
					return quietProtocol{}, nil
				}
				return core.NewSyncStaged(nw.Avail(u), deltaEst, r)
			}
			rerunResults, err := harness.SyncTrials(nw, factory, nil, 400000, opts.Trials, root)
			if err != nil {
				return nil, fmt.Errorf("E18: %w", err)
			}
			rerun, incomplete = harness.CompletionSlots(rerunResults)
			if incomplete > 0 {
				return nil, fmt.Errorf("E18: %d re-discovery trials incomplete", incomplete)
			}
		}
		initMean := metrics.Summarize(initial).Mean
		reMean := metrics.Summarize(rerun).Mean
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("r=%.2f", radius),
			Values: []float64{
				float64(len(affected)), float64(linksLost),
				before.Rho, after.Rho,
				initMean, reMean, reMean / initMean,
			},
		})
	}
	return table, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// quietProtocol is the protocol of a node with no spectrum left: radio off.
type quietProtocol struct{}

// Step implements sim.SyncProtocol.
func (quietProtocol) Step(int) radio.Action { return radio.Action{Mode: radio.Quiet} }

// Deliver implements sim.SyncProtocol (a silent radio hears nothing, but
// the interface must be satisfied).
func (quietProtocol) Deliver(radio.Message) {}
