package experiment

import (
	"fmt"

	"m2hew/internal/analytic"
	"m2hew/internal/channel"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E19 evaluates the acknowledgment extension for asymmetric graphs
// (core.Acknowledging): every message piggybacks the sender's discovered
// in-neighbors, so a node learns which of its out-links actually work.
//
// Two quantities per run: T_in, the slot by which every reachable link is
// covered (the paper's objective), and T_ack, the slot by which every
// *bidirectional* link is confirmed at its transmitter (the extension's
// objective; one-way links can never be confirmed and are excluded from the
// target). Confirmation needs a round trip — u covered, then v hears u's
// acknowledgment — so T_ack/T_in around 1.5–2.5× is the expected shape,
// roughly one extra coverage epoch, across asymmetry levels.
func E19(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	fractions := []float64{0, 0.3, 0.6}
	if opts.Quick {
		fractions = []float64{0, 0.5}
	}
	n := 14
	if opts.Quick {
		n = 10
	}
	table := &Table{
		ID:    "E19",
		Title: "Acknowledgment extension: out-link confirmation on asymmetric graphs",
		Note: fmt.Sprintf("CR network N=%d, Algorithm 3 + heard-list piggyback; slots, %d trials; ack target = bidirectional links",
			n, opts.Trials),
		Columns: []string{"links", "ack target", "T_in mean", "T_ack mean", "T_ack/T_in"},
	}
	root := rng.New(opts.Seed)
	for _, f := range fractions {
		nw, _, err := crNetwork(n, 8, 10, root.Split())
		if err != nil {
			return nil, fmt.Errorf("E19 f=%.1f: %w", f, err)
		}
		if err := topology.DropRandomDirections(nw, f, root.Split()); err != nil {
			return nil, fmt.Errorf("E19 f=%.1f: %w", f, err)
		}
		params := nw.ComputeParams()
		deltaEst := nextPow2(params.Delta)
		sc := analytic.Scenario{
			N: params.N, S: params.S, Delta: params.Delta,
			DeltaEst: deltaEst, Rho: params.Rho, Eps: opts.Eps,
		}
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("E19 f=%.1f: %w", f, err)
		}
		// Confirmation target: directed links whose reverse also works.
		type pair struct{ from, to topology.NodeID }
		ackTarget := make(map[pair]bool)
		for _, l := range nw.DiscoverableLinks() {
			if nw.Reaches(l.To, l.From) {
				ackTarget[pair{l.From, l.To}] = true
			}
		}
		maxSlots := 4 * int(sc.Theorem3Slots())

		// The acknowledging wrappers are per-trial state the observer polls
		// during the run, so each trial carries its own wrapper set through
		// the harness: built sequentially (root splits in trial order), run
		// and inspected on the pool.
		type ackTimes struct{ tIn, tAck float64 }
		times, err := harness.TrialsScratch(opts.Trials,
			func(int) ([]*core.Acknowledging, error) {
				wrappers := make([]*core.Acknowledging, nw.N())
				for u := 0; u < nw.N(); u++ {
					inner, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
					if err != nil {
						return nil, err
					}
					w, err := core.NewAcknowledging(topology.NodeID(u), inner)
					if err != nil {
						return nil, err
					}
					wrappers[u] = w
				}
				return wrappers, nil
			},
			func(_ int, wrappers []*core.Acknowledging, sc *harness.Scratch) (ackTimes, error) {
				protos := make([]sim.SyncProtocol, len(wrappers))
				for u, w := range wrappers {
					protos[u] = w
				}
				// Confirmation can only change on a delivery, so polling the
				// delivered pair after each delivery captures the exact slot.
				confirmed := make(map[pair]bool, len(ackTarget))
				ackSlot := -1
				res, err := sim.RunSync(sim.SyncConfig{
					Network:       nw,
					Protocols:     protos,
					MaxSlots:      maxSlots,
					RunToMaxSlots: true,
					Scratch:       sc.Sync(),
					Observer: sim.DeliverObserver(func(at float64, from, to topology.NodeID, _ channel.ID) {
						// The receiver `to` may have just confirmed its
						// out-link to `from`.
						p := pair{to, from}
						if ackSlot >= 0 || !ackTarget[p] || confirmed[p] {
							return
						}
						if wrappers[to].HasConfirmed(from) {
							confirmed[p] = true
							if len(confirmed) == len(ackTarget) {
								ackSlot = int(at)
							}
						}
					}),
				})
				if err != nil {
					return ackTimes{}, err
				}
				if !res.Complete {
					return ackTimes{}, fmt.Errorf("in-coverage incomplete")
				}
				if ackSlot < 0 {
					return ackTimes{}, fmt.Errorf("confirmation incomplete within %d slots", maxSlots)
				}
				return ackTimes{tIn: float64(res.CompletionSlot + 1), tAck: float64(ackSlot + 1)}, nil
			})
		if err != nil {
			return nil, fmt.Errorf("E19 f=%.1f: %w", f, err)
		}
		var tIn, tAck []float64
		for _, t := range times {
			tIn = append(tIn, t.tIn)
			tAck = append(tAck, t.tAck)
		}
		inMean := metrics.Summarize(tIn).Mean
		ackMean := metrics.Summarize(tAck).Mean
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("asym=%.1f", f),
			Values: []float64{
				float64(params.DiscoverableLinks), float64(len(ackTarget)),
				inMean, ackMean, ackMean / inMean,
			},
		})
	}
	return table, nil
}
