package experiment

import (
	"fmt"

	"m2hew/internal/analytic"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E2 reproduces Theorem 2: Algorithm 2 (no degree knowledge) discovers all
// neighbors within Δ + M stages — O(M log M) slots — with probability
// ≥ 1−ε, where M is the Theorem 1 stage count.
//
// The same CR networks as E1 are used, but nodes get no Δ_est: the protocol
// grows its estimate d = 2, 3, 4, … one stage per value. Measured completion
// slots are compared to the concrete Theorem 2 slot bound
// (SlotsForEstimate(⌈Δ+M⌉+1)).
func E2(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	sizes := []int{10, 20, 40}
	if opts.Quick {
		sizes = []int{10, 16}
	}
	table := &Table{
		ID:    "E2",
		Title: "Theorem 2: Algorithm 2 completion without degree knowledge",
		Note: fmt.Sprintf("slots; bound = slots of Δ+M growing stages, ε=%.2g; same CR networks as E1",
			opts.Eps),
		Columns: []string{"S", "Δ", "ρ", "slot bound", "mean", "p95", "max", "≤bound"},
	}
	root := rng.New(opts.Seed)
	for _, n := range sizes {
		nw, params, err := crNetwork(n, 10, 12, root.Split())
		if err != nil {
			return nil, fmt.Errorf("E2 N=%d: %w", n, err)
		}
		sc := analytic.Scenario{
			N: params.N, S: params.S, Delta: params.Delta,
			DeltaEst: params.Delta, // Theorem 2's bound uses the true Δ
			Rho:      params.Rho, Eps: opts.Eps,
		}
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("E2 N=%d: %w", n, err)
		}
		boundSlots := sc.Theorem2Slots()
		maxSlots := int(boundSlots) + 1
		factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
			return core.NewSyncGrowing(nw.Avail(u), r)
		}
		results, err := harness.SyncTrials(nw, factory, nil, maxSlots, opts.Trials, root)
		if err != nil {
			return nil, fmt.Errorf("E2 N=%d: %w", n, err)
		}
		slots, _ := harness.CompletionSlots(results)
		sum := metrics.Summarize(slots)
		within := metrics.FractionWithin(slots, boundSlots) *
			float64(len(slots)) / float64(opts.Trials)
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("N=%d", n),
			Values: []float64{
				float64(params.S), float64(params.Delta), params.Rho,
				boundSlots, sum.Mean, sum.P95, sum.Max, within,
			},
		})
	}
	return table, nil
}
