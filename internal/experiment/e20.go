package experiment

import (
	"fmt"

	"m2hew/internal/core"
	"m2hew/internal/dynamics"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E20 measures discovery under node churn — the dynamic regime the paper's
// model motivates but does not analyze: secondary users power on late and
// disappear permanently while discovery is running.
//
// A CR network runs Algorithm 1 on a time-varying world where each node
// independently joins late and/or leaves for good within a scheduled
// window. The coverage target grows as joiners bring their links up, and a
// link's discovery latency is measured from the epoch its link appeared —
// so late joiners are not charged for slots they slept through. Completion
// in the static sense is unreachable once any node leaves (its links stay
// in the target uncovered), so the table reports coverage fraction and the
// per-link latency distribution instead of completion slots.
//
// Expected shape: the static row reproduces ordinary discovery (100%
// coverage, pooled latency ≈ the completion profile). Churn rows keep
// coverage at or near 100% — the paper's forever-running protocols make
// discovery restartable, so a link is covered within one per-link discovery
// time of its birth, well inside an epoch — and mean latency *falls* as
// churn intensifies: the early network is thinner (less contention per
// link) and a late joiner arrives in its protocol's most transmission-heavy
// opening stage. Leaves shrink the per-trial target instead of the coverage
// fraction — links whose endpoints never coexist are simply never born.
func E20(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	type profile struct {
		label       string
		join, leave float64
	}
	profiles := []profile{
		{"static", 0, 0},
		{"join 0.3", 0.3, 0},
		{"join 0.3, leave 0.15", 0.3, 0.15},
		{"join 0.6, leave 0.3", 0.6, 0.3},
	}
	n, epochSlots, window, maxSlots := 20, 200, 20, 60000
	if opts.Quick {
		profiles = []profile{{"static", 0, 0}, {"join 0.3, leave 0.15", 0.3, 0.15}}
		n, epochSlots, window, maxSlots = 12, 100, 10, 12000
	}
	table := &Table{
		ID:    "E20",
		Title: "Churn: late joins and permanent leaves during discovery",
		Note: fmt.Sprintf("CR network N=%d; epoch=%d slots, churn window %d epochs, horizon %d slots; Algorithm 1, %d trials; latency in slots from link birth",
			n, epochSlots, window, maxSlots, opts.Trials),
		Columns: []string{"links/trial", "covered %", "mean lat", "median lat", "p90 lat"},
	}
	for _, p := range profiles {
		root := rng.New(opts.Seed) // same base network per row
		nw, params, err := crNetwork(n, 4, 6, root.Split())
		if err != nil {
			return nil, fmt.Errorf("E20: %w", err)
		}
		deltaEst := nextPow2(params.Delta)
		factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
			return core.NewSyncStaged(nw.Avail(u), deltaEst, r)
		}
		spec := dynamics.Spec{EpochLen: float64(epochSlots)}
		if p.join > 0 || p.leave > 0 {
			spec.Churn = &dynamics.Churn{
				JoinFraction: p.join, JoinWindow: window,
				LeaveFraction: p.leave, LeaveWindow: window,
			}
		}
		results, err := harness.SyncDynamicsTrials(nw, factory, spec, maxSlots/epochSlots, maxSlots, opts.Trials, root)
		if err != nil {
			return nil, fmt.Errorf("E20: %w", err)
		}
		covs := make([]*metrics.Coverage, len(results))
		for i, res := range results {
			covs[i] = res.Coverage
		}
		lat, covered, targeted := harness.PooledLatencies(covs)
		s := metrics.Summarize(lat)
		table.Rows = append(table.Rows, Row{
			Label: p.label,
			Values: []float64{
				float64(targeted) / float64(opts.Trials),
				100 * float64(covered) / float64(targeted),
				s.Mean, s.Median, s.P90,
			},
		})
	}
	return table, nil
}
