package experiment

import (
	"fmt"
	"math"

	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/dynamics"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E21 measures asynchronous discovery under mobility and primary-user
// dynamics — the two environmental processes of the cognitive-radio setting
// the paper holds fixed: node positions (hence the communication graph) and
// the primary users' spectrum occupancy.
//
// A CR network runs Algorithm 4 (ideal clocks, identical starts) on a
// time-varying world. Under random-waypoint mobility the edge set is
// re-derived every epoch from the sampled positions, so links appear and
// vanish continuously; under primary-user dynamics license holders claim a
// channel for a while and nodes in range vacate it, shrinking link spans
// mid-run. Each link's discovery latency counts from the epoch it appeared.
//
// Expected shape: the fixed row matches static discovery. Mobility roughly
// doubles the links a trial ever targets (every epoch's edge set joins the
// target) yet coverage stays near 100% with only mildly higher latency: at
// these speeds a link persists many epochs — several per-link discovery
// times — so the forever-running protocols catch nearly everything the
// motion creates. Primary-user events barely register on their own:
// multi-channel redundancy routes around a blocked channel, the E18/E12
// resilience story in live form.
func E21(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	type profile struct {
		label string
		speed float64
		pu    int
	}
	profiles := []profile{
		{"fixed", 0, 0},
		{"pu only", 0, 4},
		{"speed 0.005", 0.005, 0},
		{"speed 0.02", 0.02, 0},
		{"speed 0.02 + pu", 0.02, 4},
	}
	n, maxFrames, epochLen := 16, 3000, 50.0
	if opts.Quick {
		profiles = []profile{{"fixed", 0, 0}, {"speed 0.02 + pu", 0.02, 4}}
		n, maxFrames = 12, 900
	}
	const frameLen = 3.0
	epochs := int(float64(maxFrames)*frameLen/epochLen) + 1
	table := &Table{
		ID:    "E21",
		Title: "Mobility + primary-user dynamics: discovery on a live network",
		Note: fmt.Sprintf("CR network N=%d; epoch=%.0f time units, %d epochs, %d frames of L=%.0f; Algorithm 4, %d trials; latency in time units from link birth",
			n, epochLen, epochs, maxFrames, frameLen, opts.Trials),
		Columns: []string{"links/trial", "covered %", "mean lat", "median lat", "p90 lat"},
	}
	// The mobility re-derivation radius matches the generator's, so the
	// moving graph keeps the base network's density.
	radius := 1.6 * math.Sqrt(math.Log(float64(n))/float64(n))
	if radius > 0.7 {
		radius = 0.7
	}
	for _, p := range profiles {
		root := rng.New(opts.Seed) // same base network per row
		nw, params, err := crNetwork(n, 4, 6, root.Split())
		if err != nil {
			return nil, fmt.Errorf("E21: %w", err)
		}
		deltaEst := nextPow2(params.Delta)
		spec := dynamics.Spec{EpochLen: epochLen}
		if p.speed > 0 {
			spec.Mobility = &dynamics.Mobility{Speed: p.speed, Radius: radius, Pause: 1}
		}
		if p.pu > 0 {
			spec.Primary = &dynamics.Primary{Events: p.pu, Duration: 8, Radius: 0.3}
		}
		results, err := harness.AsyncTrials(opts.Trials, func(int) (sim.AsyncConfig, error) {
			nodes := make([]sim.AsyncNode, nw.N())
			for u := 0; u < nw.N(); u++ {
				proto, err := core.NewAsync(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
				if err != nil {
					return sim.AsyncConfig{}, err
				}
				nodes[u] = sim.AsyncNode{Protocol: proto, Drift: clock.Ideal}
			}
			world, err := dynamics.NewWorld(nw, spec, epochs, root.Split())
			if err != nil {
				return sim.AsyncConfig{}, err
			}
			return sim.AsyncConfig{
				Network: nw, Nodes: nodes,
				FrameLen: frameLen, MaxFrames: maxFrames,
				Dynamics: world,
			}, nil
		})
		if err != nil {
			return nil, fmt.Errorf("E21: %w", err)
		}
		covs := make([]*metrics.Coverage, len(results))
		for i, res := range results {
			covs[i] = res.Coverage
		}
		lat, covered, targeted := harness.PooledLatencies(covs)
		s := metrics.Summarize(lat)
		table.Rows = append(table.Rows, Row{
			Label: p.label,
			Values: []float64{
				float64(targeted) / float64(opts.Trials),
				100 * float64(covered) / float64(targeted),
				s.Mean, s.Median, s.P90,
			},
		})
	}
	return table, nil
}
