package experiment

import (
	"fmt"

	"m2hew/internal/analytic"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E3 reproduces Theorem 3: Algorithm 3 (constant transmit probability)
// tolerates variable start times and completes within
// (8·max(2S,Δ_est)/ρ)·ln(N²/ε) slots after T_s (the time by which all nodes
// have started) with probability ≥ 1−ε.
//
// Node start slots are staggered uniformly over a window; completion is
// measured relative to T_s = the latest start. The stagger window is also a
// row dimension: per the theorem, slots-after-T_s must not depend on it.
func E3(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	type config struct {
		n      int
		window int
	}
	configs := []config{
		{20, 0}, {20, 50}, {20, 500}, {40, 0}, {40, 500},
	}
	if opts.Quick {
		configs = []config{{10, 0}, {10, 100}}
	}
	table := &Table{
		ID:    "E3",
		Title: "Theorem 3: Algorithm 3 completion after T_s with staggered starts",
		Note: fmt.Sprintf("slots after T_s; bound = 8·max(2S,Δest)/ρ·ln(N²/ε), ε=%.2g; start slots uniform in window",
			opts.Eps),
		Columns: []string{"S", "Δ", "ρ", "slot bound", "mean", "p95", "max", "≤bound"},
	}
	root := rng.New(opts.Seed)
	for _, cf := range configs {
		nw, params, err := crNetwork(cf.n, 10, 12, root.Split())
		if err != nil {
			return nil, fmt.Errorf("E3 N=%d: %w", cf.n, err)
		}
		deltaEst := nextPow2(params.Delta)
		sc := analytic.Scenario{
			N: params.N, S: params.S, Delta: params.Delta,
			DeltaEst: deltaEst, Rho: params.Rho, Eps: opts.Eps,
		}
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("E3 N=%d: %w", cf.n, err)
		}
		boundSlots := sc.Theorem3Slots()
		var afterTs []float64
		failures := 0
		for trial := 0; trial < opts.Trials; trial++ {
			starts := make([]int, nw.N())
			ts := 0
			for u := range starts {
				if cf.window > 0 {
					starts[u] = root.IntN(cf.window)
				}
				if starts[u] > ts {
					ts = starts[u]
				}
			}
			factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
				return core.NewSyncUniform(nw.Avail(u), deltaEst, r)
			}
			maxSlots := ts + int(boundSlots) + 1
			results, err := harness.SyncTrials(nw, factory, starts, maxSlots, 1, root)
			if err != nil {
				return nil, fmt.Errorf("E3 N=%d: %w", cf.n, err)
			}
			slots, incomplete := harness.CompletionSlots(results)
			if incomplete > 0 {
				failures++
				continue
			}
			afterTs = append(afterTs, slots[0]-float64(ts))
		}
		sum := metrics.Summarize(afterTs)
		within := metrics.FractionWithin(afterTs, boundSlots) *
			float64(len(afterTs)) / float64(opts.Trials)
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("N=%d win=%d", cf.n, cf.window),
			Values: []float64{
				float64(params.S), float64(params.Delta), params.Rho,
				boundSlots, sum.Mean, sum.P95, sum.Max, within,
			},
		})
	}
	return table, nil
}
