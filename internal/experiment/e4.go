package experiment

import (
	"fmt"

	"m2hew/internal/analytic"
	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// e4FrameLen is the local frame length L used by the asynchronous
// experiments. Its absolute value is arbitrary (the bounds scale linearly in
// L); 3.0 makes slots unit length.
const e4FrameLen = 3.0

// E4 reproduces Theorems 9 and 10: Algorithm 4, on drifting unsynchronized
// clocks with arbitrary start offsets, completes discovery by the time every
// node has executed (48·max(2S,3Δ_est)/ρ)·ln(N²/ε) full frames after T_s
// (Theorem 9), which caps T_f − T_s at (frames+1)·L/(1−δ) real time
// (Theorem 10).
//
// Rows vary the drift process at the paper's bound δ = 1/7 and below.
// Completion is measured as real time after T_s and as the minimum per-node
// full-frame count at completion; both must sit within their bounds in
// ≥ 1−ε of trials.
func E4(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	n := 12
	trials := opts.Trials
	if opts.Quick {
		n = 6
	}
	type config struct {
		label string
		delta float64
		mk    func(root *rng.Source) (clock.DriftProcess, error)
	}
	configs := []config{
		{"ideal δ=0", 0, func(*rng.Source) (clock.DriftProcess, error) { return clock.Ideal, nil }},
		{"const δ=1e-6", 1e-6, func(*rng.Source) (clock.DriftProcess, error) { return clock.Constant(1e-6), nil }},
		{"walk δ=0.05", 0.05, func(r *rng.Source) (clock.DriftProcess, error) {
			return clock.NewRandomWalk(0.05, 0.01, r)
		}},
		{"walk δ=1/7", clock.MaxAsyncDrift, func(r *rng.Source) (clock.DriftProcess, error) {
			return clock.NewRandomWalk(clock.MaxAsyncDrift, 0.03, r)
		}},
		{"sine δ=1/7", clock.MaxAsyncDrift, func(*rng.Source) (clock.DriftProcess, error) {
			return clock.NewSinusoidal(clock.MaxAsyncDrift, 41, 0.7)
		}},
		{"alt δ=1/7", clock.MaxAsyncDrift, func(*rng.Source) (clock.DriftProcess, error) {
			return clock.NewAlternating(clock.MaxAsyncDrift, 5, false)
		}},
	}
	if opts.Quick {
		configs = configs[:3]
	}
	table := &Table{
		ID:    "E4",
		Title: "Theorems 9+10: Algorithm 4 under clock drift and arbitrary offsets",
		Note: fmt.Sprintf("real time after T_s and min per-node full frames at completion; ε=%.2g, L=%.1f, N=%d CR network",
			opts.Eps, e4FrameLen, n),
		Columns: []string{"frame bound", "time bound", "mean time", "p95 time", "mean frames", "≤bound"},
	}
	root := rng.New(opts.Seed)
	nw, params, err := crNetwork(n, 8, 10, root.Split())
	if err != nil {
		return nil, fmt.Errorf("E4: %w", err)
	}
	deltaEst := nextPow2(params.Delta)
	sc := analytic.Scenario{
		N: params.N, S: params.S, Delta: params.Delta,
		DeltaEst: deltaEst, Rho: params.Rho, Eps: opts.Eps,
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("E4: %w", err)
	}
	frameBound := sc.Theorem9Frames()
	for _, cf := range configs {
		timeBound := sc.Theorem10Span(e4FrameLen, cf.delta)
		// Horizon: the frame bound plus slack for the pre-T_s stagger,
		// capped for tractability. Completion empirically needs well under
		// 4000 frames; a trial that exceeds the cap is counted as a bound
		// failure (conservative), so the cap cannot overstate the claim.
		maxFrames := int(frameBound) + 40
		if maxFrames > 4000 {
			maxFrames = 4000
		}
		// Build all trial configurations sequentially (fixing the random
		// streams), then run the engines in parallel.
		cfgs := make([]sim.AsyncConfig, 0, trials)
		for trial := 0; trial < trials; trial++ {
			nodes := make([]sim.AsyncNode, nw.N())
			for u := 0; u < nw.N(); u++ {
				p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
				if err != nil {
					return nil, fmt.Errorf("E4: %w", err)
				}
				drift, err := cf.mk(root.Split())
				if err != nil {
					return nil, fmt.Errorf("E4: %w", err)
				}
				nodes[u] = sim.AsyncNode{
					Protocol: p,
					Start:    root.Float64() * 10 * e4FrameLen,
					Drift:    drift,
				}
			}
			cfgs = append(cfgs, sim.AsyncConfig{
				Network:   nw,
				Nodes:     nodes,
				FrameLen:  e4FrameLen,
				MaxFrames: maxFrames,
			})
		}
		results, err := harness.AsyncConfigs(cfgs)
		if err != nil {
			return nil, fmt.Errorf("E4: %w", err)
		}
		var afterTs, minFrames []float64
		failures := 0
		for _, res := range results {
			if !res.Complete {
				failures++
				continue
			}
			afterTs = append(afterTs, res.CompletionTime-res.Ts)
			minFrames = append(minFrames, float64(res.MinFullFrames(res.Ts, res.CompletionTime)))
		}
		timeSum := metrics.Summarize(afterTs)
		frameSum := metrics.Summarize(minFrames)
		within := metrics.FractionWithin(afterTs, timeBound) *
			float64(len(afterTs)) / float64(trials)
		table.Rows = append(table.Rows, Row{
			Label: cf.label,
			Values: []float64{
				frameBound, timeBound, timeSum.Mean, timeSum.P95, frameSum.Mean, within,
			},
		})
	}
	return table, nil
}
