package experiment

import (
	"fmt"

	"m2hew/internal/analytic"
	"m2hew/internal/channel"
	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E5 reproduces the per-unit coverage probability bounds: Eq. (6) for a
// synchronous Algorithm 1 stage (≥ ρ/(16·max(S,Δ))) and Lemma 5 for an
// aligned asynchronous frame pair (≥ ρ/(8·max(2S,3Δ_est))).
//
// The instrumented scenario is a star: hub u listens for transmitter v = 1
// while Δ−1 additional neighbors contend. All nodes run the real protocol
// (everyone both transmits and listens per their schedule); the measurement
// counts, over a long run, the fraction of stages (resp. receiver frames)
// in which the designated link (v,u) is covered. The paper's claim holds if
// every empirical frequency is at or above its bound; since the bounds chain
// several worst-case inequalities, empirical values sit well above them.
func E5(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	type config struct {
		s     int // channels per node (homogeneous: S = |A(u)|)
		delta int // hub degree Δ
	}
	configs := []config{
		{1, 2}, {2, 2}, {4, 4}, {8, 4},
	}
	if opts.Quick {
		configs = configs[:2]
	}
	units := 40000
	if opts.Quick {
		units = 6000
	}
	table := &Table{
		ID:    "E5",
		Title: "Eq.(6) and Lemma 5: per-stage / per-frame link coverage probability",
		Note: fmt.Sprintf("star with hub degree Δ, homogeneous S channels; empirical frequency over %d units vs lower bound",
			units),
		Columns: []string{"eq6 bound", "sync measured", "sync/bound", "lem5 bound", "async measured", "async/bound"},
	}
	root := rng.New(opts.Seed)
	for _, cf := range configs {
		nw, err := topology.Star(cf.delta + 1)
		if err != nil {
			return nil, fmt.Errorf("E5: %w", err)
		}
		if err := topology.AssignHomogeneous(nw, cf.s); err != nil {
			return nil, fmt.Errorf("E5: %w", err)
		}
		params := nw.ComputeParams()
		deltaEst := nextPow2(params.Delta)
		sc := analytic.Scenario{
			N: params.N, S: params.S, Delta: params.Delta,
			DeltaEst: deltaEst, Rho: params.Rho, Eps: opts.Eps,
		}
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("E5: %w", err)
		}

		// Prepare both instrumented runs sequentially (fixing the random
		// streams), then execute them in parallel through the harness; the
		// runs only touch their own pre-split sources.
		syncJob, err := e5SyncJob(nw, deltaEst, units, root)
		if err != nil {
			return nil, fmt.Errorf("E5 sync: %w", err)
		}
		asyncJob, err := e5AsyncJob(nw, deltaEst, units, root)
		if err != nil {
			return nil, fmt.Errorf("E5 async: %w", err)
		}
		jobs := []func(*harness.Scratch) (float64, error){syncJob, asyncJob}
		freqs := make([]float64, len(jobs))
		if err := harness.RunScratch(len(jobs), func(i int, sc *harness.Scratch) error {
			f, err := jobs[i](sc)
			if err != nil {
				return err
			}
			freqs[i] = f
			return nil
		}); err != nil {
			return nil, fmt.Errorf("E5: %w", err)
		}
		syncFreq, asyncFreq := freqs[0], freqs[1]
		eq6 := sc.Eq6CoverageBound()
		lem5 := sc.Lemma5CoverageBound()
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("S=%d Δ=%d", cf.s, cf.delta),
			Values: []float64{
				eq6, syncFreq, syncFreq / eq6,
				lem5, asyncFreq, asyncFreq / lem5,
			},
		})
	}
	return table, nil
}

// e5SyncJob prepares a run measuring the fraction of Algorithm 1 stages in
// which the link (1 → hub 0) is covered. Protocol construction (and hence
// all root-stream consumption) happens before the returned job runs.
func e5SyncJob(nw *topology.Network, deltaEst, stages int, root *rng.Source) (func(*harness.Scratch) (float64, error), error) {
	stageLen := core.StageLen(deltaEst)
	protos := make([]sim.SyncProtocol, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewSyncStaged(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
		if err != nil {
			return nil, err
		}
		protos[u] = p
	}
	return func(sc *harness.Scratch) (float64, error) {
		covered := make(map[int]bool, stages)
		_, err := sim.RunSync(sim.SyncConfig{
			Network:       nw,
			Protocols:     protos,
			MaxSlots:      stages * stageLen,
			RunToMaxSlots: true,
			Scratch:       sc.Sync(),
			Observer: sim.DeliverObserver(func(at float64, from, to topology.NodeID, _ channel.ID) {
				if from == 1 && to == 0 {
					covered[int(at)/stageLen] = true
				}
			}),
		})
		if err != nil {
			return 0, err
		}
		return float64(len(covered)) / float64(stages), nil
	}, nil
}

// e5AsyncJob prepares a run measuring the fraction of the hub's frames
// during which the link (1 → hub 0) is covered. With ideal same-phase
// clocks each hub frame forms exactly one aligned pair with each neighbor
// frame, so the per-frame frequency is the per-aligned-pair coverage
// probability the Lemma 5 bound addresses. (Drifting clocks change which
// pair is aligned but not the per-frame counting; the ideal-clock variant
// keeps the estimator exact.)
func e5AsyncJob(nw *topology.Network, deltaEst, frames int, root *rng.Source) (func(*harness.Scratch) (float64, error), error) {
	nodes := make([]sim.AsyncNode, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
		if err != nil {
			return nil, err
		}
		nodes[u] = sim.AsyncNode{Protocol: p, Drift: clock.Ideal}
	}
	return func(sc *harness.Scratch) (float64, error) {
		covered := make(map[int]bool, frames)
		_, err := sim.RunAsync(sim.AsyncConfig{
			Network:   nw,
			Nodes:     nodes,
			FrameLen:  e4FrameLen,
			MaxFrames: frames,
			Scratch:   sc.Async(),
			Observer: sim.DeliverObserver(func(at float64, from, to topology.NodeID, _ channel.ID) {
				if from == 1 && to == 0 {
					covered[int(at/e4FrameLen)] = true
				}
			}),
		})
		if err != nil {
			return 0, err
		}
		return float64(len(covered)) / float64(frames), nil
	}, nil
}
