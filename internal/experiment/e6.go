package experiment

import (
	"fmt"

	"m2hew/internal/clock"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
)

// E6 audits the frame-geometry lemmas that carry Algorithm 4's analysis:
//
//   - Lemma 4: a frame of one node overlaps at most 3 frames of another.
//   - Lemma 7: after any instant T ≥ T_s, some pair among the first two full
//     frames of a transmitter and a receiver is aligned.
//   - Lemma 8: an execution with M full frames of both nodes contains an
//     admissible sequence of at least M/6 frame pairs.
//
// For each drift process at δ = 1/7 (the paper's Assumption 1 boundary), the
// audit generates pairs of drifting timelines with random offsets and checks
// all three lemmas exhaustively over a long window. Expected values: max
// overlap ≤ 3, alignment success rate = 1, admissible yield ratio ≥ 1, zero
// admissibility violations.
func E6(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	framesPerPair := 400
	pairs := opts.Trials
	if opts.Quick {
		framesPerPair = 150
	}
	type config struct {
		label string
		mk    func(invert bool, r *rng.Source) (clock.DriftProcess, error)
	}
	delta := clock.MaxAsyncDrift
	configs := []config{
		{"ideal", func(bool, *rng.Source) (clock.DriftProcess, error) { return clock.Ideal, nil }},
		{"const ±δ", func(invert bool, _ *rng.Source) (clock.DriftProcess, error) {
			if invert {
				return clock.Constant(-delta), nil
			}
			return clock.Constant(delta), nil
		}},
		{"walk δ", func(_ bool, r *rng.Source) (clock.DriftProcess, error) {
			return clock.NewRandomWalk(delta, 0.04, r)
		}},
		{"sine δ", func(invert bool, _ *rng.Source) (clock.DriftProcess, error) {
			phase := 0.0
			if invert {
				phase = 3.14159
			}
			return clock.NewSinusoidal(delta, 29, phase)
		}},
		{"alt δ", func(invert bool, _ *rng.Source) (clock.DriftProcess, error) {
			return clock.NewAlternating(delta, 4, invert)
		}},
	}
	table := &Table{
		ID:    "E6",
		Title: "Lemmas 4, 7, 8: frame overlap, alignment, admissible-sequence yield at δ=1/7",
		Note: fmt.Sprintf("%d timeline pairs × %d frames per drift process; overlap must be ≤3, align rate 1, yield ≥ 1/6",
			pairs, framesPerPair),
		Columns: []string{"max overlap", "align rate", "yield ratio", "violations"},
	}
	root := rng.New(opts.Seed)
	for _, cf := range configs {
		maxOverlap := 0
		alignChecks, alignOK := 0, 0
		minYield := 1.0
		violations := 0
		for p := 0; p < pairs; p++ {
			offset := root.Float64() * 4 * e4FrameLen
			driftA, err := cf.mk(false, root.Split())
			if err != nil {
				return nil, fmt.Errorf("E6 %s: %w", cf.label, err)
			}
			driftB, err := cf.mk(true, root.Split())
			if err != nil {
				return nil, fmt.Errorf("E6 %s: %w", cf.label, err)
			}
			a, err := clock.NewTimeline(0, e4FrameLen, 3, driftA)
			if err != nil {
				return nil, fmt.Errorf("E6 %s: %w", cf.label, err)
			}
			b, err := clock.NewTimeline(offset, e4FrameLen, 3, driftB)
			if err != nil {
				return nil, fmt.Errorf("E6 %s: %w", cf.label, err)
			}
			// Lemma 4 audit, both directions.
			if o := sim.MaxOverlap(a, b, framesPerPair); o > maxOverlap {
				maxOverlap = o
			}
			if o := sim.MaxOverlap(b, a, framesPerPair); o > maxOverlap {
				maxOverlap = o
			}
			// Lemma 7 audit at random instants after both clocks started.
			for i := 0; i < 50; i++ {
				t := offset + root.Float64()*float64(framesPerPair-10)*e4FrameLen/(1+delta)
				alignChecks++
				if _, ok := sim.FindAlignedPairAfter(a, b, t); ok {
					alignOK++
				}
			}
			// Lemma 8 audit: construct σ and verify admissibility + yield.
			seq := sim.AdmissibleSequence(a, b, offset, framesPerPair)
			if v := sim.CheckAdmissible(a, b, seq); v != 0 {
				violations++
			}
			// Lemma 8's M counts full frames after T_s; the start offset
			// consumes up to ~5 of timeline a's budget, so measure yield
			// against the frames both nodes certainly completed.
			yield := float64(len(seq)) / (float64(framesPerPair-10) / 6)
			if yield < minYield {
				minYield = yield
			}
		}
		table.Rows = append(table.Rows, Row{
			Label: cf.label,
			Values: []float64{
				float64(maxOverlap),
				float64(alignOK) / float64(alignChecks),
				minYield,
				float64(violations),
			},
		})
	}
	return table, nil
}
