package experiment

import (
	"fmt"

	"m2hew/internal/clock"
	"m2hew/internal/harness"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
)

// E6 audits the frame-geometry lemmas that carry Algorithm 4's analysis:
//
//   - Lemma 4: a frame of one node overlaps at most 3 frames of another.
//   - Lemma 7: after any instant T ≥ T_s, some pair among the first two full
//     frames of a transmitter and a receiver is aligned.
//   - Lemma 8: an execution with M full frames of both nodes contains an
//     admissible sequence of at least M/6 frame pairs.
//
// For each drift process at δ = 1/7 (the paper's Assumption 1 boundary), the
// audit generates pairs of drifting timelines with random offsets and checks
// all three lemmas exhaustively over a long window. Expected values: max
// overlap ≤ 3, alignment success rate = 1, admissible yield ratio ≥ 1, zero
// admissibility violations.
func E6(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	framesPerPair := 400
	pairs := opts.Trials
	if opts.Quick {
		framesPerPair = 150
	}
	type config struct {
		label string
		mk    func(invert bool, r *rng.Source) (clock.DriftProcess, error)
	}
	delta := clock.MaxAsyncDrift
	configs := []config{
		{"ideal", func(bool, *rng.Source) (clock.DriftProcess, error) { return clock.Ideal, nil }},
		{"const ±δ", func(invert bool, _ *rng.Source) (clock.DriftProcess, error) {
			if invert {
				return clock.Constant(-delta), nil
			}
			return clock.Constant(delta), nil
		}},
		{"walk δ", func(_ bool, r *rng.Source) (clock.DriftProcess, error) {
			return clock.NewRandomWalk(delta, 0.04, r)
		}},
		{"sine δ", func(invert bool, _ *rng.Source) (clock.DriftProcess, error) {
			phase := 0.0
			if invert {
				phase = 3.14159
			}
			return clock.NewSinusoidal(delta, 29, phase)
		}},
		{"alt δ", func(invert bool, _ *rng.Source) (clock.DriftProcess, error) {
			return clock.NewAlternating(delta, 4, invert)
		}},
	}
	table := &Table{
		ID:    "E6",
		Title: "Lemmas 4, 7, 8: frame overlap, alignment, admissible-sequence yield at δ=1/7",
		Note: fmt.Sprintf("%d timeline pairs × %d frames per drift process; overlap must be ≤3, align rate 1, yield ≥ 1/6",
			pairs, framesPerPair),
		Columns: []string{"max overlap", "align rate", "yield ratio", "violations"},
	}
	// One prepared timeline pair: all randomness (offset, drift processes,
	// Lemma 7 probe instants) is drawn during the sequential setup phase,
	// in the same stream order as a sequential audit, so the parallel audit
	// below is byte-identical to one.
	type pairJob struct {
		a, b   *clock.Timeline
		offset float64
		probes []float64
	}
	type pairAudit struct {
		maxOverlap int
		alignOK    int
		yield      float64
		violation  bool
	}
	const probesPerPair = 50
	root := rng.New(opts.Seed)
	for _, cf := range configs {
		audits, err := harness.Trials(pairs,
			func(int) (pairJob, error) {
				offset := root.Float64() * 4 * e4FrameLen
				driftA, err := cf.mk(false, root.Split())
				if err != nil {
					return pairJob{}, err
				}
				driftB, err := cf.mk(true, root.Split())
				if err != nil {
					return pairJob{}, err
				}
				a, err := clock.NewTimeline(0, e4FrameLen, 3, driftA)
				if err != nil {
					return pairJob{}, err
				}
				b, err := clock.NewTimeline(offset, e4FrameLen, 3, driftB)
				if err != nil {
					return pairJob{}, err
				}
				probes := make([]float64, probesPerPair)
				for i := range probes {
					probes[i] = offset + root.Float64()*float64(framesPerPair-10)*e4FrameLen/(1+delta)
				}
				return pairJob{a: a, b: b, offset: offset, probes: probes}, nil
			},
			func(_ int, job pairJob) (pairAudit, error) {
				var audit pairAudit
				// Lemma 4 audit, both directions.
				audit.maxOverlap = sim.MaxOverlap(job.a, job.b, framesPerPair)
				if o := sim.MaxOverlap(job.b, job.a, framesPerPair); o > audit.maxOverlap {
					audit.maxOverlap = o
				}
				// Lemma 7 audit at random instants after both clocks started.
				for _, t := range job.probes {
					if _, ok := sim.FindAlignedPairAfter(job.a, job.b, t); ok {
						audit.alignOK++
					}
				}
				// Lemma 8 audit: construct σ and verify admissibility + yield.
				seq := sim.AdmissibleSequence(job.a, job.b, job.offset, framesPerPair)
				audit.violation = sim.CheckAdmissible(job.a, job.b, seq) != 0
				// Lemma 8's M counts full frames after T_s; the start offset
				// consumes up to ~5 of timeline a's budget, so measure yield
				// against the frames both nodes certainly completed.
				audit.yield = float64(len(seq)) / (float64(framesPerPair-10) / 6)
				return audit, nil
			})
		if err != nil {
			return nil, fmt.Errorf("E6 %s: %w", cf.label, err)
		}
		maxOverlap := 0
		alignChecks, alignOK := 0, 0
		minYield := 1.0
		violations := 0
		for _, audit := range audits {
			if audit.maxOverlap > maxOverlap {
				maxOverlap = audit.maxOverlap
			}
			alignChecks += probesPerPair
			alignOK += audit.alignOK
			if audit.yield < minYield {
				minYield = audit.yield
			}
			if audit.violation {
				violations++
			}
		}
		table.Rows = append(table.Rows, Row{
			Label: cf.label,
			Values: []float64{
				float64(maxOverlap),
				float64(alignOK) / float64(alignChecks),
				minYield,
				float64(violations),
			},
		})
	}
	return table, nil
}
