package experiment

import (
	"fmt"

	"m2hew/internal/baseline"
	"m2hew/internal/channel"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E7 reproduces the Related Work critique (Section I): extending a
// single-channel discovery protocol by running one instance per universal
// channel costs time linear in |U| even when every node's available set is
// small, whereas Algorithm 3's running time depends only on S, Δ_est and ρ.
//
// A clique of nodes each holding the same 4 channels is discovered (a) by
// the universal-set birthday baseline with growing universal set sizes U,
// and (b) by Algorithm 3, which never looks at U. The baseline's completion
// slots must grow ~linearly with U; Algorithm 3's must stay flat. The
// deterministic round-robin baseline's exact N·U schedule length is listed
// for reference.
func E7(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	n := 8
	universes := []int{4, 8, 16, 32, 64}
	if opts.Quick {
		n = 5
		universes = []int{4, 16}
	}
	const availSize = 4
	table := &Table{
		ID:    "E7",
		Title: "Related-work critique: universal-set baseline cost grows with U, Algorithm 3 does not",
		Note: fmt.Sprintf("clique N=%d, every node holds channels 0..3 (S=%d) regardless of U; mean completion slots over %d trials",
			n, availSize, opts.Trials),
		Columns: []string{"baseline mean", "baseline p95", "alg3 mean", "alg3 p95", "base/alg3", "det N·U"},
	}
	root := rng.New(opts.Seed)
	nw, err := topology.Clique(n)
	if err != nil {
		return nil, fmt.Errorf("E7: %w", err)
	}
	if err := topology.AssignHomogeneous(nw, availSize); err != nil {
		return nil, fmt.Errorf("E7: %w", err)
	}
	params := nw.ComputeParams()
	deltaEst := nextPow2(params.Delta)
	_ = channel.Set{}

	// Algorithm 3 is independent of U: measure once.
	alg3Factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
		return core.NewSyncUniform(nw.Avail(u), deltaEst, r)
	}
	alg3Results, err := harness.SyncTrials(nw, alg3Factory, nil, 200000, opts.Trials, root)
	if err != nil {
		return nil, fmt.Errorf("E7 alg3: %w", err)
	}
	alg3Slots, alg3Incomplete := harness.CompletionSlots(alg3Results)
	if alg3Incomplete > 0 {
		return nil, fmt.Errorf("E7: algorithm 3 incomplete in %d trials", alg3Incomplete)
	}
	alg3 := metrics.Summarize(alg3Slots)

	for _, u := range universes {
		baseFactory := func(id topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
			return baseline.NewUniversalBirthday(nw.Avail(id), u, deltaEst, r)
		}
		baseResults, err := harness.SyncTrials(nw, baseFactory, nil, 400000*u/4, opts.Trials, root)
		if err != nil {
			return nil, fmt.Errorf("E7 U=%d: %w", u, err)
		}
		baseSlots, baseIncomplete := harness.CompletionSlots(baseResults)
		if baseIncomplete > 0 {
			return nil, fmt.Errorf("E7 U=%d: baseline incomplete in %d trials", u, baseIncomplete)
		}
		base := metrics.Summarize(baseSlots)
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("U=%d", u),
			Values: []float64{
				base.Mean, base.P95, alg3.Mean, alg3.P95,
				base.Mean / alg3.Mean, float64(n * u),
			},
		})
	}
	return table, nil
}
