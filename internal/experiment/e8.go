package experiment

import (
	"fmt"

	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E8 reproduces the paper's central qualitative claim about heterogeneity
// (Section II): "the running time of our algorithms is inversely
// proportional to ρ".
//
// The block-overlap channel assigner realizes exact span-ratios on a fixed
// graph with fixed S = 12 and fixed Δ, so ρ is the only moving part:
// shared-block size m gives ρ = m/12. If the paper's claim holds, measured
// completion slots × ρ is roughly constant across rows (the "slots·ρ"
// column), i.e. completion time scales as 1/ρ.
func E8(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	const s = 12
	shared := []int{12, 6, 3, 2, 1}
	if opts.Quick {
		shared = []int{12, 3}
	}
	n := 8
	table := &Table{
		ID:    "E8",
		Title: "Heterogeneity cost: completion time ∝ 1/ρ at fixed S, Δ, N",
		Note: fmt.Sprintf("ring N=%d, block-overlap sets with |A|=%d; Algorithm 3, mean completion slots over %d trials",
			n, s, opts.Trials),
		Columns: []string{"ρ", "1/ρ", "mean slots", "p95 slots", "slots·ρ"},
	}
	root := rng.New(opts.Seed)
	for _, m := range shared {
		nw, err := topology.Ring(n)
		if err != nil {
			return nil, fmt.Errorf("E8: %w", err)
		}
		if err := topology.AssignBlockOverlap(nw, m, s-m); err != nil {
			return nil, fmt.Errorf("E8 m=%d: %w", m, err)
		}
		params := nw.ComputeParams()
		deltaEst := nextPow2(params.Delta)
		factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
			return core.NewSyncUniform(nw.Avail(u), deltaEst, r)
		}
		results, err := harness.SyncTrials(nw, factory, nil, 4000000/m, opts.Trials, root)
		if err != nil {
			return nil, fmt.Errorf("E8 m=%d: %w", m, err)
		}
		slots, incomplete := harness.CompletionSlots(results)
		if incomplete > 0 {
			return nil, fmt.Errorf("E8 m=%d: %d incomplete trials", m, incomplete)
		}
		sum := metrics.Summarize(slots)
		rho := params.Rho
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("m=%d", m),
			Values: []float64{
				rho, 1 / rho, sum.Mean, sum.P95, sum.Mean * rho,
			},
		})
	}
	return table, nil
}
