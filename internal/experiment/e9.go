package experiment

import (
	"fmt"

	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/harness"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// E9 probes why Assumption 1 (δ ≤ 1/7) is load-bearing: it sweeps the drift
// bound past the thresholds the proofs use (1/7 for Lemma 7's alignment
// window, 1/5 and 1/3 for its containment sub-claims and Lemma 4) under
// adversarial alternating drift with opposite phases, and measures:
//
//   - the Lemma 7 alignment success rate and Lemma 4 max overlap (the
//     structural guarantees), and
//   - Algorithm 4's completion time on a small network (the end-to-end
//     effect — the algorithm may keep working above 1/7 since the lemmas
//     are sufficient, not necessary; what disappears is the guarantee).
func E9(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	deltas := []float64{0, 0.05, clock.MaxAsyncDrift, 0.2, 0.3, 0.45}
	if opts.Quick {
		deltas = []float64{0, clock.MaxAsyncDrift, 0.45}
	}
	framesPerPair := 300
	n := 6
	table := &Table{
		ID:    "E9",
		Title: "Drift sensitivity: structural lemmas and completion time across δ",
		Note: fmt.Sprintf("structural audit: constant opposite drifts ±δ (unbounded skew growth); network: alternating drift, ring N=%d; %d trials",
			n, opts.Trials),
		Columns: []string{"align rate", "max overlap", "mean time", "p95 time", "incomplete"},
	}
	type pairJob struct {
		a, b   *clock.Timeline
		probes []float64
	}
	type pairAudit struct {
		alignOK    int
		maxOverlap int
	}
	const probesPerPair = 50
	root := rng.New(opts.Seed)
	for _, delta := range deltas {
		delta := delta
		// Structural audit on adversarial timeline pairs; randomness is
		// drawn in the sequential setup phase in the same stream order as a
		// sequential audit, the lemma checks run on the pool.
		audits, err := harness.Trials(opts.Trials,
			func(int) (pairJob, error) {
				offset := root.Float64() * 4 * e4FrameLen
				a, b, err := adversarialPair(delta, offset)
				if err != nil {
					return pairJob{}, err
				}
				probes := make([]float64, probesPerPair)
				for i := range probes {
					probes[i] = offset + root.Float64()*float64(framesPerPair-10)*e4FrameLen/(1+delta)
				}
				return pairJob{a: a, b: b, probes: probes}, nil
			},
			func(_ int, job pairJob) (pairAudit, error) {
				var audit pairAudit
				audit.maxOverlap = sim.MaxOverlap(job.a, job.b, framesPerPair)
				if o := sim.MaxOverlap(job.b, job.a, framesPerPair); o > audit.maxOverlap {
					audit.maxOverlap = o
				}
				for _, t := range job.probes {
					if _, ok := sim.FindAlignedPairAfter(job.a, job.b, t); ok {
						audit.alignOK++
					}
				}
				return audit, nil
			})
		if err != nil {
			return nil, fmt.Errorf("E9 δ=%.2f: %w", delta, err)
		}
		alignChecks, alignOK, maxOverlap := 0, 0, 0
		for _, audit := range audits {
			alignChecks += probesPerPair
			alignOK += audit.alignOK
			if audit.maxOverlap > maxOverlap {
				maxOverlap = audit.maxOverlap
			}
		}

		// End-to-end effect on Algorithm 4.
		nw, err := topology.Ring(n)
		if err != nil {
			return nil, fmt.Errorf("E9: %w", err)
		}
		if err := topology.AssignHomogeneous(nw, 2); err != nil {
			return nil, fmt.Errorf("E9: %w", err)
		}
		params := nw.ComputeParams()
		deltaEst := nextPow2(params.Delta)
		cfgs := make([]sim.AsyncConfig, 0, opts.Trials)
		for trial := 0; trial < opts.Trials; trial++ {
			nodes := make([]sim.AsyncNode, nw.N())
			for u := 0; u < nw.N(); u++ {
				proto, err := core.NewAsync(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
				if err != nil {
					return nil, fmt.Errorf("E9: %w", err)
				}
				var drift clock.DriftProcess = clock.Ideal
				if delta > 0 {
					drift, err = clock.NewAlternating(delta, 4, u%2 == 1)
					if err != nil {
						return nil, fmt.Errorf("E9: %w", err)
					}
				}
				nodes[u] = sim.AsyncNode{
					Protocol: proto,
					Start:    root.Float64() * 5 * e4FrameLen,
					Drift:    drift,
				}
			}
			cfgs = append(cfgs, sim.AsyncConfig{
				Network:   nw,
				Nodes:     nodes,
				FrameLen:  e4FrameLen,
				MaxFrames: 3000,
			})
		}
		results, err := harness.AsyncConfigs(cfgs)
		if err != nil {
			return nil, fmt.Errorf("E9: %w", err)
		}
		var times []float64
		incomplete := 0
		for _, res := range results {
			if !res.Complete {
				incomplete++
				continue
			}
			times = append(times, res.CompletionTime-res.Ts)
		}
		sum := metrics.Summarize(times)
		table.Rows = append(table.Rows, Row{
			Label: fmt.Sprintf("δ=%.3f", delta),
			Values: []float64{
				float64(alignOK) / float64(alignChecks),
				float64(maxOverlap),
				sum.Mean, sum.P95, float64(incomplete),
			},
		})
	}
	return table, nil
}

// adversarialPair builds two timelines with constant opposite drift at bound
// delta — the worst case for the frame lemmas, since relative skew grows
// without bound and every phase relationship is eventually visited.
func adversarialPair(delta, offset float64) (*clock.Timeline, *clock.Timeline, error) {
	a, err := clock.NewTimeline(0, e4FrameLen, 3, clock.Constant(delta))
	if err != nil {
		return nil, nil, err
	}
	b, err := clock.NewTimeline(offset, e4FrameLen, 3, clock.Constant(-delta))
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}
