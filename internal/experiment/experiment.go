// Package experiment implements the reproduction experiment suite E1–E21
// defined in DESIGN.md.
//
// The paper proves probabilistic running-time bounds instead of reporting
// measurements, so each "table" here is a claim-versus-measurement table:
// one of the paper's theorems, lemmas or qualitative claims is exercised on
// simulated M²HeW networks and the measured behaviour is put next to the
// analytic bound. Experiments are deterministic functions of (Options.Seed);
// cmd/ndbench prints them, bench_test.go wraps each as a benchmark, and
// EXPERIMENTS.md records a reference run.
package experiment

import (
	"fmt"
	"io"
	"math"
	"strings"

	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// Options control the scale of an experiment run.
type Options struct {
	// Trials is the number of simulation trials per table row; 0 means the
	// default (20).
	Trials int
	// Seed is the root seed; every random decision of the run derives from
	// it. 0 means the default seed 1.
	Seed uint64
	// Eps is the target failure probability ε for the bounds; 0 means 0.1.
	Eps float64
	// Quick shrinks workloads (fewer rows, smaller networks) so the whole
	// suite runs in seconds. Used by tests; benchmarks and ndbench default
	// to full size.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.Trials == 0 {
		o.Trials = 20
		if o.Quick {
			o.Trials = 6
		}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Eps == 0 {
		o.Eps = 0.1
	}
	return o
}

// Table is one experiment's result: a claim-versus-measurement grid.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string `json:"id"`
	// Title describes the paper claim being reproduced.
	Title string `json:"title"`
	// Note explains how to read the table (units, caveats).
	Note string `json:"note,omitempty"`
	// Columns names the value columns.
	Columns []string `json:"columns"`
	// Rows holds one labeled value vector per configuration.
	Rows []Row `json:"rows"`
}

// Row is one configuration's measurements.
type Row struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// Value returns the cell at (rowLabel, column).
func (t *Table) Value(rowLabel, column string) (float64, bool) {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel && col < len(r.Values) {
			return r.Values[col], true
		}
	}
	return 0, false
}

// Column returns all values of one column in row order.
func (t *Table) Column(column string) ([]float64, bool) {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return nil, false
	}
	out := make([]float64, 0, len(t.Rows))
	for _, r := range t.Rows {
		if col >= len(r.Values) {
			return nil, false
		}
		out = append(out, r.Values[col])
	}
	return out, true
}

// Format writes the table as aligned text.
func (t *Table) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "  (%s)\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("config")
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(r.Values))
		for j, v := range r.Values {
			cells[i][j] = formatCell(v)
		}
	}
	for j, c := range t.Columns {
		widths[j+1] = len(c)
		for i := range cells {
			if j < len(cells[i]) && len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %-*s", widths[0], "config")
	for j, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", widths[j+1], c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "  %-*s", widths[0], r.Label)
		for j := range t.Columns {
			cell := ""
			if j < len(cells[i]) {
				cell = cells[i][j]
			}
			fmt.Fprintf(&b, "  %*s", widths[j+1], cell)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown renders the table as a GitHub-flavored markdown table (used to
// regenerate EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "_%s_\n\n", t.Note)
	}
	b.WriteString("| config |")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|---|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %s |", formatCell(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatCell renders a value compactly: integers without decimals, small
// values with more precision, and out-of-range values (NaN, ±Inf, extreme
// magnitudes) in forms that cannot be mistaken for ordinary measurements.
func formatCell(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.Abs(v) >= 1e15:
		// Beyond slot-count scales; decimal notation would be unreadable.
		return fmt.Sprintf("%.2e", v)
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	case v != 0 && math.Abs(v) < 1e-4:
		// %.4f would round a tiny probability to "0.0000".
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// crNetwork builds the standard cognitive-radio scenario: a connected
// geometric graph with spatial primary-user channel exclusion. The returned
// parameters are the realized (post-repair) values.
func crNetwork(n, universe, primaries int, r *rng.Source) (*topology.Network, topology.Params, error) {
	// Radius chosen to keep random geometric graphs connected with high
	// probability (≳ sqrt(2·ln n / n)) while staying multi-hop.
	radius := 1.6 * math.Sqrt(math.Log(float64(n))/float64(n))
	if radius > 0.7 {
		radius = 0.7
	}
	nw, err := topology.GeometricConnected(n, radius, r, 200)
	if err != nil {
		return nil, topology.Params{}, err
	}
	if _, err := topology.AssignPrimaryUsers(nw, universe, primaries, 0.3, r); err != nil {
		return nil, topology.Params{}, err
	}
	if err := nw.Validate(); err != nil {
		return nil, topology.Params{}, fmt.Errorf("experiment: generated network invalid: %w", err)
	}
	return nw, nw.ComputeParams(), nil
}

// nextPow2 returns the smallest power of two ≥ x (and ≥ 2); degree estimates
// in the experiments are deliberately loose the way a deployment's would be.
func nextPow2(x int) int {
	p := 2
	for p < x {
		p *= 2
	}
	return p
}
