package experiment

import (
	"math"
	"strings"
	"testing"

	"m2hew/internal/rng"
)

func quickOpts() Options {
	return Options{Quick: true, Trials: 4, Seed: 7}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Trials != 20 || o.Seed != 1 || o.Eps != 0.1 {
		t.Fatalf("defaults = %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if q.Trials != 6 {
		t.Fatalf("quick default trials = %d", q.Trials)
	}
	keep := Options{Trials: 3, Seed: 9, Eps: 0.01}.withDefaults()
	if keep.Trials != 3 || keep.Seed != 9 || keep.Eps != 0.01 {
		t.Fatalf("explicit options overridden: %+v", keep)
	}
}

func TestTableAccessors(t *testing.T) {
	tb := &Table{
		ID:      "EX",
		Title:   "test",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Label: "r1", Values: []float64{1, 2}},
			{Label: "r2", Values: []float64{3, 4}},
		},
	}
	if v, ok := tb.Value("r2", "b"); !ok || v != 4 {
		t.Fatalf("Value = %v,%v", v, ok)
	}
	if _, ok := tb.Value("r9", "b"); ok {
		t.Fatal("missing row found")
	}
	if _, ok := tb.Value("r1", "z"); ok {
		t.Fatal("missing column found")
	}
	col, ok := tb.Column("a")
	if !ok || len(col) != 2 || col[0] != 1 || col[1] != 3 {
		t.Fatalf("Column = %v,%v", col, ok)
	}
	if _, ok := tb.Column("z"); ok {
		t.Fatal("missing column found")
	}
}

func TestTableFormatAndMarkdown(t *testing.T) {
	tb := &Table{
		ID:      "EX",
		Title:   "demo",
		Note:    "units",
		Columns: []string{"val"},
		Rows:    []Row{{Label: "row", Values: []float64{1.5}}},
	}
	var sb strings.Builder
	if err := tb.Format(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EX", "demo", "units", "row", "1.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	md := tb.Markdown()
	for _, want := range []string{"### EX", "| config |", "| row |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFormatCell(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3, "3"},
		{1234, "1234"},
		{123.4, "123"},
		{1.5, "1.50"},
		{0.0312, "0.0312"},
		{0, "0"},
		{-3, "-3"},
		{-123.4, "-123"},
		{-1.5, "-1.50"},
		{math.NaN(), "-"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{1e18, "1.00e+18"},
		{-2.5e16, "-2.50e+16"},
		{3.2e-7, "3.20e-07"},
		{-3.2e-7, "-3.20e-07"},
		{1e-4, "0.0001"},
		{math.MaxFloat64, "1.80e+308"},
		{math.SmallestNonzeroFloat64, "4.94e-324"},
		// Large integral values still print exactly below the 1e9 cutoff and
		// switch to %.0f (same digits) above it until the scientific cutoff.
		{999999999, "999999999"},
		{1e12, "1000000000000"},
	}
	for _, tt := range cases {
		if got := formatCell(tt.v); got != tt.want {
			t.Errorf("formatCell(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

// TestTableFormatEdgeValues renders a table whose cells are the pathological
// values end-to-end through Format and Markdown: the output must carry the
// sentinel forms, not panic or silently print zeros.
func TestTableFormatEdgeValues(t *testing.T) {
	tb := &Table{
		ID:      "EDGE",
		Title:   "pathological cells",
		Columns: []string{"nan", "pinf", "ninf", "huge", "tiny"},
		Rows: []Row{{
			Label:  "row",
			Values: []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e18, 3.2e-7},
		}},
	}
	var sb strings.Builder
	if err := tb.Format(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"-", "+Inf", "-Inf", "1.00e+18", "3.20e-07"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	md := tb.Markdown()
	for _, want := range []string{"| +Inf |", "| -Inf |", "| 1.00e+18 |", "| 3.20e-07 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

// TestTableFormatEmpty covers the degenerate shapes: no rows, and a row with
// no values.
func TestTableFormatEmpty(t *testing.T) {
	tb := &Table{ID: "E0", Title: "empty", Columns: []string{"a"}}
	var sb strings.Builder
	if err := tb.Format(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "E0") {
		t.Errorf("empty table output missing header:\n%s", sb.String())
	}
	if md := tb.Markdown(); !strings.Contains(md, "### E0") {
		t.Errorf("empty table markdown missing header:\n%s", md)
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("registry has %d entries, want 21", len(all))
	}
	seen := make(map[string]bool)
	for _, e := range all {
		if e.Run == nil {
			t.Fatalf("%s has nil Run", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := ByID("E4"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestCRNetworkFeasible(t *testing.T) {
	root := rng.New(3)
	nw, params, err := crNetwork(20, 10, 12, root)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if params.N != 20 {
		t.Fatalf("params N = %d", params.N)
	}
	if err := params.CheckRhoBounds(); err != nil {
		t.Fatal(err)
	}
	if !nw.Connected() {
		t.Fatal("crNetwork not connected")
	}
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ x, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {9, 16},
	}
	for _, tt := range cases {
		if got := nextPow2(tt.x); got != tt.want {
			t.Errorf("nextPow2(%d) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestE1BoundHolds(t *testing.T) {
	tb, err := E1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	within, ok := tb.Column("≤bound")
	if !ok {
		t.Fatal("missing ≤bound column")
	}
	for i, w := range within {
		if w < 0.9 {
			t.Errorf("row %d: fraction within Theorem 1 bound %v < 1-ε", i, w)
		}
	}
	// Measured completion should sit far below the conservative bound.
	bounds, _ := tb.Column("M bound")
	means, _ := tb.Column("mean")
	for i := range means {
		if means[i] > bounds[i] {
			t.Errorf("row %d: mean %v exceeds bound %v", i, means[i], bounds[i])
		}
	}
}

func TestE2BoundHolds(t *testing.T) {
	tb, err := E2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	within, _ := tb.Column("≤bound")
	for i, w := range within {
		if w < 0.9 {
			t.Errorf("row %d: fraction within Theorem 2 bound %v", i, w)
		}
	}
}

func TestE3StartWindowIndependence(t *testing.T) {
	tb, err := E3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	within, _ := tb.Column("≤bound")
	for i, w := range within {
		if w < 0.9 {
			t.Errorf("row %d: fraction within Theorem 3 bound %v", i, w)
		}
	}
}

func TestE4BoundHolds(t *testing.T) {
	tb, err := E4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	within, _ := tb.Column("≤bound")
	for i, w := range within {
		if w < 0.9 {
			t.Errorf("row %d: fraction within Theorem 10 bound %v", i, w)
		}
	}
	frames, _ := tb.Column("mean frames")
	bound, _ := tb.Column("frame bound")
	for i := range frames {
		if frames[i] > bound[i] {
			t.Errorf("row %d: frames at completion %v exceed Theorem 9 bound %v", i, frames[i], bound[i])
		}
	}
}

func TestE5MeasuredAboveBound(t *testing.T) {
	tb, err := E5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"sync/bound", "async/bound"} {
		ratios, ok := tb.Column(col)
		if !ok {
			t.Fatalf("missing column %s", col)
		}
		for i, r := range ratios {
			if r < 1 {
				t.Errorf("%s row %d: empirical coverage below the paper's lower bound (ratio %v)", col, i, r)
			}
		}
	}
}

func TestE6LemmasHold(t *testing.T) {
	tb, err := E6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	overlaps, _ := tb.Column("max overlap")
	aligns, _ := tb.Column("align rate")
	yields, _ := tb.Column("yield ratio")
	violations, _ := tb.Column("violations")
	for i := range tb.Rows {
		if overlaps[i] > 3 {
			t.Errorf("row %d: Lemma 4 violated (overlap %v)", i, overlaps[i])
		}
		if aligns[i] < 1 {
			t.Errorf("row %d: Lemma 7 violated (align rate %v)", i, aligns[i])
		}
		if yields[i] < 1 {
			t.Errorf("row %d: Lemma 8 yield %v < 1", i, yields[i])
		}
		if violations[i] != 0 {
			t.Errorf("row %d: %v admissibility violations", i, violations[i])
		}
	}
}

func TestE7BaselineGrowsWithU(t *testing.T) {
	tb, err := E7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	base, _ := tb.Column("baseline mean")
	alg3, _ := tb.Column("alg3 mean")
	last := len(base) - 1
	// Baseline cost at the largest U must clearly exceed its cost at the
	// smallest U (linear growth), while Algorithm 3's is constant across
	// rows by construction.
	if base[last] < base[0]*2 {
		t.Errorf("baseline did not grow with U: %v", base)
	}
	for i := 1; i < len(alg3); i++ {
		if alg3[i] != alg3[0] {
			t.Errorf("algorithm 3 cost varied with U: %v", alg3)
		}
	}
	// At the largest U the baseline must be slower than Algorithm 3.
	if base[last] <= alg3[last] {
		t.Errorf("baseline (%v) not slower than alg3 (%v) at largest U", base[last], alg3[last])
	}
}

func TestE8InverseRho(t *testing.T) {
	tb, err := E8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	means, _ := tb.Column("mean slots")
	rhos, _ := tb.Column("ρ")
	// Completion time must increase as ρ decreases.
	for i := 1; i < len(means); i++ {
		if rhos[i] < rhos[i-1] && means[i] <= means[i-1] {
			t.Errorf("completion did not grow as rho fell: rho %v means %v", rhos, means)
		}
	}
	// slots·ρ should be within a small factor across rows (∝ 1/ρ shape).
	norm, _ := tb.Column("slots·ρ")
	lo, hi := norm[0], norm[0]
	for _, v := range norm {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 4*lo {
		t.Errorf("slots·ρ spread too wide for ∝1/ρ: %v", norm)
	}
}

func TestE9DriftDegradation(t *testing.T) {
	tb, err := E9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	aligns, _ := tb.Column("align rate")
	overlaps, _ := tb.Column("max overlap")
	// Quick mode rows: δ = 0, 1/7, 0.45.
	if aligns[0] < 1 || aligns[1] < 1 {
		t.Errorf("alignment must be guaranteed at δ ≤ 1/7: %v", aligns)
	}
	if overlaps[0] > 3 || overlaps[1] > 3 {
		t.Errorf("Lemma 4 must hold at δ ≤ 1/7: %v", overlaps)
	}
	last := len(aligns) - 1
	if aligns[last] >= 1 && overlaps[last] <= 3 {
		t.Errorf("δ=0.45 adversary violated no lemma; audit vacuous (align %v overlap %v)",
			aligns[last], overlaps[last])
	}
}

func TestE10SlotAblation(t *testing.T) {
	tb, err := E10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode rows: k=1, k=3. The paper's k=3 must dominate k=1
	// dramatically under drifting misaligned clocks.
	k1Mean, ok := tb.Value("k=1", "mean time")
	if !ok {
		t.Fatal("missing k=1 row")
	}
	k3Mean, ok := tb.Value("k=3", "mean time")
	if !ok {
		t.Fatal("missing k=3 row")
	}
	k3Rate, _ := tb.Value("k=3", "complete rate")
	if k3Rate < 1 {
		t.Errorf("k=3 completion rate %v < 1", k3Rate)
	}
	if k1Mean < 5*k3Mean {
		t.Errorf("k=1 (%v) not dramatically slower than k=3 (%v)", k1Mean, k3Mean)
	}
}

func TestE11AsymmetricBoundHolds(t *testing.T) {
	tb, err := E11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	within, _ := tb.Column("≤bound")
	for i, w := range within {
		if w < 0.9 {
			t.Errorf("row %d: fraction within bound %v on asymmetric graph", i, w)
		}
	}
	// Dropping directions shrinks the discovery target.
	links, _ := tb.Column("links")
	if links[len(links)-1] >= links[0] {
		t.Errorf("asymmetry did not reduce reachable links: %v", links)
	}
}

func TestE12LossScaling(t *testing.T) {
	tb, err := E12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	means, _ := tb.Column("mean slots")
	norms, _ := tb.Column("slots·(1-p)")
	// Loss must slow discovery...
	if means[len(means)-1] <= means[0] {
		t.Errorf("loss did not slow discovery: %v", means)
	}
	// ...roughly like 1/(1-p): normalized values within a factor 3.
	lo, hi := norms[0], norms[0]
	for _, v := range norms {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 3*lo {
		t.Errorf("slots·(1-p) spread too wide: %v", norms)
	}
}

func TestE13SpanRestriction(t *testing.T) {
	tb, err := E13(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	within, _ := tb.Column("≤bound")
	for i, w := range within {
		if w < 0.9 {
			t.Errorf("row %d: fraction within bound %v under restricted spans", i, w)
		}
	}
	rhos, _ := tb.Column("ρ")
	means, _ := tb.Column("mean")
	// Tighter spans (smaller ρ) must cost more time.
	last := len(rhos) - 1
	if rhos[last] >= rhos[0] {
		t.Fatalf("restriction did not lower rho: %v", rhos)
	}
	if means[last] <= means[0] {
		t.Errorf("restriction did not slow discovery: %v", means)
	}
}

func TestE14TerminationTradeoff(t *testing.T) {
	tb, err := E14(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	recalls, _ := tb.Column("recall")
	actives, _ := tb.Column("mean active")
	stopped, _ := tb.Column("all stopped")
	last := len(recalls) - 1
	// A generous idle limit must reach (near-)full recall with all nodes
	// eventually off.
	if recalls[last] < 0.95 {
		t.Errorf("large idle limit recall %v < 0.95", recalls[last])
	}
	for i, s := range stopped {
		if s < 1 {
			t.Errorf("row %d: %v of nodes never stopped", i, 1-s)
		}
	}
	// Energy grows with the idle limit.
	if actives[last] <= actives[0] {
		t.Errorf("idle limit did not cost energy: %v", actives)
	}
}

func TestE15TailDominated(t *testing.T) {
	tb, err := E15(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	dominated, _ := tb.Column("dominated")
	for i, d := range dominated {
		if d != 1 {
			t.Errorf("row %d: empirical tail exceeds the analytic failure bound", i)
		}
	}
	emp, _ := tb.Column("empirical CCDF")
	// The CCDF is non-increasing in s.
	for i := 1; i < len(emp); i++ {
		if emp[i] > emp[i-1] {
			t.Errorf("empirical CCDF not monotone: %v", emp)
		}
	}
}

func TestE16CouponCollectorShape(t *testing.T) {
	tb, err := E16(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ratios, _ := tb.Column("ratio")
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < 0.3 || r > 1.5 {
			t.Errorf("measured/predicted ratio %v outside [0.3, 1.5]", r)
		}
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	// The ratio must be flat across n: same asymptotic growth.
	if hi > 2.5*lo {
		t.Errorf("ratio not flat across clique sizes: %v", ratios)
	}
}

func TestE17ProgressProfile(t *testing.T) {
	tb, err := E17(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows, want one per algorithm", len(tb.Rows))
	}
	t50, _ := tb.Column("t50")
	t90, _ := tb.Column("t90")
	t100, _ := tb.Column("t100")
	tails, _ := tb.Column("tail t100/t50")
	for i := range tb.Rows {
		if !(t50[i] <= t90[i] && t90[i] <= t100[i]) {
			t.Errorf("row %d: quantile times not monotone: %v %v %v", i, t50[i], t90[i], t100[i])
		}
		// The coupon-collector tail: completing the last links costs a
		// multiple of reaching half coverage.
		if tails[i] < 1.5 {
			t.Errorf("row %d: no long tail (ratio %v)", i, tails[i])
		}
	}
	// The asynchronous algorithm pays a constant over the synchronous ones.
	async, _ := tb.Value("alg4 async", "t100")
	sync3, _ := tb.Value("alg3 uniform", "t100")
	if async <= sync3 {
		t.Errorf("async (%v) unexpectedly faster than sync (%v) in slot units", async, sync3)
	}
}

func TestSuiteDeterminism(t *testing.T) {
	// The whole point of the seeded harness: identical options produce
	// identical tables, including with the parallel trial runners.
	for _, id := range []string{"E1", "E4", "E8"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		a, err := e.Run(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: row counts differ", id)
		}
		for i := range a.Rows {
			if a.Rows[i].Label != b.Rows[i].Label {
				t.Fatalf("%s row %d: labels differ", id, i)
			}
			for j := range a.Rows[i].Values {
				if a.Rows[i].Values[j] != b.Rows[i].Values[j] {
					t.Fatalf("%s row %d col %d: %v != %v",
						id, i, j, a.Rows[i].Values[j], b.Rows[i].Values[j])
				}
			}
		}
	}
}

func TestE18ChurnShape(t *testing.T) {
	tb, err := E18(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	affected, _ := tb.Column("affected")
	ratios, _ := tb.Column("re/initial")
	rhoAfter, _ := tb.Column("ρ after")
	rhoBefore, _ := tb.Column("ρ before")
	last := len(tb.Rows) - 1
	// Wider churn affects more nodes.
	if affected[last] <= affected[0] {
		t.Errorf("churn radius did not grow the affected set: %v", affected)
	}
	// Revocation cannot raise ρ.
	for i := range tb.Rows {
		if rhoAfter[i] > rhoBefore[i]+1e-12 {
			t.Errorf("row %d: revocation raised rho %v -> %v", i, rhoBefore[i], rhoAfter[i])
		}
	}
	// Re-discovery completed in every row (ratio computed from full runs).
	// The cost-growth-with-churn shape needs full-size trials to rise above
	// noise; the reference run in EXPERIMENTS.md demonstrates it, while the
	// quick-mode test only pins the invariants above plus completion.
	for i, r := range ratios {
		if r <= 0 {
			t.Errorf("row %d: no re-discovery measurement (ratio %v)", i, r)
		}
	}
}

func TestE19AckConfirmation(t *testing.T) {
	tb, err := E19(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ratios, _ := tb.Column("T_ack/T_in")
	for i, r := range ratios {
		// Confirmation needs strictly more than coverage but stays within a
		// small constant of it (one extra coverage epoch).
		if r < 1 {
			t.Errorf("row %d: confirmation before coverage (ratio %v)", i, r)
		}
		if r > 5 {
			t.Errorf("row %d: confirmation ratio %v implausibly large", i, r)
		}
	}
	links, _ := tb.Column("links")
	targets, _ := tb.Column("ack target")
	for i := range tb.Rows {
		if targets[i] > links[i] {
			t.Errorf("row %d: more confirmable links than reachable ones", i)
		}
	}
	// Asymmetry shrinks the confirmable set strictly below the reachable
	// set (row 0 is symmetric: equal).
	if targets[0] != links[0] {
		t.Errorf("symmetric row: ack target %v != links %v", targets[0], links[0])
	}
	last := len(targets) - 1
	if targets[last] >= links[last] {
		t.Errorf("asymmetric row: ack target %v not below links %v", targets[last], links[last])
	}
}
