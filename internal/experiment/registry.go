package experiment

import (
	"fmt"
	"sort"
)

// Func runs one experiment.
type Func func(Options) (*Table, error)

// Entry describes a registered experiment.
type Entry struct {
	ID    string
	Claim string
	Run   Func
}

// registry lists the experiment suite. Order follows DESIGN.md §5.
var registry = []Entry{
	{"E1", "Theorem 1: Algorithm 1 within M stages w.p. 1-ε", E1},
	{"E2", "Theorem 2: Algorithm 2 without degree knowledge", E2},
	{"E3", "Theorem 3: Algorithm 3 with variable start times", E3},
	{"E4", "Theorems 9+10: Algorithm 4 under clock drift", E4},
	{"E5", "Eq.(6) + Lemma 5: per-unit coverage probability bounds", E5},
	{"E6", "Lemmas 4, 7, 8: frame geometry at δ=1/7", E6},
	{"E7", "Related work: universal-set baseline costs Θ(U)", E7},
	{"E8", "Heterogeneity: completion time ∝ 1/ρ", E8},
	{"E9", "Assumption 1: drift sensitivity past δ=1/7", E9},
	{"E10", "Ablation: slots per frame", E10},
	{"E11", "Extension (a): asymmetric communication graphs", E11},
	{"E12", "Extension (b): unreliable channels", E12},
	{"E13", "Extension (c): diverse propagation characteristics", E13},
	{"E14", "Termination detection: recall vs energy", E14},
	{"E15", "Tail bound: completion CCDF vs analytic failure bound", E15},
	{"E16", "Coupon-collector cross-check (single channel, ref [2])", E16},
	{"E17", "Progress profile: time to 50/90/99/100% coverage", E17},
	{"E18", "Spectrum churn: primary arrival, vacated channel, re-discovery", E18},
	{"E19", "Acknowledgment extension: out-link confirmation (asymmetric graphs)", E19},
	{"E20", "Dynamic networks: discovery latency under node churn", E20},
	{"E21", "Dynamic networks: mobility + primary-user spectrum dynamics", E21},
}

// All returns the registered experiments in suite order.
func All() []Entry {
	out := make([]Entry, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given ID (case-sensitive, e.g. "E4").
func ByID(id string) (Entry, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Entry{}, fmt.Errorf("experiment: unknown id %q (have %v)", id, ids)
}
