package harness

import (
	"m2hew/internal/sim"
)

// AsyncConfigs executes pre-built asynchronous configurations on the
// worker pool and returns their results in input order. Callers construct
// the configs — and therefore consume their random streams — sequentially
// before calling, so results are identical to a sequential run; only the
// engine execution, which draws no shared randomness, is parallel. Configs
// with loss models must not share rng sources.
func AsyncConfigs(cfgs []sim.AsyncConfig) ([]*sim.AsyncResult, error) {
	results := make([]*sim.AsyncResult, len(cfgs))
	err := RunScratch(len(cfgs), func(i int, sc *Scratch) error {
		res, err := runAsyncInstrumented(cfgs[i], sc)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runAsyncInstrumented executes one asynchronous config on the worker's
// scratch, attaching the process-wide instrument's observer (composed with
// any caller-supplied one) when installed. A caller-supplied Scratch in the
// config wins — it carries the caller's reuse contract (e.g. timeline
// recycling decisions).
func runAsyncInstrumented(cfg sim.AsyncConfig, sc *Scratch) (*sim.AsyncResult, error) {
	if cfg.Scratch == nil {
		cfg.Scratch = sc.Async()
	}
	ins := CurrentInstrument()
	var obs sim.Observer
	if ins != nil && cfg.Network != nil {
		obs = ins.TrialObserver(cfg.Network.N(), channelSpace(cfg.Network))
		cfg.Observer = sim.MultiObserver(cfg.Observer, obs)
	}
	res, err := sim.RunAsync(cfg)
	if err != nil {
		return nil, err
	}
	if ins != nil {
		ins.TrialDone(obs)
	}
	return res, nil
}

// AsyncTrials runs a two-phase asynchronous pipeline: build(trial) is
// called sequentially in trial order (the place to draw offsets, drifts
// and protocol randomness from a shared root source) and the resulting
// configs execute on the worker pool. Results are in trial order.
func AsyncTrials(trials int, build func(trial int) (sim.AsyncConfig, error)) ([]*sim.AsyncResult, error) {
	return TrialsScratch(trials, build,
		func(_ int, cfg sim.AsyncConfig, sc *Scratch) (*sim.AsyncResult, error) {
			return runAsyncInstrumented(cfg, sc)
		})
}
