package harness

import (
	"testing"

	"m2hew/internal/core"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// BenchmarkRunOverhead measures the pool's fixed cost per batch with
// trivially cheap jobs — the harness tax every caller pays on top of the
// simulations themselves.
func BenchmarkRunOverhead(b *testing.B) {
	sink := make([]int, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Run(len(sink), func(j int) error {
			sink[j] = j
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyncTrials exercises the full pipeline on a realistic small
// scenario, for comparing harness-driven throughput against the engine
// benchmarks in internal/sim.
func BenchmarkSyncTrials(b *testing.B) {
	nw, err := topology.Clique(8)
	if err != nil {
		b.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 4); err != nil {
		b.Fatal(err)
	}
	factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
		return core.NewSyncUniform(nw.Avail(u), 8, r)
	}
	root := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SyncTrials(nw, SyncFactory(factory), nil, 4000, 16, root); err != nil {
			b.Fatal(err)
		}
	}
}
