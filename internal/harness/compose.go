package harness

import (
	"time"

	"m2hew/internal/sim"
)

// Instruments combines instruments into one, skipping nils — the
// Instrument seam's analog of sim.MultiObserver. It returns nil when every
// argument is nil (keeping SetInstrument(nil) semantics) and a lone
// instrument unchanged. The combination is faithful on every axis:
//
//   - TrialObserver composes the members' per-trial observers with
//     sim.MultiObserver, and the wrapper re-exports the combined
//     subscription mask and internals sink, so a member that subscribes to
//     nothing still costs the engine nothing it didn't already pay.
//   - TrialDone routes each member's own observer back to it, so a member
//     never sees another's observer type.
//   - ObserveBatch / ObserveStart / ObserveRun fan out in argument order.
func Instruments(ins ...Instrument) Instrument {
	var active multiInstrument
	for _, i := range ins {
		if i != nil {
			active = append(active, i)
		}
	}
	switch len(active) {
	case 0:
		return nil
	case 1:
		return active[0]
	default:
		return active
	}
}

// multiInstrument fans the Instrument seam out to several members.
type multiInstrument []Instrument

// composedObs pairs the combined per-trial observer handed to the engine
// with the per-member observers TrialDone routes back. It re-exports the
// combined observer's subscription mask and internals sink: embedding
// alone would erase them (the wrapper's method set would shrink to
// OnEvent), silently flipping engines off their batched path.
type composedObs struct {
	combined sim.Observer
	parts    []sim.Observer
}

// OnEvent implements sim.Observer.
func (c *composedObs) OnEvent(e sim.Event) { c.combined.OnEvent(e) }

// EventMask implements sim.EventMasker, preserving the combined
// subscription (AllEvents when the combined observer declares none).
func (c *composedObs) EventMask() sim.EventMask {
	if m, ok := c.combined.(sim.EventMasker); ok {
		return m.EventMask()
	}
	return sim.AllEvents
}

// OnInternals implements sim.InternalsSink, forwarding to the combined
// observer's sink when it has one.
func (c *composedObs) OnInternals(in sim.Internals) {
	if s, ok := c.combined.(sim.InternalsSink); ok {
		s.OnInternals(in)
	}
}

// TrialObserver implements Instrument.
func (m multiInstrument) TrialObserver(nodes, channels int) sim.Observer {
	parts := make([]sim.Observer, len(m))
	for i, ins := range m {
		parts[i] = ins.TrialObserver(nodes, channels)
	}
	combined := sim.MultiObserver(parts...)
	if combined == nil {
		// Every member declined: keep the engine's no-observer fast path.
		// TrialDone(nil) still fans out below, so members that tally in
		// TrialDone regardless of observers keep working.
		return nil
	}
	return &composedObs{combined: combined, parts: parts}
}

// TrialDone implements Instrument, routing each member's own observer back
// to it. Observers not built by this combinator (including nil) fan out
// verbatim — members ignore foreign observer types by contract.
func (m multiInstrument) TrialDone(obs sim.Observer) {
	if c, ok := obs.(*composedObs); ok {
		for i, ins := range m {
			ins.TrialDone(c.parts[i])
		}
		return
	}
	for _, ins := range m {
		ins.TrialDone(obs)
	}
}

// ObserveRun implements Instrument.
func (m multiInstrument) ObserveRun(index int, queueDelay, wall time.Duration) {
	for _, ins := range m {
		ins.ObserveRun(index, queueDelay, wall)
	}
}

// ObserveBatch implements BatchObserver for members that do.
func (m multiInstrument) ObserveBatch(n int) {
	for _, ins := range m {
		if b, ok := ins.(BatchObserver); ok {
			b.ObserveBatch(n)
		}
	}
}

// ObserveStart implements StartObserver for members that do.
func (m multiInstrument) ObserveStart(index int) {
	for _, ins := range m {
		if s, ok := ins.(StartObserver); ok {
			s.ObserveStart(index)
		}
	}
}
