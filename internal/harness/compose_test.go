package harness

import (
	"sync"
	"testing"
	"time"

	"m2hew/internal/sim"
)

// recordingInstrument logs every seam call and hands out a distinctive
// observer so TrialDone routing can be checked.
type recordingInstrument struct {
	mu       sync.Mutex
	observer sim.Observer // returned by TrialObserver (may be nil)
	given    []sim.Observer
	done     []sim.Observer
	runs     []int
	batches  []int
	starts   []int
}

func (r *recordingInstrument) TrialObserver(nodes, channels int) sim.Observer {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.given = append(r.given, r.observer)
	return r.observer
}

func (r *recordingInstrument) TrialDone(obs sim.Observer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done = append(r.done, obs)
}

func (r *recordingInstrument) ObserveRun(index int, queueDelay, wall time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.runs = append(r.runs, index)
}

func (r *recordingInstrument) ObserveBatch(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batches = append(r.batches, n)
}

func (r *recordingInstrument) ObserveStart(index int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.starts = append(r.starts, index)
}

// maskObs is an observer with a declared subscription mask.
type maskObs struct{ mask sim.EventMask }

func (m *maskObs) OnEvent(sim.Event)        {}
func (m *maskObs) EventMask() sim.EventMask { return m.mask }

func TestInstrumentsNilHandling(t *testing.T) {
	if got := Instruments(); got != nil {
		t.Errorf("Instruments() = %v, want nil", got)
	}
	if got := Instruments(nil, nil); got != nil {
		t.Errorf("Instruments(nil, nil) = %v, want nil", got)
	}
	lone := &recordingInstrument{}
	if got := Instruments(nil, lone, nil); got != Instrument(lone) {
		t.Errorf("lone instrument not returned unchanged: %v", got)
	}
}

// TestInstrumentsComposesObserversAndRoutesTrialDone: the combined trial
// observer forwards to every member's observer, and TrialDone hands each
// member exactly the observer it built.
func TestInstrumentsComposesObserversAndRoutesTrialDone(t *testing.T) {
	a := &recordingInstrument{observer: &maskObs{mask: sim.AllEvents}}
	b := &recordingInstrument{observer: nil} // Progress-style: declines observers
	c := &recordingInstrument{observer: &maskObs{mask: 0}}
	ins := Instruments(a, b, c)

	obs := ins.TrialObserver(4, 2)
	if obs == nil {
		t.Fatal("combined observer is nil despite members with observers")
	}
	ins.TrialDone(obs)
	if len(a.done) != 1 || a.done[0] != a.observer {
		t.Errorf("a got back %v, want its own observer", a.done)
	}
	if len(b.done) != 1 || b.done[0] != nil {
		t.Errorf("b got back %v, want nil (it declined)", b.done)
	}
	if len(c.done) != 1 || c.done[0] != c.observer {
		t.Errorf("c got back %v, want its own observer", c.done)
	}
}

// TestInstrumentsAllDecline: when every member returns a nil observer the
// combination must too, preserving the engines' no-observer fast path —
// and TrialDone(nil) still fans out.
func TestInstrumentsAllDecline(t *testing.T) {
	a, b := &recordingInstrument{}, &recordingInstrument{}
	ins := Instruments(a, b)
	if obs := ins.TrialObserver(4, 2); obs != nil {
		t.Fatalf("combined observer = %v, want nil", obs)
	}
	ins.TrialDone(nil)
	if len(a.done) != 1 || len(b.done) != 1 {
		t.Errorf("TrialDone(nil) fan-out: a %d, b %d calls", len(a.done), len(b.done))
	}
}

// maskless is an observer without an EventMask declaration.
type maskless struct{}

func (maskless) OnEvent(sim.Event) {}

// TestInstrumentsPreservesEventMask: the composition's mask is the union of
// the members' declared masks — a mask-0 member costs nothing extra, and a
// member without a mask declaration widens to AllEvents.
func TestInstrumentsPreservesEventMask(t *testing.T) {
	mask := func(members ...sim.Observer) sim.EventMask {
		var ins []Instrument
		for _, m := range members {
			ins = append(ins, &recordingInstrument{observer: m})
		}
		obs := Instruments(ins...).TrialObserver(4, 2)
		if obs == nil {
			t.Fatal("nil combined observer")
		}
		em, ok := obs.(sim.EventMasker)
		if !ok {
			t.Fatalf("combined observer %T lost its EventMask method", obs)
		}
		return em.EventMask()
	}
	if got := mask(&maskObs{mask: 0}, &maskObs{mask: 0}); got != 0 {
		t.Errorf("union of zero masks = %v, want 0", got)
	}
	only := sim.MaskOf(sim.EventDeliver, sim.EventCollision)
	if got := mask(&maskObs{mask: only}, &maskObs{mask: 0}); got != only {
		t.Errorf("union = %v, want %v", got, only)
	}
	if got := mask(&maskObs{mask: only}, maskless{}); got != sim.AllEvents {
		t.Errorf("maskless member should widen union to AllEvents, got %v", got)
	}
}

// TestInstrumentsForwardsInternals: an internals report reaches every
// member sink through the composition.
func TestInstrumentsForwardsInternals(t *testing.T) {
	recA, recC := &sim.InternalsRecorder{}, &sim.InternalsRecorder{}
	ins := Instruments(
		&recordingInstrument{observer: recA},
		&recordingInstrument{observer: nil},
		&recordingInstrument{observer: recC},
	)
	obs := ins.TrialObserver(4, 2)
	sink, ok := obs.(sim.InternalsSink)
	if !ok {
		t.Fatalf("combined observer %T lost OnInternals", obs)
	}
	sink.OnInternals(sim.Internals{SlotsSimulated: 9, BatchedSlots: 9})
	for i, rec := range []*sim.InternalsRecorder{recA, recC} {
		if rec.Reports != 1 || rec.Total.BatchedSlots != 9 {
			t.Errorf("recorder %d: reports %d, batched %d; want 1 report of 9", i, rec.Reports, rec.Total.BatchedSlots)
		}
	}
}

// TestInstrumentsFansOutTimingHooks: ObserveBatch/Start/Run reach every
// member that implements them.
func TestInstrumentsFansOutTimingHooks(t *testing.T) {
	a, b := &recordingInstrument{}, &recordingInstrument{}
	ins := Instruments(a, b)
	mi, ok := ins.(multiInstrument)
	if !ok {
		t.Fatalf("Instruments(a, b) = %T", ins)
	}
	mi.ObserveBatch(5)
	mi.ObserveStart(2)
	mi.ObserveRun(2, time.Millisecond, time.Second)
	for i, r := range []*recordingInstrument{a, b} {
		if len(r.batches) != 1 || r.batches[0] != 5 || len(r.starts) != 1 || len(r.runs) != 1 {
			t.Errorf("member %d missed hooks: batches %v starts %v runs %v", i, r.batches, r.starts, r.runs)
		}
	}
}

func TestProgressCountsAndPhases(t *testing.T) {
	p := NewProgress()
	p.SetPhase("alpha")
	p.ObserveBatch(3)
	s := p.Snapshot()
	if s.Queued != 3 || s.Running != 0 || s.Done != 0 {
		t.Fatalf("after batch: %+v", s)
	}
	p.ObserveStart(0)
	s = p.Snapshot()
	if s.Queued != 2 || s.Running != 1 {
		t.Fatalf("after start: %+v", s)
	}
	p.ObserveRun(0, 2*time.Second, 4*time.Second)
	p.SetPhase("beta")
	p.ObserveStart(1)
	p.ObserveRun(1, time.Second, 3*time.Second)
	s = p.Snapshot()
	if s.Queued != 1 || s.Running != 0 || s.Done != 2 || s.Phase != "beta" {
		t.Fatalf("final totals: %+v", s)
	}
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %+v, want alpha then beta", s.Phases)
	}
	if a := s.Phases[0]; a.Phase != "alpha" || a.Done != 1 || a.QueueSeconds != 2 || a.WallSeconds != 4 {
		t.Errorf("alpha = %+v", a)
	}
	if b := s.Phases[1]; b.Phase != "beta" || b.Done != 1 || b.QueueSeconds != 1 || b.WallSeconds != 3 {
		t.Errorf("beta = %+v", b)
	}
}

// TestProgressNeverTouchesEngines: the whole point of Progress is that it
// cannot perturb results — it must not request an engine observer.
func TestProgressNeverTouchesEngines(t *testing.T) {
	p := NewProgress()
	if obs := p.TrialObserver(100, 10); obs != nil {
		t.Fatalf("Progress.TrialObserver = %v, want nil", obs)
	}
	p.TrialDone(nil) // must be a no-op, not a panic
}

func TestProgressSubscribe(t *testing.T) {
	p := NewProgress()
	ch, cancel := p.Subscribe(2)
	p.ObserveBatch(1)
	p.ObserveStart(7)
	p.ObserveRun(7, 0, time.Second)
	rec := <-ch
	if rec.Index != 7 || rec.Done != 1 || rec.Seq != 1 || rec.WallSeconds != 1 {
		t.Errorf("record = %+v", rec)
	}
	// Cancel closes the channel and is idempotent; later completions are
	// not delivered.
	cancel()
	cancel()
	if _, ok := <-ch; ok {
		t.Error("channel not closed by cancel")
	}
	p.ObserveRun(8, 0, 0)
	if p.Seq() != 2 {
		t.Errorf("seq = %d, want 2", p.Seq())
	}
}

// TestProgressSlowSubscriberDropsRecords: a full buffer drops records
// instead of blocking the worker path.
func TestProgressSlowSubscriberDropsRecords(t *testing.T) {
	p := NewProgress()
	ch, cancel := p.Subscribe(1)
	defer cancel()
	for i := 0; i < 5; i++ {
		p.ObserveRun(i, 0, 0) // nobody reading: only the first fits
	}
	rec := <-ch
	if rec.Index != 0 {
		t.Errorf("first record index = %d, want 0", rec.Index)
	}
	select {
	case extra, ok := <-ch:
		if ok {
			t.Errorf("unexpected buffered record: %+v", extra)
		}
	default: // drained: the other four were dropped
	}
	if p.Snapshot().Done != 5 {
		t.Errorf("done = %d, want 5 (drops lose records, not counts)", p.Snapshot().Done)
	}
}

// TestProgressRidesTheHarness drives a real Run through SetInstrument and
// checks the pipeline totals reconcile.
func TestProgressRidesTheHarness(t *testing.T) {
	p := NewProgress()
	p.SetPhase("work")
	SetInstrument(p)
	defer SetInstrument(nil)
	const n = 12
	if err := Run(n, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := p.Snapshot()
	if s.Queued != 0 || s.Running != 0 || s.Done != n {
		t.Errorf("totals after run: %+v, want 0/0/%d", s, n)
	}
	if len(s.Phases) != 1 || s.Phases[0].Done != n {
		t.Errorf("phases = %+v", s.Phases)
	}
	if p.Seq() != n {
		t.Errorf("seq = %d, want %d", p.Seq(), n)
	}
}
