package harness

import (
	"m2hew/internal/dynamics"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// syncDynamicsJob carries one prepared dynamic trial from the sequential
// setup phase to the worker pool: the per-node protocols plus the trial's
// private world (a World memoizes epoch snapshots, so it must not be shared
// across concurrent trials).
type syncDynamicsJob struct {
	protos []sim.SyncProtocol
	world  *dynamics.World
}

// SyncDynamicsTrials runs independent trials of a synchronous scenario on a
// time-varying world and returns the engine results in trial order. Each
// trial draws, sequentially from root in trial order, first the per-node
// protocol sources (exactly as SyncTrials does) and then the world schedule
// from one further split — so a dynamic trial's protocol streams match the
// static trial's at the same position, and the whole run is a pure function
// of (nw, spec, epochs, maxSlots, trials, seed).
//
// epochs is the world horizon in epochs; spec.EpochLen must be a positive
// whole number of slots (the synchronous engine advances epochs on slot
// boundaries).
func SyncDynamicsTrials(nw *topology.Network, factory SyncFactory, spec dynamics.Spec, epochs, maxSlots, trials int, root *rng.Source) ([]*sim.SyncResult, error) {
	return TrialsScratch(trials,
		func(int) (syncDynamicsJob, error) {
			sources := root.SplitN(nw.N())
			protos := make([]sim.SyncProtocol, nw.N())
			for u := 0; u < nw.N(); u++ {
				p, err := factory(topology.NodeID(u), sources[u])
				if err != nil {
					return syncDynamicsJob{}, err
				}
				protos[u] = p
			}
			world, err := dynamics.NewWorld(nw, spec, epochs, root.Split())
			if err != nil {
				return syncDynamicsJob{}, err
			}
			return syncDynamicsJob{protos: protos, world: world}, nil
		},
		func(_ int, job syncDynamicsJob, sc *Scratch) (*sim.SyncResult, error) {
			cfg := sim.SyncConfig{
				Network:   nw,
				Protocols: job.protos,
				MaxSlots:  maxSlots,
				Dynamics:  job.world,
				Scratch:   sc.Sync(),
			}
			ins := CurrentInstrument()
			var obs sim.Observer
			if ins != nil {
				obs = ins.TrialObserver(nw.N(), channelSpace(nw))
				cfg.Observer = obs
			}
			res, err := sim.RunSync(cfg)
			if err != nil {
				return nil, err
			}
			if ins != nil {
				ins.TrialDone(obs)
			}
			return res, nil
		})
}

// PooledLatencies reduces dynamic-run coverage records to the suite's
// standard latency statistic: every covered link's discovery latency
// (coverage time minus the link's birth time) pooled across trials in trial
// order, plus the pooled covered and targeted link counts. The covered /
// targeted ratio is the headline coverage fraction of a dynamic experiment
// row; Complete is rarely meaningful under churn, latency is.
func PooledLatencies(covs []*metrics.Coverage) (lat []float64, covered, targeted int) {
	for _, cov := range covs {
		lat = append(lat, cov.Latencies()...)
		covered += cov.TargetSize() - cov.Remaining()
		targeted += cov.TargetSize()
	}
	return lat, covered, targeted
}
