// Package harness is the shared trial-execution pipeline for everything
// that runs simulations in bulk: the experiment suite, the public Run API
// and the benchmarks all funnel through it.
//
// The package exists to keep two properties in one audited place instead of
// re-implemented per experiment:
//
//   - Determinism. A run is a pure function of its seed even though trials
//     execute on a worker pool. The contract is split-then-fork: every draw
//     from a shared rng.Source happens in the sequential Setup phase, in
//     trial order, on the caller's goroutine; workers only touch sources
//     that were split off for them. Results are collected by trial index,
//     so the merge order is the submission order, never the completion
//     order.
//
//   - Clean failure. A trial error cancels remaining work, is reported
//     deterministically (the lowest-indexed failing trial wins, regardless
//     of scheduling), and never strands a worker goroutine: Run always
//     joins its pool before returning.
package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes fn(0) … fn(n-1) on a worker pool and waits for completion.
// Indexes are handed out in increasing order; after the first error,
// remaining indexes are skipped (in-flight calls still finish). The
// returned error is the one from the lowest failing index — deterministic
// because indexes are dispensed monotonically, so the lowest failing index
// is always dispatched before any later failure can trigger the skip.
// All workers have exited by the time Run returns.
//
// When a process-wide Instrument is installed (SetInstrument), every item
// additionally reports its queue delay and wall time; with none installed
// the pipeline never reads the wall clock.
func Run(n int, fn func(i int) error) error {
	return RunScratch(n, func(i int, _ *Scratch) error { return fn(i) })
}

// RunScratch is Run with a per-worker engine scratch: each worker goroutine
// creates one Scratch and hands it to every item it executes, so consecutive
// trials on the same worker reuse engine buffers instead of re-allocating
// them. The scratch never crosses goroutines and lives only for this call —
// the split-then-fork contract already gives each worker exclusive state, so
// reuse cannot perturb rng streams, trial order, or results (engines are
// byte-identical with or without scratch).
func RunScratch(n int, fn func(i int, sc *Scratch) error) error {
	if n <= 0 {
		return nil
	}
	fn = instrumented(n, fn)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		stop atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := new(Scratch) // worker-private; never escapes this goroutine
			for {
				// The stop check precedes the index grab so that every
				// dispensed index is executed: indexes are dispensed
				// monotonically, so the lowest failing index is dispensed
				// before whichever failure sets the flag, and its error is
				// always recorded.
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i, sc); err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Trials runs a two-phase trial pipeline: setup(trial) is called
// sequentially in trial order on the caller's goroutine — the only place a
// shared rng.Source may be consumed — and run(trial, job) executes the
// prepared jobs on a worker pool. Results are returned in trial order. On
// error the lowest-indexed failure is returned (from either phase; a setup
// error aborts before any worker starts).
func Trials[J, R any](trials int, setup func(trial int) (J, error), run func(trial int, job J) (R, error)) ([]R, error) {
	return TrialsScratch(trials, setup,
		func(trial int, job J, _ *Scratch) (R, error) { return run(trial, job) })
}

// TrialsScratch is Trials with the per-worker engine scratch threaded into
// the run phase (see RunScratch). Experiments whose run function calls an
// engine directly pass the scratch into the engine config; everything about
// ordering, determinism and error reporting is identical to Trials.
func TrialsScratch[J, R any](trials int, setup func(trial int) (J, error), run func(trial int, job J, sc *Scratch) (R, error)) ([]R, error) {
	jobs := make([]J, trials)
	for trial := 0; trial < trials; trial++ {
		j, err := setup(trial)
		if err != nil {
			return nil, err
		}
		jobs[trial] = j
	}
	results := make([]R, trials)
	err := RunScratch(trials, func(i int, sc *Scratch) error {
		r, err := run(i, jobs[i], sc)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
