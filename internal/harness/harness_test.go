package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesAll(t *testing.T) {
	const n = 200
	var done [n]atomic.Bool
	if err := Run(n, func(i int) error {
		if done[i].Swap(true) {
			return fmt.Errorf("index %d executed twice", i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("index %d never executed", i)
		}
	}
}

func TestRunZeroAndNegative(t *testing.T) {
	called := false
	if err := Run(0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Run(-3, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for non-positive n")
	}
}

// TestRunErrorLowestIndex injects failures at several indexes and asserts
// the reported error is always the lowest-indexed one, over many rounds so
// goroutine interleavings vary.
func TestRunErrorLowestIndex(t *testing.T) {
	failAt := map[int]bool{7: true, 31: true, 90: true}
	for round := 0; round < 50; round++ {
		err := Run(128, func(i int) error {
			if failAt[i] {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom at 7" {
			t.Fatalf("round %d: got error %v, want boom at 7", round, err)
		}
	}
}

// TestRunStopsEarly checks that after a failure, not every remaining index
// is executed: a long job list with an immediate failure must short-circuit.
func TestRunStopsEarly(t *testing.T) {
	var executed atomic.Int64
	const n = 1 << 20
	err := Run(n, func(i int) error {
		executed.Add(1)
		if i == 0 {
			return errors.New("first job fails")
		}
		// Give index 0 time to fail before the pool drains everything.
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := executed.Load(); got == n {
		t.Fatalf("all %d jobs executed despite early failure", n)
	}
}

// TestRunNoGoroutineLeakOnError is the leak audit for the pool's error
// path: an injected per-trial error must not strand any worker goroutine.
func TestRunNoGoroutineLeakOnError(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		err := Run(64, func(i int) error {
			if i%5 == 0 {
				return fmt.Errorf("injected failure at %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected error")
		}
	}
	// Allow any stragglers to exit before counting (there should be none:
	// Run joins its pool), then require the count to settle back.
	var after int
	for attempt := 0; attempt < 50; attempt++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after erroring runs", before, after)
}

func TestTrialsSetupSequentialInOrder(t *testing.T) {
	const trials = 64
	var setupOrder []int
	results, err := Trials(trials,
		func(trial int) (int, error) {
			// Appending without synchronization is safe only because setup
			// runs on the caller's goroutine — which is the contract.
			setupOrder = append(setupOrder, trial)
			return trial * 10, nil
		},
		func(trial, job int) (int, error) {
			return job + trial, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(setupOrder) != trials {
		t.Fatalf("setup ran %d times, want %d", len(setupOrder), trials)
	}
	for i, got := range setupOrder {
		if got != i {
			t.Fatalf("setup call %d was for trial %d; setup must run in trial order", i, got)
		}
	}
	for i, r := range results {
		if r != i*11 {
			t.Fatalf("result[%d] = %d, want %d", i, r, i*11)
		}
	}
}

func TestTrialsSetupErrorAbortsBeforeWorkers(t *testing.T) {
	ran := false
	_, err := Trials(8,
		func(trial int) (int, error) {
			if trial == 3 {
				return 0, errors.New("setup failed")
			}
			return trial, nil
		},
		func(int, int) (int, error) {
			ran = true
			return 0, nil
		})
	if err == nil || err.Error() != "setup failed" {
		t.Fatalf("got error %v, want setup failed", err)
	}
	if ran {
		t.Fatal("run phase started despite setup error")
	}
}

func TestTrialsRunError(t *testing.T) {
	_, err := Trials(16,
		func(trial int) (int, error) { return trial, nil },
		func(trial, job int) (int, error) {
			if trial >= 4 {
				return 0, fmt.Errorf("run failed at %d", trial)
			}
			return job, nil
		})
	if err == nil || err.Error() != "run failed at 4" {
		t.Fatalf("got error %v, want run failed at 4", err)
	}
}
