package harness

import (
	"sync/atomic"
	"time"

	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// Instrument is the harness's telemetry seam: one process-wide hook that
// sees every trial the pipeline executes, without any of the 19
// experiments knowing it exists. internal/telemetry.Aggregate implements
// it; commands install it with SetInstrument before running a suite.
//
// Implementations must be safe for concurrent use — TrialObserver,
// TrialDone and ObserveRun are called from the pool's worker goroutines.
// The per-trial observers they hand out are only ever used from a single
// worker, matching the sim.Observer contract.
type Instrument interface {
	// TrialObserver returns a fresh observer for one engine run on a
	// network with the given node count and channel ID space (max channel
	// ID + 1). Returning nil keeps the engine's no-observer fast path.
	TrialObserver(nodes, channels int) sim.Observer
	// TrialDone receives the observer back after its run succeeded, to
	// merge whatever it tallied. It is not called for failed runs.
	TrialDone(obs sim.Observer)
	// ObserveRun records one pool work item: queueDelay is the time from
	// Run's entry to a worker picking the index up, wall the work
	// function's duration. Called for failed items too.
	ObserveRun(index int, queueDelay, wall time.Duration)
}

// BatchObserver is optionally implemented by instruments that want the
// shape of the work before it runs: RunScratch announces each batch's item
// count once, on the caller's goroutine, before any worker starts.
// harness.Progress uses it to publish the queued-trial count.
type BatchObserver interface {
	ObserveBatch(n int)
}

// StartObserver is optionally implemented by instruments that want item
// pickups as they happen: ObserveStart(i) is called from the worker
// goroutine the moment it takes item i, before the work function runs.
// Paired with ObserveRun (the completion) it brackets each item's
// execution, which is what lets Progress keep a live running count.
type StartObserver interface {
	ObserveStart(index int)
}

// instrumentBox wraps the interface so a nil Instrument and "no
// instrument" are both representable in the atomic pointer.
type instrumentBox struct{ ins Instrument }

var instrument atomic.Pointer[instrumentBox]

// SetInstrument installs ins as the process-wide harness instrument
// (nil uninstalls). Like expvar.Publish or the default metrics registry
// in other ecosystems, this is deliberately global: the experiment suite
// must stay telemetry-agnostic, so commands wire it at the edge. Install
// before launching runs; swapping mid-run instruments only trials that
// start afterwards.
func SetInstrument(ins Instrument) {
	if ins == nil {
		instrument.Store(nil)
		return
	}
	instrument.Store(&instrumentBox{ins: ins})
}

// CurrentInstrument returns the installed instrument, or nil.
func CurrentInstrument() Instrument {
	if b := instrument.Load(); b != nil {
		return b.ins
	}
	return nil
}

// instrumented wraps fn with per-item timing when an instrument is
// installed; with none installed it returns fn untouched, so the pipeline
// never reads the wall clock in the default configuration. n is the
// batch's item count, announced to BatchObserver instruments before any
// worker starts.
func instrumented(n int, fn func(i int, sc *Scratch) error) func(i int, sc *Scratch) error {
	ins := CurrentInstrument()
	if ins == nil {
		return fn
	}
	if b, ok := ins.(BatchObserver); ok {
		b.ObserveBatch(n)
	}
	starter, _ := ins.(StartObserver)
	start := time.Now()
	return func(i int, sc *Scratch) error {
		if starter != nil {
			starter.ObserveStart(i)
		}
		picked := time.Now()
		err := fn(i, sc)
		ins.ObserveRun(i, picked.Sub(start), time.Since(picked))
		return err
	}
}

// channelSpace returns the network's channel ID space (max ID + 1), the
// sizing TrialObserver needs.
func channelSpace(nw *topology.Network) int {
	if maxID, ok := nw.Universe().Max(); ok {
		return int(maxID) + 1
	}
	return 0
}
