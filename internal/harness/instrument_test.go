package harness

import (
	"sync"
	"testing"
	"time"

	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
)

// fakeInstrument records every seam call; safe for concurrent use like a
// real instrument must be.
type fakeInstrument struct {
	mu        sync.Mutex
	observers []*countingObserver
	done      []sim.Observer
	runs      int
	badTiming int
	returnNil bool
}

type countingObserver struct {
	nodes, channels int
	events          int
}

func (o *countingObserver) OnEvent(sim.Event) { o.events++ }

func (f *fakeInstrument) TrialObserver(nodes, channels int) sim.Observer {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.returnNil {
		return nil
	}
	o := &countingObserver{nodes: nodes, channels: channels}
	f.observers = append(f.observers, o)
	return o
}

func (f *fakeInstrument) TrialDone(obs sim.Observer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.done = append(f.done, obs)
}

func (f *fakeInstrument) ObserveRun(index int, queueDelay, wall time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.runs++
	if queueDelay < 0 || wall < 0 {
		f.badTiming++
	}
}

// install sets the instrument for one test and guarantees removal — the
// seam is process-wide, so leaking one would instrument unrelated tests.
func install(t *testing.T, ins Instrument) {
	t.Helper()
	SetInstrument(ins)
	t.Cleanup(func() { SetInstrument(nil) })
}

func TestSetInstrument(t *testing.T) {
	if CurrentInstrument() != nil {
		t.Fatal("instrument installed at test start")
	}
	f := &fakeInstrument{}
	install(t, f)
	if CurrentInstrument() != Instrument(f) {
		t.Fatal("CurrentInstrument did not return the installed instrument")
	}
	SetInstrument(nil)
	if CurrentInstrument() != nil {
		t.Fatal("SetInstrument(nil) did not uninstall")
	}
}

func TestRunReportsTiming(t *testing.T) {
	f := &fakeInstrument{}
	install(t, f)
	const n = 12
	err := Run(n, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.runs != n {
		t.Fatalf("ObserveRun called %d times, want %d", f.runs, n)
	}
	if f.badTiming != 0 {
		t.Fatalf("%d runs reported negative timing", f.badTiming)
	}
}

func TestSyncTrialsInstrumented(t *testing.T) {
	f := &fakeInstrument{}
	install(t, f)
	nw, factory := syncFixture(t)
	const trials = 6
	if _, err := SyncTrials(nw, factory, nil, 4000, trials, rng.New(3)); err != nil {
		t.Fatal(err)
	}
	if len(f.observers) != trials || len(f.done) != trials {
		t.Fatalf("observers/done = %d/%d, want %d/%d", len(f.observers), len(f.done), trials, trials)
	}
	for i, o := range f.observers {
		if o.nodes != nw.N() || o.channels != 4 {
			t.Fatalf("observer %d sized %d nodes / %d channels, want %d/4", i, o.nodes, o.channels, nw.N())
		}
		if o.events == 0 {
			t.Fatalf("observer %d saw no events", i)
		}
	}
	if f.runs != trials {
		t.Fatalf("ObserveRun called %d times, want %d", f.runs, trials)
	}
}

// TestSyncTrialsInstrumentedDeterminism pins the acceptance criterion that
// attaching telemetry does not change simulation results: the engine's
// event emission must never consume randomness or reorder draws.
func TestSyncTrialsInstrumentedDeterminism(t *testing.T) {
	nw, factory := syncFixture(t)
	const trials = 8
	run := func() []float64 {
		results, err := SyncTrials(nw, factory, nil, 4000, trials, rng.New(17))
		if err != nil {
			t.Fatal(err)
		}
		slots, _ := CompletionSlots(results)
		return slots
	}
	bare := run()
	install(t, &fakeInstrument{})
	instrumented := run()
	if len(bare) != len(instrumented) {
		t.Fatalf("completion counts differ: %d vs %d", len(bare), len(instrumented))
	}
	for i := range bare {
		if bare[i] != instrumented[i] {
			t.Fatalf("trial %d: completion %v bare vs %v instrumented", i, bare[i], instrumented[i])
		}
	}
}

func TestNilTrialObserverTolerated(t *testing.T) {
	f := &fakeInstrument{returnNil: true}
	install(t, f)
	nw, factory := syncFixture(t)
	if _, err := SyncTrials(nw, factory, nil, 4000, 3, rng.New(5)); err != nil {
		t.Fatal(err)
	}
	if len(f.done) != 3 {
		t.Fatalf("TrialDone called %d times, want 3 (with nil observers)", len(f.done))
	}
	for i, obs := range f.done {
		if obs != nil {
			t.Fatalf("done[%d] = %v, want nil", i, obs)
		}
	}
}

func TestAsyncTrialsInstrumented(t *testing.T) {
	f := &fakeInstrument{}
	install(t, f)
	nw, factory := syncFixture(t)
	_ = factory
	const trials = 4
	_, err := AsyncTrials(trials, func(trial int) (sim.AsyncConfig, error) {
		nodes := make([]sim.AsyncNode, nw.N())
		for u := range nodes {
			nodes[u] = sim.AsyncNode{Protocol: constAsyncProto{}}
		}
		return sim.AsyncConfig{Network: nw, Nodes: nodes, FrameLen: 1, MaxFrames: 8}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.observers) != trials || len(f.done) != trials {
		t.Fatalf("observers/done = %d/%d, want %d/%d", len(f.observers), len(f.done), trials, trials)
	}
	for i, o := range f.observers {
		if o.events == 0 {
			t.Fatalf("observer %d saw no events", i)
		}
	}
}

// constAsyncProto listens on channel 0 forever.
type constAsyncProto struct{}

func (constAsyncProto) NextFrame(int) radio.Action {
	return radio.Action{Mode: radio.Receive, Channel: 0}
}

func (constAsyncProto) Deliver(radio.Message) {}
