package harness

import (
	"sync"
	"sync/atomic"
	"time"

	"m2hew/internal/sim"
)

// Progress is the live trial-progress instrument: it watches the pipeline
// through the Instrument seam (batch announcements, item pickups, item
// completions) and publishes queued/running/done counts, per-phase wall
// and queue timing, and a per-completion record stream — the feed behind
// the diag server's /progress endpoint.
//
// Progress never touches the engines: TrialObserver returns nil, so an
// installation that only wants progress keeps the engines' no-observer
// fast path and cannot perturb results. Compose it with a telemetry
// aggregate via Instruments(agg, prog).
//
// All methods are safe for concurrent use. Completion records are
// delivered to subscribers with a non-blocking send — a slow or stalled
// subscriber loses records, never stalls a worker.
type Progress struct {
	queued  atomic.Int64
	running atomic.Int64
	done    atomic.Int64
	seq     atomic.Int64

	mu     sync.Mutex
	phase  string
	order  []string
	phases map[string]*PhaseStats
	subs   map[int]chan ProgressRecord
	nextID int
}

// NewProgress returns an empty Progress instrument.
func NewProgress() *Progress {
	return &Progress{
		phases: make(map[string]*PhaseStats),
		subs:   make(map[int]chan ProgressRecord),
	}
}

// PhaseStats accumulates one phase's completed-item timing.
type PhaseStats struct {
	// Phase is the label set by SetPhase ("" before the first call).
	Phase string `json:"phase"`
	// Done counts completed items (successes and failures alike).
	Done int64 `json:"done"`
	// QueueSeconds and WallSeconds sum the items' queue delays and wall
	// times.
	QueueSeconds float64 `json:"queue_s"`
	WallSeconds  float64 `json:"wall_s"`
}

// ProgressRecord is one pipeline observation: a per-item completion, or a
// snapshot (Index < 0) emitted to a new subscriber.
type ProgressRecord struct {
	// Seq increases by one per emitted completion; snapshots reuse the
	// latest value.
	Seq int64 `json:"seq"`
	// Index is the completed item's pool index, or -1 for a snapshot.
	Index int64 `json:"index"`
	// Phase is the current SetPhase label.
	Phase string `json:"phase,omitempty"`
	// Queued, Running and Done are the pipeline totals after this event:
	// items announced but not picked up, items executing, items finished.
	Queued  int64 `json:"queued"`
	Running int64 `json:"running"`
	Done    int64 `json:"done"`
	// QueueSeconds and WallSeconds time the completed item (zero in
	// snapshots).
	QueueSeconds float64 `json:"queue_s"`
	WallSeconds  float64 `json:"wall_s"`
}

// SetPhase labels subsequent observations — call it between harness runs
// (e.g. per experiment) so the progress stream and the per-phase timing
// table attribute work to the right phase.
func (p *Progress) SetPhase(name string) {
	p.mu.Lock()
	p.phase = name
	p.mu.Unlock()
}

// TrialObserver implements Instrument: Progress wants no engine events.
func (p *Progress) TrialObserver(nodes, channels int) sim.Observer { return nil }

// TrialDone implements Instrument: nothing to merge.
func (p *Progress) TrialDone(obs sim.Observer) {}

// ObserveBatch implements BatchObserver: n items just entered the queue.
func (p *Progress) ObserveBatch(n int) {
	p.queued.Add(int64(n))
}

// ObserveStart implements StartObserver: a worker picked an item up.
func (p *Progress) ObserveStart(index int) {
	p.queued.Add(-1)
	p.running.Add(1)
}

// ObserveRun implements Instrument: an item finished (successfully or
// not); tally its timing under the current phase and publish a record.
func (p *Progress) ObserveRun(index int, queueDelay, wall time.Duration) {
	p.running.Add(-1)
	done := p.done.Add(1)
	rec := ProgressRecord{
		Seq:          p.seq.Add(1),
		Index:        int64(index),
		Queued:       p.queued.Load(),
		Running:      p.running.Load(),
		Done:         done,
		QueueSeconds: queueDelay.Seconds(),
		WallSeconds:  wall.Seconds(),
	}
	p.mu.Lock()
	rec.Phase = p.phase
	ps := p.phases[p.phase]
	if ps == nil {
		ps = &PhaseStats{Phase: p.phase}
		p.phases[p.phase] = ps
		p.order = append(p.order, p.phase)
	}
	ps.Done++
	ps.QueueSeconds += rec.QueueSeconds
	ps.WallSeconds += rec.WallSeconds
	for _, ch := range p.subs {
		select {
		case ch <- rec:
		default: // slow subscriber: drop, never stall the pool
		}
	}
	p.mu.Unlock()
}

// ProgressSnapshot is the pipeline's current totals and per-phase timing.
type ProgressSnapshot struct {
	Queued  int64        `json:"queued"`
	Running int64        `json:"running"`
	Done    int64        `json:"done"`
	Phase   string       `json:"phase,omitempty"`
	Phases  []PhaseStats `json:"phases,omitempty"`
}

// Snapshot copies the current totals; phases appear in first-completion
// order.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Queued:  p.queued.Load(),
		Running: p.running.Load(),
		Done:    p.done.Load(),
		Phase:   p.phase,
	}
	for _, name := range p.order {
		s.Phases = append(s.Phases, *p.phases[name])
	}
	return s
}

// Record renders the snapshot as a ProgressRecord (Index −1), the shape
// /progress streams first so a subscriber always sees the current totals
// before any live completion.
func (s ProgressSnapshot) Record(seq int64) ProgressRecord {
	return ProgressRecord{
		Seq: seq, Index: -1, Phase: s.Phase,
		Queued: s.Queued, Running: s.Running, Done: s.Done,
	}
}

// Seq returns the number of completion records emitted so far.
func (p *Progress) Seq() int64 { return p.seq.Load() }

// Subscribe registers a completion-record channel with the given buffer
// (minimum 1) and returns it with its cancel function. Records arriving
// while the buffer is full are dropped. Cancel is idempotent and closes
// the channel.
func (p *Progress) Subscribe(buffer int) (<-chan ProgressRecord, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan ProgressRecord, buffer)
	p.mu.Lock()
	id := p.nextID
	p.nextID++
	p.subs[id] = ch
	p.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			p.mu.Lock()
			delete(p.subs, id)
			p.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}
