package harness

// Dedicated -race stress for the pipeline driving real engines: SyncTrials
// and AsyncConfigs hand work to goroutines through the atomic work-stealing
// counter in Run. These tests drive many more trials than workers so the
// counter, the per-trial result slots and the pre-split rng sources all get
// contended, and they assert the pipeline stays deterministic: a parallel
// run must equal itself on rerun regardless of goroutine interleaving.

import (
	"runtime"
	"testing"

	"m2hew/internal/core"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// syncFixture builds a small network plus a factory, sized so one test run
// schedules far more trials than GOMAXPROCS workers.
func syncFixture(t *testing.T) (*topology.Network, SyncFactory) {
	t.Helper()
	nw, err := topology.Clique(8)
	if err != nil {
		t.Fatalf("building clique: %v", err)
	}
	if err := topology.AssignHomogeneous(nw, 4); err != nil {
		t.Fatalf("assigning channels: %v", err)
	}
	factory := func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error) {
		return core.NewSyncUniform(nw.Avail(u), 8, r)
	}
	return nw, factory
}

func TestSyncTrialsWorkStealingRace(t *testing.T) {
	nw, factory := syncFixture(t)
	const trials = 64
	const maxSlots = 4000

	run := func(seed uint64) ([]float64, int) {
		t.Helper()
		results, err := SyncTrials(nw, factory, nil, maxSlots, trials, rng.New(seed))
		if err != nil {
			t.Fatalf("SyncTrials: %v", err)
		}
		slots, incomplete := CompletionSlots(results)
		return slots, incomplete
	}
	got, gotInc := run(11)

	// Same seed, same results — regardless of how the goroutines
	// interleaved on the work-stealing counter.
	again, againInc := run(11)
	if gotInc != againInc || len(got) != len(again) {
		t.Fatalf("reruns disagree: %d/%d complete vs %d/%d", len(got), gotInc, len(again), againInc)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("trial %d: completion %v vs %v across reruns", i, got[i], again[i])
		}
	}
	if len(got) == 0 {
		t.Fatalf("no trial completed within %d slots; fixture is miscalibrated", maxSlots)
	}
}

func TestAsyncConfigsWorkStealingRace(t *testing.T) {
	nw, err := topology.Clique(6)
	if err != nil {
		t.Fatalf("building clique: %v", err)
	}
	if err := topology.AssignHomogeneous(nw, 3); err != nil {
		t.Fatalf("assigning channels: %v", err)
	}
	root := rng.New(7)
	const configs = 48

	build := func(r *rng.Source) sim.AsyncConfig {
		t.Helper()
		nodes := make([]sim.AsyncNode, nw.N())
		for u := 0; u < nw.N(); u++ {
			p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), 8, r.Split())
			if err != nil {
				t.Fatalf("building protocol: %v", err)
			}
			nodes[u] = sim.AsyncNode{Protocol: p, Start: float64(u) * 0.1}
		}
		return sim.AsyncConfig{Network: nw, Nodes: nodes, FrameLen: 1, MaxFrames: 600}
	}
	cfgs := make([]sim.AsyncConfig, configs)
	for i := range cfgs {
		cfgs[i] = build(root)
	}
	results, err := AsyncConfigs(cfgs)
	if err != nil {
		t.Fatalf("AsyncConfigs: %v", err)
	}
	if len(results) != configs {
		t.Fatalf("got %d results, want %d", len(results), configs)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("config %d: nil result", i)
		}
		if !res.Complete {
			t.Fatalf("config %d incomplete within horizon; fixture is miscalibrated", i)
		}
	}
	// The pool must not have shrunk the machine's parallelism permanently
	// (a regression guard against leaking LockOSThread-style state).
	if runtime.GOMAXPROCS(0) < 1 {
		t.Fatal("GOMAXPROCS went non-positive")
	}
}

// TestScratchSeamWorkStealingRace stresses the per-worker scratch seam
// directly: far more trials than workers, each worker's Scratch reused
// across every trial it steals, alternating between both engines so the
// lazily-built sync and async scratches coexist on one Scratch. Under
// split-then-fork the scratch must be invisible: a rerun at the same seed
// must reproduce every completion figure exactly, whatever the
// interleaving.
func TestScratchSeamWorkStealingRace(t *testing.T) {
	nw, factory := syncFixture(t)
	const trials = 48
	run := func(seed uint64) []float64 {
		t.Helper()
		root := rng.New(seed)
		syncProtos := make([][]sim.SyncProtocol, trials)
		asyncNodes := make([][]sim.AsyncNode, trials)
		for i := 0; i < trials; i++ {
			if i%2 == 0 {
				protos := make([]sim.SyncProtocol, nw.N())
				for u := 0; u < nw.N(); u++ {
					p, err := factory(topology.NodeID(u), root.Split())
					if err != nil {
						t.Fatalf("building protocol: %v", err)
					}
					protos[u] = p
				}
				syncProtos[i] = protos
			} else {
				nodes := make([]sim.AsyncNode, nw.N())
				for u := 0; u < nw.N(); u++ {
					p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), 8, root.Split())
					if err != nil {
						t.Fatalf("building protocol: %v", err)
					}
					nodes[u] = sim.AsyncNode{Protocol: p, Start: float64(u) * 0.1}
				}
				asyncNodes[i] = nodes
			}
		}
		out := make([]float64, trials)
		if err := RunScratch(trials, func(i int, sc *Scratch) error {
			if i%2 == 0 {
				res, err := sim.RunSync(sim.SyncConfig{
					Network: nw, Protocols: syncProtos[i], MaxSlots: 4000, Scratch: sc.Sync(),
				})
				if err != nil {
					return err
				}
				out[i] = float64(res.CompletionSlot)
				return nil
			}
			res, err := sim.RunAsync(sim.AsyncConfig{
				Network: nw, Nodes: asyncNodes[i], FrameLen: 1, MaxFrames: 600, Scratch: sc.Async(),
			})
			if err != nil {
				return err
			}
			out[i] = res.CompletionTime
			return nil
		}); err != nil {
			t.Fatalf("RunScratch: %v", err)
		}
		return out
	}
	got := run(33)
	again := run(33)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("trial %d: completion %v vs %v across reruns", i, got[i], again[i])
		}
	}
}

func TestAsyncTrialsMatchesAsyncConfigs(t *testing.T) {
	nw, err := topology.Clique(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 2); err != nil {
		t.Fatal(err)
	}
	const trials = 12
	build := func(root *rng.Source) func(int) (sim.AsyncConfig, error) {
		return func(int) (sim.AsyncConfig, error) {
			nodes := make([]sim.AsyncNode, nw.N())
			for u := 0; u < nw.N(); u++ {
				p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), 8, root.Split())
				if err != nil {
					return sim.AsyncConfig{}, err
				}
				nodes[u] = sim.AsyncNode{Protocol: p, Start: float64(u) * 0.2}
			}
			return sim.AsyncConfig{Network: nw, Nodes: nodes, FrameLen: 1, MaxFrames: 500}, nil
		}
	}

	viaTrials, err := AsyncTrials(trials, build(rng.New(99)))
	if err != nil {
		t.Fatal(err)
	}
	rootB := rng.New(99)
	cfgs := make([]sim.AsyncConfig, trials)
	for i := range cfgs {
		cfgs[i], err = build(rootB)(i)
		if err != nil {
			t.Fatal(err)
		}
	}
	viaConfigs, err := AsyncConfigs(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaTrials {
		a, b := viaTrials[i], viaConfigs[i]
		if a.Complete != b.Complete || a.CompletionTime != b.CompletionTime {
			t.Fatalf("trial %d: AsyncTrials %+v vs AsyncConfigs %+v", i,
				[2]any{a.Complete, a.CompletionTime}, [2]any{b.Complete, b.CompletionTime})
		}
	}
}
