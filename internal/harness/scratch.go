package harness

import (
	"m2hew/internal/sim"
)

// Scratch is the per-worker bundle of reusable engine state RunScratch
// threads through the pool: one sync and one async engine scratch, allocated
// lazily so workers that only run one engine pay for one. A Scratch belongs
// to exactly one worker goroutine for the duration of one RunScratch call
// and is dropped afterwards, which keeps the network-keyed caches inside the
// engine scratches safe even for callers that mutate networks between
// batches (a new batch always starts from empty scratches).
//
// The zero value is ready to use.
type Scratch struct {
	syncSc  *sim.SyncScratch
	asyncSc *sim.AsyncScratch
}

// Sync returns the worker's synchronous engine scratch, for
// sim.SyncConfig.Scratch.
func (s *Scratch) Sync() *sim.SyncScratch {
	if s.syncSc == nil {
		s.syncSc = sim.NewSyncScratch()
	}
	return s.syncSc
}

// Async returns the worker's asynchronous engine scratch, for
// sim.AsyncConfig.Scratch. Timeline recycling is left off: harness callers
// (AsyncConfigs, AsyncTrials and the experiments built on them) routinely
// audit result Timelines after the whole batch returns, which recycling
// would invalidate. Callers that provably drop Timelines per-trial may set
// RecycleTimelines themselves.
func (s *Scratch) Async() *sim.AsyncScratch {
	if s.asyncSc == nil {
		s.asyncSc = sim.NewAsyncScratch()
	}
	return s.asyncSc
}
