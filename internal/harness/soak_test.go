package harness

// Churn soak: a 300-node dynamic scenario pushed through the trial
// pipeline, sized to contend the worker pool under -race. Asserts the two
// properties a dynamic run must not lose at scale: same seed → identical
// results across independent runs (worlds, protocol streams and scratch
// reuse all included), and the pipeline strands no goroutines.

import (
	"runtime"
	"testing"
	"time"

	"m2hew/internal/core"
	"m2hew/internal/dynamics"
	"m2hew/internal/metrics"
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

func TestSyncDynamicsChurnSoak(t *testing.T) {
	const (
		n          = 300
		epochSlots = 100
		maxSlots   = 1500
		trials     = 8
		seed       = 17
	)
	r := rng.New(3)
	nw, err := topology.GeometricConnected(n, 0.2, r, 100)
	if err != nil {
		t.Fatalf("network: %v", err)
	}
	if err := topology.AssignBernoulli(nw, 8, 0.7, r); err != nil {
		t.Fatalf("channels: %v", err)
	}
	factory := func(u topology.NodeID, src *rng.Source) (sim.SyncProtocol, error) {
		return core.NewSyncUniform(nw.Avail(u), 64, src)
	}
	spec := dynamics.Spec{
		EpochLen: epochSlots,
		Churn:    &dynamics.Churn{JoinFraction: 0.3, JoinWindow: 8, LeaveFraction: 0.2, LeaveWindow: 6},
		Primary:  &dynamics.Primary{Events: 3, Duration: 4, Radius: 0.2},
	}

	before := runtime.NumGoroutine()
	run := func() ([]float64, int, int) {
		t.Helper()
		results, err := SyncDynamicsTrials(nw, factory, spec, maxSlots/epochSlots, maxSlots, trials, rng.New(seed))
		if err != nil {
			t.Fatalf("SyncDynamicsTrials: %v", err)
		}
		covs := make([]*metrics.Coverage, len(results))
		for i, res := range results {
			covs[i] = res.Coverage
		}
		lat, covered, targeted := PooledLatencies(covs)
		return lat, covered, targeted
	}

	lat1, cov1, tgt1 := run()
	lat2, cov2, tgt2 := run()
	if cov1 != cov2 || tgt1 != tgt2 || len(lat1) != len(lat2) {
		t.Fatalf("same-seed runs disagree: %d/%d (%d latencies) vs %d/%d (%d)",
			cov1, tgt1, len(lat1), cov2, tgt2, len(lat2))
	}
	for i := range lat1 {
		if lat1[i] != lat2[i] {
			t.Fatalf("latency[%d]: %v vs %v", i, lat1[i], lat2[i])
		}
	}
	if tgt1 == 0 || cov1 == 0 {
		t.Fatalf("soak covered nothing (%d/%d); fixture broken", cov1, tgt1)
	}

	// The pool must have joined all its workers; give the runtime a moment
	// to retire exiting goroutines before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before soak, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
