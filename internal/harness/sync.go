package harness

import (
	"m2hew/internal/rng"
	"m2hew/internal/sim"
	"m2hew/internal/topology"
)

// SyncFactory builds one node's protocol for a synchronous trial from the
// node's private random source.
type SyncFactory func(u topology.NodeID, r *rng.Source) (sim.SyncProtocol, error)

// SyncTrials runs independent trials of a synchronous scenario and returns
// the engine results in trial order. Each trial's per-node sources are
// split from root sequentially in trial order (the split-then-fork
// contract), so the outcome is byte-identical to a sequential run; the
// Network must be read-only during simulation, which all topology
// generators guarantee after construction.
func SyncTrials(nw *topology.Network, factory SyncFactory, starts []int, maxSlots, trials int, root *rng.Source) ([]*sim.SyncResult, error) {
	return TrialsScratch(trials,
		func(int) ([]sim.SyncProtocol, error) {
			sources := root.SplitN(nw.N())
			protos := make([]sim.SyncProtocol, nw.N())
			for u := 0; u < nw.N(); u++ {
				p, err := factory(topology.NodeID(u), sources[u])
				if err != nil {
					return nil, err
				}
				protos[u] = p
			}
			return protos, nil
		},
		func(_ int, protos []sim.SyncProtocol, sc *Scratch) (*sim.SyncResult, error) {
			cfg := sim.SyncConfig{
				Network:    nw,
				Protocols:  protos,
				StartSlots: starts,
				MaxSlots:   maxSlots,
				Scratch:    sc.Sync(),
			}
			ins := CurrentInstrument()
			var obs sim.Observer
			if ins != nil {
				obs = ins.TrialObserver(nw.N(), channelSpace(nw))
				cfg.Observer = obs
			}
			res, err := sim.RunSync(cfg)
			if err != nil {
				return nil, err
			}
			if ins != nil {
				ins.TrialDone(obs)
			}
			return res, nil
		})
}

// CompletionSlots reduces synchronous results to the suite's standard
// completion statistic: the 1-based completion slot of every completed
// trial (in trial order) plus the count of trials that did not complete
// within the horizon.
func CompletionSlots(results []*sim.SyncResult) (slots []float64, incomplete int) {
	for _, res := range results {
		if !res.Complete {
			incomplete++
			continue
		}
		slots = append(slots, float64(res.CompletionSlot+1))
	}
	return slots, incomplete
}
