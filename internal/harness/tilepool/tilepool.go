// Package tilepool provides the fork-join worker pool of the tiled sync
// engine: repeatedly run an indexed function over [0, n) with all workers
// stealing chunks from a shared atomic cursor, with a full barrier between
// runs.
//
// It is deliberately independent of internal/sim (which cannot import
// internal/harness — harness sits above sim) and of internal/harness's
// trial pipeline (which parallelizes across whole trials, not within one).
// The contract the tiled engine needs is narrow: Run(n, fn) returns only
// after every index has been processed exactly once, and everything the
// workers wrote happens-before Run's return (the two-phase halo barrier is
// built from two Run calls per slot). Determinism is the caller's problem:
// fn must confine its writes to per-index state, which is exactly what the
// per-tile scratch does.
package tilepool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of workers executing indexed fork-join rounds. The
// zero value is not usable; call New. A Pool is not safe for concurrent
// Run calls — the tiled engine issues them strictly in sequence.
type Pool struct {
	workers int

	// Per-round state, published to workers by the start channel send
	// (happens-before their reads) and read back by the caller after
	// wg.Wait (their writes happen-before the barrier release).
	fn     func(int)
	n      int
	cursor atomic.Int64
	wg     sync.WaitGroup

	start  chan struct{}
	closed bool
}

// New creates a pool that runs rounds on `workers` goroutines total: the
// caller participates, so workers-1 background goroutines are spawned.
// workers < 1 (or 0 for "pick for me") selects GOMAXPROCS. Close must be
// called to release the background goroutines.
func New(workers int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, start: make(chan struct{})}
	for i := 1; i < workers; i++ {
		go func() {
			for range p.start {
				p.work()
				p.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool's parallelism (caller included).
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(i) for every i in [0, n) across the pool and returns
// after all calls complete. Writes made by fn happen-before Run returns.
// fn must not panic: a panic in a background worker crashes the process
// (as it would in any goroutine).
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.fn = fn
	p.n = n
	p.cursor.Store(0)
	p.wg.Add(p.workers - 1)
	for i := 1; i < p.workers; i++ {
		p.start <- struct{}{}
	}
	p.work()
	p.wg.Wait()
	p.fn = nil
}

// work drains the round's cursor in chunks. Chunking amortizes the atomic
// per ~4 steals per worker while still load-balancing uneven tiles.
func (p *Pool) work() {
	n := int64(p.n)
	chunk := n / int64(p.workers*4)
	if chunk < 1 {
		chunk = 1
	}
	for {
		lo := p.cursor.Add(chunk) - chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			p.fn(int(i))
		}
	}
}

// Close releases the background workers. The pool must be idle (no Run in
// flight). Close is idempotent.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.start)
}
