package tilepool

import (
	"sync/atomic"
	"testing"
)

// TestRunCoversEveryIndexOnce pins the core contract across worker counts
// and round sizes, including n smaller than the worker count and repeated
// rounds on one pool.
func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			counts := make([]atomic.Int32, n)
			p.Run(n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
		p.Close()
		p.Close() // idempotent
	}
}

// TestRunBarrierPublishesWrites pins the happens-before edge the halo
// exchange relies on: plain (non-atomic) writes from one round are visible
// to the next round's workers and to the caller. Run under -race this is
// the halo-barrier stress test.
func TestRunBarrierPublishesWrites(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 64
	a := make([]int, n)
	b := make([]int, n)
	for round := 0; round < 200; round++ {
		p.Run(n, func(i int) { a[i] = round + i })
		// Phase two reads every phase-one slot a worker may not have
		// written itself — exactly the halo-publish pattern.
		p.Run(n, func(i int) {
			sum := 0
			for j := i; j < i+8; j++ {
				sum += a[j%n]
			}
			b[i] = sum
		})
		for i := 0; i < n; i++ {
			sum := 0
			for j := i; j < i+8; j++ {
				sum += round + j%n
			}
			if b[i] != sum {
				t.Fatalf("round %d: b[%d] = %d, want %d", round, i, b[i], sum)
			}
		}
	}
}

// TestDefaultWorkers pins the GOMAXPROCS default and the caller-inclusive
// count.
func TestDefaultWorkers(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	p2 := New(5)
	defer p2.Close()
	if p2.Workers() != 5 {
		t.Fatalf("Workers() = %d, want 5", p2.Workers())
	}
}

func BenchmarkRunRoundTrip(b *testing.B) {
	p := New(0)
	defer p.Close()
	sink := make([]int, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Run(64, func(t int) { sink[t]++ })
	}
}
