// Package hotalloc enforces the zero-allocation contract of functions
// annotated //nd:hotpath.
//
// The engines' per-slot and per-delivery code runs millions of times per
// experiment; PR 5's scratch seam got it to zero heap allocations per run,
// guarded dynamically by testing.AllocsPerRun. Those guards only cover the
// configurations the tests happen to execute. This analyzer makes the
// contract static: any syntactic allocation inside an annotated function is
// a finding, so a future edit cannot quietly re-introduce per-slot garbage
// on a path the alloc tests miss.
//
// Two idioms the scratch layer depends on are allowed:
//
//   - grow-once make: a make guarded by an if whose condition inspects
//     cap(...) or len(...) (the "grow scratch when too small" idiom) — it
//     allocates O(1) times per buffer lifetime, not per slot;
//   - self-append: x = append(x, ...) with the first argument structurally
//     identical to the assignment target — amortized reuse of a buffer that
//     the AllocsPerRun guards verify reaches steady state.
//
// Everything else — unguarded make, new, &T{...}, slice/map composite
// literals, map literals, closures (func literals), growing appends — is
// reported. Deliberate per-run allocations inside an annotated function
// carry an //ndlint:ignore hotalloc suppression with a reason.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"m2hew/internal/lint"
)

// Analyzer reports heap allocations inside //nd:hotpath functions.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocations (make/new/&T{}/slice/map literals/closures/growing append) in //nd:hotpath functions",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !lint.FuncHasDirective(fn, lint.HotpathDirective) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

// checkBody walks one annotated function and reports each allocation.
func checkBody(pass *lint.Pass, fn *ast.FuncDecl) {
	guards := growGuards(fn.Body)
	selfAppends := collectSelfAppends(fn.Body)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch callee(pass, n) {
			case "make":
				if !inGuard(guards, n.Pos()) {
					pass.Reportf(n.Pos(), "make in //nd:hotpath function %s: guard it with a cap/len growth check or hoist the buffer to scratch", fn.Name.Name)
				}
			case "new":
				pass.Reportf(n.Pos(), "new in //nd:hotpath function %s: hoist the allocation out of the hot path", fn.Name.Name)
			case "append":
				if !selfAppends[n] {
					pass.Reportf(n.Pos(), "growing append in //nd:hotpath function %s: only self-append (x = append(x, ...)) reuses a buffer; this call retains or grows a new one", fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			if allocatingLiteral(pass, n) {
				pass.Reportf(n.Pos(), "slice/map literal allocates in //nd:hotpath function %s: build into a scratch buffer instead", fn.Name.Name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates in //nd:hotpath function %s: hoist it out of the hot path", fn.Name.Name)
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "func literal in //nd:hotpath function %s: closures allocate; use a named function or method value hoisted out of the hot path", fn.Name.Name)
		}
		return true
	})
}

// callee returns the builtin name n calls, or "" when n is not a direct
// call of a universe-scope builtin.
func callee(pass *lint.Pass, n *ast.CallExpr) string {
	id, ok := n.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	obj := pass.Info.Uses[id]
	if obj == nil || obj.Pkg() != nil { // builtins live in the universe scope
		return ""
	}
	return obj.Name()
}

// growGuards collects the body ranges of if statements whose condition
// mentions cap() or len() — the grow-once idiom's shape. A make inside such
// a body is a deliberate, amortized growth.
type span struct{ lo, hi token.Pos }

func growGuards(body *ast.BlockStmt) []span {
	var out []span
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		usesCapLen := false
		ast.Inspect(ifStmt.Cond, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				usesCapLen = true
			}
			return true
		})
		if usesCapLen {
			out = append(out, span{ifStmt.Body.Pos(), ifStmt.Body.End()})
		}
		return true
	})
	return out
}

func inGuard(guards []span, pos token.Pos) bool {
	for _, g := range guards {
		if g.lo <= pos && pos < g.hi {
			return true
		}
	}
	return false
}

// collectSelfAppends marks append calls of the shape x = append(x, ...)
// where the assignment target is structurally identical to the first
// argument — buffer reuse, not a fresh allocation once at steady state.
func collectSelfAppends(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				continue
			}
			if exprEqual(as.Lhs[i], call.Args[0]) {
				out[call] = true
			}
		}
		return true
	})
	return out
}

// exprEqual reports structural equality for the expression shapes that
// appear as append targets: identifiers, selectors, index expressions and
// pointer derefs.
func exprEqual(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && exprEqual(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(a.X, b.X) && exprEqual(a.Index, b.Index)
	case *ast.StarExpr:
		b, ok := b.(*ast.StarExpr)
		return ok && exprEqual(a.X, b.X)
	case *ast.ParenExpr:
		return exprEqual(a.X, b)
	case *ast.BasicLit:
		b, ok := b.(*ast.BasicLit)
		return ok && a.Kind == b.Kind && a.Value == b.Value
	}
	if p, ok := b.(*ast.ParenExpr); ok {
		return exprEqual(a, p.X)
	}
	return false
}

// allocatingLiteral reports whether composite literal n heap-allocates:
// slice and map literals do; plain struct and array values do not (they
// live wherever the enclosing value lives). Literals under & are handled by
// the UnaryExpr case.
func allocatingLiteral(pass *lint.Pass, n *ast.CompositeLit) bool {
	tv, ok := pass.Info.Types[n]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}
