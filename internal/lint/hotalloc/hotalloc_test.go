package hotalloc_test

import (
	"testing"

	"m2hew/internal/lint/hotalloc"
	"m2hew/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, "testdata", hotalloc.Analyzer,
		"a", // violations, allowed idioms, suppression, unannotated code
	)
}
