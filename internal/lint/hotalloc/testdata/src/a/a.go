// Package a exercises the hotalloc analyzer: positive findings, the two
// allowed idioms, suppressed findings, and unannotated functions.
package a

type item struct {
	id   int
	data []byte
}

type env struct {
	buf     []int
	seenBuf []bool
	pairs   map[int]int
}

// hot is annotated and full of violations.
//
//nd:hotpath
func hot(e *env, n int) []int {
	s := make([]int, n)          // want "make in //nd:hotpath function hot"
	p := new(item)               // want "new in //nd:hotpath function hot"
	q := &item{id: n}            // want "&composite literal allocates in //nd:hotpath function hot"
	lit := []int{1, 2, 3}        // want "slice/map literal allocates in //nd:hotpath function hot"
	m := map[int]int{n: n}       // want "slice/map literal allocates in //nd:hotpath function hot"
	f := func() int { return n } // want "func literal in //nd:hotpath function hot"
	s = append(lit, f())         // want "growing append in //nd:hotpath function hot"
	_ = p
	_ = q
	_ = m
	return s
}

// hotClean is annotated and uses only the allowed idioms.
//
//nd:hotpath
func hotClean(e *env, n int) {
	if cap(e.buf) < n {
		e.buf = make([]int, 0, n) // guarded grow-once make: allowed
	}
	e.buf = e.buf[:0]
	for i := 0; i < n; i++ {
		e.buf = append(e.buf, i) // self-append: allowed
	}
	if len(e.seenBuf) < n {
		e.seenBuf = make([]bool, n) // guarded by len: allowed
	}
	v := item{id: n} // plain struct value literal: allowed
	_ = v
}

// hotSuppressed is annotated; its one deliberate per-run allocation is
// documented.
//
//nd:hotpath
func hotSuppressed(n int) *item {
	//ndlint:ignore hotalloc per-run result allocation, not per-slot
	return &item{id: n}
}

// cold has no annotation: anything goes.
func cold(n int) []int {
	out := make([]int, 0, n)
	h := func(i int) int { return i * 2 }
	for i := 0; i < n; i++ {
		out = append(out, h(i))
	}
	return out
}

// resolver mirrors the batch slot resolver's scratch: channel-indexed
// receive buckets, a touched list, and a flat transmit-word window.
type resolver struct {
	rx        [][]int
	rxTouched []int
	txWords   []uint64
	wordsPer  int
}

// hotBatch mirrors the batch resolver's per-slot shape: bucket self-append
// through an index expression, touched-list self-append, and a grow-once
// guarded window make are all reuse idioms, not per-slot allocations.
//
//nd:hotpath
func hotBatch(r *resolver, ch, u, channels int) {
	if len(r.rx[ch]) == 0 {
		r.rxTouched = append(r.rxTouched, ch)
	}
	r.rx[ch] = append(r.rx[ch], u)
	if need := channels * r.wordsPer; cap(r.txWords) < need {
		r.txWords = make([]uint64, need) // guarded grow-once make: allowed
	}
}

// hotBatchLeaky shows the shapes the batch-resolver refactor must avoid: a
// per-slot bucket table literal, draining a bucket into a fresh slice, and
// handing listeners a freshly boxed record.
//
//nd:hotpath
func hotBatchLeaky(r *resolver, ch int) []int {
	table := [][]int{nil, nil}   // want "slice/map literal allocates in //nd:hotpath function hotBatchLeaky"
	drained := append(table[ch]) // want "growing append in //nd:hotpath function hotBatchLeaky"
	rec := &item{id: ch}         // want "&composite literal allocates in //nd:hotpath function hotBatchLeaky"
	drained = append(drained, rec.id)
	return drained
}

// tile mirrors the tiled resolver's per-tile scratch: a lazily assembled
// halo word window stamped by slot, local transmit words, and per-slot
// receive queues.
type tile struct {
	halo     []uint64
	haloSlot []int
	localTx  []uint64
	rxU      []int
	rxC      []int
}

// hotTileSlot mirrors the per-tile slot phase: slot-stamped lazy halo
// assembly with a guarded grow-once window, and queue self-appends. All
// reuse idioms — no findings.
//
//nd:hotpath
func hotTileSlot(t *tile, ch, words, slot, u int) {
	if cap(t.halo) < words {
		t.halo = make([]uint64, words) // guarded grow-once make: allowed
	}
	if len(t.haloSlot) <= ch {
		t.haloSlot = make([]int, ch+1) // guarded by len: allowed
	}
	if t.haloSlot[ch] != slot {
		t.haloSlot[ch] = slot
		for i := range t.localTx {
			t.halo[i] |= t.localTx[i]
		}
	}
	t.rxU = append(t.rxU, u)  // self-append: allowed
	t.rxC = append(t.rxC, ch) // self-append: allowed
}

// hotTileLeaky allocates the halo window and delivery queue fresh every
// slot — the per-slot shapes the tiled resolver must avoid.
//
//nd:hotpath
func hotTileLeaky(t *tile, words, u int) []int {
	halo := make([]uint64, words) // want "make in //nd:hotpath function hotTileLeaky"
	for i := range t.localTx {
		halo[i] |= t.localTx[i]
	}
	queue := []int{u} // want "slice/map literal allocates in //nd:hotpath function hotTileLeaky"
	queue = append(queue, t.rxU...)
	return queue
}
