// Package lint is a small, dependency-free static-analysis framework plus
// the determinism and concurrency invariants this repository enforces with
// it (see the analyzer subpackages and cmd/ndlint).
//
// The design deliberately mirrors golang.org/x/tools/go/analysis — an
// Analyzer owns a Run func that inspects one type-checked package through a
// Pass — but is built purely on the standard library (go/ast, go/types and
// the "source" importer), because this repository carries no module
// dependencies. Analyzers therefore port to the upstream framework almost
// mechanically if we ever vendor x/tools.
//
// Why custom linters at all: every quantitative table in EXPERIMENTS.md
// rests on the invariant that one 64-bit seed determines an entire
// multi-node, multi-trial run. Nothing in the type system stops a future
// change from importing math/rand, reading the wall clock inside the slot
// engine, iterating a map in an output path, or sharing a *rng.Source
// across goroutines — so machines check it here.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It is stateless: Run is called
// once per package with a fresh Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	// It must be a lowercase identifier.
	Name string
	// Doc explains what the analyzer reports and why it matters.
	Doc string
	// Run inspects one package and reports findings through the pass.
	// Returning an error aborts the whole lint run (reserved for internal
	// failures, not findings).
	Run func(*Pass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset resolves token positions for every file of the package.
	Fset *token.FileSet
	// Files are the parsed source files (comments included).
	Files []*ast.File
	// Pkg is the type-checker's package object.
	Pkg *types.Package
	// Info holds the type-checking facts (Types, Defs, Uses, Selections).
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// IgnoreDirective is the comment prefix that suppresses findings. A comment
//
//	//ndlint:ignore <name> [reason...]
//
// suppresses diagnostics of analyzer <name> (or of every analyzer, when
// <name> is "all") on the directive's own line and on the line immediately
// below it, so it works both as a trailing comment and as a lead-in line.
const IgnoreDirective = "//ndlint:ignore"

// RunAnalyzers applies the analyzers to pkg and returns the surviving
// diagnostics sorted by position. Findings suppressed by ignore directives
// are dropped.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = suppress(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppress drops diagnostics covered by ignore directives in pkg's files.
func suppress(pkg *Package, diags []Diagnostic) []Diagnostic {
	// covered[file][line] holds the analyzer names suppressed at that line.
	covered := make(map[string]map[int]map[string]bool)
	addLine := func(file string, line int, name string) {
		if covered[file] == nil {
			covered[file] = make(map[int]map[string]bool)
		}
		if covered[file][line] == nil {
			covered[file][line] = make(map[string]bool)
		}
		covered[file][line][name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue // malformed: no analyzer name
				}
				pos := pkg.Fset.Position(c.Pos())
				addLine(pos.Filename, pos.Line, fields[0])
				addLine(pos.Filename, pos.Line+1, fields[0])
			}
		}
	}
	if len(covered) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		names := covered[d.Pos.Filename][d.Pos.Line]
		if names[d.Analyzer] || names["all"] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// RNGPath is the import path of the repository's seeded random source; the
// only package allowed to touch math/rand, and the type analyzers key on.
const RNGPath = "m2hew/internal/rng"

// IsRNGSource reports whether t is rng.Source or *rng.Source (matched by
// package path and name so test fixtures can supply a stub).
func IsRNGSource(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == RNGPath && obj.Name() == "Source"
}

// InPackages reports whether path is one of the listed package paths or
// lies underneath one of them.
func InPackages(path string, roots []string) bool {
	for _, r := range roots {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}
