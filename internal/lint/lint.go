// Package lint is a small, dependency-free static-analysis framework plus
// the determinism and concurrency invariants this repository enforces with
// it (see the analyzer subpackages and cmd/ndlint).
//
// The design deliberately mirrors golang.org/x/tools/go/analysis — an
// Analyzer owns a Run func that inspects one type-checked package through a
// Pass — but is built purely on the standard library (go/ast, go/types and
// the "source" importer), because this repository carries no module
// dependencies. Analyzers therefore port to the upstream framework almost
// mechanically if we ever vendor x/tools.
//
// Why custom linters at all: every quantitative table in EXPERIMENTS.md
// rests on the invariant that one 64-bit seed determines an entire
// multi-node, multi-trial run. Nothing in the type system stops a future
// change from importing math/rand, reading the wall clock inside the slot
// engine, iterating a map in an output path, or sharing a *rng.Source
// across goroutines — so machines check it here.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It is stateless: Run is called
// once per package with a fresh Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	// It must be a lowercase identifier.
	Name string
	// Doc explains what the analyzer reports and why it matters.
	Doc string
	// Run inspects one package and reports findings through the pass.
	// Returning an error aborts the whole lint run (reserved for internal
	// failures, not findings).
	Run func(*Pass) error
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset resolves token positions for every file of the package.
	Fset *token.FileSet
	// Files are the parsed source files (comments included).
	Files []*ast.File
	// Pkg is the type-checker's package object.
	Pkg *types.Package
	// Info holds the type-checking facts (Types, Defs, Uses, Selections).
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// JSON renders the diagnostic as one NDJSON object — the machine-readable
// shape `ndlint -json` emits, one object per line, stable field order.
func (d Diagnostic) JSON() string {
	b, err := json.Marshal(struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}{d.Analyzer, d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message})
	if err != nil {
		// All fields are plain strings/ints; Marshal cannot fail on them.
		panic(fmt.Sprintf("lint: marshal diagnostic: %v", err))
	}
	return string(b)
}

// GitHub renders the diagnostic as a GitHub Actions workflow command
// (::error …) so CI surfaces findings as inline annotations. Values are
// escaped per the workflow-command rules: %, CR and LF everywhere, plus
// ',' and ':' inside properties.
func (d Diagnostic) GitHub() string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=%s::%s",
		githubEscapeProperty(d.Pos.Filename), d.Pos.Line, d.Pos.Column,
		githubEscapeProperty("ndlint/"+d.Analyzer), githubEscapeData(d.Message))
}

func githubEscapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func githubEscapeProperty(s string) string {
	s = githubEscapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// SortDiagnostics orders diagnostics by (file, line, column, analyzer) —
// the deterministic report order of multi-package runs.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// IgnoreDirective is the comment prefix that suppresses findings. A comment
//
//	//ndlint:ignore <name> [reason...]
//
// suppresses diagnostics of analyzer <name> (or of every analyzer, when
// <name> is "all") on the directive's own line and on the line immediately
// below it, so it works both as a trailing comment and as a lead-in line.
const IgnoreDirective = "//ndlint:ignore"

// A Directive is one parsed //ndlint:ignore comment. Used reports whether
// it suppressed at least one diagnostic during the analyzer run that
// collected it — a directive that suppresses nothing is stale and should be
// deleted (`ndlint -verify-suppressions` enforces this).
type Directive struct {
	// Pos is the directive comment's position.
	Pos token.Position
	// Analyzer is the suppressed analyzer name (or "all").
	Analyzer string
	// Used is true when the directive dropped at least one diagnostic.
	Used bool
}

// RunAnalyzers applies the analyzers to pkg and returns the surviving
// diagnostics sorted by position. Findings suppressed by ignore directives
// are dropped.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersDirectives(pkg, analyzers)
	return diags, err
}

// RunAnalyzersDirectives is RunAnalyzers plus the package's parsed ignore
// directives with their usage marked, so callers can report stale
// suppressions.
func RunAnalyzersDirectives(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, []Directive, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	directives := Directives(pkg)
	diags = suppress(directives, diags)
	SortDiagnostics(diags)
	return diags, directives, nil
}

// Directives parses every //ndlint:ignore comment of pkg's files, in file
// order. Malformed directives (no analyzer name) are skipped.
func Directives(pkg *Package) []Directive {
	var out []Directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue // malformed: no analyzer name
				}
				out = append(out, Directive{
					Pos:      pkg.Fset.Position(c.Pos()),
					Analyzer: fields[0],
				})
			}
		}
	}
	return out
}

// suppress drops diagnostics covered by ignore directives, marking each
// directive that fired. A directive covers its own line and the line below;
// the first covering directive (in source order) takes the credit.
func suppress(directives []Directive, diags []Diagnostic) []Diagnostic {
	if len(directives) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for i := range directives {
			dir := &directives[i]
			if dir.Analyzer != d.Analyzer && dir.Analyzer != "all" {
				continue
			}
			if dir.Pos.Filename != d.Pos.Filename {
				continue
			}
			if dir.Pos.Line != d.Pos.Line && dir.Pos.Line+1 != d.Pos.Line {
				continue
			}
			dir.Used = true
			suppressed = true
			break
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// HotpathDirective marks a function whose body must stay allocation-free
// and lock-free: the hotalloc and lockorder analyzers enforce it. It goes
// in the function's doc comment:
//
//	// deliver hands one clear message to the protocol.
//	//
//	//nd:hotpath
//	func (nd *node) deliver(msg radio.Message) { ... }
//
// The contract is per-slot / per-delivery code: anything executed O(slots)
// or O(deliveries) times inside a trial. Per-run setup does not qualify.
const HotpathDirective = "//nd:hotpath"

// ScratchOwnerDirective documents a function that adopts a scratch buffer
// (AdoptRateBuf) without releasing it, because release happens elsewhere by
// contract. The scratchalias analyzer accepts the annotation in place of an
// in-function ReleaseRateBuf call:
//
//	//nd:scratch-owner buffers are reclaimed by reclaimRateBufs at run end
const ScratchOwnerDirective = "//nd:scratch-owner"

// FuncHasDirective reports whether fn's doc comment contains a line whose
// directive prefix is exactly directive (an //nd:... machine comment, per
// the go doc-comment directive convention).
func FuncHasDirective(fn *ast.FuncDecl, directive string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := c.Text
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// RNGPath is the import path of the repository's seeded random source; the
// only package allowed to touch math/rand, and the type analyzers key on.
const RNGPath = "m2hew/internal/rng"

// SimPath and RadioPath locate the engine seam packages the observer-purity
// analyzer keys on (matched by path so test fixtures can supply stubs).
const (
	SimPath   = "m2hew/internal/sim"
	RadioPath = "m2hew/internal/radio"
)

// IsRNGSource reports whether t is rng.Source or *rng.Source (matched by
// package path and name so test fixtures can supply a stub).
func IsRNGSource(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == RNGPath && obj.Name() == "Source"
}

// InPackages reports whether path is one of the listed package paths or
// lies underneath one of them.
func InPackages(path string, roots []string) bool {
	for _, r := range roots {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}
