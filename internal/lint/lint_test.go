package lint_test

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"m2hew/internal/lint"
)

// loadFixture loads the framework's own test package from testdata.
func loadFixture(t *testing.T, importPath string) *lint.Package {
	t.Helper()
	l := lint.NewLoader()
	if err := l.AddTree("", filepath.Join("testdata", "src")); err != nil {
		t.Fatalf("AddTree: %v", err)
	}
	pkg, err := l.Load(importPath)
	if err != nil {
		t.Fatalf("Load(%s): %v", importPath, err)
	}
	return pkg
}

// flagFuncs reports one diagnostic per function declaration, giving the
// suppression tests something position-accurate to filter.
var flagFuncs = &lint.Analyzer{
	Name: "flagfuncs",
	Doc:  "test analyzer: report every function declaration",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Name.Pos(), "function %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func TestRunAnalyzersAndSuppression(t *testing.T) {
	pkg := loadFixture(t, "fixture")
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{flagFuncs})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	// fixture.go declares four functions; Suppressed (trailing directive),
	// AlsoSuppressed (directive on the line above) and Blanket (ignore all)
	// are filtered, leaving only Reported.
	var names []string
	for _, d := range diags {
		names = append(names, d.Message)
	}
	got := strings.Join(names, ",")
	if got != "function Reported" {
		t.Fatalf("diagnostics after suppression = %q, want %q", got, "function Reported")
	}
}

func TestDiagnosticOrderingAndString(t *testing.T) {
	pkg := loadFixture(t, "fixture")
	// Both analyzers report once at the package clause: identical
	// positions force the analyzer-name tie-break.
	reportStart := func(pass *lint.Pass) error {
		pass.Reportf(pass.Files[0].Package, "pkg %s", pass.Pkg.Name())
		return nil
	}
	diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{
		{Name: "zeta", Doc: "d", Run: reportStart},
		{Name: "alpha", Doc: "d", Run: reportStart},
	})
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2", len(diags))
	}
	// Same position: ties break on analyzer name.
	if diags[0].Analyzer != "alpha" || diags[1].Analyzer != "zeta" {
		t.Fatalf("tie-break order = %s, %s; want alpha, zeta", diags[0].Analyzer, diags[1].Analyzer)
	}
	s := diags[0].String()
	if !strings.Contains(s, "fixture.go") || !strings.HasSuffix(s, "(alpha)") {
		t.Fatalf("Diagnostic.String() = %q; want file position and trailing analyzer name", s)
	}
}

func TestLoaderResolvesTreeImports(t *testing.T) {
	// fixture imports fixture/dep and the standard library; loading it
	// exercises overlay resolution and the source importer together.
	pkg := loadFixture(t, "fixture")
	if pkg.Types.Name() != "fixture" {
		t.Fatalf("package name = %q, want fixture", pkg.Types.Name())
	}
	deps := make(map[string]bool)
	for _, imp := range pkg.Types.Imports() {
		deps[imp.Path()] = true
	}
	if !deps["fixture/dep"] || !deps["strings"] {
		t.Fatalf("imports = %v, want fixture/dep and strings resolved", deps)
	}
}

func TestInPackages(t *testing.T) {
	roots := []string{"m2hew/internal/sim", "m2hew/cmd"}
	cases := []struct {
		path string
		want bool
	}{
		{"m2hew/internal/sim", true},
		{"m2hew/internal/sim/sub", true},
		{"m2hew/internal/simtest", false},
		{"m2hew/cmd/ndbench", true},
		{"m2hew/internal/metrics", false},
	}
	for _, c := range cases {
		if got := lint.InPackages(c.path, roots); got != c.want {
			t.Errorf("InPackages(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestModulePathAndFindModuleRoot(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	mod, err := lint.ModulePath(root)
	if err != nil {
		t.Fatalf("ModulePath: %v", err)
	}
	if mod != "m2hew" {
		t.Fatalf("module path = %q, want m2hew", mod)
	}
}
