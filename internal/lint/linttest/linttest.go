// Package linttest runs lint analyzers against source fixtures, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixtures live under
// testdata/src/<importpath>/ and annotate the findings they expect with
// trailing comments of the form
//
//	code() // want "regexp"
//
// A line may carry several quoted regexps when several findings are
// expected on it. Fixtures may import stub packages that live in the same
// tree (e.g. a fake m2hew/internal/rng), plus anything from the standard
// library.
package linttest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"m2hew/internal/lint"
)

// want is one expected finding.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// Run loads each fixture package (an import path under testdata/src),
// applies the analyzer, and reports every mismatch between actual
// diagnostics and the fixtures' want annotations as a test error.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, testdata, a, false, pkgPaths)
}

// RunWithTests is Run with each fixture package's _test.go files merged in
// (and, when present, its external test package checked as <path>_test),
// for analyzers whose behavior differs in test files.
func RunWithTests(t *testing.T, testdata string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, testdata, a, true, pkgPaths)
}

func run(t *testing.T, testdata string, a *lint.Analyzer, withTests bool, pkgPaths []string) {
	t.Helper()
	loader := lint.NewLoader()
	loader.IncludeTests = withTests
	if err := loader.AddTree("", filepath.Join(testdata, "src")); err != nil {
		t.Fatalf("registering fixture tree: %v", err)
	}
	for _, p := range pkgPaths {
		pkgs := make([]*lint.Package, 0, 2)
		if withTests {
			pkg, err := loader.LoadWithTests(p)
			if err != nil {
				t.Fatalf("loading fixture package %s with tests: %v", p, err)
			}
			pkgs = append(pkgs, pkg)
			xt, err := loader.LoadTest(p)
			if err != nil {
				t.Fatalf("loading external test package of %s: %v", p, err)
			}
			if xt != nil {
				pkgs = append(pkgs, xt)
			}
		} else {
			pkg, err := loader.Load(p)
			if err != nil {
				t.Fatalf("loading fixture package %s: %v", p, err)
			}
			pkgs = append(pkgs, pkg)
		}
		for _, pkg := range pkgs {
			diags, err := lint.RunAnalyzers(pkg, []*lint.Analyzer{a})
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, pkg.Path, err)
			}
			check(t, pkg, diags)
		}
	}
}

// check matches diagnostics against want annotations in pkg's files.
func check(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pkg.Path, d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", pkg.Path, w.file, w.line, w.re)
		}
	}
}

// collectWants extracts `// want "re"` annotations from pkg's comments.
func collectWants(t *testing.T, pkg *lint.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range splitQuoted(text) {
					expr, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted splits `"a" "b c"` into its quoted segments, quotes kept.
// Both double-quoted and backquoted segments are accepted.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexAny(s, "\"`")
		if start < 0 {
			return out
		}
		quote := s[start]
		rest := s[start+1:]
		end := -1
		for i := 0; i < len(rest); i++ {
			if quote == '"' && rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == quote {
				end = i
				break
			}
		}
		if end < 0 {
			return out
		}
		out = append(out, s[start:start+1+end+1])
		s = rest[end+1:]
	}
}
