package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory its sources were read from.
	Dir string
	// Fset is shared by every package of one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds type-checking facts for Files.
	Info *types.Info
}

// A Loader type-checks a set of directories as packages. Import paths
// registered with Map or AddTree resolve to those directories and are
// parsed and checked by the loader itself; every other import (the standard
// library) is delegated to go/importer's "source" importer, which works
// offline from GOROOT sources. Loading is memoized, so a Loader is cheap to
// reuse across many packages but is not safe for concurrent use.
type Loader struct {
	fset    *token.FileSet
	dirs    map[string]string // import path -> source directory
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		dirs:    make(map[string]string),
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Map registers dir as the source of import path importPath.
func (l *Loader) Map(importPath, dir string) {
	l.dirs[importPath] = dir
}

// AddTree walks root and registers every directory containing non-test Go
// files. A directory at relative path rel is registered under
// path.Join(prefix, rel); root itself is registered as prefix. Directories
// named testdata, hidden directories and underscore-prefixed directories
// are skipped, matching the go tool's convention.
func (l *Loader) AddTree(prefix, root string) error {
	return filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return fs.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			n := e.Name()
			if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		ip := prefix
		if rel != "." {
			ip = path.Join(prefix, filepath.ToSlash(rel))
		}
		if ip == "" {
			ip = filepath.ToSlash(rel)
		}
		l.Map(ip, p)
		return nil
	})
}

// Paths returns the registered import paths, sorted.
func (l *Loader) Paths() []string {
	out := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Load parses and type-checks the package registered under importPath
// (loading its registered dependencies first) and returns it.
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", importPath)
	}
	dir, ok := l.dirs[importPath]
	if !ok {
		return nil, fmt.Errorf("lint: package %q is not registered with this loader", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(l.importDep)}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// parseDir parses the buildable non-test Go files of dir, honoring build
// constraints via go/build.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ctx := build.Default
	bpkg, err := ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(bpkg.GoFiles))
	for _, name := range bpkg.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importDep resolves one import during type-checking: registered paths load
// through this loader, everything else through the standard-library source
// importer.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirs[path]; ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// LoadRepo loads every package of the module rooted at root, in sorted
// import-path order.
func LoadRepo(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	l := NewLoader()
	if err := l.AddTree(modPath, root); err != nil {
		return nil, err
	}
	paths := l.Paths()
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
