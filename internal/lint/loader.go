package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory its sources were read from.
	Dir string
	// Fset is shared by every package of one Loader.
	Fset *token.FileSet
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds type-checking facts for Files.
	Info *types.Info
}

// A Loader type-checks a set of directories as packages. Import paths
// registered with Map or AddTree resolve to those directories and are
// parsed and checked by the loader itself; every other import (the standard
// library) is delegated to go/importer's "source" importer, which works
// offline from GOROOT sources. Loading is memoized, so a Loader is cheap to
// reuse across many packages but is not safe for concurrent use.
type Loader struct {
	// IncludeTests widens AddTree to register directories that hold only
	// _test.go files. Set it before AddTree; the merged and external test
	// packages themselves load through LoadWithTests and LoadTest.
	IncludeTests bool
	// Tags are extra build tags honored when selecting files, on top of the
	// default context's (GOOS/GOARCH and release tags). Set before loading.
	Tags []string

	fset     *token.FileSet
	dirs     map[string]string // import path -> source directory
	std      types.Importer
	pkgs     map[string]*Package // plain packages (no test files)
	testPkgs map[string]*Package // packages with in-package tests merged
	xPkgs    map[string]*Package // external test packages, keyed by base path
	variants map[string]*Package // deps re-checked against a merged base, keyed base+"\x00"+dep
	imports  map[string][]string // memoized direct imports per registered path
	loading  map[string]bool
}

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:     fset,
		dirs:     make(map[string]string),
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*Package),
		testPkgs: make(map[string]*Package),
		xPkgs:    make(map[string]*Package),
		variants: make(map[string]*Package),
		imports:  make(map[string][]string),
		loading:  make(map[string]bool),
	}
}

// Map registers dir as the source of import path importPath.
func (l *Loader) Map(importPath, dir string) {
	l.dirs[importPath] = dir
}

// AddTree walks root and registers every directory containing non-test Go
// files (any Go files, when IncludeTests is set). A directory at relative
// path rel is registered under path.Join(prefix, rel); root itself is
// registered as prefix. Directories named testdata, hidden directories and
// underscore-prefixed directories are skipped, matching the go tool's
// convention.
func (l *Loader) AddTree(prefix, root string) error {
	return filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return fs.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range entries {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") {
				continue
			}
			if strings.HasSuffix(n, "_test.go") && !l.IncludeTests {
				continue
			}
			hasGo = true
			break
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		ip := prefix
		if rel != "." {
			ip = path.Join(prefix, filepath.ToSlash(rel))
		}
		if ip == "" {
			ip = filepath.ToSlash(rel)
		}
		l.Map(ip, p)
		return nil
	})
}

// Paths returns the registered import paths, sorted.
func (l *Loader) Paths() []string {
	out := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Load parses and type-checks the package registered under importPath
// (loading its registered dependencies first) and returns it.
func (l *Loader) Load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", importPath)
	}
	dir, ok := l.dirs[importPath]
	if !ok {
		return nil, fmt.Errorf("lint: package %q is not registered with this loader", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bpkg, err := l.importDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	pkg, err := l.check(importPath, dir, bpkg.GoFiles, importerFunc(l.importDep))
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// LoadWithTests is Load with the package's in-package _test.go files merged
// in — the shape the go tool compiles for `go test`. Dependencies still
// resolve to plain (test-free) packages, so a test file importing a helper
// package that itself imports the tested package does not create a false
// import cycle.
func (l *Loader) LoadWithTests(importPath string) (*Package, error) {
	if pkg, ok := l.testPkgs[importPath]; ok {
		return pkg, nil
	}
	dir, ok := l.dirs[importPath]
	if !ok {
		return nil, fmt.Errorf("lint: package %q is not registered with this loader", importPath)
	}
	bpkg, err := l.importDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	if len(bpkg.TestGoFiles) == 0 {
		// No in-package tests: the merged package is the plain one.
		pkg, err := l.Load(importPath)
		if err != nil {
			return nil, err
		}
		l.testPkgs[importPath] = pkg
		return pkg, nil
	}
	names := make([]string, 0, len(bpkg.GoFiles)+len(bpkg.TestGoFiles))
	names = append(names, bpkg.GoFiles...)
	names = append(names, bpkg.TestGoFiles...)
	pkg, err := l.check(importPath, dir, names, importerFunc(l.importDep))
	if err != nil {
		return nil, err
	}
	l.testPkgs[importPath] = pkg
	return pkg, nil
}

// LoadTest type-checks the external test package (package <name>_test built
// from the directory's _test.go files with the foreign package clause) of
// the directory registered under importPath. It returns (nil, nil) when the
// directory has no external test files. The external package's import of
// importPath resolves to the merged LoadWithTests package, so exported
// hooks defined in export_test.go-style files are visible; dependencies
// that themselves import importPath (test helper packages) are re-checked
// against the merged package the way the go tool recompiles them, so their
// signatures mention the same types the test sees.
func (l *Loader) LoadTest(importPath string) (*Package, error) {
	if pkg, ok := l.xPkgs[importPath]; ok {
		return pkg, nil
	}
	dir, ok := l.dirs[importPath]
	if !ok {
		return nil, fmt.Errorf("lint: package %q is not registered with this loader", importPath)
	}
	bpkg, err := l.importDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	if len(bpkg.XTestGoFiles) == 0 {
		return nil, nil
	}
	var under *types.Package
	if len(bpkg.GoFiles)+len(bpkg.TestGoFiles) > 0 {
		up, err := l.LoadWithTests(importPath)
		if err != nil {
			return nil, err
		}
		under = up.Types
	}
	imp := importerFunc(func(p string) (*types.Package, error) {
		return l.importTestDep(p, importPath, under)
	})
	pkg, err := l.check(importPath+"_test", dir, bpkg.XTestGoFiles, imp)
	if err != nil {
		return nil, err
	}
	l.xPkgs[importPath] = pkg
	return pkg, nil
}

// importTestDep resolves one import while checking base's external test
// package (or a dependency variant of it): base itself resolves to the
// merged under package, registered dependencies that transitively import
// base are re-checked against it (loadVariant), and everything else gets
// the ordinary plain resolution.
func (l *Loader) importTestDep(p, base string, under *types.Package) (*types.Package, error) {
	if p == base && under != nil {
		return under, nil
	}
	if _, ok := l.dirs[p]; ok {
		reaches, err := l.dependsOn(p, base)
		if err != nil {
			return nil, err
		}
		if reaches {
			pkg, err := l.loadVariant(p, base, under)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	return l.importDep(p)
}

// loadVariant re-checks registered package p (its plain, non-test files)
// with imports of base resolving to the merged under package — the analogue
// of the go tool recompiling a test helper against the test-augmented
// package it imports. Variants are memoized per (base, p).
func (l *Loader) loadVariant(p, base string, under *types.Package) (*Package, error) {
	key := base + "\x00" + p
	if pkg, ok := l.variants[key]; ok {
		return pkg, nil
	}
	if l.loading[key] {
		return nil, fmt.Errorf("lint: import cycle through %q", p)
	}
	l.loading[key] = true
	defer delete(l.loading, key)
	dir := l.dirs[p]
	bpkg, err := l.importDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", p, err)
	}
	imp := importerFunc(func(q string) (*types.Package, error) {
		return l.importTestDep(q, base, under)
	})
	pkg, err := l.check(p, dir, bpkg.GoFiles, imp)
	if err != nil {
		return nil, err
	}
	l.variants[key] = pkg
	return pkg, nil
}

// dependsOn reports whether registered package p transitively imports base
// through registered packages only.
func (l *Loader) dependsOn(p, base string) (bool, error) {
	seen := make(map[string]bool)
	var walk func(q string) (bool, error)
	walk = func(q string) (bool, error) {
		if q == base {
			return true, nil
		}
		if seen[q] {
			return false, nil
		}
		seen[q] = true
		imps, err := l.directImports(q)
		if err != nil {
			return false, err
		}
		for _, imp := range imps {
			if _, ok := l.dirs[imp]; !ok {
				continue // unregistered (stdlib) imports cannot reach base
			}
			hit, err := walk(imp)
			if err != nil || hit {
				return hit, err
			}
		}
		return false, nil
	}
	return walk(p)
}

// directImports memoizes the direct imports of registered package p's plain
// files.
func (l *Loader) directImports(p string) ([]string, error) {
	if imps, ok := l.imports[p]; ok {
		return imps, nil
	}
	bpkg, err := l.importDir(l.dirs[p])
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", p, err)
	}
	l.imports[p] = bpkg.Imports
	return bpkg.Imports, nil
}

// importDir resolves dir's buildable files through go/build, honoring the
// loader's extra build tags.
func (l *Loader) importDir(dir string) (*build.Package, error) {
	ctx := build.Default
	if len(l.Tags) > 0 {
		ctx.BuildTags = append(append([]string(nil), ctx.BuildTags...), l.Tags...)
	}
	return ctx.ImportDir(dir, 0)
}

// check parses the named files of dir and type-checks them as importPath.
func (l *Loader) check(importPath, dir string, names []string, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", importPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// importDep resolves one import during type-checking: registered paths load
// through this loader, everything else through the standard-library source
// importer.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirs[path]; ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// LoadOptions widens LoadRepoWith beyond the default non-test load.
type LoadOptions struct {
	// IncludeTests merges in-package _test.go files into each package and
	// additionally loads each directory's external test package (package
	// <name>_test) as a separate "<path>_test" entry right after its base
	// package.
	IncludeTests bool
	// Tags are extra build tags honored when selecting files.
	Tags []string
}

// LoadRepo loads every package of the module rooted at root, in sorted
// import-path order.
func LoadRepo(root string) ([]*Package, error) {
	return LoadRepoWith(root, LoadOptions{})
}

// LoadRepoWith loads every package of the module rooted at root per opts,
// in sorted import-path order (external test packages directly after their
// base package).
func LoadRepoWith(root string, opts LoadOptions) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	l := NewLoader()
	l.IncludeTests = opts.IncludeTests
	l.Tags = opts.Tags
	if err := l.AddTree(modPath, root); err != nil {
		return nil, err
	}
	paths := l.Paths()
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		if !opts.IncludeTests {
			pkg, err := l.Load(p)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
			continue
		}
		pkg, err := l.LoadWithTests(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
		xt, err := l.LoadTest(p)
		if err != nil {
			return nil, err
		}
		if xt != nil {
			pkgs = append(pkgs, xt)
		}
	}
	return pkgs, nil
}
