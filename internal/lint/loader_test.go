package lint_test

import (
	"path/filepath"
	"slices"
	"testing"

	"m2hew/internal/lint"
)

// newFixtureLoader builds a loader over testdata/src with the given knobs.
func newFixtureLoader(t *testing.T, includeTests bool, tags []string) *lint.Loader {
	t.Helper()
	l := lint.NewLoader()
	l.IncludeTests = includeTests
	l.Tags = tags
	if err := l.AddTree("", filepath.Join("testdata", "src")); err != nil {
		t.Fatalf("AddTree: %v", err)
	}
	return l
}

// funcNames lists the package-scope function and variable names of pkg's
// type-checked scope, sorted — a compact fingerprint of which files were
// included in the load.
func scopeNames(pkg *lint.Package) []string {
	names := pkg.Types.Scope().Names()
	slices.Sort(names)
	return names
}

func TestLoadHonorsBuildTags(t *testing.T) {
	plain := newFixtureLoader(t, false, nil)
	pkg, err := plain.Load("tagged")
	if err != nil {
		t.Fatalf("Load(tagged): %v", err)
	}
	if names := scopeNames(pkg); !slices.Equal(names, []string{"Base"}) {
		t.Errorf("default load of tagged has scope %v, want [Base]", names)
	}

	withTag := newFixtureLoader(t, false, []string{"extra"})
	pkg, err = withTag.Load("tagged")
	if err != nil {
		t.Fatalf("Load(tagged) with -tags extra: %v", err)
	}
	if names := scopeNames(pkg); !slices.Equal(names, []string{"Base", "Extra"}) {
		t.Errorf("tagged load with extra has scope %v, want [Base Extra]", names)
	}
}

func TestLoadWithTestsMergesInPackageTests(t *testing.T) {
	l := newFixtureLoader(t, true, nil)

	// The plain load must not see the test file.
	pkg, err := l.Load("withtests")
	if err != nil {
		t.Fatalf("Load(withtests): %v", err)
	}
	if names := scopeNames(pkg); slices.Contains(names, "TestAnswer") {
		t.Errorf("plain load of withtests includes test declarations: %v", names)
	}

	merged, err := l.LoadWithTests("withtests")
	if err != nil {
		t.Fatalf("LoadWithTests(withtests): %v", err)
	}
	names := scopeNames(merged)
	if !slices.Contains(names, "TestAnswer") || !slices.Contains(names, "answer") {
		t.Errorf("merged load of withtests has scope %v, want both answer and TestAnswer", names)
	}

	// A directory without in-package tests memoizes to its plain package.
	mergedTagged, err := l.LoadWithTests("tagged")
	if err != nil {
		t.Fatalf("LoadWithTests(tagged): %v", err)
	}
	plainTagged, err := l.Load("tagged")
	if err != nil {
		t.Fatalf("Load(tagged): %v", err)
	}
	if mergedTagged != plainTagged {
		t.Error("LoadWithTests on a test-free package should return the plain package")
	}
}

func TestLoadTestExternalPackage(t *testing.T) {
	l := newFixtureLoader(t, true, nil)

	xt, err := l.LoadTest("xtested")
	if err != nil {
		t.Fatalf("LoadTest(xtested): %v", err)
	}
	if xt == nil {
		t.Fatal("LoadTest(xtested) returned nil; ext_test.go not loaded")
	}
	if xt.Path != "xtested_test" {
		t.Errorf("external test package path = %q, want %q", xt.Path, "xtested_test")
	}
	if !slices.Contains(scopeNames(xt), "TestDouble") {
		t.Errorf("external test package scope %v lacks TestDouble", scopeNames(xt))
	}
	// ext_test.go calls xtested.Hidden, the export_test.go hook — proving the
	// external package's base import resolved to the merged package, not the
	// plain one. Type-checking succeeding is the assertion; double-check the
	// hook exists on the imported side.
	merged, err := l.LoadWithTests("xtested")
	if err != nil {
		t.Fatalf("LoadWithTests(xtested): %v", err)
	}
	if !slices.Contains(scopeNames(merged), "Hidden") {
		t.Errorf("merged xtested scope %v lacks the Hidden export hook", scopeNames(merged))
	}

	// A directory with no external test files loads as (nil, nil).
	none, err := l.LoadTest("withtests")
	if err != nil {
		t.Fatalf("LoadTest(withtests): %v", err)
	}
	if none != nil {
		t.Errorf("LoadTest(withtests) = %v, want nil (no external test files)", none.Path)
	}
}

func TestAddTreeTestOnlyDirectories(t *testing.T) {
	// Without IncludeTests, a directory holding only _test.go files is not a
	// package and must not be registered.
	plain := newFixtureLoader(t, false, nil)
	if slices.Contains(plain.Paths(), "testonly") {
		t.Error("test-only directory registered without IncludeTests")
	}

	withTests := newFixtureLoader(t, true, nil)
	if !slices.Contains(withTests.Paths(), "testonly") {
		t.Fatal("test-only directory not registered with IncludeTests")
	}
	pkg, err := withTests.LoadWithTests("testonly")
	if err != nil {
		t.Fatalf("LoadWithTests(testonly): %v", err)
	}
	if !slices.Contains(scopeNames(pkg), "TestNothing") {
		t.Errorf("testonly scope %v lacks TestNothing", scopeNames(pkg))
	}
}
