// Package lockorder enforces the mutex-and-atomics discipline of the
// telemetry and harness layers.
//
// The repository's concurrency design is deliberately two-tier: hot paths
// (the engine inner loops and the telemetry update methods, annotated
// //nd:hotpath) synchronize with single atomic instructions only, while
// registration, snapshot and aggregation cold paths take mutexes. Two
// mistakes break the tiering silently:
//
//   - acquiring a mutex inside a hot path, which serializes the harness's
//     concurrent trial pool and shows up only as a mysterious scaling
//     regression;
//   - copying a struct that contains a lock (or an atomic value), which
//     forks the lock state so two goroutines each hold "the" mutex — go
//     vet's copylocks catches some shapes of this, but not the ones routed
//     through this repository's scratch and snapshot seams.
//
// Rule A: no sync.Mutex/RWMutex Lock/RLock/TryLock/TryRLock call inside a
// //nd:hotpath function. Rule B (whole package, annotated or not): no
// by-value copy — assignment, by-value parameter or receiver, range value —
// of a type that recursively contains a sync lock, sync.WaitGroup/Once/
// Cond/Pool/Map, or a sync/atomic value type.
package lockorder

import (
	"go/ast"
	"go/types"

	"m2hew/internal/lint"
)

// Analyzer reports mutex use in hot paths and copies of lock-bearing values.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc:  "forbid mutex acquisition in //nd:hotpath functions and by-value copies of lock-bearing structs",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if lint.FuncHasDirective(fn, lint.HotpathDirective) {
				checkNoLocks(pass, fn)
			}
			checkSignature(pass, fn.Recv, fn.Type)
		}
		// Rule B also applies to function literals' signatures and to
		// copy-shaped statements anywhere in the file.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				checkSignature(pass, nil, n.Type)
			case *ast.AssignStmt:
				checkAssignCopies(pass, n)
			case *ast.RangeStmt:
				checkRangeCopies(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkNoLocks enforces rule A inside one annotated function.
func checkNoLocks(pass *lint.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
		default:
			return true
		}
		obj := pass.Info.Uses[sel.Sel]
		meth, ok := obj.(*types.Func)
		if !ok {
			return true
		}
		sig, ok := meth.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			o := named.Obj()
			if o.Pkg() != nil && o.Pkg().Path() == "sync" &&
				(o.Name() == "Mutex" || o.Name() == "RWMutex") {
				pass.Reportf(call.Pos(), "%s acquires a mutex in //nd:hotpath function %s: hot paths synchronize with atomics only", sel.Sel.Name, fn.Name.Name)
			}
		}
		return true
	})
}

// checkSignature enforces rule B on parameters, results and the receiver.
func checkSignature(pass *lint.Pass, recv *ast.FieldList, ft *ast.FuncType) {
	report := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if name := lockInside(tv.Type); name != "" {
				pass.Reportf(field.Type.Pos(), "by-value %s copies %s: pass a pointer", what, name)
			}
		}
	}
	report(recv, "receiver")
	report(ft.Params, "parameter")
	report(ft.Results, "result")
}

// checkAssignCopies flags x := y / x = y where y is a plain variable
// reference of a lock-bearing type (calls and composite literals construct
// fresh values and are someone else's problem).
func checkAssignCopies(pass *lint.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		// Assigning to _ discards the copy immediately; no lock state forks.
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if !isVarRef(rhs) {
			continue
		}
		tv, ok := pass.Info.Types[rhs]
		if !ok || tv.Type == nil {
			continue
		}
		if name := lockInside(tv.Type); name != "" {
			pass.Reportf(rhs.Pos(), "assignment copies %s: use a pointer", name)
		}
	}
}

// checkRangeCopies flags range value variables that copy lock-bearing
// elements.
func checkRangeCopies(pass *lint.Pass, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	var t types.Type
	if id, ok := rs.Value.(*ast.Ident); ok {
		// := range defines the value variable; = range uses an existing one.
		if obj := pass.Info.Defs[id]; obj != nil {
			t = obj.Type()
		} else if obj := pass.Info.Uses[id]; obj != nil {
			t = obj.Type()
		}
	}
	if t == nil {
		tv, ok := pass.Info.Types[rs.Value]
		if !ok {
			return
		}
		t = tv.Type
	}
	if t == nil {
		return
	}
	if name := lockInside(t); name != "" {
		pass.Reportf(rs.Value.Pos(), "range value copies %s: range over indexes or pointers", name)
	}
}

// isVarRef reports whether e reads an existing value (identifier, field
// selector, deref, index) as opposed to constructing a new one.
func isVarRef(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	case *ast.ParenExpr:
		return isVarRef(e.X)
	}
	return false
}

// lockInside returns the name of a lock-bearing type reachable from t by
// value (fields, array elements, embedding), or "" when t is copy-safe.
// Pointers, slices, maps and channels stop the search: copying a pointer to
// a lock is fine.
func lockInside(t types.Type) string {
	return lockInsideSeen(t, make(map[types.Type]bool))
}

func lockInsideSeen(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		o := named.Obj()
		if o.Pkg() != nil {
			switch o.Pkg().Path() {
			case "sync":
				switch o.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
					return "sync." + o.Name()
				}
			case "sync/atomic":
				// Every exported sync/atomic struct type (Int64, Uint64,
				// Bool, Pointer, Value, ...) embeds noCopy.
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					return "sync/atomic." + o.Name()
				}
			}
		}
		return lockInsideSeen(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name := lockInsideSeen(t.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockInsideSeen(t.Elem(), seen)
	}
	return ""
}
