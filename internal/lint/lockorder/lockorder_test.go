package lockorder_test

import (
	"testing"

	"m2hew/internal/lint/linttest"
	"m2hew/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata", lockorder.Analyzer,
		"a", // hot-path locking, by-value copies, suppression, clean shapes
	)
}
