// Package a exercises the lockorder analyzer: mutex acquisition in hot
// paths, lock-bearing copies through signatures, assignments and ranges,
// plus the suppressed and clean shapes.
package a

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	v atomic.Int64
}

type guarded struct {
	mu   sync.Mutex
	vals []int
}

// hot is a //nd:hotpath function that wrongly takes locks.
//
//nd:hotpath
func hot(g *guarded, c *counter) {
	g.mu.Lock() // want "Lock acquires a mutex in //nd:hotpath function hot"
	g.vals = g.vals[:0]
	g.mu.Unlock()
	c.v.Add(1) // atomics are the hot-path tool: allowed
}

type embedsMutex struct {
	sync.Mutex
	n int
}

// hotPromoted locks through an embedded (promoted) mutex method.
//
//nd:hotpath
func hotPromoted(e *embedsMutex) {
	e.Lock() // want "Lock acquires a mutex in //nd:hotpath function hotPromoted"
	e.n++
	e.Unlock()
}

// cold may lock freely: no annotation.
func cold(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.vals)
}

// byValueParam copies the mutex inside guarded.
func byValueParam(g guarded) int { // want "by-value parameter copies sync.Mutex"
	return len(g.vals)
}

// byValueReceiver copies the atomic counter.
func (c counter) read() int64 { // want "by-value receiver copies sync/atomic.Int64"
	return c.v.Load()
}

// byValueResult returns a lock-bearing value.
func byValueResult() guarded { // want "by-value result copies sync.Mutex"
	return guarded{}
}

func copies(gs []guarded, one *guarded) {
	g := *one // want "assignment copies sync.Mutex"
	_ = g
	for _, v := range gs { // want "range value copies sync.Mutex"
		_ = v
	}
	for i := range gs { // ranging by index: allowed
		_ = gs[i].vals
	}
	p := one // copying a pointer to a lock: allowed
	_ = p
}

// suppressed documents a deliberate copy (e.g. a one-time snapshot before
// any goroutine runs).
func suppressed(one *guarded) {
	g := *one //ndlint:ignore lockorder pre-start snapshot, no concurrent holders
	_ = g
}
