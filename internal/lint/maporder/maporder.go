// Package maporder flags map iteration whose order leaks into results.
//
// Go randomizes map iteration order on purpose. In the experiment and
// metrics pipeline that nondeterminism is poison: the EXPERIMENTS.md tables
// must reproduce byte-for-byte from a seed, so a range-over-map that
// appends rows, prints cells, feeds a hash, or accumulates floating point
// (float addition is not associative, so summation order changes low bits)
// silently breaks run-to-run identity.
//
// The analyzer fences the deterministic-output packages and reports a
// range over a map value whose body performs an order-sensitive effect:
//
//   - appending to a slice declared outside the loop — unless a later
//     statement sorts that slice before control can escape: the search
//     starts in the loop's own block and walks outward through enclosing
//     blocks (a loop inside an if/else branch whose shared continuation
//     sorts, as the dense/map-backed collectors in metrics do, is legal),
//     stopping at any return or branch that could publish the slice
//     unsorted (the canonical collect-keys-then-sort idiom stays legal);
//   - writing output (fmt print family, or Write/WriteString/Sum-style
//     method calls, which also covers hashing);
//   - compound floating-point accumulation (+=, -=, *=, /=) into a
//     variable declared outside the loop.
//
// Order-insensitive reductions (integer sums, min/max, counting, set
// membership tests) pass untouched. A finding that is a verified false
// positive can be suppressed with //ndlint:ignore maporder <reason>.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"m2hew/internal/lint"
)

// fencedPackages lists the package trees whose output must be reproducible.
// The engines (internal/sim) joined the fence when they grew reused
// resolver buffers and shared per-sender state: their delivery order is the
// experiment pipeline's input, so a map-ordered effect there corrupts
// byte-identity at the source.
var fencedPackages = []string{
	"m2hew/internal/diag",
	"m2hew/internal/dynamics",
	"m2hew/internal/experiment",
	"m2hew/internal/harness",
	"m2hew/internal/metrics",
	"m2hew/internal/sim",
	"m2hew/internal/telemetry",
	"m2hew/cmd",
}

// Analyzer reports order-sensitive effects inside range-over-map loops.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc:  "flag range over a map that appends, prints, hashes or float-accumulates in iteration order; map order is nondeterministic",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if !lint.InPackages(pass.Pkg.Path(), fencedPackages) {
		return nil
	}
	for _, f := range pass.Files {
		// Track enclosing blocks so the sorted-later escape can look at the
		// statements that follow a range loop.
		var blocks []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				blocks = append(blocks, n)
				for _, st := range n.List {
					ast.Inspect(st, walk)
				}
				blocks = blocks[:len(blocks)-1]
				return false
			case *ast.RangeStmt:
				if isMapType(pass, n.X) {
					checkRange(pass, n, followingChain(blocks, n))
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// followingChain returns, innermost block first, the statements that
// execute after stmt at each enclosing block level: at every level the
// statement containing stmt is located by position and the statements after
// it are collected. A loop that is the last statement of an if/else branch
// thus still sees the shared continuation after the if — where the
// dense/map dual-backing collectors put their sort.
func followingChain(blocks []*ast.BlockStmt, stmt ast.Stmt) [][]ast.Stmt {
	var chain [][]ast.Stmt
	for i := len(blocks) - 1; i >= 0; i-- {
		for j, st := range blocks[i].List {
			if st.Pos() <= stmt.Pos() && stmt.End() <= st.End() {
				chain = append(chain, blocks[i].List[j+1:])
				break
			}
		}
	}
	return chain
}

// isMapType reports whether expr's type is a map.
func isMapType(pass *lint.Pass, expr ast.Expr) bool {
	t := pass.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkRange inspects one map-range body for order-sensitive effects.
// following holds, per enclosing block level, the statements after the
// loop, used to recognize the collect-then-sort idiom.
func checkRange(pass *lint.Pass, rs *ast.RangeStmt, following [][]ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, rs, n, following)
		case *ast.AssignStmt:
			checkFloatAccum(pass, rs, n)
		}
		return true
	})
}

// checkCall flags output/hash calls and unsorted appends.
func checkCall(pass *lint.Pass, rs *ast.RangeStmt, call *ast.CallExpr, following [][]ast.Stmt) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "append" {
			return
		}
		if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); !isBuiltin {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		dst, ok := call.Args[0].(*ast.Ident)
		if !ok {
			// Appending to a field or element in map order: no way to prove
			// a later sort, so flag conservatively.
			pass.Reportf(call.Pos(), "append inside range over a map iterates in nondeterministic order; collect and sort, or iterate sorted keys")
			return
		}
		obj := pass.Info.ObjectOf(dst)
		if obj == nil || declaredWithin(obj, rs) {
			return // loop-local slice: order cannot escape the iteration
		}
		if sortedLater(pass, obj, following) {
			return // collect-then-sort idiom
		}
		pass.Reportf(call.Pos(), "append to %s inside range over a map iterates in nondeterministic order and %s is not sorted before control escapes; sort it or iterate sorted keys", dst.Name, dst.Name)
	case *ast.SelectorExpr:
		obj := pass.Info.Uses[fun.Sel]
		if obj == nil {
			return
		}
		if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "fmt" && isPrint(obj.Name()) {
			pass.Reportf(call.Pos(), "fmt.%s inside range over a map emits output in nondeterministic order; iterate sorted keys", obj.Name())
			return
		}
		if isWriteMethod(fun.Sel.Name) && pass.Info.Selections[fun] != nil {
			pass.Reportf(call.Pos(), "%s inside range over a map writes in nondeterministic order; iterate sorted keys", fun.Sel.Name)
		}
	}
}

// isPrint matches fmt's printing functions (Sprint* builds strings without
// emitting them, so it is left alone).
func isPrint(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// isWriteMethod matches io.Writer-style sinks and hash.Hash feeding.
func isWriteMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Sum":
		return true
	}
	return false
}

// checkFloatAccum flags compound floating-point accumulation into a
// variable that outlives the loop.
func checkFloatAccum(pass *lint.Pass, rs *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if len(as.Lhs) != 1 {
		return
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	t := pass.Info.TypeOf(lhs)
	if t == nil {
		return
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return
	}
	obj := pass.Info.ObjectOf(lhs)
	if obj == nil || declaredWithin(obj, rs) {
		return
	}
	pass.Reportf(as.Pos(), "floating-point accumulation into %s inside range over a map depends on iteration order (float addition is not associative); iterate sorted keys", lhs.Name)
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// sortedLater reports whether a sort of obj post-dominates the loop: it
// scans the statements after the loop level by level, innermost block
// outward. A statement that sorts obj proves the order benign; a statement
// that could transfer control out of the chain first (return, break,
// continue, goto) means the unsorted slice may be observed, so the walk
// stops and the append is flagged.
func sortedLater(pass *lint.Pass, obj types.Object, following [][]ast.Stmt) bool {
	for _, level := range following {
		for _, st := range level {
			if sortsObj(pass, st, obj) {
				return true
			}
			if escapes(st) {
				return false
			}
		}
	}
	return false
}

// sortsObj reports whether st calls a sort/slices function with obj among
// its arguments.
func sortsObj(pass *lint.Pass, st ast.Stmt, obj types.Object) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := pass.Info.Uses[sel.Sel]
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// escapes conservatively reports whether st could transfer control away
// from the statement chain — any return or branch at any depth counts, even
// a conditional one, since on that path a later sort never runs.
func escapes(st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
		case *ast.FuncLit:
			return false // its body runs elsewhere
		}
		return !found
	})
	return found
}
