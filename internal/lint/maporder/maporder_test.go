package maporder_test

import (
	"testing"

	"m2hew/internal/lint/linttest"
	"m2hew/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", maporder.Analyzer,
		"m2hew/internal/metrics",   // fenced: violations and legal idioms
		"m2hew/internal/harness",   // fenced: trial-result merge patterns
		"m2hew/cmd/ndfake",         // fenced: command output paths
		"m2hew/internal/sim",       // fenced: engine delivery-batch patterns
		"m2hew/internal/telemetry", // fenced: exporter/snapshot rendering
		"m2hew/internal/dynamics",  // fenced: epoch-rebuild table patterns
		"m2hew/internal/diag",      // fenced: diagnostics-server render paths
	)
}
