// Package main is a fixture for maporder's output checks in a command.
package main

import (
	"fmt"
	"os"
	"strings"
)

func main() {
	m := map[string]int{"a": 1}
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf inside range over a map`
	}
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString inside range over a map`
	}
	fmt.Fprintln(os.Stdout, b.String())
}
