// Package diag is a fixture exercising maporder inside the diagnostics
// fence: the diag server renders registry snapshots and progress phases to
// HTTP responses, and a scrape that differs between two requests over the
// same state would make /metrics and /progress unusable for diffing — so
// map-ordered emission is flagged while the collect-then-sort idiom the
// real handlers use stays legal.
package diag

import (
	"fmt"
	"io"
	"sort"
)

// ServePhases writes the per-phase trial counts straight out of the map:
// two scrapes of identical state would render in different orders.
func ServePhases(w io.Writer, phases map[string]int) {
	for name, n := range phases {
		fmt.Fprintf(w, "%s %d\n", name, n) // want `fmt.Fprintf inside range over a map`
	}
}

// PhaseRows collects the phase table in map order without sorting.
func PhaseRows(phases map[string]int) []string {
	var rows []string
	for name := range phases {
		rows = append(rows, name) // want `append to rows inside range over a map`
	}
	return rows
}

// SortedPhaseRows collects then sorts: the real handler idiom.
func SortedPhaseRows(phases map[string]int) []string {
	rows := make([]string, 0, len(phases))
	for name := range phases {
		rows = append(rows, name)
	}
	sort.Strings(rows)
	return rows
}

// TotalTrials is an order-insensitive integer reduction, legal.
func TotalTrials(phases map[string]int) int {
	total := 0
	for _, n := range phases {
		total += n
	}
	return total
}
