// Package dynamics is a fixture for the epoch-schedule tree, which joined
// maporder's fence when worlds began rebuilding candidate and loss tables
// per epoch: those tables feed the engines directly, so a rebuild that
// walks a map leaks iteration order into every latency the run records.
// The real package rebuilds by ascending node index and sorts its event
// lists; the fixture pins both the violation and the sanctioned shapes.
package dynamics

import "sort"

// span mirrors a blocked-interval record keyed by node and channel.
type span struct {
	node, channel int
	start, end    int
}

// RebuildLosses drains the per-epoch blocked map in iteration order — the
// rebuild bug the fence exists to catch: the loss-event sequence handed to
// the observer would differ run to run at the same seed.
func RebuildLosses(blocked map[int][]int, epoch int) []span {
	var losses []span
	for node, chans := range blocked {
		for _, c := range chans {
			losses = append(losses, span{node: node, channel: c, start: epoch}) // want `append to losses inside range over a map`
		}
	}
	return losses
}

// RebuildLossesSorted collects then sorts by (node, channel): the
// collect-then-sort idiom the real epoch rebuild uses. Legal.
func RebuildLossesSorted(blocked map[int][]int, epoch int) []span {
	losses := make([]span, 0, len(blocked))
	for node, chans := range blocked {
		for _, c := range chans {
			losses = append(losses, span{node: node, channel: c, start: epoch})
		}
	}
	sort.Slice(losses, func(i, j int) bool {
		if losses[i].node != losses[j].node {
			return losses[i].node < losses[j].node
		}
		return losses[i].channel < losses[j].channel
	})
	return losses
}

// RebuildByIndex iterates active nodes in ascending index and only probes
// the map for membership — the real package's primary idiom. Legal.
func RebuildByIndex(n int, blocked map[int][]int, epoch int) []span {
	losses := make([]span, 0, n)
	for node := 0; node < n; node++ {
		for _, c := range blocked[node] {
			losses = append(losses, span{node: node, channel: c, start: epoch})
		}
	}
	return losses
}

// MeanOutage accumulates floating point in map order; low bits of the
// reported outage would depend on iteration order.
func MeanOutage(durations map[int]float64) float64 {
	var sum float64
	for _, d := range durations {
		sum += d // want `floating-point accumulation into sum inside range over a map`
	}
	if len(durations) == 0 {
		return 0
	}
	return sum / float64(len(durations))
}

// CountBlocked is an order-insensitive reduction; legal.
func CountBlocked(blocked map[int][]int) int {
	n := 0
	for _, chans := range blocked {
		n += len(chans)
	}
	return n
}
