// Package harness is a fixture exercising maporder inside the fenced trial
// pipeline: merging per-trial results out of a map in iteration order is
// flagged, the collect-by-index and collect-then-sort merges are not.
package harness

import "sort"

// MergeByMap gathers trial results out of a map in iteration order —
// exactly the nondeterministic merge the harness exists to prevent.
func MergeByMap(results map[int]float64) []float64 {
	var out []float64
	for _, v := range results {
		out = append(out, v) // want `append to out inside range over a map`
	}
	return out
}

// MergeSortedKeys walks trial indexes in sorted order: the sanctioned merge
// when results arrive keyed rather than indexed.
func MergeSortedKeys(results map[int]float64) []float64 {
	keys := make([]int, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]float64, 0, len(keys))
	for _, k := range keys {
		out = append(out, results[k])
	}
	return out
}

// MergeByIndex is the harness's own merge: results land in a slice at their
// trial index, no map involved, nothing to flag.
func MergeByIndex(trials int, result func(int) float64) []float64 {
	out := make([]float64, trials)
	for i := range out {
		out[i] = result(i)
	}
	return out
}

// MeanOverMap accumulates floating point in map order; the sum's low bits
// depend on the schedule.
func MeanOverMap(results map[int]float64) float64 {
	var sum float64
	for _, v := range results {
		sum += v // want `floating-point accumulation into sum`
	}
	return sum / float64(len(results))
}

// CountComplete is an order-insensitive integer reduction, legal.
func CountComplete(done map[int]bool) int {
	n := 0
	for _, ok := range done {
		if ok {
			n++
		}
	}
	return n
}
