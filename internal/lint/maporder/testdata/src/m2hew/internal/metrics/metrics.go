// Package metrics is a fixture exercising maporder inside a fenced
// package: order-sensitive effects are flagged, the canonical deterministic
// idioms are not.
package metrics

import "sort"

// Labels gathers map keys in iteration order without sorting them.
func Labels(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over a map`
	}
	return out
}

// SortedLabels collects then sorts: the canonical deterministic idiom.
func SortedLabels(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SortedBySlice collects then sorts with sort.Slice, also legal.
func SortedBySlice(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MeanValue accumulates floating point in map order; summation order
// changes the low bits, so the result is not reproducible.
func MeanValue(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum`
	}
	return sum / float64(len(m))
}

// Count is an integer reduction: order-insensitive, legal.
func Count(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Max is an order-insensitive reduction, legal.
func Max(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// LocalAppend appends to a slice that lives and dies inside one iteration;
// order cannot escape, legal.
func LocalAppend(m map[string][]int, f func([]int)) {
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		f(doubled)
	}
}

// DualBackingLatencies mirrors the coverage collector's dense/map dual
// backing: the map-range append sits in one branch of an if/else and the
// sort lives in the shared continuation after the branch. The sort
// post-dominates the loop, so the append is legal.
func DualBackingLatencies(dense []float64, m map[string]float64) []float64 {
	var out []float64
	if m == nil {
		out = append(out, dense...)
	} else {
		for _, v := range m {
			out = append(out, v)
		}
	}
	sort.Float64s(out)
	return out
}

// EscapeBeforeSort returns the slice from inside the branch before the
// outer sort can run: on that path map order is published, so the append
// is still flagged even though a sort follows the if.
func EscapeBeforeSort(m map[string]float64, raw bool) []float64 {
	var out []float64
	if m != nil {
		for _, v := range m {
			out = append(out, v) // want `append to out inside range over a map`
		}
		if raw {
			return out
		}
	}
	sort.Float64s(out)
	return out
}
