// Package sim is a fixture for a package outside maporder's fence: the
// same order-dependent code draws no findings here (the engine has its own
// determinism story; the fence covers the result-emitting pipeline).
package sim

// Keys gathers map keys unsorted, legal outside the fence.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
