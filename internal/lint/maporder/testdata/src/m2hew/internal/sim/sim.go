// Package sim is a fixture for the engine tree, which is inside maporder's
// fence: delivery order is the experiment pipeline's input, so an effect
// that leaks map iteration order out of an engine corrupts byte-identity at
// the source. Order-sensitive effects are flagged; the collect-then-sort
// idiom the real resolver uses for its delivery batches stays legal.
package sim

import "sort"

// delivery mirrors the engine's resolved-reception record.
type delivery struct {
	at       float64
	from, to int
}

// FlushPending drains a per-frame pending map in iteration order — the bug
// the fence exists to catch: the delivery batch would differ run to run.
func FlushPending(pending map[int]delivery) []delivery {
	var out []delivery
	for _, d := range pending {
		out = append(out, d) // want `append to out inside range over a map`
	}
	return out
}

// FlushSorted collects then sorts by delivery time: the engine's legal
// idiom for turning unordered state into a deterministic batch.
func FlushSorted(pending map[int]delivery) []delivery {
	out := make([]delivery, 0, len(pending))
	for _, d := range pending {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out
}

// scratch mirrors the engine's trial-scoped reuse buffers: a delivery
// slice retained across runs and resliced to zero length at acquisition.
type scratch struct {
	deliveries []delivery
}

// FlushIntoScratch drains into the reused buffer in map order. Reuse does
// not launder the order leak — the batch still varies run to run.
func (sc *scratch) FlushIntoScratch(pending map[int]delivery) []delivery {
	out := sc.deliveries[:0]
	for _, d := range pending {
		out = append(out, d) // want `append to out inside range over a map`
	}
	sc.deliveries = out[:0]
	return out
}

// FlushScratchSorted is the engine's actual idiom: collect into the reused
// buffer, sort by a total key, store the capacity back. Legal.
func (sc *scratch) FlushScratchSorted(pending map[int]delivery) []delivery {
	out := sc.deliveries[:0]
	for _, d := range pending {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].at < out[j].at })
	sc.deliveries = out[:0]
	return out
}

// FlushFieldAppend appends straight to the scratch field in map order; no
// later sort can be proven against a field, so it is flagged outright.
func (sc *scratch) FlushFieldAppend(pending map[int]delivery) {
	for _, d := range pending {
		sc.deliveries = append(sc.deliveries, d) // want `append inside range over a map`
	}
}

// CountReceivers is an order-insensitive reduction; legal.
func CountReceivers(pending map[int]delivery) int {
	n := 0
	for range pending {
		n++
	}
	return n
}

// MeanArrival accumulates floating point in map order; the low bits depend
// on iteration order, so seed-identical runs could diverge.
func MeanArrival(pending map[int]delivery) float64 {
	var sum float64
	for _, d := range pending {
		sum += d.at // want `floating-point accumulation into sum inside range over a map`
	}
	if len(pending) == 0 {
		return 0
	}
	return sum / float64(len(pending))
}

// FlushByBacking mirrors the batch resolver's per-path buckets: the slow
// path drains a pending map inside one branch, the fast path copies a
// deterministic batch, and the shared continuation sorts before the batch
// is published. Legal — the sort post-dominates the map range.
func (sc *scratch) FlushByBacking(pending map[int]delivery, fast []delivery) []delivery {
	out := sc.deliveries[:0]
	if pending != nil {
		for _, d := range pending {
			out = append(out, d)
		}
	} else {
		out = append(out, fast...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].at < out[j].at })
	sc.deliveries = out[:0]
	return out
}

// tileScratch mirrors the tiled resolver's per-tile delivery queues: one
// slice per tile, applied sequentially after the parallel phase.
type tileScratch struct {
	queues [][]delivery
}

// ApplyTilesAscending drains the per-tile queues in ascending tile order —
// the tiled engine's sequential apply phase. Slice iteration is
// deterministic; legal without a sort.
func (ts *tileScratch) ApplyTilesAscending(out []delivery) []delivery {
	for _, q := range ts.queues {
		out = append(out, q...)
	}
	return out
}

// ApplyTileMap keys the tile queues by tile index in a map and drains in
// iteration order: the cross-tile apply order — and with it the delivery
// batch — would vary run to run. Flagged.
func ApplyTileMap(queues map[int][]delivery) []delivery {
	var out []delivery
	for _, q := range queues {
		out = append(out, q...) // want `append to out inside range over a map`
	}
	return out
}

// FlushBreakBeforeSort drains pending maps per channel but breaks out of
// the bucket loop before the sort on a budget hit: the break could publish
// the batch unsorted downstream, so the append stays flagged.
func (sc *scratch) FlushBreakBeforeSort(buckets []map[int]delivery, budget int) []delivery {
	out := sc.deliveries[:0]
	for _, pending := range buckets {
		for _, d := range pending {
			out = append(out, d) // want `append to out inside range over a map`
		}
		if len(out) > budget {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out
}
