// Package telemetry is a fixture exercising maporder inside the telemetry
// fence: metric snapshots and exporters must render in deterministic order,
// so map-ordered emission and label collection are flagged while the
// sorted-snapshot idiom stays legal.
package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// metric is a stand-in for a registered series.
type metric struct {
	key   string
	value float64
}

// Export writes metrics straight out of the registry map: scrape output
// would differ between runs.
func Export(w io.Writer, byKey map[string]metric) {
	for _, m := range byKey {
		fmt.Fprintf(w, "%s %g\n", m.key, m.value) // want `fmt.Fprintf inside range over a map`
	}
}

// Snapshot collects the registry in map order without sorting.
func Snapshot(byKey map[string]metric) []metric {
	var out []metric
	for _, m := range byKey {
		out = append(out, m) // want `append to out inside range over a map`
	}
	return out
}

// SortedSnapshot collects then sorts: the registry's real snapshot idiom.
func SortedSnapshot(byKey map[string]metric) []metric {
	out := make([]metric, 0, len(byKey))
	for _, m := range byKey {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// SumShare accumulates gauge values in map order; float addition is not
// associative, so the derived share drifts between runs.
func SumShare(byKey map[string]metric) float64 {
	var total float64
	for _, m := range byKey {
		total += m.value // want `floating-point accumulation into total`
	}
	return total
}

// CountSeries is an order-insensitive integer reduction, legal.
func CountSeries(byKey map[string]metric) int {
	n := 0
	for range byKey {
		n++
	}
	return n
}
