// Package norand forbids math/rand outside the seeded rng package.
//
// Reproducibility of the experiment tables requires every random decision
// to flow from one 64-bit seed through internal/rng's splittable xoshiro
// streams. math/rand (and math/rand/v2) breaks that in two ways: its
// global functions draw from process-wide state no seed controls, and its
// stream layout is not guaranteed across Go releases, so even a locally
// seeded rand.New would tie results to a toolchain version.
package norand

import (
	"strconv"

	"m2hew/internal/lint"
)

// Analyzer rejects math/rand and math/rand/v2 imports in every package
// except internal/rng itself (which documents why it replaces them).
var Analyzer = &lint.Analyzer{
	Name: "norand",
	Doc:  "forbid math/rand imports; all randomness must come from the seeded internal/rng source",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Path() == lint.RNGPath {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s is forbidden: draw randomness from the seeded %s instead", p, lint.RNGPath)
			}
		}
	}
	return nil
}
