package norand_test

import (
	"testing"

	"m2hew/internal/lint/linttest"
	"m2hew/internal/lint/norand"
)

func TestNoRand(t *testing.T) {
	linttest.Run(t, "testdata", norand.Analyzer,
		"a",                  // violations
		"m2hew/internal/rng", // the one package allowed to use math/rand
	)
}
