// Package a seeds norand violations: both math/rand generations are
// forbidden outside the rng package.
package a

import (
	"math/rand"       // want `import of math/rand is forbidden`
	v2 "math/rand/v2" // want `import of math/rand/v2 is forbidden`
)

// Draw uses the forbidden global generators.
func Draw() int {
	return rand.Int() + v2.Int()
}
