// Package rng is a fixture standing in for the real seeded source; it is
// the only package allowed to import math/rand, so no findings here.
package rng

import "math/rand"

// Source is a stub of the repository's deterministic generator.
type Source struct{ inner *rand.Rand }

// Uint64 returns the next output.
func (s *Source) Uint64() uint64 { return s.inner.Uint64() }
