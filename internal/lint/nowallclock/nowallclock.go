// Package nowallclock forbids wall-clock reads in simulation packages.
//
// The simulation engines advance a virtual timeline (internal/clock for
// the asynchronous engine, integer slots for the synchronous one); the
// experiments' results must be functions of the seed alone. A time.Now or
// time.Sleep inside that code couples results to the host machine — runs
// stop being reproducible, and the paper's bound audits become noise.
// Wall-clock use remains legal outside the simulation core (cmd/ tools may
// time themselves, tests may set deadlines).
package nowallclock

import (
	"go/ast"

	"m2hew/internal/lint"
)

// simPackages are the packages where the deterministic timeline is the only
// legal notion of time.
var simPackages = []string{
	"m2hew/internal/sim",
	"m2hew/internal/core",
	"m2hew/internal/clock",
	"m2hew/internal/baseline",
}

// forbidden lists the time-package functions that read or wait on the wall
// clock. Pure data types (time.Duration arithmetic, time.Time values passed
// in) stay legal.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Analyzer rejects wall-clock calls inside the simulation packages.
var Analyzer = &lint.Analyzer{
	Name: "nowallclock",
	Doc:  "forbid time.Now/Sleep/... in simulation packages; only the deterministic internal/clock timeline is legal there",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if !lint.InPackages(pass.Pkg.Path(), simPackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if forbidden[obj.Name()] {
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock; simulation code must be a deterministic function of the seed (use the internal/clock timeline)", obj.Name())
			}
			return true
		})
	}
	return nil
}
