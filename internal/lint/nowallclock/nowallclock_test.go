package nowallclock_test

import (
	"testing"

	"m2hew/internal/lint/linttest"
	"m2hew/internal/lint/nowallclock"
)

func TestNoWallClock(t *testing.T) {
	linttest.Run(t, "testdata", nowallclock.Analyzer,
		"m2hew/internal/sim", // violations inside a simulation package
		"m2hew/cmd/outside",  // same calls outside the fence are legal
	)
}
