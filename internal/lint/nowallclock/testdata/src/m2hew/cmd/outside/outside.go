// Package outside is a fixture for a package that is NOT fenced: command
// line tools may time themselves with the real clock.
package outside

import "time"

// Elapsed measures real wall time, which is fine here.
func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
