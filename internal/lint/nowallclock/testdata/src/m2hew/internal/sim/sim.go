// Package sim is a fixture standing in for the synchronous engine; every
// wall-clock read here must be flagged.
package sim

import "time"

// Step pretends to advance one slot.
func Step() time.Duration {
	start := time.Now()            // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond)   // want `time.Sleep reads the wall clock`
	<-time.After(time.Millisecond) // want `time.After reads the wall clock`
	return time.Since(start)       // want `time.Since reads the wall clock`
}

// SlotLen uses time only as a data type, which is legal.
func SlotLen(slots int) time.Duration {
	return time.Duration(slots) * time.Millisecond
}
