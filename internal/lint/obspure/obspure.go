// Package obspure enforces purity across the engine observability seam.
//
// The engines hand observers an Event whose Actions slice — and protocols a
// Message whose Heard slice — is a borrowed engine buffer: valid only for
// the duration of the callback, recycled immediately after. PR 3 shipped
// (and fixed) exactly this bug class: an observer retained e.Actions, the
// engine reused the backing array next slot, and traces silently described
// slots that never happened. The dynamic defenses (differential trace
// tests) only catch retention that changes an output the tests compare;
// this analyzer rejects the shapes at compile time.
//
// Scope: methods named OnEvent taking one sim.Event, func literals taking
// one sim.Event (the ObserverFunc idiom), and methods named Deliver taking
// one radio.Message. Inside those callbacks the analyzer reports:
//
//   - writes through a borrowed slice (e.Actions[i] = ..., and append with
//     a borrowed slice as destination), which corrupt engine state;
//   - retention of a borrowed slice header past the callback — storing it
//     in a field, element or outer variable, sending it on a channel, or
//     returning it. Spread-copying (append(dst, e.Actions...)) and passing
//     it to a function are fine: copies are the documented boundary
//     discipline (see sim.copyHeard);
//   - re-entering the engines (sim.RunSync / RunAsync / RunAsyncOnline)
//     from inside a callback, which would recursively recycle the very
//     buffers the outer callback is holding.
package obspure

import (
	"go/ast"
	"go/types"

	"m2hew/internal/lint"
)

// Analyzer reports payload mutation, slice retention, and engine re-entry
// inside observer and protocol delivery callbacks.
var Analyzer = &lint.Analyzer{
	Name: "obspure",
	Doc:  "observer/deliver callbacks must not mutate or retain borrowed event slices, or re-enter the engines",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil || n.Recv == nil {
					return true
				}
				if param := callbackParam(pass, n.Name.Name, n.Type); param != nil {
					checkCallback(pass, n.Body, param)
				}
			case *ast.FuncLit:
				if param := callbackParam(pass, "", n.Type); param != nil {
					checkCallback(pass, n.Body, param)
				}
			}
			return true
		})
	}
	return nil
}

// callbackParam returns the borrowed-payload parameter object when the
// function is an observer or delivery callback: name "OnEvent" (or any
// func literal) with one sim.Event parameter, or name "Deliver" with one
// radio.Message parameter.
func callbackParam(pass *lint.Pass, name string, ft *ast.FuncType) types.Object {
	if ft.Params == nil || len(ft.Params.List) != 1 {
		return nil
	}
	field := ft.Params.List[0]
	if len(field.Names) != 1 || field.Names[0].Name == "_" {
		return nil
	}
	tv, ok := pass.Info.Types[field.Type]
	if !ok || tv.Type == nil {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	pkgPath, typeName := named.Obj().Pkg().Path(), named.Obj().Name()
	isEvent := pkgPath == lint.SimPath && typeName == "Event"
	isMessage := pkgPath == lint.RadioPath && typeName == "Message"
	switch {
	case name == "OnEvent" && isEvent:
	case name == "" && isEvent: // ObserverFunc literal
	case name == "Deliver" && isMessage:
	default:
		return nil
	}
	return pass.Info.Defs[field.Names[0]]
}

// checkCallback walks one callback body tracking ancestry, and reports each
// impure use of a borrowed slice plus any engine re-entry.
func checkCallback(pass *lint.Pass, body *ast.BlockStmt, param types.Object) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if borrowedSlice(pass, n, param) {
				checkUse(pass, n, stack, body)
			}
		case *ast.CallExpr:
			checkReentry(pass, n)
		}
		return true
	})
}

// borrowedSlice reports whether sel reads a slice-typed field directly off
// the callback parameter (e.Actions, msg.Heard, ...).
func borrowedSlice(pass *lint.Pass, sel *ast.SelectorExpr, param types.Object) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.Info.Uses[id] != param {
		return false
	}
	tv, ok := pass.Info.Types[sel]
	if !ok || tv.Type == nil {
		return false
	}
	_, isSlice := tv.Type.Underlying().(*types.Slice)
	return isSlice
}

// checkUse classifies one occurrence of a borrowed slice by its syntactic
// context (nearest enclosing node) and reports mutation or retention.
func checkUse(pass *lint.Pass, sel *ast.SelectorExpr, stack []ast.Node, body *ast.BlockStmt) {
	// stack[len(stack)-1] is sel itself; walk outward past parens.
	i := len(stack) - 2
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return
	}
	name := sel.Sel.Name
	switch parent := stack[i].(type) {
	case *ast.IndexExpr:
		// e.Actions[i] — a write makes it mutation; a read is fine. The
		// write may target the element itself or reach it through a
		// selector/index chain (e.Actions[i].Channel = 9, ...++), so walk
		// outward until the path leaves an assignable position.
		if parent.X != sel {
			return // sel is the index operand: a read
		}
		expr := ast.Expr(parent)
		for j := i - 1; j >= 0; j-- {
			switch outer := stack[j].(type) {
			case *ast.ParenExpr:
				expr = outer
			case *ast.SelectorExpr:
				expr = outer
			case *ast.IndexExpr:
				if outer.X != expr {
					return // element used as an index expression: a read
				}
				expr = outer
			case *ast.AssignStmt:
				// Plain and compound (+=, ...) assignments both write.
				if isLHS(outer, expr) {
					pass.Reportf(parent.Pos(), "write through borrowed slice %s mutates engine state: the payload is read-only", name)
				}
				return
			case *ast.IncDecStmt:
				if outer.X == expr {
					pass.Reportf(parent.Pos(), "write through borrowed slice %s mutates engine state: the payload is read-only", name)
				}
				return
			default:
				return
			}
		}
	case *ast.CallExpr:
		fn, _ := parent.Fun.(*ast.Ident)
		switch {
		case fn != nil && fn.Name == "append" && len(parent.Args) > 0 && parent.Args[0] == sel:
			pass.Reportf(parent.Pos(), "append with borrowed slice %s as destination writes into the engine's backing array", name)
		case fn != nil && (fn.Name == "len" || fn.Name == "cap" || fn.Name == "copy" || fn.Name == "append" && parent.Ellipsis.IsValid() && parent.Args[len(parent.Args)-1] == sel):
			// len/cap, copy-from, and spread-append element copies: fine.
		case fn != nil && fn.Name == "append":
			// append(x, e.Actions) without ... stores the slice header.
			pass.Reportf(sel.Pos(), "appending borrowed slice %s retains it past the callback: spread-copy its elements instead", name)
		default:
			// Passing the slice to a function: the callee sees the same
			// borrow contract; allowed.
		}
	case *ast.AssignStmt:
		if isLHS(parent, sel) {
			return // e.Actions = ... rebinds a local copy's field: harmless
		}
		for _, lhs := range parent.Lhs {
			if retainingTarget(pass, lhs, body) {
				pass.Reportf(sel.Pos(), "storing borrowed slice %s outlives the callback: boundary-copy it first", name)
				return
			}
		}
	case *ast.CompositeLit:
		pass.Reportf(sel.Pos(), "borrowed slice %s placed in a composite literal retains it past the callback: boundary-copy it first", name)
	case *ast.KeyValueExpr:
		if parent.Value == sel {
			pass.Reportf(sel.Pos(), "borrowed slice %s placed in a composite literal retains it past the callback: boundary-copy it first", name)
		}
	case *ast.SendStmt:
		if parent.Value == sel {
			pass.Reportf(sel.Pos(), "sending borrowed slice %s on a channel retains it past the callback: boundary-copy it first", name)
		}
	case *ast.ReturnStmt:
		pass.Reportf(sel.Pos(), "returning borrowed slice %s leaks it past the callback: boundary-copy it first", name)
	}
}

// isLHS reports whether e appears on the left-hand side of as.
func isLHS(as *ast.AssignStmt, e ast.Expr) bool {
	for _, lhs := range as.Lhs {
		if lhs == e {
			return true
		}
	}
	return false
}

// retainingTarget reports whether assigning to lhs stores a value where it
// survives the callback: a field or element of anything, or a variable
// declared outside the callback body (a captured or package-level variable).
func retainingTarget(pass *lint.Pass, lhs ast.Expr, body *ast.BlockStmt) bool {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		if lhs.Name == "_" {
			return false
		}
		obj := pass.Info.Uses[lhs]
		if obj == nil {
			obj = pass.Info.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		// Declared outside the callback body → survives the callback.
		return obj.Pos() < body.Pos() || obj.Pos() >= body.End()
	}
	return false
}

// checkReentry reports calls to the engine entry points from inside a
// callback.
func checkReentry(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != lint.SimPath {
		return
	}
	switch fn.Name() {
	case "RunSync", "RunAsync", "RunAsyncOnline":
		pass.Reportf(call.Pos(), "%s re-enters the engine from inside a callback: the engine recycles the buffers this callback is borrowing", fn.Name())
	}
}
