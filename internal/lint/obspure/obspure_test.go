package obspure_test

import (
	"testing"

	"m2hew/internal/lint/linttest"
	"m2hew/internal/lint/obspure"
)

func TestObsPure(t *testing.T) {
	linttest.Run(t, "testdata", obspure.Analyzer,
		"a",                    // violations, boundary copies, suppression
		"m2hew/internal/sim",   // the stub seam itself is clean
		"m2hew/internal/radio", // likewise
	)
}
