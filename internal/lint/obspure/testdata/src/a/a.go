// Package a exercises the obspure analyzer: mutation, retention and
// engine re-entry inside observer and Deliver callbacks, plus the clean
// boundary-copy shapes and suppressions.
package a

import (
	"m2hew/internal/radio"
	"m2hew/internal/sim"
)

// badObserver demonstrates every impure shape.
type badObserver struct {
	last    []radio.Action
	history [][]radio.Action
	ch      chan []radio.Action
}

func (o *badObserver) OnEvent(e sim.Event) {
	e.Actions[0] = radio.Action{}                  // want "write through borrowed slice Actions mutates engine state"
	e.Actions[0].Channel = 9                       // want "write through borrowed slice Actions mutates engine state"
	e.Actions[0].Channel++                         // want "write through borrowed slice Actions mutates engine state"
	e.Actions[1].Mode += 1                         // want "write through borrowed slice Actions mutates engine state"
	_ = append(e.Actions, radio.Action{})          // want "append with borrowed slice Actions as destination"
	o.last = e.Actions                             // want "storing borrowed slice Actions outlives the callback"
	o.history = append(o.history, e.Actions)       // want "appending borrowed slice Actions retains it past the callback"
	o.ch <- e.Actions                              // want "sending borrowed slice Actions on a channel retains it"
	snap := struct{ as []radio.Action }{e.Actions} // want "borrowed slice Actions placed in a composite literal"
	_ = snap
}

// leakReturn returns the borrowed slice from an ObserverFunc-style literal
// capture helper.
type leakObserver struct{ out func() []radio.Action }

func (o *leakObserver) OnEvent(e sim.Event) {
	o.out = nil
	_ = func(e sim.Event) []radio.Action {
		return e.Actions // want "returning borrowed slice Actions leaks it past the callback"
	}
}

// captures writes into a variable declared outside the callback literal.
func captures() sim.Observer {
	var kept []radio.Action
	obs := observerFunc(func(e sim.Event) {
		kept = e.Actions // want "storing borrowed slice Actions outlives the callback"
	})
	_ = kept
	return obs
}

// observerFunc adapts a func to sim.Observer, like the real sim package.
type observerFunc func(sim.Event)

func (f observerFunc) OnEvent(e sim.Event) { f(e) }

// reenter calls the engines from inside a callback.
type reenterObserver struct{}

func (reenterObserver) OnEvent(e sim.Event) {
	_, _ = sim.RunSync(sim.SyncConfig{})        // want "RunSync re-enters the engine from inside a callback"
	_, _ = sim.RunAsync(sim.SyncConfig{})       // want "RunAsync re-enters the engine from inside a callback"
	_, _ = sim.RunAsyncOnline(sim.SyncConfig{}) // want "RunAsyncOnline re-enters the engine from inside a callback"
}

// badProtocol retains msg.Heard from Deliver.
type badProtocol struct{ heard []int }

func (p *badProtocol) Deliver(msg radio.Message) {
	p.heard = msg.Heard // want "storing borrowed slice Heard outlives the callback"
}

// goodObserver uses only the allowed shapes: reading, ranging, len/cap,
// spread-copies, boundary copies, and passing the slice onward.
type goodObserver struct {
	seen []radio.Action
	n    int
}

func (o *goodObserver) OnEvent(e sim.Event) {
	o.n += len(e.Actions)
	for _, a := range e.Actions {
		if a.Mode == 1 {
			o.n++
		}
	}
	if cap(e.Actions) > 0 {
		_ = e.Actions[0]         // reading an element is fine
		o.n += e.Actions[0].Mode // reading an element's field is fine
	}
	o.seen = append(o.seen[:0], e.Actions...) // spread copy: fine
	dst := make([]radio.Action, len(e.Actions))
	copy(dst, e.Actions) // copy-from: fine
	consume(e.Actions)   // passing onward: the callee inherits the contract
}

func consume(as []radio.Action) { _ = len(as) }

// suppressedObserver documents a verified-safe retention.
type suppressedObserver struct{ last []radio.Action }

func (o *suppressedObserver) OnEvent(e sim.Event) {
	//ndlint:ignore obspure single-threaded replay consumes last before the next slot
	o.last = e.Actions
}

// goodProtocol boundary-copies Heard, like core's copyHeard discipline.
type goodProtocol struct{ heard []int }

func (p *goodProtocol) Deliver(msg radio.Message) {
	p.heard = append(p.heard[:0], msg.Heard...)
}

// notACallback has the wrong name: obspure leaves it alone.
type notACallback struct{ last []radio.Action }

func (o *notACallback) Snapshot(e sim.Event) {
	o.last = e.Actions // not OnEvent/Deliver: out of scope
}
