// Package radio is a stub of the real m2hew/internal/radio for obspure
// fixtures: the analyzer matches Message by package path and name.
package radio

// Action is one node's radio decision for a slot.
type Action struct {
	Mode    int
	Channel int
}

// Message is a received transmission; Heard is a borrowed sender buffer.
type Message struct {
	From  int
	Heard []int
}
