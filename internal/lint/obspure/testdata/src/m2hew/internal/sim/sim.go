// Package sim is a stub of the real m2hew/internal/sim for obspure
// fixtures: the analyzer matches Event and the Run entry points by package
// path and name.
package sim

import "m2hew/internal/radio"

// Event is the engine observability payload; Actions is a borrowed engine
// buffer.
type Event struct {
	Kind    int
	Slot    int
	Actions []radio.Action
}

// Observer receives engine events.
type Observer interface {
	OnEvent(Event)
}

// SyncConfig configures a stub run.
type SyncConfig struct {
	Observer Observer
}

// SyncResult reports a stub run.
type SyncResult struct{ Complete bool }

// RunSync is the synchronous engine entry point.
func RunSync(cfg SyncConfig) (*SyncResult, error) { return &SyncResult{}, nil }

// RunAsync is the asynchronous engine entry point.
func RunAsync(cfg SyncConfig) (*SyncResult, error) { return &SyncResult{}, nil }

// RunAsyncOnline is the online asynchronous engine entry point.
func RunAsyncOnline(cfg SyncConfig) (*SyncResult, error) { return &SyncResult{}, nil }
