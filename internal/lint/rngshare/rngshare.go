// Package rngshare flags a *rng.Source handed to a new goroutine.
//
// rng.Source is documented as not safe for concurrent use: its xoshiro
// state mutates on every draw, so two goroutines sharing one source race —
// and even when the race happens to be benign under the memory model, the
// interleaving makes the draw sequence scheduling-dependent, which destroys
// run-to-run reproducibility silently. The sanctioned pattern is to fork a
// child stream per goroutine with Split (or SplitN) *before* the goroutine
// starts, the way internal/experiment's worker pools pre-split one source
// per trial.
//
// The analyzer inspects every go statement and reports any identifier of
// type rng.Source or *rng.Source that refers to a variable declared outside
// the statement — a closure capture, a plain argument, or a source stored
// into a composite literal that rides into the goroutine. Receivers of an
// inline Split call (go worker(src.Split())) are allowed: arguments are
// evaluated in the spawning goroutine, so the fork is sequenced before the
// new goroutine runs.
package rngshare

import (
	"go/ast"
	"go/types"

	"m2hew/internal/lint"
)

// Analyzer reports rng.Source values shared with a new goroutine.
var Analyzer = &lint.Analyzer{
	Name: "rngshare",
	Doc:  "flag a *rng.Source captured by or passed into a go statement; fork a child stream with Split instead",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g)
			return true
		})
	}
	return nil
}

// checkGoStmt scans one go statement's whole subtree (callee, arguments and
// closure body) for shared sources.
func checkGoStmt(pass *lint.Pass, g *ast.GoStmt) {
	// Two kinds of identifier are exempt from the walk below: receivers of
	// an inline Split call (forked before the goroutine starts), and the
	// key side of composite-literal elements (a field *name*, not a value;
	// the value expression is still checked).
	skip := make(map[*ast.Ident]bool)
	ast.Inspect(g, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Split" && sel.Sel.Name != "SplitN") {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok {
				skip[id] = true
			}
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				skip[id] = true
			}
		}
		return true
	})

	ast.Inspect(g, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || skip[id] {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || !lint.IsRNGSource(obj.Type()) {
			return true
		}
		// Variables declared inside the go statement (closure parameters
		// and locals, e.g. a child := parent.Split() materialized by the
		// caller as an argument) are owned by the new goroutine.
		if g.Pos() <= obj.Pos() && obj.Pos() < g.End() {
			return true
		}
		pass.Reportf(id.Pos(), "rng source %s is shared with a new goroutine; rng.Source is not concurrency-safe — fork a child stream with Split before the go statement", id.Name)
		return true
	})
}
