package rngshare_test

import (
	"testing"

	"m2hew/internal/lint/linttest"
	"m2hew/internal/lint/rngshare"
)

func TestRNGShare(t *testing.T) {
	linttest.Run(t, "testdata", rngshare.Analyzer, "a")
}
