// Package a seeds rngshare violations: sources captured by or passed into
// goroutines, next to the sanctioned pre-split patterns.
package a

import (
	"sync"

	"m2hew/internal/rng"
)

// job carries a source into a worker.
type job struct {
	src *rng.Source
}

func consume(*rng.Source) {}

func work(job) {}

// CaptureShared leaks the parent source into a goroutine closure.
func CaptureShared(src *rng.Source) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = src.Uint64() // want `rng source src is shared with a new goroutine`
	}()
	wg.Wait()
}

// PassShared hands the same pointer to the goroutine as an argument.
func PassShared(src *rng.Source) {
	go consume(src) // want `rng source src is shared with a new goroutine`
}

// StructShared smuggles the source through a struct literal.
func StructShared(src *rng.Source) {
	go work(job{src: src}) // want `rng source src is shared with a new goroutine`
}

// SplitArgument forks inline; the fork runs in the spawning goroutine, so
// this is the sanctioned handoff.
func SplitArgument(src *rng.Source) {
	go consume(src.Split())
}

// PreSplit forks one child per goroutine before any of them starts.
func PreSplit(src *rng.Source, workers int) {
	childs := src.SplitN(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(mine *rng.Source) {
			defer wg.Done()
			_ = mine.Uint64()
		}(childs[w])
	}
	wg.Wait()
}

// scratch mirrors a worker's reusable buffer bundle; a source riding
// inside it crosses the goroutine boundary like any other field.
type scratch struct {
	buf []float64
	src *rng.Source
}

func spin(*scratch) {}

// ScratchShared smuggles the parent source into the worker through its
// scratch — reuse plumbing does not make sharing safe.
func ScratchShared(src *rng.Source) {
	go spin(&scratch{src: src}) // want `rng source src is shared with a new goroutine`
}

// ScratchPreSplit is the harness's per-worker scratch seam: each worker
// gets a private scratch (no source inside — reading a source-typed field
// in the goroutine would be flagged) plus its own pre-goroutine fork.
func ScratchPreSplit(src *rng.Source, workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(sc *scratch, mine *rng.Source) {
			defer wg.Done()
			_ = mine.Uint64()
			sc.buf = sc.buf[:0]
		}(&scratch{}, src.Split())
	}
	wg.Wait()
}

// LocalSource builds a goroutine-private source inside the closure.
func LocalSource() {
	go func() {
		mine := rng.New(7)
		_ = mine.Uint64()
	}()
}
