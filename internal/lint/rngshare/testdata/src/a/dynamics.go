// Waypoint-draw patterns from the dynamics world builder: mobility
// schedules draw one waypoint sequence per node, which is tempting to
// parallelize — and the schedule source is single-goroutine state, so the
// parallel version must fork per-node streams before any worker starts.
package a

import (
	"sync"

	"m2hew/internal/rng"
)

// waypoint mirrors a mobility schedule entry.
type waypoint struct {
	x, y float64
}

// drawPath draws one node's waypoint sequence from its stream.
func drawPath(src *rng.Source, n int) []waypoint {
	path := make([]waypoint, n)
	for i := range path {
		path[i] = waypoint{x: float64(src.Uint64() % 100), y: float64(src.Uint64() % 100)}
	}
	return path
}

// ParallelWaypoints fans the schedule draw out per node while every worker
// pulls from the same source — the data race the analyzer exists to catch,
// and a determinism bug even if it never trips the race detector.
func ParallelWaypoints(src *rng.Source, nodes, hops int) [][]waypoint {
	paths := make([][]waypoint, nodes)
	var wg sync.WaitGroup
	for u := 0; u < nodes; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			paths[u] = drawPath(src, hops) // want `rng source src is shared with a new goroutine`
		}(u)
	}
	wg.Wait()
	return paths
}

// PreSplitWaypoints forks one child stream per node before any worker
// starts — the sanctioned shape: per-node streams make the draw order
// independent of goroutine scheduling.
func PreSplitWaypoints(src *rng.Source, nodes, hops int) [][]waypoint {
	streams := src.SplitN(nodes)
	paths := make([][]waypoint, nodes)
	var wg sync.WaitGroup
	for u := 0; u < nodes; u++ {
		wg.Add(1)
		go func(u int, mine *rng.Source) {
			defer wg.Done()
			paths[u] = drawPath(mine, hops)
		}(u, streams[u])
	}
	wg.Wait()
	return paths
}

// SequentialWaypoints draws every schedule in the constructing goroutine —
// the real world builder's actual shape (all draws at construction, in a
// fixed order). No goroutine, no finding.
func SequentialWaypoints(src *rng.Source, nodes, hops int) [][]waypoint {
	paths := make([][]waypoint, nodes)
	for u := 0; u < nodes; u++ {
		paths[u] = drawPath(src, hops)
	}
	return paths
}
