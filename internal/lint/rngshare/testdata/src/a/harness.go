// Harness-shaped fixtures: the split-then-fork trial pipeline the real
// internal/harness implements, next to the shortcut it forbids.
package a

import (
	"sync"

	"m2hew/internal/rng"
)

// TrialsShared hands the shared root to every worker — the bug the harness
// setup/run split exists to prevent.
func TrialsShared(root *rng.Source, trials int) {
	var wg sync.WaitGroup
	for t := 0; t < trials; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = root.Uint64() // want `rng source root is shared with a new goroutine`
		}()
	}
	wg.Wait()
}

// TrialsPreSplit is the harness pattern: all root draws happen sequentially
// in trial order before any worker starts; workers only ever touch their
// own pre-split child.
func TrialsPreSplit(root *rng.Source, trials int) {
	childs := make([]*rng.Source, trials)
	for t := range childs {
		childs[t] = root.Split()
	}
	var wg sync.WaitGroup
	for t := 0; t < trials; t++ {
		wg.Add(1)
		go func(mine *rng.Source) {
			defer wg.Done()
			_ = mine.Uint64()
		}(childs[t])
	}
	wg.Wait()
}
