// Loss-model-shaped fixtures: the engines thread one erasure RNG through a
// run's reception resolver, drawing mid-resolution. Fanning trials out in
// parallel must fork one stream per trial before any goroutine starts —
// sharing the stream makes the draw order scheduling-dependent, which
// silently changes which transmissions fade.
package a

import (
	"sync"

	"m2hew/internal/rng"
)

// lossModel mirrors the engine's erasure model: a probability plus the
// stream the resolver consumes draw by draw.
type lossModel struct {
	prob float64
	rng  *rng.Source
}

// resolveTrial stands in for one engine run consuming erasure draws.
func resolveTrial(l lossModel) {
	_ = l.rng.Uint64()
}

// LossTrialsShared rides one erasure stream into every parallel trial
// through a composite literal — the resolvers' draws interleave.
func LossTrialsShared(erasures *rng.Source, trials int) {
	var wg sync.WaitGroup
	for t := 0; t < trials; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resolveTrial(lossModel{prob: 0.2, rng: erasures}) // want `rng source erasures is shared with a new goroutine`
		}()
	}
	wg.Wait()
}

// LossTrialsPreSplit forks one erasure stream per trial in the spawning
// goroutine; each resolver owns its draw sequence regardless of scheduling.
func LossTrialsPreSplit(erasures *rng.Source, trials int) {
	var wg sync.WaitGroup
	for t := 0; t < trials; t++ {
		wg.Add(1)
		go func(l lossModel) {
			defer wg.Done()
			resolveTrial(l)
		}(lossModel{prob: 0.2, rng: erasures.Split()})
	}
	wg.Wait()
}
