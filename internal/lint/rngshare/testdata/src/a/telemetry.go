// Telemetry-shaped fixtures: background exporters and samplers must not
// borrow the trial pipeline's source, or the scrape goroutine's draws race
// the trials and shift every seeded sequence after it.
package a

import (
	"sync"

	"m2hew/internal/rng"
)

// sampler downsamples a metric stream; it draws from its source on every
// observation.
type sampler struct {
	src  *rng.Source
	keep float64
}

func serve(*sampler) {}

// ExportSampledShared starts the scrape goroutine on the pipeline's own
// source — the exporter's draws interleave with trial draws.
func ExportSampledShared(src *rng.Source) {
	go serve(&sampler{src: src, keep: 0.1}) // want `rng source src is shared with a new goroutine`
}

// ExportSampledSplit forks the exporter its own stream before it starts;
// trial draws stay untouched by scrape timing.
func ExportSampledSplit(src *rng.Source) {
	go serve(&sampler{src: src.Split(), keep: 0.1})
}

// FlushJitterShared jitters flush timing with the caller's source from
// inside the flusher goroutine.
func FlushJitterShared(src *rng.Source, flush func(delay uint64)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		flush(src.Uint64() % 100) // want `rng source src is shared with a new goroutine`
	}()
	wg.Wait()
}

// FlushJitterOwned draws the jitter before spawning; the goroutine only
// ever sees the resulting integer.
func FlushJitterOwned(src *rng.Source, flush func(delay uint64)) {
	delay := src.Uint64() % 100
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		flush(delay)
	}()
	wg.Wait()
}
