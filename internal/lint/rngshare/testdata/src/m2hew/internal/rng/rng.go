// Package rng is a fixture stub of the real seeded source: just enough
// surface (Split, SplitN, draws) for the analyzer fixtures to type-check.
package rng

// Source stands in for the deterministic generator; like the real one it
// is not safe for concurrent use.
type Source struct{ state uint64 }

// New returns a stub source.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 draws the next value.
func (s *Source) Uint64() uint64 { s.state++; return s.state }

// Split forks an independent child stream.
func (s *Source) Split() *Source { return New(s.Uint64()) }

// SplitN forks n independent child streams.
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}
