// Package scratchalias enforces the scratch-buffer ownership protocol.
//
// The trial-scoped scratch layer (sim.SyncScratch / AsyncScratch,
// clock.DriftProcess rate-buf pooling) keeps the engines at zero heap
// allocations per run by lending buffers across trials. The protocol has
// three clauses, each of which this analyzer checks statically:
//
//   - Adopt/release pairing: a function that hands a pooled buffer to a
//     consumer with AdoptRateBuf must either take them back with
//     ReleaseRateBuf in the same function, or carry an //nd:scratch-owner
//     directive naming who reclaims them (sim.adoptRateBuf does: run-end
//     reclamation is reclaimRateBufs' job).
//   - No use after handoff: once a buffer obtained from ReleaseRateBuf has
//     been pushed back into a pool (appended to a free list or re-adopted),
//     the local variable is a dangling alias; further reads race with the
//     next borrower.
//   - No aliasing scratch-owned slices into escaping structs: a slice
//     returned by a *Scratch method is recycled next run, so storing it in
//     a struct field (or a composite literal that is itself stored) makes
//     the struct describe a future run's data. Passing such a literal
//     directly onward as a call argument is the engines' event-emission
//     idiom and stays within the borrow contract, so it is allowed; the
//     deliberate Timelines escape in the async results carries a documented
//     suppression (the RecycleTimelines contract transfers ownership).
package scratchalias

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"m2hew/internal/lint"
)

// Analyzer reports adopt-without-release, use-after-handoff, and aliasing
// of scratch-owned slices into escaping structs.
var Analyzer = &lint.Analyzer{
	Name: "scratchalias",
	Doc:  "enforce scratch buffer ownership: AdoptRateBuf/ReleaseRateBuf pairing, no use after handoff, no aliasing scratch slices into escaping structs",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkAdoptRelease(pass, fn)
			checkUseAfterHandoff(pass, fn)
			checkScratchAlias(pass, fn)
		}
	}
	return nil
}

// checkAdoptRelease enforces the pairing clause on one function.
func checkAdoptRelease(pass *lint.Pass, fn *ast.FuncDecl) {
	var adopts []*ast.CallExpr
	releases := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch methodName(call) {
		case "AdoptRateBuf":
			adopts = append(adopts, call)
		case "ReleaseRateBuf":
			releases = true
		}
		return true
	})
	if len(adopts) == 0 || releases {
		return
	}
	if lint.FuncHasDirective(fn, lint.ScratchOwnerDirective) {
		return
	}
	for _, call := range adopts {
		pass.Reportf(call.Pos(), "AdoptRateBuf without a matching ReleaseRateBuf in %s: release in this function or document the owner with %s", fn.Name.Name, lint.ScratchOwnerDirective)
	}
}

// checkUseAfterHandoff tracks variables bound to ReleaseRateBuf results and
// flags reads after the buffer went back to a pool.
func checkUseAfterHandoff(pass *lint.Pass, fn *ast.FuncDecl) {
	// released[obj] is the position where obj was bound to a released buffer.
	released := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || methodName(call) != "ReleaseRateBuf" {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				released[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				released[obj] = true
			}
		}
		return true
	})
	if len(released) == 0 {
		return
	}
	// For each released variable, find its handoff point (first position
	// where it is appended into something or re-adopted) and flag later
	// uses. Position order stands in for control flow — the pooling helpers
	// are straight-line code, and a false negative here is still caught by
	// the race detector lane.
	for obj := range released {
		handoff := token.Pos(-1)
		var after []*ast.Ident
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok {
				isAppend := false
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
					isAppend = true
				}
				readopt := methodName(call) == "AdoptRateBuf"
				if isAppend || readopt {
					for ai, arg := range call.Args {
						if isAppend && ai == 0 {
							continue // the pool being appended to
						}
						if id, ok := arg.(*ast.Ident); ok && usesObject(pass, id, obj) {
							if handoff == token.Pos(-1) || call.End() < handoff {
								handoff = call.End()
							}
						}
					}
				}
			}
			if id, ok := n.(*ast.Ident); ok && usesObject(pass, id, obj) {
				after = append(after, id)
			}
			return true
		})
		if handoff == token.Pos(-1) {
			continue
		}
		for _, id := range after {
			if id.Pos() > handoff {
				pass.Reportf(id.Pos(), "use of %s after the released buffer was handed back to a pool: it may already belong to the next borrower", id.Name)
			}
		}
	}
}

// usesObject reports whether id refers to obj.
func usesObject(pass *lint.Pass, id *ast.Ident, obj types.Object) bool {
	return pass.Info.Uses[id] == obj
}

// checkScratchAlias tracks variables bound to slices returned by *Scratch
// methods and flags stores that make them outlive the run.
func checkScratchAlias(pass *lint.Pass, fn *ast.FuncDecl) {
	owned := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Both x := sc.m(...) and x, y := sc.m(...) (tuple results) bind
		// scratch-owned slices.
		if len(as.Rhs) == 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && scratchMethod(pass, call) {
				for _, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj != nil && isSliceType(obj.Type()) {
						owned[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(owned) == 0 {
		return
	}
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !owned[obj] {
			return true
		}
		if len(stack) < 2 {
			return true
		}
		switch parent := stack[len(stack)-2].(type) {
		case *ast.AssignStmt:
			// x.F = v: the struct now aliases the scratch buffer.
			if !isLHS(parent, id) {
				for _, lhs := range parent.Lhs {
					if _, isSel := lhs.(*ast.SelectorExpr); isSel {
						pass.Reportf(id.Pos(), "scratch-owned slice %s stored into a struct field: it is recycled next run; copy it or transfer ownership", id.Name)
						return true
					}
				}
			}
		case *ast.KeyValueExpr:
			if parent.Value == id {
				reportLiteralAlias(pass, id, stack)
			}
		case *ast.CompositeLit:
			reportLiteralAlias(pass, id, stack)
		}
		return true
	})
}

// reportLiteralAlias flags a scratch-owned slice used as a composite
// literal element, unless the literal is itself a direct call argument —
// the engines' inline Event{Actions: actions} emission, which stays inside
// the borrow contract.
func reportLiteralAlias(pass *lint.Pass, id *ast.Ident, stack []ast.Node) {
	// Walk out of the literal (through KeyValueExpr, the literal itself,
	// and an optional &) and look at what holds it.
	i := len(stack) - 2
	for i >= 0 {
		switch stack[i].(type) {
		case *ast.KeyValueExpr, *ast.CompositeLit:
			i--
			continue
		case *ast.UnaryExpr:
			if u := stack[i].(*ast.UnaryExpr); u.Op == token.AND {
				i--
				continue
			}
		}
		break
	}
	if i >= 0 {
		if _, ok := stack[i].(*ast.CallExpr); ok {
			return // literal passed straight to a callee: borrow, not escape
		}
	}
	pass.Reportf(id.Pos(), "scratch-owned slice %s aliased into a composite literal that outlives the call: copy it or transfer ownership", id.Name)
}

// scratchMethod reports whether call invokes a method on a receiver whose
// named type ends in "Scratch".
func scratchMethod(pass *lint.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return strings.HasSuffix(named.Obj().Name(), "Scratch")
}

// methodName returns the selector name call invokes, or "".
func methodName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// isLHS reports whether e is one of as's assignment targets.
func isLHS(as *ast.AssignStmt, e ast.Expr) bool {
	for _, lhs := range as.Lhs {
		if lhs == e {
			return true
		}
	}
	return false
}

// isSliceType reports whether t's underlying type is a slice.
func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
