package scratchalias_test

import (
	"testing"

	"m2hew/internal/lint/linttest"
	"m2hew/internal/lint/scratchalias"
)

func TestScratchAlias(t *testing.T) {
	linttest.Run(t, "testdata", scratchalias.Analyzer,
		"a", // pairing, use-after-handoff, aliasing, sanctioned shapes
	)
}
