// Package a exercises the scratchalias analyzer: adopt-without-release,
// use-after-handoff, scratch slice aliasing, and the sanctioned shapes.
package a

// pool mimics clock.DriftProcess's rate-buf pooling surface.
type pool struct{ buf []float64 }

func (p *pool) AdoptRateBuf(buf []float64) { p.buf = buf }
func (p *pool) ReleaseRateBuf() []float64  { b := p.buf; p.buf = nil; return b }

// runScratch mimics sim's trial-scoped scratch.
type runScratch struct {
	rateBufs [][]float64
	actions  []int
}

func (sc *runScratch) actionBuf(n int) []int { return sc.actions[:0] }

// event mimics the engines' observability payload.
type event struct{ actions []int }

type result struct{ actions []int }

func emit(e event) {}

// adoptNoRelease lends a buffer and never takes it back.
func adoptNoRelease(p *pool, buf []float64) {
	p.AdoptRateBuf(buf) // want "AdoptRateBuf without a matching ReleaseRateBuf in adoptNoRelease"
}

// adoptDocumented carries the owner directive: release happens at run end.
//
//nd:scratch-owner reclaimAll takes the buffers back when the run ends
func adoptDocumented(p *pool, buf []float64) {
	p.AdoptRateBuf(buf)
}

// adoptPaired releases in the same function.
func adoptPaired(p *pool, buf []float64) []float64 {
	p.AdoptRateBuf(buf)
	return p.ReleaseRateBuf()
}

// reclaimAll is the sanctioned reclamation shape: release, pool, stop.
func reclaimAll(sc *runScratch, ps []*pool) {
	for _, p := range ps {
		buf := p.ReleaseRateBuf()
		if buf != nil {
			sc.rateBufs = append(sc.rateBufs, buf)
		}
	}
}

// useAfterHandoff reads a released buffer after pooling it.
func useAfterHandoff(sc *runScratch, p *pool) float64 {
	buf := p.ReleaseRateBuf()
	sc.rateBufs = append(sc.rateBufs, buf)
	return buf[0] // want "use of buf after the released buffer was handed back to a pool"
}

// readoptThenUse hands the buffer to a new borrower and keeps reading it.
func readoptThenUse(p, q *pool) float64 {
	buf := p.ReleaseRateBuf()
	q.AdoptRateBuf(buf)
	return buf[0] // want "use of buf after the released buffer was handed back to a pool"
}

// aliasField stores a scratch-owned slice into a struct field.
func aliasField(sc *runScratch, r *result, n int) {
	acts := sc.actionBuf(n)
	r.actions = acts // want "scratch-owned slice acts stored into a struct field"
}

// aliasLiteral builds an escaping struct around a scratch-owned slice.
func aliasLiteral(sc *runScratch, n int) *result {
	acts := sc.actionBuf(n)
	out := &result{actions: acts} // want "scratch-owned slice acts aliased into a composite literal"
	return out
}

// aliasSuppressed documents a deliberate ownership transfer.
func aliasSuppressed(sc *runScratch, n int) *result {
	acts := sc.actionBuf(n)
	//ndlint:ignore scratchalias caller recycles via RecycleActions, ownership transfers
	return &result{actions: acts}
}

// tiledRun mimics the tiled resolver's run-scoped state: per-tile halo
// windows borrowed from the trial scratch for the duration of one run.
type tiledRun struct{ halo []int }

// haloBuf hands out the scratch's halo word window, like actionBuf.
func (sc *runScratch) haloBuf(n int) []int { return sc.actions[:0] }

// tileAliasLiteral wires a scratch-owned halo window into a run object
// that outlives the call — undocumented, so flagged.
func tileAliasLiteral(sc *runScratch, n int) *tiledRun {
	halo := sc.haloBuf(n)
	return &tiledRun{halo: halo} // want "scratch-owned slice halo aliased into a composite literal"
}

// tileAliasSuppressed is the sanctioned tiled-run shape: the run object
// dies with the run, before the scratch is recycled, and the directive
// records that.
func tileAliasSuppressed(sc *runScratch, n int) *tiledRun {
	halo := sc.haloBuf(n)
	//ndlint:ignore scratchalias run-scoped borrow; the run ends before the scratch is recycled
	return &tiledRun{halo: halo}
}

// tileAliasField stores the borrowed halo window into a longer-lived
// struct field after the fact; same leak, different syntax.
func tileAliasField(sc *runScratch, tr *tiledRun, n int) {
	halo := sc.haloBuf(n)
	tr.halo = halo // want "scratch-owned slice halo stored into a struct field"
}

// inlineEmit passes the literal straight to a callee: borrow, not escape.
func inlineEmit(sc *runScratch, n int) {
	acts := sc.actionBuf(n)
	for i := 0; i < n; i++ {
		acts = append(acts, i)
		emit(event{actions: acts})
	}
}
