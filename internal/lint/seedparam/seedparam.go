// Package seedparam requires randomness-using APIs to accept a seed.
//
// Every stochastic component must be seeded by its caller: the experiment
// harness derives one stream per node per trial from the run seed, so an
// exported simulation function that draws randomness it was never handed
// can only get it from hidden state — which is exactly how reproducibility
// dies. The analyzer computes, per package, which functions transitively
// use internal/rng (direct references, or calls to package-local functions
// that do) and reports exported package-level functions among them whose
// signature carries no randomness: no rng.Source parameter, no parameter
// named like a seed, and no config-struct parameter with an rng.Source or
// Seed field.
//
// Methods are exempt: a method drawing from a source stored in its receiver
// is the sanctioned pattern — the seed was injected when the receiver was
// constructed, and the constructor is what this analyzer checks. Test
// entry points (TestXxx, BenchmarkXxx, FuzzXxx, ExampleXxx in _test.go
// files) are exempt too: the testing framework fixes their signatures, so
// they cannot take a seed — they pin their seeds in-body instead.
package seedparam

import (
	"go/ast"
	"go/types"
	"strings"

	"m2hew/internal/lint"
)

// fencedPackages are the simulation packages whose exported API must
// thread seeds explicitly.
var fencedPackages = []string{
	"m2hew/internal/sim",
	"m2hew/internal/core",
	"m2hew/internal/clock",
	"m2hew/internal/baseline",
	"m2hew/internal/topology",
	"m2hew/internal/dynamics",
}

// Analyzer reports exported seed-less functions that use randomness.
var Analyzer = &lint.Analyzer{
	Name: "seedparam",
	Doc:  "flag exported simulation functions that transitively use randomness but accept no seed or *rng.Source parameter",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if !lint.InPackages(pass.Pkg.Path(), fencedPackages) {
		return nil
	}

	// Collect every function declaration and whether it touches rng
	// directly: a reference to an object from the rng package (rng.New,
	// Source methods) or to any value of type rng.Source.
	type fn struct {
		decl     *ast.FuncDecl
		usesRand bool
	}
	fns := make(map[types.Object]*fn)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			fns[obj] = &fn{decl: fd, usesRand: usesRandDirectly(pass, fd.Body)}
		}
	}

	// Propagate through package-local calls to a fixpoint: A calling B
	// inherits B's randomness use.
	for changed := true; changed; {
		changed = false
		for _, caller := range fns {
			if caller.usesRand {
				continue
			}
			ast.Inspect(caller.decl.Body, func(n ast.Node) bool {
				if caller.usesRand {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var callee types.Object
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					callee = pass.Info.Uses[fun]
				case *ast.SelectorExpr:
					callee = pass.Info.Uses[fun.Sel]
				}
				if target, ok := fns[callee]; ok && target.usesRand {
					caller.usesRand = true
					changed = true
				}
				return true
			})
		}
	}

	for _, f := range fns {
		fd := f.decl
		if !f.usesRand || fd.Recv != nil || !fd.Name.IsExported() {
			continue
		}
		if isTestEntry(pass, fd) {
			continue
		}
		if signatureCarriesSeed(pass, fd) {
			continue
		}
		pass.Reportf(fd.Name.Pos(), "exported %s transitively uses randomness but accepts no seed or rng.Source parameter; callers cannot make it reproducible", fd.Name.Name)
	}
	return nil
}

// isTestEntry reports whether fd is a go-test entry point declared in a
// _test.go file: TestXxx/BenchmarkXxx/FuzzXxx taking exactly one
// *testing.T/B/F parameter, or ExampleXxx. The framework dictates these
// signatures, so requiring a seed parameter is impossible; such functions
// pin their seeds in-body (which the repo's tests do).
func isTestEntry(pass *lint.Pass, fd *ast.FuncDecl) bool {
	if !strings.HasSuffix(pass.Fset.Position(fd.Pos()).Filename, "_test.go") {
		return false
	}
	name := fd.Name.Name
	if strings.HasPrefix(name, "Example") {
		return true
	}
	var want string
	switch {
	case strings.HasPrefix(name, "Test"):
		want = "T"
	case strings.HasPrefix(name, "Benchmark"):
		want = "B"
	case strings.HasPrefix(name, "Fuzz"):
		want = "F"
	default:
		return false
	}
	params := fd.Type.Params.List
	if len(params) != 1 || len(params[0].Names) > 1 {
		return false
	}
	ptr, ok := pass.Info.TypeOf(params[0].Type).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == want && obj.Pkg() != nil && obj.Pkg().Path() == "testing"
}

// usesRandDirectly reports whether body references the rng package or any
// rng.Source-typed value.
func usesRandDirectly(pass *lint.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if pkg := obj.Pkg(); pkg != nil && pkg.Path() == lint.RNGPath {
			found = true
			return false
		}
		if v, ok := obj.(*types.Var); ok && lint.IsRNGSource(v.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// signatureCarriesSeed reports whether one of fd's parameters injects
// randomness: an rng.Source, a name containing "seed", or a type whose
// fields (followed through pointers, slices, arrays, maps and nested
// structs) contain either.
func signatureCarriesSeed(pass *lint.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		for _, name := range field.Names {
			if strings.Contains(strings.ToLower(name.Name), "seed") {
				return true
			}
		}
		if typeCarriesRand(t, make(map[types.Type]bool)) {
			return true
		}
	}
	return false
}

// typeCarriesRand walks t's structure looking for an rng.Source or a field
// named like a seed. seen guards against recursive types.
func typeCarriesRand(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if lint.IsRNGSource(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return typeCarriesRand(u.Elem(), seen)
	case *types.Slice:
		return typeCarriesRand(u.Elem(), seen)
	case *types.Array:
		return typeCarriesRand(u.Elem(), seen)
	case *types.Map:
		return typeCarriesRand(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if strings.Contains(strings.ToLower(f.Name()), "seed") {
				return true
			}
			if typeCarriesRand(f.Type(), seen) {
				return true
			}
		}
	}
	return false
}
