package seedparam_test

import (
	"testing"

	"m2hew/internal/lint/linttest"
	"m2hew/internal/lint/seedparam"
)

func TestSeedParam(t *testing.T) {
	linttest.Run(t, "testdata", seedparam.Analyzer,
		"m2hew/internal/sim",      // fenced: seeded and unseeded APIs
		"m2hew/internal/dynamics", // fenced: world-builder seeding
		"m2hew/pkg/outside",       // not fenced: no findings
	)
}

// TestSeedParamTestFiles merges sim_test.go in: test entry points are
// exempt, lookalike helpers are not.
func TestSeedParamTestFiles(t *testing.T) {
	linttest.RunWithTests(t, "testdata", seedparam.Analyzer,
		"m2hew/internal/sim",
	)
}
