// Package dynamics is a fixture exercising seedparam inside the
// epoch-schedule fence: world builders draw every churn flip, waypoint and
// primary-user event at construction, so a builder the caller cannot seed
// makes every dynamic experiment irreproducible at once.
package dynamics

import "m2hew/internal/rng"

// Spec mirrors the dynamic-scenario parameters; it carries no randomness.
type Spec struct {
	EpochLen float64
	Events   int
}

// World holds schedules drawn at construction from an injected source.
type World struct {
	src   *rng.Source
	flips []int
}

// NewWorld threads the schedule source explicitly — the real constructor's
// signature. Legal.
func NewWorld(spec Spec, horizon int, src *rng.Source) *World {
	w := &World{src: src, flips: make([]int, 0, horizon)}
	for e := 0; e < horizon; e++ {
		if src.Bernoulli(0.5) {
			w.flips = append(w.flips, e)
		}
	}
	return w
}

// NewWorldSeeded derives the schedule stream from an explicit seed. Legal.
func NewWorldSeeded(spec Spec, horizon int, seed uint64) *World {
	return NewWorld(spec, horizon, rng.New(seed))
}

// DefaultWorld conjures its schedule stream from hidden state — the
// seedless-builder bug the fence exists to catch: no caller can ever
// replay the churn pattern it draws.
func DefaultWorld(spec Spec, horizon int) *World { // want `exported DefaultWorld transitively uses randomness`
	return NewWorld(spec, horizon, rng.New(0))
}

// JitterEpochs launders its randomness through an unexported helper; the
// transitive walk still finds it.
func JitterEpochs(spec Spec, horizon int) []int { // want `exported JitterEpochs transitively uses randomness`
	return jitter(horizon)
}

func jitter(horizon int) []int {
	r := rng.New(uint64(horizon))
	out := make([]int, horizon)
	for i := range out {
		out[i] = int(r.Uint64() % 7)
	}
	return out
}

// Flips reads a schedule drawn at construction; methods are exempt because
// the seed was injected by the constructor.
func (w *World) Flips() []int { return w.flips }

// Redraw draws from the receiver's source; exempt for the same reason.
func (w *World) Redraw() bool { return w.src.Bernoulli(0.5) }

// EpochOf uses no randomness at all: legal.
func EpochOf(spec Spec, t float64) int {
	if spec.EpochLen <= 0 {
		return 0
	}
	return int(t / spec.EpochLen)
}
