// Package rng is a fixture stub of the real seeded source.
package rng

// Source stands in for the deterministic generator.
type Source struct{ state uint64 }

// New returns a stub source.
func New(seed uint64) *Source { return &Source{state: seed} }

// Uint64 draws the next value.
func (s *Source) Uint64() uint64 { s.state++; return s.state }

// Bernoulli draws a biased coin.
func (s *Source) Bernoulli(p float64) bool { return float64(s.Uint64()%1000)/1000 < p }
