// Package sim is a fixture exercising seedparam inside a fenced package.
package sim

import "m2hew/internal/rng"

// Config is a config struct that carries its own source; APIs taking it
// are reproducible.
type Config struct {
	Nodes int
	Rng   *rng.Source
}

// Engine holds a seeded source injected at construction.
type Engine struct {
	r *rng.Source
}

// Jitter draws randomness with no way for the caller to seed it.
func Jitter() uint64 { // want `exported Jitter transitively uses randomness`
	return rng.New(0).Uint64()
}

// Shuffle launders its randomness through an unexported helper; the
// transitive walk still finds it.
func Shuffle(xs []int) { // want `exported Shuffle transitively uses randomness`
	mix(xs)
}

func mix(xs []int) {
	r := rng.New(uint64(len(xs)))
	for i := range xs {
		j := int(r.Uint64()) % (i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// NewEngine threads the source explicitly: legal.
func NewEngine(r *rng.Source) *Engine { return &Engine{r: r} }

// JitterSeeded derives its stream from an explicit seed: legal.
func JitterSeeded(seed uint64) uint64 { return rng.New(seed).Uint64() }

// Run receives randomness through the config struct: legal.
func Run(cfg Config) uint64 {
	if cfg.Rng == nil {
		return 0
	}
	return cfg.Rng.Uint64()
}

// Step draws from the receiver's source; methods are exempt because the
// seed was injected by the constructor.
func (e *Engine) Step() uint64 { return e.r.Uint64() }

// Size uses no randomness at all: legal.
func Size(cfg Config) int { return cfg.Nodes }
