package sim

import (
	"testing"

	"m2hew/internal/rng"
)

// TestJitterSeeded is a test entry point: the framework fixes its
// signature, so the analyzer must not demand a seed parameter even though
// it draws randomness (from an in-body pinned seed).
func TestJitterSeeded(t *testing.T) {
	if rng.New(1).Uint64() == rng.New(2).Uint64() {
		t.Fail()
	}
}

// BenchmarkJitter is likewise exempt.
func BenchmarkJitter(b *testing.B) {
	r := rng.New(7)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

// ExampleJitterSeeded is likewise exempt.
func ExampleJitterSeeded() {
	_ = JitterSeeded(3)
}

// TestHelperRoll only looks like a test entry point — the extra parameter
// means the framework will never call it, so the seed contract applies.
func TestHelperRoll(t *testing.T, n int) uint64 { // want `exported TestHelperRoll transitively uses randomness`
	return rng.New(uint64(n)).Uint64()
}
