// Package outside is a fixture for a package that seedparam does not
// fence; the same unseeded API draws no finding here.
package outside

import "m2hew/internal/rng"

// Jitter would be flagged inside the simulation fence.
func Jitter() uint64 {
	return rng.New(0).Uint64()
}
