// Package suite assembles the repository's analyzer set — the single
// source of truth for what cmd/ndlint and the self-lint test run.
package suite

import (
	"m2hew/internal/lint"
	"m2hew/internal/lint/hotalloc"
	"m2hew/internal/lint/lockorder"
	"m2hew/internal/lint/maporder"
	"m2hew/internal/lint/norand"
	"m2hew/internal/lint/nowallclock"
	"m2hew/internal/lint/obspure"
	"m2hew/internal/lint/rngshare"
	"m2hew/internal/lint/scratchalias"
	"m2hew/internal/lint/seedparam"
)

// Analyzers returns the full determinism/concurrency suite in stable order.
func Analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		hotalloc.Analyzer,
		lockorder.Analyzer,
		maporder.Analyzer,
		norand.Analyzer,
		nowallclock.Analyzer,
		obspure.Analyzer,
		rngshare.Analyzer,
		scratchalias.Analyzer,
		seedparam.Analyzer,
	}
}
