package suite_test

import (
	"testing"

	"m2hew/internal/lint"
	"m2hew/internal/lint/suite"
)

// TestRepositoryIsLintClean runs the full analyzer suite over every package
// of this module — the same check as `go run ./cmd/ndlint ./...`, in test
// form so `go test ./...` is itself a determinism gate.
func TestRepositoryIsLintClean(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	pkgs, err := lint.LoadRepo(root)
	if err != nil {
		t.Fatalf("LoadRepo: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadRepo found only %d packages; the module walk looks broken", len(pkgs))
	}
	analyzers := suite.Analyzers()
	if len(analyzers) < 9 {
		t.Fatalf("suite has %d analyzers, want at least 9", len(analyzers))
	}
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, analyzers)
		if err != nil {
			t.Fatalf("running suite on %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
