// Package dep exists so the loader test covers in-tree imports.
package dep

// Name returns a constant.
func Name() string { return "fixture" }
