// Package fixture exercises the lint framework itself: loader overlay
// resolution, standard-library imports and suppression directives.
package fixture

import (
	"strings"

	"fixture/dep"
)

// Reported has no directive, so test analyzers see it.
func Reported() string { return strings.ToUpper(dep.Name()) }

func Suppressed() {} //ndlint:ignore flagfuncs trailing directive covers this line

//ndlint:ignore flagfuncs directive on the line above covers the next line
func AlsoSuppressed() {}

//ndlint:ignore all blanket directives cover every analyzer
func Blanket() {}
