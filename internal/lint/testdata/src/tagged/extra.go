//go:build extra

package tagged

// Extra is built only under the "extra" tag.
func Extra() int { return 2 }
