// Package tagged exercises build-constraint handling in the loader.
package tagged

// Base is always built.
func Base() int { return 1 }
