// Package testonly holds nothing but an in-package test file; the loader
// must register the directory only when IncludeTests is set.
package testonly

import "testing"

func TestNothing(t *testing.T) {}
