// Package withtests exercises in-package test merging in the loader.
package withtests

// answer is unexported so only an in-package test can reach it.
func answer() int { return 42 }
