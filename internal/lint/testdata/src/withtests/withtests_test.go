package withtests

import "testing"

func TestAnswer(t *testing.T) {
	if answer() != 42 {
		t.Fatal("wrong answer")
	}
}
