// Package xhelper is a test helper whose API mentions xtested's types; the
// loader must re-check it against the merged xtested package when the
// external test package imports both, or the two copies of xtested.Val
// would not be identical.
package xhelper

import "xtested"

// Sum adds a Val's field to x.
func Sum(v xtested.Val, x int) int { return v.N + x }
