package xtested

// Hidden exposes hidden to the external test package, the export_test.go
// idiom the loader must support: the external package's import of the base
// path has to resolve to the merged (tests-included) package.
var Hidden = hidden
