package xtested_test

import (
	"testing"

	"xhelper"
	"xtested"
)

func TestDouble(t *testing.T) {
	if xtested.Double(3) != 6 {
		t.Fatal("wrong double")
	}
	if xtested.Hidden() != 7 {
		t.Fatal("wrong hidden")
	}
}

func TestHelper(t *testing.T) {
	// xhelper's signature names xtested.Val; this compiles only if the
	// helper was checked against the same xtested package this file
	// imports (the merged one, because export_test.go exists).
	if xhelper.Sum(xtested.Val{N: 5}, 2) != 7 {
		t.Fatal("wrong sum")
	}
}
