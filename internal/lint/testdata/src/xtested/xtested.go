// Package xtested exercises external test-package loading in the loader.
package xtested

// Double is exported for the external test package.
func Double(x int) int { return 2 * x }

// hidden is reachable only through the export hook below.
func hidden() int { return 7 }

// Val is referenced by the xhelper test helper package.
type Val struct{ N int }
