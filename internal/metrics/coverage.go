// Package metrics tracks discovery progress during a simulation and
// aggregates results across trials.
//
// The central type is Coverage: the oracle's view of which directed links
// have been covered (paper terminology: link (v,u) is covered when u hears a
// clear message from v) and when. Engines feed it observations; experiments
// read completion times and progress curves from it. Aggregation helpers
// summarize repeated trials into the statistics EXPERIMENTS.md reports.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"

	"m2hew/internal/topology"
)

// denseCoverageLimit caps the node-ID stride of the dense backing: a stride
// of 1024 bounds the first-coverage array at stride² float64s = 8 MiB.
// Targets with larger IDs use the map backing.
const denseCoverageLimit = 1024

// Coverage tracks first-coverage times for a target set of directed links.
// Times are unitless float64s: slot indexes for synchronous runs, real time
// for asynchronous runs.
//
// The target is fixed at construction for static runs; time-varying runs
// grow it with AddTarget as links come into existence (churn, mobility,
// spectrum dynamics), recording each link's birth time so discovery latency
// — first coverage minus birth — stays well-defined for links that did not
// exist at time zero.
//
// Three interchangeable backings implement the same observable behaviour:
// a dense one (bitmaps plus a flat first-coverage array, chosen when the
// constructor target's node IDs all fall under denseCoverageLimit) that
// keeps the per-delivery Observe call off the map hardware; a CSR one for
// large-n static targets (chosen when the constructor links arrive sorted
// ascending by (From, To) — Network.DiscoverableLinks order — with IDs
// past the dense limit), storing the target as row offsets plus ascending
// destination lists so memory is O(links) instead of O(n²) and Observe is
// one binary search in the receiver row; and a map one for everything
// else. An AddTarget whose link exceeds the dense ID range (or misses the
// CSR target — a dynamic run growing links) migrates the state into maps;
// results are identical with every backing.
type Coverage struct {
	// Map backing. Active (non-nil) iff stride == 0 and csrTo == nil.
	first  map[topology.Link]float64
	target map[topology.Link]bool

	// Dense backing, active iff stride > 0: link (v,u) lives at flat index
	// v*stride+u. denseAt[idx] is meaningful only where covered has the bit.
	stride     int
	targetBits []uint64
	covered    []uint64
	denseAt    []float64
	targetSize int

	// CSR backing, active iff csrTo != nil: link i has From = the row whose
	// [csrOff[row], csrOff[row+1]) window contains i and To = csrTo[i].
	// Rows are ascending, csrTo ascends within each row, csrCovered is a
	// bitset over link indexes, and csrAt[i] is meaningful only where
	// csrCovered has the bit.
	csrOff     []int64
	csrTo      []topology.NodeID
	csrAt      []float64
	csrCovered []uint64

	born      map[topology.Link]float64 // lazily allocated; absent link ⇒ born at 0
	remaining int
	nonTarget int // observations outside the target set (counted, never stored)
}

// NewCoverage returns a Coverage whose completion target is the given links
// (typically Network.DiscoverableLinks()).
func NewCoverage(links []topology.Link) *Coverage {
	if stride := denseStride(links); stride > 0 {
		c := &Coverage{
			stride:     stride,
			targetBits: make([]uint64, (stride*stride+63)/64),
			covered:    make([]uint64, (stride*stride+63)/64),
			denseAt:    make([]float64, stride*stride),
		}
		for _, l := range links {
			idx := int(l.From)*stride + int(l.To)
			w, bit := idx>>6, uint64(1)<<(uint(idx)&63)
			if c.targetBits[w]&bit == 0 {
				c.targetBits[w] |= bit
				c.targetSize++
			}
		}
		c.remaining = c.targetSize
		return c
	}
	if c := newCSRCoverage(links); c != nil {
		return c
	}
	target := make(map[topology.Link]bool, len(links))
	for _, l := range links {
		target[l] = true
	}
	return &Coverage{
		first:     make(map[topology.Link]float64, len(links)),
		target:    target,
		remaining: len(target),
	}
}

// newCSRCoverage builds the CSR backing, or returns nil when it does not
// apply: the links must be non-empty, non-negative, and strictly ascending
// by (From, To) — the order Network.DiscoverableLinks produces. Duplicate
// or unsorted input falls back to the map backing rather than silently
// mis-counting.
func newCSRCoverage(links []topology.Link) *Coverage {
	if len(links) == 0 || links[0].From < 0 || links[0].To < 0 {
		return nil
	}
	for i := 1; i < len(links); i++ {
		a, b := links[i-1], links[i]
		if b.To < 0 || b.From < a.From || (b.From == a.From && b.To <= a.To) {
			return nil
		}
	}
	rows := int(links[len(links)-1].From) + 1
	c := &Coverage{
		csrOff:     make([]int64, rows+1),
		csrTo:      make([]topology.NodeID, len(links)),
		csrAt:      make([]float64, len(links)),
		csrCovered: make([]uint64, (len(links)+63)/64),
		targetSize: len(links),
		remaining:  len(links),
	}
	row := 0
	for i, l := range links {
		for row < int(l.From) {
			row++
			c.csrOff[row] = int64(i)
		}
		c.csrTo[i] = l.To
	}
	for row < rows {
		row++
		c.csrOff[row] = int64(len(links))
	}
	return c
}

// csrIndex returns link l's index in the CSR target, or -1 when l is not a
// target link.
//
//nd:hotpath
func (c *Coverage) csrIndex(l topology.Link) int {
	if l.From < 0 || int(l.From) >= len(c.csrOff)-1 {
		return -1
	}
	lo, hi := c.csrOff[l.From], c.csrOff[l.From+1]
	for lo < hi {
		mid := (lo + hi) >> 1
		if c.csrTo[mid] < l.To {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < c.csrOff[l.From+1] && c.csrTo[lo] == l.To {
		return int(lo)
	}
	return -1
}

// forEachTargetCSR visits every CSR target link in ascending (From, To)
// order with its coverage state. CSR backing only.
func (c *Coverage) forEachTargetCSR(fn func(l topology.Link, covered bool, at float64)) {
	row := 0
	for i, to := range c.csrTo {
		for int64(i) >= c.csrOff[row+1] {
			row++
		}
		fn(topology.Link{From: topology.NodeID(row), To: to},
			c.csrCovered[i>>6]&(uint64(1)<<(uint(i)&63)) != 0, c.csrAt[i])
	}
}

// denseStride returns the dense-backing stride for the target links (one
// past the largest endpoint ID), or 0 when the dense backing does not apply
// (no links, a negative ID, or an ID at or beyond denseCoverageLimit).
func denseStride(links []topology.Link) int {
	if len(links) == 0 {
		return 0
	}
	maxID := topology.NodeID(0)
	for _, l := range links {
		if l.From < 0 || l.To < 0 {
			return 0
		}
		if l.From > maxID {
			maxID = l.From
		}
		if l.To > maxID {
			maxID = l.To
		}
	}
	if int(maxID) >= denseCoverageLimit {
		return 0
	}
	return int(maxID) + 1
}

// Observe records that link l was covered at the given time. It returns true
// if this is the first coverage of a target link. Observations of non-target
// links are counted (see NonTargetObservations) but never stored: storing
// them would let a mis-wired caller grow the map without bound, and the
// engines cannot produce any — a delivery implies a discoverable link, and
// the target is exactly the discoverable-link set.
//
//nd:hotpath
func (c *Coverage) Observe(l topology.Link, at float64) bool {
	if c.stride > 0 {
		if l.From < 0 || l.To < 0 || int(l.From) >= c.stride || int(l.To) >= c.stride {
			c.nonTarget++
			return false
		}
		idx := int(l.From)*c.stride + int(l.To)
		w, bit := idx>>6, uint64(1)<<(uint(idx)&63)
		if c.covered[w]&bit != 0 {
			return false
		}
		if c.targetBits[w]&bit == 0 {
			c.nonTarget++
			return false
		}
		c.covered[w] |= bit
		c.denseAt[idx] = at
		c.remaining--
		return true
	}
	if c.csrTo != nil {
		i := c.csrIndex(l)
		if i < 0 {
			c.nonTarget++
			return false
		}
		w, bit := i>>6, uint64(1)<<(uint(i)&63)
		if c.csrCovered[w]&bit != 0 {
			return false
		}
		c.csrCovered[w] |= bit
		c.csrAt[i] = at
		c.remaining--
		return true
	}
	if _, seen := c.first[l]; seen {
		return false
	}
	if !c.target[l] {
		c.nonTarget++
		return false
	}
	c.first[l] = at
	c.remaining--
	return true
}

// AddTarget grows the target set with link l, recording at as the link's
// birth time. It reports whether the link was new; re-adding a link already
// in the target (a link persisting across epochs) is a no-op, so the first
// epoch in which a link appears fixes its birth. Links added after being
// covered cannot occur in engine use — an engine only observes links it was
// already told exist — and are rejected as no-ops too.
func (c *Coverage) AddTarget(l topology.Link, at float64) bool {
	if c.stride > 0 {
		if l.From < 0 || l.To < 0 || int(l.From) >= c.stride || int(l.To) >= c.stride {
			c.migrate()
		} else {
			idx := int(l.From)*c.stride + int(l.To)
			w, bit := idx>>6, uint64(1)<<(uint(idx)&63)
			if c.targetBits[w]&bit != 0 {
				return false
			}
			c.targetBits[w] |= bit
			c.targetSize++
			c.remaining++
			c.recordBirth(l, at)
			return true
		}
	}
	if c.csrTo != nil {
		if c.csrIndex(l) >= 0 {
			return false
		}
		// A link outside the static CSR target: a dynamic run growing its
		// link set. Migrate to the map backing and fall through.
		c.migrate()
	}
	if c.target[l] {
		return false
	}
	c.target[l] = true
	c.remaining++
	c.recordBirth(l, at)
	return true
}

func (c *Coverage) recordBirth(l topology.Link, at float64) {
	if at != 0 {
		if c.born == nil {
			c.born = make(map[topology.Link]float64)
		}
		c.born[l] = at
	}
}

// migrate converts the dense or CSR backing into the map backing,
// preserving every observable. Only an AddTarget the active backing cannot
// represent triggers it (dense: an ID beyond the stride; CSR: any link
// outside the fixed target).
func (c *Coverage) migrate() {
	c.first = make(map[topology.Link]float64, c.targetSize)
	c.target = make(map[topology.Link]bool, c.targetSize)
	visit := c.forEachTarget
	if c.csrTo != nil {
		visit = c.forEachTargetCSR
	}
	visit(func(l topology.Link, covered bool, at float64) {
		c.target[l] = true
		if covered {
			c.first[l] = at
		}
	})
	c.stride, c.targetBits, c.covered, c.denseAt, c.targetSize = 0, nil, nil, nil, 0
	c.csrOff, c.csrTo, c.csrAt, c.csrCovered = nil, nil, nil, nil
}

// forEachTarget visits every dense target link in ascending (From, To)
// order with its coverage state. Dense backing only.
func (c *Coverage) forEachTarget(fn func(l topology.Link, covered bool, at float64)) {
	for w, word := range c.targetBits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			idx := w<<6 + b
			l := topology.Link{
				From: topology.NodeID(idx / c.stride),
				To:   topology.NodeID(idx % c.stride),
			}
			fn(l, c.covered[w]&(uint64(1)<<uint(b)) != 0, c.denseAt[idx])
		}
	}
}

// BirthTime returns when link l entered the target set: the AddTarget time,
// or 0 for links in the initial (constructor) target. ok is false for links
// outside the target.
func (c *Coverage) BirthTime(l topology.Link) (float64, bool) {
	if !c.inTarget(l) {
		return 0, false
	}
	return c.born[l], true
}

func (c *Coverage) inTarget(l topology.Link) bool {
	if c.stride > 0 {
		if l.From < 0 || l.To < 0 || int(l.From) >= c.stride || int(l.To) >= c.stride {
			return false
		}
		idx := int(l.From)*c.stride + int(l.To)
		return c.targetBits[idx>>6]&(uint64(1)<<(uint(idx)&63)) != 0
	}
	if c.csrTo != nil {
		return c.csrIndex(l) >= 0
	}
	return c.target[l]
}

// Latencies returns the discovery latency — first-coverage time minus birth
// time — of every covered target link, sorted ascending. For static runs
// (all links born at 0) this is simply the sorted first-coverage times.
func (c *Coverage) Latencies() []float64 {
	covered := c.TargetSize() - c.remaining
	out := make([]float64, 0, covered)
	switch {
	case c.stride > 0:
		c.forEachTarget(func(l topology.Link, cov bool, at float64) {
			if cov {
				out = append(out, at-c.born[l])
			}
		})
	case c.csrTo != nil:
		c.forEachTargetCSR(func(l topology.Link, cov bool, at float64) {
			if cov {
				out = append(out, at-c.born[l])
			}
		})
	default:
		for l, at := range c.first {
			out = append(out, at-c.born[l])
		}
	}
	sort.Float64s(out)
	return out
}

// NonTargetObservations returns how many observations fell outside the
// target link set. A non-zero count flags mis-wired instrumentation: the
// engines only observe links on which they delivered, which are always
// discoverable.
func (c *Coverage) NonTargetObservations() int { return c.nonTarget }

// Complete reports whether every target link has been covered.
func (c *Coverage) Complete() bool { return c.remaining == 0 }

// Remaining returns the number of uncovered target links.
func (c *Coverage) Remaining() int { return c.remaining }

// TargetSize returns the number of target links.
func (c *Coverage) TargetSize() int {
	if c.stride > 0 || c.csrTo != nil {
		return c.targetSize
	}
	return len(c.target)
}

// Progress returns the covered fraction of the target in [0,1]; it is 1 for
// an empty target.
func (c *Coverage) Progress() float64 {
	size := c.TargetSize()
	if size == 0 {
		return 1
	}
	return float64(size-c.remaining) / float64(size)
}

// FirstCovered returns when link l was first covered. Only target links are
// ever recorded.
func (c *Coverage) FirstCovered(l topology.Link) (float64, bool) {
	if c.stride > 0 {
		if l.From < 0 || l.To < 0 || int(l.From) >= c.stride || int(l.To) >= c.stride {
			return 0, false
		}
		idx := int(l.From)*c.stride + int(l.To)
		if c.covered[idx>>6]&(uint64(1)<<(uint(idx)&63)) == 0 {
			return 0, false
		}
		return c.denseAt[idx], true
	}
	if c.csrTo != nil {
		i := c.csrIndex(l)
		if i < 0 || c.csrCovered[i>>6]&(uint64(1)<<(uint(i)&63)) == 0 {
			return 0, false
		}
		return c.csrAt[i], true
	}
	at, ok := c.first[l]
	return at, ok
}

// CompletionTime returns the time at which the last target link was covered.
// It returns ok=false while incomplete. An empty target completes at time 0.
func (c *Coverage) CompletionTime() (float64, bool) {
	if !c.Complete() {
		return 0, false
	}
	maxAt := 0.0
	if c.stride > 0 {
		c.forEachTarget(func(l topology.Link, cov bool, at float64) {
			if cov && at > maxAt {
				maxAt = at
			}
		})
		return maxAt, true
	}
	if c.csrTo != nil {
		c.forEachTargetCSR(func(l topology.Link, cov bool, at float64) {
			if cov && at > maxAt {
				maxAt = at
			}
		})
		return maxAt, true
	}
	for l := range c.target {
		if at := c.first[l]; at > maxAt {
			maxAt = at
		}
	}
	return maxAt, true
}

// Uncovered returns the target links not yet covered, in deterministic
// order. Useful in failure diagnostics.
func (c *Coverage) Uncovered() []topology.Link {
	var out []topology.Link
	if c.stride > 0 {
		c.forEachTarget(func(l topology.Link, cov bool, at float64) {
			if !cov {
				out = append(out, l)
			}
		})
		return out // forEachTarget already ascends (From, To)
	}
	if c.csrTo != nil {
		c.forEachTargetCSR(func(l topology.Link, cov bool, at float64) {
			if !cov {
				out = append(out, l)
			}
		})
		return out // CSR construction order is ascending (From, To)
	}
	for l := range c.target {
		if _, ok := c.first[l]; !ok {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Curve returns the discovery progress curve as (time, covered-count) steps
// over target links, sorted by time. The curve starts implicitly at (−∞, 0);
// each point is the cumulative count at that coverage instant.
func (c *Coverage) Curve() []CurvePoint {
	covered := c.TargetSize() - c.remaining
	times := make([]float64, 0, covered)
	switch {
	case c.stride > 0:
		c.forEachTarget(func(l topology.Link, cov bool, at float64) {
			if cov {
				times = append(times, at)
			}
		})
	case c.csrTo != nil:
		c.forEachTargetCSR(func(l topology.Link, cov bool, at float64) {
			if cov {
				times = append(times, at)
			}
		})
	default:
		for l := range c.target {
			if at, ok := c.first[l]; ok {
				times = append(times, at)
			}
		}
	}
	sort.Float64s(times)
	points := make([]CurvePoint, len(times))
	for i, at := range times {
		points[i] = CurvePoint{Time: at, Covered: i + 1}
	}
	return points
}

// CurvePoint is one step of a discovery progress curve.
type CurvePoint struct {
	Time    float64 `json:"time"`
	Covered int     `json:"covered"`
}

// String summarizes progress.
func (c *Coverage) String() string {
	size := c.TargetSize()
	return fmt.Sprintf("covered %d/%d links", size-c.remaining, size)
}
