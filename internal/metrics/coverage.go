// Package metrics tracks discovery progress during a simulation and
// aggregates results across trials.
//
// The central type is Coverage: the oracle's view of which directed links
// have been covered (paper terminology: link (v,u) is covered when u hears a
// clear message from v) and when. Engines feed it observations; experiments
// read completion times and progress curves from it. Aggregation helpers
// summarize repeated trials into the statistics EXPERIMENTS.md reports.
package metrics

import (
	"fmt"
	"sort"

	"m2hew/internal/topology"
)

// Coverage tracks first-coverage times for a target set of directed links.
// Times are unitless float64s: slot indexes for synchronous runs, real time
// for asynchronous runs.
//
// The target is fixed at construction for static runs; time-varying runs
// grow it with AddTarget as links come into existence (churn, mobility,
// spectrum dynamics), recording each link's birth time so discovery latency
// — first coverage minus birth — stays well-defined for links that did not
// exist at time zero.
type Coverage struct {
	first     map[topology.Link]float64
	target    map[topology.Link]bool
	born      map[topology.Link]float64 // lazily allocated; absent link ⇒ born at 0
	remaining int
	nonTarget int // observations outside the target set (counted, never stored)
}

// NewCoverage returns a Coverage whose completion target is the given links
// (typically Network.DiscoverableLinks()).
func NewCoverage(links []topology.Link) *Coverage {
	target := make(map[topology.Link]bool, len(links))
	for _, l := range links {
		target[l] = true
	}
	return &Coverage{
		first:     make(map[topology.Link]float64, len(links)),
		target:    target,
		remaining: len(target),
	}
}

// Observe records that link l was covered at the given time. It returns true
// if this is the first coverage of a target link. Observations of non-target
// links are counted (see NonTargetObservations) but never stored: storing
// them would let a mis-wired caller grow the map without bound, and the
// engines cannot produce any — a delivery implies a discoverable link, and
// the target is exactly the discoverable-link set.
//
//nd:hotpath
func (c *Coverage) Observe(l topology.Link, at float64) bool {
	if _, seen := c.first[l]; seen {
		return false
	}
	if !c.target[l] {
		c.nonTarget++
		return false
	}
	c.first[l] = at
	c.remaining--
	return true
}

// AddTarget grows the target set with link l, recording at as the link's
// birth time. It reports whether the link was new; re-adding a link already
// in the target (a link persisting across epochs) is a no-op, so the first
// epoch in which a link appears fixes its birth. Links added after being
// covered cannot occur in engine use — an engine only observes links it was
// already told exist — and are rejected as no-ops too.
func (c *Coverage) AddTarget(l topology.Link, at float64) bool {
	if c.target[l] {
		return false
	}
	c.target[l] = true
	c.remaining++
	if at != 0 {
		if c.born == nil {
			c.born = make(map[topology.Link]float64)
		}
		c.born[l] = at
	}
	return true
}

// BirthTime returns when link l entered the target set: the AddTarget time,
// or 0 for links in the initial (constructor) target. ok is false for links
// outside the target.
func (c *Coverage) BirthTime(l topology.Link) (float64, bool) {
	if !c.target[l] {
		return 0, false
	}
	return c.born[l], true
}

// Latencies returns the discovery latency — first-coverage time minus birth
// time — of every covered target link, sorted ascending. For static runs
// (all links born at 0) this is simply the sorted first-coverage times.
func (c *Coverage) Latencies() []float64 {
	out := make([]float64, 0, len(c.first))
	for l, at := range c.first {
		out = append(out, at-c.born[l])
	}
	sort.Float64s(out)
	return out
}

// NonTargetObservations returns how many observations fell outside the
// target link set. A non-zero count flags mis-wired instrumentation: the
// engines only observe links on which they delivered, which are always
// discoverable.
func (c *Coverage) NonTargetObservations() int { return c.nonTarget }

// Complete reports whether every target link has been covered.
func (c *Coverage) Complete() bool { return c.remaining == 0 }

// Remaining returns the number of uncovered target links.
func (c *Coverage) Remaining() int { return c.remaining }

// TargetSize returns the number of target links.
func (c *Coverage) TargetSize() int { return len(c.target) }

// Progress returns the covered fraction of the target in [0,1]; it is 1 for
// an empty target.
func (c *Coverage) Progress() float64 {
	if len(c.target) == 0 {
		return 1
	}
	return float64(len(c.target)-c.remaining) / float64(len(c.target))
}

// FirstCovered returns when link l was first covered. Only target links are
// ever recorded.
func (c *Coverage) FirstCovered(l topology.Link) (float64, bool) {
	at, ok := c.first[l]
	return at, ok
}

// CompletionTime returns the time at which the last target link was covered.
// It returns ok=false while incomplete. An empty target completes at time 0.
func (c *Coverage) CompletionTime() (float64, bool) {
	if !c.Complete() {
		return 0, false
	}
	maxAt := 0.0
	for l := range c.target {
		if at := c.first[l]; at > maxAt {
			maxAt = at
		}
	}
	return maxAt, true
}

// Uncovered returns the target links not yet covered, in deterministic
// order. Useful in failure diagnostics.
func (c *Coverage) Uncovered() []topology.Link {
	var out []topology.Link
	for l := range c.target {
		if _, ok := c.first[l]; !ok {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Curve returns the discovery progress curve as (time, covered-count) steps
// over target links, sorted by time. The curve starts implicitly at (−∞, 0);
// each point is the cumulative count at that coverage instant.
func (c *Coverage) Curve() []CurvePoint {
	times := make([]float64, 0, len(c.target))
	for l := range c.target {
		if at, ok := c.first[l]; ok {
			times = append(times, at)
		}
	}
	sort.Float64s(times)
	points := make([]CurvePoint, len(times))
	for i, at := range times {
		points[i] = CurvePoint{Time: at, Covered: i + 1}
	}
	return points
}

// CurvePoint is one step of a discovery progress curve.
type CurvePoint struct {
	Time    float64 `json:"time"`
	Covered int     `json:"covered"`
}

// String summarizes progress.
func (c *Coverage) String() string {
	return fmt.Sprintf("covered %d/%d links", len(c.target)-c.remaining, len(c.target))
}
