package metrics

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// compareCoverage asserts every observable of the two backings agrees.
// probe is the set of links worth asking point queries about (targets,
// non-targets, out-of-range).
func compareCoverage(t *testing.T, step string, dense, mapped *Coverage, probe []topology.Link) {
	t.Helper()
	if a, b := dense.Complete(), mapped.Complete(); a != b {
		t.Fatalf("%s: Complete %v vs %v", step, a, b)
	}
	if a, b := dense.Remaining(), mapped.Remaining(); a != b {
		t.Fatalf("%s: Remaining %d vs %d", step, a, b)
	}
	if a, b := dense.TargetSize(), mapped.TargetSize(); a != b {
		t.Fatalf("%s: TargetSize %d vs %d", step, a, b)
	}
	if a, b := dense.NonTargetObservations(), mapped.NonTargetObservations(); a != b {
		t.Fatalf("%s: NonTargetObservations %d vs %d", step, a, b)
	}
	if a, b := dense.Progress(), mapped.Progress(); a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
		t.Fatalf("%s: Progress %v vs %v", step, a, b)
	}
	if a, b := dense.String(), mapped.String(); a != b {
		t.Fatalf("%s: String %q vs %q", step, a, b)
	}
	if a, b := dense.Latencies(), mapped.Latencies(); !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: Latencies %v vs %v", step, a, b)
	}
	if a, b := dense.Uncovered(), mapped.Uncovered(); !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: Uncovered %v vs %v", step, a, b)
	}
	if a, b := dense.Curve(), mapped.Curve(); !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: Curve %v vs %v", step, a, b)
	}
	at1, ok1 := dense.CompletionTime()
	at2, ok2 := mapped.CompletionTime()
	if at1 != at2 || ok1 != ok2 {
		t.Fatalf("%s: CompletionTime (%v,%v) vs (%v,%v)", step, at1, ok1, at2, ok2)
	}
	for _, l := range probe {
		fa, foka := dense.FirstCovered(l)
		fb, fokb := mapped.FirstCovered(l)
		if fa != fb || foka != fokb {
			t.Fatalf("%s: FirstCovered(%v) (%v,%v) vs (%v,%v)", step, l, fa, foka, fb, fokb)
		}
		ba, boka := dense.BirthTime(l)
		bb, bokb := mapped.BirthTime(l)
		if ba != bb || boka != bokb {
			t.Fatalf("%s: BirthTime(%v) (%v,%v) vs (%v,%v)", step, l, ba, boka, bb, bokb)
		}
	}
}

// TestCoverageDenseMapEquivalence drives identical random operation streams
// through a dense-backed Coverage and a map-backed twin (same constructor
// target, migrated up-front) and requires every observable to agree after
// every operation. The stream mixes first and repeat observations, in- and
// out-of-target links, negative and over-range IDs, AddTarget growth with
// zero and non-zero birth times, and finally an out-of-range AddTarget that
// forces the dense side through its natural migration path.
func TestCoverageDenseMapEquivalence(t *testing.T) {
	root := rng.New(20260811)
	for trial := 0; trial < 50; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			const span = 12
			nLinks := r.IntN(20) + 1
			var links []topology.Link
			for i := 0; i < nLinks; i++ {
				links = append(links, topology.Link{
					From: topology.NodeID(r.IntN(span)),
					To:   topology.NodeID(r.IntN(span)),
				})
			}
			dense := NewCoverage(links)
			if dense.stride == 0 {
				t.Fatal("constructor did not pick the dense backing")
			}
			mapped := NewCoverage(links)
			mapped.migrate()
			if mapped.stride != 0 {
				t.Fatal("migrate left the twin dense")
			}

			probe := append([]topology.Link(nil), links...)
			probe = append(probe,
				topology.Link{From: -1, To: 0},
				topology.Link{From: 0, To: denseCoverageLimit + 5},
				topology.Link{From: span + 1, To: span + 2},
			)

			randomLink := func() topology.Link {
				switch r.IntN(10) {
				case 0:
					return topology.Link{From: -1, To: topology.NodeID(r.IntN(span))}
				case 1:
					return topology.Link{
						From: topology.NodeID(span + r.IntN(4)),
						To:   topology.NodeID(r.IntN(span)),
					}
				default:
					return topology.Link{
						From: topology.NodeID(r.IntN(span)),
						To:   topology.NodeID(r.IntN(span)),
					}
				}
			}

			ops := r.IntN(60) + 20
			for op := 0; op < ops; op++ {
				at := float64(op)
				if r.Bernoulli(0.2) {
					l := randomLink()
					birth := 0.0
					if r.Bernoulli(0.5) {
						birth = at
					}
					a := dense.AddTarget(l, birth)
					b := mapped.AddTarget(l, birth)
					if a != b {
						t.Fatalf("op %d: AddTarget(%v) %v vs %v", op, l, a, b)
					}
					probe = append(probe, l)
				} else {
					var l topology.Link
					if len(links) > 0 && r.Bernoulli(0.7) {
						l = links[r.IntN(len(links))]
					} else {
						l = randomLink()
					}
					a := dense.Observe(l, at)
					b := mapped.Observe(l, at)
					if a != b {
						t.Fatalf("op %d: Observe(%v) %v vs %v", op, l, a, b)
					}
				}
				compareCoverage(t, fmt.Sprintf("op %d", op), dense, mapped, probe)
			}

			// Out-of-range AddTarget: the dense side migrates, the map side
			// just grows. Equivalence must survive the transition and the
			// operations after it.
			big := topology.Link{From: denseCoverageLimit + 1, To: 0}
			if a, b := dense.AddTarget(big, 3.5), mapped.AddTarget(big, 3.5); a != b {
				t.Fatalf("big AddTarget %v vs %v", a, b)
			}
			if dense.stride != 0 {
				t.Fatal("out-of-range AddTarget did not migrate the dense backing")
			}
			probe = append(probe, big)
			compareCoverage(t, "post-migrate", dense, mapped, probe)
			for op := 0; op < 10; op++ {
				l := randomLink()
				if r.Bernoulli(0.3) {
					l = big
				}
				a := dense.Observe(l, 1000+float64(op))
				b := mapped.Observe(l, 1000+float64(op))
				if a != b {
					t.Fatalf("post-migrate op %d: Observe(%v) %v vs %v", op, l, a, b)
				}
				compareCoverage(t, fmt.Sprintf("post-migrate op %d", op), dense, mapped, probe)
			}
		})
	}
}

// TestCoverageDenseStrideSelection pins the backing-selection boundary:
// IDs strictly under denseCoverageLimit stay dense, anything at or past it
// (or negative) falls back to maps, and an empty target is map-backed.
func TestCoverageDenseStrideSelection(t *testing.T) {
	if c := NewCoverage(nil); c.stride != 0 {
		t.Error("empty target chose dense backing")
	}
	edge := topology.Link{From: denseCoverageLimit - 1, To: 0}
	if c := NewCoverage([]topology.Link{edge}); c.stride != denseCoverageLimit {
		t.Errorf("limit-1 ID: stride %d, want %d", c.stride, denseCoverageLimit)
	}
	over := topology.Link{From: denseCoverageLimit, To: 0}
	if c := NewCoverage([]topology.Link{over}); c.stride != 0 {
		t.Error("limit ID chose dense backing")
	}
	neg := topology.Link{From: -1, To: 0}
	if c := NewCoverage([]topology.Link{neg}); c.stride != 0 {
		t.Error("negative ID chose dense backing")
	}
}
