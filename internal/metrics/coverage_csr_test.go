package metrics

// Differential tests for the CSR coverage backing: large-ID sorted targets
// (Network.DiscoverableLinks order) must behave identically to the map
// backing under identical operation streams, including the migration an
// out-of-target AddTarget forces.

import (
	"fmt"
	"sort"
	"testing"

	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// sortedBigLinks draws a random strictly-ascending (From, To) link set with
// IDs past the dense limit, so NewCoverage selects the CSR backing.
func sortedBigLinks(r *rng.Source) []topology.Link {
	span := denseCoverageLimit * 4
	n := r.IntN(30) + 2
	seen := make(map[topology.Link]bool, n)
	var links []topology.Link
	for len(links) < n {
		l := topology.Link{
			From: topology.NodeID(r.IntN(span)),
			To:   topology.NodeID(r.IntN(span)),
		}
		if !seen[l] {
			seen[l] = true
			links = append(links, l)
		}
	}
	// Force at least one ID past the dense limit.
	links[0].From = topology.NodeID(denseCoverageLimit + r.IntN(span))
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	out := links[:1]
	for _, l := range links[1:] {
		if l != out[len(out)-1] {
			out = append(out, l)
		}
	}
	return out
}

// TestCoverageCSRMapEquivalence drives identical random operation streams
// through a CSR-backed Coverage and a map-backed twin and requires every
// observable to agree after every operation, including across the
// migration a novel AddTarget forces on the CSR side.
func TestCoverageCSRMapEquivalence(t *testing.T) {
	root := rng.New(20260814)
	for trial := 0; trial < 50; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			links := sortedBigLinks(r)
			csr := NewCoverage(links)
			if csr.csrTo == nil {
				t.Fatal("constructor did not pick the CSR backing")
			}
			mapped := NewCoverage(links)
			mapped.migrate()
			if mapped.csrTo != nil {
				t.Fatal("migrate left the twin on CSR")
			}

			probe := append([]topology.Link(nil), links...)
			probe = append(probe,
				topology.Link{From: -1, To: 0},
				topology.Link{From: links[len(links)-1].From + 7, To: 0},
			)
			randomLink := func() topology.Link {
				if r.Bernoulli(0.7) {
					return links[r.IntN(len(links))]
				}
				return topology.Link{
					From: topology.NodeID(r.IntN(denseCoverageLimit * 5)),
					To:   topology.NodeID(r.IntN(denseCoverageLimit * 5)),
				}
			}

			ops := r.IntN(60) + 20
			for op := 0; op < ops; op++ {
				at := float64(op)
				if r.Bernoulli(0.1) {
					// Re-adding an existing target link must be a no-op that
					// does NOT migrate the CSR side.
					l := links[r.IntN(len(links))]
					a := csr.AddTarget(l, at)
					b := mapped.AddTarget(l, at)
					if a || b {
						t.Fatalf("op %d: re-AddTarget(%v) %v/%v", op, l, a, b)
					}
					if csr.csrTo == nil {
						t.Fatalf("op %d: re-AddTarget migrated the CSR backing", op)
					}
				} else {
					l := randomLink()
					a := csr.Observe(l, at)
					b := mapped.Observe(l, at)
					if a != b {
						t.Fatalf("op %d: Observe(%v) %v vs %v", op, l, a, b)
					}
				}
				compareCoverage(t, fmt.Sprintf("op %d", op), csr, mapped, probe)
			}

			// A link outside the fixed target migrates the CSR side; the map
			// side just grows. Equivalence must survive the transition.
			novel := topology.Link{From: links[len(links)-1].From + 11, To: 3}
			if a, b := csr.AddTarget(novel, 2.5), mapped.AddTarget(novel, 2.5); a != b {
				t.Fatalf("novel AddTarget %v vs %v", a, b)
			}
			if csr.csrTo != nil {
				t.Fatal("novel AddTarget did not migrate the CSR backing")
			}
			probe = append(probe, novel)
			compareCoverage(t, "post-migrate", csr, mapped, probe)
			for op := 0; op < 10; op++ {
				l := randomLink()
				if r.Bernoulli(0.3) {
					l = novel
				}
				a := csr.Observe(l, 1000+float64(op))
				b := mapped.Observe(l, 1000+float64(op))
				if a != b {
					t.Fatalf("post-migrate op %d: Observe(%v) %v vs %v", op, l, a, b)
				}
				compareCoverage(t, fmt.Sprintf("post-migrate op %d", op), csr, mapped, probe)
			}
		})
	}
}

// TestCoverageCSRSelection pins the backing-selection rules: sorted
// large-ID targets go CSR; unsorted, duplicated or negative input falls
// back to maps; small-ID targets stay dense.
func TestCoverageCSRSelection(t *testing.T) {
	big := topology.NodeID(denseCoverageLimit + 1)
	if c := NewCoverage([]topology.Link{{From: big, To: 0}, {From: big, To: 2}}); c.csrTo == nil {
		t.Error("sorted large-ID target did not choose the CSR backing")
	}
	if c := NewCoverage([]topology.Link{{From: big, To: 2}, {From: big, To: 0}}); c.csrTo != nil {
		t.Error("unsorted target chose the CSR backing")
	}
	if c := NewCoverage([]topology.Link{{From: big, To: 2}, {From: big, To: 2}}); c.csrTo != nil {
		t.Error("duplicated target chose the CSR backing")
	}
	if c := NewCoverage([]topology.Link{{From: big, To: -2}}); c.csrTo != nil {
		t.Error("negative-ID target chose the CSR backing")
	}
	if c := NewCoverage([]topology.Link{{From: 1, To: 2}}); c.csrTo != nil || c.stride == 0 {
		t.Error("small-ID target left the dense backing")
	}
	// The CSR row table is sized by From IDs, not by links: a sparse huge-ID
	// target must not allocate quadratically.
	far := topology.NodeID(1 << 20)
	c := NewCoverage([]topology.Link{{From: far, To: 1}, {From: far, To: 2}})
	if c.csrTo == nil {
		t.Fatal("huge-ID target did not choose the CSR backing")
	}
	if len(c.csrOff) != int(far)+2 || len(c.csrTo) != 2 {
		t.Errorf("CSR sizes: off %d, to %d", len(c.csrOff), len(c.csrTo))
	}
}

// TestCoverageCSRObserveAllocs pins the per-delivery hot path: observing
// target links on the CSR backing allocates nothing.
func TestCoverageCSRObserveAllocs(t *testing.T) {
	links := []topology.Link{
		{From: denseCoverageLimit + 1, To: 4},
		{From: denseCoverageLimit + 1, To: 9},
		{From: denseCoverageLimit + 3, To: 4},
	}
	c := NewCoverage(links)
	if c.csrTo == nil {
		t.Fatal("target did not choose the CSR backing")
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, l := range links {
			c.Observe(l, 1)
		}
	})
	if allocs != 0 {
		t.Errorf("CSR Observe allocated %.1f objects per sweep", allocs)
	}
}
