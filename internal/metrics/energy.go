package metrics

import (
	"fmt"

	"m2hew/internal/radio"
)

// EnergyMeter tallies per-node radio activity over a synchronous run. The
// neighbor-discovery literature the paper builds on (birthday protocols)
// is energy-motivated: a radio burns power whenever it transmits or
// listens, so the interesting quantity is the duty cycle — the fraction of
// slots the transceiver was on. Attach it to a run with
// sim.EnergyObserver.
type EnergyMeter struct {
	tx         []int
	rx         []int
	quiet      []int
	mismatched int // actions dropped because the meter was sized too small
}

// NewEnergyMeter returns a meter for n nodes.
func NewEnergyMeter(n int) (*EnergyMeter, error) {
	if n <= 0 {
		return nil, fmt.Errorf("metrics: energy meter for %d nodes", n)
	}
	return &EnergyMeter{
		tx:    make([]int, n),
		rx:    make([]int, n),
		quiet: make([]int, n),
	}, nil
}

// ObserveSlot records one slot's actions; sim.EnergyObserver feeds it from
// the engine's slot events. A meter sized for fewer nodes than the run
// cannot attribute the excess actions; instead of silently dropping them
// (which made per-node tallies quietly wrong with no signal), it tallies
// the drop count, which Mismatched exposes for audits.
//
//nd:hotpath
func (m *EnergyMeter) ObserveSlot(_ int, actions []radio.Action) {
	n := len(actions)
	if n > len(m.tx) {
		m.mismatched += n - len(m.tx)
		n = len(m.tx)
	}
	for u := 0; u < n; u++ {
		switch actions[u].Mode {
		case radio.Transmit:
			m.tx[u]++
		case radio.Receive:
			m.rx[u]++
		default:
			m.quiet[u]++
		}
	}
}

// Mismatched returns the number of per-node actions ObserveSlot dropped
// because the meter was built for fewer nodes than the run has. Zero in any
// correctly wired run; non-zero pinpoints a meter/run size mismatch.
func (m *EnergyMeter) Mismatched() int { return m.mismatched }

// Tx returns node u's transmit-slot count.
func (m *EnergyMeter) Tx(u int) int { return m.tx[u] }

// Rx returns node u's receive-slot count.
func (m *EnergyMeter) Rx(u int) int { return m.rx[u] }

// Quiet returns node u's quiet-slot count.
func (m *EnergyMeter) Quiet(u int) int { return m.quiet[u] }

// Active returns node u's radio-on slot count (transmit + receive).
func (m *EnergyMeter) Active(u int) int { return m.tx[u] + m.rx[u] }

// DutyCycle returns the fraction of node u's observed slots with the radio
// on; 0 if nothing was observed.
func (m *EnergyMeter) DutyCycle(u int) float64 {
	total := m.tx[u] + m.rx[u] + m.quiet[u]
	if total == 0 {
		return 0
	}
	return float64(m.tx[u]+m.rx[u]) / float64(total)
}

// TotalActive returns the network-wide radio-on slot count — the energy
// proxy experiments report.
func (m *EnergyMeter) TotalActive() int {
	total := 0
	for u := range m.tx {
		total += m.tx[u] + m.rx[u]
	}
	return total
}

// MeanDutyCycle returns the average duty cycle over all nodes.
func (m *EnergyMeter) MeanDutyCycle() float64 {
	var sum float64
	for u := range m.tx {
		sum += m.DutyCycle(u)
	}
	return sum / float64(len(m.tx))
}
