package metrics

import (
	"math"
	"testing"

	"m2hew/internal/radio"
)

func TestEnergyMeterValidation(t *testing.T) {
	if _, err := NewEnergyMeter(0); err == nil {
		t.Fatal("0-node meter accepted")
	}
	if _, err := NewEnergyMeter(-1); err == nil {
		t.Fatal("negative meter accepted")
	}
}

func TestEnergyMeterCounts(t *testing.T) {
	m, err := NewEnergyMeter(3)
	if err != nil {
		t.Fatal(err)
	}
	slot := []radio.Action{
		{Mode: radio.Transmit, Channel: 0},
		{Mode: radio.Receive, Channel: 1},
		{Mode: radio.Quiet},
	}
	for i := 0; i < 4; i++ {
		m.ObserveSlot(i, slot)
	}
	if m.Tx(0) != 4 || m.Rx(0) != 0 || m.Quiet(0) != 0 {
		t.Fatalf("node 0 counts: tx=%d rx=%d quiet=%d", m.Tx(0), m.Rx(0), m.Quiet(0))
	}
	if m.Rx(1) != 4 || m.Quiet(2) != 4 {
		t.Fatal("node 1/2 counts wrong")
	}
	if m.Active(0) != 4 || m.Active(2) != 0 {
		t.Fatal("active counts wrong")
	}
	if m.DutyCycle(0) != 1 || m.DutyCycle(2) != 0 {
		t.Fatalf("duty cycles: %v %v", m.DutyCycle(0), m.DutyCycle(2))
	}
	if m.TotalActive() != 8 {
		t.Fatalf("TotalActive = %d, want 8", m.TotalActive())
	}
	if want := (1.0 + 1.0 + 0) / 3; math.Abs(m.MeanDutyCycle()-want) > 1e-12 {
		t.Fatalf("MeanDutyCycle = %v, want %v", m.MeanDutyCycle(), want)
	}
}

func TestEnergyMeterEmptyDutyCycle(t *testing.T) {
	m, err := NewEnergyMeter(1)
	if err != nil {
		t.Fatal(err)
	}
	if m.DutyCycle(0) != 0 {
		t.Fatal("unobserved duty cycle not 0")
	}
}

func TestEnergyMeterOversizedSlotIgnored(t *testing.T) {
	m, err := NewEnergyMeter(1)
	if err != nil {
		t.Fatal(err)
	}
	// Observation with more actions than nodes must not panic, must still
	// account the nodes the meter does cover, and must surface the drop
	// instead of losing it silently.
	m.ObserveSlot(0, []radio.Action{
		{Mode: radio.Transmit}, {Mode: radio.Receive},
	})
	if m.Tx(0) != 1 {
		t.Fatalf("Tx(0) = %d", m.Tx(0))
	}
	if got := m.Mismatched(); got != 1 {
		t.Fatalf("Mismatched = %d, want 1", got)
	}
	// The counter accumulates across slots; matched slots leave it alone.
	m.ObserveSlot(1, []radio.Action{
		{Mode: radio.Quiet}, {Mode: radio.Receive}, {Mode: radio.Transmit},
	})
	m.ObserveSlot(2, []radio.Action{{Mode: radio.Receive}})
	if got := m.Mismatched(); got != 3 {
		t.Fatalf("Mismatched = %d, want 3", got)
	}
	if m.Quiet(0) != 1 || m.Rx(0) != 1 {
		t.Fatalf("quiet=%d rx=%d, want 1/1", m.Quiet(0), m.Rx(0))
	}
}
