package metrics

import (
	"math"
	"testing"

	"m2hew/internal/topology"
)

func links(pairs ...[2]int) []topology.Link {
	out := make([]topology.Link, len(pairs))
	for i, p := range pairs {
		out[i] = topology.Link{From: topology.NodeID(p[0]), To: topology.NodeID(p[1])}
	}
	return out
}

func TestCoverageLifecycle(t *testing.T) {
	c := NewCoverage(links([2]int{0, 1}, [2]int{1, 0}))
	if c.Complete() || c.Remaining() != 2 || c.TargetSize() != 2 {
		t.Fatal("fresh coverage state wrong")
	}
	if c.Progress() != 0 {
		t.Fatalf("fresh progress %v", c.Progress())
	}
	if !c.Observe(topology.Link{From: 0, To: 1}, 5) {
		t.Fatal("first observation not reported new")
	}
	if c.Observe(topology.Link{From: 0, To: 1}, 9) {
		t.Fatal("repeat observation reported new")
	}
	if at, ok := c.FirstCovered(topology.Link{From: 0, To: 1}); !ok || at != 5 {
		t.Fatalf("FirstCovered = %v,%v; want 5,true", at, ok)
	}
	if c.Progress() != 0.5 {
		t.Fatalf("progress %v, want 0.5", c.Progress())
	}
	if _, ok := c.CompletionTime(); ok {
		t.Fatal("incomplete coverage reported completion time")
	}
	unc := c.Uncovered()
	if len(unc) != 1 || unc[0] != (topology.Link{From: 1, To: 0}) {
		t.Fatalf("Uncovered = %v", unc)
	}
	c.Observe(topology.Link{From: 1, To: 0}, 11)
	if !c.Complete() {
		t.Fatal("coverage not complete")
	}
	at, ok := c.CompletionTime()
	if !ok || at != 11 {
		t.Fatalf("CompletionTime = %v,%v; want 11,true", at, ok)
	}
}

func TestCoverageNonTargetObservation(t *testing.T) {
	c := NewCoverage(links([2]int{0, 1}))
	if c.Observe(topology.Link{From: 5, To: 6}, 1) {
		t.Fatal("non-target observation reported as target coverage")
	}
	if c.Complete() {
		t.Fatal("non-target observation completed coverage")
	}
	// Counted, never stored: a mis-wired caller repeating junk links must
	// not grow the coverage state.
	if _, ok := c.FirstCovered(topology.Link{From: 5, To: 6}); ok {
		t.Fatal("non-target observation was stored")
	}
	c.Observe(topology.Link{From: 5, To: 6}, 2)
	if got := c.NonTargetObservations(); got != 2 {
		t.Fatalf("NonTargetObservations = %d, want 2", got)
	}
	// Target coverage is unaffected by the junk.
	if !c.Observe(topology.Link{From: 0, To: 1}, 3) {
		t.Fatal("target observation not reported as first coverage")
	}
	if !c.Complete() {
		t.Fatal("coverage incomplete after covering the whole target")
	}
}

func TestCoverageEmptyTarget(t *testing.T) {
	c := NewCoverage(nil)
	if !c.Complete() {
		t.Fatal("empty target not complete")
	}
	if c.Progress() != 1 {
		t.Fatalf("empty target progress %v", c.Progress())
	}
	at, ok := c.CompletionTime()
	if !ok || at != 0 {
		t.Fatalf("empty target completion %v,%v", at, ok)
	}
}

func TestCoverageCurve(t *testing.T) {
	c := NewCoverage(links([2]int{0, 1}, [2]int{1, 0}, [2]int{1, 2}))
	c.Observe(topology.Link{From: 1, To: 0}, 7)
	c.Observe(topology.Link{From: 0, To: 1}, 3)
	curve := c.Curve()
	if len(curve) != 2 {
		t.Fatalf("curve has %d points, want 2", len(curve))
	}
	if curve[0] != (CurvePoint{Time: 3, Covered: 1}) || curve[1] != (CurvePoint{Time: 7, Covered: 2}) {
		t.Fatalf("curve = %v", curve)
	}
	if c.String() == "" {
		t.Fatal("empty String")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Fatalf("mean %v", s.Mean)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Fatalf("median %v", s.Median)
	}
	wantSd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(s.Stddev-wantSd) > 1e-12 {
		t.Fatalf("stddev %v, want %v", s.Stddev, wantSd)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Mean != 42 || s.Median != 42 || s.P95 != 42 || s.Stddev != 0 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40, 50}
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {1, 50}, {0.5, 30}, {0.25, 20}, {0.1, 14},
	}
	for _, tt := range cases {
		if got := Quantile(sorted, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { Quantile(nil, 0.5) },
		"negative": func() { Quantile([]float64{1}, -0.1) },
		"above1":   func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFractionWithin(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if got := FractionWithin(vals, 2.5); got != 0.5 {
		t.Fatalf("FractionWithin = %v, want 0.5", got)
	}
	if got := FractionWithin(vals, 0); got != 0 {
		t.Fatalf("FractionWithin(0) = %v", got)
	}
	if got := FractionWithin(vals, 10); got != 1 {
		t.Fatalf("FractionWithin(10) = %v", got)
	}
	if got := FractionWithin(nil, 1); got != 0 {
		t.Fatalf("FractionWithin(nil) = %v", got)
	}
	// Boundary is inclusive.
	if got := FractionWithin(vals, 4); got != 1 {
		t.Fatalf("inclusive bound: %v", got)
	}
}

func TestWilsonInterval(t *testing.T) {
	// 95% interval for 18/20 successes: known value ≈ (0.699, 0.972).
	lo, hi := WilsonInterval(18, 20, 1.96)
	if math.Abs(lo-0.6989) > 0.01 || math.Abs(hi-0.9721) > 0.01 {
		t.Fatalf("Wilson(18/20) = (%v, %v)", lo, hi)
	}
	// Certainty cases stay inside [0,1].
	lo, hi = WilsonInterval(20, 20, 1.96)
	if lo < 0.80 || hi != 1 {
		t.Fatalf("Wilson(20/20) = (%v, %v)", lo, hi)
	}
	lo, hi = WilsonInterval(0, 20, 1.96)
	if lo != 0 || hi > 0.2 {
		t.Fatalf("Wilson(0/20) = (%v, %v)", lo, hi)
	}
	// Degenerate n.
	lo, hi = WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0/0) = (%v, %v)", lo, hi)
	}
	// Interval shrinks with n.
	lo1, hi1 := WilsonInterval(9, 10, 1.96)
	lo2, hi2 := WilsonInterval(90, 100, 1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Fatal("interval did not shrink with sample size")
	}
}

func TestWilsonIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid successes did not panic")
		}
	}()
	WilsonInterval(5, 3, 1.96)
}
