package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds order statistics of a sample of trial measurements.
type Summary struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	P95    float64 `json:"p95"`
	Max    float64 `json:"max"`
}

// Summarize computes order statistics of values. A nil or empty input yields
// a zero Summary.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // floating point guard
	}
	return Summary{
		Count:  len(sorted),
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		Min:    sorted[0],
		Median: Quantile(sorted, 0.5),
		P90:    Quantile(sorted, 0.9),
		P95:    Quantile(sorted, 0.95),
		Max:    sorted[len(sorted)-1],
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted sample
// using linear interpolation between closest ranks. It panics on an empty
// sample or out-of-range q — both indicate harness bugs.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("metrics: quantile of empty sample")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("metrics: quantile %v outside [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FractionWithin returns the fraction of values that are ≤ bound: the
// empirical success rate at an analytic bound. An empty sample returns 0.
func FractionWithin(values []float64, bound float64) float64 {
	if len(values) == 0 {
		return 0
	}
	within := 0
	for _, v := range values {
		if v <= bound {
			within++
		}
	}
	return float64(within) / float64(len(values))
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%.1f med=%.1f p95=%.1f max=%.1f",
		s.Count, s.Mean, s.Stddev, s.Min, s.Median, s.P95, s.Max)
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion: successes out of n trials at confidence level given
// by the normal quantile z (1.96 for 95%). Experiment tables report raw
// success rates; this interval is what a reader should attach to them given
// the finite trial counts. It returns (0,1) degenerately for n = 0.
func WilsonInterval(successes, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	if successes < 0 || successes > n {
		panic(fmt.Sprintf("metrics: wilson interval with %d successes of %d", successes, n))
	}
	p := float64(successes) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
