package metrics

import (
	"math"
	"testing"
)

// TestQuantileSingleSample pins the degenerate-sample contract: every
// quantile of a one-element sample is that element, with no interpolation
// index arithmetic to go wrong at the edges.
func TestQuantileSingleSample(t *testing.T) {
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 1} {
		if got := Quantile([]float64{7.5}, q); got != 7.5 {
			t.Errorf("Quantile(single, %v) = %v, want 7.5", q, got)
		}
	}
}

// TestQuantileAllEqual checks a constant sample: interpolation between
// equal neighbors must return exactly the constant (no floating-point
// drift from the lo/hi blend), at every quantile.
func TestQuantileAllEqual(t *testing.T) {
	sorted := []float64{3, 3, 3, 3, 3}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.95, 1} {
		if got := Quantile(sorted, q); got != 3 {
			t.Errorf("Quantile(const, %v) = %v, want exactly 3", q, got)
		}
	}
}

func TestQuantileNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Quantile(NaN) did not panic")
		}
	}()
	Quantile([]float64{1, 2}, math.NaN())
}

// TestSummarizeAllEqual: a constant sample has zero spread; the variance
// guard must clamp the catastrophic-cancellation residue to exactly 0.
func TestSummarizeAllEqual(t *testing.T) {
	s := Summarize([]float64{5, 5, 5, 5})
	if s.Count != 4 || s.Mean != 5 || s.Stddev != 0 {
		t.Errorf("Summarize(const) = %+v, want count 4 mean 5 stddev 0", s)
	}
	if s.Min != 5 || s.Median != 5 || s.P90 != 5 || s.P95 != 5 || s.Max != 5 {
		t.Errorf("Summarize(const) order stats = %+v, want all 5", s)
	}
}
