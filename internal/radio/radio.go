// Package radio defines the vocabulary shared by the simulation engines and
// the discovery protocols: transceiver modes, per-slot and per-frame
// actions, and the discovery message.
//
// The model follows the paper's Section II exactly. A transceiver operates
// on a single channel at a time, cannot transmit and receive simultaneously
// (half duplex), and in each time unit is in one of three modes: transmit on
// a channel, receive on a channel, or quiet (shut off). Nodes cannot detect
// collisions: a listener that hears two overlapping transmissions from its
// neighbors observes only noise, indistinguishable from background noise.
package radio

import (
	"fmt"

	"m2hew/internal/channel"
	"m2hew/internal/topology"
)

// Mode is the transceiver mode for one slot (synchronous) or one frame
// (asynchronous).
type Mode int

// Transceiver modes. Quiet is deliberately the zero-adjacent first value so
// an unset Action is invalid rather than silently quiet.
const (
	// Transmit sends on the action's channel.
	Transmit Mode = iota + 1
	// Receive listens on the action's channel.
	Receive
	// Quiet turns the transceiver off. The paper's algorithms never choose
	// it, but the engines use it for nodes that have not started yet.
	Quiet
)

// String renders the mode for traces.
func (m Mode) String() string {
	switch m {
	case Transmit:
		return "tx"
	case Receive:
		return "rx"
	case Quiet:
		return "quiet"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Valid reports whether m is a defined mode.
func (m Mode) Valid() bool {
	return m == Transmit || m == Receive || m == Quiet
}

// Action is one slot or frame decision of a protocol: which channel to tune
// to and whether to transmit or listen on it. For Quiet the channel is
// ignored.
type Action struct {
	Mode    Mode
	Channel channel.ID
}

// Validate reports an invalid action. It checks the mode is defined and, for
// non-quiet modes, that the channel belongs to avail — a protocol choosing a
// channel outside its available set is a bug the engines refuse to simulate.
func (a Action) Validate(avail channel.Set) error {
	if !a.Mode.Valid() {
		return fmt.Errorf("radio: invalid mode %d", int(a.Mode))
	}
	if a.Mode == Quiet {
		return nil
	}
	if !avail.Contains(a.Channel) {
		return fmt.Errorf("radio: action %v on channel %d outside available set %v", a.Mode, a.Channel, avail)
	}
	return nil
}

// String renders the action for traces.
func (a Action) String() string {
	if a.Mode == Quiet {
		return "quiet"
	}
	return fmt.Sprintf("%s@%d", a.Mode, a.Channel)
}

// Message is the discovery message of the paper's algorithms: the sender's
// identity and its available channel set A(v). The engine constructs it at
// delivery time; the receiving protocol stores ⟨v, A(v) ∩ A(u)⟩.
type Message struct {
	From topology.NodeID
	// Avail is A(v), the sender's available channel set. It is a read-only
	// view shared by every message from the same sender within a run;
	// receivers must not modify it (Clone first to mutate). Deriving new
	// sets from it (Intersect, Union, …) is safe.
	Avail channel.Set
	// Heard optionally piggybacks the sender's currently discovered
	// in-neighbors — the acknowledgment extension for asymmetric graphs: a
	// receiver finding its own ID here learns that its transmissions reach
	// the sender. Nil when the sending protocol does not report a heard
	// list (the paper's plain algorithms). Engines snapshot the sender's
	// list at delivery time, so the slice is owned by this message and
	// stays valid even as the sender keeps discovering.
	Heard []topology.NodeID
}
