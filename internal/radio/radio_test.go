package radio

import (
	"testing"

	"m2hew/internal/channel"
)

func TestModeString(t *testing.T) {
	cases := []struct {
		m    Mode
		want string
	}{
		{Transmit, "tx"},
		{Receive, "rx"},
		{Quiet, "quiet"},
		{Mode(0), "Mode(0)"},
		{Mode(9), "Mode(9)"},
	}
	for _, tt := range cases {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(tt.m), got, tt.want)
		}
	}
}

func TestModeValid(t *testing.T) {
	for _, m := range []Mode{Transmit, Receive, Quiet} {
		if !m.Valid() {
			t.Errorf("mode %v invalid", m)
		}
	}
	if Mode(0).Valid() || Mode(4).Valid() {
		t.Error("undefined modes reported valid")
	}
}

func TestActionValidate(t *testing.T) {
	avail := channel.NewSet(1, 3)
	cases := []struct {
		name    string
		action  Action
		wantErr bool
	}{
		{"tx on available", Action{Mode: Transmit, Channel: 1}, false},
		{"rx on available", Action{Mode: Receive, Channel: 3}, false},
		{"tx outside set", Action{Mode: Transmit, Channel: 2}, true},
		{"rx outside set", Action{Mode: Receive, Channel: 0}, true},
		{"quiet ignores channel", Action{Mode: Quiet, Channel: 99}, false},
		{"zero mode", Action{}, true},
	}
	for _, tt := range cases {
		err := tt.action.Validate(avail)
		if (err != nil) != tt.wantErr {
			t.Errorf("%s: Validate = %v, wantErr=%v", tt.name, err, tt.wantErr)
		}
	}
}

func TestActionString(t *testing.T) {
	if got := (Action{Mode: Transmit, Channel: 5}).String(); got != "tx@5" {
		t.Errorf("String = %q", got)
	}
	if got := (Action{Mode: Quiet, Channel: 5}).String(); got != "quiet" {
		t.Errorf("quiet String = %q", got)
	}
}
