// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: a single
// 64-bit seed must determine an entire multi-node, multi-trial simulation.
// The package therefore implements its own xoshiro256** generator (public
// domain algorithm by Blackman and Vigna) seeded through SplitMix64, rather
// than relying on math/rand whose stream layout is not guaranteed across Go
// releases. Source streams are cheap to fork: each node of a simulated
// network owns an independent stream derived from the run seed, so changing
// the behaviour of one node never perturbs the random choices of another.
package rng

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** pseudo-random generator.
// It is not safe for concurrent use; fork independent streams with Split.
type Source struct {
	s [4]uint64
}

// ErrEmptyRange reports an invalid request for a random value from an empty
// range, e.g. IntN(0).
var ErrEmptyRange = errors.New("rng: empty range")

// splitMix64 advances a SplitMix64 state and returns the next output.
// It is used to expand seeds into full xoshiro states.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
// Distinct seeds yield (with overwhelming probability) non-overlapping,
// uncorrelated streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the source to the stream determined by seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// A theoretically possible all-zero state would lock the generator.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Split forks an independent child stream. The child is seeded from the
// parent's output, so calling Split repeatedly yields a deterministic family
// of pairwise-independent streams. The parent advances by two outputs.
func (r *Source) Split() *Source {
	a := r.Uint64()
	b := r.Uint64()
	child := New(a ^ bits.RotateLeft64(b, 32))
	return child
}

// SplitN forks n independent child streams.
func (r *Source) SplitN(n int) []*Source {
	children := make([]*Source, n)
	for i := range children {
		children[i] = r.Split()
	}
	return children
}

// Uint64N returns a uniform value in [0, n). It panics if n == 0 since that
// indicates a programming error rather than a runtime condition.
func (r *Source) Uint64N(n uint64) uint64 {
	if n == 0 {
		panic(ErrEmptyRange)
	}
	// Lemire's nearly-divisionless unbiased bounded generation.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) IntN(n int) int {
	if n <= 0 {
		panic(fmt.Errorf("rng: IntN(%d): %w", n, ErrEmptyRange))
	}
	return int(r.Uint64N(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p. Values of p outside [0,1] are
// clamped, matching the saturating semantics of probabilities such as
// min(1/2, |A(u)|/2^i) used throughout the discovery algorithms.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with rate lambda.
// It panics if lambda <= 0.
func (r *Source) ExpFloat64(lambda float64) float64 {
	if lambda <= 0 {
		panic(fmt.Errorf("rng: ExpFloat64 rate %v must be positive", lambda))
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

// NormFloat64 returns a standard normally distributed value using the polar
// Box-Muller transform.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// UniformFloat64 returns a uniform value in [lo, hi). It panics if hi < lo.
func (r *Source) UniformFloat64(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Errorf("rng: UniformFloat64 bounds inverted: [%v, %v)", lo, hi))
	}
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.IntN(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, via a Fisher-Yates shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		swap(i, j)
	}
}

// PickOne returns a uniformly selected index in [0, n), or an error if n <= 0.
// It is the error-returning counterpart of IntN for call sites where an empty
// range is a data condition (e.g. empty available channel set) rather than a
// bug.
func (r *Source) PickOne(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("rng: pick from %d elements: %w", n, ErrEmptyRange)
	}
	return r.IntN(n), nil
}

// jumpPoly is the xoshiro256** jump polynomial: applying Jump advances the
// state by 2^128 steps, yielding a stream guaranteed not to overlap the
// parent's next 2^128 outputs (Blackman & Vigna's published constants).
var jumpPoly = [4]uint64{
	0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
	0xa9582618e03fc9aa, 0x39abdc4529b1661c,
}

// Jump advances the source by 2^128 steps in-place. Use it to partition one
// seeded stream into provably non-overlapping sections (Split gives
// statistical independence; Jump gives a structural guarantee).
func (r *Source) Jump() {
	var s [4]uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s[0] ^= r.s[0]
				s[1] ^= r.s[1]
				s[2] ^= r.s[2]
				s[3] ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = s
}

// JumpedCopy returns a new source 2^128 steps ahead of r, leaving r itself
// advanced past the jump as well (both now produce non-overlapping output
// relative to the original position).
func (r *Source) JumpedCopy() *Source {
	child := &Source{s: r.s}
	child.Jump()
	return child
}
