package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("output %d diverged: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for different seeds collided %d/1000 times", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestZeroSeedNotStuck(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	a := parent.Split()
	b := parent.Split()
	collisions := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("sibling streams collided %d/1000 times", collisions)
	}
}

func TestSplitDeterministic(t *testing.T) {
	p1 := New(5)
	p2 := New(5)
	c1 := p1.Split()
	c2 := p2.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestSplitN(t *testing.T) {
	r := New(3)
	kids := r.SplitN(10)
	if len(kids) != 10 {
		t.Fatalf("SplitN(10) returned %d sources", len(kids))
	}
	// All children must produce distinct first outputs.
	seen := make(map[uint64]bool)
	for _, k := range kids {
		seen[k.Uint64()] = true
	}
	if len(seen) != 10 {
		t.Fatalf("children produced only %d distinct first outputs", len(seen))
	}
}

func TestUint64NInRange(t *testing.T) {
	r := New(11)
	err := quick.Check(func(n uint64) bool {
		n = n%1000 + 1
		v := r.Uint64N(n)
		return v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint64NZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64N(0) did not panic")
		}
	}()
	New(1).Uint64N(0)
}

func TestIntNNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(-1) did not panic")
		}
	}()
	New(1).IntN(-1)
}

func TestIntNUniformity(t *testing.T) {
	// Chi-squared style sanity check: over 10 buckets and 100k draws each
	// bucket should hold close to 10k.
	r := New(123)
	const draws = 100000
	counts := make([]int, 10)
	for i := 0; i < draws; i++ {
		counts[r.IntN(10)]++
	}
	for b, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("bucket %d holds %d draws, want ~10000", b, c)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 returned %v outside [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(19)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(29)
	const n = 100000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		freq := float64(hits) / n
		if math.Abs(freq-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency %v", p, freq)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(31)
	const n = 200000
	lambda := 2.0
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(lambda)
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Fatalf("ExpFloat64(2) mean %v, want ~0.5", mean)
	}
}

func TestExpFloat64BadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExpFloat64(0) did not panic")
		}
	}()
	New(1).ExpFloat64(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(37)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestUniformFloat64(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		v := r.UniformFloat64(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("UniformFloat64(-3,5) = %v out of range", v)
		}
	}
	// Degenerate range returns lo.
	if v := r.UniformFloat64(2, 2); v != 2 {
		t.Fatalf("UniformFloat64(2,2) = %v, want 2", v)
	}
}

func TestUniformFloat64InvertedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted bounds did not panic")
		}
	}()
	New(1).UniformFloat64(5, 3)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(43)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPermZero(t *testing.T) {
	if p := New(1).Perm(0); len(p) != 0 {
		t.Fatalf("Perm(0) = %v, want empty", p)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(47)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestShuffleActuallyShuffles(t *testing.T) {
	r := New(53)
	const n = 100
	orig := make([]int, n)
	xs := make([]int, n)
	for i := range xs {
		orig[i] = i
		xs[i] = i
	}
	r.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	same := 0
	for i := range xs {
		if xs[i] == orig[i] {
			same++
		}
	}
	if same > n/2 {
		t.Fatalf("%d/%d elements fixed after shuffle; not shuffled", same, n)
	}
}

func TestPickOne(t *testing.T) {
	r := New(59)
	if _, err := r.PickOne(0); err == nil {
		t.Fatal("PickOne(0) returned nil error")
	}
	if _, err := r.PickOne(-3); err == nil {
		t.Fatal("PickOne(-3) returned nil error")
	}
	for i := 0; i < 100; i++ {
		v, err := r.PickOne(4)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v >= 4 {
			t.Fatalf("PickOne(4) = %d out of range", v)
		}
	}
}

func TestUint64NUnbiasedSmallRange(t *testing.T) {
	// n=3 exposes modulo bias if bounded generation is naive.
	r := New(61)
	const draws = 300000
	counts := make([]int, 3)
	for i := 0; i < draws; i++ {
		counts[r.Uint64N(3)]++
	}
	want := draws / 3
	for b, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/50 {
			t.Errorf("bucket %d holds %d, want ~%d", b, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntN(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.IntN(17)
	}
}

func BenchmarkBernoulli(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Bernoulli(0.3)
	}
}

func TestJumpChangesStateDeterministically(t *testing.T) {
	a := New(7)
	b := New(7)
	a.Jump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Jump is not deterministic")
		}
	}
	c := New(7)
	jumped := New(7)
	jumped.Jump()
	same := 0
	for i := 0; i < 1000; i++ {
		if c.Uint64() == jumped.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("jumped stream collided with original %d/1000 times", same)
	}
}

func TestJumpedCopy(t *testing.T) {
	r := New(9)
	child := r.JumpedCopy()
	collisions := 0
	for i := 0; i < 1000; i++ {
		if r.Uint64() == child.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("parent and jumped child collided %d/1000 times", collisions)
	}
}
