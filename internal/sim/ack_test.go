package sim

import (
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/core"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// wrapAck builds Algorithm 3 wrapped with the acknowledgment extension for
// every node of nw.
func wrapAck(t *testing.T, nw *topology.Network, deltaEst int, seed uint64) ([]SyncProtocol, []*core.Acknowledging) {
	t.Helper()
	root := rng.New(seed)
	protos := make([]SyncProtocol, nw.N())
	wrappers := make([]*core.Acknowledging, nw.N())
	for u := 0; u < nw.N(); u++ {
		inner, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		w, err := core.NewAcknowledging(topology.NodeID(u), inner)
		if err != nil {
			t.Fatal(err)
		}
		protos[u] = w
		wrappers[u] = w
	}
	return protos, wrappers
}

func TestAckSymmetricPairConfirmsBothWays(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	protos, wrappers := wrapAck(t, nw, 2, 11)
	res, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     protos,
		MaxSlots:      2000,
		RunToMaxSlots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("pair discovery incomplete")
	}
	if !wrappers[0].HasConfirmed(1) || !wrappers[1].HasConfirmed(0) {
		t.Fatalf("symmetric pair not mutually confirmed: 0→1 %v, 1→0 %v",
			wrappers[0].HasConfirmed(1), wrappers[1].HasConfirmed(0))
	}
}

func TestAckAsymmetricLinkNeverConfirms(t *testing.T) {
	// 0→1 dropped: node 0 still hears node 1 (in-link), but neither side
	// can ever confirm an out-link — confirmation needs a round trip and
	// only one direction exists.
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	if err := nw.DropDirection(0, 1); err != nil {
		t.Fatal(err)
	}
	protos, wrappers := wrapAck(t, nw, 2, 12)
	if _, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     protos,
		MaxSlots:      4000,
		RunToMaxSlots: true,
	}); err != nil {
		t.Fatal(err)
	}
	if !wrappers[0].Neighbors().Has(1) {
		t.Fatal("surviving direction not discovered")
	}
	if len(wrappers[0].Confirmed()) != 0 || len(wrappers[1].Confirmed()) != 0 {
		t.Fatalf("one-way link produced confirmations: %v / %v",
			wrappers[0].Confirmed(), wrappers[1].Confirmed())
	}
}

func TestAckTriangleRoundTrip(t *testing.T) {
	// Symmetric triangle: everyone eventually confirms everyone.
	nw, err := topology.Clique(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 2); err != nil {
		t.Fatal(err)
	}
	protos, wrappers := wrapAck(t, nw, 2, 13)
	if _, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     protos,
		MaxSlots:      5000,
		RunToMaxSlots: true,
	}); err != nil {
		t.Fatal(err)
	}
	for u, w := range wrappers {
		if len(w.Confirmed()) != 2 {
			t.Fatalf("node %d confirmed %v, want both others", u, w.Confirmed())
		}
	}
}
