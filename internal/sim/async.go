package sim

import (
	"fmt"
	"slices"

	"m2hew/internal/channel"
	"m2hew/internal/clock"
	"m2hew/internal/dynamics"
	"m2hew/internal/metrics"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// AsyncProtocol is a per-node protocol driven by the asynchronous engine.
// NextFrame is called once per local frame with the node-local frame index;
// the returned action holds for the whole frame (transmit during each slot,
// or listen throughout). Deliver is called for each clear message received
// during a listening frame.
type AsyncProtocol interface {
	NextFrame(frame int) radio.Action
	Deliver(msg radio.Message)
}

// AsyncNode configures one node of an asynchronous run.
type AsyncNode struct {
	// Protocol decides the node's frames; required.
	Protocol AsyncProtocol
	// Start is the real time at which the node's clock starts (its local
	// time zero). Offsets between nodes are arbitrary, as in the paper.
	Start float64
	// Drift is the node's clock drift process; nil means an ideal clock.
	Drift clock.DriftProcess
}

// AsyncConfig configures an asynchronous run.
type AsyncConfig struct {
	// Network is the topology with channel assignment; required.
	Network *topology.Network
	// Nodes holds per-node protocol/clock configuration, indexed by NodeID;
	// required.
	Nodes []AsyncNode
	// FrameLen is L, the local frame length (same for all nodes, measured
	// on each node's own clock); required, > 0.
	FrameLen float64
	// SlotsPerFrame divides each frame; 0 means the paper's 3. The ablation
	// experiment uses other values.
	SlotsPerFrame int
	// MaxFrames bounds the simulation: each node executes this many frames;
	// required, > 0.
	MaxFrames int
	// Loss, if non-nil, erases arriving transmission slots per receiver
	// listening frame with the model's probability (unreliable channels).
	Loss *LossModel
	// Observer, if non-nil, receives an EventFrameStart for every frame,
	// an EventFrameResolve for every listening frame, and an EventDeliver
	// for every clear reception. Emission order differs between engines:
	// RunAsync emits frame events node-major during its resolution pass
	// (ascending node, then frame index) and all deliveries afterwards in
	// chronological order; RunAsyncOnline emits events grouped per frame
	// in global frame-end order — EventFrameStart, that frame's
	// deliveries, then EventFrameResolve. Compose several consumers with
	// MultiObserver.
	Observer Observer
	// Scratch, if non-nil, supplies reusable per-run state — frame tables,
	// resolver buffers, delivery list, optionally pooled timelines — so
	// repeated runs on one goroutine stop re-allocating it (see
	// AsyncScratch for the ownership and network-mutation contract). Nil
	// means the run allocates a private scratch; results are identical
	// either way.
	Scratch *AsyncScratch
	// Stepper optionally overrides where frame decisions come from. Nil —
	// the default — pulls each decision lazily from Nodes' protocols; a
	// PregenStepper replays a pre-generated schedule instead (differential
	// reference, sound for oblivious protocols only). Nodes remain required
	// either way: they carry clocks and are the Deliver targets.
	Stepper Stepper
	// Dynamics, if non-nil, runs the simulation on a time-varying world:
	// each listening frame resolves against the reception structure of the
	// epoch containing the frame's start (see internal/dynamics; EpochLen is
	// in the run's real-time units). Asynchronous churn semantics differ
	// from synchronous: frame schedules never pause — clocks keep ticking —
	// but an inactive node appears in no epoch's candidate table, so it
	// neither delivers nor receives while out of the network. The coverage
	// target grows with each epoch's link set (births at the epoch start
	// time). RunAsync resolves node-major and emits no dynamics events;
	// RunAsyncOnline processes chronologically and does.
	Dynamics *dynamics.World
}

// AsyncResult reports an asynchronous run.
type AsyncResult struct {
	// Complete is true when every discoverable link was covered within the
	// horizon.
	Complete bool
	// CompletionTime is the real time at which the last link was covered;
	// valid only when Complete.
	CompletionTime float64
	// Ts is the time by which all nodes have started (max node start) — the
	// T_s of Theorems 9 and 10.
	Ts float64
	// Coverage is the oracle's link coverage record (times are real times
	// of the clear slot's end).
	Coverage *metrics.Coverage
	// Timelines holds each node's clock timeline, for bound auditing.
	Timelines []*clock.Timeline
	// FrameBudget is the per-node frame count the run executed
	// (AsyncConfig.MaxFrames). FullFrames and MinFullFrames never count
	// frames past it: a timeline extends lazily to any index, but frames
	// beyond the budget were never simulated — no protocol decision
	// exists for them. Zero means unknown (results not produced by an
	// engine) and disables the clamp.
	FrameBudget int
}

// asyncFrame is one generated frame of one node.
type asyncFrame struct {
	start, end float64
	action     radio.Action
}

func (c *AsyncConfig) validate() error {
	if c.Network == nil {
		return fmt.Errorf("sim: async config missing network")
	}
	if len(c.Nodes) != c.Network.N() {
		return fmt.Errorf("sim: %d node configs for %d nodes", len(c.Nodes), c.Network.N())
	}
	for u, nc := range c.Nodes {
		if nc.Protocol == nil {
			return fmt.Errorf("sim: protocol for node %d is nil", u)
		}
	}
	if c.FrameLen <= 0 {
		return fmt.Errorf("sim: frame length %v must be positive", c.FrameLen)
	}
	if c.SlotsPerFrame < 0 {
		return fmt.Errorf("sim: slots per frame %d is negative", c.SlotsPerFrame)
	}
	if c.MaxFrames <= 0 {
		return fmt.Errorf("sim: max frames %d must be positive", c.MaxFrames)
	}
	if err := c.Loss.validate(); err != nil {
		return err
	}
	if c.Dynamics != nil && c.Dynamics.N() != c.Network.N() {
		return fmt.Errorf("sim: dynamics world has %d nodes, network %d", c.Dynamics.N(), c.Network.N())
	}
	return nil
}

// RunAsync executes an asynchronous simulation.
//
// Frame decisions are pulled incrementally through the stepper seam: a
// node's next frame is generated when the resolution pass first needs it —
// either because the pass reached the frame itself, or because the frame
// might overlap a neighbor's listening frame under resolution. Each node's
// decisions are still pulled in ascending frame order from its own private
// rng stream, so the cross-node interleaving (which differs from the old
// generate-everything-first pass) is invisible in results; every node ends
// the run having generated exactly MaxFrames decisions. Resolution walks
// frames node-major; deliveries are applied in chronological order
// afterwards, so protocols see messages only after all decisions are made —
// behaviorally equivalent for oblivious protocols, which is why the
// differential tests can pin this engine to RunAsyncOnline and to
// PregenStepper replays. Adaptive protocols need RunAsyncOnline.
//
//nd:hotpath
func RunAsync(cfg AsyncConfig) (*AsyncResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nw := cfg.Network
	n := nw.N()
	slotsPerFrame := cfg.SlotsPerFrame
	if slotsPerFrame == 0 {
		slotsPerFrame = 3
	}

	sc := cfg.Scratch
	if sc == nil {
		sc = NewAsyncScratch()
	}
	st := cfg.Stepper
	if st == nil {
		st = asyncStepper{nodes: cfg.Nodes}
	}

	// Phase 1: clocks. Timelines and drift memos are pre-sized to the slot
	// budget so the lazy boundary/rate caches grow once instead of doubling
	// their way up (values are unchanged — only capacity moves). Drift
	// draws still happen lazily, in ascending slot order per node's own
	// drift rng, exactly as they did when frames were generated eagerly.
	slotBudget := cfg.MaxFrames * slotsPerFrame
	timelines := sc.timelineSlice(n)
	frames, starts := sc.frameTables(n, cfg.MaxFrames, 0) // appended to as frames generate
	ts := 0.0
	for u := 0; u < n; u++ {
		nc := cfg.Nodes[u]
		if nc.Start > ts {
			ts = nc.Start
		}
		tl, err := sc.timelineFor(u, nc.Start, cfg.FrameLen, slotsPerFrame, nc.Drift)
		if err != nil {
			return nil, fmt.Errorf("sim: node %d clock: %w", u, err)
		}
		tl.Reserve(slotBudget)
		if sc.RecycleTimelines {
			// Same caller contract as timeline recycling: a prior trial's
			// drift is never queried again, so its memo's backing array can
			// seed this trial's walk (capacity only — the rates this walk
			// returns are generated from its own rng as usual).
			sc.adoptRateBuf(nc.Drift)
		}
		reserveDrift(nc.Drift, slotBudget)
		timelines[u] = tl
	}

	// Phase 2: resolve receptions, generating frames on demand. gen appends
	// node v's next frame (frameTables reserved MaxFrames capacity per
	// node, so appends never reallocate); before a listening frame
	// resolves, every candidate transmitter is generated out to the frame's
	// end, which is exactly the coverage collectSlots needs.
	cands, msgAvail := sc.networkTables(nw)
	env := sc.envFor(nw, cands, frames, starts, timelines, slotsPerFrame, cfg.Loss)
	env.world = cfg.Dynamics
	deliveries := sc.deliveryBuf()
	maxEnd := 0.0
	for u := 0; u < n; u++ {
		uid := topology.NodeID(u)
		for f := 0; f < cfg.MaxFrames; f++ {
			if len(env.frames[u]) <= f {
				if err := env.generate(u, st); err != nil {
					return nil, err
				}
			}
			g := env.frames[u][f]
			if g.end > maxEnd {
				maxEnd = g.end
			}
			if cfg.Observer != nil {
				cfg.Observer.OnEvent(Event{
					Kind: EventFrameStart, Time: g.start, Slot: f,
					Node: uid, Action: g.action,
				})
			}
			if g.action.Mode == radio.Receive {
				for _, cand := range env.candsFor(uid, g) {
					w := int(cand.From)
					for len(env.frames[w]) < cfg.MaxFrames {
						if last := len(env.frames[w]); last > 0 && env.frames[w][last-1].end >= g.end {
							break
						}
						if err := env.generate(w, st); err != nil {
							return nil, err
						}
					}
				}
			}
			ds := env.resolveFrame(uid, g)
			deliveries = append(deliveries, ds...)
			if cfg.Observer != nil && g.action.Mode == radio.Receive {
				cfg.Observer.OnEvent(Event{
					Kind: EventFrameResolve, Time: g.end, Slot: f,
					Node: uid, Action: g.action,
					Collected: env.lastCollected, Delivered: len(ds),
				})
			}
		}
	}

	slices.SortFunc(deliveries, cmpDelivery)

	sc.deliveries = deliveries[:0] // keep any capacity the run grew

	coverage := asyncCoverage(nw, cfg.Dynamics, maxEnd)
	for _, d := range deliveries {
		msg := radio.Message{From: d.from, Avail: msgAvail[d.from]}
		if hr, ok := cfg.Nodes[d.from].Protocol.(HeardReporter); ok {
			msg.Heard = copyHeard(hr.Heard())
		}
		cfg.Nodes[d.to].Protocol.Deliver(msg)
		coverage.Observe(topology.Link{From: d.from, To: d.to}, d.at)
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(Event{
				Kind: EventDeliver, Time: d.at,
				From: d.from, To: d.to, Channel: d.ch,
			})
		}
	}

	if sc.RecycleTimelines {
		// All timeline (and hence drift) reads for this run are done; pull
		// the rate memos' backing arrays back for the next trial.
		sc.reclaimRateBufs(cfg.Nodes)
	}

	// The result escapes by design: one allocation per run, and Timelines
	// hands the scratch-pooled timelines to the caller under the
	// RecycleTimelines ownership contract (AsyncScratch documents it).
	//ndlint:ignore hotalloc one result allocation per run, not per frame
	result := &AsyncResult{Ts: ts, Coverage: coverage, Timelines: timelines, FrameBudget: cfg.MaxFrames} //ndlint:ignore scratchalias Timelines ownership transfers per the RecycleTimelines contract
	if coverage.Complete() {
		result.Complete = true
		result.CompletionTime, _ = coverage.CompletionTime()
	}
	return result, nil
}

// cmpDelivery orders deliveries chronologically, ties broken by receiver
// then sender. Distinct deliveries never compare equal — a sender delivers
// at most once per receiver frame and its slot end times are distinct — so
// the unstable sort is deterministic (the asynchronous engines' byte-for-
// byte reproducibility rests on this). A named comparator keeps the sort
// closure-free on the hot path.
func cmpDelivery(a, b delivery) int {
	switch {
	case a.at < b.at:
		return -1
	case a.at > b.at:
		return 1
	case a.to < b.to:
		return -1
	case a.to > b.to:
		return 1
	case a.from < b.from:
		return -1
	case a.from > b.from:
		return 1
	default:
		return 0
	}
}

// generate pulls node v's next frame decision from the stepper, validates
// it, and appends the frame to the env's tables (capacity was reserved for
// the whole budget, so appends never reallocate). Both asynchronous engines
// generate exclusively through it, always in ascending frame order per
// node.
//
//nd:hotpath
func (env *asyncEnv) generate(v int, st Stepper) error {
	f := len(env.frames[v])
	a := st.Next(topology.NodeID(v), f)
	if err := a.Validate(env.nw.Avail(topology.NodeID(v))); err != nil {
		return fmt.Errorf("sim: node %d frame %d: %w", v, f, err)
	}
	fs, fe := env.timelines[v].FrameInterval(f)
	env.frames[v] = append(env.frames[v], asyncFrame{start: fs, end: fe, action: a})
	env.starts[v] = append(env.starts[v], fs)
	return nil
}

// asyncCoverage builds an asynchronous run's coverage target: the static
// network's discoverable links, or — for dynamic runs — the union of epoch
// link sets through the epoch containing horizon (a real time), each link
// born at the start time of its first epoch.
func asyncCoverage(nw *topology.Network, world *dynamics.World, horizon float64) *metrics.Coverage {
	if world == nil {
		return metrics.NewCoverage(nw.DiscoverableLinks())
	}
	coverage := metrics.NewCoverage(nil)
	last := world.EpochOf(horizon)
	for e := 0; e <= last; e++ {
		ep := world.At(e)
		birth := float64(e) * world.EpochLen()
		for _, l := range ep.Links {
			coverage.AddTarget(l, birth)
		}
	}
	return coverage
}

// sharedMsgAvail clones each node's available set once per run; every
// message from the same sender shares the copy (see radio.Message for the
// read-only contract). One clone per node replaces one clone per delivery.
func sharedMsgAvail(nw *topology.Network) []channel.Set {
	out := make([]channel.Set, nw.N())
	for u := range out {
		out[u] = nw.Avail(topology.NodeID(u)).Clone()
	}
	return out
}

// FullFrames returns the number of full frames of node u that lie entirely
// within the real-time interval [from, to] — the quantity Theorem 9 counts
// ("each node has executed at least M full frames since T_s"). Counting
// stops at the run's frame budget: an interval reaching past the horizon
// counts only frames the engine actually executed, instead of walking the
// lazily-extending timeline into frames no protocol ever decided.
func (r *AsyncResult) FullFrames(u topology.NodeID, from, to float64) int {
	tl := r.Timelines[u]
	f := tl.FirstFullFrameAfter(from)
	count := 0
	for ; r.FrameBudget == 0 || f < r.FrameBudget; f++ {
		_, end := tl.FrameInterval(f)
		if end > to {
			break
		}
		count++
	}
	return count
}

// MinFullFrames returns the smallest per-node count of full frames within
// [from, to] over all nodes.
func (r *AsyncResult) MinFullFrames(from, to float64) int {
	minCount := -1
	for u := range r.Timelines {
		c := r.FullFrames(topology.NodeID(u), from, to)
		if minCount < 0 || c < minCount {
			minCount = c
		}
	}
	return minCount
}
