package sim

import (
	"fmt"
	"slices"

	"m2hew/internal/channel"
	"m2hew/internal/clock"
	"m2hew/internal/metrics"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// AsyncProtocol is a per-node protocol driven by the asynchronous engine.
// NextFrame is called once per local frame with the node-local frame index;
// the returned action holds for the whole frame (transmit during each slot,
// or listen throughout). Deliver is called for each clear message received
// during a listening frame.
type AsyncProtocol interface {
	NextFrame(frame int) radio.Action
	Deliver(msg radio.Message)
}

// AsyncNode configures one node of an asynchronous run.
type AsyncNode struct {
	// Protocol decides the node's frames; required.
	Protocol AsyncProtocol
	// Start is the real time at which the node's clock starts (its local
	// time zero). Offsets between nodes are arbitrary, as in the paper.
	Start float64
	// Drift is the node's clock drift process; nil means an ideal clock.
	Drift clock.DriftProcess
}

// AsyncConfig configures an asynchronous run.
type AsyncConfig struct {
	// Network is the topology with channel assignment; required.
	Network *topology.Network
	// Nodes holds per-node protocol/clock configuration, indexed by NodeID;
	// required.
	Nodes []AsyncNode
	// FrameLen is L, the local frame length (same for all nodes, measured
	// on each node's own clock); required, > 0.
	FrameLen float64
	// SlotsPerFrame divides each frame; 0 means the paper's 3. The ablation
	// experiment uses other values.
	SlotsPerFrame int
	// MaxFrames bounds the simulation: each node executes this many frames;
	// required, > 0.
	MaxFrames int
	// Loss, if non-nil, erases arriving transmission slots per receiver
	// listening frame with the model's probability (unreliable channels).
	Loss *LossModel
	// Observer, if non-nil, receives an EventFrameStart for every frame,
	// an EventFrameResolve for every listening frame, and an EventDeliver
	// for every clear reception. Emission order differs between engines:
	// RunAsync emits frame events node-major during its resolution pass
	// (ascending node, then frame index) and all deliveries afterwards in
	// chronological order; RunAsyncOnline emits events grouped per frame
	// in global frame-end order — EventFrameStart, that frame's
	// deliveries, then EventFrameResolve. Compose several consumers with
	// MultiObserver.
	Observer Observer
	// Scratch, if non-nil, supplies reusable per-run state — frame tables,
	// resolver buffers, delivery list, optionally pooled timelines — so
	// repeated runs on one goroutine stop re-allocating it (see
	// AsyncScratch for the ownership and network-mutation contract). Nil
	// means the run allocates a private scratch; results are identical
	// either way.
	Scratch *AsyncScratch
}

// AsyncResult reports an asynchronous run.
type AsyncResult struct {
	// Complete is true when every discoverable link was covered within the
	// horizon.
	Complete bool
	// CompletionTime is the real time at which the last link was covered;
	// valid only when Complete.
	CompletionTime float64
	// Ts is the time by which all nodes have started (max node start) — the
	// T_s of Theorems 9 and 10.
	Ts float64
	// Coverage is the oracle's link coverage record (times are real times
	// of the clear slot's end).
	Coverage *metrics.Coverage
	// Timelines holds each node's clock timeline, for bound auditing.
	Timelines []*clock.Timeline
	// FrameBudget is the per-node frame count the run executed
	// (AsyncConfig.MaxFrames). FullFrames and MinFullFrames never count
	// frames past it: a timeline extends lazily to any index, but frames
	// beyond the budget were never simulated — no protocol decision
	// exists for them. Zero means unknown (results not produced by an
	// engine) and disables the clamp.
	FrameBudget int
}

// asyncFrame is one generated frame of one node.
type asyncFrame struct {
	start, end float64
	action     radio.Action
}

func (c *AsyncConfig) validate() error {
	if c.Network == nil {
		return fmt.Errorf("sim: async config missing network")
	}
	if len(c.Nodes) != c.Network.N() {
		return fmt.Errorf("sim: %d node configs for %d nodes", len(c.Nodes), c.Network.N())
	}
	for u, nc := range c.Nodes {
		if nc.Protocol == nil {
			return fmt.Errorf("sim: protocol for node %d is nil", u)
		}
	}
	if c.FrameLen <= 0 {
		return fmt.Errorf("sim: frame length %v must be positive", c.FrameLen)
	}
	if c.SlotsPerFrame < 0 {
		return fmt.Errorf("sim: slots per frame %d is negative", c.SlotsPerFrame)
	}
	if c.MaxFrames <= 0 {
		return fmt.Errorf("sim: max frames %d must be positive", c.MaxFrames)
	}
	return nil
}

// RunAsync executes an asynchronous simulation.
//
// The engine first generates every node's frame decisions and real-time
// intervals for the whole horizon, then resolves receptions. Pre-generation
// is sound because the paper's protocols are oblivious: their transmission
// schedule is a function of their private randomness only, never of received
// messages. Deliveries are applied in chronological order.
//
//nd:hotpath
func RunAsync(cfg AsyncConfig) (*AsyncResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nw := cfg.Network
	n := nw.N()
	slotsPerFrame := cfg.SlotsPerFrame
	if slotsPerFrame == 0 {
		slotsPerFrame = 3
	}

	sc := cfg.Scratch
	if sc == nil {
		sc = NewAsyncScratch()
	}

	// Phase 1: generate frames. Timelines and drift memos are pre-sized to
	// the slot budget so the lazy boundary/rate caches grow once instead of
	// doubling their way up (values are unchanged — only capacity moves).
	slotBudget := cfg.MaxFrames * slotsPerFrame
	timelines := sc.timelineSlice(n)
	frames, starts := sc.frameTables(n, cfg.MaxFrames, cfg.MaxFrames)
	ts := 0.0
	for u := 0; u < n; u++ {
		nc := cfg.Nodes[u]
		if nc.Start > ts {
			ts = nc.Start
		}
		tl, err := sc.timelineFor(u, nc.Start, cfg.FrameLen, slotsPerFrame, nc.Drift)
		if err != nil {
			return nil, fmt.Errorf("sim: node %d clock: %w", u, err)
		}
		tl.Reserve(slotBudget)
		if sc.RecycleTimelines {
			// Same caller contract as timeline recycling: a prior trial's
			// drift is never queried again, so its memo's backing array can
			// seed this trial's walk (capacity only — the rates this walk
			// returns are generated from its own rng as usual).
			sc.adoptRateBuf(nc.Drift)
		}
		reserveDrift(nc.Drift, slotBudget)
		timelines[u] = tl
		fu, su := frames[u], starts[u]
		for f := 0; f < cfg.MaxFrames; f++ {
			a := nc.Protocol.NextFrame(f)
			if err := a.Validate(nw.Avail(topology.NodeID(u))); err != nil {
				return nil, fmt.Errorf("sim: node %d frame %d: %w", u, f, err)
			}
			fs, fe := tl.FrameInterval(f)
			fu[f] = asyncFrame{start: fs, end: fe, action: a}
			su[f] = fs
		}
	}

	// Phase 2: resolve receptions.
	cands, msgAvail := sc.networkTables(nw)
	env := sc.envFor(nw, cands, frames, starts, timelines, slotsPerFrame, cfg.Loss)
	deliveries := sc.deliveryBuf()
	for u := 0; u < n; u++ {
		uid := topology.NodeID(u)
		for f, g := range frames[u] {
			if cfg.Observer != nil {
				cfg.Observer.OnEvent(Event{
					Kind: EventFrameStart, Time: g.start, Slot: f,
					Node: uid, Action: g.action,
				})
			}
			ds := env.resolveFrame(uid, g)
			deliveries = append(deliveries, ds...)
			if cfg.Observer != nil && g.action.Mode == radio.Receive {
				cfg.Observer.OnEvent(Event{
					Kind: EventFrameResolve, Time: g.end, Slot: f,
					Node: uid, Action: g.action,
					Collected: env.lastCollected, Delivered: len(ds),
				})
			}
		}
	}

	slices.SortFunc(deliveries, cmpDelivery)

	sc.deliveries = deliveries[:0] // keep any capacity the run grew

	coverage := metrics.NewCoverage(nw.DiscoverableLinks())
	for _, d := range deliveries {
		msg := radio.Message{From: d.from, Avail: msgAvail[d.from]}
		if hr, ok := cfg.Nodes[d.from].Protocol.(HeardReporter); ok {
			msg.Heard = copyHeard(hr.Heard())
		}
		cfg.Nodes[d.to].Protocol.Deliver(msg)
		coverage.Observe(topology.Link{From: d.from, To: d.to}, d.at)
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(Event{
				Kind: EventDeliver, Time: d.at,
				From: d.from, To: d.to, Channel: d.ch,
			})
		}
	}

	if sc.RecycleTimelines {
		// All timeline (and hence drift) reads for this run are done; pull
		// the rate memos' backing arrays back for the next trial.
		sc.reclaimRateBufs(cfg.Nodes)
	}

	// The result escapes by design: one allocation per run, and Timelines
	// hands the scratch-pooled timelines to the caller under the
	// RecycleTimelines ownership contract (AsyncScratch documents it).
	//ndlint:ignore hotalloc one result allocation per run, not per frame
	result := &AsyncResult{Ts: ts, Coverage: coverage, Timelines: timelines, FrameBudget: cfg.MaxFrames} //ndlint:ignore scratchalias Timelines ownership transfers per the RecycleTimelines contract
	if coverage.Complete() {
		result.Complete = true
		result.CompletionTime, _ = coverage.CompletionTime()
	}
	return result, nil
}

// cmpDelivery orders deliveries chronologically, ties broken by receiver
// then sender. Distinct deliveries never compare equal — a sender delivers
// at most once per receiver frame and its slot end times are distinct — so
// the unstable sort is deterministic (the asynchronous engines' byte-for-
// byte reproducibility rests on this). A named comparator keeps the sort
// closure-free on the hot path.
func cmpDelivery(a, b delivery) int {
	switch {
	case a.at < b.at:
		return -1
	case a.at > b.at:
		return 1
	case a.to < b.to:
		return -1
	case a.to > b.to:
		return 1
	case a.from < b.from:
		return -1
	case a.from > b.from:
		return 1
	default:
		return 0
	}
}

// sharedMsgAvail clones each node's available set once per run; every
// message from the same sender shares the copy (see radio.Message for the
// read-only contract). One clone per node replaces one clone per delivery.
func sharedMsgAvail(nw *topology.Network) []channel.Set {
	out := make([]channel.Set, nw.N())
	for u := range out {
		out[u] = nw.Avail(topology.NodeID(u)).Clone()
	}
	return out
}

// FullFrames returns the number of full frames of node u that lie entirely
// within the real-time interval [from, to] — the quantity Theorem 9 counts
// ("each node has executed at least M full frames since T_s"). Counting
// stops at the run's frame budget: an interval reaching past the horizon
// counts only frames the engine actually executed, instead of walking the
// lazily-extending timeline into frames no protocol ever decided.
func (r *AsyncResult) FullFrames(u topology.NodeID, from, to float64) int {
	tl := r.Timelines[u]
	f := tl.FirstFullFrameAfter(from)
	count := 0
	for ; r.FrameBudget == 0 || f < r.FrameBudget; f++ {
		_, end := tl.FrameInterval(f)
		if end > to {
			break
		}
		count++
	}
	return count
}

// MinFullFrames returns the smallest per-node count of full frames within
// [from, to] over all nodes.
func (r *AsyncResult) MinFullFrames(from, to float64) int {
	minCount := -1
	for u := range r.Timelines {
		c := r.FullFrames(topology.NodeID(u), from, to)
		if minCount < 0 || c < minCount {
			minCount = c
		}
	}
	return minCount
}
