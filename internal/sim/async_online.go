package sim

import (
	"fmt"

	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// RunAsyncOnline executes an asynchronous simulation with online delivery:
// frames are generated lazily in global time order and every clear message
// is delivered to its receiver's protocol before that protocol makes its
// next frame decision.
//
// Both asynchronous engines now pull decisions incrementally through the
// stepper seam; what distinguishes this one is delivery timing. RunAsync
// resolves node-major and applies all deliveries after every decision is
// made — fine for oblivious protocols, whose schedules ignore what they
// receive. Adaptive protocols — notably the termination-detection wrapper
// core.AsyncTerminating, whose behaviour depends on what it has received —
// require this engine, which interleaves delivery with generation in global
// frame-end order. For oblivious protocols both engines produce identical
// coverage results (asserted by differential tests), except when a loss
// model is active, whose erasure draws are consumed in a different order.
//
// Scheduling invariant: node events (frame ends) are processed in global
// time order; when the earliest unprocessed frame end belongs to node u,
// every other node has generated frames covering that instant, so all
// transmissions overlapping u's frame are known and the shared resolver can
// run. Receptions are delivered at the receiving frame's end — the decode
// point is the slot end, but the protocol can only act on it at its next
// frame boundary, so delivering at frame end is behaviourally identical and
// keeps per-node delivery order deterministic.
func RunAsyncOnline(cfg AsyncConfig) (*AsyncResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nw := cfg.Network
	n := nw.N()
	slotsPerFrame := cfg.SlotsPerFrame
	if slotsPerFrame == 0 {
		slotsPerFrame = 3
	}

	sc := cfg.Scratch
	if sc == nil {
		sc = NewAsyncScratch()
	}
	st := cfg.Stepper
	if st == nil {
		st = asyncStepper{nodes: cfg.Nodes}
	}
	slotBudget := cfg.MaxFrames * slotsPerFrame
	timelines := sc.timelineSlice(n)
	frames, starts := sc.frameTables(n, cfg.MaxFrames, 0) // appended to as frames generate
	cands, msgAvail := sc.networkTables(nw)
	env := sc.envFor(nw, cands, frames, starts, timelines, slotsPerFrame, cfg.Loss)
	env.world = cfg.Dynamics
	ts := 0.0
	for u := 0; u < n; u++ {
		nc := cfg.Nodes[u]
		if nc.Start > ts {
			ts = nc.Start
		}
		tl, err := sc.timelineFor(u, nc.Start, cfg.FrameLen, slotsPerFrame, nc.Drift)
		if err != nil {
			return nil, fmt.Errorf("sim: node %d clock: %w", u, err)
		}
		tl.Reserve(slotBudget)
		reserveDrift(nc.Drift, slotBudget)
		timelines[u] = tl
	}

	// generate appends node u's next frame through the shared stepper pull
	// (env.generate). Returns false once the node hit its frame budget.
	generate := func(u int) (float64, bool, error) {
		f := len(env.frames[u])
		if f >= cfg.MaxFrames {
			return 0, false, nil
		}
		if err := env.generate(u, st); err != nil {
			return 0, false, err
		}
		return env.frames[u][f].end, true, nil
	}

	// Prime every node with its first frame. nextEnd[u] is the end time of
	// u's oldest unresolved frame; +Inf once exhausted.
	const inf = 1e308
	nextEnd, pending := sc.onlineBufs(n) // pending: index of the oldest unresolved frame
	for u := 0; u < n; u++ {
		end, ok, err := generate(u)
		if err != nil {
			return nil, err
		}
		if !ok {
			nextEnd[u] = inf
			continue
		}
		nextEnd[u] = end
	}

	// Dynamic runs start the coverage target at epoch 0's links and grow it
	// as the chronological pass crosses epoch boundaries (announceEpoch),
	// so every delivery finds its link already targeted: a delivered link
	// existed in the epoch of its listening frame's start, which the
	// advance below reaches before that frame resolves.
	world := cfg.Dynamics
	coverage := asyncCoverage(nw, world, 0)
	result := &AsyncResult{Ts: ts, Coverage: coverage, Timelines: timelines, FrameBudget: cfg.MaxFrames} //ndlint:ignore scratchalias Timelines ownership transfers per the RecycleTimelines contract

	announceEpoch := func(e int) {
		ep := world.At(e)
		at := float64(e) * world.EpochLen()
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(Event{Kind: EventEpoch, Time: at, Epoch: e})
			for _, v := range ep.Joined {
				cfg.Observer.OnEvent(Event{Kind: EventJoin, Time: at, Node: v, Epoch: e})
			}
			for _, v := range ep.Left {
				cfg.Observer.OnEvent(Event{Kind: EventLeave, Time: at, Node: v, Epoch: e})
			}
			for _, l := range ep.Losses {
				cfg.Observer.OnEvent(Event{Kind: EventChannelLoss, Time: at, Node: l.Node, Channel: l.Channel, Epoch: e})
			}
		}
		for _, l := range ep.Links {
			coverage.AddTarget(l, at)
		}
	}
	nextEpoch := 1
	if world != nil {
		announceEpoch(0) // target links already added by asyncCoverage; re-adds are no-ops
	}

	for {
		// Pop the earliest unresolved frame end.
		u, best := -1, inf
		for v := 0; v < n; v++ {
			if nextEnd[v] < best {
				best = nextEnd[v]
				u = v
			}
		}
		if u < 0 {
			break // every node exhausted its budget
		}
		uid := topology.NodeID(u)
		frameIdx := pending[u]
		g := env.frames[u][frameIdx]

		// Cross epoch boundaries up to this frame's end before resolving it:
		// frame ends are popped in ascending order, so the advance is
		// monotone, and any link this frame delivers on was born in an epoch
		// at or before the one containing its start.
		if world != nil {
			for target := world.EpochOf(g.end); nextEpoch <= target; nextEpoch++ {
				announceEpoch(nextEpoch)
			}
		}

		// Before resolving u's frame we must know every transmission
		// overlapping it. All other nodes have an unresolved frame ending
		// at or after g.end... except nodes that exhausted their budget,
		// whose generated frames may end before g.end; transmissions after
		// a node's horizon simply don't exist. Nodes still within budget
		// always have a generated frame ending >= g.end by the pop order,
		// and frames never skip time, so coverage of [g.start, g.end) is
		// complete.
		// Events for this frame are emitted at its resolution point (the
		// frame's end); EventFrameStart still carries the frame's real
		// start time.
		if cfg.Observer != nil {
			cfg.Observer.OnEvent(Event{
				Kind: EventFrameStart, Time: g.start, Slot: frameIdx,
				Node: uid, Action: g.action,
			})
		}
		delivered := 0
		for _, d := range env.resolveFrame(uid, g) {
			msg := radio.Message{From: d.from, Avail: msgAvail[d.from]}
			if hr, ok := cfg.Nodes[d.from].Protocol.(HeardReporter); ok {
				msg.Heard = copyHeard(hr.Heard())
			}
			cfg.Nodes[d.to].Protocol.Deliver(msg)
			coverage.Observe(topology.Link{From: d.from, To: d.to}, d.at)
			delivered++
			if cfg.Observer != nil {
				cfg.Observer.OnEvent(Event{
					Kind: EventDeliver, Time: d.at,
					From: d.from, To: d.to, Channel: d.ch,
				})
			}
		}
		if cfg.Observer != nil && g.action.Mode == radio.Receive {
			cfg.Observer.OnEvent(Event{
				Kind: EventFrameResolve, Time: g.end, Slot: frameIdx,
				Node: uid, Action: g.action,
				Collected: env.lastCollected, Delivered: delivered,
			})
		}
		pending[u]++

		// Generate u's next frame (its protocol has now seen everything it
		// could have heard).
		if pending[u] < len(env.frames[u]) {
			// Shouldn't happen: we generate one frame ahead of resolution.
			nextEnd[u] = env.frames[u][pending[u]].end
			continue
		}
		end, ok, err := generate(u)
		if err != nil {
			return nil, err
		}
		if !ok {
			nextEnd[u] = inf
			continue
		}
		nextEnd[u] = end
	}

	if coverage.Complete() {
		result.Complete = true
		result.CompletionTime, _ = coverage.CompletionTime()
	}
	return result, nil
}
