package sim

import (
	"math"
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// buildAsyncNodes constructs core.Async protocols with drifting clocks and
// scattered starts for a network, deterministically from seed.
func buildAsyncNodes(t *testing.T, nw *topology.Network, deltaEst int, seed uint64) []AsyncNode {
	t.Helper()
	root := rng.New(seed)
	nodes := make([]AsyncNode, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		drift, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.03, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		nodes[u] = AsyncNode{Protocol: p, Start: root.Float64() * 12, Drift: drift}
	}
	return nodes
}

// TestOnlineOfflineEquivalence is the differential test between the two
// asynchronous engines: for the paper's oblivious protocols they must agree
// on every link's first coverage time.
func TestOnlineOfflineEquivalence(t *testing.T) {
	build := func() (*topology.Network, error) {
		nw, err := topology.Ring(6)
		if err != nil {
			return nil, err
		}
		return nw, topology.AssignBlockOverlap(nw, 2, 1)
	}
	nwA, err := build()
	if err != nil {
		t.Fatal(err)
	}
	nwB, err := build()
	if err != nil {
		t.Fatal(err)
	}
	mkCfg := func(nw *topology.Network) AsyncConfig {
		return AsyncConfig{
			Network:   nw,
			Nodes:     buildAsyncNodes(t, nw, 2, 777),
			FrameLen:  3,
			MaxFrames: 2500,
		}
	}
	offline, err := RunAsync(mkCfg(nwA))
	if err != nil {
		t.Fatal(err)
	}
	online, err := RunAsyncOnline(mkCfg(nwB))
	if err != nil {
		t.Fatal(err)
	}
	if offline.Complete != online.Complete {
		t.Fatalf("completion disagrees: offline %v online %v", offline.Complete, online.Complete)
	}
	if !offline.Complete {
		t.Fatal("scenario did not complete; equivalence test vacuous")
	}
	for _, l := range nwA.DiscoverableLinks() {
		a, okA := offline.Coverage.FirstCovered(l)
		b, okB := online.Coverage.FirstCovered(l)
		if okA != okB {
			t.Fatalf("link %v covered in one engine only", l)
		}
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("link %v covered at %v offline vs %v online", l, a, b)
		}
	}
	if math.Abs(offline.CompletionTime-online.CompletionTime) > 1e-9 {
		t.Fatalf("completion times differ: %v vs %v", offline.CompletionTime, online.CompletionTime)
	}
}

func TestOnlineValidation(t *testing.T) {
	if _, err := RunAsyncOnline(AsyncConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestOnlineScriptedReception(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	sender := &scriptAsync{actions: []radio.Action{tx(0)}}
	receiver := &scriptAsync{actions: []radio.Action{rx(0)}}
	res, err := RunAsyncOnline(AsyncConfig{
		Network:   nw,
		Nodes:     []AsyncNode{{Protocol: sender}, {Protocol: receiver}},
		FrameLen:  3,
		MaxFrames: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(receiver.delivered) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(receiver.delivered))
	}
	at, ok := res.Coverage.FirstCovered(topology.Link{From: 0, To: 1})
	if !ok || math.Abs(at-1) > 1e-9 {
		t.Fatalf("coverage %v,%v; want 1,true", at, ok)
	}
}

// adaptiveProbe flips to permanent quiet the moment it has received any
// message — behaviour that the pre-generating engine cannot honour but the
// online engine must.
type adaptiveProbe struct {
	heard     bool
	txFrames  int
	transmits bool
}

func (p *adaptiveProbe) NextFrame(int) radio.Action {
	if p.heard {
		return radio.Action{Mode: radio.Quiet}
	}
	if p.transmits {
		p.txFrames++
		return radio.Action{Mode: radio.Transmit, Channel: 0}
	}
	return radio.Action{Mode: radio.Receive, Channel: 0}
}

func (p *adaptiveProbe) Deliver(radio.Message) { p.heard = true }

func TestOnlineDeliversBeforeNextDecision(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	sender := &adaptiveProbe{transmits: true}
	listener := &adaptiveProbe{}
	_, err := RunAsyncOnline(AsyncConfig{
		Network:   nw,
		Nodes:     []AsyncNode{{Protocol: sender}, {Protocol: listener}},
		FrameLen:  3,
		MaxFrames: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !listener.heard {
		t.Fatal("listener never heard the sender")
	}
	// The listener hears during its first frame (clocks aligned) and must
	// go quiet from frame 1 on; if deliveries were batched at the end it
	// would have listened for all 10 frames. We can't observe its actions
	// directly, but the sender's schedule is observable: it transmits in
	// all 10 frames (it never hears anything back since the listener never
	// transmits). Verify the listener's own quiet flip by its frame count
	// via a second probe that transmits after hearing.
	if sender.txFrames != 10 {
		t.Fatalf("sender transmitted %d frames, want 10", sender.txFrames)
	}
}

// echoProbe listens until it hears something, then transmits forever. Used
// to verify the online engine feeds deliveries back into behaviour.
type echoProbe struct {
	heard    bool
	txFrames int
}

func (p *echoProbe) NextFrame(int) radio.Action {
	if p.heard {
		p.txFrames++
		return radio.Action{Mode: radio.Transmit, Channel: 0}
	}
	return radio.Action{Mode: radio.Receive, Channel: 0}
}

func (p *echoProbe) Deliver(radio.Message) { p.heard = true }

func TestOnlineAdaptiveEcho(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	// Node 0 transmits its first 2 frames then listens; node 1 echoes
	// after hearing. With aligned ideal clocks: node 1 hears in frame 0,
	// echoes from frame 1 onward; node 0 listens from frame 2 and hears
	// the echo — coverage of (1,0) requires the echo, which requires
	// online delivery.
	starter := &scriptAsync{actions: []radio.Action{tx(0), tx(0), rx(0)}}
	echo := &echoProbe{}
	res, err := RunAsyncOnline(AsyncConfig{
		Network:   nw,
		Nodes:     []AsyncNode{{Protocol: starter}, {Protocol: echo}},
		FrameLen:  3,
		MaxFrames: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !echo.heard {
		t.Fatal("echo node heard nothing")
	}
	if echo.txFrames == 0 {
		t.Fatal("echo node never transmitted")
	}
	if _, ok := res.Coverage.FirstCovered(topology.Link{From: 1, To: 0}); !ok {
		t.Fatal("echo was not received; online feedback loop broken")
	}
}

func TestOnlineWithTerminatingWrapper(t *testing.T) {
	nw, err := topology.Clique(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 2); err != nil {
		t.Fatal(err)
	}
	root := rng.New(4242)
	nodes := make([]AsyncNode, nw.N())
	wrappers := make([]*core.AsyncTerminating, nw.N())
	for u := 0; u < nw.N(); u++ {
		inner, err := core.NewAsync(nw.Avail(topology.NodeID(u)), 4, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		wrapped, err := core.NewAsyncTerminating(inner, 400)
		if err != nil {
			t.Fatal(err)
		}
		wrappers[u] = wrapped
		nodes[u] = AsyncNode{Protocol: wrapped}
	}
	res, err := RunAsyncOnline(AsyncConfig{
		Network:   nw,
		Nodes:     nodes,
		FrameLen:  3,
		MaxFrames: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("terminating async run incomplete: %s", res.Coverage)
	}
	for u, w := range wrappers {
		if !w.Terminated() {
			t.Errorf("node %d never terminated", u)
		}
		if w.ActiveFrames() >= 3000 {
			t.Errorf("node %d active for the whole horizon (%d frames)", u, w.ActiveFrames())
		}
		if w.Neighbors().Len() != len(nw.Neighbors(topology.NodeID(u))) {
			t.Errorf("node %d table incomplete after termination", u)
		}
	}
}

// chaosProtocol behaves adaptively and erratically: its per-frame choice
// depends on how many messages it has heard so far. It exists to stress the
// online engine's scheduling invariant with behaviour the paper's protocols
// never exhibit.
type chaosProtocol struct {
	avail  channel.Set
	rng    *rng.Source
	heard  int
	frames int
}

func (p *chaosProtocol) NextFrame(int) radio.Action {
	p.frames++
	// Mode choice skews with the number of receptions: the more a node has
	// heard, the chattier it gets.
	bias := float64(p.heard%7) / 10
	switch {
	case p.rng.Bernoulli(0.15):
		return radio.Action{Mode: radio.Quiet}
	case p.rng.Bernoulli(0.35 + bias):
		c, err := p.avail.Pick(p.rng)
		if err != nil {
			return radio.Action{Mode: radio.Quiet}
		}
		return radio.Action{Mode: radio.Transmit, Channel: c}
	default:
		c, err := p.avail.Pick(p.rng)
		if err != nil {
			return radio.Action{Mode: radio.Quiet}
		}
		return radio.Action{Mode: radio.Receive, Channel: c}
	}
}

func (p *chaosProtocol) Deliver(radio.Message) { p.heard++ }

func TestOnlineEngineAdaptiveChaos(t *testing.T) {
	// Random networks × random adaptive protocols × drifting clocks: the
	// online engine must never panic, deliveries must be causally ordered
	// per receiver, and every node must be driven for exactly MaxFrames.
	root := rng.New(987654)
	for trial := 0; trial < 25; trial++ {
		r := root.Split()
		n := r.IntN(6) + 2
		nw, err := topology.ErdosRenyi(n, 0.6, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := topology.AssignBernoulli(nw, 4, 0.7, r); err != nil {
			t.Fatal(err)
		}
		maxFrames := r.IntN(60) + 10
		nodes := make([]AsyncNode, n)
		protos := make([]*chaosProtocol, n)
		for u := 0; u < n; u++ {
			p := &chaosProtocol{avail: nw.Avail(topology.NodeID(u)).Clone(), rng: r.Split()}
			protos[u] = p
			drift, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.05, r.Split())
			if err != nil {
				t.Fatal(err)
			}
			nodes[u] = AsyncNode{Protocol: p, Start: r.Float64() * 9, Drift: drift}
		}
		var lastAt float64
		res, err := RunAsyncOnline(AsyncConfig{
			Network:   nw,
			Nodes:     nodes,
			FrameLen:  2.5,
			MaxFrames: maxFrames,
			Observer: ObserverFunc(func(e Event) {
				if e.Kind != EventDeliver {
					return
				}
				if e.Time < lastAt-2.5/(1-clock.MaxAsyncDrift) {
					// Deliveries are applied at frame pops, so they may
					// jitter within a frame length, but never more.
					t.Fatalf("delivery at %v far behind %v", e.Time, lastAt)
				}
				if e.Time > lastAt {
					lastAt = e.Time
				}
			}),
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = res
		for u, p := range protos {
			if p.frames != maxFrames {
				t.Fatalf("trial %d node %d driven for %d frames, want %d", trial, u, p.frames, maxFrames)
			}
		}
	}
}
