package sim

import (
	"sort"

	"m2hew/internal/channel"
	"m2hew/internal/clock"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// delivery is one resolved clear reception.
type delivery struct {
	at       float64
	from, to topology.NodeID
	ch       channel.ID
}

// asyncEnv bundles the state the frame-reception resolver reads. Both the
// pre-generating engine (RunAsync) and the online engine (RunAsyncOnline)
// resolve receptions through it, so the two implementations share the exact
// reception semantics and can be differentially tested against each other.
type asyncEnv struct {
	nw            *topology.Network
	frames        [][]asyncFrame
	starts        [][]float64 // frame start times per node, for binary search
	timelines     []*clock.Timeline
	slotsPerFrame int
	loss          *LossModel
}

// resolveFrame computes the clear receptions of node u during its listening
// frame g:
//
//   - every transmission slot on g's channel from a neighbor that reaches u
//     and overlaps g is collected (erased slots are dropped when a loss
//     model is active);
//   - a collected slot that lies entirely within g is received iff no slot
//     from a different sender overlaps it (slots of the same sender never
//     overlap each other);
//   - at most one delivery per sender per frame is reported, at the end
//     time of the earliest clear slot.
//
// Frames of neighbors must cover the real-time extent of g; the caller
// guarantees this (RunAsync generates everything up front, RunAsyncOnline
// maintains it as a scheduling invariant).
func (env *asyncEnv) resolveFrame(uid topology.NodeID, g asyncFrame) []delivery {
	if g.action.Mode != radio.Receive {
		return nil
	}
	c := g.action.Channel
	type txSlot struct {
		start, end float64
		from       topology.NodeID
	}
	var slots []txSlot
	for _, w := range env.nw.Neighbors(uid) {
		if !env.nw.Reaches(w, uid) {
			continue
		}
		if !env.nw.Span(uid, w).Contains(c) {
			continue
		}
		wf := env.frames[w]
		// First frame of w possibly overlapping g: the one before the
		// first frame starting at or after g.start.
		idx := sort.SearchFloat64s(env.starts[w][:len(wf)], g.start)
		if idx > 0 {
			idx--
		}
		for ; idx < len(wf); idx++ {
			fr := wf[idx]
			if fr.start >= g.end {
				break
			}
			if fr.end <= g.start {
				continue
			}
			if fr.action.Mode != radio.Transmit || fr.action.Channel != c {
				continue
			}
			for s := 0; s < env.slotsPerFrame; s++ {
				ss, se := env.timelines[w].FrameSlotInterval(idx, s)
				if se <= g.start || ss >= g.end {
					continue
				}
				// Unreliable channels: the slot may fade at u.
				if env.loss.erased() {
					continue
				}
				slots = append(slots, txSlot{start: ss, end: se, from: w})
			}
		}
	}
	var out []delivery
	delivered := make(map[topology.NodeID]bool)
	for i, cand := range slots {
		if delivered[cand.from] {
			continue
		}
		if cand.start < g.start || cand.end > g.end {
			continue // partially heard: cannot be decoded
		}
		clear := true
		for j, other := range slots {
			if i == j || other.from == cand.from {
				continue
			}
			if other.start < cand.end && cand.start < other.end {
				clear = false
				break
			}
		}
		if clear {
			delivered[cand.from] = true
			out = append(out, delivery{at: cand.end, from: cand.from, to: uid, ch: c})
		}
	}
	return out
}
