package sim

import (
	"math"
	"slices"

	"m2hew/internal/channel"
	"m2hew/internal/clock"
	"m2hew/internal/dynamics"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// delivery is one resolved clear reception.
type delivery struct {
	at       float64
	from, to topology.NodeID
	ch       channel.ID
}

// txSlot is one transmission slot overlapping the listening frame under
// resolution.
type txSlot struct {
	start, end float64
	from       topology.NodeID
}

// idxSlot is a txSlot carrying its collection-order index through the
// sort-by-start sweep, so sweep verdicts can be written back to
// collection-order flags.
type idxSlot struct {
	txSlot
	idx int32
}

// asyncEnv bundles the state the frame-reception resolver reads, plus the
// scratch buffers it reuses across frames (an env belongs to one run on one
// goroutine; resolveFrame is called once per listening frame, so per-frame
// allocations would dominate the engine's allocation profile). Both the
// pre-generating engine (RunAsync) and the online engine (RunAsyncOnline)
// resolve receptions through it, so the two implementations share the exact
// reception semantics and can be differentially tested against each other.
type asyncEnv struct {
	nw            *topology.Network
	cands         [][]topology.Candidate // per listener: decodable transmitters
	world         *dynamics.World        // nil for static runs
	frames        [][]asyncFrame
	starts        [][]float64 // frame start times per node, for binary search
	timelines     []*clock.Timeline
	slotsPerFrame int
	loss          *LossModel

	// Scratch buffers, reused across resolveFrame calls:
	txBuf    []txSlot   // collected candidate slots, in collection order
	sweepBuf []idxSlot  // the same slots, sorted by start for the sweep
	flagBuf  []bool     // per collected slot: overlapped by no other sender?
	outBuf   []delivery // resolved deliveries (returned; valid until next call)
	seenBuf  []bool     // per node: already delivered this frame (reset per frame)

	// lastCollected is the number of candidate transmission slots the most
	// recent resolveFrame call collected (0 for non-listening frames) —
	// the engines' EventFrameResolve accounting.
	lastCollected int
}

// candsFor returns the candidate table row the resolver should use for
// listener uid's frame g: the static network table, or — for dynamic runs —
// the table of the epoch containing the frame's start. A listener inactive
// in that epoch has no candidates (and an inactive transmitter appears in
// no row), so churn gates reception in both directions through the table
// alone. Sampling at the frame start pins each frame to exactly one epoch;
// a transmission straddling the boundary counts iff the listening frame it
// lands in started while the link existed.
//
//nd:hotpath
func (env *asyncEnv) candsFor(uid topology.NodeID, g asyncFrame) []topology.Candidate {
	if env.world == nil {
		return env.cands[uid]
	}
	return env.world.At(env.world.EpochOf(g.start)).Cands[uid]
}

// resolveFrame computes the clear receptions of node u during its listening
// frame g:
//
//   - every transmission slot on g's channel from a neighbor that reaches u
//     and overlaps g is collected (erased slots are dropped when a loss
//     model is active);
//   - a collected slot that lies entirely within g is received iff no slot
//     from a different sender overlaps it (slots of the same sender never
//     overlap each other);
//   - at most one delivery per sender per frame is reported, at the end
//     time of the earliest clear slot.
//
// The overlap test runs as a sort-by-start interval sweep (see clearFlags)
// instead of the quadratic all-pairs scan resolveFrameNaive keeps as the
// reference implementation; differential tests pin the two to identical
// output, including loss-model draw order (all draws happen during
// collection, which both share).
//
// Frames of neighbors must cover the real-time extent of g; the caller
// guarantees this (RunAsync generates everything up front, RunAsyncOnline
// maintains it as a scheduling invariant). The returned slice is owned by
// the env and is invalidated by the next resolveFrame call.
//
//nd:hotpath
func (env *asyncEnv) resolveFrame(uid topology.NodeID, g asyncFrame) []delivery {
	env.lastCollected = 0
	if g.action.Mode != radio.Receive {
		return nil
	}
	slots := env.collectSlots(uid, g)
	env.lastCollected = len(slots)
	if len(slots) == 0 {
		return nil
	}
	flags := env.clearFlags(slots)

	// Length check, not nil check: a scratch-held env outlives one run and
	// the next network may be larger. Stale values don't matter — the loop
	// below resets exactly the entries the delivery pass reads.
	if len(env.seenBuf) < env.nw.N() {
		env.seenBuf = make([]bool, env.nw.N())
	}
	for _, s := range slots {
		env.seenBuf[s.from] = false
	}
	out := env.outBuf[:0]
	for i, cand := range slots {
		if env.seenBuf[cand.from] {
			continue
		}
		if cand.start < g.start || cand.end > g.end {
			continue // partially heard: cannot be decoded
		}
		if flags[i] {
			env.seenBuf[cand.from] = true
			out = append(out, delivery{at: cand.end, from: cand.from, to: uid, ch: g.action.Channel})
		}
	}
	env.outBuf = out
	return out
}

// collectSlots gathers, into the env's reused buffer, every transmission
// slot on g's channel from a neighbor that reaches uid and overlaps g.
// Collection order — ascending neighbor, then frame, then slot — is part of
// the reproducibility contract: the loss model consumes exactly one erasure
// draw per overlapping slot, in this order.
//
//nd:hotpath
func (env *asyncEnv) collectSlots(uid topology.NodeID, g asyncFrame) []txSlot {
	c := g.action.Channel
	slots := env.txBuf[:0]
	// The candidate table walks the same ascending-neighbor order as
	// Neighbors(uid) with the Reaches and non-empty-span filters resolved up
	// front; both filters precede every loss draw, so the draw sequence is
	// unchanged (a neighbor with an empty span fails the Contains check
	// below before drawing anything).
	for _, cand := range env.candsFor(uid, g) {
		if !cand.Span.Contains(c) {
			continue
		}
		w := cand.From
		wf := env.frames[w]
		// First frame of w possibly overlapping g: the one before the
		// first frame starting at or after g.start. Hand-rolled lower
		// bound — equivalent to sort.SearchFloat64s, minus the per-probe
		// closure call that dominated the resolver's profile.
		ws := env.starts[w][:len(wf)]
		lo, hi := 0, len(ws)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ws[mid] < g.start {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		idx := lo
		if idx > 0 {
			idx--
		}
		for ; idx < len(wf); idx++ {
			fr := wf[idx]
			if fr.start >= g.end {
				break
			}
			if fr.end <= g.start {
				continue
			}
			if fr.action.Mode != radio.Transmit || fr.action.Channel != c {
				continue
			}
			for s := 0; s < env.slotsPerFrame; s++ {
				ss, se := env.timelines[w].FrameSlotInterval(idx, s)
				if se <= g.start || ss >= g.end {
					continue
				}
				// Unreliable channels: the slot may fade at u.
				if env.loss.erased() {
					continue
				}
				slots = append(slots, txSlot{start: ss, end: se, from: w})
			}
		}
	}
	env.txBuf = slots
	return slots
}

// cmpIdxSlotStart orders sweep slots by start time. Ties may sort either
// way: clearFlags' strict-inequality queries flag both members of an
// overlapping pair regardless of their relative order.
func cmpIdxSlotStart(a, b idxSlot) int {
	switch {
	case a.start < b.start:
		return -1
	case a.start > b.start:
		return 1
	default:
		return 0
	}
}

// clearFlags reports, for each collected slot, whether no slot of a
// different sender overlaps it ("overlaps" with strict inequalities:
// touching endpoints do not interfere). One sort plus two linear sweeps
// replace the naive all-pairs scan:
//
//   - sorted by start, a pair (i before j) overlaps iff i.end > j.start
//     (i.start ≤ j.start < j.end gives the other half for free, slot
//     intervals being never empty);
//   - the forward sweep flags j iff some earlier-sorted slot of a
//     different sender ends after j.start — a running max-end query;
//   - the backward sweep symmetrically flags i iff some later-sorted slot
//     of a different sender starts before i.end — a running min-start
//     query.
//
// Both queries exclude the probing slot's own sender with the two-leader
// trick: maxEnd1 is the best end seen with its sender lead1, maxEnd2 the
// best end among every other sender. The best end excluding sender f is
// then maxEnd1 when lead1 ≠ f, else maxEnd2. Whenever the lead changes,
// the old maxEnd1 — which dominates every earlier end and belongs to a
// different sender than the new lead — becomes maxEnd2, preserving the
// invariant. Results are written into the env's reused flag buffer,
// indexed by collection order.
//
//nd:hotpath
func (env *asyncEnv) clearFlags(slots []txSlot) []bool {
	k := len(slots)
	if cap(env.flagBuf) < k {
		env.flagBuf = make([]bool, k)
	}
	flags := env.flagBuf[:k]
	for i := range flags {
		flags[i] = true
	}
	if k < 2 {
		return flags
	}

	sorted := env.sweepBuf[:0]
	for i, s := range slots {
		sorted = append(sorted, idxSlot{txSlot: s, idx: int32(i)})
	}
	env.sweepBuf = sorted
	slices.SortFunc(sorted, cmpIdxSlotStart)

	// Forward sweep: overlaps with earlier-sorted slots. The -Inf
	// sentinels make the first queries vacuously false.
	const none = topology.NodeID(-1)
	lead1 := none
	maxEnd1 := math.Inf(-1)
	maxEnd2 := math.Inf(-1)
	for _, s := range sorted {
		other := maxEnd1
		if s.from == lead1 {
			other = maxEnd2
		}
		if other > s.start {
			flags[s.idx] = false
		}
		switch {
		case s.from == lead1:
			if s.end > maxEnd1 {
				maxEnd1 = s.end
			}
		case s.end > maxEnd1:
			maxEnd2 = maxEnd1
			lead1 = s.from
			maxEnd1 = s.end
		case s.end > maxEnd2:
			maxEnd2 = s.end
		}
	}

	// Backward sweep: overlaps with later-sorted slots.
	lead1 = none
	minStart1 := math.Inf(1)
	minStart2 := math.Inf(1)
	for i := len(sorted) - 1; i >= 0; i-- {
		s := sorted[i]
		other := minStart1
		if s.from == lead1 {
			other = minStart2
		}
		if other < s.end {
			flags[s.idx] = false
		}
		switch {
		case s.from == lead1:
			if s.start < minStart1 {
				minStart1 = s.start
			}
		case s.start < minStart1:
			minStart2 = minStart1
			lead1 = s.from
			minStart1 = s.start
		case s.start < minStart2:
			minStart2 = s.start
		}
	}
	return flags
}

// resolveFrameNaive is the reference resolver: the pre-optimization
// quadratic clear-check kept verbatim, allocating fresh state per frame, so
// differential tests can pin the sweep-based resolveFrame to it. The
// loss-model draw order lives entirely in the shared collection phase, so
// the two consume identical draw sequences. Production engines never call
// this.
func (env *asyncEnv) resolveFrameNaive(uid topology.NodeID, g asyncFrame) []delivery {
	if g.action.Mode != radio.Receive {
		return nil
	}
	slots := env.collectSlots(uid, g)
	var out []delivery
	delivered := make(map[topology.NodeID]bool)
	for i, cand := range slots {
		if delivered[cand.from] {
			continue
		}
		if cand.start < g.start || cand.end > g.end {
			continue // partially heard: cannot be decoded
		}
		clear := true
		for j, other := range slots {
			if i == j || other.from == cand.from {
				continue
			}
			if other.start < cand.end && cand.start < other.end {
				clear = false
				break
			}
		}
		if clear {
			delivered[cand.from] = true
			out = append(out, delivery{at: cand.end, from: cand.from, to: uid, ch: g.action.Channel})
		}
	}
	return out
}
