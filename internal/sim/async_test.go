package sim

import (
	"math"
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// scriptAsync plays back fixed per-frame actions (repeating the last) and
// records deliveries.
type scriptAsync struct {
	actions   []radio.Action
	delivered []radio.Message
}

func (s *scriptAsync) NextFrame(frame int) radio.Action {
	if frame < len(s.actions) {
		return s.actions[frame]
	}
	if len(s.actions) == 0 {
		return radio.Action{Mode: radio.Quiet}
	}
	return s.actions[len(s.actions)-1]
}

func (s *scriptAsync) Deliver(msg radio.Message) {
	s.delivered = append(s.delivered, msg)
}

func TestAsyncConfigValidation(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	good := func() AsyncConfig {
		return AsyncConfig{
			Network:   nw,
			Nodes:     []AsyncNode{{Protocol: &scriptAsync{}}, {Protocol: &scriptAsync{}}},
			FrameLen:  3,
			MaxFrames: 5,
		}
	}
	if _, err := RunAsync(good()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := map[string]func(*AsyncConfig){
		"nil network":    func(c *AsyncConfig) { c.Network = nil },
		"node count":     func(c *AsyncConfig) { c.Nodes = c.Nodes[:1] },
		"nil protocol":   func(c *AsyncConfig) { c.Nodes[0].Protocol = nil },
		"zero frame len": func(c *AsyncConfig) { c.FrameLen = 0 },
		"neg slots":      func(c *AsyncConfig) { c.SlotsPerFrame = -1 },
		"zero frames":    func(c *AsyncConfig) { c.MaxFrames = 0 },
	}
	for name, mutate := range cases {
		cfg := good()
		mutate(&cfg)
		if _, err := RunAsync(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAsyncAlignedCleanReception(t *testing.T) {
	// Ideal clocks, same start: transmitter frame 0 is exactly the
	// receiver's frame 0, so all three slots are contained and clear.
	nw := pairNet(t, channel.NewSet(2), channel.NewSet(2))
	sender := &scriptAsync{actions: []radio.Action{tx(2)}}
	receiver := &scriptAsync{actions: []radio.Action{rx(2)}}
	res, err := RunAsync(AsyncConfig{
		Network:   nw,
		Nodes:     []AsyncNode{{Protocol: sender}, {Protocol: receiver}},
		FrameLen:  3,
		MaxFrames: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(receiver.delivered) != 1 {
		t.Fatalf("deliveries = %d, want 1 (one per frame pair, not per slot)", len(receiver.delivered))
	}
	if receiver.delivered[0].From != 0 {
		t.Fatalf("message from %d", receiver.delivered[0].From)
	}
	at, ok := res.Coverage.FirstCovered(topology.Link{From: 0, To: 1})
	if !ok {
		t.Fatal("link (0,1) not covered")
	}
	// Earliest clear slot ends at 1 (slots of length 1 in a frame of 3).
	if math.Abs(at-1) > 1e-9 {
		t.Fatalf("covered at %v, want 1 (end of first slot)", at)
	}
	if len(sender.delivered) != 0 {
		t.Fatal("half duplex violated")
	}
}

func TestAsyncDifferentChannelsNoReception(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0, 1), channel.NewSet(0, 1))
	sender := &scriptAsync{actions: []radio.Action{tx(0)}}
	receiver := &scriptAsync{actions: []radio.Action{rx(1)}}
	_, err := RunAsync(AsyncConfig{
		Network:   nw,
		Nodes:     []AsyncNode{{Protocol: sender}, {Protocol: receiver}},
		FrameLen:  3,
		MaxFrames: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(receiver.delivered) != 0 {
		t.Fatal("received across channels")
	}
}

func TestAsyncCollision(t *testing.T) {
	// Star hub listening; both leaves transmit concurrently with identical
	// ideal clocks: every slot collides.
	nw, err := topology.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		nw.SetAvail(topology.NodeID(u), channel.NewSet(0))
	}
	hub := &scriptAsync{actions: []radio.Action{rx(0)}}
	leaf1 := &scriptAsync{actions: []radio.Action{tx(0)}}
	leaf2 := &scriptAsync{actions: []radio.Action{tx(0)}}
	_, err = RunAsync(AsyncConfig{
		Network:   nw,
		Nodes:     []AsyncNode{{Protocol: hub}, {Protocol: leaf1}, {Protocol: leaf2}},
		FrameLen:  3,
		MaxFrames: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hub.delivered) != 0 {
		t.Fatal("colliding transmissions were delivered")
	}
}

func TestAsyncPartialSlotNotDecoded(t *testing.T) {
	// Receiver starts mid-way through the sender's middle slot: the first
	// slot [0,1) and part of slot [1,2) precede the receiver's frame
	// [1.5,4.5); only slot [2,3) is fully contained... and it is clear, so
	// exactly one delivery happens for frame pair (0, receiver frame 0).
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	sender := &scriptAsync{actions: []radio.Action{tx(0), quiet()}}
	receiver := &scriptAsync{actions: []radio.Action{rx(0), quiet()}}
	res, err := RunAsync(AsyncConfig{
		Network:   nw,
		Nodes:     []AsyncNode{{Protocol: sender}, {Protocol: receiver, Start: 1.5}},
		FrameLen:  3,
		MaxFrames: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(receiver.delivered) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(receiver.delivered))
	}
	at, _ := res.Coverage.FirstCovered(topology.Link{From: 0, To: 1})
	if math.Abs(at-3) > 1e-9 {
		t.Fatalf("covered at %v, want 3 (end of the contained slot)", at)
	}
}

func TestAsyncNoContainedSlotNoReception(t *testing.T) {
	// Receiver's listening frame is [2.5, 3.25) (short frame via
	// SlotsPerFrame=1, FrameLen=0.75): sender's slots [2,3) and [3,4)
	// overlap it but neither is contained.
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	sender := &scriptAsync{actions: []radio.Action{tx(0)}}
	receiver := &scriptAsync{actions: []radio.Action{rx(0)}}
	// Use two separate runs because FrameLen is global; model the receiver
	// with same FrameLen but offset chosen so no slot is contained.
	// Frame length 3, slots of 1. Receiver start 2.5: frame [2.5,5.5).
	// Sender slots: [0,1),[1,2),[2,3) frame0 (tx); frame1 quiet.
	// Contained slot in [2.5,5.5): none of frame 0's ([2,3) straddles 2.5).
	sender.actions = []radio.Action{tx(0), quiet(), quiet()}
	receiver.actions = []radio.Action{rx(0), quiet(), quiet()}
	_, err := RunAsync(AsyncConfig{
		Network:   nw,
		Nodes:     []AsyncNode{{Protocol: sender}, {Protocol: receiver, Start: 2.5}},
		FrameLen:  3,
		MaxFrames: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(receiver.delivered) != 0 {
		t.Fatalf("deliveries = %d, want 0 (no contained slot)", len(receiver.delivered))
	}
}

func TestAsyncPartialOverlapStillInterferes(t *testing.T) {
	// Hub listens on [0,3). Leaf 1's slot [1,2) is contained. Leaf 2
	// (start 1.5) transmits its first slot [1.5,2.5), overlapping leaf 1's
	// slot: the contained slot is jammed. Leaf 1's slots [0,1) and [2,3):
	// [0,1) is contained and clear (leaf 2 silent before 1.5), so exactly
	// one delivery from leaf 1 still occurs — but [1,2) must not be the
	// one; verify by checking coverage time is 1 (end of slot [0,1)).
	nw, err := topology.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		nw.SetAvail(topology.NodeID(u), channel.NewSet(0))
	}
	hub := &scriptAsync{actions: []radio.Action{rx(0), quiet()}}
	leaf1 := &scriptAsync{actions: []radio.Action{tx(0), quiet()}}
	leaf2 := &scriptAsync{actions: []radio.Action{tx(0), quiet()}}
	res, err := RunAsync(AsyncConfig{
		Network: nw,
		Nodes: []AsyncNode{
			{Protocol: hub},
			{Protocol: leaf1},
			{Protocol: leaf2, Start: 1.5},
		},
		FrameLen:  3,
		MaxFrames: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	at, ok := res.Coverage.FirstCovered(topology.Link{From: 1, To: 0})
	if !ok {
		t.Fatal("leaf 1 never received cleanly")
	}
	if math.Abs(at-1) > 1e-9 {
		t.Fatalf("clear reception at %v, want 1 (slot [1,2) must be jammed)", at)
	}
	// Leaf 2's own slots: [1.5,2.5) overlaps leaf1's [1,2) and [2,3) →
	// jammed; [2.5,3.5) and [3.5,4.5) not contained in [0,3). So no
	// delivery from leaf 2.
	if _, ok := res.Coverage.FirstCovered(topology.Link{From: 2, To: 0}); ok {
		t.Fatal("leaf 2 delivered despite jam/containment")
	}
}

func TestAsyncInvalidActionRejected(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	bad := &scriptAsync{actions: []radio.Action{tx(9)}}
	other := &scriptAsync{actions: []radio.Action{rx(0)}}
	if _, err := RunAsync(AsyncConfig{
		Network:   nw,
		Nodes:     []AsyncNode{{Protocol: bad}, {Protocol: other}},
		FrameLen:  3,
		MaxFrames: 1,
	}); err == nil {
		t.Fatal("out-of-set transmission accepted")
	}
}

func TestAsyncTsIsMaxStart(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	res, err := RunAsync(AsyncConfig{
		Network: nw,
		Nodes: []AsyncNode{
			{Protocol: &scriptAsync{}, Start: 2},
			{Protocol: &scriptAsync{}, Start: 7.5},
		},
		FrameLen:  3,
		MaxFrames: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ts != 7.5 {
		t.Fatalf("Ts = %v, want 7.5", res.Ts)
	}
}

func TestAsyncOnDeliverChronological(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	// Alternating roles across frames produce several deliveries.
	p0 := &scriptAsync{actions: []radio.Action{tx(0), rx(0), tx(0), rx(0)}}
	p1 := &scriptAsync{actions: []radio.Action{rx(0), tx(0), rx(0), tx(0)}}
	var times []float64
	_, err := RunAsync(AsyncConfig{
		Network:   nw,
		Nodes:     []AsyncNode{{Protocol: p0}, {Protocol: p1}},
		FrameLen:  3,
		MaxFrames: 4,
		Observer: ObserverFunc(func(e Event) {
			if e.Kind == EventDeliver {
				times = append(times, e.Time)
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(times) == 0 {
		t.Fatal("no deliveries")
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("deliveries out of order: %v", times)
		}
	}
}

func TestAsyncFullFrames(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	res, err := RunAsync(AsyncConfig{
		Network: nw,
		Nodes: []AsyncNode{
			{Protocol: &scriptAsync{}},
			{Protocol: &scriptAsync{}, Start: 1},
		},
		FrameLen:  3,
		MaxFrames: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 (ideal clock, start 0): frames [0,3), [3,6), ... Full frames
	// within [0, 9] = 3.
	if got := res.FullFrames(0, 0, 9); got != 3 {
		t.Fatalf("FullFrames(0,0,9) = %d, want 3", got)
	}
	// Node 1 starts at 1: frames [1,4), [4,7), [7,10). Within [0,9]: 2.
	if got := res.FullFrames(1, 0, 9); got != 2 {
		t.Fatalf("FullFrames(1,0,9) = %d, want 2", got)
	}
	if got := res.MinFullFrames(0, 9); got != 2 {
		t.Fatalf("MinFullFrames = %d, want 2", got)
	}
}

func TestAsyncIntegrationCompletesIdealClocks(t *testing.T) {
	nw, err := topology.Clique(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 2); err != nil {
		t.Fatal(err)
	}
	root := rng.New(99)
	nodes := make([]AsyncNode, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), 3, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		nodes[u] = AsyncNode{Protocol: p}
	}
	res, err := RunAsync(AsyncConfig{
		Network:   nw,
		Nodes:     nodes,
		FrameLen:  3,
		MaxFrames: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("async discovery incomplete: %s", res.Coverage)
	}
	// Tables must match spans.
	for u := 0; u < nw.N(); u++ {
		table := nodes[u].Protocol.(*core.Async).Neighbors()
		for _, v := range nw.Neighbors(topology.NodeID(u)) {
			common, ok := table.Common(v)
			if !ok || !common.Equal(nw.Span(topology.NodeID(u), v)) {
				t.Fatalf("node %d table wrong for %d: %v", u, v, common)
			}
		}
	}
}

func TestAsyncIntegrationCompletesWithDriftAndOffsets(t *testing.T) {
	nw, err := topology.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignBlockOverlap(nw, 2, 1); err != nil {
		t.Fatal(err)
	}
	root := rng.New(31)
	nodes := make([]AsyncNode, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), 2, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		drift, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.02, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		nodes[u] = AsyncNode{
			Protocol: p,
			Start:    root.Float64() * 10,
			Drift:    drift,
		}
	}
	res, err := RunAsync(AsyncConfig{
		Network:   nw,
		Nodes:     nodes,
		FrameLen:  3,
		MaxFrames: 8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("drifting async discovery incomplete: %s", res.Coverage)
	}
	if res.CompletionTime <= res.Ts {
		t.Fatalf("completion %v before Ts %v", res.CompletionTime, res.Ts)
	}
}

func TestAsyncDeterminism(t *testing.T) {
	run := func() float64 {
		nw, err := topology.Clique(3)
		if err != nil {
			t.Fatal(err)
		}
		if err := topology.AssignHomogeneous(nw, 2); err != nil {
			t.Fatal(err)
		}
		root := rng.New(555)
		nodes := make([]AsyncNode, nw.N())
		for u := 0; u < nw.N(); u++ {
			p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), 2, root.Split())
			if err != nil {
				t.Fatal(err)
			}
			drift, err := clock.NewRandomWalk(0.1, 0.02, root.Split())
			if err != nil {
				t.Fatal(err)
			}
			nodes[u] = AsyncNode{Protocol: p, Drift: drift, Start: float64(u)}
		}
		res, err := RunAsync(AsyncConfig{Network: nw, Nodes: nodes, FrameLen: 3, MaxFrames: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatal("incomplete")
		}
		return res.CompletionTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different completion times: %v vs %v", a, b)
	}
}
