package sim

import (
	"m2hew/internal/clock"
)

// This file implements the frame-geometry notions of the paper's Section IV
// (Definitions 1–4) as checkable predicates over clock timelines, plus the
// constructive procedure of Lemma 8. The lemma-audit experiment (E6) and the
// drift-sensitivity experiment (E9) evaluate these against simulated drifting
// clocks; the property tests assert them wholesale for δ ≤ 1/7.

// FramePair identifies a frame of a transmitter timeline and a frame of a
// receiver timeline.
type FramePair struct {
	// V is the frame index on the transmitter's timeline.
	V int
	// U is the frame index on the receiver's timeline.
	U int
}

// alignEps returns the containment tolerance for a timeline: boundaries that
// coincide up to accumulated floating-point error count as contained, which
// matches the paper's convention that a slot boundary lying exactly on a
// frame boundary is inside ("if b₁ lies on the boundary of two slots, we
// select the earlier one").
func alignEps(tl *clock.Timeline) float64 {
	return 1e-9 * tl.FrameLen()
}

// Aligned reports whether the frame pair ⟨fv of tlV, gu of tlU⟩ is aligned
// per Definition 1: at least one slot of fv lies completely within gu.
func Aligned(tlV *clock.Timeline, fv int, tlU *clock.Timeline, gu int) bool {
	gs, ge := tlU.FrameInterval(gu)
	eps := alignEps(tlU)
	for s := 0; s < tlV.SlotsPerFrame(); s++ {
		ss, se := tlV.FrameSlotInterval(fv, s)
		if ss >= gs-eps && se <= ge+eps {
			return true
		}
	}
	return false
}

// OverlappingFrames returns the frames of tlB that overlap (with positive
// duration) frame f of tlA — the overlap(f, b) of Definition 2. The result
// is an ascending range of frame indexes.
func OverlappingFrames(tlA *clock.Timeline, f int, tlB *clock.Timeline) []int {
	fs, fe := tlA.FrameInterval(f)
	// Overlaps shorter than eps are floating-point artifacts of shared
	// boundaries, not real overlaps.
	eps := alignEps(tlB)
	g := tlB.FirstFullFrameAfter(fs)
	// The frame before the first full frame after fs may still overlap.
	for g > 0 {
		_, pe := tlB.FrameInterval(g - 1)
		if pe > fs+eps {
			g--
		} else {
			break
		}
	}
	var out []int
	for {
		gs, ge := tlB.FrameInterval(g)
		if gs >= fe-eps {
			break
		}
		if ge > fs+eps {
			out = append(out, g)
		}
		g++
	}
	return out
}

// MaxOverlap returns the maximum, over the first frameCount frames f of tlA,
// of |overlap(f, tlB)| — the quantity Lemma 4 bounds by 3 when both drift
// processes respect δ ≤ 1/7 (the proof only needs δ ≤ 1/3).
func MaxOverlap(tlA *clock.Timeline, tlB *clock.Timeline, frameCount int) int {
	maxN := 0
	for f := 0; f < frameCount; f++ {
		if n := len(OverlappingFrames(tlA, f, tlB)); n > maxN {
			maxN = n
		}
	}
	return maxN
}

// FindAlignedPairAfter searches for an aligned pair among the first two full
// frames of tlV and tlU after real time T — exactly the candidate set of
// Lemma 7, which proves one of the four pairs must be aligned when δ ≤ 1/7.
// It returns the first aligned pair in (V, U)-lexicographic order.
func FindAlignedPairAfter(tlV, tlU *clock.Timeline, t float64) (FramePair, bool) {
	fv1 := tlV.FirstFullFrameAfter(t)
	gu1 := tlU.FirstFullFrameAfter(t)
	for _, fv := range []int{fv1, fv1 + 1} {
		for _, gu := range []int{gu1, gu1 + 1} {
			if Aligned(tlV, fv, tlU, gu) {
				return FramePair{V: fv, U: gu}, true
			}
		}
	}
	return FramePair{}, false
}

// AdmissibleSequence constructs a sequence of frame pairs that is admissible
// with respect to the link (v,u) in the sense of Definition 4, following the
// two-step construction in the proof of Lemma 8:
//
//  1. Build γ: starting from ts, repeatedly apply Lemma 7 to the earlier of
//     the end times of the previous pair's frames, collecting aligned pairs
//     that strictly advance on both timelines.
//  2. Build σ: keep every third pair of γ, which restores the
//     disjoint-overlap property (condition 4 of Definition 4).
//
// Construction stops when either timeline's next candidate frame index would
// reach frameBudget. The returned sequence satisfies all four admissibility
// conditions whenever both clocks respect δ ≤ 1/7; for larger drift the
// Lemma 7 step can fail, in which case construction stops early (the
// drift-sensitivity experiment measures exactly this).
func AdmissibleSequence(tlV, tlU *clock.Timeline, ts float64, frameBudget int) []FramePair {
	var gamma []FramePair
	t := ts
	for {
		pair, ok := FindAlignedPairAfter(tlV, tlU, t)
		if !ok {
			break
		}
		if pair.V+1 >= frameBudget || pair.U+1 >= frameBudget {
			break
		}
		gamma = append(gamma, pair)
		_, fvEnd := tlV.FrameInterval(pair.V)
		_, guEnd := tlU.FrameInterval(pair.U)
		if fvEnd < guEnd {
			t = fvEnd
		} else {
			t = guEnd
		}
	}
	// σ: every third pair starting with the first.
	var sigma []FramePair
	for i := 0; i < len(gamma); i += 3 {
		sigma = append(sigma, gamma[i])
	}
	return sigma
}

// CheckAdmissible verifies the four conditions of Definition 4 for a
// sequence of frame pairs over the given timelines. It returns the 1-based
// number of the first violated condition, or 0 if the sequence is
// admissible. (Condition 1 — frames belong to the right nodes — is
// structural here: pairs index into the two timelines by construction.)
func CheckAdmissible(tlV, tlU *clock.Timeline, seq []FramePair) int {
	for k := 0; k < len(seq); k++ {
		// Condition 3: every pair aligned.
		if !Aligned(tlV, seq[k].V, tlU, seq[k].U) {
			return 3
		}
		if k == 0 {
			continue
		}
		// Condition 2: strict precedence on both timelines.
		if seq[k-1].V >= seq[k].V || seq[k-1].U >= seq[k].U {
			return 2
		}
		// Condition 4: overlapAll of consecutive receiver frames disjoint.
		// overlapAll(g) is determined by the real-time extent of g across
		// every node; for the pairwise audit we check that no frame of
		// either timeline overlaps both receiver frames, which is the
		// binding case (a third node's frame overlapping both would need to
		// span the same gap and is checked by the engine-level experiment).
		if overlapAllIntersect(tlV, tlU, seq[k-1].U, seq[k].U) {
			return 4
		}
	}
	return 0
}

// overlapAllIntersect reports whether some frame of tlV or tlU overlaps both
// frame gPrev and frame gCur of tlU.
func overlapAllIntersect(tlV, tlU *clock.Timeline, gPrev, gCur int) bool {
	for _, tl := range []*clock.Timeline{tlV, tlU} {
		prev := OverlappingFrames(tlU, gPrev, tl)
		cur := OverlappingFrames(tlU, gCur, tl)
		seen := make(map[int]bool, len(prev))
		for _, f := range prev {
			seen[f] = true
		}
		for _, f := range cur {
			if seen[f] {
				return true
			}
		}
	}
	return false
}
