package sim

import (
	"testing"
	"testing/quick"

	"m2hew/internal/clock"
	"m2hew/internal/rng"
)

func idealTimeline(t *testing.T, start float64) *clock.Timeline {
	t.Helper()
	tl, err := clock.NewTimeline(start, 3, 3, clock.Ideal)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func driftTimeline(t *testing.T, start, delta float64, seed uint64) *clock.Timeline {
	t.Helper()
	w, err := clock.NewRandomWalk(delta, delta/3+0.001, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	tl, err := clock.NewTimeline(start, 3, 3, w)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestAlignedIdenticalClocks(t *testing.T) {
	a := idealTimeline(t, 0)
	b := idealTimeline(t, 0)
	// Identical frames: trivially aligned (all slots contained).
	if !Aligned(a, 0, b, 0) {
		t.Fatal("identical frames not aligned")
	}
	if !Aligned(a, 5, b, 5) {
		t.Fatal("identical later frames not aligned")
	}
	// Disjoint frames are not aligned.
	if Aligned(a, 0, b, 1) {
		t.Fatal("disjoint frames aligned")
	}
}

func TestAlignedHalfFrameOffset(t *testing.T) {
	// Offset 1.5 with frame length 3, slots of 1: frame a0 = [0,3), slots
	// [0,1),[1,2),[2,3). Frame b0 = [1.5,4.5). Slot [2,3) ⊂ [1.5,4.5):
	// aligned.
	a := idealTimeline(t, 0)
	b := idealTimeline(t, 1.5)
	if !Aligned(a, 0, b, 0) {
		t.Fatal("half-offset frames should be aligned")
	}
	// Reverse direction: b0's slots [1.5,2.5),[2.5,3.5),[3.5,4.5); frame
	// a0 = [0,3) contains [1.5,2.5): aligned.
	if !Aligned(b, 0, a, 0) {
		t.Fatal("reverse half-offset frames should be aligned")
	}
}

func TestAlignedSlotOffsetBoundary(t *testing.T) {
	// Offset exactly one slot: a's slot [1,2) coincides with b frame
	// boundary region. b0 = [1,4): a0 slots [1,2) and [2,3) contained.
	a := idealTimeline(t, 0)
	b := idealTimeline(t, 1)
	if !Aligned(a, 0, b, 0) {
		t.Fatal("one-slot-offset frames should be aligned")
	}
}

func TestOverlappingFramesIdeal(t *testing.T) {
	a := idealTimeline(t, 0)
	b := idealTimeline(t, 0)
	// Same phase: each frame overlaps exactly its counterpart.
	got := OverlappingFrames(a, 2, b)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("same-phase overlap = %v, want [2]", got)
	}
	// Offset phase: each frame overlaps two frames of the other.
	c := idealTimeline(t, 1.5)
	got = OverlappingFrames(a, 2, c)
	if len(got) != 2 {
		t.Fatalf("offset overlap = %v, want 2 frames", got)
	}
}

func TestOverlappingFramesFirstFrame(t *testing.T) {
	// Frame 0 of a late starter overlaps the early starter's frames
	// correctly (regression guard for the step-back logic at index 0).
	a := idealTimeline(t, 10)
	b := idealTimeline(t, 0)
	got := OverlappingFrames(a, 0, b) // a frame 0 = [10,13); b frames [9,12),[12,15)
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("overlap = %v, want [3 4]", got)
	}
}

func TestLemma4MaxOverlapBound(t *testing.T) {
	// Lemma 4: with drift ≤ 1/7, a frame overlaps at most 3 frames of any
	// other node. Stress with adversarial alternating drift in opposite
	// phases.
	mk := func(invert bool, start float64) *clock.Timeline {
		alt, err := clock.NewAlternating(clock.MaxAsyncDrift, 4, invert)
		if err != nil {
			t.Fatal(err)
		}
		tl, err := clock.NewTimeline(start, 3, 3, alt)
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	a := mk(false, 0)
	b := mk(true, 1.7)
	if got := MaxOverlap(a, b, 400); got > 3 {
		t.Fatalf("Lemma 4 violated: max overlap %d > 3", got)
	}
	if got := MaxOverlap(b, a, 400); got > 3 {
		t.Fatalf("Lemma 4 violated (reverse): max overlap %d > 3", got)
	}
}

func TestLemma4ViolatedAboveOneThird(t *testing.T) {
	// The Lemma 4 proof needs δ ≤ 1/3; with δ = 0.45 and opposite constant
	// drifts a frame can contain ≥ 2 full frames of the other clock, i.e.
	// overlap 4. This validates that the audit can detect violations.
	slow, err := clock.NewTimeline(0, 3, 3, clock.Constant(-0.45))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := clock.NewTimeline(0, 3, 3, clock.Constant(0.45))
	if err != nil {
		t.Fatal(err)
	}
	if got := MaxOverlap(slow, fast, 300); got <= 3 {
		t.Fatalf("expected Lemma 4 violation at δ=0.45, max overlap %d", got)
	}
}

func TestLemma7AlignedPairExists(t *testing.T) {
	// For arbitrary start offsets and drift ≤ 1/7, an aligned pair exists
	// among the first two full frames of each node after any T ≥ T_s (the
	// lemma presupposes both nodes have started by T).
	err := quick.Check(func(seedA, seedB uint64, offRaw, tRaw uint8) bool {
		offset := float64(offRaw) / 17.0
		tQuery := offset + float64(tRaw)/3.0
		a := driftTimelineQ(seedA, 0)
		b := driftTimelineQ(seedB, offset)
		_, ok := FindAlignedPairAfter(a, b, tQuery)
		return ok
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// driftTimelineQ builds a δ=1/7 random-walk timeline without *testing.T for
// property functions.
func driftTimelineQ(seed uint64, start float64) *clock.Timeline {
	w, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.05, rng.New(seed))
	if err != nil {
		panic(err)
	}
	tl, err := clock.NewTimeline(start, 3, 3, w)
	if err != nil {
		panic(err)
	}
	return tl
}

func TestLemma7CanFailAboveBound(t *testing.T) {
	// At δ = 0.45 with opposite constant drifts, alignment within the
	// Lemma 7 window is no longer guaranteed. Find at least one T where it
	// fails, demonstrating Assumption 1 is load-bearing.
	slow, err := clock.NewTimeline(0, 3, 3, clock.Constant(-0.45))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := clock.NewTimeline(0.3, 3, 3, clock.Constant(0.45))
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for i := 0; i < 200; i++ {
		if _, ok := FindAlignedPairAfter(slow, fast, float64(i)*0.7); !ok {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("expected some Lemma 7 failures at δ=0.45; audit may be vacuous")
	}
}

func TestAdmissibleSequenceConstruction(t *testing.T) {
	a := driftTimeline(t, 0, clock.MaxAsyncDrift, 1)
	b := driftTimeline(t, 2.2, clock.MaxAsyncDrift, 2)
	const budget = 600
	seq := AdmissibleSequence(a, b, 0, budget)
	if len(seq) == 0 {
		t.Fatal("empty admissible sequence")
	}
	if violation := CheckAdmissible(a, b, seq); violation != 0 {
		t.Fatalf("sequence violates admissibility condition %d", violation)
	}
	// Lemma 8: from M full frames of both nodes the construction yields at
	// least M/6 admissible pairs. Frame budget 600 on both ⇒ ≥ 100.
	if len(seq) < budget/6 {
		t.Fatalf("sequence length %d < budget/6 = %d", len(seq), budget/6)
	}
}

func TestAdmissibleSequenceIdealClocks(t *testing.T) {
	a := idealTimeline(t, 0)
	b := idealTimeline(t, 0)
	seq := AdmissibleSequence(a, b, 0, 300)
	if violation := CheckAdmissible(a, b, seq); violation != 0 {
		t.Fatalf("ideal-clock sequence violates condition %d", violation)
	}
	if len(seq) < 300/6 {
		t.Fatalf("ideal-clock sequence too short: %d", len(seq))
	}
}

func TestCheckAdmissibleDetectsViolations(t *testing.T) {
	a := idealTimeline(t, 0)
	b := idealTimeline(t, 0)
	// Condition 3: non-aligned pair.
	if v := CheckAdmissible(a, b, []FramePair{{V: 0, U: 5}}); v != 3 {
		t.Fatalf("non-aligned pair: violation %d, want 3", v)
	}
	// Condition 2: non-increasing indexes (the repeated pair is aligned, so
	// the precedence check is the one that fires).
	if v := CheckAdmissible(a, b, []FramePair{{V: 5, U: 5}, {V: 5, U: 5}}); v != 2 {
		t.Fatalf("non-advancing pair: violation %d, want 2", v)
	}
	// Condition 4: consecutive receiver frames too close (adjacent frames
	// of u are overlapped by... adjacent ideal frames share only
	// boundaries, so use the same frame twice? that hits condition 2.
	// Instead use consecutive frames g and g+1: a frame of v that overlaps
	// both requires drift; with ideal clocks same phase none exists, so
	// conditions hold:
	if v := CheckAdmissible(a, b, []FramePair{{V: 1, U: 1}, {V: 2, U: 2}}); v != 0 {
		t.Fatalf("adjacent ideal pairs: violation %d, want 0", v)
	}
	// With an offset third... simulate via offset timeline pair where a
	// frame of v straddles receiver frames g and g+1.
	c := idealTimeline(t, 1.5) // frames straddle b's boundaries
	if v := CheckAdmissible(c, b, []FramePair{{V: 1, U: 1}, {V: 2, U: 2}}); v != 4 {
		t.Fatalf("straddling transmitter: violation %d, want 4", v)
	}
}

func TestAdmissibleSequenceStopsAtBudget(t *testing.T) {
	a := idealTimeline(t, 0)
	b := idealTimeline(t, 0)
	seq := AdmissibleSequence(a, b, 0, 30)
	for _, p := range seq {
		if p.V >= 30 || p.U >= 30 {
			t.Fatalf("pair %+v beyond frame budget", p)
		}
	}
}
