package sim

import (
	"testing"

	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// benchNetwork builds a 30-node CR-ish network for engine throughput
// benchmarks.
func benchNetwork(b *testing.B) *topology.Network {
	b.Helper()
	r := rng.New(1)
	nw, err := topology.GeometricConnected(30, 0.35, r, 100)
	if err != nil {
		b.Fatal(err)
	}
	if err := topology.AssignUniformK(nw, 8, 4, r); err != nil {
		b.Fatal(err)
	}
	return nw
}

func BenchmarkRunSync(b *testing.B) {
	nw := benchNetwork(b)
	params := nw.ComputeParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := rng.New(uint64(i) + 1)
		protos := make([]SyncProtocol, nw.N())
		for u := 0; u < nw.N(); u++ {
			p, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), params.Delta, root.Split())
			if err != nil {
				b.Fatal(err)
			}
			protos[u] = p
		}
		res, err := RunSync(SyncConfig{
			Network:       nw,
			Protocols:     protos,
			MaxSlots:      2000,
			RunToMaxSlots: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SlotsSimulated), "slots")
	}
}

func benchAsyncNodes(b *testing.B, nw *topology.Network, deltaEst int, seed uint64) []AsyncNode {
	b.Helper()
	root := rng.New(seed)
	nodes := make([]AsyncNode, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
		if err != nil {
			b.Fatal(err)
		}
		drift, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.02, root.Split())
		if err != nil {
			b.Fatal(err)
		}
		nodes[u] = AsyncNode{Protocol: p, Start: root.Float64() * 10, Drift: drift}
	}
	return nodes
}

func BenchmarkRunAsync(b *testing.B) {
	nw := benchNetwork(b)
	params := nw.ComputeParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunAsync(AsyncConfig{
			Network:   nw,
			Nodes:     benchAsyncNodes(b, nw, params.Delta, uint64(i)+1),
			FrameLen:  3,
			MaxFrames: 800,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkRunAsyncOnline(b *testing.B) {
	nw := benchNetwork(b)
	params := nw.ComputeParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunAsyncOnline(AsyncConfig{
			Network:   nw,
			Nodes:     benchAsyncNodes(b, nw, params.Delta, uint64(i)+1),
			FrameLen:  3,
			MaxFrames: 800,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkAdmissibleSequence(b *testing.B) {
	w1, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.03, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	w2, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.03, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	a, err := clock.NewTimeline(0, 3, 3, w1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := clock.NewTimeline(1.7, 3, 3, w2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := AdmissibleSequence(a, c, 0, 500)
		if len(seq) == 0 {
			b.Fatal("empty sequence")
		}
	}
}
