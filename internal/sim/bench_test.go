package sim

import (
	"testing"

	"m2hew/internal/clock"
	"m2hew/internal/core"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// benchNetwork builds a 30-node CR-ish network for engine throughput
// benchmarks.
func benchNetwork(b *testing.B) *topology.Network {
	b.Helper()
	return benchNetworkN(b, 30, 0.35)
}

// benchNetworkN builds an n-node connected geometric network with the same
// channel assignment as the canonical 30-node scenario. The large-n
// benchmarks use it to exercise the regime where per-run table construction
// and timeline growth dominate.
func benchNetworkN(b *testing.B, n int, radius float64) *topology.Network {
	b.Helper()
	r := rng.New(1)
	nw, err := topology.GeometricConnected(n, radius, r, 100)
	if err != nil {
		b.Fatal(err)
	}
	if err := topology.AssignUniformK(nw, 8, 4, r); err != nil {
		b.Fatal(err)
	}
	return nw
}

func BenchmarkRunSync(b *testing.B) {
	nw := benchNetwork(b)
	params := nw.ComputeParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := rng.New(uint64(i) + 1)
		protos := make([]SyncProtocol, nw.N())
		for u := 0; u < nw.N(); u++ {
			p, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), params.Delta, root.Split())
			if err != nil {
				b.Fatal(err)
			}
			protos[u] = p
		}
		res, err := RunSync(SyncConfig{
			Network:       nw,
			Protocols:     protos,
			MaxSlots:      2000,
			RunToMaxSlots: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SlotsSimulated), "slots")
	}
}

func benchAsyncNodes(b *testing.B, nw *topology.Network, deltaEst int, seed uint64) []AsyncNode {
	b.Helper()
	root := rng.New(seed)
	nodes := make([]AsyncNode, nw.N())
	for u := 0; u < nw.N(); u++ {
		p, err := core.NewAsync(nw.Avail(topology.NodeID(u)), deltaEst, root.Split())
		if err != nil {
			b.Fatal(err)
		}
		drift, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.02, root.Split())
		if err != nil {
			b.Fatal(err)
		}
		nodes[u] = AsyncNode{Protocol: p, Start: root.Float64() * 10, Drift: drift}
	}
	return nodes
}

func BenchmarkRunAsync(b *testing.B) {
	nw := benchNetwork(b)
	params := nw.ComputeParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunAsync(AsyncConfig{
			Network:   nw,
			Nodes:     benchAsyncNodes(b, nw, params.Delta, uint64(i)+1),
			FrameLen:  3,
			MaxFrames: 800,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkRunAsyncOnline(b *testing.B) {
	nw := benchNetwork(b)
	params := nw.ComputeParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunAsyncOnline(AsyncConfig{
			Network:   nw,
			Nodes:     benchAsyncNodes(b, nw, params.Delta, uint64(i)+1),
			FrameLen:  3,
			MaxFrames: 800,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// BenchmarkRunSyncScratch is BenchmarkRunSync at steady state: one scratch
// reused across iterations, so per-run buffers and the network-keyed tables
// amortize away. The gap to BenchmarkRunSync is the trial-loop saving.
func BenchmarkRunSyncScratch(b *testing.B) {
	nw := benchNetwork(b)
	params := nw.ComputeParams()
	scratch := NewSyncScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := rng.New(uint64(i) + 1)
		protos := make([]SyncProtocol, nw.N())
		for u := 0; u < nw.N(); u++ {
			p, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), params.Delta, root.Split())
			if err != nil {
				b.Fatal(err)
			}
			protos[u] = p
		}
		if _, err := RunSync(SyncConfig{
			Network:       nw,
			Protocols:     protos,
			MaxSlots:      2000,
			RunToMaxSlots: true,
			Scratch:       scratch,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAsyncScratch is BenchmarkRunAsync at steady state: one scratch
// with timeline recycling reused across iterations (the bench never reads
// result Timelines, so recycling is safe). This is the configuration the
// m2hew trial loop runs per worker.
func BenchmarkRunAsyncScratch(b *testing.B) {
	nw := benchNetwork(b)
	params := nw.ComputeParams()
	scratch := NewAsyncScratch()
	scratch.RecycleTimelines = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunAsync(AsyncConfig{
			Network:   nw,
			Nodes:     benchAsyncNodes(b, nw, params.Delta, uint64(i)+1),
			FrameLen:  3,
			MaxFrames: 800,
			Scratch:   scratch,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunSyncN200 exercises the synchronous engine in the large-n
// regime (200 nodes), where the grid-bucket topology scan and the dense
// neighbor table matter most.
func BenchmarkRunSyncN200(b *testing.B) {
	nw := benchNetworkN(b, 200, 0.12)
	params := nw.ComputeParams()
	scratch := NewSyncScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := rng.New(uint64(i) + 1)
		protos := make([]SyncProtocol, nw.N())
		for u := 0; u < nw.N(); u++ {
			p, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), params.Delta, root.Split())
			if err != nil {
				b.Fatal(err)
			}
			protos[u] = p
		}
		if _, err := RunSync(SyncConfig{
			Network:       nw,
			Protocols:     protos,
			MaxSlots:      500,
			RunToMaxSlots: true,
			Scratch:       scratch,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunSyncN200Observer is BenchmarkRunSyncN200 with a
// deliveries-only masked observer attached — the shape ndperf's headline
// row uses. It pins the cost of the kernel path when an observer is present
// but subscribed away from the per-listener idle/collision flood.
func BenchmarkRunSyncN200Observer(b *testing.B) {
	nw := benchNetworkN(b, 200, 0.12)
	params := nw.ComputeParams()
	scratch := NewSyncScratch()
	var deliveries int64
	obs := OnlyEvents(MaskOf(EventDeliver), ObserverFunc(func(e Event) {
		deliveries++
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := rng.New(uint64(i) + 1)
		protos := make([]SyncProtocol, nw.N())
		for u := 0; u < nw.N(); u++ {
			p, err := core.NewSyncUniform(nw.Avail(topology.NodeID(u)), params.Delta, root.Split())
			if err != nil {
				b.Fatal(err)
			}
			protos[u] = p
		}
		if _, err := RunSync(SyncConfig{
			Network:       nw,
			Protocols:     protos,
			MaxSlots:      500,
			RunToMaxSlots: true,
			Scratch:       scratch,
			Observer:      obs,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAsyncN100 exercises the asynchronous engine in the large-n
// regime (100 nodes) at steady state.
func BenchmarkRunAsyncN100(b *testing.B) {
	nw := benchNetworkN(b, 100, 0.16)
	params := nw.ComputeParams()
	scratch := NewAsyncScratch()
	scratch.RecycleTimelines = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunAsync(AsyncConfig{
			Network:   nw,
			Nodes:     benchAsyncNodes(b, nw, params.Delta, uint64(i)+1),
			FrameLen:  3,
			MaxFrames: 200,
			Scratch:   scratch,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdmissibleSequence(b *testing.B) {
	w1, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.03, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	w2, err := clock.NewRandomWalk(clock.MaxAsyncDrift, 0.03, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	a, err := clock.NewTimeline(0, 3, 3, w1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := clock.NewTimeline(1.7, 3, 3, w2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq := AdmissibleSequence(a, c, 0, 500)
		if len(seq) == 0 {
			b.Fatal("empty sequence")
		}
	}
}
