package sim

// Differential testing of the asynchronous engine against a brute-force
// interval resolver: for each listening frame the reference scans every
// transmission slot of every node in the whole run (no binary search, no
// pointer advancement) and applies the containment and overlap rules
// verbatim. Divergence pinpoints indexing or search-window bugs in the
// engine's resolver.

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/clock"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// asyncRefDelivery is one reception per the reference resolver.
type asyncRefDelivery struct {
	from, to topology.NodeID
	at       float64
}

// referenceResolveAsync recomputes all receptions of a scripted async run.
func referenceResolveAsync(
	nw *topology.Network,
	script [][]radio.Action,
	timelines []*clock.Timeline,
	slotsPerFrame int,
) []asyncRefDelivery {
	type interval struct {
		start, end float64
		from       topology.NodeID
		ch         channel.ID
	}
	// Enumerate every transmission slot in the run.
	var txs []interval
	for u := 0; u < nw.N(); u++ {
		for f, a := range script[u] {
			if a.Mode != radio.Transmit {
				continue
			}
			for s := 0; s < slotsPerFrame; s++ {
				ss, se := timelines[u].FrameSlotInterval(f, s)
				txs = append(txs, interval{start: ss, end: se, from: topology.NodeID(u), ch: a.Channel})
			}
		}
	}
	var out []asyncRefDelivery
	for u := 0; u < nw.N(); u++ {
		uid := topology.NodeID(u)
		for f, a := range script[u] {
			if a.Mode != radio.Receive {
				continue
			}
			gs, ge := timelines[u].FrameInterval(f)
			// Transmissions that arrive at u on its channel and overlap the
			// frame.
			var arriving []interval
			for _, tx := range txs {
				if tx.from == uid || tx.ch != a.Channel {
					continue
				}
				if !nw.Reaches(tx.from, uid) || !nw.Span(uid, tx.from).Contains(a.Channel) {
					continue
				}
				if tx.end <= gs || tx.start >= ge {
					continue
				}
				arriving = append(arriving, tx)
			}
			// Earliest clear contained slot per sender.
			best := make(map[topology.NodeID]float64)
			for i, cand := range arriving {
				if cand.start < gs || cand.end > ge {
					continue
				}
				clear := true
				for j, other := range arriving {
					if i == j || other.from == cand.from {
						continue
					}
					if other.start < cand.end && cand.start < other.end {
						clear = false
						break
					}
				}
				if !clear {
					continue
				}
				if prev, ok := best[cand.from]; !ok || cand.end < prev {
					best[cand.from] = cand.end
				}
			}
			for from, at := range best {
				out = append(out, asyncRefDelivery{from: from, to: uid, at: at})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].at != out[j].at {
			return out[i].at < out[j].at
		}
		if out[i].to != out[j].to {
			return out[i].to < out[j].to
		}
		return out[i].from < out[j].from
	})
	return out
}

func TestAsyncEngineMatchesReference(t *testing.T) {
	root := rng.New(424242)
	for trial := 0; trial < 60; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("scenario%03d", trial), func(t *testing.T) {
			n := r.IntN(5) + 2
			universe := r.IntN(3) + 1
			nw, err := topology.ErdosRenyi(n, 0.6, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := topology.AssignBernoulli(nw, universe, 0.7, r); err != nil {
				t.Fatal(err)
			}
			if r.Bernoulli(0.4) {
				if err := topology.DropRandomDirections(nw, 0.5, r); err != nil {
					t.Fatal(err)
				}
			}
			slotsPerFrame := r.IntN(3) + 1
			frames := r.IntN(20) + 4
			frameLen := 1 + r.Float64()*4

			// Per-node scripts, drifts, starts — and private timelines for
			// the reference (the engine builds its own; NewTimeline is
			// deterministic per drift process, so use per-node Constant
			// drift to keep both sides identical).
			script := make([][]radio.Action, n)
			nodes := make([]AsyncNode, n)
			timelines := make([]*clock.Timeline, n)
			for u := 0; u < n; u++ {
				avail := nw.Avail(topology.NodeID(u))
				script[u] = make([]radio.Action, frames)
				for f := 0; f < frames; f++ {
					switch r.IntN(5) {
					case 0:
						script[u][f] = radio.Action{Mode: radio.Quiet}
					case 1, 2:
						c, err := avail.Pick(r)
						if err != nil {
							t.Fatal(err)
						}
						script[u][f] = radio.Action{Mode: radio.Transmit, Channel: c}
					default:
						c, err := avail.Pick(r)
						if err != nil {
							t.Fatal(err)
						}
						script[u][f] = radio.Action{Mode: radio.Receive, Channel: c}
					}
				}
				drift := clock.Constant(r.UniformFloat64(-0.14, 0.14))
				start := r.Float64() * 3 * frameLen
				nodes[u] = AsyncNode{
					Protocol: &scriptAsync{actions: script[u]},
					Start:    start,
					Drift:    drift,
				}
				tl, err := clock.NewTimeline(start, frameLen, slotsPerFrame, drift)
				if err != nil {
					t.Fatal(err)
				}
				timelines[u] = tl
			}

			var got []asyncRefDelivery
			_, err = RunAsync(AsyncConfig{
				Network:       nw,
				Nodes:         nodes,
				FrameLen:      frameLen,
				SlotsPerFrame: slotsPerFrame,
				MaxFrames:     frames,
				Observer: ObserverFunc(func(e Event) {
					if e.Kind == EventDeliver {
						got = append(got, asyncRefDelivery{from: e.From, to: e.To, at: e.Time})
					}
				}),
			})
			if err != nil {
				t.Fatal(err)
			}
			want := referenceResolveAsync(nw, script, timelines, slotsPerFrame)
			if len(got) != len(want) {
				t.Fatalf("engine delivered %d, reference %d\nengine: %v\nreference: %v",
					len(got), len(want), got, want)
			}
			for i := range want {
				if got[i].from != want[i].from || got[i].to != want[i].to ||
					math.Abs(got[i].at-want[i].at) > 1e-9 {
					t.Fatalf("delivery %d: engine %+v, reference %+v", i, got[i], want[i])
				}
			}
		})
	}
}
