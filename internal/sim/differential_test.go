package sim

// Differential testing of the synchronous engine: a deliberately naive
// reference implementation of the radio model (quadratic scans, no early
// exits, no slot loop reuse) resolves the same randomized scenarios, and
// every delivery must match. The reference is written directly from the
// paper's Section II prose, so a divergence means one of the two encodings
// of the model is wrong.

import (
	"fmt"
	"testing"

	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// refDelivery is one reception according to the reference resolver.
type refDelivery struct {
	slot     int
	from, to topology.NodeID
}

// referenceResolve computes all receptions of a scripted synchronous run
// from first principles: for every slot, for every listener u, node v's
// message arrives iff (1) v transmits on u's listening channel, (2) v's
// transmissions can arrive at u (adjacency, direction, span), and (3) no
// other node w satisfying (1) and (2) exists.
func referenceResolve(nw *topology.Network, script [][]radio.Action) []refDelivery {
	var out []refDelivery
	for slot, actions := range script {
		for u := 0; u < nw.N(); u++ {
			if actions[u].Mode != radio.Receive {
				continue
			}
			c := actions[u].Channel
			var arrivals []topology.NodeID
			for v := 0; v < nw.N(); v++ {
				if v == u || actions[v].Mode != radio.Transmit || actions[v].Channel != c {
					continue
				}
				if !nw.Reaches(topology.NodeID(v), topology.NodeID(u)) {
					continue
				}
				if !nw.Span(topology.NodeID(u), topology.NodeID(v)).Contains(c) {
					continue
				}
				arrivals = append(arrivals, topology.NodeID(v))
			}
			if len(arrivals) == 1 {
				out = append(out, refDelivery{slot: slot, from: arrivals[0], to: topology.NodeID(u)})
			}
		}
	}
	return out
}

// replaySync plays a fixed action script through scriptSync protocols and
// collects the engine's deliveries.
func replaySync(t *testing.T, nw *topology.Network, script [][]radio.Action) []refDelivery {
	t.Helper()
	n := nw.N()
	protos := make([]SyncProtocol, n)
	for u := 0; u < n; u++ {
		actions := make([]radio.Action, len(script))
		for slot := range script {
			actions[slot] = script[slot][u]
		}
		protos[u] = &scriptSync{actions: actions}
	}
	var got []refDelivery
	_, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     protos,
		MaxSlots:      len(script),
		RunToMaxSlots: true,
		Observer: ObserverFunc(func(e Event) {
			if e.Kind == EventDeliver {
				got = append(got, refDelivery{slot: e.Slot, from: e.From, to: e.To})
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// randomScenario builds a random network (possibly asymmetric, possibly with
// restricted spans) plus a random action script.
func randomScenario(t *testing.T, r *rng.Source) (*topology.Network, [][]radio.Action) {
	t.Helper()
	n := r.IntN(8) + 2
	universe := r.IntN(4) + 1
	nw, err := topology.ErdosRenyi(n, 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignBernoulli(nw, universe, 0.6, r); err != nil {
		t.Fatal(err)
	}
	if r.Bernoulli(0.5) {
		if err := topology.DropRandomDirections(nw, 0.4, r); err != nil {
			t.Fatal(err)
		}
	}
	if r.Bernoulli(0.3) && universe > 1 {
		if err := topology.RestrictSpansRandomly(nw, 1, r); err != nil {
			t.Fatal(err)
		}
	}
	slots := r.IntN(30) + 5
	script := make([][]radio.Action, slots)
	for s := range script {
		script[s] = make([]radio.Action, n)
		for u := 0; u < n; u++ {
			avail := nw.Avail(topology.NodeID(u))
			switch r.IntN(5) {
			case 0:
				script[s][u] = radio.Action{Mode: radio.Quiet}
			case 1, 2:
				c, err := avail.Pick(r)
				if err != nil {
					t.Fatal(err)
				}
				script[s][u] = radio.Action{Mode: radio.Transmit, Channel: c}
			default:
				c, err := avail.Pick(r)
				if err != nil {
					t.Fatal(err)
				}
				script[s][u] = radio.Action{Mode: radio.Receive, Channel: c}
			}
		}
	}
	return nw, script
}

func TestSyncEngineMatchesReference(t *testing.T) {
	root := rng.New(20260704)
	for trial := 0; trial < 150; trial++ {
		trial := trial
		r := root.Split()
		t.Run(fmt.Sprintf("scenario%03d", trial), func(t *testing.T) {
			nw, script := randomScenario(t, r)
			want := referenceResolve(nw, script)
			got := replaySync(t, nw, script)
			if len(got) != len(want) {
				t.Fatalf("engine delivered %d, reference %d\nengine: %v\nreference: %v",
					len(got), len(want), got, want)
			}
			// Both are produced in (slot, receiver) order scans, but be
			// robust: compare as sets.
			seen := make(map[refDelivery]int, len(want))
			for _, d := range want {
				seen[d]++
			}
			for _, d := range got {
				if seen[d] == 0 {
					t.Fatalf("engine delivered %+v which the reference did not", d)
				}
				seen[d]--
			}
		})
	}
}
