package sim

import (
	"reflect"
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
	"m2hew/internal/trace"
)

// TestSyncCollisionIdleEvents hand-checks the synchronous engine's full
// event stream on a 3-node line (0–1–2, one channel):
//
//	slot 0: 0 and 2 transmit, 1 listens  → collision at 1 (first survivor 0)
//	slot 1: 0 transmits, 1 and 2 listen  → deliver 0→1; idle at 2 (its only
//	        candidate, node 1, is not transmitting — the post-scan idle path)
//	slot 2: everyone listens             → idle at 0, 1, 2 (silent-channel path)
func TestSyncCollisionIdleEvents(t *testing.T) {
	nw, err := topology.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 1); err != nil {
		t.Fatal(err)
	}
	protos := []SyncProtocol{
		&scriptSync{actions: []radio.Action{tx(0), tx(0), rx(0)}},
		&scriptSync{actions: []radio.Action{rx(0), rx(0), rx(0)}},
		&scriptSync{actions: []radio.Action{tx(0), rx(0), rx(0)}},
	}
	var got []Event
	_, err = RunSync(SyncConfig{
		Network:       nw,
		Protocols:     protos,
		MaxSlots:      3,
		RunToMaxSlots: true,
		Observer: ObserverFunc(func(e Event) {
			e.Actions = nil // borrowed; drop before retaining
			got = append(got, e)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: EventSlot, Time: 0, Slot: 0},
		{Kind: EventCollision, Time: 0, Slot: 0, From: 0, To: 1, Channel: 0},
		{Kind: EventSlot, Time: 1, Slot: 1},
		{Kind: EventDeliver, Time: 1, Slot: 1, From: 0, To: 1, Channel: 0},
		{Kind: EventIdle, Time: 1, Slot: 1, To: 2, Channel: 0},
		{Kind: EventSlot, Time: 2, Slot: 2},
		{Kind: EventIdle, Time: 2, Slot: 2, To: 0, Channel: 0},
		{Kind: EventIdle, Time: 2, Slot: 2, To: 1, Channel: 0},
		{Kind: EventIdle, Time: 2, Slot: 2, To: 2, Channel: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d:\n%+v", len(got), len(want), got)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// asyncEventPair builds the standard two-node asynchronous event scenario:
// node 0 always transmits, node 1 always listens, ideal clocks, common
// start, frame length 3, 2 frames.
func asyncEventPair(t *testing.T, obs Observer) AsyncConfig {
	t.Helper()
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	return AsyncConfig{
		Network: nw,
		Nodes: []AsyncNode{
			{Protocol: &scriptAsync{actions: []radio.Action{tx(0)}}},
			{Protocol: &scriptAsync{actions: []radio.Action{rx(0)}}},
		},
		FrameLen:  3,
		MaxFrames: 2,
		Observer:  obs,
	}
}

func TestAsyncFrameEvents(t *testing.T) {
	var got []Event
	cfg := asyncEventPair(t, ObserverFunc(func(e Event) { got = append(got, e) }))
	if _, err := RunAsync(cfg); err != nil {
		t.Fatal(err)
	}
	// Node-major frame events first (RunAsync resolves node by node), then
	// all deliveries chronologically. Each listening frame of node 1 fully
	// contains one 3-slot transmit frame of node 0: Collected = 3 slots,
	// Delivered = 1 (one delivery per sender per frame).
	want := []Event{
		{Kind: EventFrameStart, Time: 0, Slot: 0, Node: 0, Action: tx(0)},
		{Kind: EventFrameStart, Time: 3, Slot: 1, Node: 0, Action: tx(0)},
		{Kind: EventFrameStart, Time: 0, Slot: 0, Node: 1, Action: rx(0)},
		{Kind: EventFrameResolve, Time: 3, Slot: 0, Node: 1, Action: rx(0), Collected: 3, Delivered: 1},
		{Kind: EventFrameStart, Time: 3, Slot: 1, Node: 1, Action: rx(0)},
		{Kind: EventFrameResolve, Time: 6, Slot: 1, Node: 1, Action: rx(0), Collected: 3, Delivered: 1},
		{Kind: EventDeliver, Time: 1, From: 0, To: 1, Channel: 0},
		{Kind: EventDeliver, Time: 4, From: 0, To: 1, Channel: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d:\n%+v", len(got), len(want), got)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAsyncOnlineFrameEvents(t *testing.T) {
	var got []Event
	cfg := asyncEventPair(t, ObserverFunc(func(e Event) { got = append(got, e) }))
	if _, err := RunAsyncOnline(cfg); err != nil {
		t.Fatal(err)
	}
	// Online order: frames grouped at their resolution point, in global
	// frame-end order (ties broken by ascending node): node 0's tx frame
	// (start only), then node 1's rx frame with its delivery bracketed by
	// start/resolve.
	want := []Event{
		{Kind: EventFrameStart, Time: 0, Slot: 0, Node: 0, Action: tx(0)},
		{Kind: EventFrameStart, Time: 0, Slot: 0, Node: 1, Action: rx(0)},
		{Kind: EventDeliver, Time: 1, From: 0, To: 1, Channel: 0},
		{Kind: EventFrameResolve, Time: 3, Slot: 0, Node: 1, Action: rx(0), Collected: 3, Delivered: 1},
		{Kind: EventFrameStart, Time: 3, Slot: 1, Node: 0, Action: tx(0)},
		{Kind: EventFrameStart, Time: 3, Slot: 1, Node: 1, Action: rx(0)},
		{Kind: EventDeliver, Time: 4, From: 0, To: 1, Channel: 0},
		{Kind: EventFrameResolve, Time: 6, Slot: 1, Node: 1, Action: rx(0), Collected: 3, Delivered: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d:\n%+v", len(got), len(want), got)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestEventTraceObserver(t *testing.T) {
	if EventTraceObserver(nil) != nil {
		t.Error("EventTraceObserver(nil) should be nil")
	}
	ring, err := trace.NewRing(16)
	if err != nil {
		t.Fatal(err)
	}
	obs := EventTraceObserver(ring)
	obs.OnEvent(Event{Kind: EventSlot, Time: 2, Slot: 2, Actions: []radio.Action{
		tx(1), rx(1), {Mode: radio.Quiet},
	}})
	obs.OnEvent(Event{Kind: EventDeliver, Time: 2, From: 0, To: 1, Channel: 1})
	obs.OnEvent(Event{Kind: EventCollision, Time: 3, From: 0, To: 2, Channel: 1})
	obs.OnEvent(Event{Kind: EventIdle, Time: 3, To: 1, Channel: 0})
	obs.OnEvent(Event{Kind: EventFrameStart, Time: 1.5, Slot: 4, Node: 2, Action: rx(0)})
	obs.OnEvent(Event{Kind: EventFrameResolve, Time: 4.5, Slot: 4, Node: 2, Action: rx(0), Collected: 2, Delivered: 1})

	want := []trace.Event{
		{Time: 2, Kind: trace.KindTx, From: 0, Channel: 1},
		{Time: 2, Kind: trace.KindDeliver, From: 0, To: 1, Channel: 1},
		{Time: 3, Kind: trace.KindCollision, From: 0, To: 2, Channel: 1},
		{Time: 3, Kind: trace.KindIdle, To: 1, Channel: 0},
		{Time: 1.5, Kind: trace.KindFrameStart, From: 2, Frame: 4, Channel: 0, Note: "rx"},
		{Time: 4.5, Kind: trace.KindFrameResolve, From: 2, Frame: 4, Channel: 0, Note: "rx", Collected: 2, Delivered: 1},
	}
	got := ring.Events()
	if len(got) != len(want) {
		t.Fatalf("recorded %d events, want %d:\n%s", len(got), len(want), trace.Format(got))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// sinkAsync repeats one action forever and counts deliveries without
// retaining them.
type sinkAsync struct {
	act       radio.Action
	delivered int
}

func (s *sinkAsync) NextFrame(int) radio.Action { return s.act }
func (s *sinkAsync) Deliver(_ radio.Message)    { s.delivered++ }

// asyncAllocConfig builds a 4-node clique scenario where node 0 transmits
// and the rest listen — deliveries every listening frame, exercising both
// the resolver and the delivery path.
func asyncAllocConfig(t *testing.T) (AsyncConfig, []*sinkAsync) {
	t.Helper()
	nw, err := topology.Clique(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 1); err != nil {
		t.Fatal(err)
	}
	sinks := make([]*sinkAsync, 4)
	nodes := make([]AsyncNode, 4)
	for u := range nodes {
		act := radio.Action{Mode: radio.Receive, Channel: 0}
		if u == 0 {
			act = radio.Action{Mode: radio.Transmit, Channel: 0}
		}
		sinks[u] = &sinkAsync{act: act}
		nodes[u] = AsyncNode{Protocol: sinks[u]}
	}
	return AsyncConfig{Network: nw, Nodes: nodes, FrameLen: 3, MaxFrames: 64}, sinks
}

// TestAsyncNilObserverNoAllocs pins the asynchronous engines' telemetry
// cost at zero when disabled: with a nil observer the frame-event emission
// sites construct no Event values, so the engines perform only their fixed
// per-run setup (timelines, frame tables, env scratch, coverage). The
// budget sits far below the 64-frame × 4-node horizon, so one hidden
// per-frame or per-event allocation blows it.
func TestAsyncNilObserverNoAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(AsyncConfig) (*AsyncResult, error)
	}{
		{"RunAsync", RunAsync},
		{"RunAsyncOnline", RunAsyncOnline},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg, sinks := asyncAllocConfig(t)
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := tc.run(cfg); err != nil {
					t.Fatal(err)
				}
			})
			if sinks[1].delivered == 0 {
				t.Fatal("scenario produced no deliveries; the guard tests nothing")
			}
			if allocs > 600 {
				t.Errorf("%s with nil observer allocated %.0f objects per run", tc.name, allocs)
			}
		})
	}
}
