package sim

// Regression tests for engine hot-path hazards fixed alongside the resolver
// rework: the Heard-list aliasing seam (engines must snapshot a reporter's
// list at delivery time, not alias its backing array) and the
// FullFrames/MinFullFrames frame-budget clamp (bound audits must not count
// frames past the simulated horizon).

import (
	"testing"

	"m2hew/internal/radio"
	"m2hew/internal/topology"
)

// mutatingHeardSync transmits every slot and reports a Heard list whose
// backing array it overwrites in place on every step — the exact aliasing
// hazard: an engine that stores the returned slice instead of copying it
// would see all its delivered messages rewritten retroactively.
type mutatingHeardSync struct {
	h []topology.NodeID
}

func (p *mutatingHeardSync) Step(s int) radio.Action {
	p.h[0] = topology.NodeID(s)
	return radio.Action{Mode: radio.Transmit, Channel: 0}
}
func (p *mutatingHeardSync) Deliver(radio.Message)    {}
func (p *mutatingHeardSync) Heard() []topology.NodeID { return p.h }

// recordingSync listens on one channel and retains every delivered message.
type recordingSync struct {
	msgs []radio.Message
}

func (p *recordingSync) Step(int) radio.Action     { return radio.Action{Mode: radio.Receive, Channel: 0} }
func (p *recordingSync) Deliver(msg radio.Message) { p.msgs = append(p.msgs, msg) }

func TestSyncHeardSnapshotNotAliased(t *testing.T) {
	nw, err := topology.Clique(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 1); err != nil {
		t.Fatal(err)
	}
	sender := &mutatingHeardSync{h: make([]topology.NodeID, 1)}
	receiver := &recordingSync{}
	if _, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     []SyncProtocol{sender, receiver},
		MaxSlots:      8,
		RunToMaxSlots: true,
	}); err != nil {
		t.Fatal(err)
	}
	if len(receiver.msgs) != 8 {
		t.Fatalf("received %d messages, want 8", len(receiver.msgs))
	}
	for slot, msg := range receiver.msgs {
		if len(msg.Heard) != 1 || msg.Heard[0] != topology.NodeID(slot) {
			t.Fatalf("slot %d message Heard = %v, want [%d] — the engine aliased the reporter's slice",
				slot, msg.Heard, slot)
		}
	}
}

// heardAsync transmits every frame and reports a fixed-content Heard list
// through a slice the test mutates after the run.
type heardAsync struct {
	h []topology.NodeID
}

func (p *heardAsync) NextFrame(int) radio.Action {
	return radio.Action{Mode: radio.Transmit, Channel: 0}
}
func (p *heardAsync) Deliver(radio.Message)    {}
func (p *heardAsync) Heard() []topology.NodeID { return p.h }

// recordingAsync listens every frame and retains every delivered message.
type recordingAsync struct {
	msgs []radio.Message
}

func (p *recordingAsync) NextFrame(int) radio.Action {
	return radio.Action{Mode: radio.Receive, Channel: 0}
}
func (p *recordingAsync) Deliver(msg radio.Message) { p.msgs = append(p.msgs, msg) }

func TestAsyncHeardSnapshotNotAliased(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(AsyncConfig) (*AsyncResult, error)
	}{
		{"RunAsync", RunAsync},
		{"RunAsyncOnline", RunAsyncOnline},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nw, err := topology.Clique(2)
			if err != nil {
				t.Fatal(err)
			}
			if err := topology.AssignHomogeneous(nw, 1); err != nil {
				t.Fatal(err)
			}
			sender := &heardAsync{h: []topology.NodeID{42}}
			receiver := &recordingAsync{}
			if _, err := tc.run(AsyncConfig{
				Network:   nw,
				Nodes:     []AsyncNode{{Protocol: sender}, {Protocol: receiver}},
				FrameLen:  3,
				MaxFrames: 4,
			}); err != nil {
				t.Fatal(err)
			}
			if len(receiver.msgs) == 0 {
				t.Fatal("no deliveries; the aliasing check tests nothing")
			}
			sender.h[0] = 99 // the hazard: mutate the reporter's array post-run
			for i, msg := range receiver.msgs {
				if len(msg.Heard) != 1 || msg.Heard[0] != 42 {
					t.Fatalf("message %d Heard = %v, want [42] — the engine aliased the reporter's slice",
						i, msg.Heard)
				}
			}
		})
	}
}

// TestFullFramesStopAtFrameBudget pins the frame-budget clamp: the bound
// audit must count only frames the engine actually simulated, not walk the
// lazily extending timeline into frames no protocol ever decided.
func TestFullFramesStopAtFrameBudget(t *testing.T) {
	nw, err := topology.Clique(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 1); err != nil {
		t.Fatal(err)
	}
	res, err := RunAsync(AsyncConfig{
		Network: nw,
		Nodes: []AsyncNode{
			{Protocol: &scriptAsync{}}, // all-quiet
			{Protocol: &scriptAsync{}},
		},
		FrameLen:  1,
		MaxFrames: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// An interval reaching far past the horizon: only the 5 simulated
	// frames may count.
	if got := res.FullFrames(0, 0, 1000); got != 5 {
		t.Errorf("FullFrames over a past-horizon interval = %d, want 5", got)
	}
	if got := res.MinFullFrames(0, 1000); got != 5 {
		t.Errorf("MinFullFrames over a past-horizon interval = %d, want 5", got)
	}
	// Within the horizon the clamp is inert.
	if got := res.FullFrames(0, 0, 3.5); got != 3 {
		t.Errorf("FullFrames within the horizon = %d, want 3", got)
	}
	// FrameBudget 0 (a result not produced by an engine) disables the
	// clamp: the timeline extends to whatever the interval needs.
	unclamped := &AsyncResult{Timelines: res.Timelines}
	if got := unclamped.FullFrames(0, 0, 10.5); got != 10 {
		t.Errorf("unclamped FullFrames = %d, want 10", got)
	}
}
