package sim

// This file is the engine-internals reporting seam: a once-per-run summary
// of what the engine machinery itself did — which resolver path ran, how
// the stepper batches filled, whether the scratch's network tables were
// reused — as opposed to what happened in the simulated network (the Event
// stream). The two ride the same Observer attachment point so composition,
// masking and the nil fast path need no second seam: an observer that also
// implements InternalsSink receives exactly one OnInternals call when the
// run finishes.
//
// The contract mirrors the Event seam's cost rules:
//
//   - Zero cost when unused: the engine type-asserts the observer once at
//     setup; without a sink the hot loop carries no internals tallies
//     beyond one dead boolean test per slot.
//   - Zero allocation when used: Internals is a plain value passed by
//     value; per-slot tallying is integer arithmetic on run-local fields.
//   - Zero perturbation: a sink whose EventMask is zero keeps the batched
//     resolver path and the engine's event-free fast paths — reading the
//     internals never changes which internals there are to read. (A full
//     observer still flips batched → kernel, exactly as it did before this
//     seam existed; the report then says so.)

// Internals is one synchronous run's engine-internals summary. All fields
// are totals over the run, sized for lossless merging across trials.
type Internals struct {
	// SlotsSimulated mirrors SyncResult.SlotsSimulated.
	SlotsSimulated int64
	// TiledSlots, BatchedSlots, KernelSlots and ScalarSlots attribute the
	// run's slots to the resolver path that executed them. Path selection
	// is fixed for a whole run, so exactly one of the four equals
	// SlotsSimulated and the other three are zero — their sum always
	// equals SlotsSimulated.
	TiledSlots   int64
	BatchedSlots int64
	KernelSlots  int64
	ScalarSlots  int64
	// HaloExchanges counts tiled-path halo segment copies from a NEIGHBOR
	// tile (a tile reading its own transmitter mask does not count);
	// HaloWordsCopied sums their word widths. Both are zero off the tiled
	// path. Tiled runs attribute stepper batches per (slot, tile with
	// active nodes) rather than per slot.
	HaloExchanges   int64
	HaloWordsCopied int64
	// MaskBudgetOverruns is 1 when a static run's packed candidate-mask
	// table exceeded its word budget, forcing the scalar path on a network
	// the kernels could otherwise have served; 0 otherwise (dynamic runs
	// take the scalar path by design and do not count).
	MaskBudgetOverruns int64
	// StepperBatches counts decision-pull batches (one per slot);
	// StepperBatchNodes sums their sizes (decisions pulled), so the mean
	// batch size is StepperBatchNodes/StepperBatches. MaxStepperBatch is
	// the largest single batch. BatchSteps counts the batches served by a
	// single BatchStepper.NextBatch call rather than per-node Next calls.
	StepperBatches    int64
	StepperBatchNodes int64
	MaxStepperBatch   int64
	BatchSteps        int64
	// ScratchTableHits / ScratchTableMisses report whether the run reused
	// the scratch's cached network tables (hit) or rebuilt them (miss);
	// one of the two is 1, the other 0. Across a trial batch on one
	// worker the hit rate exposes how often networks are recycled.
	ScratchTableHits   int64
	ScratchTableMisses int64
}

// Merge adds o's totals into in.
func (in *Internals) Merge(o Internals) {
	in.SlotsSimulated += o.SlotsSimulated
	in.TiledSlots += o.TiledSlots
	in.HaloExchanges += o.HaloExchanges
	in.HaloWordsCopied += o.HaloWordsCopied
	in.BatchedSlots += o.BatchedSlots
	in.KernelSlots += o.KernelSlots
	in.ScalarSlots += o.ScalarSlots
	in.MaskBudgetOverruns += o.MaskBudgetOverruns
	in.StepperBatches += o.StepperBatches
	in.StepperBatchNodes += o.StepperBatchNodes
	if o.MaxStepperBatch > in.MaxStepperBatch {
		in.MaxStepperBatch = o.MaxStepperBatch
	}
	in.BatchSteps += o.BatchSteps
	in.ScratchTableHits += o.ScratchTableHits
	in.ScratchTableMisses += o.ScratchTableMisses
}

// InternalsSink is optionally implemented by observers that want the
// engine-internals summary. The engine calls OnInternals exactly once, on
// its own goroutine, after the slot loop finishes and before RunSync
// returns; the value is a copy the sink may retain.
type InternalsSink interface {
	OnInternals(Internals)
}

// OnInternals implements InternalsSink: the fan-out forwards the report to
// every member that accepts it, in order, mirroring OnEvent.
func (m multiObserver) OnInternals(in Internals) {
	for _, o := range m {
		if s, ok := o.(InternalsSink); ok {
			s.OnInternals(in)
		}
	}
}

// OnInternals implements InternalsSink: masking filters event kinds, not
// the end-of-run internals report, so the wrapper forwards unconditionally.
func (m maskedObserver) OnInternals(in Internals) {
	if s, ok := m.obs.(InternalsSink); ok {
		s.OnInternals(in)
	}
}

// InternalsRecorder captures engine-internals reports while subscribing to
// no events at all, so attaching one preserves the engine's batched path
// and event-free fast paths — the production shape for counters that must
// not perturb what they measure, and the reference observer for the
// perturbation guards in the tests.
type InternalsRecorder struct {
	// Total accumulates every report; Last is the most recent one.
	Total Internals
	Last  Internals
	// Reports counts OnInternals calls (one per completed run).
	Reports int
}

// OnEvent implements sim.Observer; the recorder consumes no events.
func (r *InternalsRecorder) OnEvent(Event) {}

// EventMask implements EventMasker: subscribe to nothing.
func (r *InternalsRecorder) EventMask() EventMask { return 0 }

// OnInternals implements InternalsSink.
func (r *InternalsRecorder) OnInternals(in Internals) {
	r.Last = in
	r.Total.Merge(in)
	r.Reports++
}
