package sim

// Tests for the engine-internals reporting seam (internals.go): the
// differential guarantee that the resolver-path slot attribution sums to
// the run's slot count on every path, the scratch-reuse and stepper
// tallies, and the perturbation guards — attaching an InternalsRecorder
// must keep the batched path, identical results, and the allocation
// profile of an unobserved run.

import (
	"testing"

	"m2hew/internal/dynamics"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// internalsRun executes one seeded staged-protocol run with obs attached
// and returns the result.
func internalsRun(t *testing.T, nw *topology.Network, obs Observer, cfg SyncConfig) *SyncResult {
	t.Helper()
	cfg.Network = nw
	cfg.Protocols = syncProtos(t, nw, 55)
	if cfg.MaxSlots == 0 {
		cfg.MaxSlots = 600
	}
	cfg.RunToMaxSlots = true
	cfg.Observer = obs
	res, err := RunSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestInternalsPathAttributionSumsToSlots is the differential test for the
// resolver-path counters: on every configuration that selects a different
// path, exactly one path counter carries the run's whole slot count and
// the three always sum to SlotsSimulated.
func TestInternalsPathAttributionSumsToSlots(t *testing.T) {
	nw := diffNet(t, 9, 12)
	world := func() *dynamics.World {
		w, err := dynamics.NewWorld(nw, dynamics.Spec{
			EpochLen: 100,
			Churn:    &dynamics.Churn{JoinFraction: 0.3, JoinWindow: 8, LeaveFraction: 0.2, LeaveWindow: 6},
		}, 6, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	loss := func() *LossModel {
		m, err := NewLossModel(0.25, rng.New(31))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		label string
		cfg   SyncConfig
		full  bool // wrap the recorder with a full observer (flips to kernel)
		want  func(in Internals) int64
	}{
		// A mask-0 recorder alone keeps the batched channel-major path.
		{"batched", SyncConfig{}, false, func(in Internals) int64 { return in.BatchedSlots }},
		// A full observer demands per-listener events: kernel path.
		{"kernel-full-observer", SyncConfig{}, true, func(in Internals) int64 { return in.KernelSlots }},
		// Loss forces per-listener erasure draws: kernel even when masked off.
		{"kernel-lossy", SyncConfig{Loss: loss()}, false, func(in Internals) int64 { return in.KernelSlots }},
		// Dynamics runs resolve on the scalar path by design.
		{"scalar-dynamics", SyncConfig{Dynamics: world()}, false, func(in Internals) int64 { return in.ScalarSlots }},
	}
	for _, tc := range cases {
		t.Run(tc.label, func(t *testing.T) {
			rec := &InternalsRecorder{}
			obs := Observer(rec)
			if tc.full {
				obs = MultiObserver(rec, ObserverFunc(func(Event) {}))
			}
			res := internalsRun(t, nw, obs, tc.cfg)
			if rec.Reports != 1 {
				t.Fatalf("reports = %d, want exactly 1 per run", rec.Reports)
			}
			in := rec.Last
			if in.SlotsSimulated != int64(res.SlotsSimulated) {
				t.Errorf("SlotsSimulated = %d, result says %d", in.SlotsSimulated, res.SlotsSimulated)
			}
			if sum := in.BatchedSlots + in.KernelSlots + in.ScalarSlots; sum != in.SlotsSimulated {
				t.Errorf("path attribution sum = %d, want %d (batched %d, kernel %d, scalar %d)",
					sum, in.SlotsSimulated, in.BatchedSlots, in.KernelSlots, in.ScalarSlots)
			}
			if got := tc.want(in); got != in.SlotsSimulated {
				t.Errorf("expected path carries %d of %d slots: %+v", got, in.SlotsSimulated, in)
			}
		})
	}
}

// TestInternalsStepperTallies bounds the decision-batch accounting: one
// batch per simulated slot, batch sizes between 1 and n, and the max is a
// batch size that actually occurred.
func TestInternalsStepperTallies(t *testing.T) {
	nw := diffNet(t, 9, 12)
	rec := &InternalsRecorder{}
	res := internalsRun(t, nw, rec, SyncConfig{})
	in := rec.Last
	if in.StepperBatches != int64(res.SlotsSimulated) {
		t.Errorf("StepperBatches = %d, want one per slot (%d)", in.StepperBatches, res.SlotsSimulated)
	}
	n := int64(nw.N())
	if in.StepperBatchNodes < in.StepperBatches || in.StepperBatchNodes > in.StepperBatches*n {
		t.Errorf("StepperBatchNodes = %d outside [batches, batches*n] = [%d, %d]",
			in.StepperBatchNodes, in.StepperBatches, in.StepperBatches*n)
	}
	if in.MaxStepperBatch < 1 || in.MaxStepperBatch > n {
		t.Errorf("MaxStepperBatch = %d outside [1, %d]", in.MaxStepperBatch, n)
	}
	if mean := in.StepperBatchNodes / in.StepperBatches; in.MaxStepperBatch < mean {
		t.Errorf("MaxStepperBatch %d below mean batch size %d", in.MaxStepperBatch, mean)
	}
}

// TestInternalsScratchTableReuse: the first run on a fresh scratch rebuilds
// the network tables (miss), the second reuses them (hit), and switching
// networks invalidates the cache (miss again).
func TestInternalsScratchTableReuse(t *testing.T) {
	nwA := diffNet(t, 9, 12)
	nwB := diffNet(t, 10, 12)
	scratch := NewSyncScratch()
	step := func(nw *topology.Network) Internals {
		rec := &InternalsRecorder{}
		internalsRun(t, nw, rec, SyncConfig{Scratch: scratch})
		return rec.Last
	}
	if in := step(nwA); in.ScratchTableMisses != 1 || in.ScratchTableHits != 0 {
		t.Errorf("fresh scratch: hits %d misses %d, want 0/1", in.ScratchTableHits, in.ScratchTableMisses)
	}
	if in := step(nwA); in.ScratchTableHits != 1 || in.ScratchTableMisses != 0 {
		t.Errorf("same network: hits %d misses %d, want 1/0", in.ScratchTableHits, in.ScratchTableMisses)
	}
	if in := step(nwB); in.ScratchTableMisses != 1 || in.ScratchTableHits != 0 {
		t.Errorf("new network: hits %d misses %d, want 0/1", in.ScratchTableHits, in.ScratchTableMisses)
	}
}

// TestInternalsMaskBudgetOverrun pins the overrun attribution at the unit
// level (an end-to-end overrun needs a packed table past the 8 MB budget,
// i.e. a multi-thousand-node dense network): a run that fell back to the
// scalar path because its mask table was over budget reports the overrun;
// batched and dynamic-scalar runs never do.
func TestInternalsMaskBudgetOverrun(t *testing.T) {
	over := (&syncRun{}).finalizeInternals(100, true, false)
	if over.MaskBudgetOverruns != 1 || over.ScalarSlots != 100 {
		t.Errorf("over-budget run: %+v, want 1 overrun, 100 scalar slots", over)
	}
	batched := (&syncRun{batched: true, useKernel: true}).finalizeInternals(100, false, true)
	if batched.MaskBudgetOverruns != 0 || batched.BatchedSlots != 100 || batched.ScratchTableHits != 1 {
		t.Errorf("batched run: %+v, want no overrun, 100 batched slots, table hit", batched)
	}
	dynamic := (&syncRun{}).finalizeInternals(100, false, false)
	if dynamic.MaskBudgetOverruns != 0 || dynamic.ScalarSlots != 100 {
		t.Errorf("dynamic scalar run: %+v, want no overrun, 100 scalar slots", dynamic)
	}
}

// TestInternalsMergeAcrossRuns checks lossless aggregation: totals sum,
// MaxStepperBatch takes the max.
func TestInternalsMergeAcrossRuns(t *testing.T) {
	var total Internals
	total.Merge(Internals{SlotsSimulated: 10, BatchedSlots: 10, StepperBatches: 10, StepperBatchNodes: 40, MaxStepperBatch: 8, ScratchTableMisses: 1})
	total.Merge(Internals{SlotsSimulated: 20, KernelSlots: 20, StepperBatches: 20, StepperBatchNodes: 60, MaxStepperBatch: 5, ScratchTableHits: 1})
	want := Internals{
		SlotsSimulated: 30, BatchedSlots: 10, KernelSlots: 20,
		StepperBatches: 30, StepperBatchNodes: 100, MaxStepperBatch: 8,
		ScratchTableHits: 1, ScratchTableMisses: 1,
	}
	if total != want {
		t.Errorf("merged = %+v, want %+v", total, want)
	}
}

// TestInternalsRecorderDoesNotPerturb is the observer-invariance guard for
// the seam: a run with an InternalsRecorder attached stays on the batched
// path and produces coverage identical to the unobserved run, for static
// and dynamic configurations alike.
func TestInternalsRecorderDoesNotPerturb(t *testing.T) {
	nw := diffNet(t, 9, 12)
	world := func() *dynamics.World {
		w, err := dynamics.NewWorld(nw, dynamics.Spec{
			EpochLen: 100,
			Churn:    &dynamics.Churn{JoinFraction: 0.3, JoinWindow: 8, LeaveFraction: 0.2, LeaveWindow: 6},
		}, 6, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	for _, tc := range []struct {
		label string
		cfg   func() SyncConfig
	}{
		{"static", func() SyncConfig { return SyncConfig{} }},
		{"dynamics", func() SyncConfig { return SyncConfig{Dynamics: world()} }},
	} {
		base := internalsRun(t, nw, nil, tc.cfg())
		rec := &InternalsRecorder{}
		got := internalsRun(t, nw, rec, tc.cfg())
		sameCoverage(t, tc.label, base.Coverage, got.Coverage)
		if got.SlotsSimulated != base.SlotsSimulated {
			t.Errorf("%s: slots %d with recorder, %d without", tc.label, got.SlotsSimulated, base.SlotsSimulated)
		}
		if tc.label == "static" && rec.Last.BatchedSlots != rec.Last.SlotsSimulated {
			t.Errorf("recorder flipped the run off the batched path: %+v", rec.Last)
		}
	}
}

// TestInternalsRecorderSteadyStateAllocs extends the batched-path alloc
// guard: tallying internals for an attached recorder must not add
// allocations to the scratch-reusing hot loop.
func TestInternalsRecorderSteadyStateAllocs(t *testing.T) {
	r := rng.New(42)
	nw, err := topology.GeometricConnected(48, 0.3, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignUniformK(nw, 6, 3, r); err != nil {
		t.Fatal(err)
	}
	n := nw.N()
	protos := make([]SyncProtocol, n)
	for u := 0; u < n; u++ {
		avail := nw.Avail(topology.NodeID(u))
		c, err := avail.Pick(r)
		if err != nil {
			t.Fatal(err)
		}
		mode := radio.Receive
		if r.Bernoulli(0.4) {
			mode = radio.Transmit
		}
		protos[u] = &sinkSync{act: radio.Action{Mode: mode, Channel: c}}
	}
	scratch := NewSyncScratch()
	rec := &InternalsRecorder{}
	run := func() {
		if _, err := RunSync(SyncConfig{
			Network:       nw,
			Protocols:     protos,
			MaxSlots:      64,
			RunToMaxSlots: true,
			Scratch:       scratch,
			Observer:      rec,
		}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch
	if allocs := testing.AllocsPerRun(10, run); allocs > 80 {
		t.Errorf("recorder-attached batched run allocated %.0f objects per scratch-reusing run", allocs)
	}
	if rec.Last.BatchedSlots != 64 {
		t.Errorf("alloc guard ran off the batched path: %+v", rec.Last)
	}
}
