package sim

import (
	"fmt"

	"m2hew/internal/rng"
)

// LossModel models unreliable channels — extension (b) in the paper's
// Section V. Each transmission that would otherwise arrive at a receiver is
// independently erased there with probability Prob, modeling deep fades:
// an erased transmission neither delivers a message nor interferes with
// other transmissions at that receiver (the receiver simply never sees its
// energy).
//
// Erasures are independent across receivers (a transmission may fade at one
// neighbor and be heard by another) and, in the asynchronous engine, are
// drawn independently per (receiver listening frame, transmission slot).
//
// A nil *LossModel means reliable channels.
type LossModel struct {
	// Prob is the per-reception erasure probability in [0, 1).
	Prob float64
	// Rng drives the erasure draws; the engine consumes it in a
	// deterministic order, so runs remain reproducible.
	Rng *rng.Source
}

// NewLossModel validates and builds a loss model.
func NewLossModel(prob float64, r *rng.Source) (*LossModel, error) {
	if prob < 0 || prob >= 1 {
		return nil, fmt.Errorf("sim: loss probability %v outside [0,1)", prob)
	}
	if prob > 0 && r == nil {
		return nil, fmt.Errorf("sim: loss model needs a random source")
	}
	return &LossModel{Prob: prob, Rng: r}, nil
}

// validate checks a model the way NewLossModel would have. The engines'
// config validators call it so a model constructed directly as
// &LossModel{Prob: p} — bypassing NewLossModel, with no rng — surfaces as
// a config error at run start instead of a nil-pointer panic deep inside
// the slot loop at the first erasure draw. Safe on a nil model (reliable
// channels).
func (l *LossModel) validate() error {
	if l == nil {
		return nil
	}
	if l.Prob < 0 || l.Prob >= 1 {
		return fmt.Errorf("sim: loss probability %v outside [0,1)", l.Prob)
	}
	if l.Prob > 0 && l.Rng == nil {
		return fmt.Errorf("sim: loss model has probability %v but no rng (use NewLossModel)", l.Prob)
	}
	return nil
}

// erased draws one erasure decision; safe on a nil model.
func (l *LossModel) erased() bool {
	if l == nil || l.Prob <= 0 {
		return false
	}
	return l.Rng.Bernoulli(l.Prob)
}
