package sim

import (
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/core"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

func TestLossModelValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewLossModel(-0.1, r); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewLossModel(1, r); err == nil {
		t.Error("probability 1 accepted")
	}
	if _, err := NewLossModel(0.5, nil); err == nil {
		t.Error("nil rng with positive probability accepted")
	}
	if _, err := NewLossModel(0, nil); err != nil {
		t.Error("zero-probability model without rng rejected")
	}
}

func TestLossNilModelReliable(t *testing.T) {
	var l *LossModel
	for i := 0; i < 100; i++ {
		if l.erased() {
			t.Fatal("nil model erased a transmission")
		}
	}
}

func TestSyncLossBlocksDeliveries(t *testing.T) {
	// With an extreme loss rate, most deliveries vanish even though the
	// schedule guarantees a clean transmission every slot.
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	sender := &scriptSync{actions: []radio.Action{tx(0)}}
	receiver := &scriptSync{actions: []radio.Action{rx(0)}}
	loss, err := NewLossModel(0.9, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const slots = 2000
	if _, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     []SyncProtocol{sender, receiver},
		MaxSlots:      slots,
		RunToMaxSlots: true,
		Loss:          loss,
	}); err != nil {
		t.Fatal(err)
	}
	got := len(receiver.delivered)
	if got < slots/20 || got > slots/4 {
		t.Fatalf("with 90%% loss received %d/%d, want ~10%%", got, slots)
	}
}

func TestSyncLossErasureRemovesInterference(t *testing.T) {
	// Deep fades make colliding transmissions recoverable: two leaves
	// always transmit, hub always listens. With 50% loss, the hub should
	// sometimes hear exactly one of them cleanly — impossible on reliable
	// channels (tested by TestSyncCollision).
	nw, err := topology.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		nw.SetAvail(topology.NodeID(u), channel.NewSet(0))
	}
	hub := &scriptSync{actions: []radio.Action{rx(0)}}
	leaf1 := &scriptSync{actions: []radio.Action{tx(0)}}
	leaf2 := &scriptSync{actions: []radio.Action{tx(0)}}
	loss, err := NewLossModel(0.5, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     []SyncProtocol{hub, leaf1, leaf2},
		MaxSlots:      400,
		RunToMaxSlots: true,
		Loss:          loss,
	}); err != nil {
		t.Fatal(err)
	}
	if len(hub.delivered) == 0 {
		t.Fatal("fading never separated the colliding transmitters")
	}
}

func TestAsyncLossSlowsDiscovery(t *testing.T) {
	run := func(prob float64) float64 {
		nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
		root := rng.New(99)
		nodes := make([]AsyncNode, 2)
		for u := 0; u < 2; u++ {
			p, err := newCoreAsync(t, nw, topology.NodeID(u), root)
			if err != nil {
				t.Fatal(err)
			}
			nodes[u] = AsyncNode{Protocol: p}
		}
		var loss *LossModel
		if prob > 0 {
			var err error
			loss, err = NewLossModel(prob, root.Split())
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := RunAsync(AsyncConfig{
			Network:   nw,
			Nodes:     nodes,
			FrameLen:  3,
			MaxFrames: 20000,
			Loss:      loss,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Complete {
			t.Fatalf("loss %v: discovery incomplete", prob)
		}
		return res.CompletionTime
	}
	reliable := run(0)
	lossy := run(0.8)
	if lossy <= reliable {
		t.Fatalf("80%% loss did not slow discovery: %v vs %v", lossy, reliable)
	}
}

func TestSyncAsymmetricLinkDiscovery(t *testing.T) {
	// Asymmetric pair: node 0's transmissions never reach node 1 — only
	// the (1,0) link is discoverable, and node 1 must never hear node 0.
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	if err := nw.DropDirection(0, 1); err != nil {
		t.Fatal(err)
	}
	p0 := &scriptSync{actions: []radio.Action{tx(0), rx(0)}}
	p1 := &scriptSync{actions: []radio.Action{rx(0), tx(0)}}
	res, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     []SyncProtocol{p0, p1},
		MaxSlots:      2,
		RunToMaxSlots: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.delivered) != 0 {
		t.Fatal("dropped direction delivered a message")
	}
	if len(p0.delivered) != 1 {
		t.Fatalf("surviving direction deliveries = %d, want 1", len(p0.delivered))
	}
	if !res.Complete {
		t.Fatal("asymmetric target not complete (only (1,0) is discoverable)")
	}
}

func TestSyncAsymmetricNoInterference(t *testing.T) {
	// Hub listens; leaf 1 transmits; leaf 2 also transmits but its
	// direction to the hub is dropped, so it must NOT collide at the hub.
	nw, err := topology.Star(3)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		nw.SetAvail(topology.NodeID(u), channel.NewSet(0))
	}
	if err := nw.DropDirection(2, 0); err != nil {
		t.Fatal(err)
	}
	hub := &scriptSync{actions: []radio.Action{rx(0)}}
	leaf1 := &scriptSync{actions: []radio.Action{tx(0)}}
	leaf2 := &scriptSync{actions: []radio.Action{tx(0)}}
	if _, err := RunSync(SyncConfig{
		Network:   nw,
		Protocols: []SyncProtocol{hub, leaf1, leaf2},
		MaxSlots:  1,
	}); err != nil {
		t.Fatal(err)
	}
	if len(hub.delivered) != 1 || hub.delivered[0].From != 1 {
		t.Fatalf("hub deliveries %+v; the unreachable leaf interfered", hub.delivered)
	}
}

func TestAsyncAsymmetric(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	if err := nw.DropDirection(0, 1); err != nil {
		t.Fatal(err)
	}
	sender := &scriptAsync{actions: []radio.Action{tx(0)}}
	receiver := &scriptAsync{actions: []radio.Action{rx(0)}}
	_, err := RunAsync(AsyncConfig{
		Network:   nw,
		Nodes:     []AsyncNode{{Protocol: sender}, {Protocol: receiver}},
		FrameLen:  3,
		MaxFrames: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(receiver.delivered) != 0 {
		t.Fatal("async engine delivered over a dropped direction")
	}
}

// newCoreAsync builds a core.Async protocol for node u of nw.
func newCoreAsync(t *testing.T, nw *topology.Network, u topology.NodeID, root *rng.Source) (AsyncProtocol, error) {
	t.Helper()
	return core.NewAsync(nw.Avail(u), 2, root.Split())
}

func TestOnlineEngineWithLoss(t *testing.T) {
	// The online engine consumes erasure draws in chronological order
	// (different from the offline engine), but must still complete.
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	root := rng.New(321)
	nodes := make([]AsyncNode, 2)
	for u := 0; u < 2; u++ {
		p, err := newCoreAsync(t, nw, topology.NodeID(u), root)
		if err != nil {
			t.Fatal(err)
		}
		nodes[u] = AsyncNode{Protocol: p}
	}
	loss, err := NewLossModel(0.5, root.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAsyncOnline(AsyncConfig{
		Network:   nw,
		Nodes:     nodes,
		FrameLen:  3,
		MaxFrames: 20000,
		Loss:      loss,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("online engine with loss incomplete: %s", res.Coverage)
	}
}

// TestAsyncEnginesRejectLossWithoutRng is the async-side regression test
// for the hand-constructed loss model footgun: &LossModel{Prob: p} with no
// Rng used to nil-panic at the first erasure draw mid-run; both async
// engines must reject it at config validation instead.
func TestAsyncEnginesRejectLossWithoutRng(t *testing.T) {
	nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
	cfg := func() AsyncConfig {
		return AsyncConfig{
			Network:   nw,
			Nodes:     []AsyncNode{{Protocol: &scriptAsync{}}, {Protocol: &scriptAsync{}}},
			FrameLen:  3,
			MaxFrames: 5,
			Loss:      &LossModel{Prob: 0.5},
		}
	}
	if _, err := RunAsync(cfg()); err == nil {
		t.Error("RunAsync accepted a loss model with no rng")
	}
	if _, err := RunAsyncOnline(cfg()); err == nil {
		t.Error("RunAsyncOnline accepted a loss model with no rng")
	}
	// Prob 0 without an rng models a reliable channel and stays valid.
	ok := cfg()
	ok.Loss = &LossModel{}
	if _, err := RunAsync(ok); err != nil {
		t.Errorf("RunAsync rejected a zero-probability loss model: %v", err)
	}
}
