package sim

import (
	"m2hew/internal/channel"
	"m2hew/internal/metrics"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
	"m2hew/internal/trace"
)

// This file is the engines' observability seam. Both engines report what
// happens through a single typed Event stream consumed by an Observer
// attached to the run configuration; the trace, metrics and experiment
// layers plug in through the adapters below instead of bespoke callback
// fields. The seam is designed around two constraints:
//
//   - Zero cost when unused: with a nil Observer the engines construct no
//     Event values and make no calls; the hot loops only pay one nil check
//     per emission site.
//   - Zero allocation when used: Event is a plain value passed by value;
//     slices inside it are borrowed engine buffers, never copies.

// EventKind classifies an engine event.
type EventKind uint8

// Event kinds emitted by the engines.
const (
	// EventDeliver is a clear reception: exactly one neighbor transmitted
	// on the listener's channel, the link operates on it, and no erasure
	// occurred. Emitted by both engines.
	EventDeliver EventKind = iota + 1
	// EventSlot is one synchronous slot's collected actions, emitted after
	// phase 1 (action collection) and before reception resolution.
	// Synchronous engine only.
	EventSlot
	// EventCollision is a destroyed listening slot: two or more surviving
	// transmissions reached the listener on its channel. To is the
	// listener, From the first surviving transmitter in candidate order —
	// the engine stops scanning at the second survivor (scanning further
	// would consume extra loss-model draws), so the full transmitter set is
	// not reported. Synchronous engine only.
	EventCollision
	// EventIdle is a listening slot that heard nothing: either no node
	// transmitted on the listener's channel at all, or every candidate
	// transmission was filtered by span or erased by the loss model. To is
	// the listener. Synchronous engine only.
	EventIdle
	// EventFrameStart is one node-local frame beginning: Node is the frame
	// owner, Slot its 0-based frame index on that node, Time the frame's
	// real start time, and Action the whole-frame decision (transmit,
	// receive, or quiet). Asynchronous engines only.
	EventFrameStart
	// EventFrameResolve reports a resolved listening frame: Node, Slot and
	// Action identify the frame as in EventFrameStart, Time is the frame's
	// real end time, Collected counts the candidate transmission slots that
	// overlapped it, and Delivered the clear receptions it produced.
	// Emitted for receive frames only. Asynchronous engines only.
	EventFrameResolve
	// EventEpoch is a dynamic-run epoch boundary: Epoch is the new epoch's
	// index, Time the boundary instant (slot index or real time). Emitted
	// before the boundary's join/leave/channel-loss events. Synchronous
	// engine and online asynchronous engine; the batch asynchronous engine
	// resolves node-major rather than chronologically and emits no dynamics
	// events.
	EventEpoch
	// EventJoin is a node joining the network at an epoch boundary: Node is
	// the joiner, Epoch the epoch it becomes active in.
	EventJoin
	// EventLeave is a node leaving the network (permanently) at an epoch
	// boundary: Node is the leaver, Epoch the first epoch it is inactive in.
	EventLeave
	// EventChannelLoss is a node losing a channel to a primary user at an
	// epoch boundary: Node is the affected node, Channel the vacated
	// channel, Epoch the epoch the occupation starts in. Channels returning
	// to service carry no event.
	EventChannelLoss
)

// String renders the kind.
func (k EventKind) String() string {
	switch k {
	case EventDeliver:
		return "deliver"
	case EventSlot:
		return "slot"
	case EventCollision:
		return "collision"
	case EventIdle:
		return "idle"
	case EventFrameStart:
		return "frame-start"
	case EventFrameResolve:
		return "frame-resolve"
	case EventEpoch:
		return "epoch"
	case EventJoin:
		return "join"
	case EventLeave:
		return "leave"
	case EventChannelLoss:
		return "channel-loss"
	default:
		return "EventKind(?)"
	}
}

// Event is one engine observation. It is passed by value; observers must
// not retain the Actions slice past the call (it is the engine's reused
// per-slot buffer).
type Event struct {
	// Kind selects which fields are meaningful.
	Kind EventKind
	// Time is the event instant: the slot index for the synchronous
	// engine, the real reception time for the asynchronous engines.
	Time float64
	// Slot is the integer slot index (synchronous engine only; 0 for
	// asynchronous events).
	Slot int
	// From and To identify the link: the delivered link (EventDeliver), or
	// first-surviving-transmitter and listener (EventCollision); EventIdle
	// sets only To (the listener).
	From, To topology.NodeID
	// Channel is the reception channel (EventDeliver, EventCollision,
	// EventIdle).
	Channel channel.ID
	// Node is the frame owner (EventFrameStart, EventFrameResolve); for
	// those kinds Slot holds the node-local frame index.
	Node topology.NodeID
	// Action is the whole-frame radio decision (EventFrameStart,
	// EventFrameResolve).
	Action radio.Action
	// Collected counts candidate transmission slots overlapping a resolved
	// listening frame; Delivered counts the clear receptions it produced
	// (EventFrameResolve only).
	Collected, Delivered int
	// Actions holds every node's action this slot, indexed by NodeID
	// (EventSlot only). Borrowed: valid only during the OnEvent call.
	Actions []radio.Action
	// Epoch is the dynamic-run epoch index (EventEpoch, EventJoin,
	// EventLeave, EventChannelLoss; Node is the affected node for the
	// latter three, Channel the vacated channel for EventChannelLoss).
	Epoch int
}

// Observer consumes engine events. Implementations are called from the
// engine's goroutine in simulation order and must not block; they need no
// internal locking unless shared across runs.
type Observer interface {
	OnEvent(Event)
}

// EventMask is a subscription bitset over event kinds: bit 1<<k is set when
// the observer wants EventKind k. The zero mask subscribes to nothing.
type EventMask uint32

// AllEvents subscribes to every event kind — the default for observers
// that do not declare a narrower interest.
const AllEvents EventMask = ^EventMask(0)

// MaskOf builds a subscription mask from event kinds.
func MaskOf(kinds ...EventKind) EventMask {
	var m EventMask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Has reports whether the mask subscribes to kind k.
func (m EventMask) Has(k EventKind) bool { return m&(1<<k) != 0 }

// EventMasker is optionally implemented by observers to declare which event
// kinds they consume. The engines skip constructing and dispatching events
// outside the declared mask — per-listener idle events on a large network
// dwarf the deliveries, so an observer that only counts deliveries saves
// most of the observation cost by declaring so. Filtering never reorders:
// the events an observer does receive arrive in exactly the relative order
// an unmasked observer would see them in. An observer that does not
// implement EventMasker receives every event (AllEvents).
type EventMasker interface {
	EventMask() EventMask
}

// observerMask resolves an observer's subscription: zero for nil (the
// engines' no-observer fast path), the declared mask for an EventMasker,
// AllEvents otherwise.
func observerMask(obs Observer) EventMask {
	if obs == nil {
		return 0
	}
	if m, ok := obs.(EventMasker); ok {
		return m.EventMask()
	}
	return AllEvents
}

// maskedObserver pairs an observer with its subscription, filtering
// defensively in OnEvent so the wrapper behaves identically under engines
// (or fan-outs) that ignore the mask.
type maskedObserver struct {
	obs  Observer
	mask EventMask
}

// OnEvent implements Observer.
func (m maskedObserver) OnEvent(e Event) {
	if m.mask.Has(e.Kind) {
		m.obs.OnEvent(e)
	}
}

// EventMask implements EventMasker.
func (m maskedObserver) EventMask() EventMask { return m.mask }

// OnlyEvents subscribes obs to exactly the kinds in mask (see EventMasker).
// A nil obs stays nil.
func OnlyEvents(mask EventMask, obs Observer) Observer {
	if obs == nil {
		return nil
	}
	return maskedObserver{obs: obs, mask: mask}
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// multiObserver fans one event stream out to several observers in order.
type multiObserver []Observer

// OnEvent implements Observer.
func (m multiObserver) OnEvent(e Event) {
	for _, o := range m {
		o.OnEvent(e)
	}
}

// EventMask implements EventMasker: the union of the members'
// subscriptions, so the fan-out receives an event iff some member wants it.
// OnEvent still forwards to every member — members that declared a
// narrower mask are masked observers themselves and drop the event on
// their own — keeping the fan-out correct under engines that ignore masks.
func (m multiObserver) EventMask() EventMask {
	var mask EventMask
	for _, o := range m {
		mask |= observerMask(o)
	}
	return mask
}

// MultiObserver combines observers into one, skipping nils. It returns nil
// when every argument is nil, preserving the engines' no-observer fast
// path, and returns a lone observer unwrapped.
func MultiObserver(obs ...Observer) Observer {
	var active multiObserver
	for _, o := range obs {
		if o != nil {
			active = append(active, o)
		}
	}
	switch len(active) {
	case 0:
		return nil
	case 1:
		return active[0]
	default:
		return active
	}
}

// TraceObserver forwards deliver events to a trace sink (trace.Writer,
// trace.Ring, …) as trace.KindDeliver events.
func TraceObserver(sink trace.Sink) Observer {
	if sink == nil {
		return nil
	}
	return OnlyEvents(MaskOf(EventDeliver), ObserverFunc(func(e Event) {
		sink.Record(trace.Event{
			Time: e.Time, Kind: trace.KindDeliver,
			From: e.From, To: e.To, Channel: e.Channel,
		})
	}))
}

// EventTraceObserver forwards the full event stream to a trace sink, one
// trace event per observation — except EventSlot, which fans out to one
// trace.KindTx per transmitting node (quiet and listening nodes are
// implied by the idle/deliver/collision events). This is the NDJSON
// event-log producer behind `ndsim -events`; TraceObserver remains the
// deliveries-only view for human-oriented verbose output.
func EventTraceObserver(sink trace.Sink) Observer {
	if sink == nil {
		return nil
	}
	return ObserverFunc(func(e Event) {
		switch e.Kind {
		case EventDeliver:
			sink.Record(trace.Event{
				Time: e.Time, Kind: trace.KindDeliver,
				From: e.From, To: e.To, Channel: e.Channel,
			})
		case EventSlot:
			for u, a := range e.Actions {
				if a.Mode != radio.Transmit {
					continue
				}
				sink.Record(trace.Event{
					Time: e.Time, Kind: trace.KindTx,
					From: topology.NodeID(u), Channel: a.Channel,
				})
			}
		case EventCollision:
			sink.Record(trace.Event{
				Time: e.Time, Kind: trace.KindCollision,
				From: e.From, To: e.To, Channel: e.Channel,
			})
		case EventIdle:
			sink.Record(trace.Event{
				Time: e.Time, Kind: trace.KindIdle,
				To: e.To, Channel: e.Channel,
			})
		case EventFrameStart:
			sink.Record(trace.Event{
				Time: e.Time, Kind: trace.KindFrameStart,
				From: e.Node, Frame: e.Slot,
				Channel: e.Action.Channel, Note: e.Action.Mode.String(),
			})
		case EventFrameResolve:
			sink.Record(trace.Event{
				Time: e.Time, Kind: trace.KindFrameResolve,
				From: e.Node, Frame: e.Slot,
				Channel: e.Action.Channel, Note: e.Action.Mode.String(),
				Collected: e.Collected, Delivered: e.Delivered,
			})
		case EventEpoch:
			sink.Record(trace.Event{
				Time: e.Time, Kind: trace.KindEpoch, Epoch: e.Epoch,
			})
		case EventJoin:
			sink.Record(trace.Event{
				Time: e.Time, Kind: trace.KindJoin,
				From: e.Node, Epoch: e.Epoch,
			})
		case EventLeave:
			sink.Record(trace.Event{
				Time: e.Time, Kind: trace.KindLeave,
				From: e.Node, Epoch: e.Epoch,
			})
		case EventChannelLoss:
			sink.Record(trace.Event{
				Time: e.Time, Kind: trace.KindChannelLoss,
				From: e.Node, Channel: e.Channel, Epoch: e.Epoch,
			})
		}
	})
}

// EnergyObserver feeds slot events to an energy meter (the duty-cycle
// accountant of the synchronous engine).
func EnergyObserver(m *metrics.EnergyMeter) Observer {
	if m == nil {
		return nil
	}
	return OnlyEvents(MaskOf(EventSlot), ObserverFunc(func(e Event) {
		m.ObserveSlot(e.Slot, e.Actions)
	}))
}

// copyHeard snapshots a protocol's reported heard-list at the engine
// boundary. Message construction is the ownership seam: a reporting
// protocol keeps mutating its list as it discovers more neighbors, so
// handing the live slice to a receiver would retroactively rewrite
// messages delivered earlier. Nil stays nil (the paper's plain algorithms
// report no list).
func copyHeard(heard []topology.NodeID) []topology.NodeID {
	if len(heard) == 0 {
		return nil
	}
	out := make([]topology.NodeID, len(heard))
	copy(out, heard)
	return out
}

// DeliverObserver adapts a delivery callback: f is invoked for every
// EventDeliver with the event's time (slot index for synchronous runs,
// real time for asynchronous runs) and link coordinates.
func DeliverObserver(f func(at float64, from, to topology.NodeID, ch channel.ID)) Observer {
	if f == nil {
		return nil
	}
	return OnlyEvents(MaskOf(EventDeliver), ObserverFunc(func(e Event) {
		f(e.Time, e.From, e.To, e.Channel)
	}))
}
