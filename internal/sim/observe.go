package sim

import (
	"m2hew/internal/channel"
	"m2hew/internal/metrics"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
	"m2hew/internal/trace"
)

// This file is the engines' observability seam. Both engines report what
// happens through a single typed Event stream consumed by an Observer
// attached to the run configuration; the trace, metrics and experiment
// layers plug in through the adapters below instead of bespoke callback
// fields. The seam is designed around two constraints:
//
//   - Zero cost when unused: with a nil Observer the engines construct no
//     Event values and make no calls; the hot loops only pay one nil check
//     per emission site.
//   - Zero allocation when used: Event is a plain value passed by value;
//     slices inside it are borrowed engine buffers, never copies.

// EventKind classifies an engine event.
type EventKind uint8

// Event kinds emitted by the engines.
const (
	// EventDeliver is a clear reception: exactly one neighbor transmitted
	// on the listener's channel, the link operates on it, and no erasure
	// occurred. Emitted by both engines.
	EventDeliver EventKind = iota + 1
	// EventSlot is one synchronous slot's collected actions, emitted after
	// phase 1 (action collection) and before reception resolution.
	// Synchronous engine only.
	EventSlot
)

// String renders the kind.
func (k EventKind) String() string {
	switch k {
	case EventDeliver:
		return "deliver"
	case EventSlot:
		return "slot"
	default:
		return "EventKind(?)"
	}
}

// Event is one engine observation. It is passed by value; observers must
// not retain the Actions slice past the call (it is the engine's reused
// per-slot buffer).
type Event struct {
	// Kind selects which fields are meaningful.
	Kind EventKind
	// Time is the event instant: the slot index for the synchronous
	// engine, the real reception time for the asynchronous engines.
	Time float64
	// Slot is the integer slot index (synchronous engine only; 0 for
	// asynchronous events).
	Slot int
	// From and To identify the delivered link (EventDeliver only).
	From, To topology.NodeID
	// Channel is the delivery channel (EventDeliver only).
	Channel channel.ID
	// Actions holds every node's action this slot, indexed by NodeID
	// (EventSlot only). Borrowed: valid only during the OnEvent call.
	Actions []radio.Action
}

// Observer consumes engine events. Implementations are called from the
// engine's goroutine in simulation order and must not block; they need no
// internal locking unless shared across runs.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent implements Observer.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// multiObserver fans one event stream out to several observers in order.
type multiObserver []Observer

// OnEvent implements Observer.
func (m multiObserver) OnEvent(e Event) {
	for _, o := range m {
		o.OnEvent(e)
	}
}

// MultiObserver combines observers into one, skipping nils. It returns nil
// when every argument is nil, preserving the engines' no-observer fast
// path, and returns a lone observer unwrapped.
func MultiObserver(obs ...Observer) Observer {
	var active multiObserver
	for _, o := range obs {
		if o != nil {
			active = append(active, o)
		}
	}
	switch len(active) {
	case 0:
		return nil
	case 1:
		return active[0]
	default:
		return active
	}
}

// TraceObserver forwards deliver events to a trace sink (trace.Writer,
// trace.Ring, …) as trace.KindDeliver events.
func TraceObserver(sink trace.Sink) Observer {
	if sink == nil {
		return nil
	}
	return ObserverFunc(func(e Event) {
		if e.Kind != EventDeliver {
			return
		}
		sink.Record(trace.Event{
			Time: e.Time, Kind: trace.KindDeliver,
			From: e.From, To: e.To, Channel: e.Channel,
		})
	})
}

// EnergyObserver feeds slot events to an energy meter (the duty-cycle
// accountant of the synchronous engine).
func EnergyObserver(m *metrics.EnergyMeter) Observer {
	if m == nil {
		return nil
	}
	return ObserverFunc(func(e Event) {
		if e.Kind != EventSlot {
			return
		}
		m.ObserveSlot(e.Slot, e.Actions)
	})
}

// copyHeard snapshots a protocol's reported heard-list at the engine
// boundary. Message construction is the ownership seam: a reporting
// protocol keeps mutating its list as it discovers more neighbors, so
// handing the live slice to a receiver would retroactively rewrite
// messages delivered earlier. Nil stays nil (the paper's plain algorithms
// report no list).
func copyHeard(heard []topology.NodeID) []topology.NodeID {
	if len(heard) == 0 {
		return nil
	}
	out := make([]topology.NodeID, len(heard))
	copy(out, heard)
	return out
}

// DeliverObserver adapts a delivery callback: f is invoked for every
// EventDeliver with the event's time (slot index for synchronous runs,
// real time for asynchronous runs) and link coordinates.
func DeliverObserver(f func(at float64, from, to topology.NodeID, ch channel.ID)) Observer {
	if f == nil {
		return nil
	}
	return ObserverFunc(func(e Event) {
		if e.Kind != EventDeliver {
			return
		}
		f(e.Time, e.From, e.To, e.Channel)
	})
}
