package sim

import (
	"testing"

	"m2hew/internal/channel"
	"m2hew/internal/metrics"
	"m2hew/internal/radio"
	"m2hew/internal/topology"
	"m2hew/internal/trace"
)

func TestEventKindString(t *testing.T) {
	cases := []struct {
		kind EventKind
		want string
	}{
		{EventDeliver, "deliver"},
		{EventSlot, "slot"},
		{EventCollision, "collision"},
		{EventIdle, "idle"},
		{EventFrameStart, "frame-start"},
		{EventFrameResolve, "frame-resolve"},
		{EventKind(99), "EventKind(?)"},
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.want {
			t.Errorf("EventKind(%d).String() = %q, want %q", c.kind, got, c.want)
		}
	}
	// Every defined kind must stringify — a new kind without a String case
	// would render as the fallback and fail here. EventFrameResolve is the
	// highest-numbered kind; extend the table when adding kinds past it.
	for k := EventDeliver; k <= EventFrameResolve; k++ {
		found := false
		for _, c := range cases {
			if c.kind == k && c.want != "EventKind(?)" {
				found = true
			}
		}
		if !found {
			t.Errorf("EventKind(%d) missing from the string table", k)
		}
		if k.String() == "EventKind(?)" {
			t.Errorf("EventKind(%d) has no String case", k)
		}
	}
}

func TestMultiObserver(t *testing.T) {
	var a, b int
	incA := ObserverFunc(func(Event) { a++ })
	incB := ObserverFunc(func(Event) { b++ })

	if got := MultiObserver(); got != nil {
		t.Errorf("MultiObserver() = %v, want nil", got)
	}
	if got := MultiObserver(nil, nil); got != nil {
		t.Errorf("MultiObserver(nil, nil) = %v, want nil", got)
	}

	// A single non-nil observer is returned unwrapped, preserving identity.
	single := MultiObserver(nil, incA)
	single.OnEvent(Event{Kind: EventSlot})
	if a != 1 {
		t.Errorf("single observer called %d times, want 1", a)
	}

	both := MultiObserver(incA, nil, incB)
	both.OnEvent(Event{Kind: EventDeliver})
	if a != 2 || b != 1 {
		t.Errorf("fan-out counts a=%d b=%d, want a=2 b=1", a, b)
	}
}

// TestMultiObserverOrdering pins fan-out order to argument order with nils
// skipped — observers like a trace writer then a metrics tally rely on
// seeing each event in a fixed sequence.
func TestMultiObserverOrdering(t *testing.T) {
	var order []string
	mark := func(name string) Observer {
		return ObserverFunc(func(Event) { order = append(order, name) })
	}
	obs := MultiObserver(nil, mark("first"), nil, mark("second"), mark("third"), nil)
	obs.OnEvent(Event{Kind: EventSlot})
	obs.OnEvent(Event{Kind: EventDeliver})
	want := []string{"first", "second", "third", "first", "second", "third"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTraceObserver(t *testing.T) {
	if TraceObserver(nil) != nil {
		t.Error("TraceObserver(nil) should be nil")
	}
	ring, err := trace.NewRing(8)
	if err != nil {
		t.Fatal(err)
	}
	obs := TraceObserver(ring)
	obs.OnEvent(Event{Kind: EventSlot, Slot: 3})
	obs.OnEvent(Event{
		Kind: EventDeliver, Time: 7, Slot: 7,
		From: 1, To: 2, Channel: channel.ID(4),
	})
	events := ring.Events()
	if len(events) != 1 {
		t.Fatalf("recorded %d events, want 1 (slot events must be ignored)", len(events))
	}
	e := events[0]
	if e.Kind != trace.KindDeliver || e.Time != 7 || e.From != 1 || e.To != 2 || e.Channel != 4 {
		t.Errorf("recorded %+v, want deliver t=7 1->2 ch=4", e)
	}
}

func TestEnergyObserver(t *testing.T) {
	if EnergyObserver(nil) != nil {
		t.Error("EnergyObserver(nil) should be nil")
	}
	meter, err := metrics.NewEnergyMeter(3)
	if err != nil {
		t.Fatal(err)
	}
	obs := EnergyObserver(meter)
	actions := []radio.Action{
		{Mode: radio.Transmit, Channel: 0},
		{Mode: radio.Receive, Channel: 0},
		{Mode: radio.Quiet},
	}
	obs.OnEvent(Event{Kind: EventSlot, Slot: 0, Actions: actions})
	obs.OnEvent(Event{Kind: EventDeliver, From: 0, To: 1}) // must be ignored
	if meter.Tx(0) != 1 || meter.Rx(1) != 1 || meter.Quiet(2) != 1 {
		t.Errorf("meter tx0=%d rx1=%d quiet2=%d, want 1/1/1",
			meter.Tx(0), meter.Rx(1), meter.Quiet(2))
	}
}

func TestDeliverObserver(t *testing.T) {
	if DeliverObserver(nil) != nil {
		t.Error("DeliverObserver(nil) should be nil")
	}
	var got []Event
	obs := DeliverObserver(func(at float64, from, to topology.NodeID, ch channel.ID) {
		got = append(got, Event{Time: at, From: from, To: to, Channel: ch})
	})
	obs.OnEvent(Event{Kind: EventSlot, Slot: 1})
	obs.OnEvent(Event{Kind: EventDeliver, Time: 2.5, From: 4, To: 5, Channel: 1})
	if len(got) != 1 {
		t.Fatalf("callback fired %d times, want 1", len(got))
	}
	if got[0].Time != 2.5 || got[0].From != 4 || got[0].To != 5 || got[0].Channel != 1 {
		t.Errorf("callback saw %+v, want t=2.5 4->5 ch=1", got[0])
	}
}

// TestSyncNilObserverNoAllocs pins the acceptance criterion that with no
// observer attached, the per-slot loop performs no allocations for the
// seam. The scripted run has no deliveries (everyone transmits), so the
// only allocations are the engine's fixed per-run setup; a hidden per-slot
// allocation would multiply by the 256-slot horizon and blow the budget.
func TestSyncNilObserverNoAllocs(t *testing.T) {
	nw, err := topology.Clique(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 1); err != nil {
		t.Fatal(err)
	}
	protos := make([]SyncProtocol, 4)
	for u := 0; u < 4; u++ {
		actions := make([]radio.Action, 256)
		for s := range actions {
			actions[s] = radio.Action{Mode: radio.Transmit, Channel: 0}
		}
		protos[u] = &scriptSync{actions: actions}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := RunSync(SyncConfig{
			Network:       nw,
			Protocols:     protos,
			MaxSlots:      256,
			RunToMaxSlots: true,
		}); err != nil {
			t.Fatal(err)
		}
	})
	// The budget covers fixed per-run setup only (coverage map, candidate
	// tables, shared per-sender message sets, channel index); it sits far
	// below the 256-slot horizon, so even a single hidden per-slot or
	// per-event allocation blows it.
	if allocs > 100 {
		t.Errorf("RunSync with nil observer allocated %.0f objects per run", allocs)
	}
}

func TestEventMaskOfAndHas(t *testing.T) {
	kinds := []EventKind{
		EventDeliver, EventSlot, EventCollision, EventIdle,
		EventFrameStart, EventFrameResolve, EventEpoch,
		EventJoin, EventLeave, EventChannelLoss,
	}
	m := MaskOf(EventDeliver, EventCollision)
	for _, k := range kinds {
		want := k == EventDeliver || k == EventCollision
		if m.Has(k) != want {
			t.Errorf("MaskOf(deliver, collision).Has(%v) = %v, want %v", k, m.Has(k), want)
		}
	}
	if MaskOf().Has(EventDeliver) {
		t.Error("empty mask claims EventDeliver")
	}
	for _, k := range kinds {
		if !AllEvents.Has(k) {
			t.Errorf("AllEvents missing %v", k)
		}
	}
}

func TestOnlyEventsFiltersAndDeclares(t *testing.T) {
	var got []EventKind
	obs := OnlyEvents(MaskOf(EventDeliver, EventIdle), ObserverFunc(func(e Event) {
		got = append(got, e.Kind)
	}))
	// The wrapper must declare its mask so engines can skip construction...
	masker, ok := obs.(EventMasker)
	if !ok {
		t.Fatal("OnlyEvents result does not implement EventMasker")
	}
	if m := masker.EventMask(); m != MaskOf(EventDeliver, EventIdle) {
		t.Fatalf("declared mask %b, want %b", m, MaskOf(EventDeliver, EventIdle))
	}
	// ...and still filter defensively if handed unsubscribed events.
	for _, k := range []EventKind{EventDeliver, EventSlot, EventCollision, EventIdle, EventEpoch} {
		obs.OnEvent(Event{Kind: k})
	}
	if len(got) != 2 || got[0] != EventDeliver || got[1] != EventIdle {
		t.Fatalf("filtered stream %v, want [deliver idle]", got)
	}
	if OnlyEvents(MaskOf(EventDeliver), nil) != nil {
		t.Error("OnlyEvents(nil observer) should stay nil")
	}
}

func TestObserverMaskDefaults(t *testing.T) {
	if m := observerMask(nil); m != 0 {
		t.Errorf("nil observer mask = %b, want 0", m)
	}
	// An observer that does not implement EventMasker gets everything.
	if m := observerMask(ObserverFunc(func(Event) {})); m != AllEvents {
		t.Errorf("plain observer mask = %b, want AllEvents", m)
	}
}

func TestMultiObserverMaskUnion(t *testing.T) {
	a := OnlyEvents(MaskOf(EventDeliver), ObserverFunc(func(Event) {}))
	b := OnlyEvents(MaskOf(EventSlot), ObserverFunc(func(Event) {}))
	multi := MultiObserver(a, b)
	masker, ok := multi.(EventMasker)
	if !ok {
		t.Fatal("MultiObserver result does not implement EventMasker")
	}
	if m := masker.EventMask(); m != MaskOf(EventDeliver, EventSlot) {
		t.Fatalf("union mask %b, want deliver|slot", m)
	}
	// One undeclared member widens the union to everything: the engine
	// must not drop events that member might want.
	wide := MultiObserver(a, ObserverFunc(func(Event) {})).(EventMasker)
	if m := wide.EventMask(); m != AllEvents {
		t.Fatalf("union with unmasked member = %b, want AllEvents", m)
	}
	// Nil members collapse away before the union: a single survivor is
	// returned as-is, mask intact.
	single := MultiObserver(nil, a)
	if m := observerMask(single); m != MaskOf(EventDeliver) {
		t.Errorf("MultiObserver(nil, a) mask = %b, want deliver only", m)
	}
}

// TestMaskedObserverStreamMatchesFiltered is the engine-level contract:
// subscribing via a mask yields exactly the events an unmasked observer
// would have received, kind-filtered — same events, same order. The engine
// may skip constructing unsubscribed events but must never reorder or drop
// subscribed ones.
func TestMaskedObserverStreamMatchesFiltered(t *testing.T) {
	run := func(obs Observer) {
		nw := pairNet(t, channel.NewSet(0), channel.NewSet(0))
		protos := []SyncProtocol{
			&scriptSync{actions: []radio.Action{tx(0), rx(0), tx(0), quiet()}},
			&scriptSync{actions: []radio.Action{rx(0), rx(0), tx(0), rx(0)}},
		}
		if _, err := RunSync(SyncConfig{
			Network:       nw,
			Protocols:     protos,
			MaxSlots:      4,
			RunToMaxSlots: true,
			Observer:      obs,
		}); err != nil {
			panic(err)
		}
	}
	type rec struct {
		kind EventKind
		slot int
		from topology.NodeID
		to   topology.NodeID
	}
	mask := MaskOf(EventDeliver, EventIdle)
	var full, masked []rec
	run(ObserverFunc(func(e Event) {
		if mask.Has(e.Kind) {
			full = append(full, rec{e.Kind, e.Slot, e.From, e.To})
		}
	}))
	run(OnlyEvents(mask, ObserverFunc(func(e Event) {
		masked = append(masked, rec{e.Kind, e.Slot, e.From, e.To})
	})))
	if len(full) == 0 {
		t.Fatal("scenario produced no deliver/idle events; scenario is too weak")
	}
	if len(masked) != len(full) {
		t.Fatalf("masked stream has %d events, filtered full stream %d", len(masked), len(full))
	}
	for i := range full {
		if masked[i] != full[i] {
			t.Fatalf("event %d: masked %+v, filtered %+v", i, masked[i], full[i])
		}
	}
}
