package sim

// Differential and regression tests for the optimized reception resolvers.
//
// Two properties are pinned here on top of the scripted differential suites
// in differential_test.go / differential_async_test.go:
//
//  1. Loss-model draw order. The erasure RNG is consumed mid-resolution, so
//     an "equivalent" resolver that filters candidates in a different order,
//     drops the collision early-break, or draws before the span check would
//     produce different runs at the same seed. resolveSlotNaive restates the
//     synchronous contract from first principles (the Phase-2 comment in
//     sync.go points here); resolveFrameNaive is the asynchronous reference.
//     Both are replayed against the production paths with identically seeded
//     loss models.
//
//  2. Steady-state allocation freedom. The resolvers reuse env-owned
//     buffers and share per-sender message sets; AllocsPerRun guards keep
//     per-slot / per-frame / per-delivery allocations from creeping back.

import (
	"fmt"
	"testing"

	"m2hew/internal/clock"
	"m2hew/internal/radio"
	"m2hew/internal/rng"
	"m2hew/internal/topology"
)

// resolveSlotNaive restates the synchronous engine's Phase-2 reception rule
// for one slot from first principles, including the loss draw contract:
// exactly one erasure draw per neighbor that transmits on the listener's
// channel over an operating link, consumed in ascending neighbor order,
// stopping at the second surviving transmission (a collision needs no
// further evidence). RunSync must behave as if it executed this loop, even
// though it actually walks a precomputed candidate table behind a per-slot
// channel-occupancy index.
func resolveSlotNaive(nw *topology.Network, slot int, actions []radio.Action, loss *LossModel) []refDelivery {
	var out []refDelivery
	for u := 0; u < nw.N(); u++ {
		if actions[u].Mode != radio.Receive {
			continue
		}
		uid := topology.NodeID(u)
		c := actions[u].Channel
		var sender topology.NodeID
		senders := 0
		for _, v := range nw.Neighbors(uid) {
			if actions[v].Mode != radio.Transmit || actions[v].Channel != c {
				continue
			}
			if !nw.Reaches(v, uid) || !nw.Span(uid, v).Contains(c) {
				continue
			}
			if loss.erased() {
				continue
			}
			senders++
			sender = v
			if senders > 1 {
				break
			}
		}
		if senders == 1 {
			out = append(out, refDelivery{slot: slot, from: sender, to: uid})
		}
	}
	return out
}

// replaySyncLoss plays a fixed action script through RunSync with a loss
// model and collects the engine's deliveries.
func replaySyncLoss(t *testing.T, nw *topology.Network, script [][]radio.Action, loss *LossModel) []refDelivery {
	t.Helper()
	n := nw.N()
	protos := make([]SyncProtocol, n)
	for u := 0; u < n; u++ {
		actions := make([]radio.Action, len(script))
		for slot := range script {
			actions[slot] = script[slot][u]
		}
		protos[u] = &scriptSync{actions: actions}
	}
	var got []refDelivery
	_, err := RunSync(SyncConfig{
		Network:       nw,
		Protocols:     protos,
		MaxSlots:      len(script),
		RunToMaxSlots: true,
		Loss:          loss,
		Observer: ObserverFunc(func(e Event) {
			if e.Kind == EventDeliver {
				got = append(got, refDelivery{slot: e.Slot, from: e.From, to: e.To})
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestSyncLossDrawOrderLocked replays random lossy scenarios through both
// RunSync and resolveSlotNaive with identically seeded erasure RNGs. Any
// change to the engine's draw consumption — order, count, or the early
// break at the second surviving sender — desynchronizes the two streams and
// diverges on some scenario.
func TestSyncLossDrawOrderLocked(t *testing.T) {
	root := rng.New(20260805)
	for trial := 0; trial < 120; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("scenario%03d", trial), func(t *testing.T) {
			nw, script := randomScenario(t, r)
			prob := 0.1 + r.Float64()*0.6
			lossSeed := r.Uint64()

			engineLoss, err := NewLossModel(prob, rng.New(lossSeed))
			if err != nil {
				t.Fatal(err)
			}
			got := replaySyncLoss(t, nw, script, engineLoss)

			naiveLoss, err := NewLossModel(prob, rng.New(lossSeed))
			if err != nil {
				t.Fatal(err)
			}
			var want []refDelivery
			for slot, actions := range script {
				want = append(want, resolveSlotNaive(nw, slot, actions, naiveLoss)...)
			}

			if len(got) != len(want) {
				t.Fatalf("engine delivered %d, naive %d\nengine: %v\nnaive: %v",
					len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("delivery %d: engine %+v, naive %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// scriptedAsyncEnv builds an asyncEnv directly from per-node frame scripts,
// the way the engines do, so resolver tests can drive resolveFrame without
// a full engine run.
func scriptedAsyncEnv(t *testing.T, nw *topology.Network, script [][]radio.Action,
	starts []float64, frameLen float64, slotsPerFrame int, loss *LossModel) *asyncEnv {
	t.Helper()
	n := nw.N()
	env := &asyncEnv{
		nw:            nw,
		cands:         nw.InboundCandidates(),
		frames:        make([][]asyncFrame, n),
		starts:        make([][]float64, n),
		timelines:     make([]*clock.Timeline, n),
		slotsPerFrame: slotsPerFrame,
		loss:          loss,
	}
	for u := 0; u < n; u++ {
		tl, err := clock.NewTimeline(starts[u], frameLen, slotsPerFrame, nil)
		if err != nil {
			t.Fatal(err)
		}
		env.timelines[u] = tl
		env.frames[u] = make([]asyncFrame, len(script[u]))
		env.starts[u] = make([]float64, len(script[u]))
		for f, a := range script[u] {
			fs, fe := tl.FrameInterval(f)
			env.frames[u][f] = asyncFrame{start: fs, end: fe, action: a}
			env.starts[u][f] = fs
		}
	}
	return env
}

// randomAsyncScript builds a random network plus per-node frame scripts and
// start offsets for resolver-level tests.
func randomAsyncScript(t *testing.T, r *rng.Source) (*topology.Network, [][]radio.Action, []float64, float64, int) {
	t.Helper()
	n := r.IntN(5) + 2
	universe := r.IntN(3) + 1
	nw, err := topology.ErdosRenyi(n, 0.6, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignBernoulli(nw, universe, 0.7, r); err != nil {
		t.Fatal(err)
	}
	if r.Bernoulli(0.4) {
		if err := topology.DropRandomDirections(nw, 0.5, r); err != nil {
			t.Fatal(err)
		}
	}
	slotsPerFrame := r.IntN(3) + 1
	frames := r.IntN(16) + 4
	frameLen := 1 + r.Float64()*4
	script := make([][]radio.Action, n)
	starts := make([]float64, n)
	for u := 0; u < n; u++ {
		avail := nw.Avail(topology.NodeID(u))
		script[u] = make([]radio.Action, frames)
		for f := 0; f < frames; f++ {
			switch r.IntN(5) {
			case 0:
				script[u][f] = radio.Action{Mode: radio.Quiet}
			case 1, 2:
				c, err := avail.Pick(r)
				if err != nil {
					t.Fatal(err)
				}
				script[u][f] = radio.Action{Mode: radio.Transmit, Channel: c}
			default:
				c, err := avail.Pick(r)
				if err != nil {
					t.Fatal(err)
				}
				script[u][f] = radio.Action{Mode: radio.Receive, Channel: c}
			}
		}
		starts[u] = r.Float64() * 3 * frameLen
	}
	return nw, script, starts, frameLen, slotsPerFrame
}

// TestResolveFrameMatchesNaive pins the sweep-based resolveFrame to the
// quadratic resolveFrameNaive over random scenarios, with and without a
// loss model. The two envs carry identically seeded erasure RNGs; the draws
// happen during collection, which both resolvers share, so any divergence —
// deliveries or draw consumption — surfaces as a mismatch.
func TestResolveFrameMatchesNaive(t *testing.T) {
	root := rng.New(80520260)
	for trial := 0; trial < 120; trial++ {
		r := root.Split()
		t.Run(fmt.Sprintf("scenario%03d", trial), func(t *testing.T) {
			nw, script, starts, frameLen, slotsPerFrame := randomAsyncScript(t, r)

			var fastLoss, naiveLoss *LossModel
			if r.Bernoulli(0.6) {
				prob := 0.1 + r.Float64()*0.6
				lossSeed := r.Uint64()
				var err error
				if fastLoss, err = NewLossModel(prob, rng.New(lossSeed)); err != nil {
					t.Fatal(err)
				}
				if naiveLoss, err = NewLossModel(prob, rng.New(lossSeed)); err != nil {
					t.Fatal(err)
				}
			}
			fast := scriptedAsyncEnv(t, nw, script, starts, frameLen, slotsPerFrame, fastLoss)
			naive := scriptedAsyncEnv(t, nw, script, starts, frameLen, slotsPerFrame, naiveLoss)

			for u := 0; u < nw.N(); u++ {
				uid := topology.NodeID(u)
				for f := range script[u] {
					got := fast.resolveFrame(uid, fast.frames[u][f])
					want := naive.resolveFrameNaive(uid, naive.frames[u][f])
					if len(got) != len(want) {
						t.Fatalf("node %d frame %d: fast %d deliveries, naive %d\nfast: %v\nnaive: %v",
							u, f, len(got), len(want), got, want)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("node %d frame %d delivery %d: fast %+v, naive %+v",
								u, f, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestResolveFrameSteadyStateNoAllocs verifies that once the env's scratch
// buffers have grown to the scenario's working set, resolveFrame allocates
// nothing at all — the property that removed per-frame garbage from the
// asynchronous engines.
func TestResolveFrameSteadyStateNoAllocs(t *testing.T) {
	r := rng.New(99)
	nw, err := topology.GeometricConnected(12, 0.6, r, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignUniformK(nw, 4, 2, r); err != nil {
		t.Fatal(err)
	}
	script := make([][]radio.Action, nw.N())
	starts := make([]float64, nw.N())
	for u := 0; u < nw.N(); u++ {
		avail := nw.Avail(topology.NodeID(u))
		script[u] = make([]radio.Action, 40)
		for f := range script[u] {
			c, err := avail.Pick(r)
			if err != nil {
				t.Fatal(err)
			}
			mode := radio.Receive
			if r.Bernoulli(0.5) {
				mode = radio.Transmit
			}
			script[u][f] = radio.Action{Mode: mode, Channel: c}
		}
		starts[u] = r.Float64() * 2
	}
	env := scriptedAsyncEnv(t, nw, script, starts, 1.5, 3, nil)

	resolveAll := func() {
		for u := 0; u < nw.N(); u++ {
			uid := topology.NodeID(u)
			for f := range script[u] {
				env.resolveFrame(uid, env.frames[u][f])
			}
		}
	}
	resolveAll() // warm up the scratch buffers
	if allocs := testing.AllocsPerRun(10, resolveAll); allocs > 0 {
		t.Errorf("resolveFrame allocated %.0f objects per full pass at steady state", allocs)
	}
}

// sinkSync repeats one action forever and counts deliveries without
// retaining them, so alloc guards can exercise the delivery path itself.
type sinkSync struct {
	act       radio.Action
	delivered int
}

func (s *sinkSync) Step(int) radio.Action   { return s.act }
func (s *sinkSync) Deliver(_ radio.Message) { s.delivered++ }

// TestSyncDeliveryPathNoAllocs drives a run where deliveries happen every
// slot and checks that the engine performs only its fixed per-run setup
// allocations: message available sets are shared per sender, not cloned per
// delivery, and repeat receptions leave the protocol tables untouched. One
// hidden per-delivery allocation would multiply by ~768 deliveries and blow
// the budget. (TestSyncNilObserverNoAllocs covers the all-transmit slot
// loop; this test covers the reception path.)
func TestSyncDeliveryPathNoAllocs(t *testing.T) {
	nw, err := topology.Clique(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.AssignHomogeneous(nw, 1); err != nil {
		t.Fatal(err)
	}
	protos := make([]SyncProtocol, 4)
	sinks := make([]*sinkSync, 4)
	for u := range protos {
		act := radio.Action{Mode: radio.Receive, Channel: 0}
		if u == 0 {
			act = radio.Action{Mode: radio.Transmit, Channel: 0}
		}
		sinks[u] = &sinkSync{act: act}
		protos[u] = sinks[u]
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := RunSync(SyncConfig{
			Network:       nw,
			Protocols:     protos,
			MaxSlots:      256,
			RunToMaxSlots: true,
		}); err != nil {
			t.Fatal(err)
		}
	})
	if sinks[1].delivered == 0 {
		t.Fatal("scenario produced no deliveries; the guard tests nothing")
	}
	if allocs > 100 {
		t.Errorf("RunSync delivery path allocated %.0f objects per run", allocs)
	}
}
